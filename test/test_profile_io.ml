open Isa

let program () =
  let b = Asm.create () in
  let values = Array.init 64 (fun i -> Int64.of_int (i mod 5)) in
  let base = Asm.data b values in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 64L;
      Asm.br b Eq t2 "done";
      Asm.add b ~dst:t3 t1 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let metrics_equal (a : Metrics.t) (b : Metrics.t) =
  a.Metrics.total = b.Metrics.total
  && a.Metrics.lvp = b.Metrics.lvp
  && a.Metrics.inv_top = b.Metrics.inv_top
  && a.Metrics.inv_all = b.Metrics.inv_all
  && a.Metrics.zero = b.Metrics.zero
  && a.Metrics.distinct = b.Metrics.distinct
  && a.Metrics.distinct_saturated = b.Metrics.distinct_saturated
  && a.Metrics.top_values = b.Metrics.top_values
  && a.Metrics.stride_top = b.Metrics.stride_top
  && a.Metrics.top_stride = b.Metrics.top_stride

let test_roundtrip () =
  let prog = program () in
  let p = Profile.run prog in
  let p' = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
  Alcotest.(check int) "instrumented" p.Profile.instrumented p'.Profile.instrumented;
  Alcotest.(check int) "events" p.Profile.profiled_events p'.Profile.profiled_events;
  Alcotest.(check int) "dynamic" p.Profile.dynamic_instructions
    p'.Profile.dynamic_instructions;
  Alcotest.(check int) "point count" (Array.length p.Profile.points)
    (Array.length p'.Profile.points);
  Array.iteri
    (fun i (a : Profile.point) ->
      let b = p'.Profile.points.(i) in
      Alcotest.(check int) "pc" a.p_pc b.Profile.p_pc;
      Alcotest.(check string) "proc" a.p_proc b.Profile.p_proc;
      Alcotest.(check string) "instr"
        (Isa.to_string a.p_instr) (Isa.to_string b.Profile.p_instr);
      Alcotest.(check bool) "metrics" true
        (metrics_equal a.p_metrics b.Profile.p_metrics))
    p.Profile.points

let test_file_roundtrip () =
  let prog = program () in
  let p = Profile.run ~selection:`Loads prog in
  let path = Filename.temp_file "vprof" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.write_file p path;
      let p' = Profile_io.read_file ~program:prog path in
      Alcotest.(check int) "points" (Array.length p.Profile.points)
        (Array.length p'.Profile.points))

let expect_failure name text =
  let prog = program () in
  match Profile_io.of_string ~program:prog text with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure _ -> ()

let test_rejects_bad_version () =
  expect_failure "version" "vprof-profile 99\nmeta instrumented=0 events=0 dynamic=0\n"

let test_rejects_missing_meta () =
  expect_failure "no meta" "vprof-profile 1\n"

let test_rejects_bad_pc () =
  expect_failure "pc out of range"
    "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=999 proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"

let test_rejects_non_value_pc () =
  (* the final halt produces no value *)
  let prog = program () in
  let halt_pc = Array.length prog.Asm.code - 1 in
  expect_failure "non-value pc"
    (Printf.sprintf
       "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=%d proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"
       halt_pc)

let test_rejects_orphan_tv () =
  expect_failure "tv before point"
    "vprof-profile 1\nmeta instrumented=0 events=0 dynamic=0\ntv 1 2\n"

let test_rejects_garbage () =
  expect_failure "garbage" "vprof-profile 1\nmeta instrumented=0 events=0 dynamic=0\nwibble\n"

let test_roundtrip_real_workload () =
  (* not just the synthetic loop: a full built-in workload's profile must
     survive the trip, down to byte-identical re-serialization *)
  let w = Workloads.find "go" in
  let prog = w.Workload.wbuild Workload.Test in
  let p = Profile.run prog in
  let s = Profile_io.to_string p in
  let p' = Profile_io.of_string ~program:prog s in
  Alcotest.(check int) "points" (Array.length p.Profile.points)
    (Array.length p'.Profile.points);
  Alcotest.(check string) "re-serialization is byte-identical" s
    (Profile_io.to_string p')

let test_bad_pc_failure_cites_line () =
  let prog = program () in
  match
    Profile_io.of_string ~program:prog
      "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=999 proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "cites line 3" true
      (Astring_contains.contains msg "line 3");
    Alcotest.(check bool) "names the bad pc" true
      (Astring_contains.contains msg "pc 999")

(* --- the v2 checksummed format --- *)

let find_sub s sub =
  let sl = String.length sub in
  let rec go i =
    if i + sl > String.length s then -1
    else if String.sub s i sl = sub then i
    else go (i + 1)
  in
  go 0

(* Strip the crc trailer and claim version 1: exactly what a pre-v2
   writer produced. *)
let v1_of_v2 s =
  let body_end = String.rindex_from s (String.length s - 2) '\n' + 1 in
  let body = String.sub s 0 body_end in
  let header_end = String.index body '\n' in
  "vprof-profile 1" ^ String.sub body header_end (String.length body - header_end)

(* Rewrite the first [" key=<token>"] occurrence, length-changing allowed. *)
let mutate_field text key value =
  let needle = " " ^ key ^ "=" in
  let i = find_sub text needle in
  Alcotest.(check bool) (Printf.sprintf "text has field %s" key) true (i >= 0);
  let start = i + String.length needle in
  let stop = ref start in
  while
    !stop < String.length text && text.[!stop] <> ' ' && text.[!stop] <> '\n'
  do
    incr stop
  done;
  String.sub text 0 start ^ value
  ^ String.sub text !stop (String.length text - !stop)

let test_v2_header_and_trailer () =
  let p = Profile.run (program ()) in
  let s = Profile_io.to_string p in
  Alcotest.(check string) "v2 header" "vprof-profile 2\n" (String.sub s 0 16);
  let tail_start = String.rindex_from s (String.length s - 2) '\n' + 1 in
  let tail = String.sub s tail_start (String.length s - tail_start) in
  Alcotest.(check int) "trailer is crc32 + 8 hex digits" 15 (String.length tail);
  Alcotest.(check string) "trailer tag" "crc32 " (String.sub tail 0 6)

let test_corruption_detected () =
  let prog = program () in
  let s = Profile_io.to_string (Profile.run prog) in
  (* flip one digit without changing the length: only the checksum can
     notice *)
  let i = find_sub s "total=" + 6 in
  let b = Bytes.of_string s in
  Bytes.set b i (if Bytes.get b i = '9' then '8' else '9');
  match Profile_io.of_string ~program:prog (Bytes.to_string b) with
  | _ -> Alcotest.fail "expected checksum failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the checksum" true
      (Astring_contains.contains msg "crc32 mismatch")

let test_truncation_detected_and_salvageable () =
  let prog = program () in
  let p = Profile.run prog in
  let s = Profile_io.to_string p in
  let cut = String.sub s 0 (String.length s * 2 / 3) in
  (match Profile_io.of_string ~program:prog cut with
   | _ -> Alcotest.fail "expected checksum failure"
   | exception Failure msg ->
     Alcotest.(check bool) "blames the checksum or truncation" true
       (Astring_contains.contains msg "crc32"
        || Astring_contains.contains msg "truncated"));
  let r = Profile_io.of_string ~salvage:true ~program:prog cut in
  Alcotest.(check bool) "salvage keeps a strict prefix" true
    (Array.length r.Profile.points < Array.length p.Profile.points);
  Array.iteri
    (fun i (pt : Profile.point) ->
      Alcotest.(check int) "salvaged pc matches the original"
        p.Profile.points.(i).Profile.p_pc pt.Profile.p_pc)
    r.Profile.points

let prop_salvage_any_truncation =
  let prog = program () in
  let p = Profile.run prog in
  let s = Profile_io.to_string p in
  let full = String.length s in
  (* cuts from just after the meta line to one byte short of the trailer's
     newline: strict parsing must always fail (the checksum line is
     damaged or gone), salvage must always recover a pc-prefix *)
  let first_point = find_sub s "\npoint " + 1 in
  QCheck.Test.make ~name:"any truncation: strict fails, salvage recovers"
    ~count:200
    (QCheck.make QCheck.Gen.(int_range first_point (full - 2)))
    (fun cut_at ->
      let cut = String.sub s 0 cut_at in
      let strict_fails =
        match Profile_io.of_string ~program:prog cut with
        | _ -> false
        | exception Failure _ -> true
      in
      let r = Profile_io.of_string ~salvage:true ~program:prog cut in
      let prefix_ok = ref (Array.length r.Profile.points <= Array.length p.Profile.points) in
      Array.iteri
        (fun i (pt : Profile.point) ->
          if p.Profile.points.(i).Profile.p_pc <> pt.Profile.p_pc then
            prefix_ok := false)
        r.Profile.points;
      strict_fails && !prefix_ok)

let test_v1_still_loads () =
  let prog = program () in
  let p = Profile.run prog in
  let s = Profile_io.to_string p in
  let p' = Profile_io.of_string ~program:prog (v1_of_v2 s) in
  Alcotest.(check int) "points" (Array.length p.Profile.points)
    (Array.length p'.Profile.points);
  Alcotest.(check string) "re-serializes to v2, byte-identical" s
    (Profile_io.to_string p')

let test_rejects_negative_total () =
  let prog = program () in
  let v1 = v1_of_v2 (Profile_io.to_string (Profile.run prog)) in
  match Profile_io.of_string ~program:prog (mutate_field v1 "total" "-5") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the field" true
      (Astring_contains.contains msg "total is negative");
    Alcotest.(check bool) "cites line 3" true
      (Astring_contains.contains msg "line 3")

let test_rejects_negative_meta_count () =
  let prog = program () in
  let v1 = v1_of_v2 (Profile_io.to_string (Profile.run prog)) in
  match Profile_io.of_string ~program:prog (mutate_field v1 "dynamic" "-1") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the field" true
      (Astring_contains.contains msg "dynamic is negative");
    Alcotest.(check bool) "cites line 2" true
      (Astring_contains.contains msg "line 2")

let test_rejects_nan_metric () =
  let prog = program () in
  let v1 = v1_of_v2 (Profile_io.to_string (Profile.run prog)) in
  match Profile_io.of_string ~program:prog (mutate_field v1 "lvp" "nan") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the NaN" true
      (Astring_contains.contains msg "lvp is NaN");
    Alcotest.(check bool) "cites line 3" true
      (Astring_contains.contains msg "line 3")

let test_rejects_negative_tv_count () =
  let prog = program () in
  let v1 = v1_of_v2 (Profile_io.to_string (Profile.run prog)) in
  let lineno = ref 0 in
  let mutated =
    String.split_on_char '\n' v1
    |> List.mapi (fun i l ->
           if !lineno = 0 && String.length l > 3 && String.sub l 0 3 = "tv "
           then begin
             lineno := i + 1;
             match String.split_on_char ' ' l with
             | [ "tv"; v; _ ] -> Printf.sprintf "tv %s -3" v
             | _ -> l
           end
           else l)
    |> String.concat "\n"
  in
  Alcotest.(check bool) "profile has a tv line" true (!lineno > 0);
  match Profile_io.of_string ~program:prog mutated with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "names the tv count" true
      (Astring_contains.contains msg "tv count is negative");
    Alcotest.(check bool) "cites the line" true
      (Astring_contains.contains msg (Printf.sprintf "line %d" !lineno))

let test_truncated_v1_failure_cites_line () =
  (* v1 has no checksum, so truncation must still surface as a
     line-numbered parse error *)
  let w = Workloads.find "go" in
  let prog = w.Workload.wbuild Workload.Test in
  let s = v1_of_v2 (Profile_io.to_string (Profile.run prog)) in
  let last_index_of sub =
    let sl = String.length sub in
    let rec go i best =
      if i + sl > String.length s then best
      else go (i + 1) (if String.sub s i sl = sub then i else best)
    in
    go 0 (-1)
  in
  let pos = last_index_of " lvp=" in
  Alcotest.(check bool) "profile has a point line" true (pos > 0);
  let cut = String.sub s 0 pos in
  let line =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 cut
  in
  match Profile_io.of_string ~program:prog cut with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "cites line %d" line)
      true
      (Astring_contains.contains msg (Printf.sprintf "line %d" line));
    Alcotest.(check bool) "reports the missing field" true
      (Astring_contains.contains msg "missing field")

let test_injected_torn_write_salvageable () =
  let prog = program () in
  let p = Profile.run prog in
  (* write_file defaults to binary v3; the truncation offset must land
     inside what is actually written *)
  let full = String.length (Profile_io.to_binary p) in
  let path = Filename.temp_file "vprof" ".profile" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Fault.arm
        ~action:(Fault.Truncate (full * 2 / 3))
        ~site:"profile_io.write" ~at:1 ();
      (match Profile_io.write_file p path with
       | () -> Alcotest.fail "expected the injected crash"
       | exception Fault.Injected _ -> ());
      Fault.disarm ();
      (* the torn file fails its checksum on a strict load... *)
      (match Profile_io.read_file ~program:prog path with
       | _ -> Alcotest.fail "expected checksum failure"
       | exception Failure _ -> ());
      (* ...and salvage recovers the surviving prefix *)
      let r = Profile_io.read_file ~salvage:true ~program:prog path in
      Alcotest.(check bool) "recovered a prefix" true
        (Array.length r.Profile.points <= Array.length p.Profile.points))

let test_write_leaves_no_temp_files () =
  let p = Profile.run (program ()) in
  let dir = Filename.temp_file "vprof_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Profile_io.write_file p (Filename.concat dir "p.profile");
      Alcotest.(check (list string)) "only the committed file"
        [ "p.profile" ]
        (Sys.readdir dir |> Array.to_list))

let test_loaded_profile_drives_predictor_filtering () =
  (* the round-tripped profile is as usable as the fresh one *)
  let prog = program () in
  let p = Profile.run prog in
  let p' = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
  let fresh = Predictor.filtered ~profile:p ~threshold:0.5 (Predictor.lvp ()) in
  let loaded = Predictor.filtered ~profile:p' ~threshold:0.5 (Predictor.lvp ()) in
  Alcotest.(check string) "same construction" (Predictor.name fresh)
    (Predictor.name loaded)

(* --- the v3 binary format --- *)

let test_v3_magic_and_sniff () =
  let prog = program () in
  let p = Profile.run prog in
  let b = Profile_io.to_binary p in
  Alcotest.(check string) "magic" "\x89VP3" (String.sub b 0 4);
  (* of_string dispatches on the first byte: both formats load through
     the same entry point *)
  let from_bin = Profile_io.of_string ~program:prog b in
  let from_text = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
  Alcotest.(check string) "same profile either way"
    (Profile_io.to_string from_bin) (Profile_io.to_string from_text)

let test_v3_roundtrip_exact () =
  let prog = program () in
  let p = Profile.run prog in
  let p' = Profile_io.of_string ~program:prog (Profile_io.to_binary p) in
  Alcotest.(check string) "text rendering identical" (Profile_io.to_string p)
    (Profile_io.to_string p');
  Alcotest.(check string) "binary re-encoding identical"
    (Profile_io.to_binary p) (Profile_io.to_binary p')

let test_v3_smaller_than_v2 () =
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let prog = w.Workload.wbuild Workload.Test in
      let p = Profile.run prog in
      let v2 = String.length (Profile_io.to_string p) in
      let v3 = String.length (Profile_io.to_binary p) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: v3 (%d) < v2 (%d)" name v3 v2)
        true (v3 < v2))
    [ "go"; "compress"; "li" ]

(* A random-but-valid profile over the synthetic program: any subset of
   its value-producing pcs, arbitrary metric values. Exercises encodings
   the profiler itself never produces (negative strides, saturated
   distinct counts, empty TNV tables, extreme totals). *)
let random_profile =
  let prog = program () in
  let eligible =
    List.filter
      (fun pc -> Isa.dest_reg prog.Asm.code.(pc) <> None)
      (List.init (Array.length prog.Asm.code) Fun.id)
  in
  let open QCheck.Gen in
  let metrics =
    let* total = int_bound 1_000_000 in
    let* lvp = float_bound_inclusive 1. in
    let* inv_top = float_bound_inclusive 1. in
    let* inv_all = float_bound_inclusive 1. in
    let* zero = float_bound_inclusive 1. in
    let* distinct = int_bound 4096 in
    let* distinct_saturated = bool in
    let* stride_top = float_bound_inclusive 1. in
    let* top_stride = opt (map Int64.of_int (int_range (-1000000) 1000000)) in
    let* top_values =
      list_size (int_bound 8)
        (pair (map Int64.of_int int) (int_bound 1_000_000))
    in
    return
      { Metrics.total; lvp; inv_top; inv_all; zero; distinct;
        distinct_saturated; top_values = Array.of_list top_values;
        stride_top; top_stride }
  in
  let profile =
    let* mask = list_repeat (List.length eligible) bool in
    let pcs =
      List.filteri (fun i _ -> List.nth mask i) eligible
    in
    let* points =
      flatten_l
        (List.map
           (fun pc ->
             let* m = metrics in
             return
               { Profile.p_pc = pc;
                 p_instr = prog.Asm.code.(pc);
                 p_proc = (if pc mod 2 = 0 then "main" else "");
                 p_metrics = m })
           pcs)
    in
    let* instrumented = int_bound 1000 in
    let* profiled_events = int_bound 1_000_000 in
    let* dynamic_instructions = int_bound 10_000_000 in
    return
      { Profile.points = Array.of_list points; instrumented; profiled_events;
        dynamic_instructions; stats = Counters.create () }
  in
  (prog, profile)

let prop_v3_equals_v2_on_random_profiles =
  let prog, gen = random_profile in
  QCheck.Test.make ~name:"v3 and v2 agree on random profiles" ~count:100
    (QCheck.make gen) (fun p ->
      let via_v3 = Profile_io.of_string ~program:prog (Profile_io.to_binary p) in
      let via_v2 = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
      Profile_io.to_string via_v3 = Profile_io.to_string via_v2
      && Profile_io.to_string via_v3 = Profile_io.to_string p)

let prop_v3_salvage_any_truncation =
  let prog = program () in
  let p = Profile.run prog in
  let b = Profile_io.to_binary p in
  let full = String.length b in
  QCheck.Test.make
    ~name:"v3 truncation: strict fails, salvage recovers a prefix or fails clean"
    ~count:300
    (QCheck.make QCheck.Gen.(int_bound (full - 1)))
    (fun cut_at ->
      let cut = String.sub b 0 cut_at in
      let strict_fails =
        match Profile_io.of_string ~program:prog cut with
        | _ -> false
        | exception Failure _ -> true
      in
      let salvage_ok =
        match Profile_io.of_string ~salvage:true ~program:prog cut with
        | r ->
          (* whatever survives must be a pc-prefix of the original *)
          Array.length r.Profile.points <= Array.length p.Profile.points
          && Array.for_all
               (fun i ->
                 r.Profile.points.(i).Profile.p_pc
                 = p.Profile.points.(i).Profile.p_pc)
               (Array.init (Array.length r.Profile.points) Fun.id)
        | exception Failure _ ->
          (* acceptable only while the meta section itself is torn *)
          true
      in
      strict_fails && salvage_ok)

let test_v3_telemetry_counters () =
  let prog = program () in
  let p = Profile.run prog in
  let value name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let r0 = value "profile_io.reads" in
  let w0 = value "profile_io.writes" in
  let path = Filename.temp_file "vprof" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.write_file p path;
      ignore (Profile_io.read_file ~program:prog path);
      Alcotest.(check int) "one write" (w0 + 1) (value "profile_io.writes");
      Alcotest.(check int) "one read" (r0 + 1) (value "profile_io.reads"))

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "rejects bad version" `Quick test_rejects_bad_version;
    Alcotest.test_case "rejects missing meta" `Quick test_rejects_missing_meta;
    Alcotest.test_case "rejects bad pc" `Quick test_rejects_bad_pc;
    Alcotest.test_case "rejects non-value pc" `Quick test_rejects_non_value_pc;
    Alcotest.test_case "rejects orphan tv" `Quick test_rejects_orphan_tv;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "roundtrip on a real workload" `Quick
      test_roundtrip_real_workload;
    Alcotest.test_case "bad pc failure cites its line" `Quick
      test_bad_pc_failure_cites_line;
    Alcotest.test_case "v2 header and crc trailer" `Quick
      test_v2_header_and_trailer;
    Alcotest.test_case "corruption detected by checksum" `Quick
      test_corruption_detected;
    Alcotest.test_case "truncation detected, salvageable" `Quick
      test_truncation_detected_and_salvageable;
    QCheck_alcotest.to_alcotest prop_salvage_any_truncation;
    Alcotest.test_case "v1 files still load" `Quick test_v1_still_loads;
    Alcotest.test_case "rejects negative total" `Quick
      test_rejects_negative_total;
    Alcotest.test_case "rejects negative meta count" `Quick
      test_rejects_negative_meta_count;
    Alcotest.test_case "rejects NaN metric" `Quick test_rejects_nan_metric;
    Alcotest.test_case "rejects negative tv count" `Quick
      test_rejects_negative_tv_count;
    Alcotest.test_case "truncated v1 failure cites its line" `Quick
      test_truncated_v1_failure_cites_line;
    Alcotest.test_case "injected torn write is salvageable" `Quick
      test_injected_torn_write_salvageable;
    Alcotest.test_case "atomic write leaves no temp files" `Quick
      test_write_leaves_no_temp_files;
    Alcotest.test_case "loaded profile usable" `Quick
      test_loaded_profile_drives_predictor_filtering;
    Alcotest.test_case "v3 magic and format sniff" `Quick
      test_v3_magic_and_sniff;
    Alcotest.test_case "v3 roundtrip exact" `Quick test_v3_roundtrip_exact;
    Alcotest.test_case "v3 smaller than v2" `Quick test_v3_smaller_than_v2;
    QCheck_alcotest.to_alcotest prop_v3_equals_v2_on_random_profiles;
    QCheck_alcotest.to_alcotest prop_v3_salvage_any_truncation;
    Alcotest.test_case "v3 telemetry counters" `Quick
      test_v3_telemetry_counters ]
