open Isa

let program () =
  let b = Asm.create () in
  let values = Array.init 64 (fun i -> Int64.of_int (i mod 5)) in
  let base = Asm.data b values in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 64L;
      Asm.br b Eq t2 "done";
      Asm.add b ~dst:t3 t1 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let metrics_equal (a : Metrics.t) (b : Metrics.t) =
  a.Metrics.total = b.Metrics.total
  && a.Metrics.lvp = b.Metrics.lvp
  && a.Metrics.inv_top = b.Metrics.inv_top
  && a.Metrics.inv_all = b.Metrics.inv_all
  && a.Metrics.zero = b.Metrics.zero
  && a.Metrics.distinct = b.Metrics.distinct
  && a.Metrics.distinct_saturated = b.Metrics.distinct_saturated
  && a.Metrics.top_values = b.Metrics.top_values
  && a.Metrics.stride_top = b.Metrics.stride_top
  && a.Metrics.top_stride = b.Metrics.top_stride

let test_roundtrip () =
  let prog = program () in
  let p = Profile.run prog in
  let p' = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
  Alcotest.(check int) "instrumented" p.Profile.instrumented p'.Profile.instrumented;
  Alcotest.(check int) "events" p.Profile.profiled_events p'.Profile.profiled_events;
  Alcotest.(check int) "dynamic" p.Profile.dynamic_instructions
    p'.Profile.dynamic_instructions;
  Alcotest.(check int) "point count" (Array.length p.Profile.points)
    (Array.length p'.Profile.points);
  Array.iteri
    (fun i (a : Profile.point) ->
      let b = p'.Profile.points.(i) in
      Alcotest.(check int) "pc" a.p_pc b.Profile.p_pc;
      Alcotest.(check string) "proc" a.p_proc b.Profile.p_proc;
      Alcotest.(check string) "instr"
        (Isa.to_string a.p_instr) (Isa.to_string b.Profile.p_instr);
      Alcotest.(check bool) "metrics" true
        (metrics_equal a.p_metrics b.Profile.p_metrics))
    p.Profile.points

let test_file_roundtrip () =
  let prog = program () in
  let p = Profile.run ~selection:`Loads prog in
  let path = Filename.temp_file "vprof" ".profile" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.write_file p path;
      let p' = Profile_io.read_file ~program:prog path in
      Alcotest.(check int) "points" (Array.length p.Profile.points)
        (Array.length p'.Profile.points))

let expect_failure name text =
  let prog = program () in
  match Profile_io.of_string ~program:prog text with
  | _ -> Alcotest.failf "%s: expected Failure" name
  | exception Failure _ -> ()

let test_rejects_bad_version () =
  expect_failure "version" "vprof-profile 99\nmeta instrumented=0 events=0 dynamic=0\n"

let test_rejects_missing_meta () =
  expect_failure "no meta" "vprof-profile 1\n"

let test_rejects_bad_pc () =
  expect_failure "pc out of range"
    "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=999 proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"

let test_rejects_non_value_pc () =
  (* the final halt produces no value *)
  let prog = program () in
  let halt_pc = Array.length prog.Asm.code - 1 in
  expect_failure "non-value pc"
    (Printf.sprintf
       "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=%d proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"
       halt_pc)

let test_rejects_orphan_tv () =
  expect_failure "tv before point"
    "vprof-profile 1\nmeta instrumented=0 events=0 dynamic=0\ntv 1 2\n"

let test_rejects_garbage () =
  expect_failure "garbage" "vprof-profile 1\nmeta instrumented=0 events=0 dynamic=0\nwibble\n"

let test_roundtrip_real_workload () =
  (* not just the synthetic loop: a full built-in workload's profile must
     survive the trip, down to byte-identical re-serialization *)
  let w = Workloads.find "go" in
  let prog = w.Workload.wbuild Workload.Test in
  let p = Profile.run prog in
  let s = Profile_io.to_string p in
  let p' = Profile_io.of_string ~program:prog s in
  Alcotest.(check int) "points" (Array.length p.Profile.points)
    (Array.length p'.Profile.points);
  Alcotest.(check string) "re-serialization is byte-identical" s
    (Profile_io.to_string p')

let test_bad_pc_failure_cites_line () =
  let prog = program () in
  match
    Profile_io.of_string ~program:prog
      "vprof-profile 1\nmeta instrumented=1 events=1 dynamic=1\npoint pc=999 proc=- total=1 lvp=0 invtop=0 invall=0 zero=0 distinct=1 saturated=0 stridetop=0 stride=none\n"
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool) "cites line 3" true
      (Astring_contains.contains msg "line 3");
    Alcotest.(check bool) "names the bad pc" true
      (Astring_contains.contains msg "pc 999")

let test_truncated_failure_cites_line () =
  let w = Workloads.find "go" in
  let prog = w.Workload.wbuild Workload.Test in
  let s = Profile_io.to_string (Profile.run prog) in
  (* cut the text mid-way through the last point line: parsing must report
     a failure on that line, by number *)
  let last_index_of sub =
    let sl = String.length sub in
    let rec go i best =
      if i + sl > String.length s then best
      else go (i + 1) (if String.sub s i sl = sub then i else best)
    in
    go 0 (-1)
  in
  let pos = last_index_of " lvp=" in
  Alcotest.(check bool) "profile has a point line" true (pos > 0);
  let cut = String.sub s 0 pos in
  let line =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 cut
  in
  match Profile_io.of_string ~program:prog cut with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "cites line %d" line)
      true
      (Astring_contains.contains msg (Printf.sprintf "line %d" line));
    Alcotest.(check bool) "reports the missing field" true
      (Astring_contains.contains msg "missing field")

let test_loaded_profile_drives_predictor_filtering () =
  (* the round-tripped profile is as usable as the fresh one *)
  let prog = program () in
  let p = Profile.run prog in
  let p' = Profile_io.of_string ~program:prog (Profile_io.to_string p) in
  let fresh = Predictor.filtered ~profile:p ~threshold:0.5 (Predictor.lvp ()) in
  let loaded = Predictor.filtered ~profile:p' ~threshold:0.5 (Predictor.lvp ()) in
  Alcotest.(check string) "same construction" (Predictor.name fresh)
    (Predictor.name loaded)

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "rejects bad version" `Quick test_rejects_bad_version;
    Alcotest.test_case "rejects missing meta" `Quick test_rejects_missing_meta;
    Alcotest.test_case "rejects bad pc" `Quick test_rejects_bad_pc;
    Alcotest.test_case "rejects non-value pc" `Quick test_rejects_non_value_pc;
    Alcotest.test_case "rejects orphan tv" `Quick test_rejects_orphan_tv;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "roundtrip on a real workload" `Quick
      test_roundtrip_real_workload;
    Alcotest.test_case "bad pc failure cites its line" `Quick
      test_bad_pc_failure_cites_line;
    Alcotest.test_case "truncated input failure cites its line" `Quick
      test_truncated_failure_cites_line;
    Alcotest.test_case "loaded profile usable" `Quick
      test_loaded_profile_drives_predictor_filtering ]
