(* Experiment-harness tests: every experiment produces well-formed tables,
   and the key qualitative claims of the paper hold on our workloads. *)

let test_registry_complete () =
  Alcotest.(check int) "twenty-four experiments" 24 (List.length Experiments.all);
  List.iteri
    (fun i (s : Experiments.spec) ->
      Alcotest.(check string)
        (Printf.sprintf "id %d" i)
        (Printf.sprintf "e%02d" (i + 1))
        s.Experiments.id)
    Experiments.all;
  Alcotest.(check bool) "find works" true
    ((Experiments.find "e03").Experiments.id = "e03");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Experiments.find "e99"))

let test_bb_quantile_coverage_monotone () =
  let qs = [ 1.; 5.; 20.; 100. ] in
  let counts = [| 100; 50; 10; 5; 1; 1; 1; 1; 0; 0 |] in
  let values = List.map (E02_bb_quantile.coverage counts) qs in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in quantile" true (monotone values);
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    (E02_bb_quantile.coverage counts 100.)

let test_hot_blocks_dominate () =
  (* the paper's premise: a small fraction of blocks covers most of
     execution — check it holds for every workload *)
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.Workload.wbuild Workload.Test in
      let m = Harness.plain_run w Workload.Test in
      let blocks = Cfg.build prog in
      let counts = Cfg.dynamic_counts m blocks in
      let c50 = E02_bb_quantile.coverage counts 50. in
      Alcotest.(check bool)
        (w.Workload.wname ^ ": top half covers most execution")
        true (c50 > 0.6);
      Alcotest.(check bool)
        (w.Workload.wname ^ ": coverage monotone")
        true
        (E02_bb_quantile.coverage counts 10. <= c50 +. 1e-9
         && c50 <= E02_bb_quantile.coverage counts 100. +. 1e-9))
    Harness.workloads

let test_cross_input_correlation_positive () =
  (* Wall's observation, the paper's Table V.5 takeaway *)
  let w = Workloads.find "cc" in
  let pt = Harness.full_profile w Workload.Test in
  let ptr = Harness.full_profile w Workload.Train in
  let pairs =
    Array.to_list pt.Profile.points
    |> List.filter_map (fun (p : Profile.point) ->
           if p.p_metrics.Metrics.total = 0 then None
           else
             match Profile.point_at ptr p.p_pc with
             | Some q when q.p_metrics.Metrics.total > 0 ->
               Some
                 ( p.p_metrics.Metrics.inv_top,
                   q.p_metrics.Metrics.inv_top )
             | Some _ | None -> None)
  in
  let xs = Array.of_list (List.map fst pairs) in
  let ys = Array.of_list (List.map snd pairs) in
  let corr = Stats.pearson xs ys in
  Alcotest.(check bool) "strong positive correlation" true (corr > 0.5)

let test_specialization_outcomes_sound () =
  let outcomes = E12_specialization.outcomes () in
  Alcotest.(check bool) "at least three workloads specialize" true
    (List.length outcomes >= 3);
  List.iter
    (fun (o : E12_specialization.outcome) ->
      Alcotest.(check bool) (o.o_workload ^ ": result preserved") true o.o_equal)
    outcomes;
  (* the flagship case must actually get faster *)
  (match
     List.find_opt
       (fun (o : E12_specialization.outcome) -> o.o_workload = "m88ksim")
       outcomes
   with
   | Some o ->
     Alcotest.(check bool) "m88ksim speeds up" true
       (o.o_icount_after < o.o_icount_before)
   | None -> Alcotest.fail "m88ksim should specialize")

let test_sampler_beats_full_on_overhead () =
  let w = Workloads.find "li" in
  let full = Harness.full_profile w Workload.Test in
  let sampled = Sampler.run (w.Workload.wbuild Workload.Test) in
  Alcotest.(check bool) "at least 4x fewer events" true
    (sampled.Sampler.profiled_events * 4 < full.Profile.profiled_events);
  Alcotest.(check bool) "error still small" true
    (Sampler.invariance_error sampled full < 0.1)

let test_filtered_prediction_more_accurate () =
  (* E11b's claim, checked on one workload *)
  let w = Workloads.find "perl" in
  let profile = Harness.full_profile w Workload.Test in
  let results =
    Predictor.simulate
      (w.Workload.wbuild Workload.Test)
      [ Predictor.lvp ~bits:6 ();
        Predictor.filtered ~profile ~threshold:0.5 (Predictor.lvp ~bits:6 ()) ]
  in
  (match results with
   | [ plain; filtered ] ->
     Alcotest.(check bool) "accuracy improves" true
       (filtered.Predictor.pr_accuracy >= plain.Predictor.pr_accuracy);
     Alcotest.(check bool) "coverage shrinks" true
       (filtered.Predictor.pr_coverage <= plain.Predictor.pr_coverage +. 1e-9)
   | _ -> Alcotest.fail "expected two results")

let test_weight_loads_invariant_in_alvinn () =
  (* E10's claim: alvinn's weight locations are >= 90% invariant *)
  let w = Workloads.find "alvinn" in
  let r = Memprof.run (w.Workload.wbuild Workload.Test) in
  Alcotest.(check bool) "most accesses hit invariant locations" true
    (Memprof.fraction_invariant r ~threshold:0.9 > 0.7)

let test_tables_well_formed () =
  (* cheap experiments end-to-end; expensive ones are covered above *)
  List.iter
    (fun id ->
      let tables = (Experiments.find id).Experiments.run () in
      Alcotest.(check bool) (id ^ " has tables") true (List.length tables > 0);
      List.iter
        (fun t ->
          let rendered = Table.render t in
          Alcotest.(check bool) (id ^ " renders") true
            (String.length rendered > 0);
          let csv = Table.to_csv t in
          Alcotest.(check bool) (id ^ " csv") true (String.length csv > 0))
        tables)
    [ "e01"; "e02"; "e03"; "e05" ]

let test_harness_cache () =
  Harness.clear_cache ();
  let w = Workloads.find "go" in
  let p1 = Harness.full_profile w Workload.Test in
  let p2 = Harness.full_profile w Workload.Test in
  Alcotest.(check bool) "memoized (physical equality)" true (p1 == p2);
  Harness.clear_cache ();
  let p3 = Harness.full_profile w Workload.Test in
  Alcotest.(check bool) "cache cleared" true (p1 != p3)

let counter_value name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

let test_store_serves_repeat_suite () =
  let store = Store.create_mem () in
  let config =
    { Experiments.default_run_config with Experiments.rc_store = Some store }
  in
  let specs = [ Experiments.find "e01" ] in
  Fun.protect
    ~finally:(fun () ->
      Harness.set_store None;
      Harness.clear_cache ())
    (fun () ->
      Harness.clear_cache ();
      let cold = Experiments.run_strings ~config specs in
      let cold_payload =
        match cold.Supervisor.outcomes with
        | [ { Supervisor.o_attempts; o_result = Ok payload; _ } ] ->
          Alcotest.(check int) "cold run executes" 1 o_attempts;
          payload
        | _ -> Alcotest.fail "expected one successful outcome"
      in
      (* drop every in-process cache: only the store can serve the rerun *)
      Harness.clear_cache ();
      let h0 = counter_value "store.hits" in
      let m0 = counter_value "machine.runs" in
      let warm = Experiments.run_strings ~config specs in
      (match warm.Supervisor.outcomes with
       | [ { Supervisor.o_attempts; o_result = Ok payload; _ } ] ->
         Alcotest.(check int) "warm run never scheduled" 0 o_attempts;
         Alcotest.(check string) "byte-identical payload" cold_payload payload
       | _ -> Alcotest.fail "expected one successful outcome");
      Alcotest.(check int) "served by one store hit" (h0 + 1)
        (counter_value "store.hits");
      Alcotest.(check int) "zero machine executions" m0
        (counter_value "machine.runs");
      Alcotest.(check int) "warm report counts it completed" 1
        warm.Supervisor.completed)

let test_harness_store_serves_profiles () =
  let store = Store.create_mem () in
  Fun.protect
    ~finally:(fun () ->
      Harness.set_store None;
      Harness.clear_cache ())
    (fun () ->
      Harness.set_store (Some store);
      Harness.clear_cache ();
      let w = Workloads.find "go" in
      let p1 = Harness.full_profile w Workload.Test in
      (* memo gone, store still warm: the profile comes back without a
         single machine execution *)
      Harness.clear_cache ();
      let m0 = counter_value "machine.runs" in
      let p2 = Harness.full_profile w Workload.Test in
      Alcotest.(check int) "no machine execution" m0
        (counter_value "machine.runs");
      Alcotest.(check string) "identical profile" (Profile_io.to_string p1)
        (Profile_io.to_string p2))

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry_complete;
    Alcotest.test_case "bb coverage monotone" `Quick
      test_bb_quantile_coverage_monotone;
    Alcotest.test_case "hot blocks dominate" `Slow test_hot_blocks_dominate;
    Alcotest.test_case "cross-input correlation" `Slow
      test_cross_input_correlation_positive;
    Alcotest.test_case "specialization outcomes sound" `Slow
      test_specialization_outcomes_sound;
    Alcotest.test_case "sampler overhead win" `Slow
      test_sampler_beats_full_on_overhead;
    Alcotest.test_case "filtered prediction" `Slow
      test_filtered_prediction_more_accurate;
    Alcotest.test_case "alvinn weights invariant" `Slow
      test_weight_loads_invariant_in_alvinn;
    Alcotest.test_case "tables well formed" `Slow test_tables_well_formed;
    Alcotest.test_case "harness cache" `Quick test_harness_cache;
    Alcotest.test_case "store serves repeat suite" `Quick
      test_store_serves_repeat_suite;
    Alcotest.test_case "harness store serves profiles" `Quick
      test_harness_store_serves_profiles ]
