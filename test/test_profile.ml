open Isa

(* A loop whose load reads a known mostly-constant array, so every metric
   value is computable by hand. *)
let program ?(n = 100) () =
  let b = Asm.create () in
  let values = Array.init n (fun i -> if i < n - 10 then 7L else Int64.of_int i) in
  let base = Asm.data b values in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int n);
      Asm.br b Eq t2 "done";
      Asm.add b ~dst:t3 t1 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let load_point profile =
  match Profile.points_by_category profile Isa.Load with
  | [ p ] -> p
  | other -> Alcotest.failf "expected one load point, got %d" (List.length other)

let test_load_metrics_exact () =
  let profile = Profile.run ~selection:`Loads (program ()) in
  let p = load_point profile in
  let m = p.Profile.p_metrics in
  Alcotest.(check int) "executions" 100 m.Metrics.total;
  (* 90 sevens then ten distinct values: top = 7 at 90% *)
  Alcotest.(check (float 1e-9)) "inv_top" 0.9 m.Metrics.inv_top;
  (* LVP: 89 repeats of 7 out of 99 transitions *)
  Alcotest.(check (float 1e-9)) "lvp" (89. /. 100.) m.Metrics.lvp;
  Alcotest.(check int) "distinct" 11 m.Metrics.distinct;
  Alcotest.(check int64) "top value" 7L (fst m.Metrics.top_values.(0))

let test_proc_attribution () =
  let profile = Profile.run ~selection:`Loads (program ()) in
  Alcotest.(check string) "proc name" "main" (load_point profile).Profile.p_proc

let test_selection_scopes_points () =
  let prog = program () in
  let all = Profile.run ~selection:`All prog in
  let loads = Profile.run ~selection:`Loads prog in
  Alcotest.(check bool) "all includes more points" true
    (all.Profile.instrumented > loads.Profile.instrumented);
  Alcotest.(check int) "loads only one" 1 loads.Profile.instrumented

let test_profiled_events_accounting () =
  let profile = Profile.run ~selection:`Loads (program ()) in
  Alcotest.(check int) "events equal load executions" 100
    profile.Profile.profiled_events;
  Alcotest.(check bool) "dynamic instructions exceed events" true
    (profile.Profile.dynamic_instructions > profile.Profile.profiled_events)

let test_point_at () =
  let profile = Profile.run ~selection:`Loads (program ()) in
  let p = load_point profile in
  Alcotest.(check bool) "found" true
    (Profile.point_at profile p.Profile.p_pc <> None);
  Alcotest.(check (option reject)) "missing pc" None
    (Option.map (fun _ -> ()) (Profile.point_at profile 9999))

let test_weighted () =
  let profile = Profile.run ~selection:`All (program ()) in
  let points = Array.to_list profile.Profile.points in
  let w = Profile.weighted points (fun m -> m.Metrics.inv_top) in
  Alcotest.(check bool) "weighted in [0,1]" true (w >= 0. && w <= 1.)

let test_attach_collect_roundtrip () =
  let prog = program () in
  let machine = Machine.create prog in
  let live = Profile.attach machine `Loads in
  ignore (Machine.run machine);
  let collected = Profile.collect live in
  Alcotest.(check int) "events" 100 collected.Profile.profiled_events

let test_oracle_agreement () =
  (* The TNV-backed profiling state must agree with an exact oracle fed
     from the same run (no eviction pressure on this small alphabet). *)
  let prog = program () in
  let machine = Machine.create prog in
  let oracle = Oracle.create () in
  let vstate = Vstate.create () in
  let pc = List.hd (Atom.select prog `Loads) in
  Machine.add_hook machine pc (fun value _ ->
      Vstate.observe vstate value;
      Oracle.observe oracle value);
  ignore (Machine.run machine);
  Alcotest.(check (float 1e-9)) "inv_top agreement" (Oracle.inv_top oracle)
    (Vstate.metrics vstate).Metrics.inv_top

let suite =
  [ Alcotest.test_case "exact load metrics" `Quick test_load_metrics_exact;
    Alcotest.test_case "proc attribution" `Quick test_proc_attribution;
    Alcotest.test_case "selection scopes" `Quick test_selection_scopes_points;
    Alcotest.test_case "event accounting" `Quick test_profiled_events_accounting;
    Alcotest.test_case "point_at" `Quick test_point_at;
    Alcotest.test_case "weighted" `Quick test_weighted;
    Alcotest.test_case "attach/collect" `Quick test_attach_collect_roundtrip;
    Alcotest.test_case "oracle agreement" `Quick test_oracle_agreement ]
