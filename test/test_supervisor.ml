(* Supervisor semantics: retry, backoff-in-fuel on timeouts, the error
   taxonomy, partial results under `Skip, cancellation under `Abort, and
   survival of injected faults. *)

open Isa

let with_faults f = Fun.protect ~finally:Fault.disarm f

(* [3n + 2] dynamic instructions, so fuel budgets are easy to reason
   about. *)
let loop_program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.label b "loop";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.cmplti b ~dst:t1 t0 n;
      Asm.br b Ne t1 "loop";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let loop_workload n =
  { Workload.wname = "tiny";
    wmimics = "";
    wdescr = "synthetic supervisor-test loop";
    wbuild = (fun _ -> loop_program n);
    wshard = None;
    warities = [] }

let error_label = function
  | Supervisor.Trap _ -> "trap"
  | Supervisor.Timeout _ -> "timeout"
  | Supervisor.Io _ -> "io"
  | Supervisor.Injected _ -> "injected"
  | Supervisor.Cancelled -> "cancelled"
  | Supervisor.Crash _ -> "crash"
  | Supervisor.Deadline _ -> "deadline"
  | Supervisor.Mem_pressure _ -> "mem_pressure"

let result_label (o : _ Supervisor.outcome) =
  match o.Supervisor.o_result with
  | Ok _ -> "ok"
  | Error e -> error_label e

let test_all_ok () =
  let rep =
    Supervisor.map ~jobs:2 ~name:string_of_int
      (fun x -> x * x)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "completed" 4 rep.Supervisor.completed;
  Alcotest.(check int) "failed" 0 rep.Supervisor.failed;
  Alcotest.(check (list int)) "payloads in order" [ 1; 4; 9; 16 ]
    (Supervisor.oks rep);
  List.iter
    (fun (o : _ Supervisor.outcome) ->
      Alcotest.(check int) "single attempt" 1 o.Supervisor.o_attempts)
    rep.Supervisor.outcomes

let test_retry_succeeds_second_attempt () =
  let calls = Atomic.make 0 in
  let rep =
    Supervisor.map ~jobs:1 ~name:(fun _ -> "flaky")
      (fun () ->
        if Atomic.fetch_and_add calls 1 = 0 then failwith "first attempt dies";
        42)
      [ () ]
  in
  Alcotest.(check int) "completed" 1 rep.Supervisor.completed;
  match rep.Supervisor.outcomes with
  | [ o ] ->
    Alcotest.(check int) "two attempts" 2 o.Supervisor.o_attempts;
    Alcotest.(check bool) "succeeded" true (Result.is_ok o.Supervisor.o_result)
  | _ -> Alcotest.fail "expected one outcome"

let test_retries_exhausted_records_crash () =
  let calls = Atomic.make 0 in
  let policy = { Supervisor.default_policy with retries = 2 } in
  let rep =
    Supervisor.map ~policy ~jobs:1 ~name:(fun _ -> "doomed")
      (fun () ->
        Atomic.incr calls;
        failwith "always dies")
      [ () ]
  in
  Alcotest.(check int) "failed" 1 rep.Supervisor.failed;
  Alcotest.(check int) "all attempts ran" 3 (Atomic.get calls);
  match rep.Supervisor.outcomes with
  | [ { Supervisor.o_attempts = 3; o_result = Error (Supervisor.Crash m); _ } ] ->
    Alcotest.(check bool) "crash message kept" true
      (Astring_contains.contains m "always dies")
  | _ -> Alcotest.fail "expected a 3-attempt Crash outcome"

let test_trap_classified () =
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 ~name:(fun _ -> "trapping")
      (fun () -> raise (Machine.Trap (Machine.Div_by_zero 7)))
      [ () ]
  in
  match rep.Supervisor.outcomes with
  | [ { Supervisor.o_result = Error (Supervisor.Trap (Machine.Div_by_zero 7)); _ } ]
    -> ()
  | [ o ] -> Alcotest.failf "expected Trap, got %s" (result_label o)
  | _ -> Alcotest.fail "expected one outcome"

let test_io_classified () =
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 ~name:(fun _ -> "io")
      (fun () -> raise (Sys_error "disk on fire"))
      [ () ]
  in
  match rep.Supervisor.outcomes with
  | [ { Supervisor.o_result = Error (Supervisor.Io m); _ } ] ->
    Alcotest.(check string) "message" "disk on fire" m
  | [ o ] -> Alcotest.failf "expected Io, got %s" (result_label o)
  | _ -> Alcotest.fail "expected one outcome"

let test_timeout_then_fuel_backoff () =
  (* 100 iterations = 302 dynamic instructions. A 64-instruction budget
     times out; doubling per retry (64, 128, 256, 512) succeeds on the
     4th attempt. *)
  let job =
    Driver.job ~fuel:64 (module Profile.Profiler)
      ~finish:(fun (p : Profile.t) -> p.Profile.dynamic_instructions)
      (loop_workload 100L) Workload.Test
  in
  let rep =
    Supervisor.run_jobs
      ~policy:{ Supervisor.default_policy with retries = 5 }
      ~jobs:1 [ job ]
  in
  (match rep.Supervisor.outcomes with
   | [ { Supervisor.o_attempts = 4; o_result = Ok dynamic; _ } ] ->
     Alcotest.(check bool) "ran to completion" true (dynamic >= 300)
   | [ o ] ->
     Alcotest.failf "expected success on attempt 4, got %s after %d attempts"
       (result_label o) o.Supervisor.o_attempts
   | _ -> Alcotest.fail "expected one outcome");
  (* without retries the same job is a Timeout carrying its budget *)
  let job =
    Driver.job ~fuel:64 (module Profile.Profiler)
      ~finish:(fun (_ : Profile.t) -> ())
      (loop_workload 100L) Workload.Test
  in
  let rep =
    Supervisor.run_jobs
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 [ job ]
  in
  match rep.Supervisor.outcomes with
  | [ { Supervisor.o_result = Error (Supervisor.Timeout 64); o_attempts = 1; _ } ]
    -> ()
  | [ o ] -> Alcotest.failf "expected Timeout 64, got %s" (result_label o)
  | _ -> Alcotest.fail "expected one outcome"

let test_skip_keeps_partial_results () =
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 ~name:string_of_int
      (fun x -> if x = 2 then failwith "boom" else x * 10)
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "completed" 2 rep.Supervisor.completed;
  Alcotest.(check int) "failed" 1 rep.Supervisor.failed;
  Alcotest.(check int) "cancelled" 0 rep.Supervisor.cancelled;
  Alcotest.(check (list int)) "survivors in order" [ 10; 30 ]
    (Supervisor.oks rep);
  Alcotest.(check (list string)) "per-item fates" [ "ok"; "crash"; "ok" ]
    (List.map result_label rep.Supervisor.outcomes)

let test_abort_cancels_remaining () =
  (* serial pool: the failure trips the shared flag, so every later item
     reports Cancelled without running *)
  let ran = Atomic.make 0 in
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0; on_error = `Abort }
      ~jobs:1 ~name:string_of_int
      (fun x ->
        Atomic.incr ran;
        if x = 1 then failwith "fatal" else x)
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "only items before the abort ran" 2 (Atomic.get ran);
  Alcotest.(check int) "completed" 1 rep.Supervisor.completed;
  Alcotest.(check int) "failed" 1 rep.Supervisor.failed;
  Alcotest.(check int) "cancelled" 3 rep.Supervisor.cancelled;
  Alcotest.(check (list string)) "per-item fates"
    [ "ok"; "crash"; "cancelled"; "cancelled"; "cancelled" ]
    (List.map result_label rep.Supervisor.outcomes)

let test_abort_cancels_under_parallel_pool () =
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0; on_error = `Abort }
      ~jobs:2 ~name:string_of_int
      (fun x -> if x = 0 then failwith "fatal" else (Unix.sleepf 0.002; x))
      (List.init 32 Fun.id)
  in
  Alcotest.(check int) "one failure" 1 rep.Supervisor.failed;
  Alcotest.(check bool) "queue was abandoned" true
    (rep.Supervisor.cancelled > 0);
  Alcotest.(check int) "every item accounted for" 32
    (List.length rep.Supervisor.outcomes)

let test_injected_fault_retried () =
  (* kill exactly the first attempt: the retry completes the grid *)
  with_faults (fun () ->
      Fault.arm ~site:"supervisor.job" ~at:1 ();
      let rep =
        Supervisor.map ~jobs:1 ~name:string_of_int (fun x -> x) [ 7 ]
      in
      Alcotest.(check int) "completed" 1 rep.Supervisor.completed;
      match rep.Supervisor.outcomes with
      | [ { Supervisor.o_attempts = 2; o_result = Ok 7; _ } ] -> ()
      | _ -> Alcotest.fail "expected success on the retry")

let test_injected_fault_recorded_when_retries_exhausted () =
  with_faults (fun () ->
      Fault.arm ~site:"supervisor.job" ~at:2 ();
      let rep =
        Supervisor.map
          ~policy:{ Supervisor.default_policy with retries = 0 }
          ~jobs:1 ~name:string_of_int (fun x -> x) [ 1; 2; 3 ]
      in
      Alcotest.(check int) "completed" 2 rep.Supervisor.completed;
      Alcotest.(check (list string)) "the 2nd attempt died"
        [ "ok"; "injected"; "ok" ]
        (List.map result_label rep.Supervisor.outcomes))

let test_pool_worker_fault_classified () =
  (* a fault at the pool's own site (outside run_one's catch) still lands
     as a typed Injected outcome, not an escaping exception *)
  with_faults (fun () ->
      Fault.arm ~site:"pool.worker" ~at:1 ();
      let rep =
        Supervisor.map ~jobs:1 ~name:string_of_int (fun x -> x) [ 1; 2; 3 ]
      in
      Alcotest.(check int) "completed" 2 rep.Supervisor.completed;
      match rep.Supervisor.outcomes with
      | [ o1; _; _ ] ->
        Alcotest.(check string) "typed as injected" "injected" (result_label o1)
      | _ -> Alcotest.fail "expected three outcomes")

(* ---- fused units under supervision --------------------------------

   Jobs sharing a (workload, input, fuel) key run as ONE unit: one
   classification per failure, one retry scope, one program build per
   attempt. Counting [wbuild] calls makes the unit boundary visible. *)

let counting_workload builds prog_of =
  { Workload.wname = "tinyw";
    wmimics = "";
    wdescr = "synthetic fused-supervision workload";
    wbuild = (fun _ -> Atomic.incr builds; prog_of ());
    wshard = None;
    warities = [] }

let fused_jobs w =
  [ Driver.job (module Profile.Profiler)
      ~finish:(fun (p : Profile.t) -> p.Profile.profiled_events)
      w Workload.Test;
    Driver.job (module Memprof.Profiler)
      ~finish:(fun (m : Memprof.t) -> m.Memprof.tracked_events)
      w Workload.Test;
    Driver.job (module Regprof.Profiler)
      ~finish:(fun (r : Regprof.t) -> r.Regprof.total_writes)
      w Workload.Test ]

let trap_program () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 1L;
      Asm.divi b ~dst:t0 t0 0L;
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_fused_unit_trap_classified_once () =
  let builds = Atomic.make 0 in
  let w = counting_workload builds trap_program in
  let rep =
    Supervisor.run_jobs
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 (fused_jobs w)
  in
  (* one build = the unit trapped once, not once per member *)
  Alcotest.(check int) "one classification scope" 1 (Atomic.get builds);
  Alcotest.(check int) "failed" 3 rep.Supervisor.failed;
  Alcotest.(check (list string)) "the unit's trap replicated to members"
    [ "trap"; "trap"; "trap" ]
    (List.map result_label rep.Supervisor.outcomes);
  List.iter
    (fun (o : _ Supervisor.outcome) ->
      (match o.Supervisor.o_result with
       | Error (Supervisor.Trap (Machine.Div_by_zero _)) -> ()
       | _ -> Alcotest.failf "%s: expected the unit's Div_by_zero" o.o_name);
      Alcotest.(check int) "one attempt each" 1 o.Supervisor.o_attempts)
    rep.Supervisor.outcomes

let test_fused_retry_reruns_whole_unit () =
  with_faults (fun () ->
      let builds = Atomic.make 0 in
      let w = counting_workload builds (fun () -> loop_program 50L) in
      (* kill the fused unit's first execution mid-run; the armed site
         fires exactly once, so the retry completes *)
      Fault.arm ~site:"machine.step" ~at:40 ();
      let rep = Supervisor.run_jobs ~jobs:1 (fused_jobs w) in
      Alcotest.(check int) "all members complete" 3 rep.Supervisor.completed;
      Alcotest.(check int) "one build per attempt, not per member" 2
        (Atomic.get builds);
      List.iter
        (fun (o : _ Supervisor.outcome) ->
          Alcotest.(check int) "members share the unit's attempts" 2
            o.Supervisor.o_attempts;
          Alcotest.(check bool) "member succeeded" true
            (Result.is_ok o.Supervisor.o_result))
        rep.Supervisor.outcomes)

let test_fused_results_equal_unfused () =
  let w = counting_workload (Atomic.make 0) (fun () -> loop_program 50L) in
  let fused = Supervisor.run_jobs ~jobs:1 (fused_jobs w) in
  let solo = Supervisor.run_jobs ~fuse:false ~jobs:1 (fused_jobs w) in
  Alcotest.(check (list int)) "payloads identical" (Supervisor.oks solo)
    (Supervisor.oks fused);
  Alcotest.(check (list string)) "outcome names stay per-job"
    (List.map (fun (o : _ Supervisor.outcome) -> o.Supervisor.o_name)
       solo.Supervisor.outcomes)
    (List.map (fun (o : _ Supervisor.outcome) -> o.Supervisor.o_name)
       fused.Supervisor.outcomes)

(* ---- resource governance under supervision ------------------------ *)

let test_max_fuel_caps_backoff () =
  let policy =
    { Supervisor.default_policy with
      fuel_timeout = Some 64; max_fuel = Some 200 }
  in
  let fuel k = Supervisor.Testing.attempt_fuel policy ~name:"j" ~base:None k in
  Alcotest.(check (option int)) "attempt 0 uses the base" (Some 64) (fuel 0);
  Alcotest.(check (option int)) "attempt 1 doubles" (Some 128) (fuel 1);
  Alcotest.(check (option int)) "attempt 2 hits the cap" (Some 200) (fuel 2);
  Alcotest.(check (option int)) "later attempts stay capped" (Some 200)
    (fuel 5);
  (* an explicit per-job base obeys the same cap *)
  Alcotest.(check (option int)) "per-job base capped" (Some 200)
    (Supervisor.Testing.attempt_fuel policy ~name:"j" ~base:(Some 150) 1)

let test_backoff_jitter_deterministic () =
  let policy =
    { Supervisor.default_policy with
      fuel_timeout = Some 1000; jitter = 0.5 }
  in
  let fuel ~name k = Supervisor.Testing.attempt_fuel policy ~name ~base:None k in
  (* attempt 0 is never jittered: the first budget is exactly what the
     caller asked for *)
  Alcotest.(check (option int)) "attempt 0 exact" (Some 1000)
    (fuel ~name:"a" 0);
  (match fuel ~name:"a" 1 with
   | Some f ->
     Alcotest.(check bool) "jitter widens within [1, 1.5)" true
       (f >= 2000 && f < 3000)
   | None -> Alcotest.fail "expected a budget");
  Alcotest.(check (option int)) "same (name, k), same draw" (fuel ~name:"a" 3)
    (fuel ~name:"a" 3);
  (* zero jitter (the default) keeps the legacy exact doubling *)
  let exact =
    Supervisor.Testing.attempt_fuel
      { policy with Supervisor.jitter = 0. }
      ~name:"a" ~base:None 3
  in
  Alcotest.(check (option int)) "jitter off is exact doubling" (Some 8000)
    exact

let governed f = Fun.protect ~finally:Budget.Testing.reset f

let test_deadline_fails_job_and_cancels_rest () =
  (* the wall clock is global: once one job trips the deadline, retrying
     it (or starting the jobs behind it) cannot help — the supervisor
     records the trip and cancels the rest of the pool *)
  governed (fun () ->
      let rep =
        Budget.govern
          { Budget.no_limits with deadline = Some 0.001 }
          (fun () ->
            Unix.sleepf 0.005;
            Supervisor.map ~jobs:1 ~name:string_of_int
              (fun x -> x)
              [ 1; 2; 3 ])
      in
      Alcotest.(check (list string)) "trip, then cooperative cancellation"
        [ "deadline"; "cancelled"; "cancelled" ]
        (List.map result_label rep.Supervisor.outcomes);
      match rep.Supervisor.outcomes with
      | { Supervisor.o_attempts = 1; _ } :: _ ->
        (* default policy retries once; a deadline must not be retried *)
        ()
      | _ -> Alcotest.fail "deadline outcomes are never retried")

let test_mem_pressure_classified_and_retried () =
  (* memory pressure is transient (the failed attempt's garbage is
     collectable), so unlike a deadline it stays retryable *)
  let calls = Atomic.make 0 in
  let rep =
    Supervisor.map ~jobs:1 ~name:string_of_int
      (fun x ->
        if Atomic.fetch_and_add calls 1 = 0 then
          raise (Budget.Mem_pressure 4096);
        x * 10)
      [ 5 ]
  in
  (match rep.Supervisor.outcomes with
   | [ { Supervisor.o_attempts = 2; o_result = Ok 50; _ } ] -> ()
   | [ o ] ->
     Alcotest.failf "expected retry success, got %s after %d attempts"
       (result_label o) o.Supervisor.o_attempts
   | _ -> Alcotest.fail "expected one outcome");
  (* with retries exhausted the trip lands as a typed outcome *)
  let rep =
    Supervisor.map
      ~policy:{ Supervisor.default_policy with retries = 0 }
      ~jobs:1 ~name:string_of_int
      (fun _ -> raise (Budget.Mem_pressure 4096))
      [ 5 ]
  in
  match rep.Supervisor.outcomes with
  | [ { Supervisor.o_result = Error (Supervisor.Mem_pressure 4096); _ } ] -> ()
  | [ o ] -> Alcotest.failf "expected Mem_pressure, got %s" (result_label o)
  | _ -> Alcotest.fail "expected one outcome"

let test_attempt_counts_in_string_of_error () =
  Alcotest.(check bool) "timeout names the budget" true
    (Astring_contains.contains
       (Supervisor.string_of_error (Supervisor.Timeout 4096))
       "4096");
  Alcotest.(check bool) "injected names the site" true
    (Astring_contains.contains
       (Supervisor.string_of_error (Supervisor.Injected "supervisor.job"))
       "supervisor.job")

let suite =
  [ Alcotest.test_case "all ok" `Quick test_all_ok;
    Alcotest.test_case "retry succeeds on 2nd attempt" `Quick
      test_retry_succeeds_second_attempt;
    Alcotest.test_case "retries exhausted records crash" `Quick
      test_retries_exhausted_records_crash;
    Alcotest.test_case "trap classified" `Quick test_trap_classified;
    Alcotest.test_case "io classified" `Quick test_io_classified;
    Alcotest.test_case "timeout + fuel backoff" `Quick
      test_timeout_then_fuel_backoff;
    Alcotest.test_case "skip keeps partial results" `Quick
      test_skip_keeps_partial_results;
    Alcotest.test_case "abort cancels remaining (serial)" `Quick
      test_abort_cancels_remaining;
    Alcotest.test_case "abort cancels remaining (parallel)" `Quick
      test_abort_cancels_under_parallel_pool;
    Alcotest.test_case "injected fault survived by retry" `Quick
      test_injected_fault_retried;
    Alcotest.test_case "injected fault recorded" `Quick
      test_injected_fault_recorded_when_retries_exhausted;
    Alcotest.test_case "pool.worker fault classified" `Quick
      test_pool_worker_fault_classified;
    Alcotest.test_case "fused unit trap classified once" `Quick
      test_fused_unit_trap_classified_once;
    Alcotest.test_case "fused retry re-runs whole unit" `Quick
      test_fused_retry_reruns_whole_unit;
    Alcotest.test_case "fused results equal unfused" `Quick
      test_fused_results_equal_unfused;
    Alcotest.test_case "max_fuel caps backoff" `Quick
      test_max_fuel_caps_backoff;
    Alcotest.test_case "backoff jitter is deterministic" `Quick
      test_backoff_jitter_deterministic;
    Alcotest.test_case "deadline fails job, cancels rest" `Quick
      test_deadline_fails_job_and_cancels_rest;
    Alcotest.test_case "mem pressure classified and retried" `Quick
      test_mem_pressure_classified_and_retried;
    Alcotest.test_case "error messages carry detail" `Quick
      test_attempt_counts_in_string_of_error ]
