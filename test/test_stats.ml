(* Tests for the statistics helpers. *)

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.check feq "empty" 0. (Stats.mean [||])

let test_weighted_mean () =
  Alcotest.check feq "weighted" 3.
    (Stats.weighted_mean [| 1.; 5. |] [| 1.; 1. |]);
  Alcotest.check feq "heavy side" 5.
    (Stats.weighted_mean [| 1.; 5. |] [| 0.; 2. |]);
  Alcotest.check feq "zero weights" 0.
    (Stats.weighted_mean [| 1.; 5. |] [| 0.; 0. |]);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Stats.weighted_mean: length mismatch") (fun () ->
      ignore (Stats.weighted_mean [| 1. |] [| 1.; 2. |]))

let test_geomean () =
  Alcotest.check feq "geomean" 4. (Stats.geomean [| 2.; 8. |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive entry") (fun () ->
      ignore (Stats.geomean [| 1.; 0. |]))

let test_stddev () =
  Alcotest.check feq "constant" 0. (Stats.stddev [| 3.; 3.; 3. |]);
  Alcotest.check feq "known" 2. (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check feq "median" 3. (Stats.percentile 50. xs);
  Alcotest.check feq "min" 1. (Stats.percentile 0. xs);
  Alcotest.check feq "max" 5. (Stats.percentile 100. xs);
  Alcotest.check feq "interpolated" 1.2 (Stats.percentile 5. xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.percentile 50. [||]))

let test_percentile_rejects_nan () =
  (* a NaN used to poison the polymorphic sort silently; now it raises *)
  Alcotest.check_raises "nan input"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.percentile 50. [| 1.; Float.nan; 3. |]))

let test_ranks () =
  Alcotest.(check (array feq)) "distinct" [| 2.; 1.; 3. |]
    (Stats.ranks [| 5.; 1.; 9. |]);
  Alcotest.(check (array feq)) "ties averaged" [| 1.5; 1.5; 3. |]
    (Stats.ranks [| 4.; 4.; 7. |]);
  Alcotest.(check (array feq)) "signed zeros tie under Float.equal"
    [| 1.5; 1.5 |]
    (Stats.ranks [| 0.; -0. |]);
  Alcotest.check_raises "nan input" (Invalid_argument "Stats.ranks: NaN input")
    (fun () -> ignore (Stats.ranks [| Float.nan |]))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  Alcotest.check feq "min" (-1.) lo;
  Alcotest.check feq "max" 7. hi

let test_pearson () =
  Alcotest.check feq "perfect" 1.
    (Stats.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  Alcotest.check feq "perfect negative" (-1.)
    (Stats.pearson [| 1.; 2.; 3. |] [| 30.; 20.; 10. |]);
  Alcotest.(check bool) "constant side is nan" true
    (Float.is_nan (Stats.pearson [| 1.; 1. |] [| 1.; 2. |]))

let test_spearman () =
  (* Monotone but non-linear: rank correlation is exactly 1. *)
  Alcotest.check feq "monotone" 1.
    (Stats.spearman [| 1.; 2.; 3.; 4. |] [| 1.; 10.; 100.; 1000. |]);
  Alcotest.check feq "reversed" (-1.)
    (Stats.spearman [| 1.; 2.; 3.; 4. |] [| 8.; 6.; 4.; 2. |])

let test_mae () =
  Alcotest.check feq "mae" 1. (Stats.mae [| 1.; 2. |] [| 2.; 1. |]);
  Alcotest.check feq "empty" 0. (Stats.mae [||] [||])

let finite_floats n =
  QCheck.(array_of_size (Gen.int_range 2 n) (float_range (-1e6) 1e6))

let qcheck_pearson_bounded =
  QCheck.Test.make ~name:"pearson in [-1,1] or nan" ~count:300
    QCheck.(pair (finite_floats 20) (finite_floats 20))
    (fun (xs, ys) ->
      let n = min (Array.length xs) (Array.length ys) in
      QCheck.assume (n >= 2);
      let xs = Array.sub xs 0 n and ys = Array.sub ys 0 n in
      let r = Stats.pearson xs ys in
      Float.is_nan r || (r >= -1.0000001 && r <= 1.0000001))

let qcheck_percentile_bounded =
  QCheck.Test.make ~name:"percentile between min and max" ~count:300
    (finite_floats 30)
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let p = Stats.percentile 37.5 xs in
      p >= lo -. 1e-9 && p <= hi +. 1e-9)

let qcheck_mean_bounded =
  QCheck.Test.make ~name:"mean between min and max" ~count:300
    (finite_floats 30)
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let suite =
  [ Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "spearman" `Quick test_spearman;
    Alcotest.test_case "mae" `Quick test_mae;
    QCheck_alcotest.to_alcotest qcheck_pearson_bounded;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounded;
    QCheck_alcotest.to_alcotest qcheck_mean_bounded ]
