(* Resource governance: arming discipline, deadline and heap-watermark
   enforcement, the degradation ladder with its callbacks, the disk
   guard, and cooperative termination out of a governed machine run. *)

open Isa

(* Every test resets the ladder and disarms on exit so a failing
   assertion cannot leak an armed budget into later suites. *)
let governed f = Fun.protect ~finally:Budget.Testing.reset f

let loop_program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.label b "loop";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.cmplti b ~dst:t1 t0 n;
      Asm.br b Ne t1 "loop";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_disarmed_noop () =
  Alcotest.(check bool) "disarmed" false (Budget.armed ());
  Budget.poll ();
  Budget.charge_disk ~bytes:1_000_000;
  Alcotest.(check int) "level stays 0" 0 (Budget.degrade_level ())

let test_govern_arms_and_disarms () =
  governed (fun () ->
      Budget.govern Budget.no_limits (fun () ->
          Alcotest.(check bool) "armed inside" true (Budget.armed ());
          Budget.poll ());
      Alcotest.(check bool) "disarmed after" false (Budget.armed ()))

let test_no_nesting () =
  governed (fun () ->
      Budget.govern Budget.no_limits (fun () ->
          match Budget.arm Budget.no_limits with
          | () -> Alcotest.fail "nested arm must be rejected"
          | exception Invalid_argument _ -> ()))

let test_deadline_raises () =
  governed (fun () ->
      match
        Budget.govern
          { Budget.no_limits with deadline = Some 0.001 }
          (fun () ->
            Unix.sleepf 0.005;
            Budget.poll ())
      with
      | () -> Alcotest.fail "expected Deadline_exceeded"
      | exception Budget.Deadline_exceeded s ->
        Alcotest.(check (float 1e-9)) "carries the budget" 0.001 s);
  Alcotest.(check bool) "disarmed after the trip" false (Budget.armed ())

let test_machine_run_cooperative () =
  (* a governed machine run past its deadline unwinds cooperatively: the
     exception leaves the machine's own exception path, with the partial
     instruction count still readable *)
  governed (fun () ->
      let m = Machine.create (loop_program 5_000_000L) in
      match
        Budget.govern
          { Budget.no_limits with deadline = Some 0.001 }
          (fun () -> Machine.run m)
      with
      | _ -> Alcotest.fail "run must trip the 1ms deadline"
      | exception Budget.Deadline_exceeded _ ->
        Alcotest.(check bool) "partial progress is visible" true
          (Machine.icount m > 0))

let test_mem_pressure_raises_without_degrade () =
  governed (fun () ->
      match
        Budget.govern
          { Budget.no_limits with max_heap_words = Some 0 }
          Budget.poll
      with
      | () -> Alcotest.fail "expected Mem_pressure"
      | exception Budget.Mem_pressure words ->
        Alcotest.(check bool) "carries the observed heap" true (words > 0))

let test_degrade_ladder_saturates () =
  governed (fun () ->
      Budget.govern
        { Budget.no_limits with max_heap_words = Some 0; degrade = true }
        (fun () ->
          Budget.poll ();
          Alcotest.(check bool) "first breach steps the ladder" true
            (Budget.degrade_level () >= 1);
          (* keep breaching: the ladder saturates instead of raising *)
          for _ = 1 to 10 do
            Budget.poll ()
          done;
          Alcotest.(check int) "saturates at max_degrade_level"
            Budget.max_degrade_level
            (Budget.degrade_level ()));
      Alcotest.(check int) "disarm resets the level" 0
        (Budget.degrade_level ()))

let test_disk_guard () =
  governed (fun () ->
      match
        Budget.govern
          { Budget.no_limits with max_checkpoint_bytes = Some 100 }
          (fun () ->
            Budget.charge_disk ~bytes:60;
            Budget.charge_disk ~bytes:60)
      with
      | () -> Alcotest.fail "expected Disk_over_budget"
      | exception Budget.Disk_over_budget total ->
        Alcotest.(check int) "carries the cumulative total" 120 total)

let test_on_degrade_callbacks () =
  governed (fun () ->
      Budget.govern Budget.no_limits (fun () ->
          let seen = ref [] in
          let id = Budget.on_degrade (fun lvl -> seen := lvl :: !seen) in
          Budget.Testing.force_step ();
          Budget.Testing.force_step ();
          Alcotest.(check (list int)) "called per step, in order" [ 1; 2 ]
            (List.rev !seen);
          Budget.remove_on_degrade id;
          Budget.Testing.force_step ();
          Alcotest.(check (list int)) "removed callbacks stay quiet" [ 1; 2 ]
            (List.rev !seen)))

let test_callback_lazy_delivery () =
  (* a step that bypasses this domain's delivery (set_level stands in for
     a breach observed on another domain) is caught up by the next poll,
     not by the step itself *)
  governed (fun () ->
      Budget.govern Budget.no_limits (fun () ->
          let seen = ref [] in
          let _ = Budget.on_degrade (fun lvl -> seen := lvl :: !seen) in
          Budget.Testing.set_level 2;
          Alcotest.(check (list int)) "not yet delivered" [] !seen;
          Budget.poll ();
          Alcotest.(check (list int)) "poll catches the callback up" [ 2 ]
            (List.rev !seen)))

let test_elapsed () =
  governed (fun () ->
      Alcotest.(check (float 1e-9)) "0 when disarmed" 0. (Budget.elapsed ());
      Budget.govern Budget.no_limits (fun () ->
          Unix.sleepf 0.002;
          Alcotest.(check bool) "clock runs while armed" true
            (Budget.elapsed () > 0.)))

let suite =
  [ Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
    Alcotest.test_case "govern arms and disarms" `Quick
      test_govern_arms_and_disarms;
    Alcotest.test_case "governed sections do not nest" `Quick test_no_nesting;
    Alcotest.test_case "deadline raises" `Quick test_deadline_raises;
    Alcotest.test_case "machine run terminates cooperatively" `Quick
      test_machine_run_cooperative;
    Alcotest.test_case "mem pressure raises without degrade" `Quick
      test_mem_pressure_raises_without_degrade;
    Alcotest.test_case "degradation ladder saturates" `Quick
      test_degrade_ladder_saturates;
    Alcotest.test_case "disk guard" `Quick test_disk_guard;
    Alcotest.test_case "on_degrade callbacks" `Quick test_on_degrade_callbacks;
    Alcotest.test_case "lazy callback delivery" `Quick
      test_callback_lazy_delivery;
    Alcotest.test_case "elapsed" `Quick test_elapsed ]
