(* Deterministic fault injection: exact-hit firing, truncation budgets,
   spec parsing, env loading, and the machine.step site end-to-end. *)

open Isa

(* Every test disarms on exit so a failing assertion cannot leak an armed
   site into later suites. *)
let with_faults f = Fun.protect ~finally:Fault.disarm f

let test_disarmed_noop () =
  Fault.disarm ();
  Alcotest.(check bool) "disabled" false (Fault.enabled ());
  Fault.point ~site:"anything";
  Alcotest.(check (option int)) "no cut" None (Fault.cut ~site:"anything");
  Alcotest.(check int) "no hits tracked" 0 (Fault.hits ~site:"anything")

let test_fires_exactly_once () =
  with_faults (fun () ->
      Fault.arm ~site:"s" ~at:3 ();
      Alcotest.(check bool) "enabled" true (Fault.enabled ());
      Fault.point ~site:"s";
      Fault.point ~site:"s";
      (match Fault.point ~site:"s" with
       | () -> Alcotest.fail "expected Injected on the 3rd hit"
       | exception Fault.Injected site ->
         Alcotest.(check string) "carries the site" "s" site);
      (* spent: quiet forever after *)
      Fault.point ~site:"s";
      Fault.point ~site:"s";
      Alcotest.(check int) "hits keep counting" 5 (Fault.hits ~site:"s");
      (* unarmed sites are unaffected while another site is armed *)
      Fault.point ~site:"other")

let test_rearm_replaces () =
  with_faults (fun () ->
      Fault.arm ~site:"s" ~at:100 ();
      Fault.arm ~site:"s" ~at:1 ();
      match Fault.point ~site:"s" with
      | () -> Alcotest.fail "re-arming must reset the countdown"
      | exception Fault.Injected _ -> ())

let test_truncate_cut () =
  with_faults (fun () ->
      Fault.arm ~action:(Fault.Truncate 512) ~site:"w" ~at:2 ();
      Alcotest.(check (option int)) "first hit passes" None (Fault.cut ~site:"w");
      Alcotest.(check (option int)) "second hit cuts" (Some 512)
        (Fault.cut ~site:"w");
      Alcotest.(check (option int)) "spent" None (Fault.cut ~site:"w");
      (* a Truncate arming never fires the crash-style site *)
      Fault.point ~site:"w")

let test_arm_rejects_empty_site () =
  match Fault.arm ~site:"" ~at:1 () with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_arm_spec () =
  with_faults (fun () ->
      Fault.arm_spec "a@2, b@1@77";
      Fault.point ~site:"a";
      (match Fault.point ~site:"a" with
       | () -> Alcotest.fail "a must fire on its 2nd hit"
       | exception Fault.Injected _ -> ());
      Alcotest.(check (option int)) "b is a truncate arming" (Some 77)
        (Fault.cut ~site:"b"))

let test_arm_spec_malformed () =
  let rejects spec =
    match Fault.arm_spec spec with
    | () -> Alcotest.failf "spec %S must be rejected" spec
    | exception Invalid_argument _ -> Fault.disarm ()
  in
  rejects "nope";
  rejects "x@";
  rejects "@3";
  rejects "x@1@-2";
  rejects "x@1@2@3"

let test_load_env () =
  with_faults (fun () ->
      Unix.putenv Fault.env_var "envsite@1";
      Fun.protect
        ~finally:(fun () -> Unix.putenv Fault.env_var "")
        (fun () ->
          Fault.load_env ();
          match Fault.point ~site:"envsite" with
          | () -> Alcotest.fail "env-armed site must fire"
          | exception Fault.Injected _ -> ()));
  (* an empty variable arms nothing *)
  Fault.load_env ();
  Alcotest.(check bool) "empty env leaves faults off" false (Fault.enabled ())

let program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.label b "loop";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.cmplti b ~dst:t1 t0 n;
      Asm.br b Ne t1 "loop";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_machine_step_site () =
  (* the machine's inner loop passes "machine.step" every instruction:
     arming hit k kills the run after exactly k - 1 completed steps *)
  let prog = program 50L in
  with_faults (fun () ->
      Fault.arm ~site:"machine.step" ~at:10 ();
      (match Machine.run (Machine.create prog) with
       | _ -> Alcotest.fail "expected Injected out of Machine.run"
       | exception Fault.Injected site ->
         Alcotest.(check string) "site" "machine.step" site);
      Alcotest.(check int) "fired on the 10th step" 10
        (Fault.hits ~site:"machine.step"));
  (* disarmed, the same machine program runs to completion *)
  let steps = Machine.run (Machine.create prog) in
  Alcotest.(check bool) "fault-free run completes" true (steps > 10)

let suite =
  [ Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
    Alcotest.test_case "fires exactly once, on the at-th hit" `Quick
      test_fires_exactly_once;
    Alcotest.test_case "re-arm replaces" `Quick test_rearm_replaces;
    Alcotest.test_case "truncate budget via cut" `Quick test_truncate_cut;
    Alcotest.test_case "empty site rejected" `Quick test_arm_rejects_empty_site;
    Alcotest.test_case "spec grammar" `Quick test_arm_spec;
    Alcotest.test_case "malformed specs rejected" `Quick test_arm_spec_malformed;
    Alcotest.test_case "load_env" `Quick test_load_env;
    Alcotest.test_case "machine.step site" `Quick test_machine_step_site ]
