(* Deterministic fault injection: exact-hit firing, truncation budgets,
   spec parsing, env loading, and the machine.step site end-to-end. *)

open Isa

(* Every test disarms on exit so a failing assertion cannot leak an armed
   site into later suites. *)
let with_faults f = Fun.protect ~finally:Fault.disarm f

let test_disarmed_noop () =
  Fault.disarm ();
  Alcotest.(check bool) "disabled" false (Fault.enabled ());
  Fault.point ~site:"anything";
  Alcotest.(check (option int)) "no cut" None (Fault.cut ~site:"anything");
  Alcotest.(check int) "no hits tracked" 0 (Fault.hits ~site:"anything")

let test_fires_exactly_once () =
  with_faults (fun () ->
      Fault.arm ~site:"s" ~at:3 ();
      Alcotest.(check bool) "enabled" true (Fault.enabled ());
      Fault.point ~site:"s";
      Fault.point ~site:"s";
      (match Fault.point ~site:"s" with
       | () -> Alcotest.fail "expected Injected on the 3rd hit"
       | exception Fault.Injected site ->
         Alcotest.(check string) "carries the site" "s" site);
      (* spent: quiet forever after *)
      Fault.point ~site:"s";
      Fault.point ~site:"s";
      Alcotest.(check int) "hits keep counting" 5 (Fault.hits ~site:"s");
      (* unarmed sites are unaffected while another site is armed *)
      Fault.point ~site:"other")

let test_rearm_replaces () =
  with_faults (fun () ->
      Fault.arm ~site:"s" ~at:100 ();
      Fault.arm ~site:"s" ~at:1 ();
      match Fault.point ~site:"s" with
      | () -> Alcotest.fail "re-arming must reset the countdown"
      | exception Fault.Injected _ -> ())

let test_truncate_cut () =
  with_faults (fun () ->
      Fault.arm ~action:(Fault.Truncate 512) ~site:"w" ~at:2 ();
      Alcotest.(check (option int)) "first hit passes" None (Fault.cut ~site:"w");
      Alcotest.(check (option int)) "second hit cuts" (Some 512)
        (Fault.cut ~site:"w");
      Alcotest.(check (option int)) "spent" None (Fault.cut ~site:"w");
      (* a Truncate arming never fires the crash-style site *)
      Fault.point ~site:"w")

let test_arm_rejects_empty_site () =
  match Fault.arm ~site:"" ~at:1 () with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_n_shot_window () =
  with_faults (fun () ->
      (* count = 3 starting at hit 2: hits 2, 3, 4 fire; 1 and 5+ pass *)
      Fault.arm ~site:"s" ~at:2 ~count:3 ();
      Fault.point ~site:"s";
      for _ = 1 to 3 do
        match Fault.point ~site:"s" with
        | () -> Alcotest.fail "hits 2..4 must all fire"
        | exception Fault.Injected _ -> ()
      done;
      Fault.point ~site:"s";
      Alcotest.(check int) "window exhausted after at+count-1" 5
        (Fault.hits ~site:"s"))

let test_prob_deterministic () =
  (* the same seed gives the same firing pattern; Truncate keeps the
     firing observable without unwinding, so the whole stream compares *)
  let pattern seed =
    Fault.disarm ();
    Fault.set_seed seed;
    Fault.arm_prob ~action:(Fault.Truncate 1) ~site:"p" ~p:0.3 ();
    let fired = List.init 200 (fun _ -> Fault.cut ~site:"p" <> None) in
    Fault.disarm ();
    fired
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.set_seed Fault.default_seed)
    (fun () ->
      let a = pattern 42L and b = pattern 42L and c = pattern 43L in
      Alcotest.(check (list bool)) "same seed, same pattern" a b;
      Alcotest.(check bool) "some hits fire, some pass" true
        (List.mem true a && List.mem false a);
      Alcotest.(check bool) "different seed, different pattern" true (a <> c))

let test_prob_rejects_bad_p () =
  let rejects p =
    match Fault.arm_prob ~site:"p" ~p () with
    | () -> Alcotest.failf "p = %g must be rejected" p
    | exception Invalid_argument _ -> Fault.disarm ()
  in
  rejects 0.;
  rejects (-0.5);
  rejects 1.5

let test_concurrent_sites () =
  with_faults (fun () ->
      Fault.arm ~site:"a" ~at:1 ();
      Fault.arm ~site:"b" ~at:2 ();
      Fault.arm ~action:(Fault.Truncate 9) ~site:"c" ~at:1 ();
      (match Fault.point ~site:"a" with
       | () -> Alcotest.fail "a fires on hit 1"
       | exception Fault.Injected site ->
         Alcotest.(check string) "a" "a" site);
      Fault.point ~site:"b";
      Alcotest.(check (option int)) "c cuts independently" (Some 9)
        (Fault.cut ~site:"c");
      match Fault.point ~site:"b" with
      | () -> Alcotest.fail "b fires on hit 2"
      | exception Fault.Injected site -> Alcotest.(check string) "b" "b" site)

let test_arm_spec () =
  with_faults (fun () ->
      Fault.arm_spec "a@2, b@1@77";
      Fault.point ~site:"a";
      (match Fault.point ~site:"a" with
       | () -> Alcotest.fail "a must fire on its 2nd hit"
       | exception Fault.Injected _ -> ());
      Alcotest.(check (option int)) "b is a truncate arming" (Some 77)
        (Fault.cut ~site:"b"))

let test_arm_spec_campaign_grammar () =
  with_faults (fun () ->
      Fault.arm_spec "burst@1#2, maybe@~0.5, torn@~1@33";
      (* burst: N-shot over hits 1..2 *)
      (match Fault.point ~site:"burst" with
       | () -> Alcotest.fail "burst hit 1 must fire"
       | exception Fault.Injected _ -> ());
      (match Fault.point ~site:"burst" with
       | () -> Alcotest.fail "burst hit 2 must fire"
       | exception Fault.Injected _ -> ());
      Fault.point ~site:"burst";
      (* torn: probabilistic truncate with p = 1 fires every hit *)
      Alcotest.(check (option int)) "p=1 truncate always cuts" (Some 33)
        (Fault.cut ~site:"torn");
      Alcotest.(check (option int)) "and keeps cutting" (Some 33)
        (Fault.cut ~site:"torn");
      (* maybe: armed (counts hits) whatever the draw *)
      (try Fault.point ~site:"maybe" with Fault.Injected _ -> ());
      Alcotest.(check bool) "prob site counts hits" true
        (Fault.hits ~site:"maybe" = 1))

(* A firing Kill SIGKILLs the whole process, so the test runner must
   never let one fire in-process: this only checks the grammar and the
   not-yet-firing hits (the firing path is covered end-to-end by the CLI
   kill tests and the chaos --kill-loop campaign, in subprocesses). *)
let test_arm_spec_kill () =
  with_faults (fun () ->
      Fault.arm_spec "k@5@kill, torn@1@12";
      (* a Kill arming is not a Truncate: cut never fires it *)
      Alcotest.(check (option int)) "kill site does not cut" None
        (Fault.cut ~site:"k");
      (* hits below the arming threshold are safe and counted *)
      Fault.point ~site:"k";
      Fault.point ~site:"k";
      Alcotest.(check int) "kill site counts hits" 2 (Fault.hits ~site:"k");
      Alcotest.(check (option int)) "sibling truncate still cuts" (Some 12)
        (Fault.cut ~site:"torn"))

let test_arm_spec_malformed () =
  let rejects spec =
    match Fault.arm_spec spec with
    | () -> Alcotest.failf "spec %S must be rejected" spec
    | exception Invalid_argument _ -> Fault.disarm ()
  in
  rejects "nope";
  rejects "x@";
  rejects "@3";
  rejects "x@1@-2";
  rejects "x@1@2@3";
  (* campaign grammar *)
  rejects "x@1#0";
  rejects "x@1#";
  rejects "x@~0";
  rejects "x@~2";
  rejects "x@~nan";
  (* empty entries are an error, not silently ignored *)
  rejects "a@1,,b@1";
  rejects ",a@1";
  rejects "a@1,"

let test_load_env () =
  with_faults (fun () ->
      Unix.putenv Fault.env_var "envsite@1";
      Fun.protect
        ~finally:(fun () -> Unix.putenv Fault.env_var "")
        (fun () ->
          Fault.load_env ();
          match Fault.point ~site:"envsite" with
          | () -> Alcotest.fail "env-armed site must fire"
          | exception Fault.Injected _ -> ()));
  (* an empty variable arms nothing *)
  Fault.load_env ();
  Alcotest.(check bool) "empty env leaves faults off" false (Fault.enabled ())

let test_load_env_seed () =
  let clear () =
    Unix.putenv Fault.env_var "";
    Unix.putenv Fault.seed_env_var "";
    Fault.disarm ();
    Fault.set_seed Fault.default_seed
  in
  Fun.protect ~finally:clear (fun () ->
      (* a malformed seed is a usage error, reported before arming *)
      Unix.putenv Fault.env_var "s@1";
      Unix.putenv Fault.seed_env_var "notanumber";
      (match Fault.load_env () with
       | () -> Alcotest.fail "malformed seed must be rejected"
       | exception Invalid_argument _ -> ());
      Alcotest.(check bool) "nothing armed after the rejection" false
        (Fault.enabled ());
      (* a good seed makes the env-armed probabilistic site reproducible *)
      let pattern () =
        Fault.disarm ();
        Unix.putenv Fault.env_var "p@~0.4@1";
        Unix.putenv Fault.seed_env_var "7";
        Fault.load_env ();
        List.init 100 (fun _ -> Fault.cut ~site:"p" <> None)
      in
      let a = pattern () and b = pattern () in
      Alcotest.(check (list bool)) "seeded campaigns replay" a b)

let program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.label b "loop";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.cmplti b ~dst:t1 t0 n;
      Asm.br b Ne t1 "loop";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_machine_step_site () =
  (* the machine's inner loop passes "machine.step" every instruction:
     arming hit k kills the run after exactly k - 1 completed steps *)
  let prog = program 50L in
  with_faults (fun () ->
      Fault.arm ~site:"machine.step" ~at:10 ();
      (match Machine.run (Machine.create prog) with
       | _ -> Alcotest.fail "expected Injected out of Machine.run"
       | exception Fault.Injected site ->
         Alcotest.(check string) "site" "machine.step" site);
      Alcotest.(check int) "fired on the 10th step" 10
        (Fault.hits ~site:"machine.step"));
  (* disarmed, the same machine program runs to completion *)
  let steps = Machine.run (Machine.create prog) in
  Alcotest.(check bool) "fault-free run completes" true (steps > 10)

let suite =
  [ Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
    Alcotest.test_case "fires exactly once, on the at-th hit" `Quick
      test_fires_exactly_once;
    Alcotest.test_case "re-arm replaces" `Quick test_rearm_replaces;
    Alcotest.test_case "truncate budget via cut" `Quick test_truncate_cut;
    Alcotest.test_case "empty site rejected" `Quick test_arm_rejects_empty_site;
    Alcotest.test_case "N-shot window" `Quick test_n_shot_window;
    Alcotest.test_case "probabilistic firing is seeded" `Quick
      test_prob_deterministic;
    Alcotest.test_case "bad probabilities rejected" `Quick
      test_prob_rejects_bad_p;
    Alcotest.test_case "concurrent sites" `Quick test_concurrent_sites;
    Alcotest.test_case "spec grammar" `Quick test_arm_spec;
    Alcotest.test_case "campaign spec grammar" `Quick
      test_arm_spec_campaign_grammar;
    Alcotest.test_case "kill spec grammar" `Quick test_arm_spec_kill;
    Alcotest.test_case "malformed specs rejected" `Quick test_arm_spec_malformed;
    Alcotest.test_case "load_env" `Quick test_load_env;
    Alcotest.test_case "load_env campaign seed" `Quick test_load_env_seed;
    Alcotest.test_case "machine.step site" `Quick test_machine_step_site ]
