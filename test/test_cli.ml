(* End-to-end tests of the vprof binary: each subcommand runs against the
   real executable (declared as a dune dependency) and its output is
   checked for the expected shape. *)

let vprof = "../bin/vprof.exe"

(* Runs the binary, returns (exit_code, combined output). [env] is a
   shell-syntax variable prefix, e.g. ["VPROF_FAULT=site@1"]. *)
let run_cli ?(env = "") args =
  let out = Filename.temp_file "vprof_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s%s %s > %s 2>&1"
          (if env = "" then "" else env ^ " ")
          (Filename.quote vprof) args (Filename.quote out)
      in
      let code = Sys.command cmd in
      let ic = open_in out in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      (code, text))

let check_ok name args expectations =
  let code, out = run_cli args in
  Alcotest.(check int) (name ^ ": exit code") 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output mentions %S" name needle)
        true
        (Astring_contains.contains out needle))
    expectations

let test_binary_present () =
  Alcotest.(check bool) "vprof.exe built" true (Sys.file_exists vprof)

let test_list () =
  check_ok "list" "list" [ "compress"; "m88ksim"; "fpppp"; "SPEC95" ]

let test_run () = check_ok "run" "run -w li" [ "li"; "dynamic instructions" ]

let test_profile () =
  check_ok "profile" "profile -w go -s loads -t 3"
    [ "Inv-Top"; "LVP"; "predictor"; "eval" ]

let test_memory () =
  check_ok "memory" "memory -w alvinn -t 2" [ "locations"; "invariant" ]

let test_procs () = check_ok "procs" "procs -w m88ksim" [ "execute"; "calls" ]

let test_specialize () =
  check_ok "specialize" "specialize -w m88ksim"
    [ "execute"; "results identical" ]

let test_memoize () =
  check_ok "memoize" "memoize -w vortex -p find -a 2"
    [ "memoized find/2"; "results identical" ]

let test_experiment () =
  check_ok "experiment" "experiment e01" [ "Table III.1"; "compress" ]

let test_experiments_parallel () =
  check_ok "experiments -j" "experiments e01 -j 2" [ "Table III.1"; "compress" ]

(* The exit-code contract: 0 success, 1 runtime failure (trap, injected
   fault, failed experiment), 2 usage error. *)
let test_fuel_trap () =
  let code, out = run_cli "run -w li --fuel 1000" in
  Alcotest.(check int) "runtime failures exit 1" 1 code;
  Alcotest.(check bool) "reports the trap" true
    (Astring_contains.contains out "fuel exhausted")

let test_diff () = check_ok "diff" "diff -w cc -t 3" [ "correlation" ]

let test_emit_roundtrip () =
  let code, out = run_cli "emit -w perl" in
  Alcotest.(check int) "emit exit" 0 code;
  let path = Filename.temp_file "vprof_cli" ".vasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc out;
      close_out oc;
      check_ok "run emitted file"
        (Printf.sprintf "run -w %s" (Filename.quote path))
        [ "dynamic instructions" ])

let test_unknown_workload_fails () =
  let code, out = run_cli "run -w doom" in
  Alcotest.(check int) "usage errors exit 2" 2 code;
  Alcotest.(check bool) "helpful message" true
    (Astring_contains.contains out "unknown workload")

let test_unknown_experiment_fails () =
  let code, _ = run_cli "experiment e99" in
  Alcotest.(check int) "usage errors exit 2" 2 code

let test_bad_flag_usage_error () =
  let code, _ = run_cli "run --no-such-flag" in
  Alcotest.(check int) "cmdliner usage errors exit 2" 2 code

let test_malformed_fault_spec_usage_error () =
  let code, out = run_cli ~env:"VPROF_FAULT=broken" "list" in
  Alcotest.(check int) "bad VPROF_FAULT exits 2" 2 code;
  Alcotest.(check bool) "names the bad entry" true
    (Astring_contains.contains out "broken")

let temp_dir () =
  let path = Filename.temp_file "vprof_cli_ck" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let test_checkpoint_resume_byte_identical () =
  (* the acceptance scenario end-to-end through the binary: a run killed
     by an injected fault, resumed from its checkpoint, must print exactly
     what a fault-free run prints *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let plain_code, plain = run_cli "experiments e01" in
      Alcotest.(check int) "fault-free run" 0 plain_code;
      let crash_code, crash_out =
        run_cli ~env:"VPROF_FAULT=supervisor.job@1"
          (Printf.sprintf "experiments e01 --checkpoint %s --retries 0"
             (Filename.quote dir))
      in
      Alcotest.(check int) "injected crash exits 1" 1 crash_code;
      Alcotest.(check bool) "reports the injected fault" true
        (Astring_contains.contains crash_out "injected fault");
      Alcotest.(check bool) "failure report written" true
        (Sys.file_exists (Filename.concat dir "failures.txt"));
      let resume_code, resumed =
        run_cli
          (Printf.sprintf "experiments e01 --checkpoint %s --resume"
             (Filename.quote dir))
      in
      Alcotest.(check int) "resume succeeds" 0 resume_code;
      Alcotest.(check string) "resume byte-identical to fault-free run"
        plain resumed)

let test_checkpoint_completes_and_resume_skips () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let code, first =
        run_cli
          (Printf.sprintf "experiments e01 --checkpoint %s"
             (Filename.quote dir))
      in
      Alcotest.(check int) "checkpointed run" 0 code;
      let code, second =
        run_cli
          (Printf.sprintf "experiments e01 --checkpoint %s --resume"
             (Filename.quote dir))
      in
      Alcotest.(check int) "resume of a complete run" 0 code;
      Alcotest.(check string) "served from the store, same bytes" first
        second)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_files suffixes f =
  let files = List.map (fun s -> Filename.temp_file "vprof_cli" s) suffixes in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) files)
    (fun () -> f files)

(* ---- the profile store through the binary --------------------------

   run_cli merges stdout and stderr, so byte-identity of the rendered
   tables is asserted by redirecting stdout alone; the stderr accounting
   lines are checked by substring. *)

let test_store_warm_run_served_from_cache () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_temp_files [ ".cold.out"; ".warm.out"; ".metrics" ] @@ function
      | [ cold_out; warm_out; metrics ] ->
        let cold_code =
          Sys.command
            (Printf.sprintf "%s experiments e01 --store %s > %s 2>/dev/null"
               (Filename.quote vprof) (Filename.quote dir)
               (Filename.quote cold_out))
        in
        Alcotest.(check int) "cold run" 0 cold_code;
        let warm_code =
          Sys.command
            (Printf.sprintf
               "%s experiments e01 --store %s --metrics %s > %s 2>/dev/null"
               (Filename.quote vprof) (Filename.quote dir)
               (Filename.quote metrics) (Filename.quote warm_out))
        in
        Alcotest.(check int) "warm run" 0 warm_code;
        Alcotest.(check string) "stdout byte-identical" (read_file cold_out)
          (read_file warm_out);
        let m = read_file metrics in
        Alcotest.(check bool) "warm run is all store hits" true
          (Astring_contains.contains m
             "{\"name\":\"store.hits\",\"type\":\"counter\",\"value\":1}");
        Alcotest.(check bool) "warm run executes zero machines" true
          (Astring_contains.contains m
             "{\"name\":\"machine.runs\",\"type\":\"counter\",\"value\":0}");
        (* the hit accounting goes to stderr, not the table stream *)
        let _, combined =
          run_cli
            (Printf.sprintf "experiments e01 --store %s" (Filename.quote dir))
        in
        Alcotest.(check bool) "stderr reports the cache service" true
          (Astring_contains.contains combined
             "1 of 1 experiments served from cache")
      | _ -> assert false)

let test_store_profile_and_inspection_subcommands () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let code, out =
        run_cli (Printf.sprintf "profile -w li -t 3 --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "profile with store" 0 code;
      Alcotest.(check bool) "first run misses" true
        (Astring_contains.contains out "store: miss");
      let code, out =
        run_cli (Printf.sprintf "profile -w li -t 3 --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "repeat profile" 0 code;
      Alcotest.(check bool) "repeat run hits" true
        (Astring_contains.contains out "store: hit");
      let code, out =
        run_cli (Printf.sprintf "store ls --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "store ls" 0 code;
      Alcotest.(check bool) "lists the profile entry" true
        (Astring_contains.contains out "profile.li.test");
      let code, out =
        run_cli (Printf.sprintf "store stats --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "store stats" 0 code;
      Alcotest.(check bool) "reports the entry count" true
        (Astring_contains.contains out "entries");
      (* every profiling invocation bumped the generation, so a tight gc
         removes the (old-generation) entry *)
      let code, out =
        run_cli (Printf.sprintf "store gc --store %s --keep 1" (Filename.quote dir))
      in
      Alcotest.(check int) "store gc" 0 code;
      Alcotest.(check bool) "removed the stale entry" true
        (Astring_contains.contains out "removed 1 entry");
      let code, out =
        run_cli (Printf.sprintf "store ls --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "store ls after gc" 0 code;
      Alcotest.(check bool) "entry gone" true
        (not (Astring_contains.contains out "profile.li.test")))

let test_store_get_and_missing_key () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let code, _ =
        run_cli (Printf.sprintf "profile -w li -t 3 --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "seed the store" 0 code;
      let _, ls = run_cli (Printf.sprintf "store ls --store %s" (Filename.quote dir)) in
      let key =
        String.split_on_char '\n' ls
        |> List.find_map (fun line ->
               String.split_on_char ' ' line
               |> List.find_opt (fun tok ->
                      String.length tok > 11
                      && String.sub tok 0 11 = "profile.li."))
      in
      match key with
      | None -> Alcotest.fail "store ls should show the committed key"
      | Some key ->
        let code, out =
          run_cli
            (Printf.sprintf "store get --store %s -w li %s" (Filename.quote dir)
               (Filename.quote key))
        in
        Alcotest.(check int) "store get decodes" 0 code;
        Alcotest.(check bool) "prints the v2 text form" true
          (Astring_contains.contains out "vprof-profile 2");
        let code, out =
          run_cli (Printf.sprintf "store get --store %s no-such-key" (Filename.quote dir))
        in
        Alcotest.(check int) "missing key exits 1" 1 code;
        Alcotest.(check bool) "names the key" true
          (Astring_contains.contains out "no-such-key"))

(* ---- resource governance through the binary -----------------------

   The exit-code contract grows exit 3 (resource budget exceeded), and a
   budget trip must still write its telemetry dump on the way out. *)

let test_deadline_exits_3_with_full_dump () =
  with_temp_files [ ".trace.json"; ".metrics" ] @@ function
  | [ trace; metrics ] ->
    let code, out =
      run_cli
        (Printf.sprintf "profile -w go --deadline 0.001 --trace %s --metrics %s"
           (Filename.quote trace) (Filename.quote metrics))
    in
    Alcotest.(check int) "budget trips exit 3" 3 code;
    Alcotest.(check bool) "message names the deadline" true
      (Astring_contains.contains out "deadline exceeded");
    (* the dump is complete despite the early death *)
    Alcotest.(check bool) "trace records the trip" true
      (Astring_contains.contains (read_file trace) "budget.deadline");
    Alcotest.(check bool) "metrics record the trip" true
      (Astring_contains.contains (read_file metrics) "budget.deadline_trips")
  | _ -> assert false

let test_mem_pressure_exits_3_without_degrade () =
  let code, out = run_cli "profile -w li --max-heap 0" in
  Alcotest.(check int) "watermark trips exit 3" 3 code;
  Alcotest.(check bool) "message suggests --degrade" true
    (Astring_contains.contains out "--degrade")

let test_mem_pressure_degrades_and_completes () =
  with_temp_files [ ".metrics" ] @@ function
  | [ metrics ] ->
    let code, out =
      run_cli
        (Printf.sprintf
           "profile -w li -s loads -t 3 --max-heap 0 --degrade --metrics %s"
           (Filename.quote metrics))
    in
    Alcotest.(check int) "degraded run completes" 0 code;
    Alcotest.(check bool) "still prints the table" true
      (Astring_contains.contains out "Inv-Top");
    let m = read_file metrics in
    Alcotest.(check bool) "degradation steps counted" true
      (Astring_contains.contains m "degrade.steps");
    Alcotest.(check bool) "final ladder level exported" true
      (Astring_contains.contains m "degrade.level")
  | _ -> assert false

let test_experiments_deadline_fails_jobs_not_process () =
  (* under supervision a budget trip is a per-job failure: the suite
     reports it and exits 1, not 3 *)
  let code, out = run_cli "experiments e01 --deadline 0.0001 --retries 0" in
  Alcotest.(check int) "supervised budget trips exit 1" 1 code;
  Alcotest.(check bool) "failure names the deadline" true
    (Astring_contains.contains out "deadline exceeded");
  Alcotest.(check bool) "experiment recorded as failed" true
    (Astring_contains.contains out "FAILED")

let test_multi_site_fault_spec_malformed_entry () =
  (* a campaign spec dies on its malformed entry, naming it *)
  let code, out =
    run_cli ~env:"VPROF_FAULT=supervisor.job@1,machine.step@~2" "list"
  in
  Alcotest.(check int) "bad entry in a campaign exits 2" 2 code;
  Alcotest.(check bool) "names the offending entry" true
    (Astring_contains.contains out "machine.step@~2")

(* ---- store durability through the binary ---------------------------

   The crash-consistency contract end-to-end: verify exits 4 on damage,
   repair restores byte-identical copies, scrub quarantines rather than
   deletes, and a kill -9 at any commit site never loses an acknowledged
   profile. *)

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let payload_file dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".out")
  |> function
  | [ f ] -> Filename.concat dir f
  | fs -> Alcotest.failf "expected one payload file, found %d" (List.length fs)

let flip_byte path =
  let text = read_file path in
  let b = Bytes.of_string text in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xFF));
  write_file path (Bytes.to_string b)

let test_store_verify_repair_scrub_cycle () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let code, _ =
        run_cli
          (Printf.sprintf "profile -w li -t 3 --store %s --replicas 1"
             (Filename.quote dir))
      in
      Alcotest.(check int) "seed with one replica" 0 code;
      let primary = payload_file dir in
      let pristine = read_file primary in
      let code, out =
        run_cli (Printf.sprintf "store verify --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "clean store verifies 0" 0 code;
      Alcotest.(check bool) "reports the copies" true
        (Astring_contains.contains out "copies ok");
      (* one flipped byte in the primary *)
      flip_byte primary;
      let code, _ =
        run_cli (Printf.sprintf "store verify --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "damage exits 4" 4 code;
      let code, out =
        run_cli (Printf.sprintf "store repair --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "repair succeeds" 0 code;
      Alcotest.(check bool) "reports the restoration" true
        (Astring_contains.contains out "repaired");
      Alcotest.(check string) "primary restored byte-identical" pristine
        (read_file primary);
      let code, _ =
        run_cli (Printf.sprintf "store verify --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "clean again" 0 code;
      (* scrub path: the corrupt copy is moved aside, never deleted *)
      flip_byte primary;
      let mangled = read_file primary in
      let code, _ =
        run_cli (Printf.sprintf "store scrub --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "scrub exits 0" 0 code;
      Alcotest.(check bool) "wreckage quarantined" true
        (Sys.file_exists (primary ^ ".corrupt"));
      Alcotest.(check string) "quarantined bytes preserved" mangled
        (read_file (primary ^ ".corrupt"));
      let code, _ =
        run_cli (Printf.sprintf "store repair --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "repair refills the quarantined copy" 0 code;
      Alcotest.(check string) "refilled byte-identical" pristine
        (read_file primary);
      let code, _ =
        run_cli (Printf.sprintf "store verify --store %s" (Filename.quote dir))
      in
      Alcotest.(check int) "verify after scrub+repair" 0 code)

let test_kill_mid_put_never_loses_acknowledged_profile () =
  (* the acceptance scenario: a profile acknowledged by exit 0 must
     survive a SIGKILL delivered inside any later commit, at every
     journal/payload/commit site *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let code, _ =
        run_cli
          (Printf.sprintf "profile -w li -t 3 --store %s --replicas 1"
             (Filename.quote dir))
      in
      Alcotest.(check int) "acknowledged seed" 0 code;
      let specs =
        [ "store.commit@1@kill";
          "store.payload.write@1@kill";
          "store.payload.write@2@kill";
          "journal.append@1@kill";
          "journal.append@2@kill";
          "journal.append@3@kill";
          "journal.append@4@kill" ]
      in
      List.iteri
        (fun i spec ->
          (* fuel rides the fingerprint, so each spec's victim put is a
             fresh key — a crash rolled forward must not let later
             victims hit the cache and skip the site under test *)
          let code, _ =
            run_cli ~env:("VPROF_FAULT=" ^ spec)
              (Printf.sprintf "profile -w go -t 3 --fuel %d --store %s"
                 (10_000_000 + i) (Filename.quote dir))
          in
          Alcotest.(check int) (spec ^ ": killed by SIGKILL") 137 code;
          let code, _ =
            run_cli
              (Printf.sprintf "store verify --store %s" (Filename.quote dir))
          in
          Alcotest.(check int) (spec ^ ": store verifies clean after crash")
            0 code;
          let code, out =
            run_cli
              (Printf.sprintf "profile -w li -t 3 --store %s"
                 (Filename.quote dir))
          in
          Alcotest.(check int) (spec ^ ": warm run succeeds") 0 code;
          Alcotest.(check bool)
            (spec ^ ": acknowledged profile still served") true
            (Astring_contains.contains out "store: hit"))
        specs)

let suite =
  [ Alcotest.test_case "binary present" `Quick test_binary_present;
    Alcotest.test_case "list" `Slow test_list;
    Alcotest.test_case "run" `Slow test_run;
    Alcotest.test_case "profile" `Slow test_profile;
    Alcotest.test_case "memory" `Slow test_memory;
    Alcotest.test_case "procs" `Slow test_procs;
    Alcotest.test_case "specialize" `Slow test_specialize;
    Alcotest.test_case "memoize" `Slow test_memoize;
    Alcotest.test_case "experiment" `Slow test_experiment;
    Alcotest.test_case "experiments -j" `Slow test_experiments_parallel;
    Alcotest.test_case "fuel trap" `Quick test_fuel_trap;
    Alcotest.test_case "diff" `Slow test_diff;
    Alcotest.test_case "emit roundtrip" `Slow test_emit_roundtrip;
    Alcotest.test_case "unknown workload" `Quick test_unknown_workload_fails;
    Alcotest.test_case "unknown experiment" `Quick test_unknown_experiment_fails;
    Alcotest.test_case "bad flag" `Quick test_bad_flag_usage_error;
    Alcotest.test_case "malformed VPROF_FAULT" `Quick
      test_malformed_fault_spec_usage_error;
    Alcotest.test_case "malformed entry in a multi-site campaign" `Quick
      test_multi_site_fault_spec_malformed_entry;
    Alcotest.test_case "deadline exits 3 with a full dump" `Quick
      test_deadline_exits_3_with_full_dump;
    Alcotest.test_case "memory watermark exits 3 without --degrade" `Slow
      test_mem_pressure_exits_3_without_degrade;
    Alcotest.test_case "memory pressure degrades and completes" `Slow
      test_mem_pressure_degrades_and_completes;
    Alcotest.test_case "supervised deadline fails jobs, not the process"
      `Slow test_experiments_deadline_fails_jobs_not_process;
    Alcotest.test_case "checkpoint kill/resume byte-identical" `Slow
      test_checkpoint_resume_byte_identical;
    Alcotest.test_case "resume skips completed work" `Slow
      test_checkpoint_completes_and_resume_skips;
    Alcotest.test_case "store warm run served from cache" `Slow
      test_store_warm_run_served_from_cache;
    Alcotest.test_case "store profile and inspection subcommands" `Slow
      test_store_profile_and_inspection_subcommands;
    Alcotest.test_case "store get and missing key" `Slow
      test_store_get_and_missing_key;
    Alcotest.test_case "store verify/repair/scrub cycle" `Slow
      test_store_verify_repair_scrub_cycle;
    Alcotest.test_case "kill -9 mid-put never loses an acknowledged profile"
      `Slow test_kill_mid_put_never_loses_acknowledged_profile ]
