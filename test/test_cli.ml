(* End-to-end tests of the vprof binary: each subcommand runs against the
   real executable (declared as a dune dependency) and its output is
   checked for the expected shape. *)

let vprof = "../bin/vprof.exe"

(* Runs the binary, returns (exit_code, combined output). *)
let run_cli args =
  let out = Filename.temp_file "vprof_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote vprof) args
          (Filename.quote out)
      in
      let code = Sys.command cmd in
      let ic = open_in out in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      (code, text))

let check_ok name args expectations =
  let code, out = run_cli args in
  Alcotest.(check int) (name ^ ": exit code") 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: output mentions %S" name needle)
        true
        (Astring_contains.contains out needle))
    expectations

let test_binary_present () =
  Alcotest.(check bool) "vprof.exe built" true (Sys.file_exists vprof)

let test_list () =
  check_ok "list" "list" [ "compress"; "m88ksim"; "fpppp"; "SPEC95" ]

let test_run () = check_ok "run" "run -w li" [ "li"; "dynamic instructions" ]

let test_profile () =
  check_ok "profile" "profile -w go -s loads -t 3"
    [ "Inv-Top"; "LVP"; "predictor"; "eval" ]

let test_memory () =
  check_ok "memory" "memory -w alvinn -t 2" [ "locations"; "invariant" ]

let test_procs () = check_ok "procs" "procs -w m88ksim" [ "execute"; "calls" ]

let test_specialize () =
  check_ok "specialize" "specialize -w m88ksim"
    [ "execute"; "results identical" ]

let test_memoize () =
  check_ok "memoize" "memoize -w vortex -p find -a 2"
    [ "memoized find/2"; "results identical" ]

let test_experiment () =
  check_ok "experiment" "experiment e01" [ "Table III.1"; "compress" ]

let test_experiments_parallel () =
  check_ok "experiments -j" "experiments e01 -j 2" [ "Table III.1"; "compress" ]

let test_fuel_trap () =
  let code, out = run_cli "run -w li --fuel 1000" in
  Alcotest.(check int) "trap exit code" 2 code;
  Alcotest.(check bool) "reports the trap" true
    (Astring_contains.contains out "fuel exhausted")

let test_diff () = check_ok "diff" "diff -w cc -t 3" [ "correlation" ]

let test_emit_roundtrip () =
  let code, out = run_cli "emit -w perl" in
  Alcotest.(check int) "emit exit" 0 code;
  let path = Filename.temp_file "vprof_cli" ".vasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc out;
      close_out oc;
      check_ok "run emitted file"
        (Printf.sprintf "run -w %s" (Filename.quote path))
        [ "dynamic instructions" ])

let test_unknown_workload_fails () =
  let code, out = run_cli "run -w doom" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool) "helpful message" true
    (Astring_contains.contains out "unknown workload")

let test_unknown_experiment_fails () =
  let code, _ = run_cli "experiment e99" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let suite =
  [ Alcotest.test_case "binary present" `Quick test_binary_present;
    Alcotest.test_case "list" `Slow test_list;
    Alcotest.test_case "run" `Slow test_run;
    Alcotest.test_case "profile" `Slow test_profile;
    Alcotest.test_case "memory" `Slow test_memory;
    Alcotest.test_case "procs" `Slow test_procs;
    Alcotest.test_case "specialize" `Slow test_specialize;
    Alcotest.test_case "memoize" `Slow test_memoize;
    Alcotest.test_case "experiment" `Slow test_experiment;
    Alcotest.test_case "experiments -j" `Slow test_experiments_parallel;
    Alcotest.test_case "fuel trap" `Quick test_fuel_trap;
    Alcotest.test_case "diff" `Slow test_diff;
    Alcotest.test_case "emit roundtrip" `Slow test_emit_roundtrip;
    Alcotest.test_case "unknown workload" `Quick test_unknown_workload_fails;
    Alcotest.test_case "unknown experiment" `Quick test_unknown_experiment_fails ]
