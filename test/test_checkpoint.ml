(* Checkpoint store: commit/reload roundtrip, salvage of torn manifests,
   distrust of corrupt payloads, and the headline property — a run killed
   by an injected fault resumes to byte-identical output without
   recomputing committed jobs. *)

let with_faults f = Fun.protect ~finally:Fault.disarm f

let temp_dir () =
  let path = Filename.temp_file "vprof_ckpt" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_store f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let manifest dir = Filename.concat dir "manifest"

let read_text path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let test_record_reload_roundtrip () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"a" ~payload:"hello\nworld\n";
      Checkpoint.record ck ~name:"name with spaces" ~payload:"";
      Alcotest.(check int) "committed" 2 (Checkpoint.completed ck);
      Alcotest.(check (option string)) "find a" (Some "hello\nworld\n")
        (Checkpoint.find ck "a");
      (* a fresh handle sees exactly what was committed *)
      let ck' = Checkpoint.create ~resume:true dir in
      Alcotest.(check int) "reloaded" 2 (Checkpoint.completed ck');
      Alcotest.(check (option string)) "payload survives" (Some "hello\nworld\n")
        (Checkpoint.find ck' "a");
      Alcotest.(check (option string)) "escaped name survives" (Some "")
        (Checkpoint.find ck' "name with spaces");
      Alcotest.(check (option string)) "unknown name" None
        (Checkpoint.find ck' "b"))

let test_fresh_start_ignores_old_entries () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"a" ~payload:"x";
      let ck' = Checkpoint.create ~resume:false dir in
      Alcotest.(check int) "resume:false starts empty" 0
        (Checkpoint.completed ck');
      Alcotest.(check (option string)) "old entry gone" None
        (Checkpoint.find ck' "a"))

let test_torn_manifest_tail_dropped () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"first" ~payload:"p1";
      Checkpoint.record ck ~name:"second" ~payload:"p2";
      (* tear the manifest mid-way through its last line, as a crash
         during a non-atomic write would *)
      let text = read_text (manifest dir) in
      write_text (manifest dir) (String.sub text 0 (String.length text - 5));
      let ck' = Checkpoint.create ~resume:true dir in
      Alcotest.(check int) "torn entry dropped" 1 (Checkpoint.completed ck');
      Alcotest.(check (option string)) "earlier entry survives" (Some "p1")
        (Checkpoint.find ck' "first");
      Alcotest.(check (option string)) "torn entry not trusted" None
        (Checkpoint.find ck' "second"))

let test_garbage_manifest_line_stops_load () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"a" ~payload:"p";
      let text = read_text (manifest dir) in
      write_text (manifest dir) (text ^ "done not-a-real-entry\n");
      let ck' = Checkpoint.create ~resume:true dir in
      Alcotest.(check int) "checksummed prefix kept" 1
        (Checkpoint.completed ck'))

let test_corrupt_payload_not_trusted () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"job" ~payload:"precious bytes";
      (* flip the payload file behind the manifest's back *)
      let out =
        Sys.readdir dir |> Array.to_list
        |> List.find (fun f -> Filename.check_suffix f ".out")
      in
      write_text (Filename.concat dir out) "precious bytEs";
      let ck' = Checkpoint.create ~resume:true dir in
      Alcotest.(check (option string)) "checksum rejects the payload" None
        (Checkpoint.find ck' "job");
      Alcotest.(check int) "entry treated as never completed" 0
        (Checkpoint.completed ck'))

let test_truncated_payload_not_trusted () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      Checkpoint.record ck ~name:"job" ~payload:"precious bytes";
      let out =
        Sys.readdir dir |> Array.to_list
        |> List.find (fun f -> Filename.check_suffix f ".out")
      in
      write_text (Filename.concat dir out) "precious";
      let ck' = Checkpoint.create ~resume:true dir in
      Alcotest.(check (option string)) "size check rejects the payload" None
        (Checkpoint.find ck' "job"))

(* Satellite property: a committed store whose manifest is cut at EVERY
   byte offset either loads a salvaged prefix or fails cleanly — each
   surviving entry byte-equal to what was committed, never a corrupt
   payload slipping past its checksum, and salvage is prefix-shaped (an
   entry only survives if every earlier one does). *)
let committed = [ ("alpha", "payload one\n"); ("beta two", "p2\x00bin") ]

let check_salvage ~ctx ck' =
  let n = Checkpoint.completed ck' in
  Alcotest.(check bool) (ctx ^ ": no more entries than committed") true
    (n <= List.length committed);
  let found =
    List.map (fun (name, payload) ->
        match Checkpoint.find ck' name with
        | None -> false
        | Some got ->
          Alcotest.(check string) (ctx ^ ": " ^ name ^ " byte-equal") payload
            got;
          true)
      committed
  in
  Alcotest.(check int) (ctx ^ ": completed counts the survivors") n
    (List.length (List.filter Fun.id found));
  (* prefix-shaped: true, true, ..., false, false, ... *)
  let rec is_prefix = function
    | [] -> true
    | true :: rest -> is_prefix rest
    | false :: rest -> not (List.exists Fun.id rest)
  in
  Alcotest.(check bool) (ctx ^ ": salvage is a prefix") true (is_prefix found)

let test_manifest_cut_at_every_offset () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      List.iter
        (fun (name, payload) -> Checkpoint.record ck ~name ~payload)
        committed;
      let text = read_text (manifest dir) in
      for cut = 0 to String.length text do
        write_text (manifest dir) (String.sub text 0 cut);
        let ck' = Checkpoint.create ~resume:true dir in
        check_salvage ~ctx:(Printf.sprintf "cut at %d" cut) ck'
      done;
      (* the intact manifest still loads everything *)
      write_text (manifest dir) text;
      Alcotest.(check int) "intact manifest loads all" (List.length committed)
        (Checkpoint.completed (Checkpoint.create ~resume:true dir)))

(* The same property, under random payloads (arbitrary bytes, newlines
   included) and a random cut offset. *)
let prop_truncated_manifest_salvages_cleanly =
  QCheck.Test.make
    ~name:"truncated manifest: salvaged prefix or clean failure" ~count:40
    QCheck.(pair (small_list string) small_nat)
    (fun (payloads, cutpick) ->
      with_store (fun dir ->
          let ck = Checkpoint.create ~resume:false dir in
          let named =
            List.mapi (fun i p -> (Printf.sprintf "job-%d" i, p)) payloads
          in
          List.iter
            (fun (name, payload) -> Checkpoint.record ck ~name ~payload)
            named;
          let text = read_text (manifest dir) in
          let cut = cutpick mod (String.length text + 1) in
          write_text (manifest dir) (String.sub text 0 cut);
          let ck' = Checkpoint.create ~resume:true dir in
          Checkpoint.completed ck' <= List.length named
          && List.for_all
               (fun (name, payload) ->
                 match Checkpoint.find ck' name with
                 | None -> true
                 | Some got -> String.equal got payload)
               named))

let test_rejects_file_as_dir () =
  let path = Filename.temp_file "vprof_ckpt" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Checkpoint.create ~resume:false path with
      | _ -> Alcotest.fail "expected Sys_error"
      | exception Sys_error _ -> ())

(* The acceptance scenario: a three-job grid is killed on job b by an
   injected fault; the resumed run serves a from the store, reruns only b
   and c, and the concatenated output is byte-identical to a fault-free
   run's. *)
let test_kill_and_resume_byte_identical () =
  let runs = Array.make 3 0 in
  let jobs () =
    [ ("a", fun () -> runs.(0) <- runs.(0) + 1; "payload-a\n");
      ("b", fun () -> runs.(1) <- runs.(1) + 1; "payload-b\n");
      ("c", fun () -> runs.(2) <- runs.(2) + 1; "payload-c\n") ]
  in
  let concat rep =
    String.concat "" (Supervisor.oks rep)
  in
  (* fault-free reference, no checkpoint *)
  let reference = concat (Supervisor.run_strings ~jobs:1 (jobs ())) in
  Array.fill runs 0 3 0;
  with_store (fun dir ->
      with_faults (fun () ->
          (* the crashed run: job b's only attempt dies, the grid aborts *)
          Fault.arm ~site:"supervisor.job" ~at:2 ();
          let policy =
            { Supervisor.default_policy with retries = 0; on_error = `Abort }
          in
          let ck = Checkpoint.create ~resume:false dir in
          let rep =
            Supervisor.run_strings ~policy ~jobs:1 ~checkpoint:ck (jobs ())
          in
          Alcotest.(check int) "a committed before the crash" 1
            rep.Supervisor.completed;
          Alcotest.(check int) "b failed" 1 rep.Supervisor.failed;
          Alcotest.(check int) "c cancelled" 1 rep.Supervisor.cancelled;
          Alcotest.(check int) "store holds the survivor" 1
            (Checkpoint.completed ck));
      (* the resumed run, fault disarmed — as after a process restart *)
      let ck = Checkpoint.create ~resume:true dir in
      let rep = Supervisor.run_strings ~jobs:1 ~checkpoint:ck (jobs ()) in
      Alcotest.(check int) "everything completed" 3 rep.Supervisor.completed;
      Alcotest.(check string) "output byte-identical to fault-free run"
        reference (concat rep);
      (match rep.Supervisor.outcomes with
       | [ a; b; c ] ->
         Alcotest.(check int) "a served from the store" 0
           a.Supervisor.o_attempts;
         Alcotest.(check bool) "b and c ran" true
           (b.Supervisor.o_attempts = 1 && c.Supervisor.o_attempts = 1)
       | _ -> Alcotest.fail "expected three outcomes");
      (* the fault fired before b's body ran, so every job body ran
         exactly once across both runs — nothing was recomputed *)
      Alcotest.(check (array int)) "no job body ran twice" [| 1; 1; 1 |] runs)

(* A fused grid under checkpointing: jobs rendering different profilers
   of the same workload/input all draw on one memoized machine execution
   (the harness), and a killed-then-resumed grid still produces
   byte-identical output, re-fusing whatever it reruns. *)
let grid_workload builds =
  { Workload.wname = "ckpt-fused";
    wmimics = "";
    wdescr = "fused-grid checkpoint workload";
    wbuild =
      (fun _ ->
        Atomic.incr builds;
        let b = Asm.create () in
        Asm.proc b "main" (fun b ->
            Asm.ldi b Isa.t0 6L;
            Asm.ldi b Isa.t1 768L;
            Asm.label b "loop";
            Asm.st b ~src:Isa.t0 ~base:Isa.t1 ~off:0;
            Asm.ld b ~dst:Isa.t2 ~base:Isa.t1 ~off:0;
            Asm.subi b ~dst:Isa.t0 Isa.t0 1L;
            Asm.br b Isa.Gt Isa.t0 "loop";
            Asm.halt b);
        Asm.assemble b ~entry:"main");
    wshard = None;
    warities = [] }

let test_fused_grid_kill_and_resume_byte_identical () =
  let builds = Atomic.make 0 in
  let w = grid_workload builds in
  let jobs () =
    [ ( "profile",
        fun () ->
          let p = Harness.full_profile w Workload.Test in
          Printf.sprintf "profile %d %d\n" p.Profile.profiled_events
            p.Profile.dynamic_instructions );
      ( "procs",
        fun () ->
          let p = Harness.proc_profile w Workload.Test in
          Printf.sprintf "procs %d %d\n" p.Procprof.total_calls
            p.Procprof.dynamic_instructions );
      ( "plain",
        fun () ->
          let m = Harness.plain_run w Workload.Test in
          Printf.sprintf "plain %d\n" (Machine.icount m) ) ]
  in
  let concat rep = String.concat "" (Supervisor.oks rep) in
  (* fault-free reference: the whole grid shares one machine execution *)
  Harness.clear_cache ();
  let reference = concat (Supervisor.run_strings ~jobs:1 (jobs ())) in
  Alcotest.(check int) "grid fused onto one machine execution" 1
    (Harness.machine_runs ());
  Alcotest.(check int) "one program build" 1 (Atomic.get builds);
  with_store (fun dir ->
      with_faults (fun () ->
          (* kill the grid on its second job *)
          Fault.arm ~site:"supervisor.job" ~at:2 ();
          Harness.clear_cache ();
          let ck = Checkpoint.create ~resume:false dir in
          let rep =
            Supervisor.run_strings
              ~policy:
                { Supervisor.default_policy with retries = 0;
                  on_error = `Abort }
              ~jobs:1 ~checkpoint:ck (jobs ())
          in
          Alcotest.(check int) "first job committed before the crash" 1
            rep.Supervisor.completed);
      (* resume after a "restart": cold cache, fault disarmed *)
      Harness.clear_cache ();
      let ck = Checkpoint.create ~resume:true dir in
      let rep = Supervisor.run_strings ~jobs:1 ~checkpoint:ck (jobs ()) in
      Alcotest.(check int) "everything completed" 3 rep.Supervisor.completed;
      Alcotest.(check string) "resumed output byte-identical" reference
        (concat rep);
      Alcotest.(check int) "resumed jobs re-fused onto one execution" 1
        (Harness.machine_runs ());
      (match rep.Supervisor.outcomes with
       | [ a; _; _ ] ->
         Alcotest.(check int) "committed job served from the store" 0
           a.Supervisor.o_attempts
       | _ -> Alcotest.fail "expected three outcomes"));
  Harness.clear_cache ()

let test_run_strings_commits_as_it_goes () =
  with_store (fun dir ->
      let ck = Checkpoint.create ~resume:false dir in
      let rep =
        Supervisor.run_strings ~jobs:2 ~checkpoint:ck
          [ ("x", fun () -> "X"); ("y", fun () -> "Y") ]
      in
      Alcotest.(check int) "completed" 2 rep.Supervisor.completed;
      Alcotest.(check int) "both committed" 2 (Checkpoint.completed ck);
      Alcotest.(check (option string)) "payload stored" (Some "X")
        (Checkpoint.find ck "x"))

let suite =
  [ Alcotest.test_case "record/reload roundtrip" `Quick
      test_record_reload_roundtrip;
    Alcotest.test_case "fresh start ignores old entries" `Quick
      test_fresh_start_ignores_old_entries;
    Alcotest.test_case "torn manifest tail dropped" `Quick
      test_torn_manifest_tail_dropped;
    Alcotest.test_case "garbage manifest line stops load" `Quick
      test_garbage_manifest_line_stops_load;
    Alcotest.test_case "corrupt payload not trusted" `Quick
      test_corrupt_payload_not_trusted;
    Alcotest.test_case "truncated payload not trusted" `Quick
      test_truncated_payload_not_trusted;
    Alcotest.test_case "manifest cut at every byte offset" `Quick
      test_manifest_cut_at_every_offset;
    QCheck_alcotest.to_alcotest prop_truncated_manifest_salvages_cleanly;
    Alcotest.test_case "rejects a file where a dir is needed" `Quick
      test_rejects_file_as_dir;
    Alcotest.test_case "kill and resume is byte-identical" `Quick
      test_kill_and_resume_byte_identical;
    Alcotest.test_case "fused grid kill/resume byte-identical" `Quick
      test_fused_grid_kill_and_resume_byte_identical;
    Alcotest.test_case "commits as it goes" `Quick
      test_run_strings_commits_as_it_goes ]
