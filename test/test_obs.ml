(* Tests for the observability substrate (lib/obs): the hand-rolled JSON
   round trip, the metrics registry — including the qcheck property that
   histogram percentiles are exactly Stats.percentile — and the span
   tracer's structural guarantees: well-nestedness per domain, a parseable
   Chrome export, and byte-identical structure across identical runs. *)

open Isa

(* A tiny load loop; enough to exercise machine.run and the TNV path
   without slowing the suite down. *)
let program () =
  let b = Asm.create () in
  let base = Asm.data b (Array.init 64 (fun i -> Int64.of_int (i land 7))) in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 64L;
      Asm.br b Eq t2 "done";
      Asm.add b ~dst:t3 t1 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

(* The registry is process-global and cumulative, so every test mints its
   own metric names and asserts only on what it created. *)
let fresh =
  let n = ref 0 in
  fun kind ->
    incr n;
    Printf.sprintf "test_obs.%s.%d" kind !n

(* --- JSON --- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let v =
    Obj
      [ ("a", List [ Num 1.; Num 2.5; Str "x\n\"y\\z\t" ]);
        ("b", Null);
        ("c", Bool true);
        ("big", Num 1234567.);
        ("neg", Num (-3.25));
        ("empty", List []);
        ("nested", Obj [ ("k", Str "") ]) ]
  in
  match parse (to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_and_member () =
  let open Obs.Json in
  (match parse {|{"a": [1, true, null, "A"]}|} with
   | Ok v ->
     (match member "a" v with
      | Some (List [ Num 1.; Bool true; Null; Str "A" ]) -> ()
      | _ -> Alcotest.fail "member \"a\" mismatch");
     Alcotest.(check bool) "missing member" true (member "zz" v = None)
   | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ {|{"a": }|}; "[1, 2"; ""; "nul"; {|"unterminated|}; "{} trailing" ]

(* --- metrics registry --- *)

let test_metrics_counter_gauge () =
  let cname = fresh "counter" in
  let c = Obs.Metrics.counter cname in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "counter value" 42 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "same name, same counter" 42
    (Obs.Metrics.counter_value (Obs.Metrics.counter cname));
  let g = Obs.Metrics.gauge (fresh "gauge") in
  Obs.Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "gauge value" 2.5 (Obs.Metrics.gauge_value g);
  (match Obs.Metrics.gauge cname with
   | _ -> Alcotest.fail "kind mismatch must raise"
   | exception Invalid_argument _ -> ());
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot name-sorted" true
    (names = List.sort compare names);
  Alcotest.(check bool) "snapshot has the counter" true (List.mem cname names)

let test_metrics_json_parses () =
  ignore (Obs.Metrics.counter (fresh "counter"));
  let h = Obs.Metrics.histogram (fresh "hist") in
  List.iter (Obs.Metrics.observe h) [ 3.; 1.; 2. ];
  match Obs.Json.parse (Obs.Json.to_string (Obs.Metrics.to_json ())) with
  | Ok v ->
    (match Obs.Json.member "metrics" v with
     | Some (Obs.Json.List (_ :: _)) -> ()
     | _ -> Alcotest.fail "missing metrics array")
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e

(* The registry adds no second quantile estimator: a histogram's
   percentile must be Stats.percentile of its samples, exactly. *)
let prop_histogram_percentile_matches_stats =
  let arg =
    QCheck.make
      QCheck.Gen.(
        pair
          (array_size (int_range 1 50) (float_bound_inclusive 1000.))
          (float_bound_inclusive 100.))
  in
  QCheck.Test.make ~name:"histogram percentile = Stats.percentile" ~count:200
    arg
    (fun (xs, p) ->
      let h = Obs.Metrics.histogram (fresh "qhist") in
      Array.iter (Obs.Metrics.observe h) xs;
      Obs.Metrics.histogram_percentile h p = Stats.percentile p xs)

(* --- tracer --- *)

(* One deterministic traced run through the stack: a supervised pool job
   (supervisor + driver spans) running a full profile (machine span, TNV
   instants). jobs=1 keeps everything on one domain. *)
let traced_structure () =
  Obs.Trace.reset ();
  Obs.Trace.set_enabled true;
  ignore
    (Supervisor.map ~jobs:1
       ~name:(fun _ -> "obs")
       (fun () -> ignore (Profile.run ~selection:`Loads (program ())))
       [ () ]);
  Obs.Trace.set_enabled false;
  Obs.Trace.structure ()

let test_trace_well_nested_and_layers () =
  let s = traced_structure () in
  (match Obs.Trace.well_nested () with
   | Ok () -> ()
   | Error e -> Alcotest.failf "not well nested: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Astring_contains.contains s needle))
    [ "machine.run"; "pool.job"; "supervisor.job:obs" ]

let test_trace_json_parses () =
  ignore (traced_structure ());
  match Obs.Json.parse (Obs.Json.to_string (Obs.Trace.to_json ())) with
  | Ok v ->
    (match Obs.Json.member "traceEvents" v with
     | Some (Obs.Json.List (_ :: _)) -> ()
     | _ -> Alcotest.fail "missing traceEvents")
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e

let test_trace_structure_deterministic () =
  let a = traced_structure () in
  let b = traced_structure () in
  Alcotest.(check string) "byte-identical structure" a b

let test_trace_off_records_nothing () =
  Obs.Trace.reset ();
  ignore (Profile.run ~selection:`Loads (program ()));
  Alcotest.(check int) "no events while off" 0
    (List.length (Obs.Trace.events ()))

let suite =
  [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse and member" `Quick
      test_json_parse_and_member;
    Alcotest.test_case "counters and gauges" `Quick test_metrics_counter_gauge;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    QCheck_alcotest.to_alcotest prop_histogram_percentile_matches_stats;
    Alcotest.test_case "trace well-nested, all layers" `Quick
      test_trace_well_nested_and_layers;
    Alcotest.test_case "trace JSON parses" `Quick test_trace_json_parses;
    Alcotest.test_case "trace structure deterministic" `Quick
      test_trace_structure_deterministic;
    Alcotest.test_case "trace off records nothing" `Quick
      test_trace_off_records_nothing ]
