(* Mergeable profiles and sharded collection: the TNV merge laws
   (associative, commutative, order-blind — qcheck), Vstate merge against
   observing the concatenated stream, Profile.merge identities, the
   headline shard properties (single shard byte-identical to serial,
   sliced K shards exact on totals with bounded invariance drift,
   scheduling independence), the chunked plan, the pool's uniform serial
   telemetry, and a killed-then-resumed sharded grid. *)

let canon l =
  List.sort
    (fun (v1, c1) (v2, c2) ->
      match compare c2 c1 with 0 -> Int64.compare v1 v2 | n -> n)
    l

let table_of stream =
  let t = Tnv.create ~capacity:4 ~clear_interval:64 () in
  List.iter (Tnv.add t) stream;
  t

let entries_list t = Array.to_list (Tnv.entries t)

let stream_gen =
  QCheck.Gen.(
    list_size (int_range 0 400)
      (map (fun i -> Int64.of_int (i * i mod 7)) (int_range 0 50)))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"Tnv.merge is associative" ~count:200
    (QCheck.make QCheck.Gen.(triple stream_gen stream_gen stream_gen))
    (fun (s1, s2, s3) ->
      let a () = table_of s1 and b () = table_of s2 and c () = table_of s3 in
      let l = Tnv.merge (Tnv.merge (a ()) (b ())) (c ()) in
      let r = Tnv.merge (a ()) (Tnv.merge (b ()) (c ())) in
      entries_list l = entries_list r
      && Tnv.total l = Tnv.total r
      && Tnv.covered l = Tnv.covered r)

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"Tnv.merge entries are order-blind" ~count:200
    (QCheck.make QCheck.Gen.(pair stream_gen stream_gen))
    (fun (s1, s2) ->
      let ab = Tnv.merge (table_of s1) (table_of s2) in
      let ba = Tnv.merge (table_of s2) (table_of s1) in
      entries_list ab = entries_list ba && Tnv.total ab = Tnv.total ba)

let qcheck_entries_deterministic =
  (* with no drops (capacity covers the alphabet, no clearing in range)
     [entries] is a pure function of the value multiset: any permutation
     of the stream yields the same array, ties included *)
  QCheck.Test.make ~name:"entries are a function of the multiset" ~count:200
    (QCheck.make stream_gen)
    (fun s ->
      let feed l =
        let t = Tnv.create ~capacity:16 ~clear_interval:1_000_000 () in
        List.iter (Tnv.add t) l;
        t
      in
      entries_list (feed s) = entries_list (feed (List.rev s)))

let test_merge_counts () =
  let a = table_of [ 1L; 1L; 2L ] and b = table_of [ 2L; 3L ] in
  let m = Tnv.merge a b in
  Alcotest.(check int) "total" 5 (Tnv.total m);
  Alcotest.(check (list (pair int64 int))) "count-weighted union"
    [ (1L, 2); (2L, 2); (3L, 1) ]
    (entries_list m)

let test_vstate_merge_equals_concatenation () =
  let s1 = [ 1L; 1L; 2L; 5L ] and s2 = [ 7L; 2L; 2L; 1L ] in
  let feed l =
    let v = Vstate.create () in
    List.iter (Vstate.observe v) l;
    v
  in
  let merged = Vstate.metrics (Vstate.merge (feed s1) (feed s2)) in
  let serial = Vstate.metrics (feed (s1 @ s2)) in
  (* s2 opens with a value different from s1's last, so even the seam
     transition carries no LVP/stride hit: the merge is exact *)
  Alcotest.(check int) "total" serial.Metrics.total merged.Metrics.total;
  Alcotest.(check (list (pair int64 int))) "top values"
    (Array.to_list serial.Metrics.top_values)
    (Array.to_list merged.Metrics.top_values);
  Alcotest.(check int) "distinct" serial.Metrics.distinct
    merged.Metrics.distinct;
  Alcotest.(check (float 1e-9)) "lvp" serial.Metrics.lvp merged.Metrics.lvp;
  Alcotest.(check (float 1e-9)) "zero" serial.Metrics.zero merged.Metrics.zero

(* A small loop whose profiled values cycle through a handful of
   distinct numbers — large enough to slice, small enough for `Quick. *)
let shard_workload ?(name = "shardw") ?(iters = 48L) () =
  { Workload.wname = name;
    wmimics = "";
    wdescr = "synthetic sharding workload";
    wbuild =
      (fun _ ->
        let b = Asm.create () in
        Asm.proc b "main" (fun b ->
            Asm.ldi b Isa.t0 iters;
            Asm.ldi b Isa.t1 512L;
            Asm.label b "loop";
            Asm.andi b ~dst:Isa.t3 Isa.t0 3L;
            Asm.st b ~src:Isa.t3 ~base:Isa.t1 ~off:0;
            Asm.ld b ~dst:Isa.t2 ~base:Isa.t1 ~off:0;
            Asm.subi b ~dst:Isa.t0 Isa.t0 1L;
            Asm.br b Isa.Gt Isa.t0 "loop";
            Asm.halt b);
        Asm.assemble b ~entry:"main");
    wshard = None;
    warities = [] }

let test_single_shard_byte_identical () =
  let w = shard_workload () in
  let serial = Profile.run (w.Workload.wbuild Workload.Test) in
  let sharded = Shard.profile ~shards:1 w Workload.Test in
  Alcotest.(check string) "shards=1 == serial profile"
    (Profile_io.to_string serial)
    (Profile_io.to_string sharded)

let test_sliced_shards_exact_totals_bounded_drift () =
  (* Loads only: the load stream has 4 distinct values <= capacity/2, so
     neither the serial TNV nor any per-shard TNV ever drops an entry and
     the invariance bound collapses to equality; the seams still cost up
     to one LVP observation each. *)
  let w = shard_workload () in
  let k = 3 in
  let serial = Profile.run ~selection:`Loads (w.Workload.wbuild Workload.Test) in
  let merged = Shard.profile ~selection:`Loads ~shards:k w Workload.Test in
  Alcotest.(check int) "dynamic instructions equal"
    serial.Profile.dynamic_instructions merged.Profile.dynamic_instructions;
  Alcotest.(check int) "profiled events equal" serial.Profile.profiled_events
    merged.Profile.profiled_events;
  Alcotest.(check int) "same points" (Array.length serial.Profile.points)
    (Array.length merged.Profile.points);
  Array.iter2
    (fun (sp : Profile.point) (mp : Profile.point) ->
      Alcotest.(check int) "pc" sp.p_pc mp.p_pc;
      Alcotest.(check int) "per-point total" sp.p_metrics.Metrics.total
        mp.p_metrics.Metrics.total;
      Alcotest.(check (float 1e-9)) "inv_top exact (no drops)"
        sp.p_metrics.Metrics.inv_top mp.p_metrics.Metrics.inv_top;
      Alcotest.(check (float 1e-9)) "inv_all exact (no drops)"
        sp.p_metrics.Metrics.inv_all mp.p_metrics.Metrics.inv_all;
      let seam_slack =
        float_of_int (k - 1) /. float_of_int (max 1 sp.p_metrics.Metrics.total)
      in
      Alcotest.(check bool) "lvp within seam slack" true
        (Float.abs (sp.p_metrics.Metrics.lvp -. mp.p_metrics.Metrics.lvp)
         <= seam_slack +. 1e-9))
    serial.Profile.points merged.Profile.points

let test_sharded_profile_jobs_independent () =
  let w = shard_workload () in
  let p1 = Shard.profile ~shards:3 ~jobs:1 w Workload.Test in
  let p4 = Shard.profile ~shards:3 ~jobs:4 w Workload.Test in
  Alcotest.(check string) "byte-identical across domain counts"
    (Profile_io.to_string p1) (Profile_io.to_string p4)

let test_chunked_plan () =
  let w = Workloads.find "compress" in
  (match Shard.plan w Workload.Test ~shards:2 with
   | Shard.Chunked progs ->
     Alcotest.(check int) "two chunk programs" 2 (List.length progs)
   | Shard.Sliced _ -> Alcotest.fail "compress should shard by input chunks");
  let serial = Profile.run (w.Workload.wbuild Workload.Test) in
  let one = Shard.profile ~shards:1 w Workload.Test in
  Alcotest.(check string) "shards=1 == serial" (Profile_io.to_string serial)
    (Profile_io.to_string one);
  let a = Shard.profile ~shards:2 ~jobs:1 w Workload.Test in
  let b = Shard.profile ~shards:2 ~jobs:2 w Workload.Test in
  Alcotest.(check string) "chunked merge is scheduling-independent"
    (Profile_io.to_string a) (Profile_io.to_string b);
  Alcotest.(check bool) "chunked profile saw the whole input" true
    (a.Profile.dynamic_instructions > 0 && Array.length a.Profile.points > 0)

let test_pool_serial_path_telemetry () =
  (* jobs <= 1 must account its inline worker exactly like a spawned one:
     one pool.worker span, one workers_spawned tick *)
  let spawned = Obs.Metrics.counter "pool.workers_spawned" in
  let before = Obs.Metrics.counter_value spawned in
  Obs.Trace.reset ();
  Obs.Trace.set_enabled true;
  let r =
    Fun.protect
      ~finally:(fun () -> Obs.Trace.set_enabled false)
      (fun () -> Pool.map ~jobs:1 (fun x -> x + 1) [ 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "serial results" [ 2; 3; 4 ] r;
  Alcotest.(check int) "one worker accounted" (before + 1)
    (Obs.Metrics.counter_value spawned);
  Alcotest.(check bool) "pool.worker span recorded" true
    (List.exists
       (fun (e : Obs.Trace.event) -> e.name = "pool.worker")
       (Obs.Trace.events ()))

(* ---- killed-then-resumed sharded grid (mirrors the fused-grid test in
   test_checkpoint.ml, with the profile collected through the sharded
   path) ---- *)

let with_faults f = Fun.protect ~finally:Fault.disarm f

let temp_dir () =
  let path = Filename.temp_file "vprof_shard" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_store f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_sharded_grid_kill_and_resume_byte_identical () =
  let w = shard_workload ~name:"shardw-ckpt" () in
  let jobs () =
    [ ( "profile",
        fun () ->
          let p = Harness.sharded_profile w Workload.Test ~shards:2 in
          Profile_io.to_string p );
      ( "summary",
        fun () ->
          let p = Harness.sharded_profile w Workload.Test ~shards:2 in
          Printf.sprintf "summary %d %d\n" p.Profile.profiled_events
            p.Profile.dynamic_instructions );
      ( "plain",
        fun () ->
          let m = Harness.plain_run w Workload.Test in
          Printf.sprintf "plain %d\n" (Machine.icount m) ) ]
  in
  let concat rep = String.concat "" (Supervisor.oks rep) in
  Harness.clear_cache ();
  let reference = concat (Supervisor.run_strings ~jobs:1 (jobs ())) in
  with_store (fun dir ->
      with_faults (fun () ->
          Fault.arm ~site:"supervisor.job" ~at:2 ();
          Harness.clear_cache ();
          let ck = Checkpoint.create ~resume:false dir in
          let rep =
            Supervisor.run_strings
              ~policy:
                { Supervisor.default_policy with retries = 0;
                  on_error = `Abort }
              ~jobs:1 ~checkpoint:ck (jobs ())
          in
          Alcotest.(check int) "first job committed before the crash" 1
            rep.Supervisor.completed);
      (* resume after a "restart": cold cache, fault disarmed *)
      Harness.clear_cache ();
      let ck = Checkpoint.create ~resume:true dir in
      let rep = Supervisor.run_strings ~jobs:1 ~checkpoint:ck (jobs ()) in
      Alcotest.(check int) "everything completed" 3 rep.Supervisor.completed;
      Alcotest.(check string) "resumed sharded grid byte-identical" reference
        (concat rep);
      match rep.Supervisor.outcomes with
      | [ a; _; _ ] ->
        Alcotest.(check int) "committed job served from the store" 0
          a.Supervisor.o_attempts
      | _ -> Alcotest.fail "expected three outcomes");
  Harness.clear_cache ()

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_merge_associative;
    QCheck_alcotest.to_alcotest qcheck_merge_commutative;
    QCheck_alcotest.to_alcotest qcheck_entries_deterministic;
    Alcotest.test_case "merge sums counts" `Quick test_merge_counts;
    Alcotest.test_case "vstate merge == concatenated stream" `Quick
      test_vstate_merge_equals_concatenation;
    Alcotest.test_case "single shard byte-identical" `Quick
      test_single_shard_byte_identical;
    Alcotest.test_case "sliced shards: exact totals, bounded drift" `Quick
      test_sliced_shards_exact_totals_bounded_drift;
    Alcotest.test_case "sharded profile scheduling-independent" `Quick
      test_sharded_profile_jobs_independent;
    Alcotest.test_case "chunked plan (compress)" `Quick test_chunked_plan;
    Alcotest.test_case "pool serial path telemetry" `Quick
      test_pool_serial_path_telemetry;
    Alcotest.test_case "sharded grid kill and resume" `Quick
      test_sharded_grid_kill_and_resume_byte_identical ]
