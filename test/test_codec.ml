(* Codec primitives: varint/zigzag/fixed-word roundtrips on the edge
   cases and under qcheck, string-table interning, and the section
   framing's checksum discipline. *)

let encode f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

let test_uvarint_roundtrip () =
  List.iter
    (fun n ->
      let s = encode (fun b -> Codec.put_uvarint b n) in
      let r = Codec.reader s in
      Alcotest.(check int) (Printf.sprintf "uvarint %d" n) n
        (Codec.read_uvarint r);
      Alcotest.(check bool) "consumed" true (Codec.at_end r))
    [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int ]

let test_uvarint_rejects_negative () =
  match encode (fun b -> Codec.put_uvarint b (-1)) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_varint64_roundtrip () =
  List.iter
    (fun v ->
      let s = encode (fun b -> Codec.put_varint64 b v) in
      let r = Codec.reader s in
      Alcotest.(check int64) (Printf.sprintf "varint64 %Ld" v) v
        (Codec.read_varint64 r);
      Alcotest.(check bool) "consumed" true (Codec.at_end r))
    [ 0L; 1L; -1L; 63L; -64L; 64L; -65L; Int64.max_int; Int64.min_int;
      0xdeadbeefL; Int64.neg 0xdeadbeefL ]

let prop_varint64_roundtrip =
  QCheck.Test.make ~name:"varint64 roundtrips any int64" ~count:500
    QCheck.int64 (fun v ->
      let s = encode (fun b -> Codec.put_varint64 b v) in
      Codec.read_varint64 (Codec.reader s) = v)

let prop_uvarint_roundtrip =
  QCheck.Test.make ~name:"uvarint roundtrips any nonneg int" ~count:500
    QCheck.(map (fun n -> n land max_int) int)
    (fun n ->
      let s = encode (fun b -> Codec.put_uvarint b n) in
      Codec.read_uvarint (Codec.reader s) = n)

let test_f64_roundtrip () =
  List.iter
    (fun v ->
      let s = encode (fun b -> Codec.put_f64 b v) in
      Alcotest.(check int) "8 bytes" 8 (String.length s);
      Alcotest.(check (float 0.)) (Printf.sprintf "f64 %g" v) v
        (Codec.read_f64 (Codec.reader s)))
    [ 0.; 1.; -1.; 0.5; 1e300; -1e-300; infinity; neg_infinity ]

let test_u32_roundtrip () =
  List.iter
    (fun n ->
      let s = encode (fun b -> Codec.put_u32 b n) in
      Alcotest.(check int) "4 bytes" 4 (String.length s);
      Alcotest.(check int) (Printf.sprintf "u32 %d" n) n
        (Codec.read_u32 (Codec.reader s)))
    [ 0; 1; 0xffff; 0xdeadbeef; 0xffffffff ];
  match encode (fun b -> Codec.put_u32 b (-1)) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_string_roundtrip () =
  List.iter
    (fun s ->
      let enc = encode (fun b -> Codec.put_string b s) in
      Alcotest.(check string) "string" s
        (Codec.read_string (Codec.reader enc)))
    [ ""; "a"; "hello world"; String.init 256 Char.chr ]

let test_reader_past_end () =
  let r = Codec.reader "" in
  (match Codec.read_byte r with
   | _ -> Alcotest.fail "expected Codec.Error"
   | exception Codec.Error (off, _) -> Alcotest.(check int) "at byte 0" 0 off);
  (* a varint whose continuation bytes run off the end *)
  let r = Codec.reader "\xff\xff" in
  match Codec.read_uvarint r with
  | _ -> Alcotest.fail "expected Codec.Error"
  | exception Codec.Error _ -> ()

let test_uvarint_overflow () =
  (* 10 continuation bytes exceed 62 value bits *)
  let r = Codec.reader (String.make 9 '\xff' ^ "\x7f") in
  match Codec.read_uvarint r with
  | _ -> Alcotest.fail "expected Codec.Error"
  | exception Codec.Error _ -> ()

let test_strtab_interns_and_roundtrips () =
  let t = Codec.Strtab.create () in
  Alcotest.(check int) "first" 0 (Codec.Strtab.intern t "alpha");
  Alcotest.(check int) "second" 1 (Codec.Strtab.intern t "beta");
  Alcotest.(check int) "dedup" 0 (Codec.Strtab.intern t "alpha");
  Alcotest.(check int) "third" 2 (Codec.Strtab.intern t "gamma");
  let arr = Codec.Strtab.decode (Codec.reader (Codec.Strtab.encode t)) in
  Alcotest.(check (array string)) "first-use order"
    [| "alpha"; "beta"; "gamma" |] arr

let test_section_roundtrip () =
  let payload = "the payload bytes \x00\xff" in
  let s = encode (fun b -> Codec.put_section b ~tag:'P' payload) in
  let tag, got = Codec.read_section (Codec.reader s) in
  Alcotest.(check char) "tag" 'P' tag;
  Alcotest.(check string) "payload" payload got

let test_section_corruption_detected () =
  let s = encode (fun b -> Codec.put_section b ~tag:'P' "payload bytes") in
  (* flip one payload byte: only the per-section crc can notice *)
  let b = Bytes.of_string s in
  Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) lxor 1));
  match Codec.read_section (Codec.reader (Bytes.to_string b)) with
  | _ -> Alcotest.fail "expected Codec.Error"
  | exception Codec.Error (_, msg) ->
    Alcotest.(check bool) "names the checksum" true
      (Astring_contains.contains msg "checksum")

let test_section_truncation_detected () =
  let s = encode (fun b -> Codec.put_section b ~tag:'P' "payload bytes") in
  for cut = 0 to String.length s - 1 do
    match Codec.read_section (Codec.reader (String.sub s 0 cut)) with
    | _ -> Alcotest.failf "cut at %d: expected Codec.Error" cut
    | exception Codec.Error _ -> ()
  done

let suite =
  [ Alcotest.test_case "uvarint roundtrip" `Quick test_uvarint_roundtrip;
    Alcotest.test_case "uvarint rejects negative" `Quick
      test_uvarint_rejects_negative;
    Alcotest.test_case "varint64 roundtrip" `Quick test_varint64_roundtrip;
    QCheck_alcotest.to_alcotest prop_varint64_roundtrip;
    QCheck_alcotest.to_alcotest prop_uvarint_roundtrip;
    Alcotest.test_case "f64 roundtrip" `Quick test_f64_roundtrip;
    Alcotest.test_case "u32 roundtrip" `Quick test_u32_roundtrip;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "reader errors past end" `Quick test_reader_past_end;
    Alcotest.test_case "uvarint overflow detected" `Quick
      test_uvarint_overflow;
    Alcotest.test_case "strtab interns and roundtrips" `Quick
      test_strtab_interns_and_roundtrips;
    Alcotest.test_case "section roundtrip" `Quick test_section_roundtrip;
    Alcotest.test_case "section corruption detected" `Quick
      test_section_corruption_detected;
    Alcotest.test_case "section truncation detected" `Quick
      test_section_truncation_detected ]
