let () =
  Alcotest.run "vprof"
    [ ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("histogram", Test_histogram.suite);
      ("table", Test_table.suite);
      ("isa", Test_isa.suite);
      ("asm", Test_asm.suite);
      ("parser", Test_parser.suite);
      ("memory", Test_memory.suite);
      ("machine", Test_machine.suite);
      ("cfg", Test_cfg.suite);
      ("atom", Test_atom.suite);
      ("tnv", Test_tnv.suite);
      ("metrics", Test_metrics.suite);
      ("profile", Test_profile.suite);
      ("profile_io", Test_profile_io.suite);
      ("sampler", Test_sampler.suite);
      ("memprof", Test_memprof.suite);
      ("procprof", Test_procprof.suite);
      ("regprof", Test_regprof.suite);
      ("ctxprof", Test_ctxprof.suite);
      ("trivprof", Test_trivprof.suite);
      ("specul", Test_specul.suite);
      ("phaseprof", Test_phaseprof.suite);
      ("predictor", Test_predictor.suite);
      ("body", Test_body.suite);
      ("constfold", Test_constfold.suite);
      ("liveness", Test_liveness.suite);
      ("optim-props", Test_optim_props.suite);
      ("specialize", Test_specialize.suite);
      ("memoize", Test_memoize.suite);
      ("workloads", Test_workloads.suite);
      ("driver", Test_driver.suite);
      ("experiments", Test_experiments.suite);
      ("cli", Test_cli.suite) ]
