(* Driver subsystem tests: pool ordering and error determinism, the
   once-per-key guarantee of the memo cache under concurrent domains, the
   unified Profiler_intf adapters, and the headline property — parallel
   Experiments.print_all output is byte-identical to serial. *)

let test_pool_map_matches_serial () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "jobs=4 preserves order" (List.map f xs)
    (Pool.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1 serial path" (List.map f xs)
    (Pool.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "jobs=0 means auto" (List.map f xs)
    (Pool.map ~jobs:0 f xs);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ 10 ] (Pool.map ~jobs:4 (fun x -> x * 10) [ 1 ])

let test_pool_exception_deterministic () =
  (* the lowest-indexed failure must surface, whatever the schedule *)
  let f x = if x mod 2 = 1 then failwith (string_of_int x) else x in
  match Pool.map ~jobs:4 f [ 0; 2; 5; 4; 3; 7 ] with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "first failing item" "5" m

exception Worker_boom of int

(* Not inlinable (recursive), so its frame stays visible in backtraces. *)
let rec deep_raise n = if n = 0 then raise (Worker_boom 42) else 1 + deep_raise (n - 1)

let test_pool_exception_carries_backtrace () =
  (* the worker's backtrace must travel with the exception across the
     domain boundary: after the re-raise it still points at the raising
     frame in this file, not at the pool's own re-raise site *)
  Printexc.record_backtrace true;
  match Pool.map ~jobs:4 (fun x -> if x = 2 then deep_raise 5 else x) [ 0; 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Worker_boom"
  | exception Worker_boom n ->
    Alcotest.(check int) "original exception, unwrapped" 42 n;
    let bt = Printexc.get_backtrace () in
    Alcotest.(check bool) "raising frame preserved" true
      (Astring_contains.contains bt "test_driver.ml")

let test_pool_fail_fast_abandons_queue () =
  (* item 0 fails instantly while everything else dawdles: with fail_fast
     the workers stop pulling, so most of the queue never runs *)
  let ran = Atomic.make 0 in
  let f x =
    Atomic.incr ran;
    if x = 0 then failwith "boom" else (Unix.sleepf 0.002; x)
  in
  (match Pool.map ~jobs:2 ~fail_fast:true f (List.init 64 Fun.id) with
   | _ -> Alcotest.fail "expected the failure to surface"
   | exception Failure m -> Alcotest.(check string) "the failure" "boom" m);
  Alcotest.(check bool) "queue abandoned" true (Atomic.get ran < 64);
  (* the default still drains the queue before re-raising *)
  let ran = Atomic.make 0 in
  let f x = Atomic.incr ran; if x = 0 then failwith "boom" else x in
  (match Pool.map ~jobs:2 f (List.init 16 Fun.id) with
   | _ -> Alcotest.fail "expected the failure to surface"
   | exception Failure _ -> ());
  Alcotest.(check int) "default drains the queue" 16 (Atomic.get ran)

let test_pool_map_result_slots () =
  let slots =
    Pool.map_result ~jobs:2
      (fun x -> if x mod 2 = 1 then failwith (string_of_int x) else x * 10)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list string)) "per-item slots, input order"
    [ "ok:0"; "err:1"; "ok:20"; "err:3" ]
    (List.map
       (function
         | Some (Ok v) -> Printf.sprintf "ok:%d" v
         | Some (Error (Failure m, _)) -> "err:" ^ m
         | Some (Error _) -> "err:?"
         | None -> "cancelled")
       slots)

let test_pool_map_result_pre_cancelled () =
  let flag = Pool.cancellation () in
  Pool.cancel flag;
  let ran = Atomic.make 0 in
  let slots =
    Pool.map_result ~jobs:2 ~cancel:flag
      (fun x -> Atomic.incr ran; x)
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "nothing ran" 0 (Atomic.get ran);
  Alcotest.(check bool) "every slot cancelled" true
    (List.for_all (( = ) None) slots)

let test_memo_concurrent_once_per_key () =
  let cache : (int, int) Memo_cache.t = Memo_cache.create () in
  let computed = Atomic.make 0 in
  let lookups = List.init 64 (fun i -> i mod 8) in
  let results =
    Pool.map ~jobs:8
      (fun k ->
        Memo_cache.find_or_compute cache k (fun () ->
            Atomic.incr computed;
            (* widen the race window so colliding domains really overlap *)
            for _ = 1 to 1000 do
              Domain.cpu_relax ()
            done;
            k * 10))
      lookups
  in
  Alcotest.(check int) "each key computed exactly once" 8 (Atomic.get computed);
  Alcotest.(check int) "cache agrees" 8 (Memo_cache.computations cache);
  List.iter2
    (fun k v -> Alcotest.(check int) "memoized value" (k * 10) v)
    lookups results

let test_memo_failure_not_cached () =
  let cache : (int, int) Memo_cache.t = Memo_cache.create () in
  (match Memo_cache.find_or_compute cache 1 (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "expected the failure to propagate"
   | exception Failure _ -> ());
  Alcotest.(check int) "failed attempt counted" 1 (Memo_cache.computations cache);
  Alcotest.(check int) "retry recomputes" 7
    (Memo_cache.find_or_compute cache 1 (fun () -> 7));
  Alcotest.(check int) "then it is cached" 7
    (Memo_cache.find_or_compute cache 1 (fun () -> Alcotest.fail "hit expected"))

let test_memo_clear () =
  let cache : (string, int) Memo_cache.t = Memo_cache.create () in
  ignore (Memo_cache.find_or_compute cache "k" (fun () -> 1));
  Memo_cache.clear cache;
  Alcotest.(check int) "counter reset" 0 (Memo_cache.computations cache);
  Alcotest.(check int) "recomputes after clear" 2
    (Memo_cache.find_or_compute cache "k" (fun () -> 2))

let test_memo_bound_evicts_lru () =
  let cache : (int, int) Memo_cache.t = Memo_cache.create ~max_entries:2 () in
  let e0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "memo.evictions")
  in
  ignore (Memo_cache.find_or_compute cache 1 (fun () -> 10));
  ignore (Memo_cache.find_or_compute cache 2 (fun () -> 20));
  (* touch 1 so 2 is the least recently used when 3 arrives *)
  ignore (Memo_cache.find_or_compute cache 1 (fun () -> Alcotest.fail "hit"));
  ignore (Memo_cache.find_or_compute cache 3 (fun () -> 30));
  Alcotest.(check int) "one eviction counted" (e0 + 1)
    (Obs.Metrics.counter_value (Obs.Metrics.counter "memo.evictions"));
  (* the recently-used entry survived, the stale one recomputes *)
  Alcotest.(check int) "recently-used survives" 10
    (Memo_cache.find_or_compute cache 1 (fun () -> Alcotest.fail "hit"));
  Alcotest.(check int) "evicted key recomputes" 21
    (Memo_cache.find_or_compute cache 2 (fun () -> 21));
  Alcotest.(check int) "computations counted" 4
    (Memo_cache.computations cache)

let test_memo_bound_rejects_nonpositive () =
  match Memo_cache.create ~max_entries:0 () with
  | (_ : (int, int) Memo_cache.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_memo_unbounded_never_evicts () =
  let cache : (int, int) Memo_cache.t = Memo_cache.create () in
  for k = 1 to 100 do
    ignore (Memo_cache.find_or_compute cache k (fun () -> k))
  done;
  for k = 1 to 100 do
    Alcotest.(check int) "still cached" k
      (Memo_cache.find_or_compute cache k (fun () -> Alcotest.fail "hit"))
  done

let test_profiler_adapters_match_direct () =
  (* the unified adapters must run the same computation as the original
     entry points: compare the deterministic summary counters *)
  let w = Workloads.find "li" in
  let prog = w.Workload.wbuild Workload.Test in
  let direct = Profile.run ~selection:`All prog in
  let direct_mem = Memprof.run prog in
  let config = { Procprof.default_config with arities = w.Workload.warities } in
  let direct_proc = Procprof.run ~config prog in
  match
    Driver.run_jobs ~jobs:2
      [ Driver.job (module Profile.Profiler)
          ~finish:(fun (p : Profile.t) ->
            (p.instrumented, p.profiled_events, p.dynamic_instructions))
          w Workload.Test;
        Driver.job (module Memprof.Profiler)
          ~finish:(fun (m : Memprof.t) ->
            (Array.length m.locations, m.tracked_events, m.dynamic_instructions))
          w Workload.Test;
        Driver.job (module Procprof.Profiler) ~config
          ~finish:(fun (p : Procprof.t) ->
            (Array.length p.procs, p.total_calls, p.dynamic_instructions))
          w Workload.Test ]
  with
  | [ p; m; pr ] ->
    Alcotest.(check (triple int int int))
      "profile adapter"
      ( direct.Profile.instrumented,
        direct.Profile.profiled_events,
        direct.Profile.dynamic_instructions )
      p;
    Alcotest.(check (triple int int int))
      "memprof adapter"
      ( Array.length direct_mem.Memprof.locations,
        direct_mem.Memprof.tracked_events,
        direct_mem.Memprof.dynamic_instructions )
      m;
    Alcotest.(check (triple int int int))
      "procprof adapter"
      ( Array.length direct_proc.Procprof.procs,
        direct_proc.Procprof.total_calls,
        direct_proc.Procprof.dynamic_instructions )
      pr
  | _ -> Alcotest.fail "expected three results"

let test_sampler_adapter_runs () =
  let w = Workloads.find "li" in
  let direct = Sampler.run (w.Workload.wbuild Workload.Test) in
  match
    Driver.run_jobs ~jobs:2
      [ Driver.job (module Sampler.Profiler)
          ~finish:(fun (s : Sampler.t) -> (s.total_events, s.profiled_events))
          w Workload.Test ]
  with
  | [ (total, profiled) ] ->
    Alcotest.(check int) "total events" direct.Sampler.total_events total;
    Alcotest.(check int) "profiled events" direct.Sampler.profiled_events
      profiled
  | _ -> Alcotest.fail "expected one result"

let test_job_name () =
  let w = Workloads.find "go" in
  let j =
    Driver.job (module Profile.Profiler) ~finish:ignore w Workload.Train
  in
  Alcotest.(check string) "job name" "profile:go:train" (Driver.job_name j)

(* ---- fused scheduling --------------------------------------------

   Jobs sharing a (workload, input, fuel) key must coalesce onto one
   machine execution; counting [wbuild] calls observes how many programs
   (hence machines) the schedule actually built. *)

let counting_workload ?(name = "tinyw") builds =
  { Workload.wname = name;
    wmimics = "";
    wdescr = "synthetic fused-scheduling workload";
    wbuild =
      (fun _ ->
        Atomic.incr builds;
        let b = Asm.create () in
        Asm.proc b "main" (fun b ->
            Asm.ldi b Isa.t0 5L;
            Asm.ldi b Isa.t1 512L;
            Asm.label b "loop";
            Asm.st b ~src:Isa.t0 ~base:Isa.t1 ~off:0;
            Asm.ld b ~dst:Isa.t2 ~base:Isa.t1 ~off:0;
            Asm.subi b ~dst:Isa.t0 Isa.t0 1L;
            Asm.br b Isa.Gt Isa.t0 "loop";
            Asm.halt b);
        Asm.assemble b ~entry:"main");
    wshard = None;
    warities = [] }

let test_fuse_coalesces_shared_executions () =
  let builds = Atomic.make 0 in
  let w = counting_workload builds in
  let jobs () =
    [ Driver.job (module Profile.Profiler)
        ~finish:(fun (p : Profile.t) -> p.profiled_events)
        w Workload.Test;
      Driver.job (module Memprof.Profiler)
        ~finish:(fun (m : Memprof.t) -> m.tracked_events)
        w Workload.Test;
      Driver.job (module Regprof.Profiler)
        ~finish:(fun (r : Regprof.t) -> r.total_writes)
        w Workload.Test ]
  in
  let fused = Driver.run_jobs (jobs ()) in
  Alcotest.(check int) "one build serves the fused unit" 1
    (Atomic.get builds);
  let solo = Driver.run_jobs ~fuse:false (jobs ()) in
  Alcotest.(check int) "one build per job when not fused" 4
    (Atomic.get builds);
  Alcotest.(check (list int)) "fused results equal solo" solo fused

let test_plan_names_fused_units () =
  let wa = counting_workload ~name:"wa" (Atomic.make 0) in
  let wb = counting_workload ~name:"wb" (Atomic.make 0) in
  let pj w = Driver.job (module Profile.Profiler) ~finish:ignore w Workload.Test in
  let mj w = Driver.job (module Memprof.Profiler) ~finish:ignore w Workload.Test in
  let js = [ pj wa; pj wb; mj wa ] in
  Alcotest.(check (list string)) "fused plan, first-occurrence order"
    [ "fused[profile+memory]:wa:test"; "profile:wb:test" ]
    (Driver.plan js);
  Alcotest.(check (list string)) "solo plan is one unit per job"
    [ "profile:wa:test"; "profile:wb:test"; "memory:wa:test" ]
    (Driver.plan ~fuse:false js);
  let fueled =
    Driver.job (module Profile.Profiler) ~fuel:100_000 ~finish:ignore wa
      Workload.Test
  in
  Alcotest.(check (list string)) "a different fuel does not fuse"
    [ "profile:wa:test"; "profile:wa:test" ]
    (Driver.plan [ pj wa; fueled ])

(* Capture stdout into a string across [f ()] by swapping the fd — the
   experiments print with raw [Printf], so buffer tricks would not do. *)
let capture_stdout f =
  let path = Filename.temp_file "vprof_driver" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      flush stdout;
      let saved = Unix.dup Unix.stdout in
      let fd = Unix.openfile path [ O_WRONLY; O_TRUNC ] 0o600 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 saved Unix.stdout;
          Unix.close saved)
        f;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let test_print_all_parallel_byte_identical () =
  Harness.clear_cache ();
  let serial = capture_stdout (fun () -> Experiments.print_all ~jobs:1 ()) in
  Harness.clear_cache ();
  let parallel = capture_stdout (fun () -> Experiments.print_all ~jobs:4 ()) in
  Alcotest.(check bool) "suite actually printed" true
    (String.length serial > 10_000);
  Alcotest.(check bool) "parallel output byte-identical to serial" true
    (String.equal serial parallel)

let suite =
  [ Alcotest.test_case "pool map order" `Quick test_pool_map_matches_serial;
    Alcotest.test_case "pool exception deterministic" `Quick
      test_pool_exception_deterministic;
    Alcotest.test_case "pool exception carries backtrace" `Quick
      test_pool_exception_carries_backtrace;
    Alcotest.test_case "pool fail-fast abandons the queue" `Quick
      test_pool_fail_fast_abandons_queue;
    Alcotest.test_case "pool map_result slots" `Quick
      test_pool_map_result_slots;
    Alcotest.test_case "pool map_result honours pre-set cancel" `Quick
      test_pool_map_result_pre_cancelled;
    Alcotest.test_case "memo once per key (8 domains)" `Quick
      test_memo_concurrent_once_per_key;
    Alcotest.test_case "memo failure not cached" `Quick
      test_memo_failure_not_cached;
    Alcotest.test_case "memo clear" `Quick test_memo_clear;
    Alcotest.test_case "memo bound evicts lru" `Quick
      test_memo_bound_evicts_lru;
    Alcotest.test_case "memo bound rejects nonpositive" `Quick
      test_memo_bound_rejects_nonpositive;
    Alcotest.test_case "memo unbounded never evicts" `Quick
      test_memo_unbounded_never_evicts;
    Alcotest.test_case "profiler adapters match direct runs" `Slow
      test_profiler_adapters_match_direct;
    Alcotest.test_case "sampler adapter" `Slow test_sampler_adapter_runs;
    Alcotest.test_case "job name" `Quick test_job_name;
    Alcotest.test_case "fuse coalesces shared executions" `Quick
      test_fuse_coalesces_shared_executions;
    Alcotest.test_case "plan names fused units" `Quick
      test_plan_names_fused_units;
    Alcotest.test_case "print_all parallel == serial (bytes)" `Slow
      test_print_all_parallel_byte_identical ]
