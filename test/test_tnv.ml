let feq = Alcotest.float 1e-9

let test_basic_counting () =
  let t = Tnv.create ~capacity:4 () in
  List.iter (Tnv.add t) [ 1L; 1L; 2L; 1L; 3L ];
  Alcotest.(check int) "total" 5 (Tnv.total t);
  Alcotest.(check int) "covered" 5 (Tnv.covered t);
  (match Tnv.top t with
   | Some (v, c) ->
     Alcotest.(check int64) "top value" 1L v;
     Alcotest.(check int) "top count" 3 c
   | None -> Alcotest.fail "expected a top entry");
  Alcotest.check feq "inv_top" 0.6 (Tnv.inv_top t);
  Alcotest.check feq "inv_all" 1.0 (Tnv.inv_all t)

let test_empty () =
  let t = Tnv.create ~capacity:4 () in
  Alcotest.(check int) "total" 0 (Tnv.total t);
  Alcotest.(check (option (pair int64 int))) "no top" None (Tnv.top t);
  Alcotest.check feq "inv_top" 0. (Tnv.inv_top t);
  Alcotest.check feq "inv_all" 0. (Tnv.inv_all t)

let test_entries_sorted () =
  let t = Tnv.create ~capacity:8 () in
  List.iter (Tnv.add t) [ 5L; 6L; 6L; 7L; 7L; 7L ];
  let e = Tnv.entries t in
  Alcotest.(check int) "three entries" 3 (Array.length e);
  Alcotest.(check int64) "first" 7L (fst e.(0));
  Alcotest.(check int64) "second" 6L (fst e.(1));
  Alcotest.(check int64) "third" 5L (fst e.(2))

let test_lfu_clear_drops_overflow () =
  (* Capacity 2, no clearing within this window: the third distinct value
     is dropped but still counted in total. *)
  let t = Tnv.create ~capacity:2 ~clear_interval:1000 () in
  List.iter (Tnv.add t) [ 1L; 2L; 3L; 3L; 3L ];
  Alcotest.(check int) "total counts drops" 5 (Tnv.total t);
  Alcotest.(check int) "covered misses drops" 2 (Tnv.covered t);
  Alcotest.(check bool) "3 not in table" true
    (Array.for_all (fun (v, _) -> not (Int64.equal v 3L)) (Tnv.entries t))

let test_lfu_clear_admits_new_hot_value () =
  (* After the periodic clear, the replacement half opens up and the new
     hot value climbs in. *)
  let t = Tnv.create ~capacity:2 ~clear_interval:10 () in
  for _ = 1 to 6 do Tnv.add t 1L done;
  for _ = 1 to 4 do Tnv.add t 2L done;
  (* table now full; 10 adds -> clearing has happened at least once *)
  for _ = 1 to 30 do Tnv.add t 9L done;
  Alcotest.(check bool) "new value present" true
    (Array.exists (fun (v, _) -> Int64.equal v 9L) (Tnv.entries t));
  (match Tnv.top t with
   | Some (v, _) -> Alcotest.(check int64) "new value dominates" 9L v
   | None -> Alcotest.fail "expected top")

let test_lfu_replaces_minimum () =
  let t = Tnv.create ~policy:Tnv.Lfu ~capacity:2 () in
  List.iter (Tnv.add t) [ 1L; 1L; 2L; 3L ];
  (* 3 replaced 2 (the least counted) *)
  let values = Array.map fst (Tnv.entries t) in
  Alcotest.(check bool) "1 kept" true (Array.mem 1L values);
  Alcotest.(check bool) "3 inserted" true (Array.mem 3L values);
  Alcotest.(check bool) "2 evicted" false (Array.mem 2L values)

let test_lru_replaces_oldest () =
  let t = Tnv.create ~policy:Tnv.Lru ~capacity:2 () in
  List.iter (Tnv.add t) [ 1L; 2L; 1L; 3L ];
  (* 2 is least recently seen; 3 replaces it even though counts tie *)
  let values = Array.map fst (Tnv.entries t) in
  Alcotest.(check bool) "1 kept" true (Array.mem 1L values);
  Alcotest.(check bool) "3 inserted" true (Array.mem 3L values);
  Alcotest.(check bool) "2 evicted" false (Array.mem 2L values)

let test_reset () =
  let t = Tnv.create ~capacity:4 () in
  List.iter (Tnv.add t) [ 1L; 2L; 3L ];
  Tnv.reset t;
  Alcotest.(check int) "total" 0 (Tnv.total t);
  Alcotest.(check int) "entries" 0 (Array.length (Tnv.entries t))

let test_degrade_shrinks_live_capacity () =
  Fun.protect ~finally:Budget.Testing.reset @@ fun () ->
  (* the ladder folds in at the next periodic clear, not mid-stream *)
  let t = Tnv.create ~clear_interval:4 ~capacity:8 () in
  Budget.Testing.set_level 1;
  List.iter (Tnv.add t) [ 1L; 2L; 3L ];
  Alcotest.(check int) "untouched before the clear" 8 (Tnv.live_capacity t);
  Tnv.add t 1L;
  Alcotest.(check int) "level 1 halves at the clear" 4 (Tnv.live_capacity t);
  (* a saturated ladder clamps at one live candidate, never zero *)
  Budget.Testing.set_level Budget.max_degrade_level;
  List.iter (Tnv.add t) [ 1L; 2L; 3L; 4L ];
  Alcotest.(check int) "saturated level keeps one slot" 1
    (Tnv.live_capacity t);
  (* the shrunken table still admits (and counts) its top value *)
  Alcotest.(check bool) "still counting" true (Tnv.total t > 0);
  Tnv.reset t;
  Alcotest.(check int) "reset restores full capacity" 8 (Tnv.live_capacity t)

let test_create_invalid () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Tnv.create: capacity must be positive") (fun () ->
      ignore (Tnv.create ~capacity:0 ()));
  Alcotest.check_raises "interval"
    (Invalid_argument "Tnv.create: clear_interval must be positive") (fun () ->
      ignore (Tnv.create ~clear_interval:0 ~capacity:4 ()))

let test_accessors () =
  let t = Tnv.create ~policy:Tnv.Lru ~clear_interval:123 ~capacity:7 () in
  Alcotest.(check int) "capacity" 7 (Tnv.capacity t);
  Alcotest.(check int) "interval" 123 (Tnv.clear_interval t);
  Alcotest.(check bool) "policy" true (Tnv.policy t = Tnv.Lru)

(* Canonical entry order for comparisons: count descending, then value —
   [Tnv.entries] only orders by count, so equal-count ties are ambiguous. *)
let canon l =
  List.sort
    (fun (v1, c1) (v2, c2) ->
      match compare c2 c1 with 0 -> Int64.compare v1 v2 | n -> n)
    l

let test_clear_keeps_top_half () =
  (* capacity 6, interval exactly the stream length: the clear fires on
     the last add and must keep precisely the cap/2 = 3 highest-counted
     values, untouched *)
  let t = Tnv.create ~capacity:6 ~clear_interval:33 () in
  let feed v n = for _ = 1 to n do Tnv.add t v done in
  feed 1L 10; feed 2L 9; feed 3L 8; feed 4L 3; feed 5L 2; feed 6L 1;
  Alcotest.(check int) "exactly one clear" 1 (Tnv.clears t);
  Alcotest.(check (list (pair int64 int))) "top half survives with counts"
    [ (1L, 10); (2L, 9); (3L, 8) ]
    (canon (Array.to_list (Tnv.entries t)))

let test_clear_tie_keeps_lowest_slot () =
  (* all counts tie: the clear's deterministic rule is to keep the
     lowest-numbered slots, i.e. the first-inserted values *)
  let t = Tnv.create ~capacity:4 ~clear_interval:4 () in
  List.iter (Tnv.add t) [ 10L; 20L; 30L; 40L ];
  Alcotest.(check (list (pair int64 int))) "first-inserted values survive"
    [ (10L, 1); (20L, 1) ]
    (canon (Array.to_list (Tnv.entries t)))

let test_add_mem_reports_residency () =
  let t = Tnv.create ~capacity:2 ~clear_interval:1000 () in
  Alcotest.(check bool) "fresh insert" false (Tnv.add_mem t 1L);
  Alcotest.(check bool) "repeat" true (Tnv.add_mem t 1L);
  Alcotest.(check bool) "second insert" false (Tnv.add_mem t 2L);
  Alcotest.(check bool) "overflow drop" false (Tnv.add_mem t 3L);
  Alcotest.(check bool) "dropped value still absent" false (Tnv.add_mem t 3L);
  let lfu = Tnv.create ~policy:Tnv.Lfu ~capacity:2 () in
  Alcotest.(check bool) "insert" false (Tnv.add_mem lfu 1L);
  Alcotest.(check bool) "insert" false (Tnv.add_mem lfu 2L);
  Alcotest.(check bool) "eviction is not residency" false (Tnv.add_mem lfu 3L);
  Alcotest.(check bool) "evicted-in value now resident" true (Tnv.add_mem lfu 3L)

(* Reference model: the paper's plain linear-scan TNV with the same
   policies and the same clear/eviction rules, used to cross-check the
   open-addressing index on randomized streams. *)
module Model = struct
  type t = {
    pol : Tnv.policy;
    cap : int;
    interval : int;
    values : int64 array;
    counts : int array;
    stamps : int array;
    mutable total : int;
    mutable since : int;
  }

  let create pol cap interval =
    { pol; cap; interval;
      values = Array.make cap 0L;
      counts = Array.make cap 0;
      stamps = Array.make cap 0;
      total = 0; since = 0 }

  let clear m =
    let kept = Array.make m.cap false in
    for _ = 1 to m.cap / 2 do
      let best = ref 0 in
      while kept.(!best) do incr best done;
      for i = !best + 1 to m.cap - 1 do
        if (not kept.(i)) && m.counts.(i) > m.counts.(!best) then best := i
      done;
      kept.(!best) <- true
    done;
    for i = 0 to m.cap - 1 do
      if not kept.(i) then begin
        m.counts.(i) <- 0;
        m.values.(i) <- 0L;
        m.stamps.(i) <- 0
      end
    done

  let argmin m key =
    let best = ref 0 in
    for i = 1 to m.cap - 1 do
      if key i < key !best then best := i
    done;
    !best

  let fill m s v =
    m.values.(s) <- v;
    m.counts.(s) <- 1;
    m.stamps.(s) <- m.total

  let add m v =
    m.total <- m.total + 1;
    let slot = ref (-1) in
    for i = m.cap - 1 downto 0 do
      if m.counts.(i) > 0 && Int64.equal m.values.(i) v then slot := i
    done;
    let hit = !slot >= 0 in
    (if hit then begin
       m.counts.(!slot) <- m.counts.(!slot) + 1;
       m.stamps.(!slot) <- m.total
     end
     else begin
       let empty = ref (-1) in
       for i = m.cap - 1 downto 0 do
         if m.counts.(i) = 0 then empty := i
       done;
       if !empty >= 0 then fill m !empty v
       else
         match m.pol with
         | Tnv.Lfu_clear -> ()
         | Tnv.Lfu -> fill m (argmin m (fun i -> m.counts.(i))) v
         | Tnv.Lru -> fill m (argmin m (fun i -> m.stamps.(i))) v
     end);
    (match m.pol with
     | Tnv.Lfu_clear ->
       m.since <- m.since + 1;
       if m.since >= m.interval then begin
         m.since <- 0;
         clear m
       end
     | Tnv.Lfu | Tnv.Lru -> ());
    hit

  let entries m =
    let l = ref [] in
    for i = m.cap - 1 downto 0 do
      if m.counts.(i) > 0 then l := (m.values.(i), m.counts.(i)) :: !l
    done;
    !l
end

let value_stream_gen =
  (* skewed streams over a small alphabet, like real value profiles *)
  QCheck.Gen.(
    list_size (int_range 1 2000)
      (map (fun i -> Int64.of_int (i * i mod 13)) (int_range 0 100)))

let qcheck_conservation =
  QCheck.Test.make ~name:"covered <= total, inv_all <= 1, inv_top <= inv_all"
    ~count:200
    (QCheck.make value_stream_gen)
    (fun stream ->
      List.for_all
        (fun policy ->
          let t = Tnv.create ~policy ~capacity:4 ~clear_interval:50 () in
          List.iter (Tnv.add t) stream;
          Tnv.covered t <= Tnv.total t
          && Tnv.inv_all t <= 1.0 +. 1e-9
          && Tnv.inv_top t <= Tnv.inv_all t +. 1e-9)
        [ Tnv.Lfu_clear; Tnv.Lfu; Tnv.Lru ])

let qcheck_entries_sorted =
  QCheck.Test.make ~name:"entries are sorted descending" ~count:200
    (QCheck.make value_stream_gen)
    (fun stream ->
      let t = Tnv.create ~capacity:8 () in
      List.iter (Tnv.add t) stream;
      let e = Tnv.entries t in
      let ok = ref true in
      for i = 0 to Array.length e - 2 do
        if snd e.(i) < snd e.(i + 1) then ok := false
      done;
      !ok)

let qcheck_finds_dominant_value =
  (* When one value accounts for >= 80% of a long stream, every policy's
     TNV identifies it as the top value. *)
  QCheck.Test.make ~name:"dominant value is identified" ~count:100
    QCheck.(pair (int_range 1 60) int64)
    (fun (noise_values, seed) ->
      let rng = Rng.create seed in
      let dominant = 424242L in
      let stream =
        List.init 2000 (fun _ ->
            if Rng.int rng 10 < 8 then dominant
            else Int64.of_int (Rng.int rng noise_values))
      in
      List.for_all
        (fun policy ->
          let t = Tnv.create ~policy ~capacity:8 ~clear_interval:100 () in
          List.iter (Tnv.add t) stream;
          match Tnv.top t with
          | Some (v, _) -> Int64.equal v dominant
          | None -> false)
        [ Tnv.Lfu_clear; Tnv.Lfu; Tnv.Lru ])

let qcheck_index_matches_linear_scan =
  (* the hit signal and the surviving entries of the index-assisted table
     must track the reference model event for event, across all policies,
     capacities and clear intervals *)
  QCheck.Test.make ~name:"index-assisted table == linear-scan model" ~count:200
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 6) (int_range 1 40) value_stream_gen))
    (fun (cap, interval, stream) ->
      List.for_all
        (fun pol ->
          let t = Tnv.create ~policy:pol ~capacity:cap ~clear_interval:interval () in
          let m = Model.create pol cap interval in
          List.for_all
            (fun v -> Bool.equal (Tnv.add_mem t v) (Model.add m v))
            stream
          && canon (Array.to_list (Tnv.entries t)) = canon (Model.entries m)
          && Tnv.total t = m.Model.total)
        [ Tnv.Lfu_clear; Tnv.Lfu; Tnv.Lru ])

let suite =
  [ Alcotest.test_case "basic counting" `Quick test_basic_counting;
    Alcotest.test_case "empty table" `Quick test_empty;
    Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
    Alcotest.test_case "lfu-clear drops overflow" `Quick test_lfu_clear_drops_overflow;
    Alcotest.test_case "lfu-clear admits new hot value" `Quick
      test_lfu_clear_admits_new_hot_value;
    Alcotest.test_case "lfu replaces minimum" `Quick test_lfu_replaces_minimum;
    Alcotest.test_case "lru replaces oldest" `Quick test_lru_replaces_oldest;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "degradation shrinks live capacity" `Quick
      test_degrade_shrinks_live_capacity;
    Alcotest.test_case "invalid create" `Quick test_create_invalid;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "clear keeps the top half" `Quick
      test_clear_keeps_top_half;
    Alcotest.test_case "clear tie keeps lowest slot" `Quick
      test_clear_tie_keeps_lowest_slot;
    Alcotest.test_case "add_mem reports residency" `Quick
      test_add_mem_reports_residency;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_entries_sorted;
    QCheck_alcotest.to_alcotest qcheck_finds_dominant_value;
    QCheck_alcotest.to_alcotest qcheck_index_matches_linear_scan ]
