(* The write-ahead journal: record round-trips, commit matching, torn-tail
   salvage at every byte offset, and the recovery semantics the store
   builds on it (roll-forward, roll-back, idempotence). *)

let temp_dir () =
  let path = Filename.temp_file "vprof_journal" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = temp_dir () in
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let op_eq (a : Journal.op) (b : Journal.op) = a = b

let op_pp ppf (op : Journal.op) =
  match op with
  | Journal.Put { key; gen; bytes; crc } ->
    Format.fprintf ppf "Put(%s,g%d,%db,%08x)" key gen bytes crc
  | Journal.Gc keys -> Format.fprintf ppf "Gc(%s)" (String.concat "," keys)
  | Journal.Generation g -> Format.fprintf ppf "Gen(%d)" g

let op_t = Alcotest.testable op_pp op_eq

let sample_ops =
  [ Journal.Put
      { key = "full.go.test-deadbeef"; gen = 3; bytes = 4096;
        crc = 0xcafef00d };
    Journal.Gc [ "a"; "b with space"; "c" ];
    Journal.Generation 42;
    Journal.Put { key = ""; gen = 0; bytes = 0; crc = 0 } ]

let test_roundtrip () =
  with_dir (fun dir ->
      List.iter (fun op -> Journal.append_intent ~dir op) sample_ops;
      Alcotest.(check (list op_t))
        "all intents pending, oldest first" sample_ops (Journal.pending ~dir))

let test_commit_matches_oldest () =
  with_dir (fun dir ->
      List.iter (fun op -> Journal.append_intent ~dir op) sample_ops;
      Journal.append_commit ~dir;
      Alcotest.(check (list op_t))
        "commit retires the oldest intent" (List.tl sample_ops)
        (Journal.pending ~dir);
      Journal.append_commit ~dir;
      Journal.append_commit ~dir;
      Journal.append_commit ~dir;
      Alcotest.(check (list op_t)) "fully committed" [] (Journal.pending ~dir);
      (* a stray commit with nothing pending is harmless *)
      Journal.append_commit ~dir;
      Alcotest.(check (list op_t)) "stray commit" [] (Journal.pending ~dir))

let test_reset_and_missing () =
  with_dir (fun dir ->
      Alcotest.(check (list op_t))
        "missing journal = empty" [] (Journal.pending ~dir);
      Journal.append_intent ~dir (Journal.Generation 7);
      Journal.reset ~dir;
      Alcotest.(check (list op_t)) "reset empties" [] (Journal.pending ~dir);
      Alcotest.(check bool) "reset creates the file" true
        (Sys.file_exists (Journal.path ~dir)))

(* The journal's one robustness claim: a file cut at ANY byte offset
   yields exactly the records whose bytes fully survived — the torn tail
   is dropped, never misparsed, never an exception. *)
let test_torn_tail_at_every_offset () =
  with_dir (fun dir ->
      List.iter (fun op -> Journal.append_intent ~dir op) sample_ops;
      Journal.append_commit ~dir;
      let path = Journal.path ~dir in
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* record boundaries: each prefix of complete records is known *)
      let lens =
        List.map (fun op -> String.length (Journal.encode op)) sample_ops
        @ [ String.length Journal.commit_record ]
      in
      let boundaries =
        List.rev
          (List.fold_left (fun acc l -> (List.hd acc + l) :: acc) [ 0 ] lens)
      in
      let expected_at cut =
        (* the records wholly inside [0, cut), with one commit retiring
           the oldest put once the final record survives *)
        let complete =
          List.length (List.filter (fun b -> b <= cut) boundaries) - 1
        in
        let intents =
          List.filteri (fun i _ -> i < min complete (List.length sample_ops))
            sample_ops
        in
        if complete > List.length sample_ops then List.tl intents else intents
      in
      for cut = 0 to String.length full do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 cut);
        close_out oc;
        let got = Journal.pending ~dir in
        Alcotest.(check (list op_t))
          (Printf.sprintf "cut at byte %d/%d" cut (String.length full))
          (expected_at cut) got
      done)

(* Same property, qcheck-shaped: random op lists, random cut offsets,
   pending must always be a prefix of the intents (minus commits) and
   never raise. *)
let prop_torn_journal_salvages_prefix =
  QCheck.Test.make ~count:200
    ~name:"journal salvages a record prefix at any cut"
    QCheck.(pair (small_list (pair small_string small_nat)) small_nat)
    (fun (entries, cut_seed) ->
      let dir = temp_dir () in
      Sys.mkdir dir 0o755;
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let ops =
            List.map
              (fun (k, n) ->
                Journal.Put
                  { key = k; gen = n mod 7; bytes = n; crc = n * 2654435761 land 0xFFFFFFFF })
              entries
          in
          Journal.reset ~dir;
          List.iter (fun op -> Journal.append_intent ~dir op) ops;
          let path = Journal.path ~dir in
          let full = In_channel.with_open_bin path In_channel.input_all in
          let cut =
            if String.length full = 0 then 0
            else cut_seed mod (String.length full + 1)
          in
          let oc = open_out_bin path in
          output_string oc (String.sub full 0 cut);
          close_out oc;
          let got = Journal.pending ~dir in
          (* pending is a prefix of the appended intents *)
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs', y :: ys' -> op_eq x y && is_prefix xs' ys'
            | _ :: _, [] -> false
          in
          is_prefix got ops))

(* Recovery semantics through the store: a journal left by a crash is
   replayed on open — forward when the payload bytes survived, backward
   when they did not — and replay is idempotent. *)

let write_payload dir key payload =
  (* the store's payload naming, reproduced via a scratch store *)
  let s = Store.open_dir dir in
  Store.put s ~key ~payload

let payload_file_of dir key =
  (* find the payload file the store created for [key] *)
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".out")
  |> List.map (fun f -> Filename.concat dir f)
  |> function
  | [ p ] -> p
  | ps ->
    Alcotest.failf "expected one payload for %s, found %d" key (List.length ps)

let test_recovery_rolls_forward () =
  with_dir (fun dir ->
      write_payload dir "k" "hello-payload";
      (* simulate a crash after the payload landed but before the journal
         commit: pending put whose bytes exist on disk *)
      Journal.append_intent ~dir
        (Journal.Put
           { key = "k"; gen = 9; bytes = String.length "hello-payload";
             crc = Crc32.string "hello-payload" });
      let s = Store.open_dir dir in
      Alcotest.(check (option string))
        "rolled forward" (Some "hello-payload") (Store.find s "k");
      Alcotest.(check int) "journal consumed" 0
        (List.length (Journal.pending ~dir));
      (* the entry's generation is the intent's *)
      let e = List.hd (Store.entries s) in
      Alcotest.(check int) "intent generation" 9 e.Store.i_gen)

let test_recovery_rolls_back () =
  with_dir (fun dir ->
      write_payload dir "k" "old";
      (* a put whose bytes never landed anywhere: must roll back, the
         old acknowledged entry untouched *)
      Journal.append_intent ~dir
        (Journal.Put
           { key = "k"; gen = 5; bytes = 100; crc = 0x12345678 });
      let s = Store.open_dir dir in
      Alcotest.(check (option string))
        "old entry survives" (Some "old") (Store.find s "k");
      Alcotest.(check int) "journal consumed" 0
        (List.length (Journal.pending ~dir)))

let test_recovery_completes_gc () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.put s ~key:"keep" ~payload:"kk";
      Store.put s ~key:"drop" ~payload:"dd";
      (* crash mid-gc: intent written, files partially removed *)
      Journal.append_intent ~dir (Journal.Gc [ "drop" ]);
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "kept" (Some "kk") (Store.find s' "keep");
      Alcotest.(check (option string)) "dropped" None (Store.find s' "drop");
      (* the dropped key's payload file is gone from disk too *)
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               Filename.check_suffix f ".out"
               && Astring_contains.contains f "drop")
      in
      Alcotest.(check int) "payload removed" 0 (List.length leftovers))

let test_recovery_is_idempotent () =
  with_dir (fun dir ->
      write_payload dir "k" "payload-bytes";
      let intent =
        Journal.Put
          { key = "k"; gen = 4; bytes = String.length "payload-bytes";
            crc = Crc32.string "payload-bytes" }
      in
      Journal.append_intent ~dir intent;
      ignore (Store.open_dir dir);
      (* crash mid-recovery: the same intent shows up again *)
      Journal.append_intent ~dir intent;
      let s = Store.open_dir dir in
      Alcotest.(check (option string))
        "still there" (Some "payload-bytes") (Store.find s "k");
      Alcotest.(check int) "one entry, not two" 1
        (List.length (Store.entries s));
      ignore (payload_file_of dir "k"))

let test_generation_intent_recovers () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.put s ~key:"k" ~payload:"v";
      Journal.append_intent ~dir (Journal.Generation 17);
      let s' = Store.open_dir dir in
      Alcotest.(check int) "generation rolled forward" 17
        (Store.generation s'))

let suite =
  [ Alcotest.test_case "intent round-trip" `Quick test_roundtrip;
    Alcotest.test_case "commit retires oldest" `Quick
      test_commit_matches_oldest;
    Alcotest.test_case "reset and missing file" `Quick test_reset_and_missing;
    Alcotest.test_case "torn tail at every offset" `Quick
      test_torn_tail_at_every_offset;
    QCheck_alcotest.to_alcotest prop_torn_journal_salvages_prefix;
    Alcotest.test_case "recovery rolls forward" `Quick
      test_recovery_rolls_forward;
    Alcotest.test_case "recovery rolls back" `Quick test_recovery_rolls_back;
    Alcotest.test_case "recovery completes gc" `Quick
      test_recovery_completes_gc;
    Alcotest.test_case "recovery is idempotent" `Quick
      test_recovery_is_idempotent;
    Alcotest.test_case "generation intent recovers" `Quick
      test_generation_intent_recovers ]
