(* The fused-profiling satellites of the observer layer: profilers
   co-attached to one machine each see every event they would have seen
   solo (the old single-hook API silently dropped the first subscriber),
   fused counters attribute costs per member with the wall clock counted
   once, and — the headline property — the rendered result of every
   profiler in a fused run is byte-identical to its solo run. *)

open Isa

(* ---- renderers ----------------------------------------------------

   Every deterministic field of each profiler's result, wall clock
   excluded. [%h] prints floats exactly (hex mantissa), so equal strings
   mean bit-equal numbers. *)

let fl = Printf.sprintf "%h"

let render_metrics (m : Metrics.t) =
  String.concat ";"
    [ string_of_int m.Metrics.total;
      fl m.lvp;
      fl m.inv_top;
      fl m.inv_all;
      fl m.zero;
      string_of_int m.distinct;
      string_of_bool m.distinct_saturated;
      String.concat ","
        (List.map
           (fun (v, c) -> Printf.sprintf "%Ld:%d" v c)
           (Array.to_list m.top_values));
      fl m.stride_top;
      (match m.top_stride with None -> "-" | Some s -> Int64.to_string s) ]

let render_profile (p : Profile.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (pt : Profile.point) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %s %s\n" pt.p_pc (Isa.to_string pt.p_instr)
           pt.p_proc
           (render_metrics pt.p_metrics)))
    p.points;
  Buffer.add_string b
    (Printf.sprintf "%d %d %d\n" p.instrumented p.profiled_events
       p.dynamic_instructions);
  Buffer.contents b

let render_sample (s : Sampler.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (pt : Sampler.point) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %s %d %d %b\n" pt.s_pc
           (Isa.to_string pt.s_instr)
           (render_metrics pt.s_metrics)
           pt.s_events pt.s_profiled pt.s_converged))
    s.points;
  Buffer.add_string b
    (Printf.sprintf "%d %d %s %d\n" s.total_events s.profiled_events
       (fl s.overhead) s.dynamic_instructions);
  Buffer.contents b

let render_memory (m : Memprof.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (l : Memprof.location) ->
      Buffer.add_string b
        (Printf.sprintf "%Ld %s\n" l.l_addr (render_metrics l.l_metrics)))
    m.locations;
  Buffer.add_string b
    (Printf.sprintf "%d %d %d\n" m.tracked_events m.untracked_events
       m.dynamic_instructions);
  Buffer.contents b

let render_procs (p : Procprof.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (r : Procprof.proc_report) ->
      Buffer.add_string b
        (Printf.sprintf "%s %d [%s] %s %d %b\n" r.r_name r.r_calls
           (String.concat " | "
              (Array.to_list (Array.map render_metrics r.r_params)))
           (render_metrics r.r_return)
           r.r_memo_hits r.r_memo_capacity_exceeded))
    p.procs;
  Buffer.add_string b
    (Printf.sprintf "%d %d\n" p.total_calls p.dynamic_instructions);
  Buffer.contents b

let render_registers (r : Regprof.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (g : Regprof.reg_report) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %s\n" g.g_reg g.g_writes
           (render_metrics g.g_metrics)))
    r.regs;
  Buffer.add_string b
    (Printf.sprintf "%d %d\n" r.total_writes r.dynamic_instructions);
  Buffer.contents b

let render_contexts (c : Ctxprof.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (r : Ctxprof.context_report) ->
      Buffer.add_string b
        (Printf.sprintf "%s %d %d [%s]\n" r.c_proc r.c_site r.c_calls
           (String.concat " | "
              (Array.to_list (Array.map render_metrics r.c_params)))))
    c.contexts;
  Buffer.add_string b
    (Printf.sprintf "%d %d\n" c.untracked_calls c.dynamic_instructions);
  Buffer.contents b

let render_phases (p : Phaseprof.t) =
  let b = Buffer.create 512 in
  Array.iter
    (fun (pt : Phaseprof.point) ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %d %s [%s] %s\n" pt.ph_pc
           (Isa.to_string pt.ph_instr)
           pt.ph_total (fl pt.ph_overall)
           (String.concat ","
              (Array.to_list (Array.map fl pt.ph_windows)))
           (fl pt.ph_drift)))
    p.points;
  Buffer.add_string b (Printf.sprintf "%d\n" p.dynamic_instructions);
  Buffer.contents b

let render_trivial (t : Trivprof.t) =
  Printf.sprintf "%d %d %d %d [%s] %d"
    t.Trivprof.alu_events t.measured t.trivial_imm t.trivial_dyn
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) t.by_kind))
    t.dynamic_instructions

let render_speculate (s : Specul.t) =
  let b = Buffer.create 256 in
  Array.iter
    (fun (l : Specul.load_report) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %d %s\n" l.sl_pc l.sl_executions
           l.sl_conflicts
           (fl l.sl_conflict_rate)))
    s.loads;
  Buffer.add_string b
    (Printf.sprintf "%d %d %d\n" s.total_executions s.total_conflicts
       s.dynamic_instructions);
  Buffer.contents b

(* ---- the roster: all nine adapters, each with its solo twin ------- *)

type entry = {
  pname : string;
  item : string Fused.item;
  solo : Asm.program -> string;
}

let entry (type r c) pname ?config
    (module P : Profiler_intf.S with type result = r and type config = c)
    render =
  { pname;
    item = Fused.item ?config ~finish:render (module P);
    solo = (fun prog -> render (P.run ?config prog)) }

(* the synthetic programs declare one one-argument procedure, "f" *)
let arities = [ ("f", 1) ]

let roster =
  [ entry "profile" (module Profile.Profiler) render_profile;
    entry "sample" (module Sampler.Profiler) render_sample;
    entry "memory" (module Memprof.Profiler) render_memory;
    entry "procs"
      ~config:{ Procprof.default_config with Procprof.arities }
      (module Procprof.Profiler) render_procs;
    entry "registers" (module Regprof.Profiler) render_registers;
    entry "contexts"
      ~config:{ Ctxprof.default_config with Ctxprof.arities }
      (module Ctxprof.Profiler) render_contexts;
    entry "phases" (module Phaseprof.Profiler) render_phases;
    entry "trivial" (module Trivprof.Profiler) render_trivial;
    entry "speculate" (module Specul.Profiler) render_speculate ]

(* A small terminating workload exercising every event kind the roster
   observes: loads, stores, ALU ops (some trivially computable), calls
   with a profiled argument, and returns. *)
let tiny_program n seed =
  let b = Asm.create () in
  Asm.proc b "f" (fun b ->
      Asm.addi b ~dst:v0 a0 (Int64.of_int ((seed land 3) + 1));
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 (Int64.of_int n);
      Asm.ldi b t1 640L;
      Asm.label b "loop";
      Asm.st b ~src:t0 ~base:t1 ~off:(8 * (seed land 3));
      Asm.ld b ~dst:t2 ~base:t1 ~off:(8 * (seed land 3));
      Asm.muli b ~dst:t3 t2 (Int64.of_int (seed mod 3));
      Asm.addi b ~dst:a0 t3 1L;
      Asm.call b "f";
      Asm.subi b ~dst:t0 t0 1L;
      Asm.br b Gt t0 "loop";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

(* ---- co-attachment: no profiler shadows another ------------------- *)

let test_coattached_profilers_see_every_event () =
  let w = Workloads.find "li" in
  let prog = w.Workload.wbuild Workload.Test in
  let solo_p = Profile.run ~selection:`All prog in
  let solo_m = Memprof.run prog in
  (* both on ONE machine: their hooks overlap on every load pc *)
  let machine = Machine.create prog in
  let pl = Profile.attach machine `All in
  let ml = Memprof.attach machine in
  let steps = Machine.run machine in
  let p = Profile.collect pl in
  let m = Memprof.collect ml in
  Alcotest.(check int) "profile sees every event"
    solo_p.Profile.profiled_events p.Profile.profiled_events;
  Alcotest.(check int) "memprof sees every tracked access"
    solo_m.Memprof.tracked_events m.Memprof.tracked_events;
  Alcotest.(check int) "memprof sees every untracked access"
    solo_m.Memprof.untracked_events m.Memprof.untracked_events;
  Alcotest.(check int) "one execution serves both"
    solo_p.Profile.dynamic_instructions steps;
  Alcotest.(check string) "profile rendering identical to solo"
    (render_profile solo_p) (render_profile p);
  Alcotest.(check string) "memprof rendering identical to solo"
    (render_memory solo_m) (render_memory m)

(* ---- counters attribution ----------------------------------------- *)

let check_counts name (want : Counters.t) (got : Counters.t) =
  Alcotest.(check (list int)) name
    [ want.Counters.events_seen; want.events_profiled; want.tnv_clears;
      want.tnv_replacements ]
    [ got.Counters.events_seen; got.events_profiled; got.tnv_clears;
      got.tnv_replacements ]

let test_fused_executes_machine_once () =
  let w = Workloads.find "li" in
  let prog = w.Workload.wbuild Workload.Test in
  let pconfig =
    { Procprof.default_config with Procprof.arities = w.Workload.warities }
  in
  let f =
    Fused.run prog
      [ Fused.item ~finish:(fun (p : Profile.t) -> p.profiled_events)
          (module Profile.Profiler);
        Fused.item ~finish:(fun (m : Memprof.t) -> m.tracked_events)
          (module Memprof.Profiler);
        Fused.item ~config:pconfig
          ~finish:(fun (p : Procprof.t) -> p.total_calls)
          (module Procprof.Profiler) ]
  in
  let solo_p = Profile.run prog in
  let solo_m = Memprof.run prog in
  let solo_pr = Procprof.run ~config:pconfig prog in
  let one = solo_p.Profile.dynamic_instructions in
  (* the acceptance assertion: three profilers, ONE machine execution *)
  Alcotest.(check int) "fused machine-step count is one execution" one
    f.Fused.machine_steps;
  Alcotest.(check int) "solo passes cost three executions" (3 * one)
    (one + solo_m.Memprof.dynamic_instructions
     + solo_pr.Procprof.dynamic_instructions);
  Alcotest.(check (list int)) "per-member results"
    [ solo_p.Profile.profiled_events; solo_m.Memprof.tracked_events;
      solo_pr.Procprof.total_calls ]
    f.Fused.results;
  (match f.Fused.counters with
   | [ cp; cm; cpr ] ->
     check_counts "profile counters match solo" solo_p.Profile.stats cp;
     check_counts "memprof counters match solo" solo_m.Memprof.stats cm;
     check_counts "procprof counters match solo" solo_pr.Procprof.stats cpr
   | _ -> Alcotest.fail "expected three counter sets");
  (* wall: measured once around the shared run, stamped on every member *)
  List.iter
    (fun (c : Counters.t) ->
      Alcotest.(check (float 0.)) "member wall is the shared wall"
        f.Fused.wall_seconds c.Counters.wall_seconds)
    f.Fused.counters;
  let tot = Fused.total f in
  Alcotest.(check int) "total events_seen sums members"
    (List.fold_left
       (fun acc (c : Counters.t) -> acc + c.Counters.events_seen)
       0 f.Fused.counters)
    tot.Counters.events_seen;
  Alcotest.(check (float 0.)) "total wall counted once" f.Fused.wall_seconds
    tot.Counters.wall_seconds

let test_item_names () =
  Alcotest.(check (list string)) "roster names"
    [ "profile"; "sample"; "memory"; "procs"; "registers"; "contexts";
      "phases"; "trivial"; "speculate" ]
    (List.map (fun e -> Fused.item_name e.item) roster);
  List.iter
    (fun e -> Alcotest.(check string) "name matches" e.pname
        (Fused.item_name e.item))
    roster

(* ---- the headline property ---------------------------------------- *)

(* Any subset of the nine profilers, fused over a random small workload,
   renders byte-identically to each profiler run solo on the same
   program. *)
let prop_fused_matches_solo =
  QCheck.Test.make ~name:"fused rendering byte-identical to solo" ~count:60
    (QCheck.triple
       (QCheck.int_range 1 10)
       (QCheck.int_range 0 255)
       (QCheck.int_range 1 ((1 lsl List.length roster) - 1)))
    (fun (n, seed, mask) ->
      let chosen = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) roster in
      let prog = tiny_program n seed in
      let f = Fused.run prog (List.map (fun e -> e.item) chosen) in
      List.for_all2
        (fun e got -> String.equal (e.solo prog) got)
        chosen f.Fused.results)

(* the full house, on a fixed program, with a failure message that names
   the offender (the qcheck property only says "false") *)
let test_all_nine_fused_match_solo () =
  let prog = tiny_program 7 42 in
  let f = Fused.run prog (List.map (fun e -> e.item) roster) in
  List.iter2
    (fun e got ->
      Alcotest.(check string) (e.pname ^ " identical to solo") (e.solo prog)
        got)
    roster f.Fused.results;
  Alcotest.(check int) "one execution"
    (Machine.icount (Machine.execute prog))
    f.Fused.machine_steps

(* ---- graceful degradation: shedding the costliest member ---------- *)

(* Under an armed degrading budget, a ladder step drops the member with
   the highest run cost so far — here the full profiler, attached after
   the cheap trivial-op counter so the ranking (not attach order) must
   pick it. The shed member still reports, from partial observation; the
   survivor's result stays byte-identical to its solo run. *)
let test_degrade_sheds_costliest_member () =
  Fun.protect ~finally:Budget.Testing.reset @@ fun () ->
  Budget.govern { Budget.no_limits with Budget.degrade = true } @@ fun () ->
  let prog = tiny_program 200 42 in
  let trivial = List.find (fun e -> e.pname = "trivial") roster in
  let profile = List.find (fun e -> e.pname = "profile") roster in
  let machine = Machine.create prog in
  let live = Fused.attach machine [ trivial.item; profile.item ] in
  (* run partway so the members' costs diverge, then force a ladder step *)
  (try ignore (Machine.run ~fuel:64 machine)
   with Machine.Trap (Machine.Fuel_exhausted _) -> ());
  Budget.Testing.force_step ();
  ignore (Machine.run machine);
  let f = Fused.collect live in
  Alcotest.(check (list string)) "profile (costliest) was shed" [ "profile" ]
    f.Fused.shed;
  Alcotest.(check int) "shed member still reports" 2
    (List.length f.Fused.results);
  Alcotest.(check bool) "degradation level recorded" true
    (f.Fused.degrade_level >= 1);
  (match f.Fused.results with
   | [ triv; prof ] ->
     Alcotest.(check string) "survivor identical to solo" (trivial.solo prog)
       triv;
     Alcotest.(check bool) "shed member reports partial observation" true
       (not (String.equal (profile.solo prog) prof))
   | _ -> Alcotest.fail "expected two results")

(* a degradation step never sheds the last member: a fused run always
   yields at least one profile *)
let test_degrade_keeps_last_member () =
  Fun.protect ~finally:Budget.Testing.reset @@ fun () ->
  Budget.govern { Budget.no_limits with Budget.degrade = true } @@ fun () ->
  let prog = tiny_program 20 7 in
  let profile = List.find (fun e -> e.pname = "profile") roster in
  let machine = Machine.create prog in
  let live = Fused.attach machine [ profile.item ] in
  Budget.Testing.force_step ();
  ignore (Machine.run machine);
  let f = Fused.collect live in
  Alcotest.(check (list string)) "nothing shed" [] f.Fused.shed;
  (match f.Fused.results with
   | [ prof ] ->
     Alcotest.(check string) "sole member identical to solo"
       (profile.solo prog) prof
   | _ -> Alcotest.fail "expected one result")

let suite =
  [ Alcotest.test_case "co-attached profilers see every event" `Quick
      test_coattached_profilers_see_every_event;
    Alcotest.test_case "fused executes machine once" `Quick
      test_fused_executes_machine_once;
    Alcotest.test_case "item names" `Quick test_item_names;
    Alcotest.test_case "all nine fused match solo" `Quick
      test_all_nine_fused_match_solo;
    Alcotest.test_case "degradation sheds the costliest member" `Quick
      test_degrade_sheds_costliest_member;
    Alcotest.test_case "degradation never sheds the last member" `Quick
      test_degrade_keeps_last_member;
    QCheck_alcotest.to_alcotest prop_fused_matches_solo ]
