open Isa

(* Build a one-procedure program from a builder callback and run it. *)
let build body =
  let b = Asm.create () in
  Asm.proc b "main" (fun b -> body b);
  Asm.assemble b ~entry:"main"

let exec body = Machine.execute (build body)

let test_arithmetic () =
  let m =
    exec (fun b ->
        Asm.ldi b t0 10L;
        Asm.addi b ~dst:t1 t0 5L;
        Asm.subi b ~dst:t2 t0 15L;
        Asm.muli b ~dst:t3 t0 (-3L);
        Asm.divi b ~dst:t4 t0 3L;
        Asm.remi b ~dst:t5 t0 3L;
        Asm.halt b)
  in
  Alcotest.(check int64) "add" 15L (Machine.reg m t1);
  Alcotest.(check int64) "sub" (-5L) (Machine.reg m t2);
  Alcotest.(check int64) "mul" (-30L) (Machine.reg m t3);
  Alcotest.(check int64) "div" 3L (Machine.reg m t4);
  Alcotest.(check int64) "rem" 1L (Machine.reg m t5)

let test_logic_and_shifts () =
  let m =
    exec (fun b ->
        Asm.ldi b t0 0b1100L;
        Asm.andi b ~dst:t1 t0 0b1010L;
        Asm.ori b ~dst:t2 t0 0b0011L;
        Asm.xori b ~dst:t3 t0 0b1111L;
        Asm.slli b ~dst:t4 t0 2L;
        Asm.ldi b t5 (-8L);
        Asm.srai b ~dst:t6 t5 1L;
        Asm.srli b ~dst:t7 t5 60L;
        Asm.halt b)
  in
  Alcotest.(check int64) "and" 0b1000L (Machine.reg m t1);
  Alcotest.(check int64) "or" 0b1111L (Machine.reg m t2);
  Alcotest.(check int64) "xor" 0b0011L (Machine.reg m t3);
  Alcotest.(check int64) "sll" 0b110000L (Machine.reg m t4);
  Alcotest.(check int64) "sra keeps sign" (-4L) (Machine.reg m t6);
  Alcotest.(check int64) "srl is logical" 15L (Machine.reg m t7)

let test_comparisons () =
  let m =
    exec (fun b ->
        Asm.ldi b t0 5L;
        Asm.cmpeqi b ~dst:t1 t0 5L;
        Asm.cmplti b ~dst:t2 t0 5L;
        Asm.cmplei b ~dst:t3 t0 5L;
        Asm.ldi b t4 (-1L);
        (* signed: -1 < 1; unsigned: -1 is huge *)
        Asm.bin b Isa.Cmplt ~dst:t5 t4 (Isa.Imm 1L);
        Asm.bin b Isa.Cmpult ~dst:t6 t4 (Isa.Imm 1L);
        Asm.halt b)
  in
  Alcotest.(check int64) "eq" 1L (Machine.reg m t1);
  Alcotest.(check int64) "lt strict" 0L (Machine.reg m t2);
  Alcotest.(check int64) "le" 1L (Machine.reg m t3);
  Alcotest.(check int64) "signed lt" 1L (Machine.reg m t5);
  Alcotest.(check int64) "unsigned lt" 0L (Machine.reg m t6)

let test_div_by_zero_traps () =
  Alcotest.check_raises "div" (Machine.Trap (Machine.Div_by_zero 1)) (fun () ->
      ignore
        (exec (fun b ->
             Asm.ldi b t0 1L;
             Asm.divi b ~dst:t1 t0 0L;
             Asm.halt b)))

let test_zero_register_immutable () =
  let m =
    exec (fun b ->
        Asm.ldi b zero_reg 99L;
        Asm.addi b ~dst:t0 zero_reg 1L;
        Asm.halt b)
  in
  Alcotest.(check int64) "zero stays zero" 0L (Machine.reg m zero_reg);
  Alcotest.(check int64) "reads as zero" 1L (Machine.reg m t0)

let test_memory_ops () =
  let m =
    exec (fun b ->
        Asm.ldi b t0 1000L;
        Asm.ldi b t1 77L;
        Asm.st b ~src:t1 ~base:t0 ~off:5;
        Asm.ld b ~dst:t2 ~base:t0 ~off:5;
        Asm.ld b ~dst:t3 ~base:t0 ~off:6;
        Asm.halt b)
  in
  Alcotest.(check int64) "load back" 77L (Machine.reg m t2);
  Alcotest.(check int64) "untouched zero" 0L (Machine.reg m t3)

let test_branches () =
  let m =
    exec (fun b ->
        Asm.ldi b t0 3L;
        Asm.ldi b t1 0L;
        Asm.label b "loop";
        Asm.addi b ~dst:t1 t1 10L;
        Asm.subi b ~dst:t0 t0 1L;
        Asm.br b Gt t0 "loop";
        Asm.halt b)
  in
  Alcotest.(check int64) "looped 3 times" 30L (Machine.reg m t1)

let test_all_branch_conditions () =
  (* For v in {-1, 0, 1} check each condition against 0. *)
  let expect v cond =
    match cond with
    | Eq -> v = 0
    | Ne -> v <> 0
    | Lt -> v < 0
    | Le -> v <= 0
    | Gt -> v > 0
    | Ge -> v >= 0
  in
  List.iter
    (fun v ->
      List.iter
        (fun cond ->
          let m =
            exec (fun b ->
                Asm.ldi b t0 (Int64.of_int v);
                Asm.ldi b t1 0L;
                Asm.br b cond t0 "taken";
                Asm.halt b;
                Asm.label b "taken";
                Asm.ldi b t1 1L;
                Asm.halt b)
          in
          Alcotest.(check int64)
            (Printf.sprintf "v=%d cond=%s" v (Isa.string_of_cond cond))
            (if expect v cond then 1L else 0L)
            (Machine.reg m t1))
        [ Eq; Ne; Lt; Le; Gt; Ge ])
    [ -1; 0; 1 ]

let test_calls () =
  let b = Asm.create () in
  Asm.proc b "double" (fun b ->
      Asm.add b ~dst:v0 a0 a0;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 21L;
      Asm.call b "double";
      Asm.halt b);
  let m = Machine.execute (Asm.assemble b ~entry:"main") in
  Alcotest.(check int64) "returned" 42L (Machine.reg m v0)

let test_recursion () =
  (* factorial via memory accumulator to respect the convention *)
  let b = Asm.create () in
  Asm.proc b "fact" (fun b ->
      (* fact(n=a0) -> v0 = n!: v0 = n <= 1 ? 1 : n * fact(n-1) *)
      Asm.cmplei b ~dst:t0 a0 1L;
      Asm.br b Ne t0 "base";
      (* spill n to the stack across the recursive call *)
      Asm.subi b ~dst:sp sp 1L;
      Asm.st b ~src:a0 ~base:sp ~off:0;
      Asm.subi b ~dst:a0 a0 1L;
      Asm.call b "fact";
      Asm.ld b ~dst:t1 ~base:sp ~off:0;
      Asm.addi b ~dst:sp sp 1L;
      Asm.mul b ~dst:v0 v0 t1;
      Asm.ret b;
      Asm.label b "base";
      Asm.ldi b v0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 10L;
      Asm.call b "fact";
      Asm.halt b);
  let m = Machine.execute (Asm.assemble b ~entry:"main") in
  Alcotest.(check int64) "10!" 3628800L (Machine.reg m v0)

let test_ret_with_empty_stack_halts () =
  let m =
    exec (fun b ->
        Asm.ldi b v0 5L;
        Asm.ret b)
  in
  Alcotest.(check bool) "halted" true (Machine.halted m);
  Alcotest.(check int64) "v0 kept" 5L (Machine.reg m v0)

let test_indirect_call () =
  let b = Asm.create () in
  Asm.proc b "target" (fun b ->
      Asm.ldi b v0 7L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.code_addr_of b ~dst:t0 "target";
      Asm.call_ind b t0;
      Asm.halt b);
  let m = Machine.execute (Asm.assemble b ~entry:"main") in
  Alcotest.(check int64) "dispatched" 7L (Machine.reg m v0)

let test_fuel_exhaustion () =
  let prog =
    build (fun b ->
        Asm.label b "spin";
        Asm.jmp b "spin")
  in
  Alcotest.check_raises "fuel" (Machine.Trap (Machine.Fuel_exhausted 1000))
    (fun () -> ignore (Machine.execute ~fuel:1000 prog))

let test_call_depth_trap () =
  let b = Asm.create () in
  Asm.proc b "forever" (fun b ->
      Asm.call b "forever";
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.call b "forever";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  Alcotest.check_raises "depth"
    (Machine.Trap (Machine.Call_depth_exceeded Machine.max_call_depth))
    (fun () -> ignore (Machine.execute prog))

let test_invalid_indirect_target () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 9999L;
        Asm.call_ind b t0;
        Asm.halt b)
  in
  Alcotest.check_raises "invalid pc" (Machine.Trap (Machine.Invalid_pc 9999))
    (fun () -> ignore (Machine.execute prog))

let test_hooks_see_values () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 123L;
        Asm.ldi b t1 500L;
        Asm.st b ~src:t0 ~base:t1 ~off:2;
        Asm.ld b ~dst:t2 ~base:t1 ~off:2;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let events = ref [] in
  for pc = 0 to 3 do
    Machine.add_hook m pc (fun value addr -> events := (pc, value, addr) :: !events)
  done;
  ignore (Machine.run m);
  let events = List.rev !events in
  Alcotest.(check int) "four events" 4 (List.length events);
  (match events with
   | [ (0, v0', a0'); (1, v1, a1); (2, v2, a2); (3, v3, a3) ] ->
     Alcotest.(check int64) "ldi value" 123L v0';
     Alcotest.(check int64) "ldi addr" 0L a0';
     Alcotest.(check int64) "ldi2 value" 500L v1;
     Alcotest.(check int64) "ldi2 addr" 0L a1;
     Alcotest.(check int64) "store value" 123L v2;
     Alcotest.(check int64) "store addr" 502L a2;
     Alcotest.(check int64) "load value" 123L v3;
     Alcotest.(check int64) "load addr" 502L a3
   | _ -> Alcotest.fail "unexpected event shape")

let test_proc_hooks () =
  let b = Asm.create () in
  Asm.proc b "callee" (fun b ->
      Asm.addi b ~dst:v0 a0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 10L;
      Asm.call b "callee";
      Asm.ldi b a0 20L;
      Asm.call b "callee";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let m = Machine.create prog in
  let callee = Asm.find_proc prog "callee" in
  let entries = ref [] and returns = ref [] in
  Machine.add_proc_entry_hook m callee.Asm.pindex (fun m ->
      entries := Machine.reg m a0 :: !entries);
  Machine.add_proc_return_hook m callee.Asm.pindex (fun _m v ->
      returns := v :: !returns);
  ignore (Machine.run m);
  Alcotest.(check (list int64)) "entry args" [ 10L; 20L ] (List.rev !entries);
  Alcotest.(check (list int64)) "return values" [ 11L; 21L ] (List.rev !returns)

let test_exec_counts () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 4L;
        Asm.label b "loop";
        Asm.subi b ~dst:t0 t0 1L;
        Asm.br b Gt t0 "loop";
        Asm.halt b)
  in
  let m = Machine.create prog in
  ignore (Machine.run m);
  Alcotest.(check int) "init once" 1 (Machine.exec_count m 0);
  Alcotest.(check int) "loop body 4x" 4 (Machine.exec_count m 1);
  Alcotest.(check int) "icount total" 10 (Machine.icount m)

let test_reset () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 1000L;
        Asm.ld b ~dst:t1 ~base:t0 ~off:0;
        Asm.addi b ~dst:t1 t1 1L;
        Asm.st b ~src:t1 ~base:t0 ~off:0;
        Asm.halt b)
  in
  let m = Machine.create prog in
  ignore (Machine.run m);
  Alcotest.(check int64) "first run" 1L (Memory.read (Machine.memory m) 1000L);
  Machine.reset m;
  Alcotest.(check int) "icount cleared" 0 (Machine.icount m);
  Alcotest.(check int64) "memory cleared" 0L (Memory.read (Machine.memory m) 1000L);
  ignore (Machine.run m);
  Alcotest.(check int64) "second run identical" 1L
    (Memory.read (Machine.memory m) 1000L)

let test_determinism () =
  let w = Workloads.find "compress" in
  let p1 = w.Workload.wbuild Workload.Test in
  let p2 = w.Workload.wbuild Workload.Test in
  let m1 = Machine.execute p1 and m2 = Machine.execute p2 in
  Alcotest.(check int) "same icount" (Machine.icount m1) (Machine.icount m2);
  Alcotest.(check int64) "same result" (Machine.reg m1 v0) (Machine.reg m2 v0)

let test_caller_pc () =
  let b = Asm.create () in
  Asm.proc b "callee" (fun b ->
      Asm.ldi b v0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.nop b;
      Asm.call b "callee"; (* pc 2 + 1 = the call at index 3 *)
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let m = Machine.create prog in
  Alcotest.(check (option int)) "no frame yet" None (Machine.caller_pc m);
  let callee = Asm.find_proc prog "callee" in
  let seen = ref None in
  Machine.add_proc_entry_hook m callee.Asm.pindex (fun m ->
      seen := Machine.caller_pc m);
  ignore (Machine.run m);
  (match !seen with
   | Some pc ->
     (match prog.Asm.code.(pc) with
      | Isa.Jsr _ -> ()
      | other -> Alcotest.failf "caller_pc points at %s" (Isa.to_string other))
   | None -> Alcotest.fail "entry hook never fired")

let test_indirect_call_fires_entry_hook () =
  let b = Asm.create () in
  Asm.proc b "callee" (fun b ->
      Asm.ldi b v0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.code_addr_of b ~dst:t0 "callee";
      Asm.call_ind b t0;
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let m = Machine.create prog in
  let fired = ref 0 in
  Machine.add_proc_entry_hook m (Asm.find_proc prog "callee").Asm.pindex
    (fun _ -> incr fired);
  ignore (Machine.run m);
  Alcotest.(check int) "entry hook on indirect call" 1 !fired

let test_clear_hooks () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 1L;
        Asm.ldi b t1 2L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let hits = ref 0 in
  Machine.add_hook m 0 (fun _ _ -> incr hits);
  Machine.add_hook m 1 (fun _ _ -> incr hits);
  Machine.clear_hook m 0;
  ignore (Machine.run m);
  Alcotest.(check int) "only pc 1 fires" 1 !hits;
  Machine.reset m;
  Machine.clear_all_hooks m;
  hits := 0;
  ignore (Machine.run m);
  Alcotest.(check int) "none fire" 0 !hits

(* Subscription is additive: a second observer on the same pc must not
   silently replace the first (the pre-observer API's footgun). *)
let test_hook_fan_out_order () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 7L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let log = ref [] in
  Machine.add_hook m 0 (fun v _ -> log := ("first", v) :: !log);
  Machine.add_hook m 0 (fun v _ -> log := ("second", v) :: !log);
  Machine.add_hook m 0 (fun v _ -> log := ("third", v) :: !log);
  Alcotest.(check int) "three subscribers" 3 (Machine.hook_count m 0);
  ignore (Machine.run m);
  Alcotest.(check (list (pair string int64)))
    "all fire, in attach order"
    [ ("first", 7L); ("second", 7L); ("third", 7L) ]
    (List.rev !log)

let test_attachment_detaches_as_unit () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 7L;
        Asm.ldi b t1 8L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let outer = ref 0 and inner = ref 0 in
  Machine.add_hook m 0 (fun _ _ -> incr outer);
  let (), att =
    Machine.with_attachment m (fun () ->
        Machine.add_hook m 0 (fun _ _ -> incr inner);
        Machine.add_hook m 1 (fun _ _ -> incr inner))
  in
  Alcotest.(check int) "frame logged both subscriptions" 2
    (Machine.hook_count m 0 + Machine.hook_count m 1 - 1);
  Machine.detach m att;
  Alcotest.(check int) "outer observer survives" 1 (Machine.hook_count m 0);
  Alcotest.(check int) "frame's pc 1 hook gone" 0 (Machine.hook_count m 1);
  ignore (Machine.run m);
  Alcotest.(check int) "survivor still fires" 1 !outer;
  Alcotest.(check int) "detached hooks never fire" 0 !inner

let test_attachment_detach_is_physical () =
  (* an identical closure subscribed outside the frame survives: detach
     removes the recorded instances only *)
  let prog =
    build (fun b ->
        Asm.ldi b t0 1L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let hits = ref 0 in
  let f _ _ = incr hits in
  Machine.add_hook m 0 f;
  let (), att = Machine.with_attachment m (fun () -> Machine.add_hook m 0 f) in
  Machine.detach m att;
  Alcotest.(check int) "the outside instance survives" 1
    (Machine.hook_count m 0);
  ignore (Machine.run m);
  Alcotest.(check int) "and fires once" 1 !hits

let test_attachment_frames_do_not_nest () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 1L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let (), _ =
    Machine.with_attachment m (fun () ->
        match Machine.with_attachment m (fun () -> ()) with
        | _ -> Alcotest.fail "nested frame must be rejected"
        | exception Invalid_argument _ -> ())
  in
  ()

let test_clear_hook_removes_all_subscribers () =
  let prog =
    build (fun b ->
        Asm.ldi b t0 1L;
        Asm.halt b)
  in
  let m = Machine.create prog in
  let hits = ref 0 in
  Machine.add_hook m 0 (fun _ _ -> incr hits);
  Machine.add_hook m 0 (fun _ _ -> incr hits);
  Machine.clear_hook m 0;
  Alcotest.(check int) "no subscribers left" 0 (Machine.hook_count m 0);
  ignore (Machine.run m);
  Alcotest.(check int) "neither fires" 0 !hits;
  (* re-attaching after a clear starts a fresh subscriber list *)
  Machine.reset m;
  Machine.add_hook m 0 (fun _ _ -> incr hits);
  ignore (Machine.run m);
  Alcotest.(check int) "fresh subscription fires once" 1 !hits

let test_proc_hook_fan_out () =
  let b = Asm.create () in
  Asm.proc b "callee" (fun b ->
      Asm.addi b ~dst:v0 a0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 10L;
      Asm.call b "callee";
      Asm.ldi b a0 20L;
      Asm.call b "callee";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let m = Machine.create prog in
  let callee = (Asm.find_proc prog "callee").Asm.pindex in
  let e1 = ref 0 and e2 = ref [] and r1 = ref 0 and r2 = ref [] in
  Machine.add_proc_entry_hook m callee (fun _ -> incr e1);
  Machine.add_proc_entry_hook m callee (fun m ->
      e2 := Machine.reg m a0 :: !e2);
  Machine.add_proc_return_hook m callee (fun _ _ -> incr r1);
  Machine.add_proc_return_hook m callee (fun _ v -> r2 := v :: !r2);
  ignore (Machine.run m);
  Alcotest.(check int) "first entry observer" 2 !e1;
  Alcotest.(check (list int64)) "second entry observer sees args"
    [ 10L; 20L ] (List.rev !e2);
  Alcotest.(check int) "first return observer" 2 !r1;
  Alcotest.(check (list int64)) "second return observer sees values"
    [ 11L; 21L ] (List.rev !r2)

let test_step_after_halt_is_noop () =
  let m = Machine.execute (build (fun b -> Asm.halt b)) in
  let count = Machine.icount m in
  Machine.step m;
  Alcotest.(check int) "icount unchanged" count (Machine.icount m);
  Alcotest.(check bool) "still halted" true (Machine.halted m)

let test_sp_initial () =
  let m = Machine.create (build (fun b -> Asm.halt b)) in
  Alcotest.(check int64) "sp at stack base" Machine.stack_base (Machine.reg m sp)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "logic and shifts" `Quick test_logic_and_shifts;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
    Alcotest.test_case "zero register" `Quick test_zero_register_immutable;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "all branch conditions" `Quick test_all_branch_conditions;
    Alcotest.test_case "calls" `Quick test_calls;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "ret on empty stack halts" `Quick test_ret_with_empty_stack_halts;
    Alcotest.test_case "indirect call" `Quick test_indirect_call;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "call depth trap" `Quick test_call_depth_trap;
    Alcotest.test_case "invalid indirect target" `Quick test_invalid_indirect_target;
    Alcotest.test_case "hooks see values" `Quick test_hooks_see_values;
    Alcotest.test_case "proc hooks" `Quick test_proc_hooks;
    Alcotest.test_case "exec counts" `Quick test_exec_counts;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "caller pc" `Quick test_caller_pc;
    Alcotest.test_case "indirect call entry hook" `Quick
      test_indirect_call_fires_entry_hook;
    Alcotest.test_case "clear hooks" `Quick test_clear_hooks;
    Alcotest.test_case "hook fan-out order" `Quick test_hook_fan_out_order;
    Alcotest.test_case "clear hook removes all" `Quick
      test_clear_hook_removes_all_subscribers;
    Alcotest.test_case "attachment detaches as a unit" `Quick
      test_attachment_detaches_as_unit;
    Alcotest.test_case "detach matches physically" `Quick
      test_attachment_detach_is_physical;
    Alcotest.test_case "attachment frames do not nest" `Quick
      test_attachment_frames_do_not_nest;
    Alcotest.test_case "proc hook fan-out" `Quick test_proc_hook_fan_out;
    Alcotest.test_case "step after halt" `Quick test_step_after_halt_is_noop;
    Alcotest.test_case "initial sp" `Quick test_sp_initial ]
