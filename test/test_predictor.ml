(* Predictor model tests: drive predictors directly with synthetic
   streams, then through the simulation harness. *)

let drive p pc stream =
  let predicted = ref 0 and correct = ref 0 in
  List.iter
    (fun v ->
      (match Predictor.predict p ~pc with
       | Some guess ->
         incr predicted;
         if Int64.equal guess v then incr correct
       | None -> ());
      Predictor.update p ~pc v)
    stream;
  (!predicted, !correct)

let repeat n v = List.init n (fun _ -> v)

let test_lvp_constant_stream () =
  let p = Predictor.lvp () in
  let predicted, correct = drive p 5 (repeat 100 42L) in
  (* first update trains, second raises confidence; from exec 3 on it
     predicts and is always right *)
  Alcotest.(check bool) "predicts most" true (predicted >= 97);
  Alcotest.(check int) "all correct" predicted correct

let test_lvp_alternating_stream () =
  let p = Predictor.lvp () in
  let stream = List.init 100 (fun i -> if i mod 2 = 0 then 1L else 2L) in
  let _, correct = drive p 5 stream in
  Alcotest.(check int) "never correct" 0 correct

let test_stride_sequence () =
  let p = Predictor.stride () in
  let stream = List.init 100 (fun i -> Int64.of_int (10 + (3 * i))) in
  let predicted, correct = drive p 5 stream in
  Alcotest.(check bool) "predicts most" true (predicted >= 95);
  Alcotest.(check int) "stride always right" predicted correct

let test_stride_zero_is_last_value () =
  let p = Predictor.stride () in
  let predicted, correct = drive p 5 (repeat 50 7L) in
  Alcotest.(check bool) "constant predicted" true (predicted >= 45);
  Alcotest.(check int) "correct" predicted correct

let test_fcm_periodic_pattern () =
  let p = Predictor.fcm ~history:2 () in
  (* period-3 pattern: a 2-value context uniquely determines the next *)
  let stream = List.init 120 (fun i -> Int64.of_int [| 1; 5; 9 |].(i mod 3)) in
  let predicted, correct = drive p 5 stream in
  Alcotest.(check bool) "warms up and predicts" true (predicted >= 100);
  Alcotest.(check bool) "almost all correct" true
    (correct >= predicted - 6)

let test_hybrid_picks_better_component () =
  (* A strided stream defeats LVP but not stride: the hybrid must end up
     near the stride predictor's accuracy. *)
  let hybrid = Predictor.hybrid (Predictor.lvp ()) (Predictor.stride ()) in
  let stream = List.init 200 (fun i -> Int64.of_int (4 * i)) in
  let predicted, correct = drive hybrid 5 stream in
  Alcotest.(check bool) "mostly correct" true
    (predicted > 150 && correct > predicted - 20)

let test_perfect_last_no_aliasing () =
  let p = Predictor.perfect_last () in
  (* interleave two pcs that would alias in a tiny table *)
  let ok = ref true in
  for i = 1 to 100 do
    ignore i;
    List.iter
      (fun (pc, v) ->
        (match Predictor.predict p ~pc with
         | Some guess -> if not (Int64.equal guess v) then ok := false
         | None -> ());
        Predictor.update p ~pc v)
      [ (0, 11L); (1024, 22L) ]
  done;
  Alcotest.(check bool) "no interference" true !ok;
  Alcotest.(check int) "no evictions" 0 (Predictor.evictions p)

let test_small_table_aliasing_evicts () =
  let p = Predictor.lvp ~bits:1 () in
  for _ = 1 to 10 do
    Predictor.update p ~pc:0 1L;
    Predictor.update p ~pc:2 2L (* same slot as pc 0 in a 2-entry table *)
  done;
  Alcotest.(check bool) "evictions counted" true (Predictor.evictions p > 10)

let test_filtered_gates_pcs () =
  (* fabricate a profile where only pc 0 is invariant *)
  let point pc inv =
    { Profile.p_pc = pc; p_instr = Isa.Nop; p_proc = "";
      p_metrics = { Metrics.empty with Metrics.total = 100; inv_top = inv } }
  in
  let profile =
    { Profile.points = [| point 0 0.9; point 1 0.1 |]; instrumented = 2;
      profiled_events = 200; dynamic_instructions = 1000;
      stats = Counters.create () }
  in
  let p = Predictor.filtered ~profile ~threshold:0.5 (Predictor.lvp ()) in
  for _ = 1 to 10 do
    Predictor.update p ~pc:0 1L;
    Predictor.update p ~pc:1 2L
  done;
  Alcotest.(check bool) "allowed pc predicts" true
    (Predictor.predict p ~pc:0 <> None);
  Alcotest.(check (option int64)) "filtered pc silent" None
    (Predictor.predict p ~pc:1)

let test_routed_dispatches_by_class () =
  (* pc 0: constant stream (last-value class); pc 1: strided; pc 2:
     unpredictable. Routing must send each to the right component and
     silence the third entirely. *)
  let point pc m = { Profile.p_pc = pc; p_instr = Isa.Nop; p_proc = ""; p_metrics = m } in
  let lv_metrics =
    { Metrics.empty with Metrics.total = 100; inv_top = 0.95; lvp = 0.95 }
  in
  let strided_metrics =
    { Metrics.empty with
      Metrics.total = 100; inv_top = 0.01; stride_top = 0.9;
      top_stride = Some 4L }
  in
  let wild_metrics = { Metrics.empty with Metrics.total = 100; inv_top = 0.01 } in
  let profile =
    { Profile.points =
        [| point 0 lv_metrics; point 1 strided_metrics; point 2 wild_metrics |];
      instrumented = 3; profiled_events = 300; dynamic_instructions = 1000;
      stats = Counters.create () }
  in
  let routed =
    Predictor.routed ~profile
      ~last_value:(Predictor.lvp ())
      ~strided:(Predictor.stride ())
      ()
  in
  (* constant stream at pc 0 *)
  let p0, c0 = drive routed 0 (repeat 50 7L) in
  Alcotest.(check bool) "pc0 predicted via lvp" true (p0 > 40 && c0 = p0);
  (* strided stream at pc 1 *)
  let stream = List.init 50 (fun i -> Int64.of_int (4 * i)) in
  let p1, c1 = drive routed 1 stream in
  Alcotest.(check bool) "pc1 predicted via stride" true (p1 > 40 && c1 > p1 - 5);
  (* unpredictable pc 2 never predicts *)
  let p2, _ = drive routed 2 (repeat 50 7L) in
  Alcotest.(check int) "pc2 silenced" 0 p2

let test_simulate_counts () =
  let w = Workloads.find "li" in
  let prog = w.Workload.wbuild Workload.Test in
  let results =
    Predictor.simulate prog [ Predictor.perfect_last (); Predictor.lvp () ]
  in
  (match results with
   | [ perfect; lvp ] ->
     Alcotest.(check bool) "events seen" true (perfect.Predictor.pr_events > 0);
     Alcotest.(check int) "same event stream" perfect.Predictor.pr_events
       lvp.Predictor.pr_events;
     Alcotest.(check bool) "perfect-last correct-rate >= lvp's" true
       (perfect.Predictor.pr_correct_rate >= lvp.Predictor.pr_correct_rate -. 1e-9);
     Alcotest.(check bool) "rates consistent" true
       (lvp.Predictor.pr_correct <= lvp.Predictor.pr_predicted
        && lvp.Predictor.pr_predicted <= lvp.Predictor.pr_events)
   | _ -> Alcotest.fail "expected two results")

let test_simulate_accuracy_definition () =
  let w = Workloads.find "swim" in
  let prog = w.Workload.wbuild Workload.Test in
  (match Predictor.simulate prog [ Predictor.lvp () ] with
   | [ r ] ->
     let expect =
       if r.Predictor.pr_predicted = 0 then 0.
       else
         float_of_int r.Predictor.pr_correct
         /. float_of_int r.Predictor.pr_predicted
     in
     Alcotest.(check (float 1e-9)) "accuracy" expect r.Predictor.pr_accuracy
   | _ -> Alcotest.fail "expected one result")

let suite =
  [ Alcotest.test_case "lvp constant" `Quick test_lvp_constant_stream;
    Alcotest.test_case "lvp alternating" `Quick test_lvp_alternating_stream;
    Alcotest.test_case "stride sequence" `Quick test_stride_sequence;
    Alcotest.test_case "stride zero = last value" `Quick
      test_stride_zero_is_last_value;
    Alcotest.test_case "fcm periodic" `Quick test_fcm_periodic_pattern;
    Alcotest.test_case "hybrid chooser" `Quick test_hybrid_picks_better_component;
    Alcotest.test_case "perfect last" `Quick test_perfect_last_no_aliasing;
    Alcotest.test_case "aliasing evictions" `Quick test_small_table_aliasing_evicts;
    Alcotest.test_case "filtered gating" `Quick test_filtered_gates_pcs;
    Alcotest.test_case "routed dispatch" `Quick test_routed_dispatches_by_class;
    Alcotest.test_case "simulate counts" `Quick test_simulate_counts;
    Alcotest.test_case "simulate accuracy" `Quick test_simulate_accuracy_definition ]
