(* The profile store: fingerprint keys, both backends' get/put/reload
   behavior, checksum distrust, generations + gc, and the profile-entry
   layer (v3 bytes under Profile.merge semantics). *)

let temp_dir () =
  let path = Filename.temp_file "vprof_store" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let counter_value name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

let fp ?fuel ?(shards = 1) ?(config = "") ?(workload = "go") () =
  Store.Fingerprint.make ?fuel ~shards ~config ~profiler:"full"
    ~workload ~input:"test" ()

let program () =
  let w = Workloads.find "go" in
  w.Workload.wbuild Workload.Test

let test_fingerprint_key_stable_and_distinct () =
  let base = Store.Fingerprint.key (fp ()) in
  Alcotest.(check string) "same fields, same key" base
    (Store.Fingerprint.key (fp ()));
  let variants =
    [ Store.Fingerprint.key (fp ~fuel:1000 ());
      Store.Fingerprint.key (fp ~shards:4 ());
      Store.Fingerprint.key (fp ~config:"tnv=16" ());
      Store.Fingerprint.key (fp ~workload:"li" ());
      Store.Fingerprint.key
        (Store.Fingerprint.make ~profiler:"experiment" ~workload:"go"
           ~input:"test" ()) ]
  in
  List.iter
    (fun k -> Alcotest.(check bool) "field change changes key" true (k <> base))
    variants;
  Alcotest.(check int) "all variants distinct" (List.length variants)
    (List.length (List.sort_uniq compare variants))

let test_fingerprint_key_filesystem_safe () =
  let t =
    Store.Fingerprint.make ~config:"tnv=8 policy=lfu-clear"
      ~profiler:"full" ~workload:"a workload/with bad:chars"
      ~input:"test" ()
  in
  let k = Store.Fingerprint.key t in
  String.iter
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '_'
      in
      Alcotest.(check bool) (Printf.sprintf "safe char %C in %s" c k) true ok)
    k

let test_mem_get_put_and_counters () =
  let s = Store.create_mem () in
  let h0 = counter_value "store.hits" in
  let m0 = counter_value "store.misses" in
  let b0 = counter_value "store.bytes_written" in
  Alcotest.(check (option string)) "miss" None (Store.get s "k");
  Store.put s ~key:"k" ~payload:"bytes";
  Alcotest.(check (option string)) "hit" (Some "bytes") (Store.get s "k");
  Alcotest.(check int) "one hit" (h0 + 1) (counter_value "store.hits");
  Alcotest.(check int) "one miss" (m0 + 1) (counter_value "store.misses");
  Alcotest.(check int) "bytes counted" (b0 + 5)
    (counter_value "store.bytes_written");
  (* overwrite in place *)
  Store.put s ~key:"k" ~payload:"other";
  Alcotest.(check (option string)) "overwritten" (Some "other")
    (Store.get s "k");
  let st = Store.stats s in
  Alcotest.(check int) "one entry" 1 st.Store.st_entries;
  Alcotest.(check int) "stats bytes" 5 st.Store.st_bytes

let test_put_rejects_newline_key () =
  let s = Store.create_mem () in
  match Store.put s ~key:"a\nb" ~payload:"x" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_dir_persists_across_reopen () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.put s ~key:"alpha key" ~payload:"payload one";
      Store.put s ~key:"beta" ~payload:"";
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "payload survives" (Some "payload one")
        (Store.find s' "alpha key");
      Alcotest.(check (option string)) "empty payload survives" (Some "")
        (Store.find s' "beta");
      Alcotest.(check (option string)) "unknown key" None (Store.find s' "x");
      Alcotest.(check int) "entries" 2 (Store.stats s').Store.st_entries)

let test_dir_reset_starts_empty () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.put s ~key:"k" ~payload:"x";
      let s' = Store.open_dir ~reset:true dir in
      Alcotest.(check int) "reset is empty" 0 (Store.stats s').Store.st_entries)

let test_corrupt_payload_not_trusted () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.put s ~key:"good" ~payload:"intact";
      Store.put s ~key:"bad" ~payload:"to be corrupted";
      (* smash every payload file that belongs to [bad] *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".out" then begin
            let path = Filename.concat dir f in
            let ic = open_in_bin path in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            if text = "to be corrupted" then begin
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc "to be CORRUPTED")
            end
          end)
        (Sys.readdir dir);
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "intact entry served" (Some "intact")
        (Store.find s' "good");
      Alcotest.(check (option string)) "corrupt entry treated as absent" None
        (Store.find s' "bad"))

let test_generations_and_gc () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      let g0 = Store.generation s in
      ignore (Store.new_generation s);
      Store.put s ~key:"old" ~payload:"old bytes";
      ignore (Store.new_generation s);
      Store.put s ~key:"mid" ~payload:"mid bytes";
      ignore (Store.new_generation s);
      Store.put s ~key:"new" ~payload:"new bytes";
      Alcotest.(check int) "three bumps" (g0 + 3) (Store.generation s);
      (* keep the last 2 generations: only [old] is past the cutoff *)
      Alcotest.(check int) "one removed" 1 (Store.gc s ~keep:2);
      Alcotest.(check (option string)) "old gone" None (Store.find s "old");
      Alcotest.(check (option string)) "mid kept" (Some "mid bytes")
        (Store.find s "mid");
      (* the removal is durable and its payload file is gone *)
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "gc durable" None (Store.find s' "old");
      Alcotest.(check int) "payload files match entries" 2
        (Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".out")
        |> List.length);
      (* generation survives reopen *)
      Alcotest.(check int) "generation persisted" (g0 + 3)
        (Store.generation s'))

let test_entries_sorted_with_generations () =
  let s = Store.create_mem () in
  ignore (Store.new_generation s);
  Store.put s ~key:"zeta" ~payload:"zz";
  ignore (Store.new_generation s);
  Store.put s ~key:"alpha" ~payload:"a";
  let infos = Store.entries s in
  Alcotest.(check (list string)) "sorted by key" [ "alpha"; "zeta" ]
    (List.map (fun (i : Store.info) -> i.Store.i_key) infos);
  Alcotest.(check (list int)) "write generations" [ 2; 1 ]
    (List.map (fun (i : Store.info) -> i.Store.i_gen) infos);
  Alcotest.(check (list int)) "byte sizes" [ 1; 2 ]
    (List.map (fun (i : Store.info) -> i.Store.i_bytes) infos)

let test_profile_roundtrip_exact () =
  with_dir (fun dir ->
      let prog = program () in
      let p = Profile.run prog in
      let s = Store.open_dir dir in
      Store.put_profile s ~key:"p" p;
      let s' = Store.open_dir dir in
      match Store.get_profile s' ~program:prog ~key:"p" with
      | None -> Alcotest.fail "expected a stored profile"
      | Some p' ->
        Alcotest.(check string) "text rendering identical"
          (Profile_io.to_string p) (Profile_io.to_string p'))

let test_decode_failure_is_a_miss () =
  let prog = program () in
  let p = Profile.run prog in
  let s = Store.create_mem () in
  Store.put_profile s ~key:"p" p;
  (* a program the stored pcs cannot validate against *)
  let b = Asm.create () in
  Asm.proc b "main" (fun b -> Asm.halt b);
  let tiny = Asm.assemble b ~entry:"main" in
  let d0 = counter_value "store.decode_failures" in
  Alcotest.(check bool) "decode failure reads as a miss" true
    (Store.get_profile s ~program:tiny ~key:"p" = None);
  Alcotest.(check int) "counted" (d0 + 1)
    (counter_value "store.decode_failures")

let test_merge_into_matches_profile_merge () =
  let prog = program () in
  let p = Profile.run prog in
  let s = Store.create_mem () in
  Store.merge_into s ~program:prog ~key:"m" p;
  Store.merge_into s ~program:prog ~key:"m" p;
  match Store.get_profile s ~program:prog ~key:"m" with
  | None -> Alcotest.fail "expected a merged profile"
  | Some merged ->
    Alcotest.(check string) "equals Profile.merge [p; p]"
      (Profile_io.to_string (Profile.merge [ p; p ]))
      (Profile_io.to_string merged)

(* --- durability & self-healing ------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let payload_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".out")
  |> List.sort compare

let test_replicas_mirror_and_heal () =
  with_dir (fun dir ->
      let s = Store.open_dir ~replicas:2 dir in
      Store.put s ~key:"k" ~payload:"replicated-bytes";
      Alcotest.(check int) "stats replicas" 2
        (Store.stats s).Store.st_replicas;
      let name =
        match payload_files dir with
        | [ f ] -> f
        | fs -> Alcotest.failf "expected one payload, found %d" (List.length fs)
      in
      let primary = Filename.concat dir name in
      let mirror i =
        Filename.concat
          (Filename.concat dir (Printf.sprintf "replica%d" i))
          name
      in
      List.iter
        (fun p ->
          Alcotest.(check string) ("copy at " ^ p) "replicated-bytes"
            (read_file p))
        [ primary; mirror 1; mirror 2 ];
      (* smash the primary: same size, wrong bytes — only the checksum
         can tell, and the replicas keep the entry alive *)
      write_file primary "replicated-BYTES";
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "served from replica"
        (Some "replicated-bytes") (Store.find s' "k");
      let r0 = counter_value "store.read_repairs" in
      Alcotest.(check (option string)) "get read-repairs"
        (Some "replicated-bytes") (Store.get s' "k");
      Alcotest.(check int) "read repair counted" (r0 + 1)
        (counter_value "store.read_repairs");
      Alcotest.(check string) "primary healed byte-identical"
        "replicated-bytes" (read_file primary))

let test_scrub_quarantines_never_deletes () =
  with_dir (fun dir ->
      let s = Store.open_dir ~replicas:1 dir in
      Store.put s ~key:"k" ~payload:"precious-bytes!!";
      let name = List.hd (payload_files dir) in
      let replica = Filename.concat (Filename.concat dir "replica1") name in
      write_file replica "precious-BYTES!!";
      let q0 = counter_value "store.quarantined" in
      let c = Store.scrub s in
      Alcotest.(check int) "one entry surveyed" 1 c.Store.c_entries;
      Alcotest.(check int) "primary copy ok" 1 c.Store.c_copies_ok;
      Alcotest.(check int) "one bad copy" 1 c.Store.c_copies_bad;
      Alcotest.(check int) "quarantined" 1 c.Store.c_quarantined;
      Alcotest.(check int) "quarantine counted" (q0 + 1)
        (counter_value "store.quarantined");
      Alcotest.(check bool) "moved aside, not deleted" true
        (Sys.file_exists (replica ^ ".corrupt"));
      Alcotest.(check string) "wreckage preserved byte-for-byte"
        "precious-BYTES!!"
        (read_file (replica ^ ".corrupt"));
      Alcotest.(check bool) "original name gone" false
        (Sys.file_exists replica))

let test_repair_restores_byte_identical () =
  with_dir (fun dir ->
      let s = Store.open_dir ~replicas:1 dir in
      Store.put s ~key:"k" ~payload:"golden-payload-bytes";
      let name = List.hd (payload_files dir) in
      let primary = Filename.concat dir name in
      write_file primary "mangled";
      let s' = Store.open_dir dir in
      Alcotest.(check bool) "verify flags the damage" false
        (Store.check_clean (Store.verify s'));
      let r = Store.repair s' in
      Alcotest.(check int) "one copy repaired" 1 r.Store.c_repaired;
      Alcotest.(check int) "nothing lost" 0 r.Store.c_lost;
      Alcotest.(check string) "byte-identical restoration"
        "golden-payload-bytes" (read_file primary);
      Alcotest.(check bool) "clean after repair" true
        (Store.check_clean (Store.verify s')))

let test_orphan_tmp_swept_on_open () =
  with_dir (fun dir ->
      let s = Store.open_dir ~replicas:1 dir in
      Store.put s ~key:"k" ~payload:"v";
      (* a crashed atomic commit leaves temp files behind, in the
         primary and in replica trees alike *)
      write_file (Filename.concat dir "stranded.tmp") "half-written";
      write_file
        (Filename.concat (Filename.concat dir "replica1") "also.tmp")
        "x";
      let o0 = counter_value "store.orphans_swept" in
      let s' = Store.open_dir dir in
      Alcotest.(check int) "both orphans counted" (o0 + 2)
        (counter_value "store.orphans_swept");
      Alcotest.(check bool) "primary orphan gone" false
        (Sys.file_exists (Filename.concat dir "stranded.tmp"));
      Alcotest.(check (option string)) "entries untouched" (Some "v")
        (Store.find s' "k"))

let test_decode_failure_quarantined_on_disk () =
  with_dir (fun dir ->
      let prog = program () in
      let p = Profile.run prog in
      let s = Store.open_dir dir in
      Store.put_profile s ~key:"p" p;
      let name = List.hd (payload_files dir) in
      (* bytes that pass their CRC yet cannot decode against [tiny] *)
      let b = Asm.create () in
      Asm.proc b "main" (fun b -> Asm.halt b);
      let tiny = Asm.assemble b ~entry:"main" in
      let q0 = counter_value "store.quarantined" in
      Alcotest.(check bool) "undecodable bytes dropped" true
        (Store.get_profile s ~program:tiny ~key:"p" = None);
      Alcotest.(check bool) "poisoned payload quarantined" true
        (Sys.file_exists (Filename.concat dir (name ^ ".corrupt")));
      Alcotest.(check int) "quarantine counted" (q0 + 1)
        (counter_value "store.quarantined");
      let m0 = counter_value "store.misses" in
      Alcotest.(check bool) "second lookup is a plain miss" true
        (Store.get_profile s ~program:tiny ~key:"p" = None);
      Alcotest.(check int) "miss counted" (m0 + 1)
        (counter_value "store.misses");
      (* the quarantined entry stays gone across a reopen *)
      let s' = Store.open_dir dir in
      Alcotest.(check (option string)) "absent after reopen" None
        (Store.find s' "p"))

let suite =
  [ Alcotest.test_case "fingerprint key stable and distinct" `Quick
      test_fingerprint_key_stable_and_distinct;
    Alcotest.test_case "fingerprint key filesystem-safe" `Quick
      test_fingerprint_key_filesystem_safe;
    Alcotest.test_case "mem get/put and counters" `Quick
      test_mem_get_put_and_counters;
    Alcotest.test_case "put rejects newline key" `Quick
      test_put_rejects_newline_key;
    Alcotest.test_case "dir persists across reopen" `Quick
      test_dir_persists_across_reopen;
    Alcotest.test_case "reset starts empty" `Quick test_dir_reset_starts_empty;
    Alcotest.test_case "corrupt payload not trusted" `Quick
      test_corrupt_payload_not_trusted;
    Alcotest.test_case "generations and gc" `Quick test_generations_and_gc;
    Alcotest.test_case "entries sorted with generations" `Quick
      test_entries_sorted_with_generations;
    Alcotest.test_case "profile roundtrip exact" `Quick
      test_profile_roundtrip_exact;
    Alcotest.test_case "decode failure is a miss" `Quick
      test_decode_failure_is_a_miss;
    Alcotest.test_case "merge_into matches Profile.merge" `Quick
      test_merge_into_matches_profile_merge;
    Alcotest.test_case "replicas mirror and heal" `Quick
      test_replicas_mirror_and_heal;
    Alcotest.test_case "scrub quarantines, never deletes" `Quick
      test_scrub_quarantines_never_deletes;
    Alcotest.test_case "repair restores byte-identical" `Quick
      test_repair_restores_byte_identical;
    Alcotest.test_case "orphan tmp swept on open" `Quick
      test_orphan_tmp_swept_on_open;
    Alcotest.test_case "decode failure quarantined on disk" `Quick
      test_decode_failure_quarantined_on_disk ]
