open Isa

(* A long loop with a stationary value stream: the sampler must converge
   and its estimate must match the full profile. *)
let stationary_program n =
  let b = Asm.create () in
  let values = Array.init 64 (fun i -> if i mod 8 = 0 then Int64.of_int i else 3L) in
  let base = Asm.data b values in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int n);
      Asm.br b Eq t2 "done";
      Asm.andi b ~dst:t3 t0 63L;
      Asm.add b ~dst:t3 t1 t3;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_no_skip_equals_full () =
  (* burst-only config with zero skip profiles everything *)
  let config =
    { Sampler.default_config with initial_skip = 0; backoff = 1. }
  in
  let prog = stationary_program 5_000 in
  let sampled = Sampler.run ~config ~selection:`Loads prog in
  Alcotest.(check int) "everything profiled" sampled.Sampler.total_events
    sampled.Sampler.profiled_events;
  Alcotest.(check (float 1e-9)) "overhead 100%" 1.0 sampled.Sampler.overhead;
  let full = Profile.run ~selection:`Loads prog in
  Alcotest.(check (float 1e-9)) "zero error" 0.
    (Sampler.invariance_error sampled full)

let test_skipping_reduces_overhead () =
  let prog = stationary_program 20_000 in
  let sampled = Sampler.run ~selection:`Loads prog in
  Alcotest.(check bool) "overhead well below 1" true
    (sampled.Sampler.overhead < 0.5);
  Alcotest.(check bool) "but nonzero" true (sampled.Sampler.profiled_events > 0)

let test_convergence_on_stationary_stream () =
  let prog = stationary_program 50_000 in
  let sampled = Sampler.run ~selection:`Loads prog in
  let p =
    match Array.to_list sampled.Sampler.points with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected one load point"
  in
  Alcotest.(check bool) "converged" true p.Sampler.s_converged;
  let full = Profile.run ~selection:`Loads prog in
  Alcotest.(check bool) "error under 5%" true
    (Sampler.invariance_error sampled full < 0.05)

let test_events_accounting () =
  let prog = stationary_program 10_000 in
  let sampled = Sampler.run ~selection:`Loads prog in
  let p = sampled.Sampler.points.(0) in
  Alcotest.(check int) "every execution observed" 10_000 p.Sampler.s_events;
  Alcotest.(check bool) "profiled <= events" true
    (p.Sampler.s_profiled <= p.Sampler.s_events);
  Alcotest.(check int) "metrics total = profiled" p.Sampler.s_profiled
    p.Sampler.s_metrics.Metrics.total

let test_aggressive_backoff_cheaper () =
  let prog = stationary_program 50_000 in
  let eager =
    Sampler.run
      ~config:{ Sampler.default_config with backoff = 1. }
      ~selection:`Loads prog
  in
  let aggressive =
    Sampler.run
      ~config:{ Sampler.default_config with backoff = 16.; max_skip = 1_000_000 }
      ~selection:`Loads prog
  in
  Alcotest.(check bool) "backoff reduces profiled events" true
    (aggressive.Sampler.profiled_events < eager.Sampler.profiled_events)

let test_invalid_configs () =
  let prog = stationary_program 100 in
  Alcotest.check_raises "bad burst"
    (Invalid_argument "Sampler: burst must be positive") (fun () ->
      ignore
        (Sampler.run ~config:{ Sampler.default_config with burst = 0 } prog));
  Alcotest.check_raises "bad backoff"
    (Invalid_argument "Sampler: backoff must be >= 1") (fun () ->
      ignore
        (Sampler.run ~config:{ Sampler.default_config with backoff = 0.5 } prog))

let test_top_stability_criterion () =
  let prog = stationary_program 50_000 in
  let config =
    { Sampler.default_config with criterion = Sampler.Top_stability }
  in
  let sampled = Sampler.run ~config ~selection:`Loads prog in
  let p = sampled.Sampler.points.(0) in
  Alcotest.(check bool) "converges on stable top value" true
    p.Sampler.s_converged;
  let full = Profile.run ~selection:`Loads prog in
  Alcotest.(check bool) "error stays small" true
    (Sampler.invariance_error sampled full < 0.05)

let test_phase_change_reopens_sampling () =
  (* A stream that flips its dominant value half-way: the sampler must
     not stay converged on the stale estimate; its final Inv-Top must
     land well below the first phase's ~100%. *)
  let b = Asm.create () in
  let n = 40_000 in
  let values = Array.make 2 0L in
  values.(0) <- 111L;
  values.(1) <- 222L;
  let base = Asm.data b values in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 base;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int n);
      Asm.br b Eq t2 "done";
      (* index 0 for the first half, 1 for the second *)
      Asm.cmplti b ~dst:t3 t0 (Int64.of_int (n / 2));
      Asm.xori b ~dst:t3 t3 1L;
      Asm.add b ~dst:t4 t1 t3;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (* the gap now keeps widening geometrically while converged, so cap it
     well below the phase length or the flip could fall inside one skip *)
  let config = { Sampler.default_config with max_skip = 2_000 } in
  let sampled = Sampler.run ~config ~selection:`Loads prog in
  let p = sampled.Sampler.points.(0) in
  Alcotest.(check bool) "estimate reflects both phases" true
    (p.Sampler.s_metrics.Metrics.inv_top < 0.9)

(* Regression for the convergent back-off: every quiet re-check burst must
   widen the gap again. The old code widened only on the burst that first
   established convergence (it guarded the back-off with [not converged]),
   so the gap froze after one widening and a long-converged point kept
   being re-profiled at nearly the initial rate. *)
let backoff_config =
  { Sampler.burst = 5; initial_skip = 10; epsilon = 0.01; consecutive = 1;
    backoff = 2.; max_skip = 1_000; criterion = Sampler.Inv_delta }

let test_backoff_keeps_widening () =
  let open Sampler.Testing in
  let st = make_state backoff_config in
  (* burst 1 sets the baseline; burst 2 is quiet, converges and doubles *)
  run_cycle st 7L;
  run_cycle st 7L;
  Alcotest.(check bool) "converged after quiet burst" true (is_converged st);
  Alcotest.(check int) "first widening" 20 (current_skip st);
  (* each further quiet re-check burst must double again — the frozen-gap
     bug left this stuck at 20 *)
  run_cycle st 7L;
  Alcotest.(check int) "second widening" 40 (current_skip st);
  run_cycle st 7L;
  run_cycle st 7L;
  Alcotest.(check int) "keeps doubling" 160 (current_skip st);
  for _ = 1 to 10 do run_cycle st 7L done;
  Alcotest.(check int) "capped at max_skip" 1_000 (current_skip st)

let test_backoff_resets_on_noisy_burst () =
  let open Sampler.Testing in
  let st = make_state backoff_config in
  for _ = 1 to 6 do run_cycle st 7L done;
  Alcotest.(check bool) "converged on constant stream" true (is_converged st);
  Alcotest.(check int) "gap widened well past initial" 320 (current_skip st);
  (* a burst of a different value moves Inv-Top past epsilon: the point
     must reopen at the initial rate, not stay backed off *)
  run_cycle st 9L;
  Alcotest.(check bool) "no longer converged" false (is_converged st);
  Alcotest.(check int) "skip reset to initial" 10 (current_skip st)

let test_degrade_widens_skip () =
  Fun.protect ~finally:Budget.Testing.reset @@ fun () ->
  let open Sampler.Testing in
  let st = make_state backoff_config in
  Budget.Testing.set_level 1;
  (* the ladder folds in at the burst boundary: one level doubles the
     inter-burst gap before any convergence widening applies *)
  run_cycle st 7L;
  Alcotest.(check int) "level 1 doubles the gap" 20 (current_skip st);
  (* an already-applied level folds in exactly once: the next quiet burst
     widens by the convergence backoff (x2) alone, not by degrade again *)
  run_cycle st 7L;
  Alcotest.(check int) "applied level does not re-widen" 40 (current_skip st);
  (* a saturated ladder on a fresh point clamps at max_skip *)
  Budget.Testing.set_level Budget.max_degrade_level;
  let st = make_state { backoff_config with Sampler.max_skip = 50 } in
  run_cycle st 7L;
  Alcotest.(check int) "widening clamps at max_skip" 50 (current_skip st)

let test_invariance_error_no_shared_points () =
  (* disjoint selections share no live point: the error is 0. by
     definition — and in particular a number, never NaN *)
  let prog = stationary_program 1_000 in
  let sampled = Sampler.run ~selection:`Loads prog in
  let full = Profile.run ~selection:`Alu prog in
  let e = Sampler.invariance_error sampled full in
  Alcotest.(check bool) "not NaN" false (Float.is_nan e);
  Alcotest.(check (float 1e-9)) "zero by definition" 0. e

let test_merge_identity_and_sum () =
  let prog = stationary_program 5_000 in
  let r () = Sampler.run ~selection:`Loads prog in
  let one = r () in
  let same = Sampler.merge [ one ] in
  Alcotest.(check int) "merge [r] keeps totals" one.Sampler.total_events
    same.Sampler.total_events;
  let m = Sampler.merge [ r (); r () ] in
  Alcotest.(check int) "events sum" (2 * one.Sampler.total_events)
    m.Sampler.total_events;
  Alcotest.(check int) "profiled sum" (2 * one.Sampler.profiled_events)
    m.Sampler.profiled_events;
  let p = m.Sampler.points.(0) and q = one.Sampler.points.(0) in
  Alcotest.(check int) "point events sum" (2 * q.Sampler.s_events)
    p.Sampler.s_events;
  Alcotest.(check bool) "convergence is the conjunction" true
    (Bool.equal p.Sampler.s_converged q.Sampler.s_converged)

let suite =
  [ Alcotest.test_case "no skip equals full" `Quick test_no_skip_equals_full;
    Alcotest.test_case "no shared live points: error is 0, not NaN" `Quick
      test_invariance_error_no_shared_points;
    Alcotest.test_case "merge identity and sums" `Quick
      test_merge_identity_and_sum;
    Alcotest.test_case "skipping reduces overhead" `Quick
      test_skipping_reduces_overhead;
    Alcotest.test_case "converges on stationary stream" `Quick
      test_convergence_on_stationary_stream;
    Alcotest.test_case "event accounting" `Quick test_events_accounting;
    Alcotest.test_case "aggressive backoff cheaper" `Quick
      test_aggressive_backoff_cheaper;
    Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
    Alcotest.test_case "top-stability criterion" `Quick
      test_top_stability_criterion;
    Alcotest.test_case "phase change handled" `Quick
      test_phase_change_reopens_sampling;
    Alcotest.test_case "back-off keeps widening while quiet" `Quick
      test_backoff_keeps_widening;
    Alcotest.test_case "back-off resets on a noisy burst" `Quick
      test_backoff_resets_on_noisy_burst;
    Alcotest.test_case "degradation widens the gap" `Quick
      test_degrade_widens_skip ]
