(* The benchmark harness.

   Part 1 regenerates every table and figure of the thesis's evaluation
   (experiments e01..e24; see DESIGN.md for the mapping and EXPERIMENTS.md
   for recorded results).

   Part 2 measures the OCaml profiler itself with Bechamel: the wall-clock
   cost of the virtual machine bare vs. fully instrumented vs. under the
   convergent sampler (the thesis's overhead story), plus the hot data
   structures (TNV add, oracle add, predictor update).

   Part 3 measures the parallel driver: the full multi-workload profiling
   job set (every workload x test input, full value profile) executed on
   1 domain vs. the machine's recommended domain count.

   Part 4 writes the machine-readable perf baseline BENCH_tnv.json:
   events/sec for the TNV hot path, the full profiler (bare and with an
   armed-but-never-firing resource budget: budget_poll_overhead), the
   convergent sampler, and the driver job set on 1 vs N domains. Each measurement is
   published into the metrics registry under bench.<name> and the file is
   rendered from the registry values, so the JSON baseline and a
   --metrics-style consumer see the same numbers. `--smoke` (the CI
   configuration) runs only this part. *)

open Bechamel
open Toolkit

(* A mid-sized fixed workload so each Bechamel sample is a few ms. *)
let bench_workload = Workloads.find "go"

let bench_program = bench_workload.Workload.wbuild Workload.Test

let run_uninstrumented () =
  let m = Machine.create bench_program in
  ignore (Machine.run m)

let run_full_profiling () = ignore (Profile.run ~selection:`All bench_program)

let run_loads_profiling () = ignore (Profile.run ~selection:`Loads bench_program)

let run_sampled_profiling () = ignore (Sampler.run bench_program)

let run_memory_profiling () = ignore (Memprof.run bench_program)

let tnv_values =
  let rng = Rng.create 99L in
  Array.init 4096 (fun _ -> Int64.of_int (Rng.skewed rng ~n:64 ~s:2.0))

let tnv_add_batch () =
  let t = Tnv.create ~capacity:8 () in
  Array.iter (Tnv.add t) tnv_values

let oracle_add_batch () =
  let o = Oracle.create () in
  Array.iter (Oracle.observe o) tnv_values

let vstate_observe_batch () =
  let vs = Vstate.create () in
  Array.iter (Vstate.observe vs) tnv_values

let predictor_update_batch () =
  let p = Predictor.lvp () in
  Array.iter (fun v -> Predictor.update p ~pc:(Int64.to_int v land 255) v)
    tnv_values

(* Design-choice ablations DESIGN.md calls out: TNV replacement policy
   costs and sampler criterion costs, and the textual pipeline. *)

let tnv_policy_batch policy () =
  let t = Tnv.create ~policy ~capacity:8 () in
  Array.iter (Tnv.add t) tnv_values

let sampler_with criterion () =
  ignore
    (Sampler.run ~config:{ Sampler.default_config with criterion } bench_program)

let emitted_source = Parser.emit bench_program

let parse_batch () = ignore (Parser.parse emitted_source)

let tests =
  Test.make_grouped ~name:"vprof" ~fmt:"%s %s"
    [ Test.make ~name:"machine uninstrumented (go/test)"
        (Staged.stage run_uninstrumented);
      Test.make ~name:"machine full profiling (go/test)"
        (Staged.stage run_full_profiling);
      Test.make ~name:"machine load profiling (go/test)"
        (Staged.stage run_loads_profiling);
      Test.make ~name:"machine sampled profiling (go/test)"
        (Staged.stage run_sampled_profiling);
      Test.make ~name:"machine memory profiling (go/test)"
        (Staged.stage run_memory_profiling);
      Test.make ~name:"tnv add x4096" (Staged.stage tnv_add_batch);
      Test.make ~name:"tnv lfu-clear x4096" (Staged.stage (tnv_policy_batch Tnv.Lfu_clear));
      Test.make ~name:"tnv pure-lfu x4096" (Staged.stage (tnv_policy_batch Tnv.Lfu));
      Test.make ~name:"tnv lru x4096" (Staged.stage (tnv_policy_batch Tnv.Lru));
      Test.make ~name:"sampler inv-delta (go/test)"
        (Staged.stage (sampler_with Sampler.Inv_delta));
      Test.make ~name:"sampler top-stability (go/test)"
        (Staged.stage (sampler_with Sampler.Top_stability));
      Test.make ~name:"parse emitted source (go)" (Staged.stage parse_batch);
      Test.make ~name:"oracle add x4096" (Staged.stage oracle_add_batch);
      Test.make ~name:"vstate observe x4096" (Staged.stage vstate_observe_batch);
      Test.make ~name:"lvp predictor update x4096"
        (Staged.stage predictor_update_batch) ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (results, raw_results)

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock)

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let print_bechamel () =
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  let results, _ = benchmark () in
  img (window, results) |> eol |> output_image

(* Part 3: the scaling job set — every workload's test input under the
   full value profiler, scheduled through the driver. *)

let scaling_jobs () =
  List.map
    (fun (w : Workload.t) ->
      Driver.job (module Profile.Profiler) ~finish:ignore w Workload.Test)
    Workloads.all

let time_wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let print_driver_scaling () =
  let n = Driver.default_jobs () in
  let serial = time_wall (fun () -> ignore (Driver.run_jobs ~jobs:1 (scaling_jobs ()))) in
  let parallel =
    time_wall (fun () -> ignore (Driver.run_jobs ~jobs:n (scaling_jobs ())))
  in
  Printf.printf
    "full-profile job set (%d workloads): 1 domain %.3fs, %d domains %.3fs (%.2fx)\n"
    (List.length Workloads.all) serial n parallel (serial /. parallel);
  let exp_serial = time_wall (fun () -> ignore (Experiments.run_all ~jobs:1 ())) in
  Harness.clear_cache ();
  let exp_parallel = time_wall (fun () -> ignore (Experiments.run_all ~jobs:n ())) in
  Printf.printf
    "experiment suite (e01..e24, cold caches): 1 domain %.3fs, %d domains %.3fs (%.2fx)\n"
    exp_serial n exp_parallel (exp_serial /. exp_parallel)

(* Part 4: the machine-readable perf baseline.

   Each entry is (events, wall seconds) with the wall clock taken as the
   best of [reps] repetitions, so transient noise only ever makes the
   recorded number worse, never better. *)

let timed_events ?(iters = 1) reps f =
  let events = ref 0 and best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let ev = ref 0 in
    for _ = 1 to iters do
      ev := !ev + f ()
    done;
    events := !ev;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!events, !best)

let tnv_hot_values n =
  let rng = Rng.create 99L in
  Array.init n (fun _ -> Int64.of_int (Rng.skewed rng ~n:64 ~s:2.0))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* The headline of the observer layer: 3 profilers over ONE machine
   execution vs 3 solo passes. Events are total machine steps, so the
   fused entry shows ~3x fewer for the same per-profiler output. Kept at
   top level so the closures inside [bench_json] lay out exactly as they
   did before fusion existed (the interpreter loop is layout-sensitive
   enough for the difference to show in the baseline). *)
let bench_pconfig =
  { Procprof.default_config with arities = bench_workload.Workload.warities }

let solo_3_profilers () =
  let p = Profile.run ~selection:`All bench_program in
  let m = Memprof.run bench_program in
  let pr = Procprof.run ~config:bench_pconfig bench_program in
  p.Profile.dynamic_instructions + m.Memprof.dynamic_instructions
  + pr.Procprof.dynamic_instructions

let fused_3_profilers () =
  let f =
    Fused.run bench_program
      [ Fused.item (module Profile.Profiler) ~finish:ignore;
        Fused.item (module Memprof.Profiler) ~finish:ignore;
        Fused.item (module Procprof.Profiler) ~config:bench_pconfig
          ~finish:ignore ]
  in
  f.Fused.machine_steps

(* One Part-4 measurement. [bdomains] carries the worker-domain count for
   driver entries, so the domain count lives in data rather than being
   mangled into the name (which previously produced the near-duplicate
   names driver_1_domain / driver_1_domains on a 1-core machine).

   [bevents] keeps each entry's own natural unit (solo_3_profilers counts
   the steps of all 3 passes, fused_3_profilers the steps of its single
   execution), which makes the events_per_sec of such pairs incomparable
   — dividing by different denominators read as a fused slowdown when
   wall-clock was ~1.7x faster. [bmachine_events], when set, is the
   SHARED denominator (machine events of one workload execution x iters)
   published as machine_events / machine_events_per_sec alongside, so
   entries that do the same profiling work compare on the same scale. *)
type bench_entry = {
  bname : string;
  bdomains : int option;
  bevents : int;
  bmachine_events : int option;
  bseconds : float;
}

let bench_json () =
  let reps = 5 in
  let iters = 10 in
  let tnv_n = 1 lsl 22 in
  let hot = tnv_hot_values tnv_n in
  let tnv_add () =
    let t = Tnv.create ~capacity:8 () in
    Array.iter (Tnv.add t) hot;
    Array.length hot
  in
  let full_profile () =
    let p = Profile.run ~selection:`All bench_program in
    p.Profile.profiled_events
  in
  (* full_profile again, but with resource governance armed on limits so
     generous they never fire: the delta against full_profile is the
     whole price of the machine's periodic Budget.poll (one atomic load
     per step plus a deadline/heap check every 4096 steps). The
     acceptance bar is <= 3% on machine_events_per_sec. *)
  let governed_profile () =
    Budget.govern
      { Budget.no_limits with
        deadline = Some 1e9;
        max_heap_words = Some max_int;
        degrade = true }
      (fun () ->
        let p = Profile.run ~selection:`All bench_program in
        p.Profile.profiled_events)
  in
  let sampler () =
    let s = Sampler.run bench_program in
    s.Sampler.total_events
  in
  let driver jobs () =
    Driver.run_jobs ~jobs
      (List.map
         (fun (w : Workload.t) ->
           Driver.job
             (module Profile.Profiler)
             ~finish:(fun (p : Profile.t) -> p.Profile.profiled_events)
             w Workload.Test)
         Workloads.all)
    |> List.fold_left ( + ) 0
  in
  (* the same job set under the supervisor: the difference against
     driver_1_domain is the whole cost of retry/cancellation bookkeeping
     on a fault-free run *)
  let supervised jobs () =
    Supervisor.run_jobs ~jobs
      (List.map
         (fun (w : Workload.t) ->
           Driver.job
             (module Profile.Profiler)
             ~finish:(fun (p : Profile.t) -> p.Profile.profiled_events)
             w Workload.Test)
         Workloads.all)
    |> Supervisor.oks
    |> List.fold_left ( + ) 0
  in
  let n = Driver.default_jobs () in
  let entry ?domains ?machine_events bname (bevents, bseconds) =
    { bname; bdomains = domains; bevents; bmachine_events = machine_events;
      bseconds }
  in
  (* The shared denominator: machine events of ONE go/test execution,
     times the iterations each rep performs. Every entry whose repetition
     is exactly one logical execution of the workload carries it, so
     solo/fused/sharded/full compare on the same scale. *)
  let steps1 =
    let m = Machine.create bench_program in
    ignore (Machine.run m);
    Machine.icount m
  in
  let shared = iters * steps1 in
  (* Sharded collection of the same profile: plans are built once per K
     outside the clock (the steady-state cost a repeated collector pays);
     the timed body is the K windowed executions plus the merge. *)
  let sharded plan () =
    let p = Shard.profile_plan ~jobs:n plan in
    p.Profile.profiled_events
  in
  let shard_counts = List.sort_uniq compare (2 :: if n > 2 then [ n ] else []) in
  let sharded_entries =
    List.map
      (fun k ->
        let pl = Shard.plan bench_workload Workload.Test ~shards:k in
        entry
          ~domains:(min n (Shard.plan_size pl))
          ~machine_events:shared
          (Printf.sprintf "sharded_%d" k)
          (timed_events ~iters reps (sharded pl)))
      shard_counts
  in
  (* Persistence throughput: both profile codecs over the same in-memory
     profile (events = bytes produced/consumed, so events_per_sec is
     bytes/sec), plus the warm path of a store-backed experiments grid —
     every unit served from the on-disk store, zero machine executions
     (events = summed payload bytes per warm pass). *)
  let io_p = Profile.run ~selection:`All bench_program in
  let v3_bytes = Profile_io.to_binary io_p in
  let io_iters = 50 in
  let v2_write () = String.length (Profile_io.to_string io_p) in
  let v3_write () = String.length (Profile_io.to_binary io_p) in
  let v3_read () =
    ignore (Profile_io.of_string ~program:bench_program v3_bytes);
    String.length v3_bytes
  in
  let store_warm_grid =
    let dir = "bench_store_tmp" in
    rm_rf dir;
    let specs =
      List.filter
        (fun (s : Experiments.spec) ->
          List.mem s.id [ "e01"; "e02"; "e03"; "e04" ])
        Experiments.all
    in
    let with_store s =
      { Experiments.default_run_config with rc_store = Some s }
    in
    (* cold fill outside the clock: the timed body is pure store service *)
    ignore
      (Experiments.run_strings ~config:(with_store (Store.open_dir dir)) specs);
    let warm () =
      Harness.clear_cache ();
      let rep =
        Experiments.run_strings ~config:(with_store (Store.open_dir dir)) specs
      in
      List.fold_left
        (fun acc (o : string Supervisor.outcome) ->
          match o.Supervisor.o_result with
          | Ok payload -> acc + String.length payload
          | Error _ -> acc)
        0 rep.Supervisor.outcomes
    in
    let e = entry "store_warm_grid" (timed_events reps warm) in
    Harness.set_store None;
    Harness.clear_cache ();
    rm_rf dir;
    e
  in
  (* The driver entry records the domain count that actually resolves
     (never more workers than jobs); on a 1-core machine the N-domain
     entry would duplicate driver_1_domain under a misleading name, so it
     is skipped instead of published with domains = 1. *)
  let resolved = min n (List.length Workloads.all) in
  [ entry "tnv_add" (timed_events reps tnv_add);
    entry ~machine_events:shared "full_profile"
      (timed_events ~iters reps full_profile);
    entry ~machine_events:shared "budget_poll_overhead"
      (timed_events ~iters reps governed_profile);
    entry ~machine_events:shared "sampler" (timed_events ~iters reps sampler);
    entry ~machine_events:shared "solo_3_profilers"
      (timed_events ~iters reps solo_3_profilers);
    entry ~machine_events:shared "fused_3_profilers"
      (timed_events ~iters reps fused_3_profilers);
    entry ~domains:1 "driver_1_domain" (timed_events 1 (driver 1));
    entry ~domains:1 "driver_supervised_1_domain" (timed_events 1 (supervised 1)) ]
  @ (if resolved > 1 then
       [ entry ~domains:resolved "driver_N_domains"
           (timed_events 1 (driver resolved)) ]
     else begin
       Printf.printf
         "  (driver_N_domains skipped: only 1 worker domain resolves here)\n";
       []
     end)
  @ sharded_entries
  @ [ entry "profile_io_v2_write" (timed_events ~iters:io_iters reps v2_write);
      entry "profile_io_v3_write" (timed_events ~iters:io_iters reps v3_write);
      entry "profile_io_v3_read" (timed_events ~iters:io_iters reps v3_read);
      store_warm_grid ]

(* Publish one entry into the registry and hand back the handles; the
   JSON below is then read from the registry, not from the raw record, so
   the file is by construction a view of the same substrate every other
   consumer of Obs.Metrics sees. *)
let publish_entry e =
  let evs = Obs.Metrics.counter (Printf.sprintf "bench.%s.events" e.bname) in
  Obs.Metrics.add evs e.bevents;
  let secs = Obs.Metrics.gauge (Printf.sprintf "bench.%s.seconds" e.bname) in
  Obs.Metrics.set_gauge secs e.bseconds;
  let rate =
    Obs.Metrics.gauge (Printf.sprintf "bench.%s.events_per_sec" e.bname)
  in
  Obs.Metrics.set_gauge rate
    (if e.bseconds > 0. then float_of_int e.bevents /. e.bseconds else 0.);
  let shared =
    match e.bmachine_events with
    | None -> None
    | Some me ->
      let mevs =
        Obs.Metrics.counter (Printf.sprintf "bench.%s.machine_events" e.bname)
      in
      Obs.Metrics.add mevs me;
      let mrate =
        Obs.Metrics.gauge
          (Printf.sprintf "bench.%s.machine_events_per_sec" e.bname)
      in
      Obs.Metrics.set_gauge mrate
        (if e.bseconds > 0. then float_of_int me /. e.bseconds else 0.);
      Some (mevs, mrate)
  in
  (evs, secs, rate, shared)

let json_of_entry e =
  let evs, secs, rate, shared = publish_entry e in
  Obs.Json.Obj
    (("name", Obs.Json.Str e.bname)
     ::
     (match e.bdomains with
      | Some d -> [ ("domains", Obs.Json.Num (float_of_int d)) ]
      | None -> [])
    @ [ ("events",
         Obs.Json.Num (float_of_int (Obs.Metrics.counter_value evs)));
        ("seconds", Obs.Json.Num (Obs.Metrics.gauge_value secs));
        ("events_per_sec",
         Obs.Json.Num (Float.round (Obs.Metrics.gauge_value rate))) ]
    @ (match shared with
       | None -> []
       | Some (mevs, mrate) ->
         [ ("machine_events",
            Obs.Json.Num (float_of_int (Obs.Metrics.counter_value mevs)));
           ("machine_events_per_sec",
            Obs.Json.Num (Float.round (Obs.Metrics.gauge_value mrate))) ]))

let write_bench_json path =
  let entries = bench_json () in
  let json =
    Obs.Json.Obj
      [ ("bench", Obs.Json.Str "BENCH_tnv");
        ("workload", Obs.Json.Str bench_workload.Workload.wname);
        ("input", Obs.Json.Str "test");
        ("runs", Obs.Json.List (List.map json_of_entry entries)) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n" path;
  List.iter
    (fun e ->
      Printf.printf "  %-26s %12d events  %8.3fs  %12.0f events/s%s%s\n" e.bname
        e.bevents e.bseconds
        (if e.bseconds > 0. then float_of_int e.bevents /. e.bseconds else 0.)
        (match e.bmachine_events with
         | Some me when e.bseconds > 0. ->
           Printf.sprintf "  %12.0f machine-events/s"
             (float_of_int me /. e.bseconds)
         | _ -> "")
        (match e.bdomains with
         | Some d -> Printf.sprintf "  (%d domains)" d
         | None -> ""))
    entries

let () =
  (* --smoke (the CI configuration) runs only Part 4; the measurement
     itself is the same either way, so smoke numbers are comparable to
     full-run numbers. *)
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  if not smoke then begin
    print_endline "================================================================";
    print_endline " Part 1: paper tables and figures (experiments e01..e24)";
    print_endline "================================================================";
    (* parallel across the recommended domain count; the output bytes are
       identical to a serial run *)
    Experiments.print_all ~jobs:0 ();
    print_endline "================================================================";
    print_endline " Part 2: profiler wall-clock micro-benchmarks (Bechamel)";
    print_endline "================================================================";
    print_bechamel ();
    print_endline "================================================================";
    print_endline " Part 3: parallel driver scaling (1 vs N domains)";
    print_endline "================================================================";
    Harness.clear_cache ();
    print_driver_scaling ()
  end;
  print_endline "================================================================";
  print_endline " Part 4: perf baseline (BENCH_tnv.json)";
  print_endline "================================================================";
  Harness.clear_cache ();
  write_bench_json "BENCH_tnv.json"
