(* The observability substrate. See obs.mli for the contract; the two
   invariants that shaped this file are (a) a disabled trace site costs
   exactly one flag read, and (b) trace recording never takes a lock —
   each domain owns its buffer, and the only mutex-protected operations
   are buffer registration, registry creation and histogram appends, all
   of them cold. *)

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let number_to_string x =
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else if Float.is_finite x then Printf.sprintf "%.12g" x
    else invalid_arg "Obs.Json: non-finite number"

  let to_string v =
    let buf = Buffer.create 4096 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num x -> Buffer.add_string buf (number_to_string x)
      | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
      | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            go item)
          fields;
        Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  exception Bad of int * string

  let parse text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = text.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub text !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some cp ->
                (* decode the BMP code point to UTF-8 *)
                if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end)
           | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char text.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some x -> x
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); field ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          field ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          List (List.rev !items)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
      Error (Printf.sprintf "at byte %d: %s" at msg)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | Null | Bool _ | Num _ | Str _ | List _ -> None
end

let write_text_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = { c_name : string; c_val : int Atomic.t }
  type gauge = { g_name : string; g_val : float Atomic.t }

  type histogram = {
    h_name : string;
    h_mu : Mutex.t;
    mutable h_data : float array;
    mutable h_len : int;
  }

  type metric = C of counter | G of gauge | H of histogram

  let mu = Mutex.create ()
  let table : (string, metric) Hashtbl.t = Hashtbl.create 64

  let with_mu f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

  let get_or_create name make match_existing =
    with_mu (fun () ->
        match Hashtbl.find_opt table name with
        | Some m ->
          (match match_existing m with
           | Some x -> x
           | None ->
             invalid_arg
               (Printf.sprintf
                  "Obs.Metrics: %S is already registered as a %s" name
                  (kind_name m)))
        | None ->
          let x, m = make () in
          Hashtbl.replace table name m;
          x)

  let counter name =
    get_or_create name
      (fun () ->
        let c = { c_name = name; c_val = Atomic.make 0 } in
        (c, C c))
      (function C c -> Some c | G _ | H _ -> None)

  let incr c = Atomic.incr c.c_val
  let add c n = ignore (Atomic.fetch_and_add c.c_val n)
  let counter_value c = Atomic.get c.c_val

  let gauge name =
    get_or_create name
      (fun () ->
        let g = { g_name = name; g_val = Atomic.make 0. } in
        (g, G g))
      (function G g -> Some g | C _ | H _ -> None)

  let set_gauge g x = Atomic.set g.g_val x
  let gauge_value g = Atomic.get g.g_val

  let histogram name =
    get_or_create name
      (fun () ->
        let h =
          { h_name = name; h_mu = Mutex.create (); h_data = [||]; h_len = 0 }
        in
        (h, H h))
      (function H h -> Some h | C _ | G _ -> None)

  let observe h x =
    Mutex.lock h.h_mu;
    if h.h_len = Array.length h.h_data then begin
      let grown = Array.make (max 16 (2 * h.h_len)) 0. in
      Array.blit h.h_data 0 grown 0 h.h_len;
      h.h_data <- grown
    end;
    h.h_data.(h.h_len) <- x;
    h.h_len <- h.h_len + 1;
    Mutex.unlock h.h_mu

  let histogram_samples h =
    Mutex.lock h.h_mu;
    let copy = Array.sub h.h_data 0 h.h_len in
    Mutex.unlock h.h_mu;
    copy

  let histogram_percentile h p = Stats.percentile p (histogram_samples h)

  type value =
    | Counter of int
    | Gauge of float
    | Histogram of float array

  let snapshot () =
    let items =
      with_mu (fun () ->
          Hashtbl.fold
            (fun name m acc ->
              let v =
                match m with
                | C c -> Counter (counter_value c)
                | G g -> Gauge (gauge_value g)
                | H h -> Histogram (histogram_samples h)
              in
              (name, v) :: acc)
            table [])
    in
    List.sort (fun (a, _) (b, _) -> compare a b) items

  let reset () =
    with_mu (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | C c -> Atomic.set c.c_val 0
            | G g -> Atomic.set g.g_val 0.
            | H h ->
              Mutex.lock h.h_mu;
              h.h_len <- 0;
              Mutex.unlock h.h_mu)
          table)

  let to_json () =
    let metric_json (name, v) =
      match v with
      | Counter n ->
        Json.Obj
          [ ("name", Json.Str name); ("type", Json.Str "counter");
            ("value", Json.Num (float_of_int n)) ]
      | Gauge x ->
        Json.Obj
          [ ("name", Json.Str name); ("type", Json.Str "gauge");
            ("value", Json.Num x) ]
      | Histogram samples ->
        let stats =
          if Array.length samples = 0 then []
          else
            let lo, hi = Stats.min_max samples in
            [ ("min", Json.Num lo);
              ("p50", Json.Num (Stats.percentile 50. samples));
              ("p90", Json.Num (Stats.percentile 90. samples));
              ("p99", Json.Num (Stats.percentile 99. samples));
              ("max", Json.Num hi) ]
        in
        Json.Obj
          ([ ("name", Json.Str name); ("type", Json.Str "histogram");
             ("count", Json.Num (float_of_int (Array.length samples))) ]
          @ stats)
    in
    Json.Obj [ ("metrics", Json.List (List.map metric_json (snapshot ()))) ]

  let write_file path = write_text_file path (Json.to_string (to_json ()) ^ "\n")
end

(* ------------------------------------------------------------------ *)
(* Span tracer                                                        *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type ev = { e_ph : char; e_name : string; e_cat : string; e_ts : float }

  let dummy_ev = { e_ph = ' '; e_name = ""; e_cat = ""; e_ts = 0. }

  (* A domain's private buffer. [b_gen] ties it to the trace generation:
     after a [reset], the next record on this domain clears the buffer
     and re-registers it, so stale events from before the reset never
     leak into the new trace. *)
  type buf = {
    b_dom : int;
    mutable b_gen : int;
    mutable b_evs : ev array;
    mutable b_len : int;
  }

  let enabled = ref false
  let on () = !enabled
  let set_enabled b = enabled := b

  let mu = Mutex.create ()
  let bufs : buf list ref = ref []
  let generation = ref 1
  let epoch = ref 0.

  let key =
    Domain.DLS.new_key (fun () ->
        { b_dom = (Domain.self () :> int);
          b_gen = 0;
          b_evs = [||];
          b_len = 0 })

  let reset () =
    Mutex.lock mu;
    bufs := [];
    incr generation;
    epoch := now ();
    Mutex.unlock mu

  (* Hot (tracing-on) path: one DLS read, a generation check, an array
     store. The mutex is taken only on the first record after a reset. *)
  let record ph name cat =
    let b = Domain.DLS.get key in
    if b.b_gen <> !generation then begin
      b.b_len <- 0;
      b.b_gen <- !generation;
      Mutex.lock mu;
      bufs := b :: !bufs;
      Mutex.unlock mu
    end;
    if b.b_len = Array.length b.b_evs then begin
      let grown = Array.make (max 256 (2 * b.b_len)) dummy_ev in
      Array.blit b.b_evs 0 grown 0 b.b_len;
      b.b_evs <- grown
    end;
    b.b_evs.(b.b_len) <- { e_ph = ph; e_name = name; e_cat = cat; e_ts = now () -. !epoch };
    b.b_len <- b.b_len + 1

  let begin_span ?(cat = "app") name = if !enabled then record 'B' name cat
  let end_span ?(cat = "app") name = if !enabled then record 'E' name cat
  let instant ?(cat = "app") name = if !enabled then record 'i' name cat

  let with_span ?cat name f =
    if not !enabled then f ()
    else begin
      begin_span ?cat name;
      match f () with
      | v ->
        end_span ?cat name;
        v
      | exception e ->
        end_span ?cat name;
        raise e
    end

  type event = {
    ph : char;
    name : string;
    cat : string;
    ts_us : float;
    dom : int;
  }

  let events () =
    Mutex.lock mu;
    let gen = !generation in
    let snap =
      List.filter_map
        (fun b ->
          if b.b_gen = gen && b.b_len > 0 then
            Some (b.b_dom, Array.sub b.b_evs 0 b.b_len)
          else None)
        !bufs
    in
    Mutex.unlock mu;
    List.sort (fun (a, _) (b, _) -> compare a b) snap
    |> List.concat_map (fun (dom, evs) ->
           Array.to_list evs
           |> List.map (fun e ->
                  { ph = e.e_ph; name = e.e_name; cat = e.e_cat;
                    ts_us = e.e_ts *. 1e6; dom }))

  let structure () =
    let buf = Buffer.create 1024 in
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "dom %d: %c %s [%s]\n" e.dom e.ph e.name e.cat))
      (events ());
    Buffer.contents buf

  let well_nested () =
    let check_domain (dom, evs) =
      let stack = ref [] in
      let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
      let rec go = function
        | [] ->
          (match !stack with
           | [] -> Ok ()
           | name :: _ -> bad "dom %d: span %S never ended" dom name)
        | e :: rest ->
          (match e.ph with
           | 'B' ->
             stack := e.name :: !stack;
             go rest
           | 'E' ->
             (match !stack with
              | top :: below when top = e.name ->
                stack := below;
                go rest
              | top :: _ ->
                bad "dom %d: end of %S while %S is open" dom e.name top
              | [] -> bad "dom %d: end of %S with no open span" dom e.name)
           | _ -> go rest)
      in
      go evs
    in
    let by_dom = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_dom e.dom) in
        Hashtbl.replace by_dom e.dom (e :: cur))
      (events ());
    Hashtbl.fold (fun dom evs acc -> (dom, List.rev evs) :: acc) by_dom []
    |> List.fold_left
         (fun acc d -> match acc with Error _ -> acc | Ok () -> check_domain d)
         (Ok ())

  let to_json () =
    let event_json e =
      let base =
        [ ("name", Json.Str e.name);
          ("cat", Json.Str e.cat);
          ("ph", Json.Str (String.make 1 e.ph));
          ("pid", Json.Num 1.);
          ("tid", Json.Num (float_of_int e.dom));
          ("ts", Json.Num e.ts_us) ]
      in
      (* instant events carry a scope field in the trace_event format *)
      Json.Obj (if e.ph = 'i' then base @ [ ("s", Json.Str "t") ] else base)
    in
    Json.Obj [ ("traceEvents", Json.List (List.map event_json (events ()))) ]

  let write_file path = write_text_file path (Json.to_string (to_json ()) ^ "\n")
end

(* ------------------------------------------------------------------ *)
(* Profiler-run publication                                           *)
(* ------------------------------------------------------------------ *)

let publish_profiler_run ~name (c : Counters.t) =
  let pfx = "profiler." ^ name ^ "." in
  Metrics.incr (Metrics.counter (pfx ^ "runs"));
  Metrics.add (Metrics.counter (pfx ^ "events_seen")) c.Counters.events_seen;
  Metrics.add
    (Metrics.counter (pfx ^ "events_profiled"))
    c.Counters.events_profiled;
  Metrics.add (Metrics.counter (pfx ^ "tnv_clears")) c.Counters.tnv_clears;
  Metrics.add
    (Metrics.counter (pfx ^ "tnv_evictions"))
    c.Counters.tnv_replacements;
  Metrics.observe
    (Metrics.histogram (pfx ^ "wall_seconds"))
    c.Counters.wall_seconds;
  if c.Counters.degrade_level > 0 then
    Metrics.set_gauge
      (Metrics.gauge (pfx ^ "degrade_level"))
      (float_of_int c.Counters.degrade_level)

(* Budget lives in [vp_util], below this library, so it cannot emit
   telemetry itself; it reports degradation steps and budget trips
   through a notifier installed here at program start. Linking [vp_obs]
   (every binary does) is what arms the wiring. *)
let m_degrade_steps = Metrics.counter "degrade.steps"
let m_deadline_trips = Metrics.counter "budget.deadline_trips"
let m_mem_trips = Metrics.counter "budget.mem_pressure_trips"

let () =
  Budget.set_notifier (function
    | Budget.Degrade_step level ->
      Metrics.incr m_degrade_steps;
      Metrics.set_gauge (Metrics.gauge "degrade.level") (float_of_int level);
      Trace.instant ~cat:"budget" "degrade.step"
    | Budget.Deadline_trip _ ->
      Metrics.incr m_deadline_trips;
      Trace.instant ~cat:"budget" "budget.deadline"
    | Budget.Mem_trip _ ->
      Metrics.incr m_mem_trips;
      Trace.instant ~cat:"budget" "budget.mem_pressure")
