(** The observability substrate: structured tracing plus a process-wide
    metrics registry, shared by every layer from the virtual machine up
    to the experiment suite.

    Two design invariants, both load-bearing:

    - {e Zero cost when off.} Tracing is gated on a single flag read
      ({!Trace.on}); a disabled span site costs one boolean load and
      nothing else — no allocation, no clock read, no buffer touch. The
      registry's counters are bare atomic adds placed only on cold or
      per-run paths (never per machine event), so they stay on
      unconditionally.

    - {e Lock-free recording.} Each domain appends trace events to its
      own buffer (registered once, under a mutex, at first use); the hot
      recording path takes no lock and shares no cache line with other
      domains.

    See DESIGN.md ("The observability layer") for the span model and the
    registry naming scheme. *)

(** A minimal JSON tree: enough to emit the trace/metrics files and to
    parse them back for validation (the repository deliberately has no
    external JSON dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (** Compact rendering. Integral [Num]s print without a decimal point,
      so counters round-trip exactly. *)
  val to_string : t -> string

  (** Strict parser for the subset {!to_string} emits (standard JSON with
      numbers as floats). [Error msg] carries a position. *)
  val parse : string -> (t, string) result

  (** Field lookup on an [Obj]; [None] on a missing field or a non-object. *)
  val member : string -> t -> t option
end

(** The metrics registry: named counters, gauges and histograms,
    get-or-created by name and aggregated process-wide. Names follow a
    ["layer.metric"] dotted scheme ("machine.runs", "tnv.clears",
    "supervisor.retries", "profiler.profile.events_seen", ...).

    All operations are domain-safe: counters and gauges are atomics,
    histograms take a per-histogram lock on [observe] (they live on
    per-run paths only). {!reset} zeroes every metric but never
    invalidates a handle, so modules may hold handles at top level. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  (** Get or create. Raises [Invalid_argument] if the name is already
      registered as a different metric kind. *)
  val counter : string -> counter

  val incr : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int

  val gauge : string -> gauge
  val set_gauge : gauge -> float -> unit
  val gauge_value : gauge -> float

  (** Histograms keep every sample; percentiles are computed on demand
      with {!Stats.percentile} (the registry adds no second quantile
      estimator). *)
  val histogram : string -> histogram

  val observe : histogram -> float -> unit

  (** The raw samples, in observation order (a copy). *)
  val histogram_samples : histogram -> float array

  (** [histogram_percentile h p] = [Stats.percentile p] of the samples.
      Raises [Invalid_argument] on an empty histogram, like
      [Stats.percentile]. *)
  val histogram_percentile : histogram -> float -> float

  type value =
    | Counter of int
    | Gauge of float
    | Histogram of float array  (** raw samples *)

  (** Every registered metric, sorted by name. *)
  val snapshot : unit -> (string * value) list

  (** Zero every metric (counters to 0, gauges to 0., histograms
      emptied). Registrations and handles survive. *)
  val reset : unit -> unit

  (** [{ "metrics": [ {name; type; ...} ... ] }], name-sorted.
      Histograms export count/min/max/p50/p90/p99. *)
  val to_json : unit -> Json.t

  val write_file : string -> unit
end

(** The span tracer. Spans are begin/end event pairs recorded per domain
    with wall-clock timestamps; within one domain they must nest (end the
    innermost open span first), which every exporter and checker here
    assumes and {!well_nested} verifies. *)
module Trace : sig
  (** Master switch, off by default. The recording functions are no-ops
      (one flag read) while off. *)
  val set_enabled : bool -> unit

  val on : unit -> bool

  (** Drop every recorded event and restart the trace clock. *)
  val reset : unit -> unit

  val begin_span : ?cat:string -> string -> unit
  val end_span : ?cat:string -> string -> unit

  (** A zero-duration marker event. *)
  val instant : ?cat:string -> string -> unit

  (** [with_span name f] wraps [f] in a span (ended on exceptions too);
      when tracing is off it is exactly [f ()]. *)
  val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

  type event = {
    ph : char;  (** 'B' begin, 'E' end, 'i' instant *)
    name : string;
    cat : string;
    ts_us : float;  (** microseconds since the trace epoch *)
    dom : int;  (** recording domain's id *)
  }

  (** All recorded events: domains in ascending id order, each domain's
      events in recording order. *)
  val events : unit -> event list

  (** The trace with timestamps scrubbed — one ["dom D: PH name [cat]"]
      line per event, in {!events} order. Two runs with identical control
      flow produce byte-identical structures; tests compare exactly
      this. *)
  val structure : unit -> string

  (** Check begin/end pairing per domain: every 'E' matches the innermost
      open 'B' of the same name, and nothing is left open. *)
  val well_nested : unit -> (unit, string) result

  (** Chrome [trace_event] JSON: [{ "traceEvents": [...] }] with
      "B"/"E"/"i" phase records (pid 1, tid = domain id, ts in
      microseconds), loadable in [chrome://tracing] / Perfetto. *)
  val to_json : unit -> Json.t

  val write_file : string -> unit
end

(** Publish one profiler run's cost counters into the registry, under
    ["profiler.<name>.*"]: counters [runs], [events_seen],
    [events_profiled], [tnv_clears], [tnv_evictions] plus a
    [wall_seconds] histogram, and a [degrade_level] gauge when the run
    finished degraded. Loading this library also installs the
    {!Budget.set_notifier} hook, which surfaces degradation steps and
    budget trips as [degrade.*] / [budget.*] counters and trace
    instants. The {!Profiler_intf.Make} functor calls
    this from [collect], which is what makes the registry the single
    aggregation substrate for all nine profilers. *)
val publish_profiler_run : name:string -> Counters.t -> unit
