type policy = Lfu_clear | Lfu | Lru

(* The table proper is the parallel [values]/[counts]/[stamps] arrays, as
   in the paper. The [index] array is a small open-addressing (linear
   probing) value->slot map over the occupied slots, sized to a power of
   two at least 4x the capacity so probe chains stay short; cell [0] means
   empty, [s + 1] means slot [s]. It exists purely so the per-event hit
   path is one hash and (almost always) one compare instead of an
   O(capacity) scan, and it is rebuilt wholesale on the rare mutations
   (replacement, periodic clear, reset) — capacity is tiny, so a rebuild
   is a few dozen cache-resident writes. *)
type t = {
  pol : policy;
  cap : int;
  interval : int;
  values : int64 array;
  counts : int array; (* count 0 = empty slot *)
  stamps : int array; (* last-touch tick, for LRU *)
  index : int array;
  mask : int; (* Array.length index - 1; the length is a power of two *)
  kept : bool array; (* scratch for periodic_clear, reused across clears *)
  mutable last_slot : int; (* slot of the last added value; -1 = unknown *)
  mutable occupied : int;
  mutable total : int; (* doubles as the recency tick for [stamps] *)
  mutable since_clear : int;
  mutable clears : int;
  mutable replacements : int;
  (* Degradation: under memory pressure the table keeps its allocated
     arrays but caps occupancy at [live_cap], halved per degradation
     level at the next periodic clear. [degrade_applied] is the Budget
     level already folded in, so the (cold) clear path applies each new
     level exactly once. *)
  mutable live_cap : int;
  mutable degrade_applied : int;
}

let index_size capacity =
  let rec grow n = if n >= 4 * capacity then n else grow (2 * n) in
  grow 16

let create ?(policy = Lfu_clear) ?(clear_interval = 2000) ~capacity () =
  if capacity <= 0 then invalid_arg "Tnv.create: capacity must be positive";
  if clear_interval <= 0 then invalid_arg "Tnv.create: clear_interval must be positive";
  let isize = index_size capacity in
  { pol = policy; cap = capacity; interval = clear_interval;
    values = Array.make capacity 0L;
    counts = Array.make capacity 0;
    stamps = Array.make capacity 0;
    index = Array.make isize 0;
    mask = isize - 1;
    kept = Array.make capacity false;
    last_slot = -1;
    occupied = 0; total = 0; since_clear = 0;
    clears = 0; replacements = 0;
    live_cap = capacity; degrade_applied = 0 }

let policy t = t.pol
let capacity t = t.cap
let clear_interval t = t.interval
let clears t = t.clears
let replacements t = t.replacements

(* Fibonacci (multiplicative) hashing; the constant is 2^64 / phi. *)
let[@inline] hash_slot t v =
  Int64.to_int (Int64.shift_right_logical (Int64.mul v 0x9E3779B97F4A7C15L) 32)
  land t.mask

(* First index cell, probing from [i], that either holds [v]'s slot or is
   empty (the insertion point on a miss). Terminates because the index is
   never more than [cap <= mask/4 + 1] full. *)
let rec probe_cell t v i =
  let e = Array.unsafe_get t.index i in
  if e = 0 || Int64.equal (Array.unsafe_get t.values (e - 1)) v then i
  else probe_cell t v ((i + 1) land t.mask)

let index_insert t s =
  let cell = probe_cell t t.values.(s) (hash_slot t t.values.(s)) in
  t.index.(cell) <- s + 1

let rebuild_index t =
  Array.fill t.index 0 (Array.length t.index) 0;
  for s = 0 to t.cap - 1 do
    if t.counts.(s) > 0 then index_insert t s
  done

(* Number of top entries immune to the periodic clearing. *)
let steady t = t.live_cap / 2

let live_capacity t = t.live_cap

let m_degrade_cap = Obs.Metrics.counter "degrade.tnv_capacity"

(* Fold any new Budget degradation level in: halve the live capacity per
   level (saturating at 1). Called from the periodic clear only — the
   hot add path never reads the level. *)
let apply_degrade t =
  let lvl = Budget.degrade_level () in
  if lvl > t.degrade_applied then begin
    t.degrade_applied <- lvl;
    let target = max 1 (t.cap asr lvl) in
    if target < t.live_cap then begin
      t.live_cap <- target;
      Obs.Metrics.incr m_degrade_cap;
      Obs.Trace.instant ~cat:"tnv" "degrade.tnv_capacity"
    end
  end

(* Clear every slot that is not among the [steady] highest-counted ones —
   in place: [kept] is preallocated scratch, and the top-k selection is
   O(cap * k) scans over the (cache-resident) counts, so the clear
   allocates nothing. Ties on count keep the lowest-numbered slot. *)
let m_clears = Obs.Metrics.counter "tnv.clears"
let m_evictions = Obs.Metrics.counter "tnv.evictions"

let periodic_clear t =
  apply_degrade t;
  t.clears <- t.clears + 1;
  Obs.Metrics.incr m_clears;
  Obs.Trace.instant ~cat:"tnv" "tnv.clear";
  t.last_slot <- -1;
  let k = steady t in
  Array.fill t.kept 0 t.cap false;
  for _ = 1 to k do
    let best = ref 0 in
    while t.kept.(!best) do incr best done;
    for i = !best + 1 to t.cap - 1 do
      if (not t.kept.(i)) && t.counts.(i) > t.counts.(!best) then best := i
    done;
    t.kept.(!best) <- true
  done;
  for i = 0 to t.cap - 1 do
    if (not t.kept.(i)) && t.counts.(i) > 0 then begin
      t.counts.(i) <- 0;
      t.values.(i) <- 0L;
      t.stamps.(i) <- 0;
      t.occupied <- t.occupied - 1
    end
  done;
  rebuild_index t

let find_empty t =
  let rec loop i =
    if i >= t.cap then -1 else if t.counts.(i) = 0 then i else loop (i + 1)
  in
  loop 0

let index_of_min t key =
  let best = ref 0 in
  for i = 1 to t.cap - 1 do
    if key i < key !best then best := i
  done;
  !best

let replace t victim v =
  t.replacements <- t.replacements + 1;
  Obs.Metrics.incr m_evictions;
  t.values.(victim) <- v;
  t.counts.(victim) <- 1;
  t.stamps.(victim) <- t.total;
  t.last_slot <- victim;
  rebuild_index t

(* The full-table miss under the eviction policies. Kept out of [add_mem]
   (in particular, no anonymous closures there) so the non-flambda inliner
   can inline the hot path into callers. *)
let evict t v =
  match t.pol with
  | Lfu_clear -> () (* dropped; the periodic clear will make room *)
  | Lfu -> replace t (index_of_min t (fun i -> t.counts.(i))) v
  | Lru -> replace t (index_of_min t (fun i -> t.stamps.(i))) v

(* [stamps] only drives {!Lru} victim selection, so the hit paths below
   touch that array (an extra cache line per event) only under [Lru]. *)

let[@inline] add_mem t v =
  t.total <- t.total + 1;
  let hit =
    let ls = t.last_slot in
    if ls >= 0 && Int64.equal (Array.unsafe_get t.values ls) v then begin
      (* the dominant case value profiling banks on: the value repeats, and
         the slot is already known — no hash, no probe *)
      Array.unsafe_set t.counts ls (Array.unsafe_get t.counts ls + 1);
      (match t.pol with
       | Lru -> Array.unsafe_set t.stamps ls t.total
       | Lfu_clear | Lfu -> ());
      true
    end
    else begin
      let cell = probe_cell t v (hash_slot t v) in
      let e = Array.unsafe_get t.index cell in
      if e <> 0 then begin
        (* index hit: one hash, one (usually first-probe) compare *)
        let s = e - 1 in
        Array.unsafe_set t.counts s (Array.unsafe_get t.counts s + 1);
        (match t.pol with
         | Lru -> Array.unsafe_set t.stamps s t.total
         | Lfu_clear | Lfu -> ());
        t.last_slot <- s;
        true
      end
      else if t.occupied < t.live_cap then begin
        let empty = find_empty t in
        t.values.(empty) <- v;
        t.counts.(empty) <- 1;
        t.stamps.(empty) <- t.total;
        t.occupied <- t.occupied + 1;
        t.index.(cell) <- empty + 1;
        t.last_slot <- empty;
        false
      end
      else begin
        evict t v;
        false
      end
    end
  in
  (match t.pol with
   | Lfu_clear ->
     t.since_clear <- t.since_clear + 1;
     if t.since_clear >= t.interval then begin
       t.since_clear <- 0;
       periodic_clear t
     end
   | Lfu | Lru -> ());
  hit

let[@inline] add t v = ignore (add_mem t v)

let total t = t.total

let covered t = Array.fold_left ( + ) 0 t.counts

let entries t =
  let occupied = ref [] in
  for i = t.cap - 1 downto 0 do
    if t.counts.(i) > 0 then occupied := (t.values.(i), t.counts.(i)) :: !occupied
  done;
  let arr = Array.of_list !occupied in
  (* (count desc, value asc): Array.sort is unstable, so a count-only
     comparison would surface equal-count entries in slot-dependent order;
     the value tie-break makes the order a pure function of the multiset
     of entries, which byte-identical merged output depends on. *)
  Array.sort
    (fun (va, ca) (vb, cb) ->
      if ca <> cb then compare cb ca else Int64.compare va vb)
    arr;
  arr

let top t =
  let e = entries t in
  if Array.length e = 0 then None else Some e.(0)

let inv_top t =
  if t.total = 0 then 0.
  else
    match top t with
    | None -> 0.
    | Some (_, c) -> float_of_int c /. float_of_int t.total

let inv_all t =
  if t.total = 0 then 0. else float_of_int (covered t) /. float_of_int t.total

(* ---- Merging ------------------------------------------------------- *)

let entry_order (va, ca) (vb, cb) =
  if ca <> cb then compare cb ca else Int64.compare va vb

let merge_entries a b =
  let tbl : (int64, int ref) Hashtbl.t =
    Hashtbl.create (Array.length a + Array.length b)
  in
  let feed (v, c) =
    match Hashtbl.find_opt tbl v with
    | Some r -> r := !r + c
    | None -> Hashtbl.add tbl v (ref c)
  in
  Array.iter feed a;
  Array.iter feed b;
  let out = Array.make (Hashtbl.length tbl) (0L, 0) in
  let i = ref 0 in
  Hashtbl.iter (fun v r -> out.(!i) <- (v, !r); incr i) tbl;
  Array.sort entry_order out;
  out

let m_merges = Obs.Metrics.counter "tnv.merges"

let merge a b =
  Obs.Metrics.incr m_merges;
  let union = merge_entries (entries a) (entries b) in
  (* The merged table holds the full union: truncating to either input's
     capacity makes merge non-associative (which side of a tie survives
     would depend on grouping), so capacity grows to fit. *)
  let cap = max (max a.cap b.cap) (max 1 (Array.length union)) in
  let t = create ~policy:a.pol ~clear_interval:a.interval ~capacity:cap () in
  Array.iteri
    (fun s (v, c) ->
      t.values.(s) <- v;
      t.counts.(s) <- c)
    union;
  t.occupied <- Array.length union;
  t.total <- a.total + b.total;
  t.clears <- a.clears + b.clears;
  t.replacements <- a.replacements + b.replacements;
  rebuild_index t;
  t

let reset t =
  Array.fill t.values 0 t.cap 0L;
  Array.fill t.counts 0 t.cap 0;
  Array.fill t.stamps 0 t.cap 0;
  Array.fill t.index 0 (Array.length t.index) 0;
  t.last_slot <- -1;
  t.occupied <- 0;
  t.total <- 0;
  t.since_clear <- 0;
  t.clears <- 0;
  t.replacements <- 0;
  t.live_cap <- t.cap;
  t.degrade_applied <- 0
