(** The Top-N-Value (TNV) table, the paper's central data structure.

    A TNV table tracks the N most frequent values an instruction (or memory
    location) produces, with occurrence counts. The paper's replacement
    policy ({!Lfu_clear}) is least-frequently-used with periodic clearing:
    the table is conceptually split into a {e steady} top half and a
    {e replacement} bottom half; every [clear_interval] recorded values the
    entries outside the steady half are evicted so that newly hot values can
    climb in, while established top values keep their counts. Pure {!Lfu}
    and {!Lru} replacement are provided for the ablation experiment (E08).

    Counts in the table are occurrences observed {e while the value held a
    slot}; the [total] includes values that were dropped because the table
    was full, so [covered t <= total t] always holds, and the invariance
    metrics are conservative.

    {!add} is the profiler's per-event hot path and is engineered to be
    allocation-free: a small open-addressing value->slot index makes the
    hit path one multiplicative hash plus (usually) one compare, and the
    periodic clear selects the surviving top half in place instead of
    sorting a freshly allocated permutation. Ties on count during a clear
    keep the lowest-numbered slot. *)

type policy =
  | Lfu_clear  (** the paper's policy: LFU with periodic clearing *)
  | Lfu  (** replace the least-counted entry on every miss *)
  | Lru  (** replace the least-recently-seen entry on every miss *)

type t

(** [create ~capacity ()] makes an empty table. [capacity] must be
    positive. [clear_interval] (default [2000]) is the period, counted in
    {!add} calls to this table, of the {!Lfu_clear} clearing step; ignored
    by the other policies. *)
val create : ?policy:policy -> ?clear_interval:int -> capacity:int -> unit -> t

val policy : t -> policy
val capacity : t -> int
val clear_interval : t -> int

(** Occupancy cap currently in force. Equals {!capacity} until a
    {!Budget} degradation step: under memory pressure a [Lfu_clear]
    table halves its live capacity per degradation level at the next
    periodic clear (saturating at 1), keeping its allocated arrays but
    admitting fewer candidates — the paper's TNV, shrunk in place.
    {!reset} restores the full capacity. *)
val live_capacity : t -> int

(** Record one occurrence of [v]. *)
val add : t -> int64 -> unit

(** Like {!add}, and returns [true] iff [v] already held a slot before the
    call. A [true] result proves the value was seen before, letting callers
    skip their own seen-before bookkeeping on the hit path; [false] means
    freshly inserted, dropped, or admitted by eviction. *)
val add_mem : t -> int64 -> bool

(** Occurrences recorded in total (hits and drops). *)
val total : t -> int

(** Sum of in-table counts. *)
val covered : t -> int

(** Occupied entries in canonical order: count descending, then value
    ascending. The order is a pure function of the multiset of entries
    (never of slot layout or insertion history), so two tables holding the
    same values with the same counts render identically — the property
    byte-identical merged profiles rely on. *)
val entries : t -> (int64 * int) array

(** Most frequent entry, when any value has been recorded. *)
val top : t -> (int64 * int) option

(** Fraction of all occurrences belonging to the top value — the paper's
    Inv-Top metric. 0 before any [add]. *)
val inv_top : t -> float

(** Fraction of all occurrences belonging to any in-table value — Inv-All. *)
val inv_all : t -> float

(** Periodic clears performed so far ({!Lfu_clear} only). *)
val clears : t -> int

(** Evictions performed so far ({!Lfu} and {!Lru} only; the periodic clear
    is counted by {!clears}, not here). *)
val replacements : t -> int

(** [merge_entries a b] is the count-weighted union of two {!entries}
    arrays in canonical (count desc, value asc) order. Pure and
    deterministic: the result depends only on the multisets of entries. *)
val merge_entries : (int64 * int) array -> (int64 * int) array -> (int64 * int) array

(** [merge a b] is a fresh table holding the count-weighted union of the
    entries of [a] and [b]; [total], [clears] and [replacements] are
    summed. Policy and clear interval are taken from [a]. The merged
    capacity is [max (max (capacity a) (capacity b)) (union size)] — the
    union is {e never} truncated, because any capacity-bounded merge is
    non-associative (which equal-count value survives would depend on
    grouping). Consequently [merge] is associative and commutative up to
    [capacity]/[policy] bookkeeping: the entries of
    [merge (merge a b) c] and [merge a (merge b c)] are identical.

    Error model vs. profiling the concatenated stream: counts of values
    that held a slot in every shard are exact; a value that was dropped in
    some shard (table full under {!Lfu_clear}) under-counts by exactly the
    occurrences dropped there, the same way a single table drops them. So
    [covered] is conservative, [total] is exact, and [inv_top]/[inv_all]
    of the merge never exceed the concatenated-stream figures by more than
    the per-shard drop rate. *)
val merge : t -> t -> t

(** Forget everything (capacity and policy retained). *)
val reset : t -> unit
