(** The Top-N-Value (TNV) table, the paper's central data structure.

    A TNV table tracks the N most frequent values an instruction (or memory
    location) produces, with occurrence counts. The paper's replacement
    policy ({!Lfu_clear}) is least-frequently-used with periodic clearing:
    the table is conceptually split into a {e steady} top half and a
    {e replacement} bottom half; every [clear_interval] recorded values the
    entries outside the steady half are evicted so that newly hot values can
    climb in, while established top values keep their counts. Pure {!Lfu}
    and {!Lru} replacement are provided for the ablation experiment (E08).

    Counts in the table are occurrences observed {e while the value held a
    slot}; the [total] includes values that were dropped because the table
    was full, so [covered t <= total t] always holds, and the invariance
    metrics are conservative.

    {!add} is the profiler's per-event hot path and is engineered to be
    allocation-free: a small open-addressing value->slot index makes the
    hit path one multiplicative hash plus (usually) one compare, and the
    periodic clear selects the surviving top half in place instead of
    sorting a freshly allocated permutation. Ties on count during a clear
    keep the lowest-numbered slot. *)

type policy =
  | Lfu_clear  (** the paper's policy: LFU with periodic clearing *)
  | Lfu  (** replace the least-counted entry on every miss *)
  | Lru  (** replace the least-recently-seen entry on every miss *)

type t

(** [create ~capacity ()] makes an empty table. [capacity] must be
    positive. [clear_interval] (default [2000]) is the period, counted in
    {!add} calls to this table, of the {!Lfu_clear} clearing step; ignored
    by the other policies. *)
val create : ?policy:policy -> ?clear_interval:int -> capacity:int -> unit -> t

val policy : t -> policy
val capacity : t -> int
val clear_interval : t -> int

(** Record one occurrence of [v]. *)
val add : t -> int64 -> unit

(** Like {!add}, and returns [true] iff [v] already held a slot before the
    call. A [true] result proves the value was seen before, letting callers
    skip their own seen-before bookkeeping on the hit path; [false] means
    freshly inserted, dropped, or admitted by eviction. *)
val add_mem : t -> int64 -> bool

(** Occurrences recorded in total (hits and drops). *)
val total : t -> int

(** Sum of in-table counts. *)
val covered : t -> int

(** Occupied entries, most frequent first (ties broken arbitrarily but
    deterministically). *)
val entries : t -> (int64 * int) array

(** Most frequent entry, when any value has been recorded. *)
val top : t -> (int64 * int) option

(** Fraction of all occurrences belonging to the top value — the paper's
    Inv-Top metric. 0 before any [add]. *)
val inv_top : t -> float

(** Fraction of all occurrences belonging to any in-table value — Inv-All. *)
val inv_all : t -> float

(** Periodic clears performed so far ({!Lfu_clear} only). *)
val clears : t -> int

(** Evictions performed so far ({!Lfu} and {!Lru} only; the periodic clear
    is counted by {!clears}, not here). *)
val replacements : t -> int

(** Forget everything (capacity and policy retained). *)
val reset : t -> unit
