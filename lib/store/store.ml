let manifest_header = "vprof-store 1"

let m_hits = Obs.Metrics.counter "store.hits"
let m_misses = Obs.Metrics.counter "store.misses"
let m_bytes_written = Obs.Metrics.counter "store.bytes_written"
let m_decode_failures = Obs.Metrics.counter "store.decode_failures"

module Fingerprint = struct
  type t = {
    fp_profiler : string;
    fp_workload : string;
    fp_input : string;
    fp_fuel : int option;
    fp_shards : int;
    fp_config : string;
  }

  let make ?fuel ?(shards = 1) ?(config = "") ~profiler ~workload ~input () =
    { fp_profiler = profiler; fp_workload = workload; fp_input = input;
      fp_fuel = fuel; fp_shards = shards; fp_config = config }

  let canonical fp =
    Printf.sprintf "profiler=%s workload=%s input=%s fuel=%s shards=%d config=%s"
      fp.fp_profiler fp.fp_workload fp.fp_input
      (match fp.fp_fuel with None -> "none" | Some f -> string_of_int f)
      fp.fp_shards fp.fp_config

  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      s

  let key fp =
    let stem =
      Printf.sprintf "%s.%s.%s"
        (sanitize fp.fp_profiler) (sanitize fp.fp_workload)
        (sanitize fp.fp_input)
    in
    let stem =
      match fp.fp_fuel with
      | None -> stem
      | Some f -> Printf.sprintf "%s.fuel%d" stem f
    in
    let stem =
      if fp.fp_shards = 1 then stem
      else Printf.sprintf "%s.x%d" stem fp.fp_shards
    in
    Printf.sprintf "%s-%s" stem (Crc32.to_hex (Crc32.string (canonical fp)))

  let profile_config (c : Vstate.config) ~selection =
    Printf.sprintf "tnv=%d policy=%s clear=%d distinct=%d sel=%s"
      c.Vstate.tnv_capacity
      (match c.Vstate.tnv_policy with
       | Tnv.Lfu_clear -> "lfu_clear"
       | Tnv.Lfu -> "lfu"
       | Tnv.Lru -> "lru")
      c.Vstate.clear_interval c.Vstate.distinct_cap selection
end

type backend = Memory | Dir of string

type entry = { mutable e_payload : string; mutable e_gen : int }

type t = {
  s_backend : backend;
  s_mu : Mutex.t;
  s_table : (string, entry) Hashtbl.t;
  mutable s_order : string list; (* first-commit order, reversed *)
  mutable s_gen : int;
}

type info = { i_key : string; i_gen : int; i_bytes : int }
type stats = { st_entries : int; st_bytes : int; st_generation : int }

(* --- small helpers --- *)

let write_atomic ~dir path content =
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path) ".tmp"
  in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Keys travel on one manifest line each: escape the two characters that
   would break the line/field structure. *)
let escape name =
  if String.exists (fun c -> c = ' ' || c = '%' || c = '\n') name then begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end
  else name

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         (match String.sub s (!i + 1) 2 with
          | "20" -> Buffer.add_char buf ' '
          | "25" -> Buffer.add_char buf '%'
          | "0a" -> Buffer.add_char buf '\n'
          | other -> Buffer.add_string buf ("%" ^ other));
         i := !i + 3
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

(* Payload file name: a readable sanitized stem plus the crc of the raw
   key, so distinct keys can never collide after sanitization. *)
let payload_file name =
  let stem =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      name
  in
  Printf.sprintf "%s-%s.out" stem (Crc32.to_hex (Crc32.string name))

let store_dir t =
  match t.s_backend with Memory -> invalid_arg "Store: no directory" | Dir d -> d

let manifest_path t = Filename.concat (store_dir t) "manifest"

let checked_line body = Printf.sprintf "%s line=%s" body (Crc32.to_hex (Crc32.string body))

let entry_line key (e : entry) =
  checked_line
    (Printf.sprintf "done %s gen=%d bytes=%d payload=%s" (escape key) e.e_gen
       (String.length e.e_payload)
       (Crc32.to_hex (Crc32.string e.e_payload)))

let gen_line g = checked_line (Printf.sprintf "gen %d" g)

let manifest_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf manifest_header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (gen_line t.s_gen);
  Buffer.add_char buf '\n';
  List.iter
    (fun key ->
      Buffer.add_string buf (entry_line key (Hashtbl.find t.s_table key));
      Buffer.add_char buf '\n')
    (List.rev t.s_order);
  Buffer.contents buf

(* Callers hold [s_mu]. *)
let persist t =
  match t.s_backend with
  | Memory -> ()
  | Dir dir -> write_atomic ~dir (manifest_path t) (manifest_text t)

(* --- loading (salvage-shaped: stop at the first damaged line) --- *)

exception Torn

(* Splits off and verifies the trailing [line=<crc>] field. *)
let checked_body line =
  match String.rindex_opt line ' ' with
  | None -> raise Torn
  | Some sp ->
    let body = String.sub line 0 sp in
    let tail = String.sub line (sp + 1) (String.length line - sp - 1) in
    (match String.split_on_char '=' tail with
     | [ "line"; hex ] ->
       (match Crc32.of_hex hex with
        | Some crc when Crc32.string body = crc -> body
        | _ -> raise Torn)
     | _ -> raise Torn)

let parse_entry t line =
  let body = checked_body line in
  match String.split_on_char ' ' body with
  | [ "gen"; g ] ->
    (match int_of_string_opt g with
     | Some g when g >= 0 -> t.s_gen <- max t.s_gen g
     | _ -> raise Torn)
  | [ "done"; key; gen; bytes; payload_crc ] ->
    let key = unescape key in
    let gen =
      match String.split_on_char '=' gen with
      | [ "gen"; n ] -> int_of_string_opt n
      | _ -> None
    in
    let bytes =
      match String.split_on_char '=' bytes with
      | [ "bytes"; n ] -> int_of_string_opt n
      | _ -> None
    in
    let pcrc =
      match String.split_on_char '=' payload_crc with
      | [ "payload"; hex ] -> Crc32.of_hex hex
      | _ -> None
    in
    (match (gen, bytes, pcrc) with
     | Some gen, Some bytes, Some pcrc ->
       (* the manifest line is sound; the payload file must still agree
          with it, else the entry is treated as never committed *)
       (match read_file (Filename.concat (store_dir t) (payload_file key)) with
        | exception Sys_error _ -> ()
        | payload ->
          if String.length payload = bytes
             && Crc32.string payload = pcrc
             && not (Hashtbl.mem t.s_table key)
          then begin
            Hashtbl.replace t.s_table key { e_payload = payload; e_gen = gen };
            t.s_order <- key :: t.s_order
          end)
     | _ -> raise Torn)
  | _ -> raise Torn

let load t =
  (* chaos campaigns kill the loader here to prove a failed resume never
     corrupts the store: the next resume must still salvage (the site
     keeps its historical name from the checkpoint-only days) *)
  Fault.point ~site:"checkpoint.load";
  match read_file (manifest_path t) with
  | exception Sys_error _ -> ()
  | text ->
    (match String.split_on_char '\n' text with
     | header :: lines when header = manifest_header ->
       (try
          List.iter
            (fun line -> if line <> "" then parse_entry t line)
            lines
        with Torn -> ())
     | _ -> ())

(* --- opening --- *)

let create_mem () =
  { s_backend = Memory; s_mu = Mutex.create (); s_table = Hashtbl.create 64;
    s_order = []; s_gen = 0 }

let open_dir ?(reset = false) dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))
  end
  else Sys.mkdir dir 0o755;
  let t =
    { s_backend = Dir dir; s_mu = Mutex.create (); s_table = Hashtbl.create 64;
      s_order = []; s_gen = 0 }
  in
  if reset then persist t else load t;
  t

let dir t = match t.s_backend with Memory -> None | Dir d -> Some d

let generation t =
  Mutex.lock t.s_mu;
  let g = t.s_gen in
  Mutex.unlock t.s_mu;
  g

let new_generation t =
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      t.s_gen <- t.s_gen + 1;
      persist t;
      t.s_gen)

(* --- lookups --- *)

let find t name =
  Mutex.lock t.s_mu;
  let r = Hashtbl.find_opt t.s_table name in
  Mutex.unlock t.s_mu;
  Option.map (fun e -> e.e_payload) r

let get t name =
  Obs.Trace.with_span ~cat:"store" "store.get" @@ fun () ->
  match find t name with
  | Some payload ->
    Obs.Metrics.incr m_hits;
    Some payload
  | None ->
    Obs.Metrics.incr m_misses;
    None

(* --- commits --- *)

let put t ~key ~payload =
  if String.contains key '\n' then
    invalid_arg "Store.put: keys may not contain newlines";
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      Obs.Trace.with_span ~cat:"store" "store.commit" @@ fun () ->
      Fault.point ~site:"store.commit";
      Obs.Metrics.add m_bytes_written (String.length payload);
      (match t.s_backend with
       | Memory -> ()
       | Dir dir ->
         (* the disk guard charges the payload before writing it, so a
            governed run stops committing the moment the budget is blown *)
         Budget.charge_disk ~bytes:(String.length payload);
         (* payload first, manifest second: a crash in between leaves an
            unreferenced payload file, which merely reruns the job *)
         write_atomic ~dir (Filename.concat dir (payload_file key)) payload);
      if not (Hashtbl.mem t.s_table key) then t.s_order <- key :: t.s_order;
      Hashtbl.replace t.s_table key { e_payload = payload; e_gen = t.s_gen };
      persist t)

(* --- inspection and gc --- *)

let entries t =
  Mutex.lock t.s_mu;
  let es =
    Hashtbl.fold
      (fun k (e : entry) acc ->
        { i_key = k; i_gen = e.e_gen; i_bytes = String.length e.e_payload }
        :: acc)
      t.s_table []
  in
  Mutex.unlock t.s_mu;
  List.sort (fun a b -> compare a.i_key b.i_key) es

let stats t =
  Mutex.lock t.s_mu;
  let bytes =
    Hashtbl.fold (fun _ e acc -> acc + String.length e.e_payload) t.s_table 0
  in
  let r =
    { st_entries = Hashtbl.length t.s_table; st_bytes = bytes;
      st_generation = t.s_gen }
  in
  Mutex.unlock t.s_mu;
  r

let gc t ~keep =
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      let cutoff = t.s_gen - keep in
      let dead =
        Hashtbl.fold
          (fun k (e : entry) acc -> if e.e_gen <= cutoff then k :: acc else acc)
          t.s_table []
      in
      List.iter
        (fun k ->
          Hashtbl.remove t.s_table k;
          match t.s_backend with
          | Memory -> ()
          | Dir dir ->
            (try Sys.remove (Filename.concat dir (payload_file k))
             with Sys_error _ -> ()))
        dead;
      t.s_order <- List.filter (Hashtbl.mem t.s_table) t.s_order;
      if dead <> [] then persist t;
      List.length dead)

(* --- profile entries --- *)

let put_profile t ~key p = put t ~key ~payload:(Profile_io.to_binary p)

let get_profile t ~program ~key =
  match get t key with
  | None -> None
  | Some payload ->
    (match Profile_io.of_string ~program payload with
     | p -> Some p
     | exception Failure _ ->
       (* a corrupt or mismatched entry is a miss: the caller recomputes
          and the next put overwrites it *)
       Obs.Metrics.incr m_decode_failures;
       None)

let merge_into t ~program ~key p =
  match get_profile t ~program ~key with
  | None -> put_profile t ~key p
  | Some old -> put_profile t ~key (Profile.merge [ old; p ])
