let manifest_header = "vprof-store 1"

let m_hits = Obs.Metrics.counter "store.hits"
let m_misses = Obs.Metrics.counter "store.misses"
let m_bytes_written = Obs.Metrics.counter "store.bytes_written"
let m_decode_failures = Obs.Metrics.counter "store.decode_failures"
let m_orphans_swept = Obs.Metrics.counter "store.orphans_swept"
let m_quarantined = Obs.Metrics.counter "store.quarantined"
let m_read_repairs = Obs.Metrics.counter "store.read_repairs"
let m_repaired = Obs.Metrics.counter "store.repaired"
let m_recovered = Obs.Metrics.counter "journal.recovered"
let m_rolled_back = Obs.Metrics.counter "journal.rolled_back"

module Fingerprint = struct
  type t = {
    fp_profiler : string;
    fp_workload : string;
    fp_input : string;
    fp_fuel : int option;
    fp_shards : int;
    fp_config : string;
  }

  let make ?fuel ?(shards = 1) ?(config = "") ~profiler ~workload ~input () =
    { fp_profiler = profiler; fp_workload = workload; fp_input = input;
      fp_fuel = fuel; fp_shards = shards; fp_config = config }

  let canonical fp =
    Printf.sprintf "profiler=%s workload=%s input=%s fuel=%s shards=%d config=%s"
      fp.fp_profiler fp.fp_workload fp.fp_input
      (match fp.fp_fuel with None -> "none" | Some f -> string_of_int f)
      fp.fp_shards fp.fp_config

  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      s

  let key fp =
    let stem =
      Printf.sprintf "%s.%s.%s"
        (sanitize fp.fp_profiler) (sanitize fp.fp_workload)
        (sanitize fp.fp_input)
    in
    let stem =
      match fp.fp_fuel with
      | None -> stem
      | Some f -> Printf.sprintf "%s.fuel%d" stem f
    in
    let stem =
      if fp.fp_shards = 1 then stem
      else Printf.sprintf "%s.x%d" stem fp.fp_shards
    in
    Printf.sprintf "%s-%s" stem (Crc32.to_hex (Crc32.string (canonical fp)))

  let profile_config (c : Vstate.config) ~selection =
    Printf.sprintf "tnv=%d policy=%s clear=%d distinct=%d sel=%s"
      c.Vstate.tnv_capacity
      (match c.Vstate.tnv_policy with
       | Tnv.Lfu_clear -> "lfu_clear"
       | Tnv.Lfu -> "lfu"
       | Tnv.Lru -> "lru")
      c.Vstate.clear_interval c.Vstate.distinct_cap selection
end

type backend = Memory | Dir of string

type entry = {
  mutable e_payload : string;
  mutable e_gen : int;
  (* some on-disk copy of this entry is missing or corrupt; the next
     [get] heals it (read-repair), as do [repair] and recovery *)
  mutable e_degraded : bool;
}

(* A manifest row whose payload survives in no copy tree: the key stays
   out of the table (lookups miss, callers recompute) but the row is
   re-emitted on persist so the damage stays visible across opens until
   a new put overwrites it or gc retires it. *)
type lost = { l_key : string; l_gen : int; l_bytes : int; l_crc : int }

type t = {
  s_backend : backend;
  s_mu : Mutex.t;
  s_table : (string, entry) Hashtbl.t;
  mutable s_order : string list; (* first-commit order, reversed *)
  mutable s_gen : int;
  mutable s_copies : int; (* copy trees including the primary; >= 1 *)
  mutable s_lost : lost list;
}

type info = { i_key : string; i_gen : int; i_bytes : int }

type stats = {
  st_entries : int;
  st_bytes : int;
  st_generation : int;
  st_replicas : int;
  st_lost : int;
}

type check = {
  c_entries : int;
  c_copies_ok : int;
  c_copies_bad : int;
  c_quarantined : int;
  c_repaired : int;
  c_lost : int;
}

let check_clean c = c.c_copies_bad = 0 && c.c_lost = 0

(* --- small helpers --- *)

let write_atomic ~dir path content =
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path) ".tmp"
  in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Keys travel on one manifest line each: escape the two characters that
   would break the line/field structure. *)
let escape name =
  if String.exists (fun c -> c = ' ' || c = '%' || c = '\n') name then begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end
  else name

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         (match String.sub s (!i + 1) 2 with
          | "20" -> Buffer.add_char buf ' '
          | "25" -> Buffer.add_char buf '%'
          | "0a" -> Buffer.add_char buf '\n'
          | other -> Buffer.add_string buf ("%" ^ other));
         i := !i + 3
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

(* Payload file name: a readable sanitized stem plus the crc of the raw
   key, so distinct keys can never collide after sanitization. *)
let payload_file name =
  let stem =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      name
  in
  Printf.sprintf "%s-%s.out" stem (Crc32.to_hex (Crc32.string name))

let store_dir t =
  match t.s_backend with Memory -> invalid_arg "Store: no directory" | Dir d -> d

(* Copy tree [0] is the store directory itself; trees [1..] are sibling
   subdirectories [replica1..replicaN] mirroring its payload files. *)
let copy_dir dir i =
  if i = 0 then dir else Filename.concat dir (Printf.sprintf "replica%d" i)

let payload_path dir i key = Filename.concat (copy_dir dir i) (payload_file key)

let ensure_dir d =
  if not (Sys.file_exists d) then (try Sys.mkdir d 0o755 with Sys_error _ -> ())

let manifest_path t = Filename.concat (store_dir t) "manifest"

let checked_line body = Printf.sprintf "%s line=%s" body (Crc32.to_hex (Crc32.string body))

let done_line key ~gen ~bytes ~crc =
  checked_line
    (Printf.sprintf "done %s gen=%d bytes=%d payload=%s" (escape key) gen bytes
       (Crc32.to_hex crc))

let entry_line key (e : entry) =
  done_line key ~gen:e.e_gen ~bytes:(String.length e.e_payload)
    ~crc:(Crc32.string e.e_payload)

let gen_line g = checked_line (Printf.sprintf "gen %d" g)
let replicas_line m = checked_line (Printf.sprintf "replicas %d" m)

let manifest_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf manifest_header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (gen_line t.s_gen);
  Buffer.add_char buf '\n';
  if t.s_copies > 1 then begin
    Buffer.add_string buf (replicas_line (t.s_copies - 1));
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun key ->
      Buffer.add_string buf (entry_line key (Hashtbl.find t.s_table key));
      Buffer.add_char buf '\n')
    (List.rev t.s_order);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (done_line l.l_key ~gen:l.l_gen ~bytes:l.l_bytes ~crc:l.l_crc);
      Buffer.add_char buf '\n')
    (List.rev t.s_lost);
  Buffer.contents buf

(* Callers hold [s_mu]. *)
let persist t =
  match t.s_backend with
  | Memory -> ()
  | Dir dir -> write_atomic ~dir (manifest_path t) (manifest_text t)

(* Writes [payload] into every copy tree whose current bytes differ —
   the one healing primitive behind read-repair, [repair], replica
   growth, and journal roll-forward. Callers hold [s_mu]. *)
let heal_copies dir key payload copies =
  let healed = ref 0 in
  for i = 0 to copies - 1 do
    let p = payload_path dir i key in
    let ok =
      match read_file p with
      | exception Sys_error _ -> false
      | bytes -> bytes = payload
    in
    if not ok then begin
      let d = copy_dir dir i in
      ensure_dir d;
      write_atomic ~dir:d p payload;
      incr healed
    end
  done;
  !healed

let drop_lost t key = t.s_lost <- List.filter (fun l -> l.l_key <> key) t.s_lost

(* --- loading (salvage-shaped: stop at the first damaged line) --- *)

exception Torn

(* Splits off and verifies the trailing [line=<crc>] field. *)
let checked_body line =
  match String.rindex_opt line ' ' with
  | None -> raise Torn
  | Some sp ->
    let body = String.sub line 0 sp in
    let tail = String.sub line (sp + 1) (String.length line - sp - 1) in
    (match String.split_on_char '=' tail with
     | [ "line"; hex ] ->
       (match Crc32.of_hex hex with
        | Some crc when Crc32.string body = crc -> body
        | _ -> raise Torn)
     | _ -> raise Torn)

let parse_entry t line =
  let body = checked_body line in
  match String.split_on_char ' ' body with
  | [ "gen"; g ] ->
    (match int_of_string_opt g with
     | Some g when g >= 0 -> t.s_gen <- max t.s_gen g
     | _ -> raise Torn)
  | [ "replicas"; m ] ->
    (match int_of_string_opt m with
     | Some m when m >= 0 -> t.s_copies <- max t.s_copies (m + 1)
     | _ -> raise Torn)
  | [ "done"; key; gen; bytes; payload_crc ] ->
    let key = unescape key in
    let gen =
      match String.split_on_char '=' gen with
      | [ "gen"; n ] -> int_of_string_opt n
      | _ -> None
    in
    let bytes =
      match String.split_on_char '=' bytes with
      | [ "bytes"; n ] -> int_of_string_opt n
      | _ -> None
    in
    let pcrc =
      match String.split_on_char '=' payload_crc with
      | [ "payload"; hex ] -> Crc32.of_hex hex
      | _ -> None
    in
    (match (gen, bytes, pcrc) with
     | Some gen, Some bytes, Some pcrc ->
       (* the manifest line is sound; the payload must still agree with
          it in some copy tree, primary first — serving a replica's bytes
          flags the entry degraded so the next [get] read-repairs *)
       if not (Hashtbl.mem t.s_table key)
          && not (List.exists (fun l -> l.l_key = key) t.s_lost)
       then begin
         let dir = store_dir t in
         let rec scan i =
           if i >= t.s_copies then None
           else
             match read_file (payload_path dir i key) with
             | exception Sys_error _ -> scan (i + 1)
             | payload
               when String.length payload = bytes && Crc32.string payload = pcrc
               -> Some (i, payload)
             | _ -> scan (i + 1)
         in
         match scan 0 with
         | Some (i, payload) ->
           Hashtbl.replace t.s_table key
             { e_payload = payload; e_gen = gen; e_degraded = i > 0 };
           t.s_order <- key :: t.s_order
         | None ->
           t.s_lost <-
             { l_key = key; l_gen = gen; l_bytes = bytes; l_crc = pcrc }
             :: t.s_lost
       end
     | _ -> raise Torn)
  | _ -> raise Torn

let load t =
  (* chaos campaigns kill the loader here to prove a failed resume never
     corrupts the store: the next resume must still salvage (the site
     keeps its historical name from the checkpoint-only days) *)
  Fault.point ~site:"checkpoint.load";
  match read_file (manifest_path t) with
  | exception Sys_error _ -> ()
  | text ->
    (match String.split_on_char '\n' text with
     | header :: lines when header = manifest_header ->
       (try
          List.iter
            (fun line -> if line <> "" then parse_entry t line)
            lines
        with Torn -> ())
     | _ -> ())

(* --- orphan sweep --- *)

(* Atomic commits that died between temp-file creation and [rename] leave
   a [*.tmp] behind; swept on open so they cannot accumulate forever. *)
let sweep_orphans dir =
  let sweep_tree d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".tmp" then begin
            (try Sys.remove (Filename.concat d n) with Sys_error _ -> ());
            Obs.Metrics.incr m_orphans_swept
          end)
        names
  in
  sweep_tree dir;
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun n ->
        if String.length n > 7 && String.sub n 0 7 = "replica" then begin
          let p = Filename.concat dir n in
          if (try Sys.is_directory p with Sys_error _ -> false) then
            sweep_tree p
        end)
      names

(* --- crash recovery --- *)

(* Replays the write-ahead journal left by a crashed invocation. Each
   pending intent rolls {e forward} when its mutation's bytes survived in
   some copy tree (heal every copy, reinstate the entry) or {e back} when
   they did not (the mutation never became durable; the loaded state is
   already the pre-mutation one). Every step is idempotent, so dying
   mid-recovery just replays on the next open. *)
let recover t =
  match t.s_backend with
  | Memory -> ()
  | Dir dir ->
    let pend = Journal.pending ~dir in
    if pend <> [] then begin
      List.iter
        (fun op ->
          match op with
          | Journal.Put { key; gen; bytes; crc } ->
            let rec scan i =
              if i >= t.s_copies then None
              else
                match read_file (payload_path dir i key) with
                | exception Sys_error _ -> scan (i + 1)
                | b when String.length b = bytes && Crc32.string b = crc ->
                  Some b
                | _ -> scan (i + 1)
            in
            (match scan 0 with
             | Some payload ->
               ignore (heal_copies dir key payload t.s_copies);
               (match Hashtbl.find_opt t.s_table key with
                | Some e ->
                  e.e_payload <- payload;
                  e.e_gen <- gen;
                  e.e_degraded <- false
                | None ->
                  Hashtbl.replace t.s_table key
                    { e_payload = payload; e_gen = gen; e_degraded = false };
                  t.s_order <- key :: t.s_order);
               drop_lost t key;
               Obs.Metrics.incr m_recovered
             | None ->
               (* no copy holds the intended bytes: the put died before
                  anything durable existed, so there is nothing to undo *)
               Obs.Metrics.incr m_rolled_back)
          | Journal.Gc keys ->
            List.iter
              (fun k ->
                Hashtbl.remove t.s_table k;
                drop_lost t k;
                for i = 0 to t.s_copies - 1 do
                  try Sys.remove (payload_path dir i k) with Sys_error _ -> ()
                done)
              keys;
            t.s_order <- List.filter (Hashtbl.mem t.s_table) t.s_order;
            Obs.Metrics.incr m_recovered
          | Journal.Generation g ->
            t.s_gen <- max t.s_gen g;
            Obs.Metrics.incr m_recovered)
        pend;
      persist t
    end;
    Journal.reset ~dir

(* --- opening --- *)

let create_mem () =
  { s_backend = Memory; s_mu = Mutex.create (); s_table = Hashtbl.create 64;
    s_order = []; s_gen = 0; s_copies = 1; s_lost = [] }

let open_dir ?(reset = false) ?replicas dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))
  end
  else Sys.mkdir dir 0o755;
  let t =
    { s_backend = Dir dir; s_mu = Mutex.create (); s_table = Hashtbl.create 64;
      s_order = []; s_gen = 0; s_copies = 1; s_lost = [] }
  in
  if reset then begin
    (match replicas with
     | Some r when r > 0 -> t.s_copies <- r + 1
     | _ -> ());
    Journal.reset ~dir;
    persist t
  end
  else begin
    sweep_orphans dir;
    load t;
    recover t;
    (* growing the mirror count mirrors every live entry into the new
       trees now, so a fresh replica is immediately a full copy;
       shrinking is never implicit — extra trees are simply kept *)
    match replicas with
    | Some r when r + 1 > t.s_copies ->
      t.s_copies <- r + 1;
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.s_table key with
          | None -> ()
          | Some e -> ignore (heal_copies dir key e.e_payload t.s_copies))
        t.s_order;
      persist t
    | _ -> ()
  end;
  t

let dir t = match t.s_backend with Memory -> None | Dir d -> Some d

let generation t =
  Mutex.lock t.s_mu;
  let g = t.s_gen in
  Mutex.unlock t.s_mu;
  g

let new_generation t =
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      t.s_gen <- t.s_gen + 1;
      (match t.s_backend with
       | Memory -> ()
       | Dir dir -> Journal.append_intent ~dir (Journal.Generation t.s_gen));
      persist t;
      (match t.s_backend with
       | Memory -> ()
       | Dir dir -> Journal.append_commit ~dir);
      t.s_gen)

(* --- lookups --- *)

let find t name =
  Mutex.lock t.s_mu;
  let r = Hashtbl.find_opt t.s_table name in
  Mutex.unlock t.s_mu;
  Option.map (fun e -> e.e_payload) r

let get t name =
  Obs.Trace.with_span ~cat:"store" "store.get" @@ fun () ->
  Mutex.lock t.s_mu;
  let r = Hashtbl.find_opt t.s_table name in
  (* read-repair: a hit on an entry loaded from a replica (or flagged by
     scrub) rewrites every stale copy with the known-good bytes *)
  (match (r, t.s_backend) with
   | Some e, Dir dir when e.e_degraded ->
     (try
        ignore (heal_copies dir name e.e_payload t.s_copies);
        e.e_degraded <- false;
        Obs.Metrics.incr m_read_repairs
      with Sys_error _ -> ())
   | _ -> ());
  let payload = Option.map (fun e -> e.e_payload) r in
  Mutex.unlock t.s_mu;
  match payload with
  | Some payload ->
    Obs.Metrics.incr m_hits;
    Some payload
  | None ->
    Obs.Metrics.incr m_misses;
    None

(* --- commits --- *)

let put t ~key ~payload =
  if String.contains key '\n' then
    invalid_arg "Store.put: keys may not contain newlines";
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      Obs.Trace.with_span ~cat:"store" "store.commit" @@ fun () ->
      Fault.point ~site:"store.commit";
      Obs.Metrics.add m_bytes_written (String.length payload);
      (match t.s_backend with
       | Memory -> ()
       | Dir dir ->
         (* the disk guard charges every copy before writing any, so a
            governed run stops committing the moment the budget is blown *)
         Budget.charge_disk ~bytes:(String.length payload * t.s_copies);
         (* intent first: a crash anywhere past this line is replayed or
            rolled back on the next open from the journal record *)
         Journal.append_intent ~dir
           (Journal.Put
              { key; gen = t.s_gen; bytes = String.length payload;
                crc = Crc32.string payload });
         for i = 0 to t.s_copies - 1 do
           Fault.point ~site:"store.payload.write";
           let d = copy_dir dir i in
           ensure_dir d;
           write_atomic ~dir:d (payload_path dir i key) payload
         done);
      if not (Hashtbl.mem t.s_table key) then t.s_order <- key :: t.s_order;
      Hashtbl.replace t.s_table key
        { e_payload = payload; e_gen = t.s_gen; e_degraded = false };
      drop_lost t key;
      persist t;
      match t.s_backend with
      | Memory -> ()
      | Dir dir -> Journal.append_commit ~dir)

(* --- inspection and gc --- *)

let entries t =
  Mutex.lock t.s_mu;
  let es =
    Hashtbl.fold
      (fun k (e : entry) acc ->
        { i_key = k; i_gen = e.e_gen; i_bytes = String.length e.e_payload }
        :: acc)
      t.s_table []
  in
  Mutex.unlock t.s_mu;
  List.sort (fun a b -> compare a.i_key b.i_key) es

let stats t =
  Mutex.lock t.s_mu;
  let bytes =
    Hashtbl.fold (fun _ e acc -> acc + String.length e.e_payload) t.s_table 0
  in
  let r =
    { st_entries = Hashtbl.length t.s_table; st_bytes = bytes;
      st_generation = t.s_gen; st_replicas = t.s_copies - 1;
      st_lost = List.length t.s_lost }
  in
  Mutex.unlock t.s_mu;
  r

let gc t ~keep =
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      let cutoff = t.s_gen - keep in
      let dead =
        Hashtbl.fold
          (fun k (e : entry) acc -> if e.e_gen <= cutoff then k :: acc else acc)
          t.s_table []
      in
      (* lost rows age out with everything else: gc is how damage that
         was never repaired finally leaves the manifest *)
      let dead_lost =
        List.filter_map
          (fun l -> if l.l_gen <= cutoff then Some l.l_key else None)
          t.s_lost
      in
      let all_dead = dead @ dead_lost in
      if all_dead <> [] then begin
        (match t.s_backend with
         | Memory -> ()
         | Dir dir -> Journal.append_intent ~dir (Journal.Gc all_dead));
        List.iter
          (fun k ->
            Hashtbl.remove t.s_table k;
            drop_lost t k;
            match t.s_backend with
            | Memory -> ()
            | Dir dir ->
              for i = 0 to t.s_copies - 1 do
                try Sys.remove (payload_path dir i k) with Sys_error _ -> ()
              done)
          all_dead;
        t.s_order <- List.filter (Hashtbl.mem t.s_table) t.s_order;
        persist t;
        match t.s_backend with
        | Memory -> ()
        | Dir dir -> Journal.append_commit ~dir
      end;
      List.length all_dead)

(* --- integrity: verify / scrub / repair --- *)

(* A v3-framed payload gets its sections walked (every section carries
   its own CRC-32); anything else is opaque bytes whose integrity is the
   manifest checksum alone. *)
let structurally_sound payload =
  let magic = Profile_io.binary_magic in
  let mlen = String.length magic in
  if String.length payload < mlen || String.sub payload 0 mlen <> magic then
    true
  else begin
    let r = Codec.reader ~pos:mlen payload in
    try
      ignore (Codec.read_uvarint r);
      while not (Codec.at_end r) do
        ignore (Codec.read_section r)
      done;
      true
    with Codec.Error _ -> false
  end

(* The one survey loop under verify/scrub/repair. [mode] decides what to
   do with a bad copy: nothing (verify), rename it aside (scrub), or
   rewrite it from the in-memory bytes (repair) — which are the
   healthiest copy by construction: load already chose the first tree
   whose bytes matched the manifest checksum. Callers hold [s_mu]. *)
let survey t mode =
  match t.s_backend with
  | Memory ->
    { c_entries = Hashtbl.length t.s_table;
      c_copies_ok = Hashtbl.length t.s_table; c_copies_bad = 0;
      c_quarantined = 0; c_repaired = 0; c_lost = 0 }
  | Dir dir ->
    let ok = ref 0 and bad = ref 0 and quarantined = ref 0 and fixed = ref 0 in
    let quarantine p =
      if (try Sys.file_exists p with Sys_error _ -> false) then
        try
          Sys.rename p (p ^ ".corrupt");
          incr quarantined;
          Obs.Metrics.incr m_quarantined
        with Sys_error _ -> ()
    in
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.s_table key with
        | None -> ()
        | Some e ->
          let sound = structurally_sound e.e_payload in
          let entry_healed = ref true in
          for i = 0 to t.s_copies - 1 do
            let p = payload_path dir i key in
            let copy_ok =
              sound
              && (match read_file p with
                  | exception Sys_error _ -> false
                  | bytes -> bytes = e.e_payload)
            in
            if copy_ok then incr ok
            else begin
              incr bad;
              match mode with
              | `Verify -> entry_healed := false
              | `Scrub ->
                quarantine p;
                entry_healed := false
              | `Repair ->
                if sound then begin
                  let d = copy_dir dir i in
                  ensure_dir d;
                  write_atomic ~dir:d p e.e_payload;
                  incr fixed;
                  Obs.Metrics.incr m_repaired
                end
                else begin
                  quarantine p;
                  entry_healed := false
                end
            end
          done;
          (* scrub moved the bad copies aside and repair rewrote them;
             either way the degraded flag tracks what is on disk now *)
          if !entry_healed && mode = `Repair then e.e_degraded <- false
          else if not !entry_healed then e.e_degraded <- true)
      (List.rev t.s_order);
    (* lost rows: no tree holds valid bytes, so there is nothing to
       restore from — scrub still moves the wreckage aside *)
    List.iter
      (fun l ->
        if mode = `Scrub || mode = `Repair then
          for i = 0 to t.s_copies - 1 do
            quarantine (payload_path dir i l.l_key)
          done)
      t.s_lost;
    { c_entries = Hashtbl.length t.s_table; c_copies_ok = !ok;
      c_copies_bad = !bad; c_quarantined = !quarantined; c_repaired = !fixed;
      c_lost = List.length t.s_lost }

let with_survey t name mode =
  Obs.Trace.with_span ~cat:"store" name @@ fun () ->
  Mutex.lock t.s_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_mu) (fun () -> survey t mode)

let verify t = with_survey t "store.verify" `Verify
let scrub t = with_survey t "store.scrub" `Scrub
let repair t = with_survey t "store.repair" `Repair

(* --- profile entries --- *)

let put_profile t ~key p = put t ~key ~payload:(Profile_io.to_binary p)

(* Drops [key] from the live table (the caller will recompute) and, on
   disk, quarantines every copy of its payload so the poisoned bytes are
   never re-read — but never deleted. Holds [s_mu]. *)
let quarantine_entry t key =
  Mutex.lock t.s_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mu)
    (fun () ->
      Hashtbl.remove t.s_table key;
      t.s_order <- List.filter (Hashtbl.mem t.s_table) t.s_order;
      match t.s_backend with
      | Memory -> ()
      | Dir dir ->
        for i = 0 to t.s_copies - 1 do
          let p = payload_path dir i key in
          if (try Sys.file_exists p with Sys_error _ -> false) then
            try
              Sys.rename p (p ^ ".corrupt");
              Obs.Metrics.incr m_quarantined
            with Sys_error _ -> ()
        done;
        persist t)

(* When the in-memory bytes fail decode, some mirror may still hold an
   older-but-decodable copy (post-load bit-rot healed by a put that died
   half-way never reaches here; this is the defense against a payload
   that passed its CRC yet does not parse). *)
let recover_from_mirror t ~program ~key =
  match t.s_backend with
  | Memory -> None
  | Dir dir ->
    Mutex.lock t.s_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.s_mu)
      (fun () ->
        match Hashtbl.find_opt t.s_table key with
        | None -> None
        | Some e ->
          let rec scan i =
            if i >= t.s_copies then None
            else
              match read_file (payload_path dir i key) with
              | exception Sys_error _ -> scan (i + 1)
              | bytes when bytes = e.e_payload -> scan (i + 1)
              | bytes ->
                (match Profile_io.of_string ~program bytes with
                 | p -> Some (bytes, p)
                 | exception Failure _ -> scan (i + 1))
          in
          (match scan 0 with
           | None -> None
           | Some (bytes, p) ->
             e.e_payload <- bytes;
             e.e_degraded <- false;
             ignore (heal_copies dir key bytes t.s_copies);
             persist t;
             Obs.Metrics.incr m_read_repairs;
             Some p))

let get_profile t ~program ~key =
  match get t key with
  | None -> None
  | Some payload ->
    (match Profile_io.of_string ~program payload with
     | p -> Some p
     | exception Failure _ ->
       Obs.Metrics.incr m_decode_failures;
       (match recover_from_mirror t ~program ~key with
        | Some p -> Some p
        | None ->
          (* no copy decodes: quarantine the poisoned files and report a
             miss, so the caller recomputes and the next put overwrites *)
          quarantine_entry t key;
          None))

let merge_into t ~program ~key p =
  match get_profile t ~program ~key with
  | None -> put_profile t ~key p
  | Some old -> put_profile t ~key (Profile.merge [ old; p ])
