(** Write-ahead journal for multi-file store mutations.

    The directory store's mutations touch several files — a payload per
    replica tree, then the manifest — and each individual write is atomic
    (temp-file + rename), but the {e sequence} is not: a crash between
    files leaves the trees disagreeing. The journal closes that window
    with intent-first logging: before touching any file the store appends
    an {e intent} record describing the whole mutation, and after the
    last file is in place it appends a {e commit} record. On open,
    {!pending} returns every intent without a matching commit, and the
    store rolls each one forward (when the mutation's bytes survived
    somewhere) or back (when they did not) — so an acknowledged write is
    never lost and an unacknowledged one is never left half-applied.

    {b Format.} The journal is a single append-only file ([dir/journal])
    of {!Codec} tagged sections, one per record: ['P'] put intent (key,
    generation, payload length, payload CRC-32), ['G'] gc intent (the
    keys being removed), ['N'] generation intent (the new counter),
    ['C'] commit (empty payload, commits the oldest pending intent).
    Every record carries its own CRC-32, so a torn append — the one
    non-atomic write in the store — is detected and dropped: a torn
    {e intent} means the mutation never started, a torn {e commit} means
    the preceding intent replays (recovery is idempotent, so replaying a
    completed mutation is harmless).

    {b Fault sites.} Each append crosses ["journal.append"] — a
    {!Fault.point} (so [@kill] specs can SIGKILL the process on the N-th
    append) and a {!Fault.cut} (so [@BYTES] specs can tear the append at
    any byte offset and die, which is how the crash harness walks every
    journal byte offset).

    {b Telemetry.} [journal.appends] counts records written;
    [journal.torn_tails] counts torn records dropped by {!pending}. *)

(** One store mutation, as logged ahead of its files. *)
type op =
  | Put of { key : string; gen : int; bytes : int; crc : int }
      (** Commit [bytes] bytes with checksum [crc] under [key] at
          generation [gen], across every replica tree. *)
  | Gc of string list  (** Remove these keys from every replica tree. *)
  | Generation of int  (** Bump the persisted generation counter. *)

(** [dir/journal]. *)
val path : dir:string -> string

(** Encoded record for [op] — exposed so tests (and the chaos harness)
    can reason about exact byte offsets within an append. *)
val encode : op -> string

(** The encoded commit record. *)
val commit_record : string

(** Appends [op]'s intent record and flushes it to the OS. Crosses the
    ["journal.append"] fault site (see above). *)
val append_intent : dir:string -> op -> unit

(** Appends a commit record for the oldest uncommitted intent. *)
val append_commit : dir:string -> unit

(** Parses the journal and returns the intents with no matching commit,
    oldest first. A torn or malformed tail is dropped (counted under
    [journal.torn_tails]); a missing journal file is an empty journal. *)
val pending : dir:string -> op list

(** Truncates the journal to empty (recovery has consumed it). Creating
    the file if absent is deliberate: an empty journal and a missing one
    mean the same thing. *)
val reset : dir:string -> unit
