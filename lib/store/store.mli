(** Keyed profile repository — the one persistence code path.

    Every durable artifact the toolchain produces (checkpointed
    experiment payloads, cached profiles, rendered grids) is a byte
    string addressed by a key; this module owns fingerprinting the key,
    checksumming the bytes, and committing them atomically. Two backends
    share one contract:

    - {e in-memory} ({!create_mem}) — a hash table, for tests and
      single-process reuse;
    - {e directory} ({!open_dir}) — a [manifest] file with one
      checksummed line per entry
      ([done <key> gen=<g> bytes=<n> payload=<crc> line=<crc>]) plus one
      atomically-written payload file per entry ([<stem>-<crc>.out]).

    The backend contract: {!put} is atomic (temp-file + [rename], payload
    before manifest, so a crash between the two merely loses the entry);
    loading is salvage-shaped (a torn manifest line and everything after
    it is dropped; a payload failing its size or checksum is treated as
    never committed); nothing is trusted without its checksum.

    {b Generations.} The manifest carries a generation counter. A writing
    invocation calls {!new_generation} once; entries committed after that
    are stamped with the new generation, and {!gc} [~keep:n] drops every
    entry last {e written} more than [n] generations ago. Reads do not
    refresh an entry's generation.

    {b Telemetry.} [store.hits]/[store.misses]/[store.bytes_written]
    counters and [store.get]/[store.commit] spans in {!Obs}; a decode
    failure in {!get_profile} counts [store.decode_failures] and reports
    a miss. Directory commits are charged to the {!Budget} disk guard.
    {!put} carries the ["store.commit"] fault-injection site, loading the
    ["checkpoint.load"] site (the name chaos campaigns arm).

    The store is domain-safe: {!put} is called from pool workers. *)

(** A cache key names the exact provenance of a profile: same workload,
    input, fuel, profiler kind, shard count, and profiler configuration
    — change any one and the bytes are not reusable. *)
module Fingerprint : sig
  type t = {
    fp_profiler : string;  (** e.g. ["full"], ["experiment"], ["profile"] *)
    fp_workload : string;
    fp_input : string;
    fp_fuel : int option;  (** [None] = unlimited *)
    fp_shards : int;
    fp_config : string;  (** rendered profiler configuration *)
  }

  val make :
    ?fuel:int ->
    ?shards:int ->
    ?config:string ->
    profiler:string ->
    workload:string ->
    input:string ->
    unit ->
    t

  (** The canonical one-line rendering the key hash is computed over. *)
  val canonical : t -> string

  (** Filesystem-safe store key: a readable sanitized stem plus the
      CRC-32 of {!canonical}, so distinct fingerprints cannot collide
      after sanitization. *)
  val key : t -> string

  (** Renders a value-profiler configuration for [fp_config] (TNV
      capacity/policy, clear interval, distinct cap, selection). *)
  val profile_config : Vstate.config -> selection:string -> string
end

type t

type info = { i_key : string; i_gen : int; i_bytes : int }
type stats = { st_entries : int; st_bytes : int; st_generation : int }

val create_mem : unit -> t

(** [open_dir dir] opens (creating [dir] if needed) a directory store and
    loads the surviving manifest entries. [~reset:true] starts empty,
    committing a fresh manifest (stale payload files are simply
    unreferenced). Raises [Sys_error] if [dir] exists but is not a
    directory. *)
val open_dir : ?reset:bool -> string -> t

(** The backing directory; [None] for the in-memory backend. *)
val dir : t -> string option

val generation : t -> int

(** Bumps and persists the generation counter; returns the new value.
    Call once per writing invocation. *)
val new_generation : t -> int

(** Uncounted lookup (no hit/miss telemetry) — the checkpoint-resume
    path, where the supervisor already reports cached-vs-run. *)
val find : t -> string -> string option

(** Counted lookup: increments [store.hits] or [store.misses] under a
    [store.get] span. *)
val get : t -> string -> string option

(** Commits [payload] under [key] at the current generation, atomically.
    [key] must not contain newlines; spaces are stored escaped. *)
val put : t -> key:string -> payload:string -> unit

(** All live entries, sorted by key. *)
val entries : t -> info list

val stats : t -> stats

(** [gc t ~keep:n] removes every entry whose write generation is more
    than [n] generations behind the current one (their payload files
    included), rewrites the manifest once, and returns the number of
    entries removed. *)
val gc : t -> keep:int -> int

(** {1 Profile entries} — the v3 binary serialization over {!get}/{!put}. *)

val put_profile : t -> key:string -> Profile.t -> unit

(** [None] on a miss; also [None] (counting [store.decode_failures]) when
    the stored bytes do not decode against [program], so the caller
    recomputes and overwrites the bad entry. *)
val get_profile : t -> program:Asm.program -> key:string -> Profile.t option

(** Merges [p] into the entry at [key] with {!Profile.merge} (the entry
    is created if absent). Get-then-put, not transactional: concurrent
    merges to one key can lose one side's increment. *)
val merge_into : t -> program:Asm.program -> key:string -> Profile.t -> unit
