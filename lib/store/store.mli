(** Keyed profile repository — the one persistence code path.

    Every durable artifact the toolchain produces (checkpointed
    experiment payloads, cached profiles, rendered grids) is a byte
    string addressed by a key; this module owns fingerprinting the key,
    checksumming the bytes, and committing them atomically. Two backends
    share one contract:

    - {e in-memory} ({!create_mem}) — a hash table, for tests and
      single-process reuse;
    - {e directory} ({!open_dir}) — a [manifest] file with one
      checksummed line per entry
      ([done <key> gen=<g> bytes=<n> payload=<crc> line=<crc>]) plus one
      atomically-written payload file per entry ([<stem>-<crc>.out]),
      optionally mirrored into [replicas] sibling trees.

    The backend contract: {!put} is atomic (temp-file + [rename], payload
    before manifest); loading is salvage-shaped (a torn manifest line and
    everything after it is dropped; a payload failing its size or
    checksum in every copy tree is reported {e lost}, not served);
    nothing is trusted without its checksum.

    {b Durability.} Every multi-file mutation ({!put}, {!gc},
    {!new_generation}) is logged intent-first in a write-ahead journal
    ({!Journal}) and committed after its last file is in place. Opening
    the store replays the journal: a pending put whose bytes survived in
    any copy tree rolls {e forward} (healed into every tree,
    [journal.recovered]); one whose bytes survived nowhere rolls
    {e back} (nothing durable existed, [journal.rolled_back]) — so an
    acknowledged write is never lost and an unacknowledged one is never
    left half-applied, even under kill -9 at an arbitrary byte. Orphaned
    [*.tmp] files from killed atomic commits are swept on open
    ([store.orphans_swept]).

    {b Replicas.} [open_dir ~replicas:n] keeps [n] mirror trees
    ([dir/replica1..n]) alongside the primary; {!put} writes every tree,
    and a load that finds the primary corrupt serves the first replica
    whose bytes match the manifest checksum, marking the entry
    {e degraded}. A {!get} on a degraded entry rewrites the stale copies
    (read-repair, [store.read_repairs]). Growing [replicas] on open
    mirrors every live entry into the new trees; shrinking is never
    implicit.

    {b Integrity.} {!verify} is a read-only survey (every copy of every
    entry byte-compared against the loaded payload, v3-framed payloads
    additionally section-walked); {!scrub} moves each corrupt copy aside
    to [*.corrupt] ([store.quarantined] — quarantine, never deletion);
    {!repair} rewrites each bad copy from the healthiest surviving one
    ([store.repaired]). A {!get_profile} that hits undecodable bytes
    tries the mirrors for a decodable copy and otherwise quarantines the
    poisoned files so they are never re-read.

    {b Generations.} The manifest carries a generation counter. A writing
    invocation calls {!new_generation} once; entries committed after that
    are stamped with the new generation, and {!gc} [~keep:n] drops every
    entry last {e written} more than [n] generations ago. Reads do not
    refresh an entry's generation.

    {b Telemetry.} [store.hits]/[store.misses]/[store.bytes_written]
    counters and [store.get]/[store.commit]/[store.verify]/[store.scrub]/
    [store.repair] spans in {!Obs}; a decode failure in {!get_profile}
    counts [store.decode_failures]. Directory commits are charged to the
    {!Budget} disk guard once per copy. {!put} carries the
    ["store.commit"] and (per copy) ["store.payload.write"] fault sites,
    loading the ["checkpoint.load"] site, journal appends the
    ["journal.append"] site — the spots chaos campaigns kill.

    The store is domain-safe: {!put} is called from pool workers. *)

(** A cache key names the exact provenance of a profile: same workload,
    input, fuel, profiler kind, shard count, and profiler configuration
    — change any one and the bytes are not reusable. *)
module Fingerprint : sig
  type t = {
    fp_profiler : string;  (** e.g. ["full"], ["experiment"], ["profile"] *)
    fp_workload : string;
    fp_input : string;
    fp_fuel : int option;  (** [None] = unlimited *)
    fp_shards : int;
    fp_config : string;  (** rendered profiler configuration *)
  }

  val make :
    ?fuel:int ->
    ?shards:int ->
    ?config:string ->
    profiler:string ->
    workload:string ->
    input:string ->
    unit ->
    t

  (** The canonical one-line rendering the key hash is computed over. *)
  val canonical : t -> string

  (** Filesystem-safe store key: a readable sanitized stem plus the
      CRC-32 of {!canonical}, so distinct fingerprints cannot collide
      after sanitization. *)
  val key : t -> string

  (** Renders a value-profiler configuration for [fp_config] (TNV
      capacity/policy, clear interval, distinct cap, selection). *)
  val profile_config : Vstate.config -> selection:string -> string
end

type t

type info = { i_key : string; i_gen : int; i_bytes : int }

type stats = {
  st_entries : int;
  st_bytes : int;
  st_generation : int;
  st_replicas : int;  (** mirror trees kept alongside the primary *)
  st_lost : int;  (** manifest rows with no valid copy in any tree *)
}

(** One integrity survey ({!verify}, {!scrub} or {!repair}). [copies]
    counts are per payload copy (entries × trees), not per entry. *)
type check = {
  c_entries : int;  (** live entries surveyed *)
  c_copies_ok : int;  (** copies byte-identical to the loaded payload *)
  c_copies_bad : int;  (** copies missing, mismatching, or malformed *)
  c_quarantined : int;  (** files moved aside to [*.corrupt] *)
  c_repaired : int;  (** copies rewritten from the healthiest one *)
  c_lost : int;  (** entries with no valid copy anywhere *)
}

(** [true] iff the survey found nothing wrong (no bad copy, nothing
    lost) — the condition under which [vprof store verify] exits 0. *)
val check_clean : check -> bool

val create_mem : unit -> t

(** [open_dir dir] opens (creating [dir] if needed) a directory store:
    sweeps orphaned [*.tmp] files, loads the surviving manifest entries
    (falling back to replica trees for corrupt primaries), and replays
    the write-ahead journal left by any crashed invocation.
    [~replicas:n] keeps [n] mirror trees — growing the count mirrors
    every live entry into the new trees now; an existing store's count
    is never shrunk implicitly. [~reset:true] starts empty, committing a
    fresh manifest and an empty journal (stale payload files are simply
    unreferenced). Raises [Sys_error] if [dir] exists but is not a
    directory. *)
val open_dir : ?reset:bool -> ?replicas:int -> string -> t

(** The backing directory; [None] for the in-memory backend. *)
val dir : t -> string option

val generation : t -> int

(** Bumps and persists the generation counter (journaled); returns the
    new value. Call once per writing invocation. *)
val new_generation : t -> int

(** Uncounted lookup (no hit/miss telemetry, no read-repair) — the
    checkpoint-resume path, where the supervisor already reports
    cached-vs-run. *)
val find : t -> string -> string option

(** Counted lookup: increments [store.hits] or [store.misses] under a
    [store.get] span. A hit on a degraded entry first rewrites its stale
    on-disk copies from the known-good bytes (read-repair). *)
val get : t -> string -> string option

(** Commits [payload] under [key] at the current generation: journal
    intent, then every copy tree (atomically each), then the manifest,
    then the journal commit. [key] must not contain newlines; spaces are
    stored escaped. *)
val put : t -> key:string -> payload:string -> unit

(** All live entries, sorted by key. *)
val entries : t -> info list

val stats : t -> stats

(** [gc t ~keep:n] removes every entry whose write generation is more
    than [n] generations behind the current one (their payload files in
    every tree included, lost rows too), rewrites the manifest once, and
    returns the number of entries removed. Journaled. *)
val gc : t -> keep:int -> int

(** {1 Integrity} *)

(** Read-only survey: byte-compares every copy of every live entry
    against the loaded payload and section-walks v3-framed payloads.
    Touches nothing on disk; flags entries with bad copies degraded so a
    later {!get} read-repairs them. *)
val verify : t -> check

(** {!verify}, plus every corrupt copy is renamed aside to [*.corrupt]
    (including the wreckage of lost rows) — quarantine, never deletion. *)
val scrub : t -> check

(** {!verify}, plus every bad copy is rewritten from the healthiest
    surviving copy (the loaded payload — byte-identical restoration).
    Structurally-unsound payloads are quarantined instead; lost rows
    have nothing to restore from and stay lost until overwritten or
    gc'd. *)
val repair : t -> check

(** {1 Profile entries} — the v3 binary serialization over {!get}/{!put}. *)

val put_profile : t -> key:string -> Profile.t -> unit

(** [None] on a miss; on stored bytes that do not decode against
    [program] (counting [store.decode_failures]), tries each mirror for
    a decodable copy — healing every tree from it on success — and
    otherwise quarantines the poisoned payload files and drops the
    entry, so the caller recomputes and the next put overwrites. *)
val get_profile : t -> program:Asm.program -> key:string -> Profile.t option

(** Merges [p] into the entry at [key] with {!Profile.merge} (the entry
    is created if absent). Get-then-put, not transactional: concurrent
    merges to one key can lose one side's increment. *)
val merge_into : t -> program:Asm.program -> key:string -> Profile.t -> unit
