type op =
  | Put of { key : string; gen : int; bytes : int; crc : int }
  | Gc of string list
  | Generation of int

let m_appends = Obs.Metrics.counter "journal.appends"
let m_torn_tails = Obs.Metrics.counter "journal.torn_tails"

let path ~dir = Filename.concat dir "journal"

(* --- records --- *)

let encode op =
  let payload = Buffer.create 64 in
  let tag =
    match op with
    | Put { key; gen; bytes; crc } ->
      Codec.put_string payload key;
      Codec.put_uvarint payload gen;
      Codec.put_uvarint payload bytes;
      Codec.put_u32 payload crc;
      'P'
    | Gc keys ->
      Codec.put_uvarint payload (List.length keys);
      List.iter (Codec.put_string payload) keys;
      'G'
    | Generation g ->
      Codec.put_uvarint payload g;
      'N'
  in
  let buf = Buffer.create 80 in
  Codec.put_section buf ~tag (Buffer.contents payload);
  Buffer.contents buf

let commit_record =
  let buf = Buffer.create 8 in
  Codec.put_section buf ~tag:'C' "";
  Buffer.contents buf

let decode_op tag payload =
  let r = Codec.reader payload in
  match tag with
  | 'P' ->
    let key = Codec.read_string r in
    let gen = Codec.read_uvarint r in
    let bytes = Codec.read_uvarint r in
    let crc = Codec.read_u32 r in
    Some (Put { key; gen; bytes; crc })
  | 'G' ->
    let n = Codec.read_uvarint r in
    if n > String.length payload then
      raise (Codec.Error (Codec.pos r, "gc key count exceeds record"));
    Some (Gc (List.init n (fun _ -> Codec.read_string r)))
  | 'N' -> Some (Generation (Codec.read_uvarint r))
  | 'C' -> None
  | t -> raise (Codec.Error (0, Printf.sprintf "unknown journal tag %C" t))

(* --- appending --- *)

(* The journal is the store's one append-in-place file, which makes it
   the one place a torn write can land on disk — so the append carries
   both crash-site flavors: a [point] for whole-record kills and a [cut]
   for tearing the record at an exact byte offset before dying. *)
let append ~dir record =
  Fault.point ~site:"journal.append";
  Obs.Metrics.incr m_appends;
  let write bytes =
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (path ~dir)
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc bytes)
  in
  match Fault.cut ~site:"journal.append" with
  | Some n ->
    (* injected torn append: the record stops at byte [n] and the
       process dies there — the shape a real crash mid-append leaves *)
    write (String.sub record 0 (min n (String.length record)));
    raise (Fault.Injected "journal.append")
  | None -> write record

let append_intent ~dir op = append ~dir (encode op)
let append_commit ~dir = append ~dir commit_record

(* --- replay --- *)

let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let pending ~dir =
  match read_file (path ~dir) with
  | None -> []
  | Some text ->
    let r = Codec.reader text in
    let pend = ref [] in
    (* ops are strictly sequential under the store mutex, so a commit
       always belongs to the oldest intent still uncommitted *)
    let rec drop_oldest = function
      | [] -> []
      | [ _oldest ] -> []
      | x :: rest -> x :: drop_oldest rest
    in
    (try
       while not (Codec.at_end r) do
         let tag, payload = Codec.read_section r in
         match decode_op tag payload with
         | Some op -> pend := op :: !pend
         | None -> pend := drop_oldest !pend
       done
     with Codec.Error _ ->
       (* torn or malformed tail: whatever record was being appended
          never finished, so the mutation it describes never started *)
       Obs.Metrics.incr m_torn_tails);
    List.rev !pend

let reset ~dir =
  let oc =
    open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 (path ~dir)
  in
  close_out oc
