type t = {
  pname : string;
  ppredict : pc:int -> int64 option;
  pupdate : pc:int -> int64 -> unit;
  pevictions : unit -> int;
}

let name t = t.pname
let predict t ~pc = t.ppredict ~pc
let update t ~pc v = t.pupdate ~pc v
let evictions t = t.pevictions ()

let conf_max = 3

(* Direct-mapped tagged table shared by lvp and stride. *)
type 'a table = {
  mask : int;
  tags : int array; (* -1 = empty *)
  slots : 'a array;
  mutable evicted : int;
}

let make_table bits empty =
  if bits < 1 || bits > 24 then invalid_arg "Predictor: bits out of range";
  let n = 1 lsl bits in
  { mask = n - 1; tags = Array.make n (-1); slots = Array.make n empty;
    evicted = 0 }

(* Returns [Some slot] on a tag hit. *)
let lookup tbl ~pc =
  let i = pc land tbl.mask in
  if tbl.tags.(i) = pc then Some tbl.slots.(i) else None

(* Claims the slot for [pc], counting an eviction when it displaces another
   instruction; returns the (possibly fresh) slot index. *)
let claim tbl ~pc fresh =
  let i = pc land tbl.mask in
  if tbl.tags.(i) <> pc then begin
    if tbl.tags.(i) >= 0 then tbl.evicted <- tbl.evicted + 1;
    tbl.tags.(i) <- pc;
    tbl.slots.(i) <- fresh ()
  end;
  i

type lvp_slot = { mutable lv : int64; mutable lconf : int }

let lvp ?(bits = 10) ?(conf_threshold = 1) () =
  let tbl = make_table bits { lv = 0L; lconf = 0 } in
  { pname = Printf.sprintf "lvp-%d" (1 lsl bits);
    ppredict =
      (fun ~pc ->
        match lookup tbl ~pc with
        | Some s when s.lconf >= conf_threshold -> Some s.lv
        | Some _ | None -> None);
    pupdate =
      (fun ~pc v ->
        let i = claim tbl ~pc (fun () -> { lv = 0L; lconf = 0 }) in
        let s = tbl.slots.(i) in
        if Int64.equal s.lv v then s.lconf <- min conf_max (s.lconf + 1)
        else begin
          s.lv <- v;
          s.lconf <- 0
        end);
    pevictions = (fun () -> tbl.evicted) }

type stride_slot = {
  mutable sv : int64;
  mutable sstride : int64;
  mutable sconf : int;
  mutable sinit : bool;
}

let stride ?(bits = 10) ?(conf_threshold = 1) () =
  let fresh () = { sv = 0L; sstride = 0L; sconf = 0; sinit = false } in
  let tbl = make_table bits (fresh ()) in
  { pname = Printf.sprintf "stride-%d" (1 lsl bits);
    ppredict =
      (fun ~pc ->
        match lookup tbl ~pc with
        | Some s when s.sinit && s.sconf >= conf_threshold ->
          Some (Int64.add s.sv s.sstride)
        | Some _ | None -> None);
    pupdate =
      (fun ~pc v ->
        let i = claim tbl ~pc fresh in
        let s = tbl.slots.(i) in
        if not s.sinit then begin
          s.sv <- v;
          s.sinit <- true
        end
        else begin
          let observed = Int64.sub v s.sv in
          if Int64.equal observed s.sstride then s.sconf <- min conf_max (s.sconf + 1)
          else begin
            s.sstride <- observed;
            s.sconf <- 0
          end;
          s.sv <- v
        end);
    pevictions = (fun () -> tbl.evicted) }

(* Finite context method: level 1 keeps the value history per pc, level 2
   maps a hash of that history to the predicted next value. *)
let fcm ?(bits = 12) ?(history = 2) () =
  if history < 1 || history > 8 then invalid_arg "Predictor.fcm: history";
  let l2n = 1 lsl bits in
  let l2 = Array.make l2n None in
  let hist : (int, int64 array) Hashtbl.t = Hashtbl.create 1024 in
  let evicted = ref 0 in
  let hash pc values =
    let h = ref (pc * 0x9E3779B1) in
    Array.iter
      (fun v ->
        h := (!h lxor Int64.to_int (Int64.mul v 0x100000001B3L)) * 0x01000193)
      values;
    !h land (l2n - 1)
  in
  let history_of pc =
    match Hashtbl.find_opt hist pc with
    | Some h -> h
    | None ->
      let h = Array.make history 0L in
      Hashtbl.replace hist pc h;
      h
  in
  { pname = Printf.sprintf "fcm-%d" l2n;
    ppredict =
      (fun ~pc ->
        match Hashtbl.find_opt hist pc with
        | None -> None
        | Some h -> l2.(hash pc h));
    pupdate =
      (fun ~pc v ->
        let h = history_of pc in
        let idx = hash pc h in
        (match l2.(idx) with
         | Some old when not (Int64.equal old v) -> incr evicted
         | Some _ | None -> ());
        l2.(idx) <- Some v;
        Array.blit h 1 h 0 (history - 1);
        h.(history - 1) <- v);
    pevictions = (fun () -> !evicted) }

let hybrid a b =
  (* Per-pc 2-bit chooser: >=2 prefers [a]. Start neutral. *)
  let chooser : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let counter pc =
    match Hashtbl.find_opt chooser pc with
    | Some r -> r
    | None ->
      let r = ref 2 in
      Hashtbl.replace chooser pc r;
      r
  in
  { pname = Printf.sprintf "hybrid(%s,%s)" a.pname b.pname;
    ppredict =
      (fun ~pc ->
        let pa = a.ppredict ~pc and pb = b.ppredict ~pc in
        if !(counter pc) >= 2 then (match pa with Some _ -> pa | None -> pb)
        else (match pb with Some _ -> pb | None -> pa));
    pupdate =
      (fun ~pc v ->
        let pa = a.ppredict ~pc and pb = b.ppredict ~pc in
        let hit p = match p with Some x -> Int64.equal x v | None -> false in
        let c = counter pc in
        (match (hit pa, hit pb) with
         | true, false -> c := min conf_max (!c + 1)
         | false, true -> c := max 0 (!c - 1)
         | true, true | false, false -> ());
        a.pupdate ~pc v;
        b.pupdate ~pc v);
    pevictions = (fun () -> a.pevictions () + b.pevictions ()) }

let perfect_last () =
  let table : (int, int64) Hashtbl.t = Hashtbl.create 4096 in
  { pname = "perfect-last";
    ppredict = (fun ~pc -> Hashtbl.find_opt table pc);
    pupdate = (fun ~pc v -> Hashtbl.replace table pc v);
    pevictions = (fun () -> 0) }

let filtered ~profile ~threshold p =
  let allowed = Hashtbl.create 256 in
  Array.iter
    (fun (pt : Profile.point) ->
      if pt.p_metrics.Metrics.inv_top >= threshold then
        Hashtbl.replace allowed pt.p_pc ())
    profile.Profile.points;
  { pname = Printf.sprintf "%s@inv>=%.0f%%" p.pname (100. *. threshold);
    ppredict =
      (fun ~pc -> if Hashtbl.mem allowed pc then p.ppredict ~pc else None);
    pupdate = (fun ~pc v -> if Hashtbl.mem allowed pc then p.pupdate ~pc v);
    pevictions = p.pevictions }

let routed ?threshold ~profile ~last_value ~strided () =
  let route = Hashtbl.create 256 in
  Array.iter
    (fun (pt : Profile.point) ->
      match Metrics.predictor_class ?threshold pt.p_metrics with
      | Metrics.Last_value -> Hashtbl.replace route pt.p_pc last_value
      | Metrics.Strided -> Hashtbl.replace route pt.p_pc strided
      | Metrics.Unpredictable -> ())
    profile.Profile.points;
  { pname = Printf.sprintf "routed(%s,%s)" last_value.pname strided.pname;
    ppredict =
      (fun ~pc ->
        match Hashtbl.find_opt route pc with
        | Some p -> p.ppredict ~pc
        | None -> None);
    pupdate =
      (fun ~pc v ->
        match Hashtbl.find_opt route pc with
        | Some p -> p.pupdate ~pc v
        | None -> ());
    pevictions =
      (fun () -> last_value.pevictions () + strided.pevictions ()) }

type result = {
  pr_name : string;
  pr_events : int;
  pr_predicted : int;
  pr_correct : int;
  pr_accuracy : float;
  pr_coverage : float;
  pr_correct_rate : float;
  pr_evictions : int;
}

let simulate ?(selection = `All) ?fuel prog predictors =
  let machine = Machine.create prog in
  let preds = Array.of_list predictors in
  let n = Array.length preds in
  let events = ref 0 in
  let predicted = Array.make n 0 in
  let correct = Array.make n 0 in
  let pcs = Atom.select prog selection in
  List.iter
    (fun pc ->
      Machine.add_hook machine pc (fun value _addr ->
          incr events;
          for i = 0 to n - 1 do
            (match preds.(i).ppredict ~pc with
             | Some guess ->
               predicted.(i) <- predicted.(i) + 1;
               if Int64.equal guess value then correct.(i) <- correct.(i) + 1
             | None -> ());
            preds.(i).pupdate ~pc value
          done))
    pcs;
  ignore (Machine.run ?fuel machine);
  Array.to_list
    (Array.mapi
       (fun i p ->
         let ev = !events in
         { pr_name = p.pname;
           pr_events = ev;
           pr_predicted = predicted.(i);
           pr_correct = correct.(i);
           pr_accuracy =
             (if predicted.(i) = 0 then 0.
              else float_of_int correct.(i) /. float_of_int predicted.(i));
           pr_coverage =
             (if ev = 0 then 0. else float_of_int predicted.(i) /. float_of_int ev);
           pr_correct_rate =
             (if ev = 0 then 0. else float_of_int correct.(i) /. float_of_int ev);
           pr_evictions = p.pevictions () })
       preds)
