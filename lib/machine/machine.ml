type trap =
  | Div_by_zero of int
  | Invalid_pc of int
  | Call_depth_exceeded of int
  | Fuel_exhausted of int

exception Trap of trap

let string_of_trap = function
  | Div_by_zero pc -> Printf.sprintf "division by zero at pc %d" pc
  | Invalid_pc pc -> Printf.sprintf "invalid pc %d" pc
  | Call_depth_exceeded d -> Printf.sprintf "call depth exceeded (%d)" d
  | Fuel_exhausted f -> Printf.sprintf "fuel exhausted (%d instructions)" f

type hook = int64 -> int64 -> unit

let stack_base = 0x7F0_0000L
let max_call_depth = 100_000

type frame = { return_pc : int; frame_proc : int }

type t = {
  prog : Asm.program;
  regs : int64 array;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable icount : int;
  exec_counts : int array;
  mutable stack : frame list;
  mutable depth : int;
  proc_of : int array; (* pc -> proc index, -1 outside any proc *)
  (* What the interpreter dispatches through: at most one closure per
     point, so the hot path is the same single load + option test whether
     a point has zero, one, or many observers. With several observers the
     closure is a pre-built fan-out over a flat array (see [add_sub]). *)
  hooks : hook option array;
  entry_hooks : (t -> unit) option array;
  return_hooks : (t -> int64 -> unit) option array;
  (* The actual subscriber lists (attach order), kept cold: only [add_*]
     and [hook_count] read them. *)
  hook_subs : hook list array;
  entry_subs : (t -> unit) list array;
  return_subs : (t -> int64 -> unit) list array;
  (* Open recording frame: while [Some], every subscription is also
     logged here so [with_attachment] can hand back a detachable record
     of exactly what one profiler installed. *)
  mutable recording : sub list option;
}

and sub =
  | S_hook of int * hook
  | S_entry of int * (t -> unit)
  | S_return of int * (t -> int64 -> unit)

type attachment = sub list

let build_proc_of (prog : Asm.program) =
  let proc_of = Array.make (Array.length prog.code) (-1) in
  Array.iter
    (fun (p : Asm.proc) ->
      for pc = p.pentry to p.pentry + p.plength - 1 do
        proc_of.(pc) <- p.pindex
      done)
    prog.procs;
  proc_of

let load_data t =
  List.iter (fun (base, words) -> Memory.load_segment t.mem base words) t.prog.data

let init_regs regs =
  Array.fill regs 0 (Array.length regs) 0L;
  regs.(Isa.sp) <- stack_base

let create prog =
  let t =
    { prog;
      regs = Array.make Isa.num_regs 0L;
      mem = Memory.create ();
      pc = prog.entry;
      halted = false;
      icount = 0;
      exec_counts = Array.make (Array.length prog.code) 0;
      stack = [];
      depth = 0;
      proc_of = build_proc_of prog;
      hooks = Array.make (Array.length prog.code) None;
      entry_hooks = Array.make (Array.length prog.procs) None;
      return_hooks = Array.make (Array.length prog.procs) None;
      hook_subs = Array.make (Array.length prog.code) [];
      entry_subs = Array.make (Array.length prog.procs) [];
      return_subs = Array.make (Array.length prog.procs) [];
      recording = None }
  in
  init_regs t.regs;
  load_data t;
  t

let reset t =
  init_regs t.regs;
  Memory.clear t.mem;
  load_data t;
  t.pc <- t.prog.entry;
  t.halted <- false;
  t.icount <- 0;
  Array.fill t.exec_counts 0 (Array.length t.exec_counts) 0;
  t.stack <- [];
  t.depth <- 0

let program t = t.prog
let reg t r = t.regs.(r)

let set_reg t r v = if r <> Isa.zero_reg then t.regs.(r) <- v

let memory t = t.mem
let pc t = t.pc
let halted t = t.halted
let icount t = t.icount
let exec_count t pc = t.exec_counts.(pc)
let call_depth t = t.depth

let caller_pc t =
  match t.stack with
  | [] -> None
  | frame :: _ -> Some (frame.return_pc - 1)
(* Additive subscription. The first observer at a point is installed
   directly, so a singly-instrumented point dispatches straight to the
   profiler's closure — zero cost over the pre-fan-out machine. When a
   second (or later) observer attaches, the dispatcher is rebuilt as a
   loop over a flat array of the subscribers in attach order; the array
   is built here, at attach time, so firing never allocates. *)

let record t sub =
  match t.recording with
  | None -> ()
  | Some subs -> t.recording <- Some (sub :: subs)

let rebuild_hook t pc =
  match t.hook_subs.(pc) with
  | [] -> t.hooks.(pc) <- None
  | [ h ] -> t.hooks.(pc) <- Some h
  | hs ->
    let fs = Array.of_list hs in
    t.hooks.(pc) <-
      Some
        (fun v a ->
          for i = 0 to Array.length fs - 1 do
            (Array.unsafe_get fs i) v a
          done)

let add_hook t pc h =
  t.hook_subs.(pc) <- t.hook_subs.(pc) @ [ h ];
  record t (S_hook (pc, h));
  rebuild_hook t pc

let clear_hook t pc =
  t.hooks.(pc) <- None;
  t.hook_subs.(pc) <- []

let clear_all_hooks t =
  Array.fill t.hooks 0 (Array.length t.hooks) None;
  Array.fill t.hook_subs 0 (Array.length t.hook_subs) []

let hook_count t pc = List.length t.hook_subs.(pc)

let rebuild_entry t i =
  match t.entry_subs.(i) with
  | [] -> t.entry_hooks.(i) <- None
  | [ h ] -> t.entry_hooks.(i) <- Some h
  | hs ->
    let fs = Array.of_list hs in
    t.entry_hooks.(i) <-
      Some
        (fun m ->
          for k = 0 to Array.length fs - 1 do
            (Array.unsafe_get fs k) m
          done)

let add_proc_entry_hook t i h =
  t.entry_subs.(i) <- t.entry_subs.(i) @ [ h ];
  record t (S_entry (i, h));
  rebuild_entry t i

let rebuild_return t i =
  match t.return_subs.(i) with
  | [] -> t.return_hooks.(i) <- None
  | [ h ] -> t.return_hooks.(i) <- Some h
  | hs ->
    let fs = Array.of_list hs in
    t.return_hooks.(i) <-
      Some
        (fun m v ->
          for k = 0 to Array.length fs - 1 do
            (Array.unsafe_get fs k) m v
          done)

let add_proc_return_hook t i h =
  t.return_subs.(i) <- t.return_subs.(i) @ [ h ];
  record t (S_return (i, h));
  rebuild_return t i

let with_attachment t f =
  (match t.recording with
   | Some _ -> invalid_arg "Machine.with_attachment: recording already open"
   | None -> ());
  t.recording <- Some [];
  match f () with
  | v ->
    let subs = match t.recording with Some s -> s | None -> [] in
    t.recording <- None;
    (v, subs)
  | exception e ->
    t.recording <- None;
    raise e

(* Remove the first physically-equal closure: the same function may be
   subscribed twice (two frames of the same profiler), and only the
   recorded instance must go. *)
let remove_first_phys x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest ->
      if y == x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] l

let detach t subs =
  List.iter
    (fun sub ->
      match sub with
      | S_hook (pc, h) ->
        t.hook_subs.(pc) <- remove_first_phys h t.hook_subs.(pc);
        rebuild_hook t pc
      | S_entry (i, h) ->
        t.entry_subs.(i) <- remove_first_phys h t.entry_subs.(i);
        rebuild_entry t i
      | S_return (i, h) ->
        t.return_subs.(i) <- remove_first_phys h t.return_subs.(i);
        rebuild_return t i)
    subs

let eval_binop op pc a b =
  match op with
  | Isa.Add -> Int64.add a b
  | Isa.Sub -> Int64.sub a b
  | Isa.Mul -> Int64.mul a b
  | Isa.Div -> if Int64.equal b 0L then raise (Trap (Div_by_zero pc)) else Int64.div a b
  | Isa.Rem -> if Int64.equal b 0L then raise (Trap (Div_by_zero pc)) else Int64.rem a b
  | Isa.And -> Int64.logand a b
  | Isa.Or -> Int64.logor a b
  | Isa.Xor -> Int64.logxor a b
  | Isa.Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Isa.Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Isa.Sra -> Int64.shift_right a (Int64.to_int b land 63)
  | Isa.Cmpeq -> if Int64.equal a b then 1L else 0L
  | Isa.Cmplt -> if Int64.compare a b < 0 then 1L else 0L
  | Isa.Cmple -> if Int64.compare a b <= 0 then 1L else 0L
  | Isa.Cmpult -> if Int64.unsigned_compare a b < 0 then 1L else 0L

let cond_holds c v =
  let s = Int64.compare v 0L in
  match c with
  | Isa.Eq -> s = 0
  | Isa.Ne -> s <> 0
  | Isa.Lt -> s < 0
  | Isa.Le -> s <= 0
  | Isa.Gt -> s > 0
  | Isa.Ge -> s >= 0

let check_pc t pc =
  if pc < 0 || pc >= Array.length t.prog.code then raise (Trap (Invalid_pc pc))

let enter_proc t target =
  check_pc t target;
  let callee = t.proc_of.(target) in
  if t.depth >= max_call_depth then raise (Trap (Call_depth_exceeded max_call_depth));
  t.stack <- { return_pc = t.pc + 1; frame_proc = callee } :: t.stack;
  t.depth <- t.depth + 1;
  t.pc <- target;
  if callee >= 0 then
    match t.entry_hooks.(callee) with None -> () | Some h -> h t

(* Deliver the per-pc dispatcher. Each [step] arm ends here with the value
   and address it produced (0L where the instruction has none), so the
   interpreter never materializes a (value, addr) pair — the old ref-cell
   plumbing cost two allocations and two write barriers per instruction.
   Zero or one observer costs one unsafe load plus an option test; several
   observers cost the same dispatch into a pre-built fan-out closure (see
   [add_hook]). [pc] was bounds-checked on entry to [step] and [hooks]
   matches the code array's length. *)
let[@inline] fire_hook t pc v a =
  match Array.unsafe_get t.hooks pc with None -> () | Some h -> h v a

let step t =
  if t.halted then ()
  else begin
    let pc = t.pc in
    check_pc t pc;
    let instr = Array.unsafe_get t.prog.code pc in
    Array.unsafe_set t.exec_counts pc (Array.unsafe_get t.exec_counts pc + 1);
    t.icount <- t.icount + 1;
    match instr with
    | Isa.Op (op, ra, ob, rc) ->
      let b = match ob with Isa.Reg r -> t.regs.(r) | Isa.Imm v -> v in
      let v = eval_binop op pc t.regs.(ra) b in
      if rc <> Isa.zero_reg then t.regs.(rc) <- v;
      t.pc <- pc + 1;
      fire_hook t pc v 0L
    | Isa.Ldi (rd, v) ->
      if rd <> Isa.zero_reg then t.regs.(rd) <- v;
      t.pc <- pc + 1;
      fire_hook t pc v 0L
    | Isa.Ld (rd, rb, off) ->
      let a = Int64.add t.regs.(rb) (Int64.of_int off) in
      let v = Memory.read t.mem a in
      if rd <> Isa.zero_reg then t.regs.(rd) <- v;
      t.pc <- pc + 1;
      fire_hook t pc v a
    | Isa.St (ra, rb, off) ->
      let a = Int64.add t.regs.(rb) (Int64.of_int off) in
      let v = t.regs.(ra) in
      Memory.write t.mem a v;
      t.pc <- pc + 1;
      fire_hook t pc v a
    | Isa.Br (c, ra, target) ->
      let taken = cond_holds c t.regs.(ra) in
      t.pc <- (if taken then target else pc + 1);
      fire_hook t pc (if taken then 1L else 0L) 0L
    | Isa.Jmp target ->
      t.pc <- target;
      fire_hook t pc 0L 0L
    | Isa.Jsr target ->
      enter_proc t target;
      fire_hook t pc 0L 0L
    | Isa.Jsr_ind r ->
      let target = Int64.to_int t.regs.(r) in
      enter_proc t target;
      fire_hook t pc 0L 0L
    | Isa.Ret ->
      let v = t.regs.(Isa.v0) in
      (match t.stack with
       | [] -> t.halted <- true
       | frame :: rest ->
         (if frame.frame_proc >= 0 then
            match t.return_hooks.(frame.frame_proc) with
            | None -> ()
            | Some h -> h t v);
         t.stack <- rest;
         t.depth <- t.depth - 1;
         t.pc <- frame.return_pc);
      fire_hook t pc v 0L
    | Isa.Halt ->
      t.halted <- true;
      fire_hook t pc 0L 0L
    | Isa.Nop ->
      t.pc <- pc + 1;
      fire_hook t pc 0L 0L
  end

let m_runs = Obs.Metrics.counter "machine.runs"
let m_steps = Obs.Metrics.counter "machine.steps"

let run ?(fuel = 500_000_000) t =
  (* counting down in a tail-recursive loop keeps the budget in a register
     instead of a heap-allocated ref dereferenced every instruction; the
     fault-injection flag is read once, so a fault-free run's loop carries
     only a perfectly-predicted register test per step. Observability sits
     entirely outside the loop: a span around the whole run and two
     counter adds after it, never per step. *)
  let faults = Fault.enabled () in
  (* Budget governance follows the same discipline as fault injection:
     the armed flag is read once, so an ungoverned loop pays nothing.
     Governed, the budget is polled on a periodic boundary (every 4096
     steps, when the fuel counter's low bits are clear) — cheap enough
     to be invisible, frequent enough that a deadline trips within
     fractions of a millisecond of real work. *)
  let governed = Budget.armed () in
  let start_icount = t.icount in
  let finish () =
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_steps (t.icount - start_icount)
  in
  Obs.Trace.begin_span ~cat:"machine" "machine.run";
  if governed then Budget.poll ();
  let rec loop remaining =
    if not t.halted then
      if remaining <= 0 then raise (Trap (Fuel_exhausted fuel))
      else begin
        if faults then Fault.point ~site:"machine.step";
        if governed && remaining land 4095 = 0 then Budget.poll ();
        step t;
        loop (remaining - 1)
      end
  in
  (match loop fuel with
   | () -> ()
   | exception e ->
     finish ();
     Obs.Trace.end_span ~cat:"machine" "machine.run";
     raise e);
  finish ();
  Obs.Trace.end_span ~cat:"machine" "machine.run";
  t.icount

let execute ?fuel prog =
  let t = create prog in
  ignore (run ?fuel t);
  t
