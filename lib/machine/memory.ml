let page_shift = 12
let page_words = 1 lsl page_shift (* 4096 *)
let page_mask = page_words - 1

(* [last_key]/[last_page] cache the most recently touched page so the
   common sequential/looping access pattern costs one compare instead of a
   hashtable probe per access. [no_page] never equals a real key (keys are
   non-negative after the sign check, or huge after wrap). *)
let no_page = min_int

type t = {
  pages : (int, int64 array) Hashtbl.t;
  mutable last_key : int;
  mutable last_page : int64 array;
}

let create () =
  { pages = Hashtbl.create 64; last_key = no_page; last_page = [||] }

(* Addresses below 2^62 (all realistic ones) split with shift/mask on the
   untagged int; an address that wrapped in [to_int] falls back to exact
   64-bit math so the page decomposition matches [iter_touched]'s
   reconstruction. Separate key/off helpers rather than one returning a
   pair: a pair would allocate on every access. *)
let[@inline] page_key a addr =
  if a >= 0 then a lsr page_shift
  else Int64.to_int (Int64.div addr (Int64.of_int page_words))

let[@inline] page_off a addr =
  if a >= 0 then a land page_mask
  else Int64.to_int (Int64.rem addr (Int64.of_int page_words))

let read t addr =
  if Int64.compare addr 0L < 0 then invalid_arg "Memory.read: negative address";
  let a = Int64.to_int addr in
  let key = page_key a addr and off = page_off a addr in
  if key = t.last_key then Array.unsafe_get t.last_page off
  else
    match Hashtbl.find_opt t.pages key with
    | None -> 0L
    | Some page ->
      t.last_key <- key;
      t.last_page <- page;
      page.(off)

let write t addr v =
  if Int64.compare addr 0L < 0 then invalid_arg "Memory.write: negative address";
  let a = Int64.to_int addr in
  let key = page_key a addr and off = page_off a addr in
  if key = t.last_key then Array.unsafe_set t.last_page off v
  else begin
    let page =
      match Hashtbl.find_opt t.pages key with
      | Some page -> page
      | None ->
        let page = Array.make page_words 0L in
        Hashtbl.replace t.pages key page;
        page
    in
    t.last_key <- key;
    t.last_page <- page;
    page.(off) <- v
  end

let load_segment t base words =
  Array.iteri (fun i v -> write t (Int64.add base (Int64.of_int i)) v) words

let pages_allocated t = Hashtbl.length t.pages

let iter_touched t f =
  Hashtbl.iter
    (fun key page ->
      let base = Int64.mul (Int64.of_int key) (Int64.of_int page_words) in
      Array.iteri (fun i v -> f (Int64.add base (Int64.of_int i)) v) page)
    t.pages

let clear t =
  Hashtbl.reset t.pages;
  t.last_key <- no_page;
  t.last_page <- [||]
