(** The virtual machine: executes an assembled {!Vp_asm.Asm.program} and
    exposes the instrumentation points the ATOM-like layer builds on.

    Instrumentation model (mirroring what ATOM's analysis routines could
    observe on the Alpha):
    - a per-PC {e after-execution} hook receiving the value the instruction
      produced (ALU result, loaded word, or stored word) and, for memory
      instructions, the effective address;
    - a per-procedure {e entry} hook, fired when a call lands on the
      procedure, with the machine visible so argument registers can be read;
    - a per-procedure {e return} hook, fired at [Ret], with the value of
      [v0].

    Subscription is {e additive}: every [add_*] call attaches one more
    observer to the point; observers at the same point fire in attach
    order. A point with a single observer costs what the machine has
    always paid (one load, one option test, one call); several observers
    dispatch through a fan-out closure built at attach time that loops
    over a flat array — still one load on the hot path, and never an
    allocation while the machine runs.

    Uninstrumented execution pays only an array lookup per instruction. *)

type trap =
  | Div_by_zero of int  (** pc *)
  | Invalid_pc of int
  | Call_depth_exceeded of int  (** depth limit *)
  | Fuel_exhausted of int  (** fuel that was granted *)

exception Trap of trap

val string_of_trap : trap -> string

type t

(** Per-PC hook: [f value addr]. [value] is the produced value (0 for
    instructions that produce none), [addr] the effective address of a
    load/store (0 otherwise). *)
type hook = int64 -> int64 -> unit

(** Initial value of the stack pointer register on [create]/[reset];
    workload stacks grow downward from here. *)
val stack_base : int64

(** Maximum call-stack depth before [Call_depth_exceeded]. *)
val max_call_depth : int

(** Fresh machine with data segments loaded, registers zeroed (except
    [sp]), and [pc] at the program entry. *)
val create : Asm.program -> t

(** Return to the post-[create] state: registers, memory, counters, and pc
    reset. Hooks are {e kept} (profilers reset themselves). *)
val reset : t -> unit

val program : t -> Asm.program
val reg : t -> Isa.reg -> int64
val set_reg : t -> Isa.reg -> int64 -> unit
val memory : t -> Memory.t

val pc : t -> int
val halted : t -> bool

(** Dynamic instructions executed since the last [create]/[reset]. *)
val icount : t -> int

(** Times the instruction at a given pc has executed. *)
val exec_count : t -> int -> int

(** Current nesting depth of the machine-managed call stack. *)
val call_depth : t -> int

(** PC of the call instruction that created the current frame, if any —
    available inside procedure-entry hooks, where it identifies the call
    site (context-sensitive profiling uses it). *)
val caller_pc : t -> int option

(** [add_hook t pc h] subscribes one more per-PC observer at [pc];
    earlier observers keep firing (in attach order, before [h]). *)
val add_hook : t -> int -> hook -> unit

(** Remove {e every} observer at the pc. *)
val clear_hook : t -> int -> unit

val clear_all_hooks : t -> unit

(** Observers currently subscribed at a pc (0 when uninstrumented). *)
val hook_count : t -> int -> int

(** Subscribe an entry observer on a procedure (additive, like
    {!add_hook}). *)
val add_proc_entry_hook : t -> int -> (t -> unit) -> unit

(** Hook invoked as [f machine return_value] whenever the given procedure
    executes [Ret]. Additive, like {!add_hook}. *)
val add_proc_return_hook : t -> int -> (t -> int64 -> unit) -> unit

(** Everything one profiler subscribed during a {!with_attachment} frame,
    detachable as a unit with {!detach}. *)
type attachment

(** [with_attachment t f] runs [f] with a recording frame open on [t]:
    every hook subscribed inside (per-PC, entry, return) is logged, and
    the log is returned alongside [f]'s result. Frames do not nest —
    [Invalid_argument] if one is already open. This is how fused runs
    remember which subscriptions belong to which member, so degradation
    can shed exactly one member mid-run. *)
val with_attachment : t -> (unit -> 'a) -> 'a * attachment

(** [detach t a] unsubscribes every hook recorded in [a] (matching by
    physical equality, so an identical closure subscribed by someone else
    survives) and rebuilds the affected dispatchers. Other observers at
    the same points keep firing; the detached profiler's accumulated
    state is untouched and can still be collected — a profile from
    partial observation. *)
val detach : t -> attachment -> unit

(** Execute one instruction. Raises {!Trap}; no-op once halted. *)
val step : t -> unit

(** [run ?fuel t] steps until the program halts (via [Halt] or a [Ret]
    with an empty call stack), returning the total {!icount}. Raises
    [Trap (Fuel_exhausted _)] after [fuel] instructions (default
    [500_000_000]).

    Carries the ["machine.step"] fault-injection site (see {!Fault}):
    when that site is armed, the armed step raises [Fault.Injected]
    mid-run — how tests simulate a worker crashing inside a job.

    When a {!Budget} is armed, the loop additionally polls it on a
    periodic boundary (every 4096 steps), so governed runs trip
    deadlines, take degradation steps, or raise on memory pressure
    cooperatively — between steps, with spans closed and telemetry
    intact. Ungoverned runs pay one atomic load for the whole run. *)
val run : ?fuel:int -> t -> int

(** Convenience: [create], [run], and return the machine (for examples and
    tests). *)
val execute : ?fuel:int -> Asm.program -> t
