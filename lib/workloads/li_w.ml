(* li: a bytecode interpreter modeled on 130.li (xlisp). The host program
   is a stack-machine VM; the "lisp program" is guest bytecode kept in
   memory. Hot behaviour: the opcode-fetch load sees a small, skewed set
   of values (the guest's instruction mix), and the arithmetic helper's
   opcode argument is semi-invariant — the paper's interpreter story. *)

open Isa

(* Guest opcodes. *)
let op_pushc = 1L
let op_load = 2L
let op_store = 3L
let op_add = 4L
let op_sub = 5L
let op_mul = 6L
let op_jnz = 7L
let op_halt = 8L

(* Guest program: acc = sum of i*i + 3*i for i = n .. 1, in vars:
   [0] = i, [1] = acc. *)
let guest_program n =
  [| op_pushc; Int64.of_int n;  (*  0 *)
     op_store; 0L;              (*  2 *)
     op_pushc; 0L;              (*  4 *)
     op_store; 1L;              (*  6 *)
     (* loop body starts at 8 *)
     op_load; 0L;               (*  8 *)
     op_load; 0L;               (* 10 *)
     op_mul;                    (* 12 *)
     op_load; 0L;               (* 13 *)
     op_pushc; 3L;              (* 15 *)
     op_mul;                    (* 17 *)
     op_add;                    (* 18 *)
     op_load; 1L;               (* 19 *)
     op_add;                    (* 21 *)
     op_store; 1L;              (* 22 *)
     op_load; 0L;               (* 24 *)
     op_pushc; 1L;              (* 26 *)
     op_sub;                    (* 28 *)
     op_store; 0L;              (* 29 *)
     op_load; 0L;               (* 31 *)
     op_jnz; 8L;                (* 33 *)
     op_halt |]                 (* 35 *)

let build input =
  let n = Workload.pick input ~test:1_200 ~train:4_200 in
  let b = Asm.create () in
  let code_base = Asm.data b (guest_program n) in
  let vars = Asm.reserve b 16 in
  let stack = Asm.reserve b 256 in
  let result = Asm.reserve b 1 in

  (* arith(op=a0, x=a1, y=a2) -> v0. Leaf; branch chain on the opcode. *)
  Asm.proc b "arith" (fun b ->
      Asm.cmpeqi b ~dst:t0 a0 op_add;
      Asm.br b Ne t0 "do_add";
      Asm.cmpeqi b ~dst:t0 a0 op_sub;
      Asm.br b Ne t0 "do_sub";
      Asm.mul b ~dst:v0 a1 a2;
      Asm.ret b;
      Asm.label b "do_add";
      Asm.add b ~dst:v0 a1 a2;
      Asm.ret b;
      Asm.label b "do_sub";
      Asm.sub b ~dst:v0 a1 a2;
      Asm.ret b);

  (* vm_run(code=a0, vars=a1, stack=a2) -> v0 = vars[1].
     s0=guest pc, s1=code, s2=vars, s3=stack, s4=stack index. *)
  Asm.proc b "vm_run" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.mov b ~dst:s2 a1;
      Asm.mov b ~dst:s3 a2;
      Asm.ldi b s4 0L;
      Asm.label b "dispatch";
      Asm.add b ~dst:t0 s1 s0;
      Asm.ld b ~dst:t1 ~base:t0 ~off:0;
      (* PUSHC *)
      Asm.cmpeqi b ~dst:t2 t1 op_pushc;
      Asm.br b Eq t2 "not_pushc";
      Asm.ld b ~dst:t3 ~base:t0 ~off:1;
      Asm.add b ~dst:t4 s3 s4;
      Asm.st b ~src:t3 ~base:t4 ~off:0;
      Asm.addi b ~dst:s4 s4 1L;
      Asm.addi b ~dst:s0 s0 2L;
      Asm.jmp b "dispatch";
      Asm.label b "not_pushc";
      (* LOAD *)
      Asm.cmpeqi b ~dst:t2 t1 op_load;
      Asm.br b Eq t2 "not_load";
      Asm.ld b ~dst:t3 ~base:t0 ~off:1;
      Asm.add b ~dst:t4 s2 t3;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.add b ~dst:t4 s3 s4;
      Asm.st b ~src:t5 ~base:t4 ~off:0;
      Asm.addi b ~dst:s4 s4 1L;
      Asm.addi b ~dst:s0 s0 2L;
      Asm.jmp b "dispatch";
      Asm.label b "not_load";
      (* STORE *)
      Asm.cmpeqi b ~dst:t2 t1 op_store;
      Asm.br b Eq t2 "not_store";
      Asm.ld b ~dst:t3 ~base:t0 ~off:1;
      Asm.subi b ~dst:s4 s4 1L;
      Asm.add b ~dst:t4 s3 s4;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.add b ~dst:t4 s2 t3;
      Asm.st b ~src:t5 ~base:t4 ~off:0;
      Asm.addi b ~dst:s0 s0 2L;
      Asm.jmp b "dispatch";
      Asm.label b "not_store";
      (* JNZ *)
      Asm.cmpeqi b ~dst:t2 t1 op_jnz;
      Asm.br b Eq t2 "not_jnz";
      Asm.subi b ~dst:s4 s4 1L;
      Asm.add b ~dst:t4 s3 s4;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.br b Ne t5 "take_jump";
      Asm.addi b ~dst:s0 s0 2L;
      Asm.jmp b "dispatch";
      Asm.label b "take_jump";
      Asm.ld b ~dst:s0 ~base:t0 ~off:1;
      Asm.jmp b "dispatch";
      Asm.label b "not_jnz";
      (* HALT *)
      Asm.cmpeqi b ~dst:t2 t1 op_halt;
      Asm.br b Ne t2 "vm_done";
      (* binary arithmetic: pop y, pop x, call arith, push result *)
      Asm.subi b ~dst:s4 s4 1L;
      Asm.add b ~dst:t4 s3 s4;
      Asm.ld b ~dst:a2 ~base:t4 ~off:0;
      Asm.subi b ~dst:s4 s4 1L;
      Asm.add b ~dst:t4 s3 s4;
      Asm.ld b ~dst:a1 ~base:t4 ~off:0;
      Asm.mov b ~dst:a0 t1;
      Asm.call b "arith";
      Asm.add b ~dst:t4 s3 s4;
      Asm.st b ~src:v0 ~base:t4 ~off:0;
      Asm.addi b ~dst:s4 s4 1L;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "dispatch";
      Asm.label b "vm_done";
      Asm.ld b ~dst:v0 ~base:s2 ~off:1;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 code_base;
      Asm.ldi b a1 vars;
      Asm.ldi b a2 stack;
      Asm.call b "vm_run";
      Asm.ldi b t0 result;
      Asm.st b ~src:v0 ~base:t0 ~off:0;
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "li";
    wmimics = "130.li (SPEC95)";
    wdescr = "stack-machine bytecode interpreter running a guest loop";
    wbuild = build;
    wshard = None;
    warities = [ ("arith", 3); ("vm_run", 3) ] }
