(* go: board evaluation modeled on 099.go. A padded 11x11 board (9x9
   playable) receives stones move by move; after each move the whole board
   is re-evaluated. Hot behaviour: board-cell loads dominated by 0 (empty)
   early and by few stone values throughout, giving the high %zero and
   invariance the paper reports for go. *)

open Isa

let side = 11 (* 9x9 playable area with a one-cell border *)
let cells = side * side

let build input =
  let rng = Workload.rng "go" input in
  let moves = Workload.pick input ~test:180 ~train:480 in
  let positions =
    Array.init moves (fun _ ->
        (* skewed placement: corners/edges of the playable area favoured *)
        let r = 1 + Rng.skewed rng ~n:9 ~s:1.4 in
        let c = 1 + Rng.skewed rng ~n:9 ~s:1.4 in
        Int64.of_int ((r * side) + c))
  in
  let b = Asm.create () in
  let board = Asm.reserve b cells in
  let moves_base = Asm.data b positions in
  let result = Asm.reserve b 2 in

  (* eval(board=a0) -> v0 = position score. Scans every playable cell,
     scoring stones by their neighbourhood. Leaf procedure: t-registers
     only (t6=idx, t7=score), so the callee-saved convention holds. *)
  Asm.proc b "eval" (fun b ->
      Asm.ldi b t6 (Int64.of_int (side + 1));
      Asm.ldi b t7 0L;
      Asm.label b "cell_loop";
      Asm.cmplti b ~dst:t0 t6 (Int64.of_int (cells - side - 1));
      Asm.br b Eq t0 "eval_done";
      Asm.add b ~dst:t1 a0 t6;
      Asm.ld b ~dst:t2 ~base:t1 ~off:0;
      Asm.br b Eq t2 "next_cell";
      (* neighbour sum of an occupied cell *)
      Asm.ld b ~dst:t3 ~base:t1 ~off:1;
      Asm.ld b ~dst:t4 ~base:t1 ~off:(-1);
      Asm.add b ~dst:t3 t3 t4;
      Asm.ld b ~dst:t4 ~base:t1 ~off:side;
      Asm.add b ~dst:t3 t3 t4;
      Asm.ld b ~dst:t4 ~base:t1 ~off:(-side);
      Asm.add b ~dst:t3 t3 t4;
      (* score += stone * (neighbours + 1) *)
      Asm.addi b ~dst:t3 t3 1L;
      Asm.mul b ~dst:t5 t2 t3;
      Asm.add b ~dst:t7 t7 t5;
      Asm.label b "next_cell";
      Asm.addi b ~dst:t6 t6 1L;
      Asm.jmp b "cell_loop";
      Asm.label b "eval_done";
      Asm.mov b ~dst:v0 t7;
      Asm.ret b);

  (* play(moves=a0, n=a1, board=a2): alternate colours, evaluate after
     every move, accumulate scores. s0=i s1=n s2=moves s3=board s4=sum *)
  Asm.proc b "play" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a1;
      Asm.mov b ~dst:s2 a0;
      Asm.mov b ~dst:s3 a2;
      Asm.ldi b s4 0L;
      Asm.label b "move_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "play_done";
      Asm.add b ~dst:t1 s2 s0;
      Asm.ld b ~dst:t2 ~base:t1 ~off:0;
      (* colour = 1 + (i & 1) *)
      Asm.andi b ~dst:t3 s0 1L;
      Asm.addi b ~dst:t3 t3 1L;
      Asm.add b ~dst:t4 s3 t2;
      Asm.st b ~src:t3 ~base:t4 ~off:0;
      Asm.mov b ~dst:a0 s3;
      Asm.call b "eval";
      Asm.add b ~dst:s4 s4 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "move_loop";
      Asm.label b "play_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s4 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s4;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 moves_base;
      Asm.ldi b a1 (Int64.of_int moves);
      Asm.ldi b a2 board;
      Asm.call b "play";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "go";
    wmimics = "099.go (SPEC95)";
    wdescr = "board evaluation over a mostly-empty 9x9 go board";
    wbuild = build;
    wshard = None;
    warities = [ ("eval", 1); ("play", 3) ] }
