(* perl: string hashing and associative-array updates modeled on
   134.perl. A skewed stream of vocabulary words is hashed character by
   character and counted in a probed hash table. Hot behaviour: character
   loads are invariant per vocabulary slot, word lengths are
   semi-invariant, hash-table key loads are skewed. *)

open Isa

let vocab_size = 48
let slot_words = 12 (* vocabulary slot: [0]=len, [1..len]=chars *)
let table_size = 1024

let build input =
  let rng = Workload.rng "perl" input in
  let stream_len = Workload.pick input ~test:2_500 ~train:8_000 in
  let skew = Workload.pick input ~test:1.9 ~train:1.5 in
  let vocab = Array.make (vocab_size * slot_words) 0L in
  for w = 0 to vocab_size - 1 do
    let len = 3 + Rng.int rng 8 in
    vocab.(w * slot_words) <- Int64.of_int len;
    for c = 1 to len do
      vocab.((w * slot_words) + c) <- Int64.of_int (97 + Rng.int rng 26)
    done
  done;
  let stream =
    Array.init stream_len (fun _ ->
        Int64.of_int (Rng.skewed rng ~n:vocab_size ~s:skew))
  in
  let b = Asm.create () in
  let vocab_base = Asm.data b vocab in
  let stream_base = Asm.data b stream in
  let keys = Asm.reserve b table_size in
  let counts = Asm.reserve b table_size in
  let result = Asm.reserve b 2 in

  (* hash_word(chars=a0, len=a1) -> v0. Leaf: h = h*131 + c over chars. *)
  Asm.proc b "hash_word" (fun b ->
      Asm.ldi b t0 5381L;
      Asm.ldi b t1 0L;
      Asm.label b "char_loop";
      Asm.sub b ~dst:t2 t1 a1;
      Asm.br b Ge t2 "hash_done";
      Asm.add b ~dst:t3 a0 t1;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.muli b ~dst:t0 t0 131L;
      Asm.add b ~dst:t0 t0 t4;
      Asm.addi b ~dst:t1 t1 1L;
      Asm.jmp b "char_loop";
      Asm.label b "hash_done";
      Asm.andi b ~dst:v0 t0 0x7FFFFFFFL;
      Asm.ret b);

  (* bump(hash=a0) -> v0 = updated count. Leaf: linear probing. *)
  Asm.proc b "bump" (fun b ->
      Asm.andi b ~dst:t0 a0 (Int64.of_int (table_size - 1));
      Asm.ldi b t1 keys;
      Asm.label b "bump_probe";
      Asm.add b ~dst:t2 t1 t0;
      Asm.ld b ~dst:t3 ~base:t2 ~off:0;
      Asm.br b Eq t3 "bump_claim";
      Asm.sub b ~dst:t4 t3 a0;
      Asm.br b Eq t4 "bump_hit";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.andi b ~dst:t0 t0 (Int64.of_int (table_size - 1));
      Asm.jmp b "bump_probe";
      Asm.label b "bump_claim";
      Asm.st b ~src:a0 ~base:t2 ~off:0;
      Asm.label b "bump_hit";
      Asm.ldi b t5 counts;
      Asm.add b ~dst:t6 t5 t0;
      Asm.ld b ~dst:t7 ~base:t6 ~off:0;
      Asm.addi b ~dst:t7 t7 1L;
      Asm.st b ~src:t7 ~base:t6 ~off:0;
      Asm.mov b ~dst:v0 t7;
      Asm.ret b);

  (* scan(stream=a0, n=a1, vocab=a2): hash and count every word.
     s0=i s1=n s2=stream s3=vocab s4=total *)
  Asm.proc b "scan" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a1;
      Asm.mov b ~dst:s2 a0;
      Asm.mov b ~dst:s3 a2;
      Asm.ldi b s4 0L;
      Asm.label b "word_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "scan_done";
      Asm.add b ~dst:t1 s2 s0;
      Asm.ld b ~dst:t2 ~base:t1 ~off:0;
      Asm.muli b ~dst:t3 t2 (Int64.of_int slot_words);
      Asm.add b ~dst:t3 s3 t3;
      Asm.ld b ~dst:a1 ~base:t3 ~off:0;
      Asm.addi b ~dst:a0 t3 1L;
      Asm.call b "hash_word";
      Asm.mov b ~dst:a0 v0;
      Asm.call b "bump";
      Asm.add b ~dst:s4 s4 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "word_loop";
      Asm.label b "scan_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s4 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s4;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 stream_base;
      Asm.ldi b a1 (Int64.of_int stream_len);
      Asm.ldi b a2 vocab_base;
      Asm.call b "scan";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "perl";
    wmimics = "134.perl (SPEC95)";
    wdescr = "string hashing and associative-array counting";
    wbuild = build;
    wshard = None;
    warities = [ ("hash_word", 2); ("bump", 1); ("scan", 3) ] }
