(* cc: a table-driven "parser" modeled on 126.gcc's token dispatch.
   Hot behaviour: a jump table of handler addresses (indirect calls whose
   target loads are invariant per slot), a heavily skewed token-kind
   stream, and per-handler counters. *)

open Isa

let kinds = 16
let handlers = [| "h_ident"; "h_num"; "h_op"; "h_kw"; "h_str"; "h_punct" |]

let build input =
  let rng = Workload.rng "cc" input in
  let n = Workload.pick input ~test:6_000 ~train:20_000 in
  let skew = Workload.pick input ~test:2.2 ~train:1.8 in
  let kind_stream =
    Array.init n (fun _ -> Int64.of_int (Rng.skewed rng ~n:kinds ~s:skew))
  in
  let value_stream =
    Array.init n (fun _ -> Int64.of_int (1 + Rng.int rng 1000))
  in
  let b = Asm.create () in
  let kinds_base = Asm.data b kind_stream in
  let values_base = Asm.data b value_stream in
  let table = Asm.reserve b kinds in
  (* one counter + one accumulator per handler *)
  let counters = Asm.reserve b (Array.length handlers * 2) in

  (* Each handler: bump its counter, fold the token value into its
     accumulator with a handler-specific flavour. *)
  let handler name index body =
    Asm.proc b name (fun b ->
        Asm.ldi b t0 counters;
        Asm.ld b ~dst:t1 ~base:t0 ~off:(2 * index);
        Asm.addi b ~dst:t1 t1 1L;
        Asm.st b ~src:t1 ~base:t0 ~off:(2 * index);
        Asm.ld b ~dst:t2 ~base:t0 ~off:((2 * index) + 1);
        body b;
        Asm.st b ~src:t2 ~base:t0 ~off:((2 * index) + 1);
        Asm.ret b)
  in
  handler "h_ident" 0 (fun b ->
      Asm.muli b ~dst:t3 a0 131L;
      Asm.add b ~dst:t2 t2 t3);
  handler "h_num" 1 (fun b -> Asm.add b ~dst:t2 t2 a0);
  handler "h_op" 2 (fun b -> Asm.xor b ~dst:t2 t2 a0);
  handler "h_kw" 3 (fun b -> Asm.addi b ~dst:t2 t2 7L);
  handler "h_str" 4 (fun b ->
      Asm.slli b ~dst:t3 a0 1L;
      Asm.add b ~dst:t2 t2 t3);
  handler "h_punct" 5 (fun b -> Asm.addi b ~dst:t2 t2 1L);

  (* parse(n=a0, kinds=a1, values=a2): dispatch every token through the
     jump table. s0=i s1=n s2=kinds s3=values s4=table *)
  Asm.proc b "parse" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.mov b ~dst:s2 a1;
      Asm.mov b ~dst:s3 a2;
      Asm.ldi b s4 table;
      Asm.label b "token_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "parse_done";
      Asm.add b ~dst:t1 s2 s0;
      Asm.ld b ~dst:t2 ~base:t1 ~off:0;
      Asm.add b ~dst:t3 s4 t2;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t5 s3 s0;
      Asm.ld b ~dst:a0 ~base:t5 ~off:0;
      Asm.call_ind b t4;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "token_loop";
      Asm.label b "parse_done";
      Asm.ldi b t0 counters;
      Asm.ld b ~dst:v0 ~base:t0 ~off:1;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      (* fill the dispatch table: kind k is handled by handlers.(k mod 6) *)
      Asm.ldi b t0 table;
      for k = 0 to kinds - 1 do
        Asm.code_addr_of b ~dst:t1 handlers.(k mod Array.length handlers);
        Asm.st b ~src:t1 ~base:t0 ~off:k
      done;
      Asm.ldi b a0 (Int64.of_int n);
      Asm.ldi b a1 kinds_base;
      Asm.ldi b a2 values_base;
      Asm.call b "parse";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "cc";
    wmimics = "126.gcc (SPEC95)";
    wdescr = "table-driven token dispatch through indirect calls";
    wbuild = build;
    wshard = None;
    warities =
      [ ("parse", 3); ("h_ident", 1); ("h_num", 1); ("h_op", 1); ("h_kw", 1);
        ("h_str", 1); ("h_punct", 1) ] }
