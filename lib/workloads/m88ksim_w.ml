(* m88ksim: a processor simulator simulating a small embedded program,
   modeled on 124.m88ksim. The flagship specialization target of the
   thesis: the execute procedure's opcode argument is semi-invariant
   because the guest program is ADD-heavy, and the instruction-fetch load
   sees only the handful of guest instruction words. *)

open Isa

(* Guest encoding: op*2^24 + rd*2^16 + field, field = rs or a 16-bit
   immediate. *)
let enc op rd field =
  assert (field >= 0 && field < 65536);
  Int64.of_int ((op * 16777216) + (rd * 65536) + field)

let op_add = 1 (* regs[rd] <- regs[rd] + regs[rs] *)
let op_addi = 2 (* regs[rd] <- regs[rd] + imm *)
let op_shr = 3 (* regs[rd] <- regs[rd] >> (regs[rs] & 7) *)
let op_subi = 4 (* regs[rd] <- regs[rd] - imm *)
let op_bnz = 5 (* if regs[rd] <> 0 then pc <- imm *)
let op_halt = 6

(* ADD-heavy guest loop: r1 = iteration counter, r2..r6 accumulate. *)
let guest_program iterations =
  [| enc op_addi 1 iterations;  (* 0: r1 = n *)
     enc op_addi 2 3;           (* 1: r2 = 3 *)
     enc op_addi 7 2;           (* 2: r7 = 2 (shift amount) *)
     (* loop body at 3 *)
     enc op_add 3 2;            (* 3: r3 += r2 *)
     enc op_add 4 3;            (* 4: r4 += r3 *)
     enc op_add 5 4;            (* 5: r5 += r4 *)
     enc op_add 6 5;            (* 6: r6 += r5 *)
     enc op_add 2 6;            (* 7: r2 += r6 *)
     enc op_shr 2 7;            (* 8: r2 >>= 2, keeps magnitudes sane *)
     enc op_subi 1 1;           (* 9: r1 -= 1 *)
     enc op_bnz 1 3;            (* 10: loop while r1 <> 0 *)
     enc op_halt 0 0 |]         (* 11 *)

let build input =
  let iterations = Workload.pick input ~test:180 ~train:650 in
  let b = Asm.create () in
  let code_base = Asm.data b (guest_program iterations) in
  let gregs = Asm.reserve b 16 in
  let decode_out = Asm.reserve b 2 (* [0]=rd, [1]=field *) in
  let result = Asm.reserve b 2 in

  (* decode(word=a0) -> v0 = opcode; rd and field go to decode_out. Leaf. *)
  Asm.proc b "decode" (fun b ->
      Asm.srli b ~dst:v0 a0 24L;
      Asm.srli b ~dst:t0 a0 16L;
      Asm.andi b ~dst:t0 t0 255L;
      Asm.andi b ~dst:t1 a0 65535L;
      Asm.ldi b t2 decode_out;
      Asm.st b ~src:t0 ~base:t2 ~off:0;
      Asm.st b ~src:t1 ~base:t2 ~off:1;
      Asm.ret b);

  (* execute(op=a0, rd=a1, field=a2, pc=a3) -> v0 = next pc. Leaf. The
     dispatch chain tests the frequent ADD opcode last, so a version
     specialized on op=ADD eliminates the whole chain — the thesis's
     specialization case study. *)
  Asm.proc b "execute" (fun b ->
      Asm.ldi b t0 gregs;
      Asm.add b ~dst:t1 t0 a1; (* &regs[rd] *)
      Asm.cmpeqi b ~dst:t2 a0 (Int64.of_int op_addi);
      Asm.br b Ne t2 "x_addi";
      Asm.cmpeqi b ~dst:t2 a0 (Int64.of_int op_shr);
      Asm.br b Ne t2 "x_shr";
      Asm.cmpeqi b ~dst:t2 a0 (Int64.of_int op_subi);
      Asm.br b Ne t2 "x_subi";
      Asm.cmpeqi b ~dst:t2 a0 (Int64.of_int op_bnz);
      Asm.br b Ne t2 "x_bnz";
      Asm.cmpeqi b ~dst:t2 a0 (Int64.of_int op_add);
      Asm.br b Ne t2 "x_add";
      (* halt: signal with next pc = -1 *)
      Asm.ldi b v0 (-1L);
      Asm.ret b;
      Asm.label b "x_add";
      Asm.add b ~dst:t3 t0 a2;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      Asm.add b ~dst:t5 t5 t4;
      Asm.st b ~src:t5 ~base:t1 ~off:0;
      Asm.addi b ~dst:v0 a3 1L;
      Asm.ret b;
      Asm.label b "x_addi";
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      Asm.add b ~dst:t5 t5 a2;
      Asm.st b ~src:t5 ~base:t1 ~off:0;
      Asm.addi b ~dst:v0 a3 1L;
      Asm.ret b;
      Asm.label b "x_shr";
      Asm.add b ~dst:t3 t0 a2;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.andi b ~dst:t4 t4 7L;
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      Asm.srl b ~dst:t5 t5 t4;
      Asm.st b ~src:t5 ~base:t1 ~off:0;
      Asm.addi b ~dst:v0 a3 1L;
      Asm.ret b;
      Asm.label b "x_subi";
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      Asm.sub b ~dst:t5 t5 a2;
      Asm.st b ~src:t5 ~base:t1 ~off:0;
      Asm.addi b ~dst:v0 a3 1L;
      Asm.ret b;
      Asm.label b "x_bnz";
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      Asm.br b Ne t5 "x_bnz_taken";
      Asm.addi b ~dst:v0 a3 1L;
      Asm.ret b;
      Asm.label b "x_bnz_taken";
      Asm.mov b ~dst:v0 a2;
      Asm.ret b);

  (* simulate(code=a0) -> v0 = guest r6 at halt. s0=guest pc, s1=code,
     s2=retired instruction count. *)
  Asm.proc b "simulate" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.ldi b s2 0L;
      Asm.label b "cycle";
      Asm.add b ~dst:t0 s1 s0;
      Asm.ld b ~dst:a0 ~base:t0 ~off:0; (* fetch *)
      Asm.call b "decode";
      Asm.mov b ~dst:a0 v0;
      Asm.ldi b t1 decode_out;
      Asm.ld b ~dst:a1 ~base:t1 ~off:0;
      Asm.ld b ~dst:a2 ~base:t1 ~off:1;
      Asm.mov b ~dst:a3 s0;
      Asm.call b "execute";
      Asm.addi b ~dst:s2 s2 1L;
      Asm.br b Lt v0 "sim_done"; (* execute returned -1: guest halted *)
      Asm.mov b ~dst:s0 v0;
      Asm.jmp b "cycle";
      Asm.label b "sim_done";
      Asm.ldi b t0 gregs;
      Asm.ld b ~dst:t1 ~base:t0 ~off:6;
      Asm.ldi b t2 result;
      Asm.st b ~src:t1 ~base:t2 ~off:0;
      Asm.st b ~src:s2 ~base:t2 ~off:1;
      Asm.mov b ~dst:v0 t1;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 code_base;
      Asm.call b "simulate";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "m88ksim";
    wmimics = "124.m88ksim (SPEC95)";
    wdescr = "CPU simulator running an ADD-heavy guest loop";
    wbuild = build;
    wshard = None;
    warities = [ ("decode", 1); ("execute", 4); ("simulate", 1) ] }
