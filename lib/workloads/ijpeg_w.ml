(* ijpeg: 8x8 integer transform + quantization modeled on 132.ijpeg.
   Hot behaviour: coefficient- and quantization-table loads are perfectly
   invariant per location (constant tables), pixel loads vary — exactly
   the split the paper highlights for image codecs. *)

open Isa

let block = 8

let build input =
  let rng = Workload.rng "ijpeg" input in
  let width = Workload.pick input ~test:32 ~train:64 in
  let height = Workload.pick input ~test:32 ~train:48 in
  let image =
    Array.init (width * height) (fun _ -> Int64.of_int (Rng.int rng 256))
  in
  (* integer "cosine" table: deterministic pseudo-coefficients in [-32,31] *)
  let coef =
    Array.init (block * block) (fun i ->
        Int64.of_int ((((i * 2654435761) lsr 7) mod 64) - 32))
  in
  let quant =
    Array.init block (fun i -> Int64.of_int (1 + ((i * 5) mod 13)))
  in
  let b = Asm.create () in
  let image_base = Asm.data b image in
  let coef_base = Asm.data b coef in
  let quant_base = Asm.data b quant in
  let tmp_in = Asm.reserve b block in
  let tmp_out = Asm.reserve b block in
  let result = Asm.reserve b 2 in

  (* dct8(in=a0, out=a1): out[u] = (sum_x in[x]*coef[u*8+x]) >> 6.
     Leaf procedure: t-registers only (t7=u). *)
  Asm.proc b "dct8" (fun b ->
      Asm.ldi b t7 0L;
      Asm.label b "u_loop";
      Asm.cmplti b ~dst:t0 t7 (Int64.of_int block);
      Asm.br b Eq t0 "dct_done";
      Asm.ldi b t1 0L; (* acc *)
      Asm.ldi b t2 0L; (* x *)
      Asm.muli b ~dst:t3 t7 (Int64.of_int block);
      Asm.label b "x_loop";
      Asm.cmplti b ~dst:t0 t2 (Int64.of_int block);
      Asm.br b Eq t0 "x_done";
      Asm.add b ~dst:t4 a0 t2;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.add b ~dst:t4 t3 t2;
      Asm.ldi b t6 coef_base;
      Asm.add b ~dst:t4 t6 t4;
      Asm.ld b ~dst:t6 ~base:t4 ~off:0;
      Asm.mul b ~dst:t5 t5 t6;
      Asm.add b ~dst:t1 t1 t5;
      Asm.addi b ~dst:t2 t2 1L;
      Asm.jmp b "x_loop";
      Asm.label b "x_done";
      Asm.srai b ~dst:t1 t1 6L;
      Asm.add b ~dst:t4 a1 t7;
      Asm.st b ~src:t1 ~base:t4 ~off:0;
      Asm.addi b ~dst:t7 t7 1L;
      Asm.jmp b "u_loop";
      Asm.label b "dct_done";
      Asm.ret b);

  (* quant8(buf=a0) -> v0 = row checksum. buf[i] <- buf[i] / quant[i]. *)
  Asm.proc b "quant8" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 quant_base;
      Asm.ldi b t6 0L;
      Asm.label b "q_loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int block);
      Asm.br b Eq t2 "q_done";
      Asm.add b ~dst:t3 a0 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t5 t1 t0;
      Asm.ld b ~dst:t5 ~base:t5 ~off:0;
      Asm.div b ~dst:t4 t4 t5;
      Asm.st b ~src:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t6 t6 t4;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "q_loop";
      Asm.label b "q_done";
      Asm.mov b ~dst:v0 t6;
      Asm.ret b);

  (* encode(img=a0, w=a1, h=a2): run dct8+quant8 over every 8-pixel row
     segment of every 8x8 block. s0=row s1=img s2=w s3=h s4=checksum s5=col *)
  Asm.proc b "encode" (fun b ->
      Asm.mov b ~dst:s1 a0;
      Asm.mov b ~dst:s2 a1;
      Asm.mov b ~dst:s3 a2;
      Asm.ldi b s0 0L;
      Asm.ldi b s4 0L;
      Asm.label b "row_loop";
      Asm.sub b ~dst:t0 s0 s3;
      Asm.br b Ge t0 "encode_done";
      Asm.ldi b s5 0L;
      Asm.label b "col_loop";
      Asm.sub b ~dst:t0 s5 s2;
      Asm.br b Ge t0 "row_next";
      (* copy the 8-pixel segment into tmp_in *)
      Asm.mul b ~dst:t1 s0 s2;
      Asm.add b ~dst:t1 t1 s5;
      Asm.add b ~dst:t1 t1 s1;
      Asm.ldi b t2 tmp_in;
      for i = 0 to block - 1 do
        Asm.ld b ~dst:t3 ~base:t1 ~off:i;
        Asm.st b ~src:t3 ~base:t2 ~off:i
      done;
      Asm.ldi b a0 tmp_in;
      Asm.ldi b a1 tmp_out;
      Asm.call b "dct8";
      Asm.ldi b a0 tmp_out;
      Asm.call b "quant8";
      Asm.add b ~dst:s4 s4 v0;
      Asm.addi b ~dst:s5 s5 (Int64.of_int block);
      Asm.jmp b "col_loop";
      Asm.label b "row_next";
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "row_loop";
      Asm.label b "encode_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s4 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s4;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 image_base;
      Asm.ldi b a1 (Int64.of_int width);
      Asm.ldi b a2 (Int64.of_int height);
      Asm.call b "encode";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "ijpeg";
    wmimics = "132.ijpeg (SPEC95)";
    wdescr = "8x8 integer transform and quantization with constant tables";
    wbuild = build;
    wshard = None;
    warities = [ ("dct8", 2); ("quant8", 1); ("encode", 3) ] }
