(* fpppp: dense fixed-point linear algebra modeled on 145.fpppp (quantum
   chemistry: enormous straight-line basic blocks over small dense data).
   A fixed "integral table" feeds repeated matrix-vector products; the
   table loads are perfectly invariant per location, and the scale helper
   is called from two sites with site-constant shift amounts. *)

open Isa

let dim = 12

let build input =
  let rng = Workload.rng "fpppp" input in
  let sweeps = Workload.pick input ~test:60 ~train:200 in
  let matrix =
    Array.init (dim * dim) (fun _ -> Int64.of_int (Rng.int rng 512 - 256))
  in
  let vector0 = Array.init dim (fun _ -> Int64.of_int (Rng.int rng 1024)) in
  let b = Asm.create () in
  let matrix_base = Asm.data b matrix in
  let vec_a = Asm.data b vector0 in
  let vec_b = Asm.reserve b dim in
  let result = Asm.reserve b 1 in

  (* matvec(m=a0, x=a1, y=a2): y = m * x over the fixed dim. Leaf. *)
  Asm.proc b "matvec" (fun b ->
      Asm.ldi b t6 0L; (* row *)
      Asm.label b "mv_row";
      Asm.cmplti b ~dst:t0 t6 (Int64.of_int dim);
      Asm.br b Eq t0 "mv_done";
      Asm.ldi b t1 0L; (* acc *)
      Asm.ldi b t2 0L; (* col *)
      Asm.muli b ~dst:t7 t6 (Int64.of_int dim);
      Asm.label b "mv_col";
      Asm.cmplti b ~dst:t0 t2 (Int64.of_int dim);
      Asm.br b Eq t0 "mv_store";
      Asm.add b ~dst:t3 t7 t2;
      Asm.add b ~dst:t3 a0 t3;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t5 a1 t2;
      Asm.ld b ~dst:t5 ~base:t5 ~off:0;
      Asm.mul b ~dst:t4 t4 t5;
      Asm.add b ~dst:t1 t1 t4;
      Asm.addi b ~dst:t2 t2 1L;
      Asm.jmp b "mv_col";
      Asm.label b "mv_store";
      Asm.add b ~dst:t3 a2 t6;
      Asm.st b ~src:t1 ~base:t3 ~off:0;
      Asm.addi b ~dst:t6 t6 1L;
      Asm.jmp b "mv_row";
      Asm.label b "mv_done";
      Asm.ret b);

  (* scale(v=a0, shift=a1) -> v0 = checksum: v[i] <- v[i] >> shift,
     clamped non-negative. Leaf. *)
  Asm.proc b "scale" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 0L;
      Asm.label b "sc_loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int dim);
      Asm.br b Eq t2 "sc_done";
      Asm.add b ~dst:t3 a0 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.sra b ~dst:t4 t4 a1;
      Asm.br b Ge t4 "sc_pos";
      Asm.sub b ~dst:t4 zero_reg t4;
      Asm.label b "sc_pos";
      Asm.st b ~src:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t1 t1 t4;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "sc_loop";
      Asm.label b "sc_done";
      Asm.mov b ~dst:v0 t1;
      Asm.ret b);

  (* sweep(n=a0): ping-pong matvec between the two vectors, rescaling
     with site-specific shifts so magnitudes stay bounded.
     s0=i s1=n s2=checksum *)
  Asm.proc b "sweep" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.ldi b s2 0L;
      Asm.label b "sw_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "sw_done";
      Asm.ldi b a0 matrix_base;
      Asm.ldi b a1 vec_a;
      Asm.ldi b a2 vec_b;
      Asm.call b "matvec";
      (* site 1: aggressive rescale of the fresh vector *)
      Asm.ldi b a0 vec_b;
      Asm.ldi b a1 9L;
      Asm.call b "scale";
      Asm.add b ~dst:s2 s2 v0;
      Asm.ldi b a0 matrix_base;
      Asm.ldi b a1 vec_b;
      Asm.ldi b a2 vec_a;
      Asm.call b "matvec";
      (* site 2: gentler rescale on the way back *)
      Asm.ldi b a0 vec_a;
      Asm.ldi b a1 8L;
      Asm.call b "scale";
      Asm.add b ~dst:s2 s2 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "sw_loop";
      Asm.label b "sw_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s2 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s2;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 (Int64.of_int sweeps);
      Asm.call b "sweep";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "fpppp";
    wmimics = "145.fpppp (SPEC95 FP)";
    wdescr = "dense matrix-vector sweeps over a fixed integral table";
    wbuild = build;
    wshard = None;
    warities = [ ("matvec", 3); ("scale", 2); ("sweep", 1) ] }
