(* vortex: an object-database kernel modeled on 147.vortex. Records with
   a type tag live in per-type linked lists; queries traverse a list and
   dispatch a type-specific method through a table of code addresses. Hot
   behaviour: type-field loads take one of three values (highly
   invariant), method-table loads are invariant per slot, next-pointer
   loads are variant. *)

open Isa

let record_words = 8
let types = 3

let build input =
  let rng = Workload.rng "vortex" input in
  let n_records = Workload.pick input ~test:96 ~train:256 in
  let n_queries = Workload.pick input ~test:420 ~train:1_400 in
  (* Lay the records out in OCaml, building the per-type chains. *)
  let record_base = 0x1_0000 in
  (* (matches Asm data placement below; asserted after allocation) *)
  let records = Array.make (n_records * record_words) 0L in
  let heads = Array.make (types + 1) 0L in
  let rec_addr i = Int64.of_int (record_base + (i * record_words)) in
  let type_of = Array.init n_records (fun _ -> 1 + Rng.skewed rng ~n:types ~s:1.5) in
  let keys = Array.init n_records (fun i -> Int64.of_int ((i * 37) + 11)) in
  for i = n_records - 1 downto 0 do
    let t = type_of.(i) in
    records.(i * record_words) <- Int64.of_int t;
    records.((i * record_words) + 1) <- keys.(i);
    records.((i * record_words) + 2) <- Int64.of_int (Rng.int rng 1000);
    records.((i * record_words) + 3) <- heads.(t);
    heads.(t) <- rec_addr i
  done;
  (* Queries pick a type (skewed) and a key of that type where possible. *)
  let keys_of_type t =
    Array.of_list
      (List.filter_map
         (fun i -> if type_of.(i) = t then Some keys.(i) else None)
         (List.init n_records Fun.id))
  in
  let per_type_keys = Array.init (types + 1) (fun t -> if t = 0 then [||] else keys_of_type t) in
  let q_type = Array.make n_queries 0L in
  let q_key = Array.make n_queries 0L in
  for q = 0 to n_queries - 1 do
    let t = 1 + Rng.skewed rng ~n:types ~s:1.8 in
    q_type.(q) <- Int64.of_int t;
    let ks = per_type_keys.(t) in
    q_key.(q) <-
      (if Array.length ks = 0 || Rng.int rng 10 = 0 then 999_999L (* miss *)
       else Rng.choose rng ks)
  done;
  let b = Asm.create () in
  let records_base = Asm.data b records in
  assert (Int64.to_int records_base = record_base);
  let heads_base = Asm.data b heads in
  let qt_base = Asm.data b q_type in
  let qk_base = Asm.data b q_key in
  let method_table = Asm.reserve b (types + 1) in
  let result = Asm.reserve b 2 in

  (* find(head=a0, key=a1) -> v0 = record address or 0. Leaf. *)
  Asm.proc b "find" (fun b ->
      Asm.mov b ~dst:t0 a0;
      Asm.label b "walk";
      Asm.br b Eq t0 "find_done";
      Asm.ld b ~dst:t1 ~base:t0 ~off:1;
      Asm.sub b ~dst:t2 t1 a1;
      Asm.br b Eq t2 "find_done";
      Asm.ld b ~dst:t0 ~base:t0 ~off:3;
      Asm.jmp b "walk";
      Asm.label b "find_done";
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);

  (* The three methods update a found record's value field differently. *)
  Asm.proc b "m_alpha" (fun b ->
      Asm.ld b ~dst:t0 ~base:a0 ~off:2;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.st b ~src:t0 ~base:a0 ~off:2;
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);
  Asm.proc b "m_beta" (fun b ->
      Asm.ld b ~dst:t0 ~base:a0 ~off:2;
      Asm.slli b ~dst:t1 t0 1L;
      Asm.xor b ~dst:t0 t0 t1;
      Asm.andi b ~dst:t0 t0 0xFFFFL;
      Asm.st b ~src:t0 ~base:a0 ~off:2;
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);
  Asm.proc b "m_gamma" (fun b ->
      Asm.ld b ~dst:t0 ~base:a0 ~off:2;
      Asm.muli b ~dst:t0 t0 3L;
      Asm.remi b ~dst:t0 t0 8191L;
      Asm.st b ~src:t0 ~base:a0 ~off:2;
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);

  (* query(qt=a0, qk=a1, n=a2): run every query.
     s0=i s1=n s2=qt s3=qk s4=found-count s5=value-accumulator *)
  Asm.proc b "query" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a2;
      Asm.mov b ~dst:s2 a0;
      Asm.mov b ~dst:s3 a1;
      Asm.ldi b s4 0L;
      Asm.ldi b s5 0L;
      Asm.label b "q_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "q_done";
      Asm.add b ~dst:t1 s2 s0;
      Asm.ld b ~dst:t2 ~base:t1 ~off:0; (* type *)
      Asm.ldi b t3 heads_base;
      Asm.add b ~dst:t3 t3 t2;
      Asm.ld b ~dst:a0 ~base:t3 ~off:0; (* head of chain *)
      Asm.add b ~dst:t4 s3 s0;
      Asm.ld b ~dst:a1 ~base:t4 ~off:0; (* key *)
      Asm.call b "find";
      Asm.br b Eq v0 "q_next";
      Asm.addi b ~dst:s4 s4 1L;
      (* dispatch on the record's type through the method table *)
      Asm.ld b ~dst:t5 ~base:v0 ~off:0;
      Asm.ldi b t6 method_table;
      Asm.add b ~dst:t6 t6 t5;
      Asm.ld b ~dst:t7 ~base:t6 ~off:0;
      Asm.mov b ~dst:a0 v0;
      Asm.call_ind b t7;
      Asm.add b ~dst:s5 s5 v0;
      Asm.label b "q_next";
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "q_loop";
      Asm.label b "q_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s4 ~base:t0 ~off:0;
      Asm.st b ~src:s5 ~base:t0 ~off:1;
      Asm.mov b ~dst:v0 s5;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 method_table;
      Asm.code_addr_of b ~dst:t1 "m_alpha";
      Asm.st b ~src:t1 ~base:t0 ~off:1;
      Asm.code_addr_of b ~dst:t1 "m_beta";
      Asm.st b ~src:t1 ~base:t0 ~off:2;
      Asm.code_addr_of b ~dst:t1 "m_gamma";
      Asm.st b ~src:t1 ~base:t0 ~off:3;
      Asm.ldi b a0 qt_base;
      Asm.ldi b a1 qk_base;
      Asm.ldi b a2 (Int64.of_int n_queries);
      Asm.call b "query";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "vortex";
    wmimics = "147.vortex (SPEC95)";
    wdescr = "object database: typed linked lists with method dispatch";
    wbuild = build;
    wshard = None;
    warities =
      [ ("find", 2); ("m_alpha", 1); ("m_beta", 1); ("m_gamma", 1);
        ("query", 3) ] }
