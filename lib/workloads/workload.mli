(** Workload descriptors.

    Each workload is a program for the virtual machine that mimics the
    hot-loop structure and value behaviour of one SPEC95 benchmark the
    thesis profiled, and comes with the thesis's two input sets ([Test] and
    [Train]) so the cross-input experiments (Table V.5) can compare
    profiles. Inputs differ in both size and random seed — [Train] inputs
    are larger and differently distributed, never identical runs. *)

type input = Test | Train

val string_of_input : input -> string

(** Raises [Invalid_argument] on unknown names. *)
val input_of_string : string -> input

type t = {
  wname : string;  (** short name used by the CLI and tables *)
  wmimics : string;  (** the SPEC95 program it is modeled on *)
  wdescr : string;
  wbuild : input -> Asm.program;
  wshard : (input -> int -> Asm.program list) option;
      (** [wshard input k], when the workload is data-driven enough to
          support it, splits the input into at most [k] chunk programs
          whose concatenated data streams equal [wbuild input]'s, all
          sharing [wbuild]'s exact code layout (same pcs; only data
          differs) so per-pc profile merging is meaningful. [None] means
          the driver falls back to fuel-sliced sharding of the single
          [wbuild] program. *)
  warities : (string * int) list;
      (** procedure name → argument count, for procedure profiling *)
}

(** Helpers shared by workload builders. *)

(** [pick input ~test ~train]. *)
val pick : input -> test:'a -> train:'a -> 'a

(** Deterministic RNG seeded from workload name and input. *)
val rng : string -> input -> Rng.t
