(* swim: a five-point stencil relaxation modeled on 102.swim (shallow
   water). Coefficient loads are invariant, halo cells stay zero, and
   interior values converge — load invariance grows over iterations, the
   behaviour the paper reports for regular FP codes. *)

open Isa

let build input =
  let rng = Workload.rng "swim" input in
  let interior = Workload.pick input ~test:24 ~train:32 in
  let iterations = Workload.pick input ~test:10 ~train:22 in
  let side = interior + 2 (* halo *) in
  let cells = side * side in
  let grid0 = Array.make cells 0L in
  for r = 1 to interior do
    for c = 1 to interior do
      grid0.((r * side) + c) <- Int64.of_int (Rng.int rng 4096)
    done
  done;
  (* c0..c2: centre, cross, and damping coefficients *)
  let coefs = [| 60L; 9L; 4L |] in
  let b = Asm.create () in
  let grid_a = Asm.data b grid0 in
  let grid_b = Asm.reserve b cells in
  let coef_base = Asm.data b coefs in
  let result = Asm.reserve b 1 in

  (* stencil(src=a0, dst=a1) over the fixed grid. Leaf: t-registers only
     (t6=row, t7=col). dst[i] = (c0*src[i] + c1*cross - c2) >> 6. *)
  Asm.proc b "stencil" (fun b ->
      Asm.ldi b t6 1L;
      Asm.label b "s_row";
      Asm.cmplei b ~dst:t0 t6 (Int64.of_int interior);
      Asm.br b Eq t0 "s_done";
      Asm.ldi b t7 1L;
      Asm.label b "s_col";
      Asm.cmplei b ~dst:t0 t7 (Int64.of_int interior);
      Asm.br b Eq t0 "s_row_next";
      Asm.muli b ~dst:t0 t6 (Int64.of_int side);
      Asm.add b ~dst:t0 t0 t7;
      Asm.add b ~dst:t1 a0 t0; (* &src[r][c] *)
      (* cross = N + S + E + W *)
      Asm.ld b ~dst:t2 ~base:t1 ~off:(-side);
      Asm.ld b ~dst:t3 ~base:t1 ~off:side;
      Asm.add b ~dst:t2 t2 t3;
      Asm.ld b ~dst:t3 ~base:t1 ~off:(-1);
      Asm.add b ~dst:t2 t2 t3;
      Asm.ld b ~dst:t3 ~base:t1 ~off:1;
      Asm.add b ~dst:t2 t2 t3;
      (* centre and coefficients *)
      Asm.ld b ~dst:t3 ~base:t1 ~off:0;
      Asm.ldi b t4 coef_base;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.mul b ~dst:t3 t3 t5;
      Asm.ld b ~dst:t5 ~base:t4 ~off:1;
      Asm.mul b ~dst:t2 t2 t5;
      Asm.add b ~dst:t3 t3 t2;
      Asm.ld b ~dst:t5 ~base:t4 ~off:2;
      Asm.sub b ~dst:t3 t3 t5;
      Asm.srai b ~dst:t3 t3 6L;
      (* clamp negatives to zero so the field stays physical *)
      Asm.br b Ge t3 "s_store";
      Asm.ldi b t3 0L;
      Asm.label b "s_store";
      Asm.add b ~dst:t1 a1 t0;
      Asm.st b ~src:t3 ~base:t1 ~off:0;
      Asm.addi b ~dst:t7 t7 1L;
      Asm.jmp b "s_col";
      Asm.label b "s_row_next";
      Asm.addi b ~dst:t6 t6 1L;
      Asm.jmp b "s_row";
      Asm.label b "s_done";
      Asm.ret b);

  (* checksum(grid=a0) -> v0. Leaf. *)
  Asm.proc b "checksum" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 0L;
      Asm.label b "ck_loop";
      Asm.cmplti b ~dst:t2 t1 (Int64.of_int cells);
      Asm.br b Eq t2 "ck_done";
      Asm.add b ~dst:t3 a0 t1;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.muli b ~dst:t0 t0 31L;
      Asm.add b ~dst:t0 t0 t4;
      Asm.addi b ~dst:t1 t1 1L;
      Asm.jmp b "ck_loop";
      Asm.label b "ck_done";
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);

  (* relax(iters=a0): ping-pong between the two grids.
     s0=iteration s1=iters s2=src s3=dst *)
  Asm.proc b "relax" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.ldi b s2 grid_a;
      Asm.ldi b s3 grid_b;
      Asm.label b "iter_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "relax_done";
      Asm.mov b ~dst:a0 s2;
      Asm.mov b ~dst:a1 s3;
      Asm.call b "stencil";
      (* swap src and dst *)
      Asm.mov b ~dst:t1 s2;
      Asm.mov b ~dst:s2 s3;
      Asm.mov b ~dst:s3 t1;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "iter_loop";
      Asm.label b "relax_done";
      Asm.mov b ~dst:a0 s2;
      Asm.call b "checksum";
      Asm.ldi b t0 result;
      Asm.st b ~src:v0 ~base:t0 ~off:0;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 (Int64.of_int iterations);
      Asm.call b "relax";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "swim";
    wmimics = "102.swim (SPEC95 FP)";
    wdescr = "five-point stencil relaxation with constant coefficients";
    wbuild = build;
    wshard = None;
    warities = [ ("stencil", 2); ("checksum", 1); ("relax", 1) ] }
