type input = Test | Train

let string_of_input = function Test -> "test" | Train -> "train"

let input_of_string = function
  | "test" -> Test
  | "train" -> Train
  | s -> invalid_arg (Printf.sprintf "Workload.input_of_string: %S" s)

type t = {
  wname : string;
  wmimics : string;
  wdescr : string;
  wbuild : input -> Asm.program;
  wshard : (input -> int -> Asm.program list) option;
  warities : (string * int) list;
}

let pick input ~test ~train = match input with Test -> test | Train -> train

let rng name input =
  let h = Hashtbl.hash (name, string_of_input input) in
  Rng.create (Int64.of_int (h + 0x5157))
