(* tomcatv: vectorized mesh generation modeled on 101.tomcatv. Two
   coordinate planes are relaxed with a scaled-accumulate helper invoked
   from several call sites, each passing its own constant coefficient —
   the multi-call-site shape that makes context-sensitive parameter
   profiling (E17) interesting, plus invariant coefficient arguments. *)

open Isa

let build input =
  let rng = Workload.rng "tomcatv" input in
  let n = Workload.pick input ~test:28 ~train:44 in
  let iterations = Workload.pick input ~test:8 ~train:16 in
  let cells = n * n in
  let plane init =
    Array.init cells (fun _ -> Int64.of_int (init + Rng.int rng 2048))
  in
  let b = Asm.create () in
  let x_plane = Asm.data b (plane 1000) in
  let y_plane = Asm.data b (plane 5000) in
  let residual = Asm.reserve b cells in
  let result = Asm.reserve b 2 in

  (* saxpy(dst=a0, src=a1, n=a2, k=a3): dst[i] += (src[i] * k) >> 8.
     Leaf, t-registers only. *)
  Asm.proc b "saxpy" (fun b ->
      Asm.ldi b t0 0L;
      Asm.label b "sx_loop";
      Asm.sub b ~dst:t1 t0 a2;
      Asm.br b Ge t1 "sx_done";
      Asm.add b ~dst:t2 a1 t0;
      Asm.ld b ~dst:t3 ~base:t2 ~off:0;
      Asm.mul b ~dst:t3 t3 a3;
      Asm.srai b ~dst:t3 t3 8L;
      Asm.add b ~dst:t4 a0 t0;
      Asm.ld b ~dst:t5 ~base:t4 ~off:0;
      Asm.add b ~dst:t5 t5 t3;
      Asm.st b ~src:t5 ~base:t4 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "sx_loop";
      Asm.label b "sx_done";
      Asm.ret b);

  (* residual(src=a0, n=a1) -> v0 = sum of |cell - east neighbour|.
     Leaf, t-registers only. *)
  Asm.proc b "residual" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 0L;
      Asm.subi b ~dst:t6 a1 1L;
      Asm.label b "r_loop";
      Asm.sub b ~dst:t2 t0 t6;
      Asm.br b Ge t2 "r_done";
      Asm.add b ~dst:t3 a0 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.ld b ~dst:t5 ~base:t3 ~off:1;
      Asm.sub b ~dst:t4 t4 t5;
      Asm.br b Ge t4 "r_abs";
      Asm.sub b ~dst:t4 zero_reg t4;
      Asm.label b "r_abs";
      Asm.add b ~dst:t1 t1 t4;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "r_loop";
      Asm.label b "r_done";
      Asm.mov b ~dst:v0 t1;
      Asm.ret b);

  (* relax_mesh(iters=a0): four saxpy call sites with distinct constant
     coefficients (the per-site invariance E17 measures), then residuals.
     s0=iter s1=iters s2=accumulated residual *)
  Asm.proc b "relax_mesh" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a0;
      Asm.ldi b s2 0L;
      Asm.label b "mesh_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "mesh_done";
      (* site 1: x += y * 3 *)
      Asm.ldi b a0 x_plane;
      Asm.ldi b a1 y_plane;
      Asm.ldi b a2 (Int64.of_int cells);
      Asm.ldi b a3 3L;
      Asm.call b "saxpy";
      (* site 2: y += x * 5 *)
      Asm.ldi b a0 y_plane;
      Asm.ldi b a1 x_plane;
      Asm.ldi b a2 (Int64.of_int cells);
      Asm.ldi b a3 5L;
      Asm.call b "saxpy";
      (* site 3: residual buffer accumulates x with coefficient 7 *)
      Asm.ldi b a0 residual;
      Asm.ldi b a1 x_plane;
      Asm.ldi b a2 (Int64.of_int cells);
      Asm.ldi b a3 7L;
      Asm.call b "saxpy";
      (* site 4: ... and y with coefficient 11 *)
      Asm.ldi b a0 residual;
      Asm.ldi b a1 y_plane;
      Asm.ldi b a2 (Int64.of_int cells);
      Asm.ldi b a3 11L;
      Asm.call b "saxpy";
      Asm.ldi b a0 residual;
      Asm.ldi b a1 (Int64.of_int cells);
      Asm.call b "residual";
      Asm.add b ~dst:s2 s2 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "mesh_loop";
      Asm.label b "mesh_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s2 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s2;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 (Int64.of_int iterations);
      Asm.call b "relax_mesh";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "tomcatv";
    wmimics = "101.tomcatv (SPEC95 FP)";
    wdescr = "mesh relaxation: scaled-accumulate helper with per-site coefficients";
    wbuild = build;
    wshard = None;
    warities = [ ("saxpy", 4); ("residual", 2); ("relax_mesh", 1) ] }
