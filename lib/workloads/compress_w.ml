(* compress: LZW-style dictionary compression, modeled on 129.compress.
   Hot behaviour it reproduces: hash-table probe loads that are mostly
   zero (empty slots), a slowly growing next-code counter, and a skewed
   symbol distribution that makes the prefix register semi-invariant. *)

open Isa

let dict_size = 4096
let alphabet = 64

let symbols_of input =
  let rng = Workload.rng "compress" input in
  let n = Workload.pick input ~test:4_000 ~train:14_000 in
  let skew = Workload.pick input ~test:2.0 ~train:1.6 in
  Array.init n (fun _ -> Int64.of_int (Rng.skewed rng ~n:alphabet ~s:skew))

(* The program over an explicit symbol stream. All code is identical for
   any stream (same instruction sequence, hence same pcs); the stream
   length and data-segment addresses appear only as immediates and data,
   so per-input-chunk programs line up point-for-point with the full one
   — the property the sharded driver's per-pc merge relies on. *)
let program_of symbols =
  let n = Array.length symbols in
  let b = Asm.create () in
  let input_base = Asm.data b symbols in
  let hkey = Asm.reserve b dict_size in
  let hcode = Asm.reserve b dict_size in
  let out = Asm.reserve b (n + 1) in
  (* result[0] = emitted codes, result[1] = checksum *)
  let result = Asm.reserve b 2 in

  (* hash_probe(key=a0) -> v0 = slot index whose HKEY is key or 0. *)
  Asm.proc b "hash_probe" (fun b ->
      Asm.muli b ~dst:t0 a0 2654435761L;
      Asm.srli b ~dst:t0 t0 8L;
      Asm.andi b ~dst:t0 t0 (Int64.of_int (dict_size - 1));
      Asm.ldi b t1 hkey;
      Asm.label b "probe_loop";
      Asm.add b ~dst:t2 t1 t0;
      Asm.ld b ~dst:t3 ~base:t2 ~off:0;
      Asm.br b Eq t3 "probe_done";
      Asm.sub b ~dst:t4 t3 a0;
      Asm.br b Eq t4 "probe_done";
      Asm.addi b ~dst:t0 t0 1L;
      Asm.andi b ~dst:t0 t0 (Int64.of_int (dict_size - 1));
      Asm.jmp b "probe_loop";
      Asm.label b "probe_done";
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);

  (* emit(code=a0): append to the output stream and fold into checksum. *)
  Asm.proc b "emit" (fun b ->
      Asm.ldi b t0 result;
      Asm.ld b ~dst:t1 ~base:t0 ~off:0;
      Asm.ldi b t2 out;
      Asm.add b ~dst:t3 t2 t1;
      Asm.st b ~src:a0 ~base:t3 ~off:0;
      Asm.addi b ~dst:t1 t1 1L;
      Asm.st b ~src:t1 ~base:t0 ~off:0;
      Asm.ld b ~dst:t4 ~base:t0 ~off:1;
      Asm.muli b ~dst:t4 t4 31L;
      Asm.add b ~dst:t4 t4 a0;
      Asm.st b ~src:t4 ~base:t0 ~off:1;
      Asm.ret b);

  (* compress(n=a0, base=a1): the LZW loop.
     s0=prefix s1=i s2=n s3=base s4=next_code s5=scratch for key. *)
  Asm.proc b "compress" (fun b ->
      Asm.mov b ~dst:s2 a0;
      Asm.mov b ~dst:s3 a1;
      Asm.ld b ~dst:s0 ~base:s3 ~off:0;
      Asm.ldi b s1 1L;
      Asm.ldi b s4 (Int64.of_int (alphabet + 1));
      Asm.label b "next_symbol";
      Asm.sub b ~dst:t0 s1 s2;
      Asm.br b Ge t0 "flush";
      (* t5 = current symbol *)
      Asm.add b ~dst:t1 s3 s1;
      Asm.ld b ~dst:t5 ~base:t1 ~off:0;
      (* key = prefix * alphabet + sym + 1, kept in s5 across the call *)
      Asm.muli b ~dst:s5 s0 (Int64.of_int alphabet);
      Asm.add b ~dst:s5 s5 t5;
      Asm.addi b ~dst:s5 s5 1L;
      Asm.mov b ~dst:a0 s5;
      Asm.call b "hash_probe";
      (* reload the slot's key to see whether the probe hit *)
      Asm.ldi b t1 hkey;
      Asm.add b ~dst:t2 t1 v0;
      Asm.ld b ~dst:t3 ~base:t2 ~off:0;
      Asm.sub b ~dst:t4 t3 s5;
      Asm.br b Ne t4 "miss";
      (* hit: prefix = dict code *)
      Asm.ldi b t1 hcode;
      Asm.add b ~dst:t2 t1 v0;
      Asm.ld b ~dst:s0 ~base:t2 ~off:0;
      Asm.jmp b "advance";
      Asm.label b "miss";
      (* remember slot (t-regs die at the call, stash in memory-free way:
         recompute after emit via a second probe would double work; instead
         keep the slot in s5's place after saving key in a0 for insert) *)
      Asm.mov b ~dst:a0 s0;
      (* slot index survives in v0 only until the call; save it in t6?
         t-regs are clobbered by the call, so park it in the key register:
         key is no longer needed once the insert below uses it, so shuffle:
         a1 <- slot for emit-time insert. a-regs are clobbered too, so use
         memory: result[1] is busy; push onto the workload stack. *)
      Asm.st b ~src:v0 ~base:sp ~off:(-1);
      Asm.call b "emit";
      Asm.ld b ~dst:t0 ~base:sp ~off:(-1);
      (* insert dictionary entry while the table is under 3/4 full, so
         linear probes stay short *)
      Asm.cmplti b ~dst:t1 s4 (Int64.of_int (dict_size * 3 / 4));
      Asm.br b Eq t1 "skip_insert";
      Asm.ldi b t2 hkey;
      Asm.add b ~dst:t3 t2 t0;
      Asm.st b ~src:s5 ~base:t3 ~off:0;
      Asm.ldi b t2 hcode;
      Asm.add b ~dst:t3 t2 t0;
      Asm.st b ~src:s4 ~base:t3 ~off:0;
      Asm.addi b ~dst:s4 s4 1L;
      Asm.label b "skip_insert";
      (* prefix = symbol: reload it (t5 died across calls) *)
      Asm.add b ~dst:t1 s3 s1;
      Asm.ld b ~dst:s0 ~base:t1 ~off:0;
      Asm.label b "advance";
      Asm.addi b ~dst:s1 s1 1L;
      Asm.jmp b "next_symbol";
      Asm.label b "flush";
      Asm.mov b ~dst:a0 s0;
      Asm.call b "emit";
      Asm.ldi b t0 result;
      Asm.ld b ~dst:v0 ~base:t0 ~off:1;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 (Int64.of_int n);
      Asm.ldi b a1 input_base;
      Asm.call b "compress";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let build input = program_of (symbols_of input)

(* Data-driven sharding: split the symbol stream into <= k contiguous
   chunks whose concatenation is the full stream. Each chunk restarts the
   dictionary and prefix, so for k > 1 the merged profile approximates
   the serial one (the documented chunk-boundary error); k = 1 is the
   full program, byte-identical to [build]. *)
let chunks input k =
  let symbols = symbols_of input in
  let n = Array.length symbols in
  let k = max 1 (min k n) in
  let size = (n + k - 1) / k in
  List.init k (fun i ->
      let lo = i * size in
      Array.sub symbols lo (max 0 (min size (n - lo))))
  |> List.filter (fun a -> Array.length a > 0)
  |> List.map program_of

let workload =
  { Workload.wname = "compress";
    wmimics = "129.compress (SPEC95)";
    wdescr = "LZW-style dictionary compression over a skewed symbol stream";
    wbuild = build;
    wshard = Some chunks;
    warities = [ ("hash_probe", 1); ("emit", 1); ("compress", 2) ] }
