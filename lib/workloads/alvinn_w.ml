(* alvinn: fixed-point neural-network forward passes modeled on
   104.alvinn. Weight loads are perfectly invariant per memory location
   (the showcase for memory-location profiling), input loads vary per
   sample. The forward procedure saves/restores callee-saved registers on
   the stack, exercising the stack discipline. *)

open Isa

let inputs = 32
let hidden = 16
let outputs = 4

let build input =
  let rng = Workload.rng "alvinn" input in
  let samples = Workload.pick input ~test:36 ~train:110 in
  let w1 =
    Array.init (inputs * hidden) (fun _ -> Int64.of_int (Rng.int rng 256 - 128))
  in
  let w2 =
    Array.init (hidden * outputs) (fun _ -> Int64.of_int (Rng.int rng 256 - 128))
  in
  let sample_data =
    Array.init (samples * inputs) (fun _ -> Int64.of_int (Rng.int rng 256))
  in
  let b = Asm.create () in
  let w1_base = Asm.data b w1 in
  let w2_base = Asm.data b w2 in
  let samples_base = Asm.data b sample_data in
  let hidden_buf = Asm.reserve b hidden in
  let out_buf = Asm.reserve b outputs in
  let result = Asm.reserve b 1 in

  (* dot(x=a0, w=a1, n=a2) -> v0. Leaf multiply-accumulate. *)
  Asm.proc b "dot" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 0L;
      Asm.label b "mac_loop";
      Asm.sub b ~dst:t2 t1 a2;
      Asm.br b Ge t2 "mac_done";
      Asm.add b ~dst:t3 a0 t1;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.add b ~dst:t5 a1 t1;
      Asm.ld b ~dst:t6 ~base:t5 ~off:0;
      Asm.mul b ~dst:t4 t4 t6;
      Asm.add b ~dst:t0 t0 t4;
      Asm.addi b ~dst:t1 t1 1L;
      Asm.jmp b "mac_loop";
      Asm.label b "mac_done";
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);

  (* forward(sample=a0) -> v0 = output checksum. Non-leaf, so the
     callee-saved registers it needs are spilled to the stack. s0=j,
     s1=sample, s2=checksum. *)
  Asm.proc b "forward" (fun b ->
      Asm.subi b ~dst:sp sp 3L;
      Asm.st b ~src:s0 ~base:sp ~off:0;
      Asm.st b ~src:s1 ~base:sp ~off:1;
      Asm.st b ~src:s2 ~base:sp ~off:2;
      Asm.mov b ~dst:s1 a0;
      (* hidden layer: hidden[j] = relu(dot(x, W1[j*inputs..]) >> 8) *)
      Asm.ldi b s0 0L;
      Asm.label b "hid_loop";
      Asm.cmplti b ~dst:t0 s0 (Int64.of_int hidden);
      Asm.br b Eq t0 "hid_done";
      Asm.mov b ~dst:a0 s1;
      Asm.muli b ~dst:a1 s0 (Int64.of_int inputs);
      Asm.addi b ~dst:a1 a1 w1_base;
      Asm.ldi b a2 (Int64.of_int inputs);
      Asm.call b "dot";
      Asm.srai b ~dst:t1 v0 8L;
      Asm.br b Ge t1 "hid_store";
      Asm.ldi b t1 0L; (* relu clamp *)
      Asm.label b "hid_store";
      Asm.ldi b t2 hidden_buf;
      Asm.add b ~dst:t2 t2 s0;
      Asm.st b ~src:t1 ~base:t2 ~off:0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "hid_loop";
      Asm.label b "hid_done";
      (* output layer *)
      Asm.ldi b s0 0L;
      Asm.ldi b s2 0L;
      Asm.label b "out_loop";
      Asm.cmplti b ~dst:t0 s0 (Int64.of_int outputs);
      Asm.br b Eq t0 "out_done";
      Asm.ldi b a0 hidden_buf;
      Asm.muli b ~dst:a1 s0 (Int64.of_int hidden);
      Asm.addi b ~dst:a1 a1 w2_base;
      Asm.ldi b a2 (Int64.of_int hidden);
      Asm.call b "dot";
      Asm.srai b ~dst:t1 v0 8L;
      Asm.ldi b t2 out_buf;
      Asm.add b ~dst:t2 t2 s0;
      Asm.st b ~src:t1 ~base:t2 ~off:0;
      Asm.muli b ~dst:s2 s2 31L;
      Asm.add b ~dst:s2 s2 t1;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "out_loop";
      Asm.label b "out_done";
      Asm.mov b ~dst:v0 s2;
      Asm.ld b ~dst:s0 ~base:sp ~off:0;
      Asm.ld b ~dst:s1 ~base:sp ~off:1;
      Asm.ld b ~dst:s2 ~base:sp ~off:2;
      Asm.addi b ~dst:sp sp 3L;
      Asm.ret b);

  (* run_net(samples=a0, n=a1): forward every sample.
     s0=i s1=n s2=samples s3=checksum *)
  Asm.proc b "run_net" (fun b ->
      Asm.ldi b s0 0L;
      Asm.mov b ~dst:s1 a1;
      Asm.mov b ~dst:s2 a0;
      Asm.ldi b s3 0L;
      Asm.label b "sample_loop";
      Asm.sub b ~dst:t0 s0 s1;
      Asm.br b Ge t0 "net_done";
      Asm.muli b ~dst:a0 s0 (Int64.of_int inputs);
      Asm.add b ~dst:a0 a0 s2;
      Asm.call b "forward";
      Asm.add b ~dst:s3 s3 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "sample_loop";
      Asm.label b "net_done";
      Asm.ldi b t0 result;
      Asm.st b ~src:s3 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s3;
      Asm.ret b);

  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 samples_base;
      Asm.ldi b a1 (Int64.of_int samples);
      Asm.call b "run_net";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let workload =
  { Workload.wname = "alvinn";
    wmimics = "104.alvinn (SPEC95 FP)";
    wdescr = "fixed-point neural-network forward passes";
    wbuild = build;
    wshard = None;
    warities = [ ("dot", 3); ("forward", 1); ("run_net", 2) ] }
