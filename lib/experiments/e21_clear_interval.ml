(* E21 — TNV clear-interval sensitivity: the paper's LFU-clear policy has
   one tuning knob besides capacity — how often the replacement half is
   cleared. Too short destroys counts a new value needs to establish
   itself; too long locks early values in. Swept against the oracle at
   the paper's capacity. *)

let intervals = [ 50; 200; 1000; 2000; 10000 ]

let capacity = 8

type point_state = {
  oracle : Oracle.t;
  tnvs : (int * Tnv.t) list;
}

let measure (w : Workload.t) =
  let prog = w.wbuild Workload.Test in
  let machine = Machine.create prog in
  let pcs = Atom.select prog `Loads in
  let states =
    List.map
      (fun pc ->
        ( pc,
          { oracle = Oracle.create ();
            tnvs =
              List.map
                (fun i -> (i, Tnv.create ~clear_interval:i ~capacity ()))
                intervals } ))
      pcs
  in
  List.iter
    (fun (pc, st) ->
      Machine.add_hook machine pc (fun value _addr ->
          Oracle.observe st.oracle value;
          List.iter (fun (_, tnv) -> Tnv.add tnv value) st.tnvs))
    states;
  ignore (Machine.run machine);
  List.map
    (fun interval ->
      let err_num = ref 0. and den = ref 0. in
      List.iter
        (fun (_, st) ->
          let total = Oracle.total st.oracle in
          if total > 0 then begin
            let tnv = List.assoc interval st.tnvs in
            let weight = float_of_int total in
            den := !den +. weight;
            err_num :=
              !err_num
              +. (weight *. abs_float (Tnv.inv_top tnv -. Oracle.inv_top st.oracle))
          end)
        states;
      (interval, if !den = 0. then 0. else !err_num /. !den))
    intervals

let run () =
  let headers =
    "program" :: List.map (fun i -> Printf.sprintf "err @%d" i) intervals
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E21 - TNV clear-interval sensitivity (capacity %d, loads, Inv-Top error vs oracle)"
           capacity)
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let per = measure w in
      Table.add_row table (w.wname :: List.map (fun (_, e) -> Table.pct e) per))
    Harness.workloads;
  [ table ]
