let workloads = Workloads.all

(* Domain-safe once-per-key cache: when the parallel driver runs several
   experiments at once, the first to need a workload's data computes it
   and the rest block on the latch instead of duplicating the run.

   One entry serves all three consumers — the plain machine state, the
   full value profile, and the procedure profile — from a SINGLE machine
   execution: instrumentation is additive, so the full profiler and the
   procedure profiler attach to the same machine, and hooks never perturb
   architectural state (registers, memory, icount, exec counts), so the
   machine doubles as the "plain run". Before fusion the suite executed
   every workload/input up to three times. *)

type entry = {
  e_machine : Machine.t;
  e_profile : Profile.t;
  e_procprof : Procprof.t;
}

let cache : (string * Workload.input, entry) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let entry (w : Workload.t) input =
  Memo_cache.find_or_compute cache (w.wname, input) (fun () ->
      let machine = Machine.create (w.wbuild input) in
      let profile_live = Profile.attach machine `All in
      let config = { Procprof.default_config with arities = w.warities } in
      let proc_live = Procprof.attach ~config machine in
      ignore (Machine.run machine);
      { e_machine = machine;
        e_profile = Profile.collect profile_live;
        e_procprof = Procprof.collect proc_live })

(* Cross-invocation profile reuse: with a store attached, a memo miss
   consults the store before executing the machine, and a computed
   profile is committed for the next invocation. Memo first, store
   second: in-process repeats never pay the decode. *)

let store_ref : Store.t option Atomic.t = Atomic.make None

let set_store s = Atomic.set store_ref s

let store () = Atomic.get store_ref

let profile_key (w : Workload.t) input ~shards =
  Store.Fingerprint.(
    key
      (make ~shards
         ~config:
           (profile_config Vstate.default_config ~selection:"all")
         ~profiler:"full" ~workload:w.wname
         ~input:(Workload.string_of_input input) ()))

let stored_profile (w : Workload.t) input ~shards compute =
  match store () with
  | None -> compute ()
  | Some s ->
    let key = profile_key w input ~shards in
    (match Store.get_profile s ~program:(w.wbuild input) ~key with
     | Some p -> p
     | None ->
       let p = compute () in
       Store.put_profile s ~key p;
       p)

(* Sharded full profiles are memoized separately, keyed by the shard
   count, so flipping --shards mid-process never aliases a serial result
   and vice versa. The plain machine state and the procedure profile stay
   with the fused single execution either way — sharding only accelerates
   the value profile, the one consumer whose result merges. *)
let sharded_cache : (string * Workload.input * int, Profile.t) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let sharded_profile ?jobs (w : Workload.t) input ~shards =
  let shards = max 1 shards in
  Memo_cache.find_or_compute sharded_cache (w.wname, input, shards) (fun () ->
      stored_profile w input ~shards (fun () -> Shard.profile ?jobs ~shards w input))

let shard_count = Atomic.make 1

let set_shards k = Atomic.set shard_count (max 1 k)

let shards () = Atomic.get shard_count

(* Store-served full profiles get their own memo table: the fused [cache]
   entry only exists once a machine has actually run. *)
let stored_full_cache : (string * Workload.input, Profile.t) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let full_profile w input =
  match (shards (), store ()) with
  | 1, None -> (entry w input).e_profile
  | 1, Some _ ->
    Memo_cache.find_or_compute stored_full_cache (w.wname, input) (fun () ->
        stored_profile w input ~shards:1 (fun () -> (entry w input).e_profile))
  | k, _ -> sharded_profile w input ~shards:k

let plain_run w input = (entry w input).e_machine

let proc_profile w input = (entry w input).e_procprof

(* Machine executions performed so far (tests assert fusion: one per
   workload/input however many accessors were hit). *)
let machine_runs () = Memo_cache.computations cache

let clear_cache () =
  Memo_cache.clear cache;
  Memo_cache.clear sharded_cache;
  Memo_cache.clear stored_full_cache

let load_points p = Profile.points_by_category p Isa.Load

let value_points p = Array.to_list p.Profile.points
