let workloads = Workloads.all

(* Domain-safe once-per-key caches: when the parallel driver runs several
   experiments at once, the first to need a profile computes it and the
   rest block on the latch instead of duplicating the run. *)

let profile_cache : (string * Workload.input, Profile.t) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let run_cache : (string * Workload.input, Machine.t) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let procprof_cache : (string * Workload.input, Procprof.t) Memo_cache.t =
  Memo_cache.create ~size:32 ()

let full_profile (w : Workload.t) input =
  Memo_cache.find_or_compute profile_cache (w.wname, input) (fun () ->
      Profile.run ~selection:`All (w.wbuild input))

let plain_run (w : Workload.t) input =
  Memo_cache.find_or_compute run_cache (w.wname, input) (fun () ->
      Machine.execute (w.wbuild input))

let proc_profile (w : Workload.t) input =
  Memo_cache.find_or_compute procprof_cache (w.wname, input) (fun () ->
      let config = { Procprof.default_config with arities = w.warities } in
      Procprof.run ~config (w.wbuild input))

let clear_cache () =
  Memo_cache.clear profile_cache;
  Memo_cache.clear run_cache;
  Memo_cache.clear procprof_cache

let load_points p = Profile.points_by_category p Isa.Load

let value_points p = Array.to_list p.Profile.points
