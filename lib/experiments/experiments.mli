(** The experiment registry: every table and figure of the thesis's
    evaluation, reproduced. See DESIGN.md for the experiment ↔ paper
    artifact mapping and EXPERIMENTS.md for recorded results. *)

type spec = {
  id : string;  (** "e01" … "e14" *)
  title : string;
  paper_ref : string;  (** the thesis table/figure it regenerates *)
  run : unit -> Table.t list;
}

val all : spec list

(** Raises [Not_found] for unknown ids. *)
val find : string -> spec

(** Run one experiment and print its tables to stdout. *)
val print_one : spec -> unit

(** An experiment's printable form: the [== id: title [ref] ==] banner
    followed by each rendered table and a blank line — exactly the bytes
    {!print_all} emits for it, so checkpointed payloads splice back
    byte-identically. *)
val render : spec -> Table.t list -> string

(** An experiment that failed even after the supervisor's retries. *)
type failure = {
  f_spec : spec;
  f_attempts : int;
  f_error : Supervisor.job_error;
}

(** What a supervised run returns: everything that completed (registry
    order) {e plus} a failure report — one bad experiment no longer
    aborts the suite. *)
type report = {
  results : (spec * Table.t list) list;
  failures : failure list;
}

val string_of_failure : failure -> string

(** Everything a supervised suite run is parameterized by, in one record:
    the CLI, the tests and CI all build the same value instead of
    threading separate [?policy]/[?jobs]/[?checkpoint] options. *)
type run_config = {
  rc_jobs : int option;  (** worker pool size; [None] = recommended count *)
  rc_fuel : int option;  (** per-attempt fuel budget; [None] = unlimited *)
  rc_retries : int;  (** extra attempts per experiment after the first *)
  rc_max_fuel : int option;
      (** cap on retry fuel-doubling (see {!Supervisor.policy}) *)
  rc_jitter : float;  (** retry-backoff jitter fraction; [0.] = exact *)
  rc_fail_fast : bool;  (** abort the suite on the first hard failure *)
  rc_checkpoint : Checkpoint.t option;  (** crash-safe resume store *)
  rc_trace : string option;  (** write a Chrome trace of the run here *)
  rc_metrics : string option;  (** write a registry snapshot here *)
  rc_shards : int;
      (** shard count for the harness's full value profiles (see
          {!Harness.set_shards}); 1 = serial collection *)
  rc_store : Store.t option;
      (** profile store for cross-invocation reuse: {!run_strings}
          serves whole cached experiments without scheduling them, and
          the harness serves cached value profiles without executing
          machines (see {!Harness.set_store}) *)
}

(** Serial, one retry, no fuel limit, no checkpoint, no sinks. *)
val default_run_config : run_config

(** The supervisor policy a config induces (retries / fuel / skip-vs-abort). *)
val policy_of_config : run_config -> Supervisor.policy

(** Run a subset of the suite under supervision (see {!Supervisor}): each
    experiment runs in an ["experiment:<id>"] trace span, is retried per
    the config and recorded as a {!failure} instead of raising. If the
    config names trace/metrics sinks they are written on the way out
    (tracing is enabled for exactly this run). *)
val run : ?config:run_config -> spec list -> report

(** Supervised run yielding each experiment's {!render}ed bytes, with
    crash-safe checkpoint/resume when [rc_checkpoint] is set (see
    {!Checkpoint}): committed experiments are served from the store
    without rerunning; fresh ones are committed as they finish.

    With [rc_store] set, each experiment is additionally fingerprinted
    ({!Store.Fingerprint}) and looked up before scheduling: a hit is
    served with [o_attempts = 0] and zero machine executions, a miss
    runs and commits its rendered bytes to the store — so a repeated
    grid is near-instant and byte-identical. *)
val run_strings : ?config:run_config -> spec list -> string Supervisor.report

(** @deprecated Build a {!run_config} and call {!run}. *)
val run_specs : ?policy:Supervisor.policy -> ?jobs:int -> spec list -> report

(** [run_specs] over the whole registry. Safe at any [jobs]: the harness
    memo caches are domain-safe and each run owns its machines.
    @deprecated Build a {!run_config} and call {!run}. *)
val run_all : ?policy:Supervisor.policy -> ?jobs:int -> unit -> report

(** @deprecated Build a {!run_config} and call {!run_strings}. *)
val run_specs_strings :
  ?policy:Supervisor.policy ->
  ?jobs:int ->
  ?checkpoint:Checkpoint.t ->
  spec list ->
  string Supervisor.report

(** Run the whole suite in order, printing everything. Computation is
    parallel across [jobs] domains (default [1], i.e. serial); printing
    is always serial, in registry order, so the output is byte-identical
    for every [jobs] value. Failures (none, on a healthy tree) are
    reported on stderr after the completed tables. *)
val print_all : ?jobs:int -> unit -> unit
