(** The experiment registry: every table and figure of the thesis's
    evaluation, reproduced. See DESIGN.md for the experiment ↔ paper
    artifact mapping and EXPERIMENTS.md for recorded results. *)

type spec = {
  id : string;  (** "e01" … "e14" *)
  title : string;
  paper_ref : string;  (** the thesis table/figure it regenerates *)
  run : unit -> Table.t list;
}

val all : spec list

(** Raises [Not_found] for unknown ids. *)
val find : string -> spec

(** Run one experiment and print its tables to stdout. *)
val print_one : spec -> unit

(** Run the whole suite across [jobs] worker domains (via {!Driver.map};
    [0] means the recommended domain count) and return each experiment's
    tables in registry order. Safe at any [jobs]: the harness memo caches
    are domain-safe and each run owns its machines. *)
val run_all : ?jobs:int -> unit -> (spec * Table.t list) list

(** Run the whole suite in order, printing everything. Computation is
    parallel across [jobs] domains (default [1], i.e. serial); printing
    is always serial, in registry order, so the output is byte-identical
    for every [jobs] value. *)
val print_all : ?jobs:int -> unit -> unit
