(* E08 — TNV replacement-policy ablation: the paper's LFU-with-periodic-
   clearing against pure LFU and LRU at the same (small) capacity, so the
   replacement decisions matter. Same one-run-per-workload design as E07. *)

let capacity = 4

let policies =
  [ ("lfu-clear", Tnv.Lfu_clear); ("lfu", Tnv.Lfu); ("lru", Tnv.Lru) ]

type point_state = {
  oracle : Oracle.t;
  tnvs : (string * Tnv.t) list;
}

let measure (w : Workload.t) =
  let prog = w.wbuild Workload.Test in
  let machine = Machine.create prog in
  let pcs = Atom.select prog `Loads in
  let states =
    List.map
      (fun pc ->
        ( pc,
          { oracle = Oracle.create ();
            tnvs =
              List.map
                (fun (n, p) -> (n, Tnv.create ~policy:p ~capacity ()))
                policies } ))
      pcs
  in
  List.iter
    (fun (pc, st) ->
      Machine.add_hook machine pc (fun value _addr ->
          Oracle.observe st.oracle value;
          List.iter (fun (_, tnv) -> Tnv.add tnv value) st.tnvs))
    states;
  ignore (Machine.run machine);
  List.map
    (fun (pname, _) ->
      let err_num = ref 0. and match_num = ref 0. and den = ref 0. in
      List.iter
        (fun (_, st) ->
          let total = Oracle.total st.oracle in
          if total > 0 then begin
            let tnv = List.assoc pname st.tnvs in
            let weight = float_of_int total in
            den := !den +. weight;
            err_num :=
              !err_num
              +. (weight *. abs_float (Tnv.inv_top tnv -. Oracle.inv_top st.oracle));
            (match (Tnv.top tnv, Oracle.top st.oracle) with
             | Some (v, _), Some (ov, _) when Int64.equal v ov ->
               match_num := !match_num +. weight
             | _ -> ())
          end)
        states;
      if !den = 0. then (pname, 0., 1.)
      else (pname, !err_num /. !den, !match_num /. !den))
    policies

let run () =
  let headers =
    "program"
    :: List.concat_map (fun (n, _) -> [ n ^ " err"; n ^ " top" ]) policies
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E08 - TNV replacement policy ablation (capacity %d, loads, test input)"
           capacity)
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let per_policy = measure w in
      Table.add_row table
        (w.wname
         :: List.concat_map
              (fun (_, err, m) -> [ Table.pct err; Table.pct m ])
              per_policy))
    Harness.workloads;
  [ table ]
