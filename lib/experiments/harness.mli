(** Shared plumbing for the experiment drivers: the workload list in table
    order and memoized full profiles/runs (several experiments consume the
    same profile; profiling a workload twice would double the suite's run
    time for no reason). The memo tables are domain-safe {!Memo_cache}s,
    so experiments scheduled in parallel by the driver still compute each
    profile exactly once. *)

(** All workloads, table order. *)
val workloads : Workload.t list

(** Memoized full value profile (selection [`All]) of a workload/input. *)
val full_profile : Workload.t -> Workload.input -> Profile.t

(** Memoized plain (uninstrumented) run. *)
val plain_run : Workload.t -> Workload.input -> Machine.t

(** Memoized procedure profile (with the workload's declared arities). *)
val proc_profile : Workload.t -> Workload.input -> Procprof.t

(** Drop every memoized result (tests use this to keep fixtures
    independent). *)
val clear_cache : unit -> unit

(** Load-category points of a profile. *)
val load_points : Profile.t -> Profile.point list

(** [value_points p] — points of every value-producing instruction. *)
val value_points : Profile.t -> Profile.point list
