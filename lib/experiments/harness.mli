(** Shared plumbing for the experiment drivers: the workload list in table
    order and one memoized {e fused} execution per workload/input — the
    plain machine state, the full value profile, and the procedure profile
    all come from a single machine run (instrumentation is additive; hooks
    never perturb architectural state). The memo table is a domain-safe
    {!Memo_cache}, so experiments scheduled in parallel by the driver
    still execute each workload/input exactly once. *)

(** All workloads, table order. *)
val workloads : Workload.t list

(** Memoized full value profile (selection [`All]) of a workload/input.
    With {!set_shards} above 1, collected shardedly via {!Shard.profile}
    (memoized per shard count); otherwise from the fused single
    execution. *)
val full_profile : Workload.t -> Workload.input -> Profile.t

(** Memoized sharded value profile, keyed by [(workload, input, shards)]
    — independent of the {!set_shards} toggle. *)
val sharded_profile :
  ?jobs:int -> Workload.t -> Workload.input -> shards:int -> Profile.t

(** Shard count {!full_profile} uses (default 1 = serial). Clamped to
    [>= 1]. The toggle changes which memo table serves the profile, never
    the contents of either. *)
val set_shards : int -> unit

val shards : unit -> int

(** Attach (or with [None] detach) a profile store. With a store
    attached, a {!full_profile}/{!sharded_profile} memo miss consults the
    store — keyed by the {!Store.Fingerprint} of (workload, input, fuel,
    profiler, shards, config) — before executing the machine, and every
    computed profile is committed for the next invocation. *)
val set_store : Store.t option -> unit

val store : unit -> Store.t option

(** Memoized machine state after a full run. The machine carries the
    profilers' hooks but identical architectural state (registers, memory,
    counters) to an uninstrumented run. *)
val plain_run : Workload.t -> Workload.input -> Machine.t

(** Memoized procedure profile (with the workload's declared arities). *)
val proc_profile : Workload.t -> Workload.input -> Procprof.t

(** Machine executions performed since the last [clear_cache] — at most
    one per workload/input, however many accessors were consulted. *)
val machine_runs : unit -> int

(** Drop every memoized result (tests use this to keep fixtures
    independent). *)
val clear_cache : unit -> unit

(** Load-category points of a profile. *)
val load_points : Profile.t -> Profile.point list

(** [value_points p] — points of every value-producing instruction. *)
val value_points : Profile.t -> Profile.point list
