(* E07 — accuracy of the bounded TNV table against the exact (oracle)
   profile, across table sizes. Two measures per size, weighted by
   execution frequency: mean absolute Inv-Top error, and how often the
   TNV's top value is the true top value. Loads only, test inputs, all in
   one instrumented run per workload (every size observes the same event
   stream). *)

let capacities = [ 1; 2; 4; 8; 16 ]

type point_state = {
  oracle : Oracle.t;
  tnvs : (int * Tnv.t) list; (* capacity, table *)
}

let measure (w : Workload.t) =
  let prog = w.wbuild Workload.Test in
  let machine = Machine.create prog in
  let pcs = Atom.select prog `Loads in
  let states =
    List.map
      (fun pc ->
        ( pc,
          { oracle = Oracle.create ();
            tnvs = List.map (fun c -> (c, Tnv.create ~capacity:c ())) capacities } ))
      pcs
  in
  List.iter
    (fun (pc, st) ->
      Machine.add_hook machine pc (fun value _addr ->
          Oracle.observe st.oracle value;
          List.iter (fun (_, tnv) -> Tnv.add tnv value) st.tnvs))
    states;
  ignore (Machine.run machine);
  (* per capacity: (weighted inv_top error, weighted top-match rate) *)
  List.map
    (fun cap ->
      let err_num = ref 0. and match_num = ref 0. and den = ref 0. in
      List.iter
        (fun (_, st) ->
          let total = Oracle.total st.oracle in
          if total > 0 then begin
            let tnv = List.assoc cap st.tnvs in
            let weight = float_of_int total in
            den := !den +. weight;
            err_num :=
              !err_num
              +. (weight *. abs_float (Tnv.inv_top tnv -. Oracle.inv_top st.oracle));
            let matches =
              match (Tnv.top tnv, Oracle.top st.oracle) with
              | Some (v, _), Some (ov, _) -> Int64.equal v ov
              | None, None -> true
              | Some _, None | None, Some _ -> false
            in
            if matches then match_num := !match_num +. weight
          end)
        states;
      if !den = 0. then (cap, 0., 1.)
      else (cap, !err_num /. !den, !match_num /. !den))
    capacities

let run () =
  let headers =
    "program"
    :: List.concat_map
         (fun c -> [ Printf.sprintf "err N=%d" c; Printf.sprintf "top N=%d" c ])
         capacities
  in
  let table =
    Table.create
      ~title:
        "E07 - TNV table size vs oracle (loads, test input): Inv-Top error and top-value identification"
      headers
  in
  List.iter
    (fun (w : Workload.t) ->
      let per_cap = measure w in
      Table.add_row table
        (w.wname
         :: List.concat_map
              (fun (_, err, m) -> [ Table.pct err; Table.pct m ])
              per_cap))
    Harness.workloads;
  [ table ]
