type spec = {
  id : string;
  title : string;
  paper_ref : string;
  run : unit -> Table.t list;
}

let all =
  [ { id = "e01"; title = "Benchmarks and data sets";
      paper_ref = "Table III.1"; run = E01_workloads.run };
    { id = "e02"; title = "Basic Block Quantile Table";
      paper_ref = "Table IV.1"; run = E02_bb_quantile.run };
    { id = "e03"; title = "Load value invariance";
      paper_ref = "Ch. V load tables"; run = E03_load_invariance.run };
    { id = "e04"; title = "Instruction invariance by category";
      paper_ref = "Ch. V instruction tables"; run = E04_all_invariance.run };
    { id = "e05"; title = "Invariance distribution";
      paper_ref = "Ch. V distribution figures (§III.D bucketing)";
      run = E05_distribution.run };
    { id = "e06"; title = "Test vs train data sets";
      paper_ref = "Table V.5"; run = E06_cross_input.run };
    { id = "e07"; title = "TNV table size sweep";
      paper_ref = "TNV design evaluation"; run = E07_tnv_size.run };
    { id = "e08"; title = "TNV replacement ablation";
      paper_ref = "TNV design evaluation"; run = E08_replacement.run };
    { id = "e09"; title = "Convergent sampling";
      paper_ref = "Ch. VI"; run = E09_sampling.run };
    { id = "e10"; title = "Memory-location profiling";
      paper_ref = "Ch. VII"; run = E10_memory.run };
    { id = "e11"; title = "Value prediction classification";
      paper_ref = "Ch. II/IX (Gabbay [18])"; run = E11_prediction.run };
    { id = "e12"; title = "Code specialization";
      paper_ref = "Ch. X"; run = E12_specialization.run };
    { id = "e13"; title = "Procedure profiling and memoization";
      paper_ref = "procedure chapters, Richardson [32]";
      run = E13_procedures.run };
    { id = "e14"; title = "Profiling overhead";
      paper_ref = "Ch. VI overhead discussion"; run = E14_overhead.run };
    { id = "e15"; title = "Predictability classification and routing";
      paper_ref = "Gabbay [18] extension"; run = E15_classification.run };
    { id = "e16"; title = "Register value profiling";
      paper_ref = "Gabbay [17] register-file discussion";
      run = E16_registers.run };
    { id = "e17"; title = "Context-sensitive parameter profiling";
      paper_ref = "future work via Young & Smith [40]";
      run = E17_context.run };
    { id = "e18"; title = "Sampler convergence-criterion ablation";
      paper_ref = "Ch. VI future work"; run = E18_criteria.run };
    { id = "e19"; title = "Trivial computation";
      paper_ref = "Richardson [32]"; run = E19_trivial.run };
    { id = "e20"; title = "Memoization-cache size sweep";
      paper_ref = "Richardson [32] memoization"; run = E20_memo_sweep.run };
    { id = "e21"; title = "TNV clear-interval sensitivity";
      paper_ref = "TNV design evaluation"; run = E21_clear_interval.run };
    { id = "e22"; title = "Profile-guided load speculation";
      paper_ref = "Moudgill & Moreno [29], §II.A.1";
      run = E22_speculation.run };
    { id = "e23"; title = "Memoization transform";
      paper_ref = "Richardson [32] memoization"; run = E23_memoization.run };
    { id = "e24"; title = "Phase behaviour (windowed profiling)";
      paper_ref = "Ch. VI stationarity assumption"; run = E24_phases.run } ]

let find id =
  match List.find_opt (fun s -> s.id = id) all with
  | Some s -> s
  | None -> raise Not_found

(* One rendering for both the printed and the checkpointed paths, so a
   resumed run's bytes are identical to a straight-through run's. *)
let render spec tables =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s  [%s] ==\n" spec.id spec.title spec.paper_ref);
  List.iter
    (fun t ->
      Buffer.add_string buf (Table.render t);
      Buffer.add_char buf '\n')
    tables;
  Buffer.contents buf

let print_tables (spec, tables) = print_string (render spec tables)

let print_one spec = print_tables (spec, spec.run ())

type failure = {
  f_spec : spec;
  f_attempts : int;
  f_error : Supervisor.job_error;
}

type report = {
  results : (spec * Table.t list) list;
  failures : failure list;
}

type run_config = {
  rc_jobs : int option;
  rc_fuel : int option;
  rc_retries : int;
  rc_max_fuel : int option;
  rc_jitter : float;
  rc_fail_fast : bool;
  rc_checkpoint : Checkpoint.t option;
  rc_trace : string option;
  rc_metrics : string option;
  rc_shards : int;
  rc_store : Store.t option;
}

let default_run_config =
  { rc_jobs = None;
    rc_fuel = Supervisor.default_policy.Supervisor.fuel_timeout;
    rc_retries = Supervisor.default_policy.Supervisor.retries;
    rc_max_fuel = Supervisor.default_policy.Supervisor.max_fuel;
    rc_jitter = Supervisor.default_policy.Supervisor.jitter;
    rc_fail_fast = false;
    rc_checkpoint = None;
    rc_trace = None;
    rc_metrics = None;
    rc_shards = 1;
    rc_store = None }

let policy_of_config c =
  { Supervisor.retries = c.rc_retries;
    fuel_timeout = c.rc_fuel;
    max_fuel = c.rc_max_fuel;
    jitter = c.rc_jitter;
    on_error = (if c.rc_fail_fast then `Abort else `Skip) }

let config_of_policy ?jobs ?checkpoint (p : Supervisor.policy) =
  { default_run_config with
    rc_jobs = jobs;
    rc_fuel = p.Supervisor.fuel_timeout;
    rc_retries = p.Supervisor.retries;
    rc_fail_fast = p.Supervisor.on_error = `Abort;
    rc_checkpoint = checkpoint }

(* Sink plumbing: if the config names a trace sink, the trace is reset
   and enabled for exactly this run and written (disabled again) on the
   way out, exceptions included; a metrics sink snapshots the registry on
   the way out. Both writes are silent — callers own stdout. *)
let with_sinks cfg f =
  (match cfg.rc_trace with
   | Some _ ->
     Obs.Trace.reset ();
     Obs.Trace.set_enabled true
   | None -> ());
  let finish () =
    (match cfg.rc_trace with
     | Some path ->
       Obs.Trace.set_enabled false;
       Obs.Trace.write_file path
     | None -> ());
    match cfg.rc_metrics with
    | Some path -> Obs.Metrics.write_file path
    | None -> ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let run_spec_traced spec =
  Obs.Trace.with_span ~cat:"experiments" ("experiment:" ^ spec.id) spec.run

(* The store key of a rendered experiment: the unit of cross-invocation
   reuse is the whole rendered payload, fingerprinted by everything that
   could change its bytes (the spec plus the fuel and shard knobs). *)
let spec_key (c : run_config) (spec : spec) =
  Store.Fingerprint.(
    key
      (make ?fuel:c.rc_fuel ~shards:c.rc_shards ~profiler:"experiment"
         ~workload:spec.id ~input:"suite" ()))

let run ?(config = default_run_config) specs =
  with_sinks config @@ fun () ->
  Harness.set_shards config.rc_shards;
  Harness.set_store config.rc_store;
  let rep =
    Supervisor.map ~policy:(policy_of_config config) ?jobs:config.rc_jobs
      ~name:(fun s -> s.id)
      (fun spec -> (spec, run_spec_traced spec))
      specs
  in
  let failures =
    List.map2
      (fun spec (o : _ Supervisor.outcome) ->
        match o.Supervisor.o_result with
        | Ok _ -> None
        | Error e ->
          Some { f_spec = spec; f_attempts = o.Supervisor.o_attempts; f_error = e })
      specs rep.Supervisor.outcomes
    |> List.filter_map Fun.id
  in
  { results = Supervisor.oks rep; failures }

let run_strings ?(config = default_run_config) specs =
  with_sinks config @@ fun () ->
  Harness.set_shards config.rc_shards;
  Harness.set_store config.rc_store;
  let supervise jobs =
    Supervisor.run_strings ~policy:(policy_of_config config)
      ?jobs:config.rc_jobs ?checkpoint:config.rc_checkpoint jobs
  in
  match config.rc_store with
  | None ->
    supervise
      (List.map
         (fun spec -> (spec.id, fun () -> render spec (run_spec_traced spec)))
         specs)
  | Some store ->
    (* The driver consults the store before scheduling a unit: a hit is
       served without executing anything (reported with [o_attempts = 0],
       like a checkpoint-cached job), a miss runs and commits its payload
       as it lands, so a killed run still keeps its finished units. *)
    let keyed = List.map (fun spec -> (spec, spec_key config spec)) specs in
    let served =
      List.map (fun (spec, key) -> (spec, key, Store.get store key)) keyed
    in
    let rep =
      supervise
        (List.filter_map
           (fun (spec, key, cached) ->
             match cached with
             | Some _ -> None
             | None ->
               Some
                 ( spec.id,
                   fun () ->
                     let payload = render spec (run_spec_traced spec) in
                     Store.put store ~key ~payload;
                     payload ))
           served)
    in
    (* stitch hits back in, in submission order *)
    let misses = ref rep.Supervisor.outcomes in
    let outcomes =
      List.map
        (fun (spec, _, cached) ->
          match cached with
          | Some payload ->
            { Supervisor.o_name = spec.id; o_attempts = 0; o_result = Ok payload }
          | None -> (
            match !misses with
            | o :: rest ->
              misses := rest;
              o
            | [] -> assert false))
        served
    in
    let hits = List.length specs - List.length rep.Supervisor.outcomes in
    { Supervisor.outcomes;
      completed = rep.Supervisor.completed + hits;
      failed = rep.Supervisor.failed;
      cancelled = rep.Supervisor.cancelled }

(* --- deprecated wrappers (one release): callers should build a
   [run_config] and use {!run} / {!run_strings} --- *)

let run_specs ?(policy = Supervisor.default_policy) ?jobs specs =
  run ~config:(config_of_policy ?jobs policy) specs

let run_all ?policy ?jobs () = run_specs ?policy ?jobs all

let run_specs_strings ?(policy = Supervisor.default_policy) ?jobs ?checkpoint
    specs =
  run_strings ~config:(config_of_policy ?jobs ?checkpoint policy) specs

let string_of_failure f =
  Printf.sprintf "experiment %s FAILED after %d attempt%s: %s" f.f_spec.id
    f.f_attempts
    (if f.f_attempts = 1 then "" else "s")
    (Supervisor.string_of_error f.f_error)

(* Printing happens on the calling domain after the parallel runs land in
   registry order, so the bytes match a serial run exactly; failures, if
   any, go to stderr after every completed table. *)
let print_all ?(jobs = 1) () =
  let rep = run_all ~jobs () in
  List.iter print_tables rep.results;
  List.iter (fun f -> prerr_endline (string_of_failure f)) rep.failures
