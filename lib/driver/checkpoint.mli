(** Crash-safe checkpoint store for long experiment grids.

    A grid of profiling runs can take hours; a crash (or an injected
    fault) must not cost the completed jobs. Since the persistence
    unification this is a thin veneer over a directory-backed {!Store.t},
    which owns the on-disk contract: a [manifest] with one checksummed
    line per completed job ([done <name> gen=<g> bytes=<n> payload=<crc>
    line=<crc>]) rewritten via temp-file + [rename] on every record, plus
    one atomically-written [<name>-<crc>.out] payload file per job.

    Loading is salvage-shaped: a torn or corrupt manifest line (and
    everything after it) is dropped, and an entry whose payload file
    fails its size or checksum check is treated as never completed — the
    job simply reruns. Nothing in the store is ever trusted without its
    checksum.

    The store is domain-safe: {!record} is called from pool workers as
    jobs finish. *)

type t

(** [create ~resume dir] opens (creating [dir] if needed) a store.
    [resume = true] loads the existing manifest's surviving entries;
    [resume = false] starts empty, committing a fresh manifest (stale
    payload files are simply unreferenced). Raises [Sys_error] if [dir]
    exists but is not a directory. *)
val create : resume:bool -> string -> t

val dir : t -> string

(** Completed-job payload, if [name] committed in a previous (or this)
    run. *)
val find : t -> string -> string option

(** Number of completed jobs currently committed. *)
val completed : t -> int

(** [record t ~name ~payload] commits a completed job: payload file
    first, then the manifest — atomically, in that order, so a crash
    between the two merely reruns the job. [name] must not contain
    newlines; spaces are stored escaped. *)
val record : t -> name:string -> payload:string -> unit
