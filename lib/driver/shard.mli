(** Sharded profile collection: split {e one} workload execution into K
    shards, profile each on its own domain via {!Pool}, and merge the
    results in shard order ({!Profile.merge_shards}) — the first mode in
    which a single profile is collected faster than one core allows.

    Determinism: the merge consumes shards in plan order (the pool
    already returns results in submission order), so the profile is a
    function of the plan alone — byte-identical across schedules, domain
    counts, and re-runs.

    Error model vs. the serial run: a single shard is byte-identical to
    serial profiling. For K > 1, {e sliced} plans partition the dynamic
    event stream by icount windows, so per-point totals and
    [dynamic_instructions] equal the serial run's exactly; only the K-1
    window seams lose one LVP/stride observation each, and per-shard TNV
    tables may admit values the serial table would have dropped (or vice
    versa), bounding the [inv_top]/[inv_all] drift by the per-shard drop
    rate. {e Chunked} plans additionally reset program state at chunk
    boundaries, an approximation the owning workload documents. *)

(** How one execution is split: per-input-chunk programs (data-driven
    workloads exposing [Workload.wshard]), or icount-window slices of the
    single full program (everything else). *)
type plan =
  | Chunked of Asm.program list
  | Sliced of { prog : Asm.program; windows : (int * int) list }

(** [plan workload input ~shards] — chunked when the workload supports it
    and [shards > 1], sliced otherwise. Slicing runs one uninstrumented
    execution (bounded by [fuel]) to learn the stream length, then cuts
    it into [shards] equal windows. [shards <= 1] is one whole-run slice
    with no pre-run. *)
val plan : ?fuel:int -> Workload.t -> Workload.input -> shards:int -> plan

(** Number of shards the plan will run. *)
val plan_size : plan -> int

(** Run every shard of a plan across [jobs] domains and merge in shard
    order. Emits a [driver.shard] span per shard and counts them under
    [driver.shards]. *)
val profile_plan :
  ?config:Vstate.config ->
  ?selection:Atom.selection ->
  ?fuel:int ->
  ?jobs:int ->
  plan ->
  Profile.t

(** [profile ~shards workload input] = [profile_plan (plan …)]: the
    one-call sharded analogue of {!Profile.run}. [shards] defaults to 1,
    which is byte-identical to the serial profile. *)
val profile :
  ?config:Vstate.config ->
  ?selection:Atom.selection ->
  ?fuel:int ->
  ?jobs:int ->
  ?shards:int ->
  Workload.t ->
  Workload.input ->
  Profile.t
