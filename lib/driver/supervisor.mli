(** Fault-tolerant supervision for grids of profiling jobs.

    {!Pool.map} is all-or-nothing: one raising job aborts the whole grid
    and drops every other result. The paper's methodology is exactly such
    a grid — every profiler variant × every workload × every input — and
    at production scale a single trap, timeout, or I/O error must cost
    one cell, not hours of completed work. The supervisor wraps the pool
    so each job runs under a {!policy}:

    - a failing attempt is {e retried}, with {e backoff-in-fuel}: each
      retry doubles the attempt's instruction budget, so a
      [Fuel_exhausted] timeout converges on a budget that fits instead of
      failing forever;
    - a job that exhausts its retries is recorded as a typed
      {!job_error} in the report — the grid keeps going ([`Skip]), or the
      pool's shared cancellation flag stops the remaining queue
      ([`Abort]), in which case unstarted jobs report [Cancelled];
    - results come back {e per job, in submission order}, successes and
      failures side by side, so callers get partial results plus a
      failure report instead of an exception.

    Each attempt passes the ["supervisor.job"] fault-injection site, so a
    test (or [VPROF_FAULT]) can kill exactly the k-th attempt of a run
    and assert the grid survives. *)

(** Why a job ultimately failed. *)
type job_error =
  | Trap of Machine.trap  (** the workload trapped (division by zero, …) *)
  | Timeout of int  (** fuel budget exhausted; carries the final budget *)
  | Io of string  (** [Sys_error] — filesystem trouble *)
  | Injected of string  (** {!Fault.Injected}; carries the site *)
  | Cancelled  (** never started: the grid was aborted first *)
  | Crash of string  (** any other exception, printed *)
  | Deadline of float
      (** {!Budget.Deadline_exceeded}: the governed wall-clock budget ran
          out. Never retried — the clock is global — and the rest of the
          grid is cancelled cooperatively through the pool's shared
          cancellation flag. *)
  | Mem_pressure of int
      (** {!Budget.Mem_pressure}: heap watermark breached with
          degradation off; carries the observed heap words. Retried like
          any other failure (a retry may run degraded and fit). *)

val string_of_error : job_error -> string

type policy = {
  retries : int;  (** extra attempts after the first (so [retries = 2] means up to 3 runs) *)
  fuel_timeout : int option;
      (** per-attempt instruction budget for jobs that don't carry their
          own fuel; [None] leaves the machine default (no backoff
          possible) *)
  max_fuel : int option;
      (** hard cap on any attempt's fuel budget: retry doubling saturates
          here instead of growing unboundedly ([None] = uncapped, the
          pre-governance behaviour) *)
  jitter : float;
      (** [> 0.] widens each {e retry}'s fuel budget by a factor in
          [1, 1 + jitter), drawn deterministically from the job name and
          attempt index — desynchronizes a herd of identical retried
          units without sacrificing reproducibility. [0.] (default)
          keeps exact doubling. *)
  on_error : [ `Skip | `Abort ];
      (** after retries are exhausted: record and continue, or trip the
          shared cancellation flag and stop the grid *)
}

(** [{ retries = 1; fuel_timeout = None; max_fuel = None; jitter = 0.;
      on_error = `Skip }]. *)
val default_policy : policy

(** One job's fate. *)
type 'a outcome = {
  o_name : string;
  o_attempts : int;
      (** attempts actually run; [0] for a cached or cancelled job *)
  o_result : ('a, job_error) result;
}

type 'a report = {
  outcomes : 'a outcome list;  (** submission order, one per job *)
  completed : int;
  failed : int;  (** excludes [Cancelled] *)
  cancelled : int;
}

(** The [Ok] payloads, submission order preserved. *)
val oks : 'a report -> 'a list

(** The non-[Ok] outcomes, submission order preserved. *)
val failures : 'a report -> 'a outcome list

(** Generic supervised parallel map: [f] runs under retry and error
    capture ([fuel_timeout] backoff only applies where the supervisor
    controls fuel, i.e. {!run_jobs}). [name] labels each item's outcome. *)
val map :
  ?policy:policy ->
  ?jobs:int ->
  name:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b report

(** Supervised {!Driver.run_jobs}: jobs coalesce into fused units (one
    machine execution per [(workload, input, fuel)] key; [~fuse:false]
    disables), and each {e unit} runs under the policy — one
    classification and one retry scope per unit per attempt, a retry
    re-running the whole unit. Retries widen the fuel budget (the unit's
    own fuel, else [policy.fuel_timeout], doubles on every attempt). The
    report still carries one outcome per {e job}, in submission order: a
    fused unit's error and attempt count are replicated to each member. *)
val run_jobs :
  ?policy:policy -> ?jobs:int -> ?fuse:bool -> 'a Driver.job list -> 'a report

(** Supervised map over string-payload jobs with optional
    checkpoint/resume: a job already committed in [checkpoint] is not run
    at all — its stored payload is returned with [o_attempts = 0] — and
    every fresh completion is committed (from the worker, as it finishes)
    before the grid moves on. *)
val run_strings :
  ?policy:policy ->
  ?jobs:int ->
  ?checkpoint:Checkpoint.t ->
  (string * (unit -> string)) list ->
  string report

(** Test-only window into the backoff arithmetic, so cap and jitter can
    be asserted directly instead of through whole grid runs. *)
module Testing : sig
  (** [attempt_fuel policy ~name ~base k] is the fuel budget the
      supervisor would give the 0-based attempt [k] of job [name]. *)
  val attempt_fuel :
    policy -> name:string -> base:int option -> int -> int option
end
