(** The parallel profiling driver.

    Schedules (workload, input, profiler) jobs across a fixed pool of
    domains (see {!Pool}); any profiler that exposes a
    {!Profiler_intf.S} adapter can be driven. Each job builds its own
    program and machine — every [Machine.t] owns all of its mutable
    state, so jobs share nothing and parallelize cleanly — and results
    always come back in submission order, making parallel runs
    byte-identical to serial ones for any order-dependent consumer.

    A job carries a [finish] continuation mapping the profiler's typed
    result to the caller's element type, so one [run_jobs] call can mix
    profilers ([Profile] and [Sampler] jobs folding into a common sum,
    say) while staying fully typed. *)

(** A scheduled profiling run. ['a] is what the job yields to the caller
    after [finish]; the profiler's own result and config types are
    existential. *)
type 'a job

(** [job profiler workload input ~finish] — run [profiler] on
    [workload]'s program for [input] and pass its result through
    [finish]. [config] defaults to the profiler's [default_config];
    [fuel] is the machine's instruction budget. *)
val job :
  ?config:'c ->
  ?fuel:int ->
  finish:('r -> 'a) ->
  (module Profiler_intf.S with type result = 'r and type config = 'c) ->
  Workload.t ->
  Workload.input ->
  'a job

(** ["<profiler>:<workload>:<input>"], for logs and bench labels. *)
val job_name : 'a job -> string

(** The fuel the job was created with ([None] = the machine default). *)
val job_fuel : 'a job -> int option

(** Run one job with the job's fuel replaced by [fuel] when [Some] — the
    supervisor's retry path widens a timed-out job's budget this way. *)
val run_job_with_fuel : fuel:int option -> 'a job -> 'a

(** {2 Fused units}

    Jobs that share a [(workload, input, fuel)] key profile the {e same}
    machine execution (instrumentation is additive, see {!Fused}), so the
    scheduler groups them into units: one unit = one program build + one
    machine run, serving every member job. *)

(** A schedulable unit: one machine execution serving one or more jobs. *)
type 'a funit

(** Group jobs by [(workload name, input, fuel)]. Units come back in the
    submission order of their first member; members stay in submission
    order within a unit — the fused schedule is deterministic. *)
val fuse : 'a job list -> 'a funit list

(** One unit per job — the schedule [run_jobs ~fuse:false] uses. *)
val solo : 'a job list -> 'a funit list

(** The member jobs with their submission indices (ascending). *)
val unit_members : 'a funit -> (int * 'a job) list

(** [job_name] of a solo unit;
    ["fused[p1+p2+…]:<workload>:<input>"] otherwise. *)
val unit_name : 'a funit -> string

(** The fuel shared by every member ([None] = the machine default). *)
val unit_fuel : 'a funit -> int option

(** Run one unit — one program build, one machine execution — and return
    each member's finished result tagged with its submission index.
    [fuel], when [Some], overrides the unit's own budget (the
    supervisor's retry path). A solo unit takes the profiler's plain
    [run] entry point, exactly the pre-fusion code path. *)
val run_unit_with_fuel : fuel:int option -> 'a funit -> (int * 'a) list

(** Run every job — across [jobs] domains when [jobs > 1], on the calling
    domain otherwise — and return the finished results in submission
    order. [jobs] defaults to {!Pool.default_jobs}; [0] means the same.
    [fuse] (default [true]) coalesces jobs sharing a
    [(workload, input, fuel)] key into one machine execution; the result
    list is the same either way. *)
val run_jobs : ?jobs:int -> ?fuse:bool -> 'a job list -> 'a list

(** The unit names [run_jobs] would execute, in schedule order — how the
    CLI shows what fusion did. *)
val plan : ?fuse:bool -> 'a job list -> string list

(** {!Pool.default_jobs}, re-exported so driver consumers need not depend
    on the pool directly. *)
val default_jobs : unit -> int

(** {!Pool.map}, re-exported: deterministic parallel map for work that is
    not shaped like a profiler run (experiment drivers, paired
    comparisons). *)
val map : ?jobs:int -> ?fail_fast:bool -> ('a -> 'b) -> 'a list -> 'b list
