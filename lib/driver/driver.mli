(** The parallel profiling driver.

    Schedules (workload, input, profiler) jobs across a fixed pool of
    domains (see {!Pool}); any profiler that exposes a
    {!Profiler_intf.S} adapter can be driven. Each job builds its own
    program and machine — every [Machine.t] owns all of its mutable
    state, so jobs share nothing and parallelize cleanly — and results
    always come back in submission order, making parallel runs
    byte-identical to serial ones for any order-dependent consumer.

    A job carries a [finish] continuation mapping the profiler's typed
    result to the caller's element type, so one [run_jobs] call can mix
    profilers ([Profile] and [Sampler] jobs folding into a common sum,
    say) while staying fully typed. *)

(** A scheduled profiling run. ['a] is what the job yields to the caller
    after [finish]; the profiler's own result and config types are
    existential. *)
type 'a job

(** [job profiler workload input ~finish] — run [profiler] on
    [workload]'s program for [input] and pass its result through
    [finish]. [config] defaults to the profiler's [default_config];
    [fuel] is the machine's instruction budget. *)
val job :
  ?config:'c ->
  ?fuel:int ->
  finish:('r -> 'a) ->
  (module Profiler_intf.S with type result = 'r and type config = 'c) ->
  Workload.t ->
  Workload.input ->
  'a job

(** ["<profiler>:<workload>:<input>"], for logs and bench labels. *)
val job_name : 'a job -> string

(** The fuel the job was created with ([None] = the machine default). *)
val job_fuel : 'a job -> int option

(** Run one job with the job's fuel replaced by [fuel] when [Some] — the
    supervisor's retry path widens a timed-out job's budget this way. *)
val run_job_with_fuel : fuel:int option -> 'a job -> 'a

(** Run every job — across [jobs] domains when [jobs > 1], on the calling
    domain otherwise — and return the finished results in submission
    order. [jobs] defaults to {!Pool.default_jobs}; [0] means the same. *)
val run_jobs : ?jobs:int -> 'a job list -> 'a list

(** {!Pool.default_jobs}, re-exported so driver consumers need not depend
    on the pool directly. *)
val default_jobs : unit -> int

(** {!Pool.map}, re-exported: deterministic parallel map for work that is
    not shaped like a profiler run (experiment drivers, paired
    comparisons). *)
val map : ?jobs:int -> ?fail_fast:bool -> ('a -> 'b) -> 'a list -> 'b list
