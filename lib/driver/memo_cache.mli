(** A domain-safe once-per-key memo cache.

    Replaces the plain [Hashtbl] memo tables the experiment harness used
    when everything ran on one domain. The guarantee concurrent callers
    need is {e once-per-key}: when several domains request the same absent
    key simultaneously, exactly one runs the computation and the others
    block until its result lands, rather than duplicating seconds of
    profiling work (or tearing the table).

    Implementation: one mutex around the table plus a per-cache condition
    variable acting as the latch — an in-flight key is marked [Running];
    waiters sleep on the condition and re-check when woken. A computation
    that raises is {e not} cached (matching the old serial semantics):
    the key is released, the exception propagates to the computing caller,
    and any waiter retries the computation itself. *)

type ('k, 'v) t

(** [?max_entries] bounds the number of {e completed} entries: when an
    insertion pushes the population past the bound, the least-recently-used
    completed entries are evicted (each counting [memo.evictions] in
    {!Obs}). In-flight computations are never evicted, so the once-per-key
    guarantee is unaffected; an evicted key simply recomputes on next
    request. [Invalid_argument] if [max_entries < 1]. *)
val create : ?size:int -> ?max_entries:int -> unit -> ('k, 'v) t

(** [find_or_compute t k f] returns the cached value for [k], or runs
    [f ()] — once, even under concurrent callers — caches and returns it.
    [f] runs outside the cache lock, so computations for distinct keys
    proceed in parallel. [f] must not re-enter the cache on the same key
    (it would deadlock waiting on itself). *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Number of computations actually run (not counting cache hits) since
    [create]/[clear] — the once-per-key tests assert on this. *)
val computations : ('k, 'v) t -> int

(** Drop every cached value and zero {!computations}. Intended for
    quiescent moments (test fixture isolation); a computation in flight
    during [clear] still completes and re-registers its result. *)
val clear : ('k, 'v) t -> unit
