(* The worker pool: a mutex-protected deque of job indices drained by a
   fixed set of domains. Results land in per-index slots, so completion
   order never affects result order. *)

(* Work queue: push_back on submission, pop_front by workers (FIFO keeps
   the schedule close to the serial order, which keeps cache-sharing jobs
   together). Two-list deque; [front] is in pop order. *)
type 'a deque = {
  mutable front : 'a list;
  mutable back : 'a list;  (* reversed *)
  mu : Mutex.t;
}

let deque_of_list items = { front = items; back = []; mu = Mutex.create () }

let pop_front d =
  Mutex.lock d.mu;
  let item =
    match d.front with
    | x :: rest ->
      d.front <- rest;
      Some x
    | [] ->
      (match List.rev d.back with
       | x :: rest ->
         d.front <- rest;
         d.back <- [];
         Some x
       | [] -> None)
  in
  Mutex.unlock d.mu;
  item

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n when n <= 0 -> default_jobs ()
  | Some n -> n

(* Cancellation: one atomic flag shared by caller and workers. Workers
   check it before every pop, so a set flag stops the queue draining
   within one job per domain. *)
type cancellation = bool Atomic.t

let cancellation () = Atomic.make false

let cancel c =
  (* chaos site: a fault here simulates the canceller itself dying
     before the flag lands, so the grid keeps draining *)
  Fault.point ~site:"pool.cancel";
  Atomic.set c true

let cancelled c = Atomic.get c

let m_jobs = Obs.Metrics.counter "pool.jobs"
let m_errors = Obs.Metrics.counter "pool.errors"
let m_workers = Obs.Metrics.counter "pool.workers_spawned"

let map_result ?jobs ?cancel:(flag = cancellation ()) ?(stop_on_error = false)
    f items =
  let run_one x =
    Obs.Metrics.incr m_jobs;
    match
      Obs.Trace.with_span ~cat:"driver" "pool.job" (fun () ->
          Fault.point ~site:"pool.worker";
          f x)
    with
    | v -> Ok v
    | exception e ->
      let err = Error (e, Printexc.get_raw_backtrace ()) in
      Obs.Metrics.incr m_errors;
      if stop_on_error then Atomic.set flag true;
      err
  in
  let jobs = min (resolve_jobs jobs) (List.length items) in
  if jobs <= 1 then begin
    (* The caller's domain IS the one worker: emit the same span and
       spawn counter as the parallel path so -j1 traces are not missing
       the driver's worker layer (check_obs expects it uniformly). *)
    Obs.Metrics.incr m_workers;
    Obs.Trace.with_span ~cat:"driver" "pool.worker" (fun () ->
        List.map
          (fun x -> if Atomic.get flag then None else Some (run_one x))
          items)
  end
  else begin
    let items = Array.of_list items in
    let n = Array.length items in
    let results = Array.make n None in
    let work = deque_of_list (List.init n Fun.id) in
    let worker () =
      Obs.Metrics.incr m_workers;
      Obs.Trace.with_span ~cat:"driver" "pool.worker" (fun () ->
          let rec loop () =
            if not (Atomic.get flag) then
              match pop_front work with
              | None -> ()
              | Some i ->
                (* distinct indices: no two domains ever write the same slot;
                   the worker's backtrace is captured with the exception so
                   the re-raise on the caller's domain points at the real
                   failure *)
                results.(i) <- Some (run_one items.(i));
                loop ()
          in
          loop ())
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
  end

let map ?jobs ?(fail_fast = false) f items =
  let results = map_result ?jobs ~stop_on_error:fail_fast f items in
  (* surface the lowest-indexed recorded failure; with [fail_fast] later
     items may never have run (their slots are [None]) *)
  List.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  List.map
    (function
      | Some (Ok v) -> v
      | Some (Error _) | None -> assert false)
    results
