(* The worker pool: a mutex-protected deque of job indices drained by a
   fixed set of domains. Results land in per-index slots, so completion
   order never affects result order. *)

(* Work queue: push_back on submission, pop_front by workers (FIFO keeps
   the schedule close to the serial order, which keeps cache-sharing jobs
   together). Two-list deque; [front] is in pop order. *)
type 'a deque = {
  mutable front : 'a list;
  mutable back : 'a list;  (* reversed *)
  mu : Mutex.t;
}

let deque_of_list items = { front = items; back = []; mu = Mutex.create () }

let pop_front d =
  Mutex.lock d.mu;
  let item =
    match d.front with
    | x :: rest ->
      d.front <- rest;
      Some x
    | [] ->
      (match List.rev d.back with
       | x :: rest ->
         d.front <- rest;
         d.back <- [];
         Some x
       | [] -> None)
  in
  Mutex.unlock d.mu;
  item

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n when n <= 0 -> default_jobs ()
  | Some n -> n

let map ?jobs f items =
  let jobs = min (resolve_jobs jobs) (List.length items) in
  if jobs <= 1 then List.map f items
  else begin
    let items = Array.of_list items in
    let n = Array.length items in
    let results = Array.make n None in
    let work = deque_of_list (List.init n Fun.id) in
    let worker () =
      let rec loop () =
        match pop_front work with
        | None -> ()
        | Some i ->
          (* distinct indices: no two domains ever write the same slot;
             the worker's backtrace is captured with the exception so the
             re-raise on the caller's domain points at the real failure *)
          results.(i) <-
            Some
              (try Ok (f items.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end
