(* Sharded collection of one workload's value profile: split ONE workload
   execution into K shards, profile each on its own domain via the pool,
   and merge the results in shard order — so the output is a function of
   the plan only, byte-identical however the shards were scheduled.

   Two plans:
   - Chunked: the workload knows how to split its input into chunk
     programs sharing the full program's code layout (Workload.wshard).
     Each chunk is profiled whole. Exact per-chunk; chunk boundaries
     reset program state (e.g. compress's dictionary), the documented
     approximation for K > 1.
   - Sliced: every shard executes the FULL program but profiles only its
     icount window (lo, hi]. The windows partition the event stream, so
     merged per-point totals and dynamic_instructions equal the serial
     run's exactly; the cost is K full (but mostly uninstrumented)
     executions plus one uninstrumented pre-run to learn the length. *)

type plan =
  | Chunked of Asm.program list
  | Sliced of { prog : Asm.program; windows : (int * int) list }

let m_shards = Obs.Metrics.counter "driver.shards"
let m_sharded_runs = Obs.Metrics.counter "driver.sharded_runs"

(* Length of an uninstrumented run, for slicing. *)
let measure ?fuel prog =
  let machine = Machine.create prog in
  ignore (Machine.run ?fuel machine);
  Machine.icount machine

let plan ?fuel workload input ~shards =
  let k = max 1 shards in
  match workload.Workload.wshard with
  | Some chunks when k > 1 -> Chunked (chunks input k)
  | _ ->
    let prog = workload.Workload.wbuild input in
    if k = 1 then Sliced { prog; windows = [ (0, max_int) ] }
    else begin
      let total = measure ?fuel prog in
      let slice = (total + k - 1) / k in
      let windows =
        List.init k (fun i -> (i * slice, min total ((i + 1) * slice)))
        |> List.filter (fun (lo, hi) -> lo < hi)
      in
      Sliced { prog; windows = (if windows = [] then [ (0, max_int) ] else windows) }
    end

let plan_size = function
  | Chunked progs -> List.length progs
  | Sliced { windows; _ } -> List.length windows

(* Run every shard of [plan] across [jobs] domains and merge in shard
   order. The pool returns results in submission order whatever the
   scheduling, so the merge input — hence the profile — is deterministic. *)
let profile_plan ?config ?selection ?fuel ?jobs plan =
  Obs.Metrics.incr m_sharded_runs;
  let run_one task =
    Obs.Trace.with_span ~cat:"driver" "driver.shard" @@ fun () ->
    Obs.Metrics.incr m_shards;
    match task with
    | `Chunk prog -> Profile.run_shard ?config ?selection ?fuel prog
    | `Slice (prog, window) ->
      Profile.run_shard ?config ?selection ~window ?fuel prog
  in
  let tasks, label_prog =
    match plan with
    | Chunked [] -> invalid_arg "Shard.profile_plan: empty chunk plan"
    | Chunked (first :: _ as progs) ->
      (List.map (fun p -> `Chunk p) progs, first)
    | Sliced { prog; windows } ->
      (List.map (fun w -> `Slice (prog, w)) windows, prog)
  in
  let shards = Pool.map ?jobs run_one tasks in
  (* chaos site: dying here proves a crash between the shard runs and
     the merge loses the run but never commits a partial profile *)
  Fault.point ~site:"shard.merge";
  Profile.merge_shards label_prog shards

let profile ?config ?selection ?fuel ?jobs ?(shards = 1) workload input =
  profile_plan ?config ?selection ?fuel ?jobs
    (plan ?fuel workload input ~shards)
