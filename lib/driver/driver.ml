type 'a job =
  | Job : {
      profiler : (module Profiler_intf.S with type result = 'r and type config = 'c);
      config : 'c option;
      fuel : int option;
      workload : Workload.t;
      input : Workload.input;
      finish : 'r -> 'a;
    }
      -> 'a job

let job ?config ?fuel ~finish profiler workload input =
  Job { profiler; config; fuel; workload; input; finish }

let job_name (Job { profiler = (module P); workload; input; _ }) =
  Printf.sprintf "%s:%s:%s" P.name workload.Workload.wname
    (Workload.string_of_input input)

let run_job (Job { profiler = (module P); config; fuel; workload; input; finish }) =
  let prog = workload.Workload.wbuild input in
  finish (P.run ?config ?fuel prog)

let job_fuel (Job { fuel; _ }) = fuel

let run_job_with_fuel ~fuel:override
    (Job { profiler = (module P); config; fuel; workload; input; finish }) =
  let fuel = match override with Some _ -> override | None -> fuel in
  let prog = workload.Workload.wbuild input in
  finish (P.run ?config ?fuel prog)

let run_jobs ?jobs js = Pool.map ?jobs run_job js

let default_jobs = Pool.default_jobs

let map = Pool.map
