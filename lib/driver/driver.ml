type 'a job =
  | Job : {
      profiler : (module Profiler_intf.S with type result = 'r and type config = 'c);
      config : 'c option;
      fuel : int option;
      workload : Workload.t;
      input : Workload.input;
      finish : 'r -> 'a;
    }
      -> 'a job

let job ?config ?fuel ~finish profiler workload input =
  Job { profiler; config; fuel; workload; input; finish }

let job_name (Job { profiler = (module P); workload; input; _ }) =
  Printf.sprintf "%s:%s:%s" P.name workload.Workload.wname
    (Workload.string_of_input input)

let run_job (Job { profiler = (module P); config; fuel; workload; input; finish }) =
  let prog = workload.Workload.wbuild input in
  finish (P.run ?config ?fuel prog)

let job_fuel (Job { fuel; _ }) = fuel

let run_job_with_fuel ~fuel:override
    (Job { profiler = (module P); config; fuel; workload; input; finish }) =
  let fuel = match override with Some _ -> override | None -> fuel in
  let prog = workload.Workload.wbuild input in
  finish (P.run ?config ?fuel prog)

(* A schedulable unit: one machine execution serving one or more jobs.
   Members keep their submission index so results scatter back into
   submission order whatever the grouping did. *)
type 'a funit = {
  u_workload : Workload.t;
  u_input : Workload.input;
  u_fuel : int option;
  u_members : (int * 'a job) list; (* ascending submission index *)
}

let solo js =
  List.mapi
    (fun i (Job { workload; input; fuel; _ } as j) ->
      { u_workload = workload; u_input = input; u_fuel = fuel;
        u_members = [ (i, j) ] })
    js

(* Group jobs sharing a (workload, input, fuel) key, preserving the
   submission order of first occurrences (and of members within a unit),
   so a fused schedule is a deterministic function of the job list. *)
let fuse js =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i (Job { workload; input; fuel; _ } as j) ->
      let key = (workload.Workload.wname, input, fuel) in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := (i, j) :: !cell
      | None ->
        let cell = ref [ (i, j) ] in
        Hashtbl.add tbl key cell;
        order := cell :: !order)
    js;
  List.rev_map
    (fun cell ->
      match List.rev !cell with
      | [] -> assert false
      | (_, Job { workload; input; fuel; _ }) :: _ as members ->
        { u_workload = workload; u_input = input; u_fuel = fuel;
          u_members = members })
    !order

let unit_members u = u.u_members

let unit_name u =
  match u.u_members with
  | [ (_, j) ] -> job_name j
  | members ->
    Printf.sprintf "fused[%s]:%s:%s"
      (String.concat "+"
         (List.map
            (fun (_, Job { profiler = (module P); _ }) -> P.name)
            members))
      u.u_workload.Workload.wname
      (Workload.string_of_input u.u_input)

let unit_fuel u = u.u_fuel

let m_units = Obs.Metrics.counter "driver.units"
let m_fused_units = Obs.Metrics.counter "driver.fused_units"

let run_unit_with_fuel ~fuel:override u =
  let fuel = match override with Some _ -> override | None -> u.u_fuel in
  let prog = u.u_workload.Workload.wbuild u.u_input in
  Obs.Metrics.incr m_units;
  Obs.Trace.with_span ~cat:"driver" "driver.unit" @@ fun () ->
  match u.u_members with
  | [ (i, Job { profiler = (module P); config; finish; _ }) ] ->
    (* solo units take the profiler's own entry point, exactly the
       pre-fusion code path *)
    [ (i, finish (P.run ?config ?fuel prog)) ]
  | members ->
    Obs.Metrics.incr m_fused_units;
    let items =
      List.map
        (fun (_, Job { profiler; config; finish; _ }) ->
          Fused.item ?config ~finish profiler)
        members
    in
    let f = Fused.run ?fuel prog items in
    List.map2 (fun (i, _) r -> (i, r)) members f.Fused.results

let run_unit u = run_unit_with_fuel ~fuel:None u

let fuse_units = fuse

let units ~fuse js = if fuse then fuse_units js else solo js

let scatter n per_unit =
  let slots = Array.make n None in
  List.iter (List.iter (fun (i, v) -> slots.(i) <- Some v)) per_unit;
  Array.to_list slots
  |> List.map (function Some v -> v | None -> assert false)

let run_jobs ?jobs ?(fuse = true) js =
  match js with
  | [] -> []
  | _ ->
    Pool.map ?jobs run_unit (units ~fuse js)
    |> scatter (List.length js)

let plan ?(fuse = true) js = List.map unit_name (units ~fuse js)

let default_jobs = Pool.default_jobs

let map = Pool.map
