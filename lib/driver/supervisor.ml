type job_error =
  | Trap of Machine.trap
  | Timeout of int
  | Io of string
  | Injected of string
  | Cancelled
  | Crash of string
  | Deadline of float
  | Mem_pressure of int

let string_of_error = function
  | Trap t -> Printf.sprintf "trap: %s" (Machine.string_of_trap t)
  | Timeout fuel -> Printf.sprintf "timeout: fuel exhausted (budget %d)" fuel
  | Io msg -> Printf.sprintf "io: %s" msg
  | Injected site -> Printf.sprintf "injected fault at site %S" site
  | Cancelled -> "cancelled before it started"
  | Crash msg -> Printf.sprintf "crash: %s" msg
  | Deadline s -> Printf.sprintf "deadline exceeded (budget %gs)" s
  | Mem_pressure words ->
    Printf.sprintf "memory watermark exceeded (%d heap words)" words

let classify = function
  | Machine.Trap (Machine.Fuel_exhausted f) -> Timeout f
  | Machine.Trap t -> Trap t
  | Fault.Injected site -> Injected site
  | Budget.Deadline_exceeded s -> Deadline s
  | Budget.Mem_pressure words -> Mem_pressure words
  | Budget.Disk_over_budget bytes ->
    Io (Printf.sprintf "checkpoint disk budget exceeded (%d bytes)" bytes)
  | Sys_error msg -> Io msg
  | e -> Crash (Printexc.to_string e)

type policy = {
  retries : int;
  fuel_timeout : int option;
  max_fuel : int option;
  jitter : float;
  on_error : [ `Skip | `Abort ];
}

let default_policy =
  { retries = 1; fuel_timeout = None; max_fuel = None; jitter = 0.;
    on_error = `Skip }

type 'a outcome = {
  o_name : string;
  o_attempts : int;
  o_result : ('a, job_error) result;
}

type 'a report = {
  outcomes : 'a outcome list;
  completed : int;
  failed : int;
  cancelled : int;
}

let oks r =
  List.filter_map
    (fun o -> match o.o_result with Ok v -> Some v | Error _ -> None)
    r.outcomes

let failures r =
  List.filter (fun o -> Result.is_error o.o_result) r.outcomes

let report_of outcomes =
  let completed, failed, cancelled =
    List.fold_left
      (fun (c, f, x) o ->
        match o.o_result with
        | Ok _ -> (c + 1, f, x)
        | Error Cancelled -> (c, f, x + 1)
        | Error _ -> (c, f + 1, x))
      (0, 0, 0) outcomes
  in
  { outcomes; completed; failed; cancelled }

(* Fuel budget for the 0-based attempt [k]: the job's own base (else the
   policy's), doubled per retry — backoff-in-fuel. Saturates instead of
   overflowing; [policy.max_fuel] caps the widening so a pathological
   job's final attempt cannot consume arbitrary fuel. [policy.jitter > 0]
   additionally widens retry budgets by a factor in [1, 1 + jitter)
   drawn from an Rng seeded by the job name and attempt index — a herd
   of identical retried units stops re-timing-out in lockstep on exactly
   the same budget, yet the draw depends on nothing but (name, k), so
   reports stay schedule-independent and reproducible. *)
let attempt_fuel policy ~name base k =
  match (match base with Some _ -> base | None -> policy.fuel_timeout) with
  | None -> None
  | Some f ->
    let widened = f lsl k in
    let widened = if k >= 62 || widened < f then max_int else widened in
    let jittered =
      if policy.jitter <= 0. || k = 0 || widened = max_int then widened
      else begin
        let rng = Rng.create (Int64.of_int (Hashtbl.hash (name, k))) in
        let factor = 1. +. (policy.jitter *. Rng.float rng) in
        let v = int_of_float (float_of_int widened *. factor) in
        if v < widened then max_int else v
      end
    in
    Some
      (match policy.max_fuel with
       | Some m -> min jittered m
       | None -> jittered)

let m_sup_jobs = Obs.Metrics.counter "supervisor.jobs"
let m_sup_retries = Obs.Metrics.counter "supervisor.retries"
let m_sup_timeouts = Obs.Metrics.counter "supervisor.timeouts"
let m_sup_failures = Obs.Metrics.counter "supervisor.failures"
let m_sup_cancelled = Obs.Metrics.counter "supervisor.cancelled"
let m_sup_deadline = Obs.Metrics.counter "supervisor.deadline"
let m_sup_mem = Obs.Metrics.counter "supervisor.mem_pressure"

(* The supervised core: every item is a (name, base_fuel, run) triple;
   [run ~fuel] performs one attempt under the given budget. *)
let supervise ?(policy = default_policy) ?jobs items =
  let flag = Pool.cancellation () in
  let cancelled_outcome name =
    Obs.Metrics.incr m_sup_cancelled;
    { o_name = name; o_attempts = 0; o_result = Error Cancelled }
  in
  let run_one (name, base, run) =
    (* a worker may pop a job between a fatal failure and its cancel
       becoming visible; honour the flag here too *)
    if Pool.cancelled flag then cancelled_outcome name
    else begin
      Obs.Metrics.incr m_sup_jobs;
      Obs.Trace.with_span ~cat:"supervisor" ("supervisor.job:" ^ name)
        (fun () ->
          let rec go k =
            match
              (Fault.point ~site:"supervisor.job";
               (* budgets are enforced between attempts too, so a job
                  that never polls on its own still cannot start past
                  the deadline *)
               Budget.poll ();
               run ~fuel:(attempt_fuel policy ~name base k))
            with
            | v -> { o_name = name; o_attempts = k + 1; o_result = Ok v }
            | exception e ->
              let err = classify e in
              (match err with
               | Deadline _ ->
                 (* the clock is global: retrying this job cannot
                    succeed, and every job behind it is already past the
                    budget — cancel the rest of the pool cooperatively *)
                 Obs.Metrics.incr m_sup_deadline;
                 Obs.Metrics.incr m_sup_failures;
                 Pool.cancel flag;
                 { o_name = name; o_attempts = k + 1; o_result = Error err }
               | _ ->
                 (match err with
                  | Timeout _ -> Obs.Metrics.incr m_sup_timeouts
                  | Mem_pressure _ -> Obs.Metrics.incr m_sup_mem
                  | Trap _ | Io _ | Injected _ | Cancelled | Crash _
                  | Deadline _ -> ());
                 if k < policy.retries then begin
                   Obs.Metrics.incr m_sup_retries;
                   Obs.Trace.instant ~cat:"supervisor" "supervisor.retry";
                   go (k + 1)
                 end
                 else begin
                   Obs.Metrics.incr m_sup_failures;
                   if policy.on_error = `Abort then Pool.cancel flag;
                   { o_name = name; o_attempts = k + 1; o_result = Error err }
                 end)
          in
          go 0)
    end
  in
  let slots = Pool.map_result ?jobs ~cancel:flag run_one items in
  report_of
    (List.map2
       (fun (name, _, _) slot ->
         match slot with
         | Some (Ok outcome) -> outcome
         | Some (Error (e, bt)) ->
           (* [run_one] is total; only the pool's own site can raise here *)
           (match e with
            | Fault.Injected _ ->
              { o_name = name; o_attempts = 0; o_result = Error (classify e) }
            | _ -> Printexc.raise_with_backtrace e bt)
         | None -> cancelled_outcome name)
       items slots)

let map ?policy ?jobs ~name f items =
  supervise ?policy ?jobs
    (List.map (fun x -> (name x, None, fun ~fuel:_ -> f x)) items)

let run_jobs ?policy ?jobs ?(fuse = true) djobs =
  (* supervision works on fused units: one unit = one machine execution =
     one retry/classification scope, however many jobs it serves. Unit
     outcomes are then expanded back to per-job outcomes in submission
     order — a unit's failure (or attempt count) is every member's. *)
  let units = if fuse then Driver.fuse djobs else Driver.solo djobs in
  let unit_report =
    supervise ?policy ?jobs
      (List.map
         (fun u ->
           ( Driver.unit_name u, Driver.unit_fuel u,
             fun ~fuel -> Driver.run_unit_with_fuel ~fuel u ))
         units)
  in
  let n = List.length djobs in
  let slots = Array.make n None in
  List.iter2
    (fun u o ->
      List.iter
        (fun (i, j) ->
          let o_result =
            match o.o_result with
            | Ok pairs -> Ok (List.assoc i pairs)
            | Error e -> Error e
          in
          slots.(i) <-
            Some { o_name = Driver.job_name j; o_attempts = o.o_attempts;
                   o_result })
        (Driver.unit_members u))
    units unit_report.outcomes;
  report_of
    (Array.to_list slots
    |> List.map (function Some o -> o | None -> assert false))

let run_strings ?policy ?jobs ?checkpoint named =
  match checkpoint with
  | None ->
    supervise ?policy ?jobs
      (List.map (fun (name, f) -> (name, None, fun ~fuel:_ -> f ())) named)
  | Some ck ->
    (* committed jobs never re-enter the pool: their payloads are final.
       Fresh jobs commit from the worker the moment they succeed, so a
       crash later in the grid cannot lose them. *)
    let fresh =
      List.filter (fun (name, _) -> Checkpoint.find ck name = None) named
    in
    let fresh_report =
      supervise ?policy ?jobs
        (List.map
           (fun (name, f) ->
             ( name, None,
               fun ~fuel:_ ->
                 let payload = f () in
                 Checkpoint.record ck ~name ~payload;
                 payload ))
           fresh)
    in
    let by_name =
      List.map (fun o -> (o.o_name, o)) fresh_report.outcomes
    in
    report_of
      (List.map
         (fun (name, _) ->
           match Checkpoint.find ck name with
           | Some payload when not (List.mem_assoc name by_name) ->
             (* committed before this run: served from the store *)
             { o_name = name; o_attempts = 0; o_result = Ok payload }
           | _ ->
             (match List.assoc_opt name by_name with
              | Some o -> o
              | None ->
                (* unreachable: every job is either cached or fresh *)
                { o_name = name; o_attempts = 0; o_result = Error Cancelled }))
         named)

module Testing = struct
  let attempt_fuel policy ~name ~base k = attempt_fuel policy ~name base k
end
