(* Since the profile store unification, a checkpoint is a thin veneer over
   a directory-backed {!Store.t}: the store owns the manifest format, the
   checksums, the atomic payload-then-manifest commit order, and the
   salvage-shaped load (including the "checkpoint.load" fault site). This
   module keeps the checkpoint-flavored API and telemetry. *)

type t = Store.t

let create ~resume dir = Store.open_dir ~reset:(not resume) dir

let dir t =
  match Store.dir t with
  | Some d -> d
  | None -> invalid_arg "Checkpoint.dir: not a directory store"

let find = Store.find
let completed t = (Store.stats t).Store.st_entries

let m_commits = Obs.Metrics.counter "checkpoint.commits"

let record t ~name ~payload =
  if String.contains name '\n' then
    invalid_arg "Checkpoint.record: job names may not contain newlines";
  Obs.Metrics.incr m_commits;
  Obs.Trace.with_span ~cat:"driver" "checkpoint.commit" @@ fun () ->
  (* the kill-loop harness arms this to die between the supervisor
     acknowledging a job and the store starting its commit sequence *)
  Fault.point ~site:"checkpoint.commit";
  Store.put t ~key:name ~payload
