let manifest_header = "vprof-checkpoint 1"

type t = {
  c_dir : string;
  c_mu : Mutex.t;
  c_table : (string, string) Hashtbl.t; (* name -> payload *)
  mutable c_order : string list; (* completion order, reversed *)
}

(* --- small helpers --- *)

let write_atomic ~dir path content =
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ]
      (Filename.basename path) ".tmp"
  in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Names travel on one manifest line each: escape the two characters that
   would break the line/field structure. *)
let escape name =
  if String.exists (fun c -> c = ' ' || c = '%' || c = '\n') name then begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "%20"
        | '%' -> Buffer.add_string buf "%25"
        | '\n' -> Buffer.add_string buf "%0a"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end
  else name

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         (match String.sub s (!i + 1) 2 with
          | "20" -> Buffer.add_char buf ' '
          | "25" -> Buffer.add_char buf '%'
          | "0a" -> Buffer.add_char buf '\n'
          | other -> Buffer.add_string buf ("%" ^ other));
         i := !i + 3
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

(* Payload file name: a readable sanitized stem plus the crc of the raw
   name, so distinct names can never collide after sanitization. *)
let payload_file name =
  let stem =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      name
  in
  Printf.sprintf "%s-%s.out" stem (Crc32.to_hex (Crc32.string name))

let manifest_path t = Filename.concat t.c_dir "manifest"

let entry_line name payload =
  let body =
    Printf.sprintf "done %s bytes=%d payload=%s" (escape name)
      (String.length payload)
      (Crc32.to_hex (Crc32.string payload))
  in
  Printf.sprintf "%s line=%s" body (Crc32.to_hex (Crc32.string body))

let manifest_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf manifest_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun name ->
      Buffer.add_string buf (entry_line name (Hashtbl.find t.c_table name));
      Buffer.add_char buf '\n')
    (List.rev t.c_order);
  Buffer.contents buf

(* --- loading (salvage-shaped: stop at the first damaged line) --- *)

exception Torn

let parse_entry t line =
  match String.rindex_opt line ' ' with
  | None -> raise Torn
  | Some sp ->
    let body = String.sub line 0 sp in
    let tail = String.sub line (sp + 1) (String.length line - sp - 1) in
    (match String.split_on_char '=' tail with
     | [ "line"; hex ] ->
       (match Crc32.of_hex hex with
        | Some crc when Crc32.string body = crc -> ()
        | _ -> raise Torn)
     | _ -> raise Torn);
    (match String.split_on_char ' ' body with
     | [ "done"; name; bytes; payload_crc ] ->
       let name = unescape name in
       let bytes =
         match String.split_on_char '=' bytes with
         | [ "bytes"; n ] -> int_of_string_opt n
         | _ -> None
       in
       let pcrc =
         match String.split_on_char '=' payload_crc with
         | [ "payload"; hex ] -> Crc32.of_hex hex
         | _ -> None
       in
       (match (bytes, pcrc) with
        | Some bytes, Some pcrc ->
          (* the manifest line is sound; the payload file must still agree
             with it, else the entry is treated as never completed *)
          (match read_file (Filename.concat t.c_dir (payload_file name)) with
           | exception Sys_error _ -> ()
           | payload ->
             if String.length payload = bytes
                && Crc32.string payload = pcrc
                && not (Hashtbl.mem t.c_table name)
             then begin
               Hashtbl.replace t.c_table name payload;
               t.c_order <- name :: t.c_order
             end)
        | _ -> raise Torn)
     | _ -> raise Torn)

let load t =
  (* chaos campaigns kill the loader here to prove a failed resume never
     corrupts the store: the next resume must still salvage *)
  Fault.point ~site:"checkpoint.load";
  match read_file (manifest_path t) with
  | exception Sys_error _ -> ()
  | text ->
    (match String.split_on_char '\n' text with
     | header :: lines when header = manifest_header ->
       (try
          List.iter
            (fun line -> if line <> "" then parse_entry t line)
            lines
        with Torn -> ())
     | _ -> ())

let create ~resume dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      raise (Sys_error (dir ^ ": not a directory"))
  end
  else Sys.mkdir dir 0o755;
  let t =
    { c_dir = dir; c_mu = Mutex.create (); c_table = Hashtbl.create 64;
      c_order = [] }
  in
  if resume then load t
  else write_atomic ~dir (manifest_path t) (manifest_header ^ "\n");
  t

let dir t = t.c_dir

let find t name =
  Mutex.lock t.c_mu;
  let r = Hashtbl.find_opt t.c_table name in
  Mutex.unlock t.c_mu;
  r

let completed t =
  Mutex.lock t.c_mu;
  let n = Hashtbl.length t.c_table in
  Mutex.unlock t.c_mu;
  n

let m_commits = Obs.Metrics.counter "checkpoint.commits"

let record t ~name ~payload =
  if String.contains name '\n' then
    invalid_arg "Checkpoint.record: job names may not contain newlines";
  Mutex.lock t.c_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.c_mu)
    (fun () ->
      Obs.Metrics.incr m_commits;
      Obs.Trace.with_span ~cat:"driver" "checkpoint.commit" @@ fun () ->
      (* the disk guard charges the payload before writing it, so a
         governed run stops committing the moment the budget is blown *)
      Budget.charge_disk ~bytes:(String.length payload);
      (* payload first, manifest second: a crash in between leaves an
         unreferenced payload file, which merely reruns the job *)
      write_atomic ~dir:t.c_dir
        (Filename.concat t.c_dir (payload_file name))
        payload;
      if not (Hashtbl.mem t.c_table name) then t.c_order <- name :: t.c_order;
      Hashtbl.replace t.c_table name payload;
      write_atomic ~dir:t.c_dir (manifest_path t) (manifest_text t))
