type 'v done_entry = { v : 'v; mutable tick : int }
type 'v entry = Running | Done of 'v done_entry

type ('k, 'v) t = {
  mu : Mutex.t;
  cv : Condition.t;
  tbl : ('k, 'v entry) Hashtbl.t;
  max_entries : int option;
  mutable clock : int;
  mutable computations : int;
}

let m_evictions = Obs.Metrics.counter "memo.evictions"

let create ?(size = 32) ?max_entries () =
  (match max_entries with
   | Some m when m < 1 -> invalid_arg "Memo_cache.create: max_entries < 1"
   | _ -> ());
  { mu = Mutex.create ();
    cv = Condition.create ();
    tbl = Hashtbl.create size;
    max_entries;
    clock = 0;
    computations = 0 }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* Callers hold [t.mu]. Evicts least-recently-used [Done] entries until the
   completed population fits the bound; [Running] entries are never evicted
   (a waiter is latched on them). *)
let enforce_bound t =
  match t.max_entries with
  | None -> ()
  | Some m ->
    let done_count =
      Hashtbl.fold
        (fun _ e acc -> match e with Done _ -> acc + 1 | Running -> acc)
        t.tbl 0
    in
    let excess = done_count - m in
    if excess > 0 then begin
      let victims =
        Hashtbl.fold
          (fun k e acc ->
            match e with Done d -> (d.tick, k) :: acc | Running -> acc)
          t.tbl []
        |> List.sort compare
      in
      List.iteri
        (fun i (_, k) ->
          if i < excess then begin
            Hashtbl.remove t.tbl k;
            Obs.Metrics.incr m_evictions
          end)
        victims
    end

let find_or_compute t k f =
  Mutex.lock t.mu;
  let rec get () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done d) ->
      touch t d;
      Mutex.unlock t.mu;
      d.v
    | Some Running ->
      Condition.wait t.cv t.mu;
      get ()
    | None ->
      Hashtbl.replace t.tbl k Running;
      t.computations <- t.computations + 1;
      Mutex.unlock t.mu;
      (match f () with
       | v ->
         Mutex.lock t.mu;
         let d = { v; tick = 0 } in
         touch t d;
         Hashtbl.replace t.tbl k (Done d);
         enforce_bound t;
         Condition.broadcast t.cv;
         Mutex.unlock t.mu;
         v
       | exception e ->
         (* release the key so a waiter (or a later call) can retry;
            failures are not cached *)
         Mutex.lock t.mu;
         Hashtbl.remove t.tbl k;
         Condition.broadcast t.cv;
         Mutex.unlock t.mu;
         raise e)
  in
  get ()

let computations t =
  Mutex.lock t.mu;
  let n = t.computations in
  Mutex.unlock t.mu;
  n

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  t.computations <- 0;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu
