type 'v entry = Running | Done of 'v

type ('k, 'v) t = {
  mu : Mutex.t;
  cv : Condition.t;
  tbl : ('k, 'v entry) Hashtbl.t;
  mutable computations : int;
}

let create ?(size = 32) () =
  { mu = Mutex.create ();
    cv = Condition.create ();
    tbl = Hashtbl.create size;
    computations = 0 }

let find_or_compute t k f =
  Mutex.lock t.mu;
  let rec get () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) ->
      Mutex.unlock t.mu;
      v
    | Some Running ->
      Condition.wait t.cv t.mu;
      get ()
    | None ->
      Hashtbl.replace t.tbl k Running;
      t.computations <- t.computations + 1;
      Mutex.unlock t.mu;
      (match f () with
       | v ->
         Mutex.lock t.mu;
         Hashtbl.replace t.tbl k (Done v);
         Condition.broadcast t.cv;
         Mutex.unlock t.mu;
         v
       | exception e ->
         (* release the key so a waiter (or a later call) can retry;
            failures are not cached *)
         Mutex.lock t.mu;
         Hashtbl.remove t.tbl k;
         Condition.broadcast t.cv;
         Mutex.unlock t.mu;
         raise e)
  in
  get ()

let computations t =
  Mutex.lock t.mu;
  let n = t.computations in
  Mutex.unlock t.mu;
  n

let clear t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  t.computations <- 0;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu
