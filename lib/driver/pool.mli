(** A fixed pool of worker domains pulling work from a mutex-protected
    deque.

    The pool is created per call, sized to the job count, and torn down
    before returning — profiling jobs run for milliseconds to seconds, so
    domain spawn cost is noise and keeping no resident pool means no
    global state and no shutdown protocol. The calling domain works too:
    [map ~jobs:n] spawns [n - 1] extra domains. *)

(** [Domain.recommended_domain_count ()] — what [map] uses when [jobs] is
    omitted or [0]. *)
val default_jobs : unit -> int

(** [map ~jobs f items] applies [f] to every item and returns the results
    {e in input order}, whatever order the workers finished in. [jobs <= 1]
    (after defaulting) degenerates to [List.map f items] on the calling
    domain.

    If any application raises, the exception of the {e lowest-indexed}
    failing item is re-raised after all workers have drained — so the
    surfaced error is deterministic even though later items may already
    have run (unlike serial [List.map], which stops at the first). *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
