(** A fixed pool of worker domains pulling work from a mutex-protected
    deque.

    The pool is created per call, sized to the job count, and torn down
    before returning — profiling jobs run for milliseconds to seconds, so
    domain spawn cost is noise and keeping no resident pool means no
    global state and no shutdown protocol. The calling domain works too:
    [map ~jobs:n] spawns [n - 1] extra domains.

    Every worker passes the ["pool.worker"] fault-injection site (see
    {!Fault}) before running an item, so tests can kill the k-th scheduled
    item deterministically. *)

(** [Domain.recommended_domain_count ()] — what [map] uses when [jobs] is
    omitted or [0]. *)
val default_jobs : unit -> int

(** A cancellation flag shared between a caller and the pool's workers.
    Once {!cancel}led, workers stop pulling new items (items already
    running finish); the supervisor trips it when a fatal error must stop
    the grid. *)
type cancellation

val cancellation : unit -> cancellation
val cancel : cancellation -> unit
val cancelled : cancellation -> bool

(** [map_result ?jobs ?cancel ?stop_on_error f items] applies [f] to every
    item, returning per-item slots {e in input order}:
    [Some (Ok v)] for a success, [Some (Error (e, bt))] for an application
    that raised (backtrace captured on the raising domain), and [None] for
    an item never started because the [cancel] flag was set — by the
    caller, from inside [f] via a shared {!cancellation}, or automatically
    on the first error when [stop_on_error] is [true]. Never raises. *)
val map_result :
  ?jobs:int ->
  ?cancel:cancellation ->
  ?stop_on_error:bool ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result option list

(** [map ~jobs f items] applies [f] to every item and returns the results
    {e in input order}, whatever order the workers finished in. [jobs <= 1]
    (after defaulting) degenerates to a serial map on the calling domain.

    If any application raises, the exception of the {e lowest-indexed}
    failing item is re-raised. By default every queued item still runs
    before the re-raise, so the surfaced error is deterministic even
    though later items may already have run. With [~fail_fast:true],
    workers stop pulling new items as soon as any item has failed — the
    queue is abandoned, in-flight items finish, and the lowest-indexed
    failure {e that actually occurred} is re-raised (which items ran is
    then schedule-dependent). *)
val map : ?jobs:int -> ?fail_fast:bool -> ('a -> 'b) -> 'a list -> 'b list
