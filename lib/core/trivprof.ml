type t = {
  alu_events : int;
  measured : int;
  trivial_imm : int;
  trivial_dyn : int;
  by_kind : (string * int) list;
  dynamic_instructions : int;
  stats : Counters.t;
}

let trivial_fraction t =
  if t.measured = 0 then 0.
  else float_of_int (t.trivial_imm + t.trivial_dyn) /. float_of_int t.measured

type live = {
  machine : Machine.t;
  mutable alu_events : int;
  mutable measured : int;
  mutable trivial_imm : int;
  mutable trivial_dyn : int;
  kinds : (string, int ref) Hashtbl.t;
  started : float;
}

(* The kind of triviality, if any, for [a op b]. *)
let classify op a b =
  let open Isa in
  match op with
  | Add | Sub ->
    if Int64.equal b 0L then Some "add/sub 0"
    else if op = Add && Int64.equal a 0L then Some "add/sub 0"
    else None
  | Mul ->
    if Int64.equal a 0L || Int64.equal b 0L then Some "mul by 0/1"
    else if Int64.equal a 1L || Int64.equal b 1L then Some "mul by 0/1"
    else None
  | Div | Rem -> if Int64.equal b 1L then Some "div/rem by 1" else None
  | And ->
    if Int64.equal a 0L || Int64.equal b 0L then Some "and 0/-1"
    else if Int64.equal a (-1L) || Int64.equal b (-1L) then Some "and 0/-1"
    else None
  | Or | Xor ->
    if Int64.equal a 0L || Int64.equal b 0L then Some "or/xor 0" else None
  | Sll | Srl | Sra ->
    if Int64.equal (Int64.logand b 63L) 0L then Some "shift by 0" else None
  | Cmpeq | Cmplt | Cmple | Cmpult -> None

let is_arith = function
  | Isa.Add | Isa.Sub | Isa.Mul | Isa.Div | Isa.Rem | Isa.And | Isa.Or
  | Isa.Xor | Isa.Sll | Isa.Srl | Isa.Sra -> true
  | Isa.Cmpeq | Isa.Cmplt | Isa.Cmple | Isa.Cmpult -> false

let record live kind imm =
  (if imm then live.trivial_imm <- live.trivial_imm + 1
   else live.trivial_dyn <- live.trivial_dyn + 1);
  match Hashtbl.find_opt live.kinds kind with
  | Some r -> incr r
  | None -> Hashtbl.replace live.kinds kind (ref 1)

let attach machine =
  let live =
    { machine; alu_events = 0; measured = 0; trivial_imm = 0; trivial_dyn = 0;
      kinds = Hashtbl.create 8; started = Counters.now () }
  in
  let prog = Machine.program machine in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Isa.Op (op, ra, operand, rc) when is_arith op ->
        let sources_survive =
          rc <> ra
          && (match operand with Isa.Reg rb -> rc <> rb | Isa.Imm _ -> true)
        in
        if sources_survive then
          Machine.add_hook machine pc (fun _value _addr ->
              live.alu_events <- live.alu_events + 1;
              live.measured <- live.measured + 1;
              let a = Machine.reg machine ra in
              let b, imm =
                match operand with
                | Isa.Reg rb -> (Machine.reg machine rb, false)
                | Isa.Imm v -> (v, true)
              in
              match classify op a b with
              | Some kind -> record live kind imm
              | None -> ())
        else
          Machine.add_hook machine pc (fun _value _addr ->
              live.alu_events <- live.alu_events + 1)
      | _ -> ())
    prog.Asm.code;
  live

let collect live =
  let by_kind =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) live.kinds []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- live.alu_events;
  stats.Counters.events_profiled <- live.measured;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { alu_events = live.alu_events;
    measured = live.measured;
    trivial_imm = live.trivial_imm;
    trivial_dyn = live.trivial_dyn;
    by_kind;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?fuel prog =
  let machine = Machine.create prog in
  let live = attach machine in
  ignore (Machine.run ?fuel machine);
  collect live

module Profiler = Profiler_intf.Make (struct
  let name = "trivial"

  type config = unit

  let default_config = ()

  type result = t
  type nonrec live = live

  let attach () machine = attach machine
  let collect = collect
  let stats (r : result) = r.stats
end)
