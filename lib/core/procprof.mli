(** Procedure-level value profiling: parameter and return-value invariance
    (the thesis's procedure chapters), plus the memoization-opportunity
    measurement suggested by Richardson [32] — how often a procedure is
    re-invoked with an argument tuple it has already seen.

    Parameter arity is metadata (the ISA does not encode it); procedures
    absent from [arities] have only their return value profiled. *)

type config = {
  arities : (string * int) list;  (** procedure name → argument count (≤ 6) *)
  vconfig : Vstate.config;
  memo_capacity : int;  (** distinct argument tuples remembered per procedure *)
}

val default_config : config

type proc_report = {
  r_name : string;
  r_calls : int;
  r_params : Metrics.t array;  (** one per declared argument *)
  r_return : Metrics.t;
  r_memo_hits : int;  (** calls whose argument tuple was seen before *)
  r_memo_capacity_exceeded : bool;
}

type t = {
  procs : proc_report array;  (** descending by call count *)
  total_calls : int;
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> Machine.t -> live

val collect : live -> t

val run : ?config:config -> ?fuel:int -> Asm.program -> t

(** Memoization-cache hit rate over all calls to procedures with declared
    arguments. *)
val memo_hit_rate : t -> float

(** The {!Profiler_intf.S} view of this profiler, for the parallel
    driver. *)
module Profiler :
  Profiler_intf.S with type result = t and type config = config
