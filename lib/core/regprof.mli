(** Register-granularity value profiling.

    The thesis's §II discussion of register-file prediction (Gabbay [17])
    motivates profiling the values written to each {e architectural
    register}, aggregated over all instructions targeting it — coarser
    than per-instruction profiling but exactly what a register-file value
    predictor sees. One {!Vstate.t} per register. *)

type config = { vconfig : Vstate.config }

val default_config : config

type reg_report = {
  g_reg : Isa.reg;
  g_writes : int;
  g_metrics : Metrics.t;
}

type t = {
  regs : reg_report array;  (** descending by write count; only written registers *)
  total_writes : int;
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> Machine.t -> live

val collect : live -> t

val run : ?config:config -> ?fuel:int -> Asm.program -> t

(** Execution-weighted mean of a metric over all registers. *)
val mean_metric : t -> (Metrics.t -> float) -> float

module Profiler :
  Profiler_intf.S with type result = t and type config = config
