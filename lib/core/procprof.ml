type config = {
  arities : (string * int) list;
  vconfig : Vstate.config;
  memo_capacity : int;
}

let default_config =
  { arities = []; vconfig = Vstate.default_config; memo_capacity = 4096 }

type pstate = {
  name : string;
  arity : int;
  mutable calls : int;
  params : Vstate.t array;
  return : Vstate.t;
  memo : (int64 list, unit) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_overflow : bool;
}

type proc_report = {
  r_name : string;
  r_calls : int;
  r_params : Metrics.t array;
  r_return : Metrics.t;
  r_memo_hits : int;
  r_memo_capacity_exceeded : bool;
}

type t = {
  procs : proc_report array;
  total_calls : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = { machine : Machine.t; states : pstate array; started : float }

let arg_regs = [| Isa.a0; Isa.a1; Isa.a2; Isa.a3; Isa.a4; Isa.a5 |]

let attach ?(config = default_config) machine =
  let prog = Machine.program machine in
  let states =
    Array.map
      (fun (p : Asm.proc) ->
        let arity =
          match List.assoc_opt p.pname config.arities with
          | Some n ->
            if n < 0 || n > Array.length arg_regs then
              invalid_arg "Procprof: arity out of range";
            n
          | None -> 0
        in
        { name = p.pname;
          arity;
          calls = 0;
          params = Array.init arity (fun _ -> Vstate.create ~config:config.vconfig ());
          return = Vstate.create ~config:config.vconfig ();
          memo = Hashtbl.create 64;
          memo_hits = 0;
          memo_overflow = false })
      prog.procs
  in
  Atom.instrument_proc_entries machine prog (fun p m ->
      let st = states.(p.pindex) in
      st.calls <- st.calls + 1;
      let args = ref [] in
      for i = st.arity - 1 downto 0 do
        let v = Machine.reg m arg_regs.(i) in
        Vstate.observe st.params.(i) v;
        args := v :: !args
      done;
      if st.arity > 0 then begin
        if Hashtbl.mem st.memo !args then st.memo_hits <- st.memo_hits + 1
        else if Hashtbl.length st.memo < config.memo_capacity then
          Hashtbl.replace st.memo !args ()
        else st.memo_overflow <- true
      end);
  Atom.instrument_proc_returns machine prog (fun p _m value ->
      Vstate.observe states.(p.pindex).return value);
  { machine; states; started = Counters.now () }

let collect live =
  let procs =
    Array.map
      (fun st ->
        { r_name = st.name;
          r_calls = st.calls;
          r_params = Array.map Vstate.metrics st.params;
          r_return = Vstate.metrics st.return;
          r_memo_hits = st.memo_hits;
          r_memo_capacity_exceeded = st.memo_overflow })
      live.states
  in
  Array.sort (fun a b -> compare b.r_calls a.r_calls) procs;
  let stats = Counters.create () in
  Array.iter
    (fun st ->
      let add vs =
        stats.Counters.events_profiled <-
          stats.Counters.events_profiled + Vstate.total vs;
        stats.Counters.tnv_clears <-
          stats.Counters.tnv_clears + Vstate.tnv_clears vs;
        stats.Counters.tnv_replacements <-
          stats.Counters.tnv_replacements + Vstate.tnv_replacements vs
      in
      Array.iter add st.params;
      add st.return)
    live.states;
  (* every parameter/return event this profiler sees is recorded *)
  stats.Counters.events_seen <- stats.Counters.events_profiled;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { procs;
    total_calls = Array.fold_left (fun acc p -> acc + p.r_calls) 0 procs;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine in
  ignore (Machine.run ?fuel machine);
  collect live

let memo_hit_rate t =
  let calls = ref 0 and hits = ref 0 in
  Array.iter
    (fun p ->
      if Array.length p.r_params > 0 then begin
        calls := !calls + p.r_calls;
        hits := !hits + p.r_memo_hits
      end)
    t.procs;
  if !calls = 0 then 0. else float_of_int !hits /. float_of_int !calls

module Profiler = Profiler_intf.Make (struct
  let name = "procs"

  type nonrec config = config

  let default_config = default_config

  type result = t
  type nonrec live = live

  let attach config machine = attach ~config machine
  let collect = collect
  let stats (r : result) = r.stats
end)
