(** Windowed (phase) value profiling.

    The convergent sampler (Ch. VI) declares an instruction converged when
    its invariance stops moving — implicitly assuming value behaviour is
    stationary. This profiler checks that assumption: each point's
    execution stream is cut into fixed-size windows, each window gets its
    own Inv-Top, and the report carries the drift (max |window − overall|)
    per point. Stationary points have near-zero drift; phased behaviour
    (go's board filling up, compress's dictionary warming) shows up
    directly. *)

type config = {
  window : int;  (** executions per window *)
  vconfig : Vstate.config;
  max_windows : int;  (** windows kept per point (the tail is merged) *)
}

val default_config : config

type point = {
  ph_pc : int;
  ph_instr : Isa.instr;
  ph_total : int;
  ph_overall : float;  (** Inv-Top over the whole run *)
  ph_windows : float array;  (** per-window Inv-Top, oldest first *)
  ph_drift : float;  (** max |window − overall| *)
}

type t = {
  points : point array;  (** ascending pc *)
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> Machine.t -> Atom.selection -> live

val collect : live -> t

val run :
  ?config:config -> ?selection:Atom.selection -> ?fuel:int -> Asm.program -> t

(** Execution-weighted mean drift — one number for "how phased is this
    program". *)
val mean_drift : t -> float

type profiler_config = { phase : config; selection : Atom.selection }

module Profiler :
  Profiler_intf.S with type result = t and type config = profiler_config
