type config = {
  window : int;
  vconfig : Vstate.config;
  max_windows : int;
}

let default_config =
  { window = 2000; vconfig = Vstate.default_config; max_windows = 64 }

type point = {
  ph_pc : int;
  ph_instr : Isa.instr;
  ph_total : int;
  ph_overall : float;
  ph_windows : float array;
  ph_drift : float;
}

type t = {
  points : point array;
  dynamic_instructions : int;
  stats : Counters.t;
}

type state = {
  pc : int;
  overall : Vstate.t;
  mutable window_vs : Vstate.t;
  mutable in_window : int;
  mutable finished : float list; (* reversed *)
  mutable window_count : int;
  cfg : config;
}

type live = {
  machine : Machine.t;
  states : state list;
  started : float;
}

let close_window st =
  if Vstate.total st.window_vs > 0 then begin
    st.finished <- Vstate.inv_top st.window_vs :: st.finished;
    st.window_count <- st.window_count + 1
  end;
  (* past the cap, keep accumulating into one final merged window *)
  if st.window_count < st.cfg.max_windows then begin
    st.window_vs <- Vstate.create ~config:st.cfg.vconfig ();
    st.in_window <- 0
  end

let observe st value =
  Vstate.observe st.overall value;
  Vstate.observe st.window_vs value;
  st.in_window <- st.in_window + 1;
  if st.in_window >= st.cfg.window && st.window_count < st.cfg.max_windows then
    close_window st

let attach ?(config = default_config) machine selection =
  if config.window <= 0 then invalid_arg "Phaseprof: window must be positive";
  let prog = Machine.program machine in
  let states =
    Atom.select prog selection
    |> List.map (fun pc ->
           { pc;
             overall = Vstate.create ~config:config.vconfig ();
             window_vs = Vstate.create ~config:config.vconfig ();
             in_window = 0;
             finished = [];
             window_count = 0;
             cfg = config })
  in
  List.iter
    (fun st -> Machine.add_hook machine st.pc (fun value _addr -> observe st value))
    states;
  { machine; states; started = Counters.now () }

let collect live =
  let prog = Machine.program live.machine in
  let points =
    live.states
    |> List.map (fun st ->
           (* flush the trailing partial window *)
           let windows =
             let trailing =
               if Vstate.total st.window_vs > 0 then
                 [ Vstate.inv_top st.window_vs ]
               else []
             in
             Array.of_list (List.rev_append st.finished trailing)
           in
           let overall = Vstate.inv_top st.overall in
           let drift =
             Array.fold_left
               (fun acc w -> max acc (abs_float (w -. overall)))
               0. windows
           in
           { ph_pc = st.pc;
             ph_instr = prog.Asm.code.(st.pc);
             ph_total = Vstate.total st.overall;
             ph_overall = overall;
             ph_windows = windows;
             ph_drift = drift })
    |> Array.of_list
  in
  let stats = Counters.create () in
  let profiled = Array.fold_left (fun acc p -> acc + p.ph_total) 0 points in
  stats.Counters.events_seen <- profiled;
  stats.Counters.events_profiled <- profiled;
  List.iter
    (fun st ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears st.overall;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements st.overall)
    live.states;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { points; dynamic_instructions = Machine.icount live.machine; stats }

let run ?config ?(selection = `All) ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine selection in
  ignore (Machine.run ?fuel machine);
  collect live

let mean_drift t =
  let num = ref 0. and den = ref 0. in
  Array.iter
    (fun p ->
      let w = float_of_int p.ph_total in
      num := !num +. (p.ph_drift *. w);
      den := !den +. w)
    t.points;
  if !den = 0. then 0. else !num /. !den

type profiler_config = { phase : config; selection : Atom.selection }

module Profiler = Profiler_intf.Make (struct
  let name = "phases"

  type config = profiler_config

  (* the CLI profiles loads by default; the adapter matches it *)
  let default_config = { phase = default_config; selection = `Loads }

  type result = t
  type nonrec live = live

  let attach config machine =
    attach ~config:config.phase machine config.selection

  let collect = collect
  let stats (r : result) = r.stats
end)
