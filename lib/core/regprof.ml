type config = { vconfig : Vstate.config }

let default_config = { vconfig = Vstate.default_config }

type reg_report = {
  g_reg : Isa.reg;
  g_writes : int;
  g_metrics : Metrics.t;
}

type t = {
  regs : reg_report array;
  total_writes : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = {
  machine : Machine.t;
  states : Vstate.t array; (* indexed by register number *)
  started : float;
}

let attach ?(config = default_config) machine =
  let states =
    Array.init Isa.num_regs (fun _ -> Vstate.create ~config:config.vconfig ())
  in
  let prog = Machine.program machine in
  let pcs = Atom.select prog `All in
  List.iter
    (fun pc ->
      match Isa.dest_reg prog.Asm.code.(pc) with
      | None -> ()
      | Some rd ->
        let vs = states.(rd) in
        Machine.add_hook machine pc (fun value _addr -> Vstate.observe vs value))
    pcs;
  { machine; states; started = Counters.now () }

let collect live =
  let regs =
    Array.to_list live.states
    |> List.mapi (fun r vs ->
           { g_reg = r; g_writes = Vstate.total vs; g_metrics = Vstate.metrics vs })
    |> List.filter (fun g -> g.g_writes > 0)
    |> Array.of_list
  in
  Array.sort (fun a b -> compare b.g_writes a.g_writes) regs;
  let total_writes = Array.fold_left (fun acc g -> acc + g.g_writes) 0 regs in
  let stats = Counters.create () in
  stats.Counters.events_seen <- total_writes;
  stats.Counters.events_profiled <- total_writes;
  Array.iter
    (fun vs ->
      stats.Counters.tnv_clears <- stats.Counters.tnv_clears + Vstate.tnv_clears vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
    live.states;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { regs;
    total_writes;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine in
  ignore (Machine.run ?fuel machine);
  collect live

let mean_metric t field =
  Metrics.weighted_mean field
    (Array.to_list t.regs |> List.map (fun g -> g.g_metrics))

module Profiler = Profiler_intf.Make (struct
  let name = "registers"

  type nonrec config = config

  let default_config = default_config

  type result = t
  type nonrec live = live

  let attach config machine = attach ~config machine
  let collect = collect
  let stats (r : result) = r.stats
end)
