(** The value-profile metrics of §III.C of the thesis.

    For one profiled point (an instruction, a memory location, a procedure
    parameter …):
    - [LVP]: fraction of executions whose value equals the immediately
      preceding value — the accuracy a last-value predictor would get;
    - [Inv-Top]: fraction belonging to the single most frequent TNV value;
    - [Inv-All]: fraction belonging to any value held in the TNV table;
    - [%zero]: fraction producing the value 0;
    - [Diff]: number of distinct values observed (capped — real programs
      can produce millions). *)

type t = {
  total : int;  (** profiled executions *)
  lvp : float;
  inv_top : float;
  inv_all : float;
  zero : float;
  distinct : int;
  distinct_saturated : bool;  (** [distinct] hit its tracking cap *)
  top_values : (int64 * int) array;  (** TNV contents, most frequent first *)
  stride_top : float;
      (** fraction of transitions whose delta equals the dominant delta —
          the stride analogue of Inv-Top (§II's stride-predictor
          discussion: stride 0 degenerates to last-value) *)
  top_stride : int64 option;  (** the dominant delta, when any transition
          was observed *)
}

(** All-zero metrics (for points that never executed). *)
val empty : t

(** Invariance classification of §II: an instruction is {e invariant} when
    its top value accounts for (almost) every execution, {e semi-invariant}
    when the top value dominates without being exclusive, else
    {e variant}. Thresholds follow the paper's 90%/50% working definition. *)
type classification = Invariant | Semi_invariant | Variant

val classify : ?invariant_at:float -> ?semi_at:float -> t -> classification

val string_of_classification : classification -> string

(** Which hardware value predictor the profile says this point suits —
    the classification Gabbay [18] derived from profiles, generalized:
    last-value when the top value dominates, stride when a non-zero delta
    dominates transitions, otherwise unpredictable. *)
type predictor_class = Last_value | Strided | Unpredictable

val predictor_class : ?threshold:float -> t -> predictor_class

val string_of_predictor_class : predictor_class -> string

(** [weighted_mean field points] — execution-frequency-weighted average of
    a metric across points, the aggregation every results table uses. *)
val weighted_mean : (t -> float) -> t list -> float

(** [merge a b] combines two collected snapshots as if [b]'s events
    followed [a]'s. Exact for [total], [top_values] (count-weighted union
    via {!Tnv.merge_entries}), [inv_top]/[inv_all] (recomputed from the
    merged table), and the count-weighted [lvp]/[zero]. Approximate where
    a snapshot doesn't carry enough state: [distinct] is the max of the
    operands (a lower bound on the union) and the stride figures keep the
    dominant operand's stride, rescaled (a lower bound on the true
    dominant-stride fraction). Deterministic; prefer merging live
    {!Vstate}s when both are available. *)
val merge : t -> t -> t

(** One-line rendering used by the CLI ("LVP 42.0% InvTop 61.3% …"). *)
val to_string : t -> string
