type 'a item =
  | Item : {
      profiler :
        (module Profiler_intf.S with type result = 'r and type config = 'c);
      config : 'c option;
      finish : 'r -> 'a;
    }
      -> 'a item

let item ?config ~finish profiler = Item { profiler; config; finish }

let item_name (Item { profiler = (module P); _ }) = P.name

type 'a live = {
  machine : Machine.t;
  cells : (unit -> 'a * Counters.t) list;
  started : float;
}

type 'a t = {
  results : 'a list;
  counters : Counters.t list;
  machine_steps : int;
  wall_seconds : float;
}

let attach machine items =
  let started = Counters.now () in
  let cells =
    List.map
      (fun (Item { profiler = (module P); config; finish }) ->
        let live = P.attach ?config machine in
        fun () ->
          let r = P.collect live in
          (finish r, P.stats r))
      items
  in
  { machine; cells; started }

let collect live =
  let pairs = List.map (fun cell -> cell ()) live.cells in
  let wall = Counters.now () -. live.started in
  (* every member saw the same single execution, so the shared wall clock
     replaces whatever each profiler measured for itself — reporting the
     full wall per member would count the run K times *)
  let counters =
    List.map (fun (_, c) -> { c with Counters.wall_seconds = wall }) pairs
  in
  { results = List.map fst pairs;
    counters;
    machine_steps = Machine.icount live.machine;
    wall_seconds = wall }

let m_runs = Obs.Metrics.counter "fused.runs"
let m_members = Obs.Metrics.counter "fused.members"

let run ?fuel prog items =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_members (List.length items);
  Obs.Trace.with_span ~cat:"core" "fused.run" @@ fun () ->
  let machine = Machine.create prog in
  let live = attach machine items in
  ignore (Machine.run ?fuel machine);
  collect live

let total t =
  let agg = Counters.create () in
  (* members share one execution and [collect] already stamped each with
     the shared wall clock, so sum everything and then overwrite the wall
     with the single shared measurement *)
  List.iter (fun c -> Counters.accumulate ~into:agg c) t.counters;
  agg.Counters.wall_seconds <- t.wall_seconds;
  agg
