type 'a item =
  | Item : {
      profiler :
        (module Profiler_intf.S with type result = 'r and type config = 'c);
      config : 'c option;
      finish : 'r -> 'a;
    }
      -> 'a item

let item ?config ~finish profiler = Item { profiler; config; finish }

let item_name (Item { profiler = (module P); _ }) = P.name

(* One fused member: its collector, a cost probe for degradation-time
   ranking, and the machine subscriptions it owns (so it can be shed —
   detached mid-run — without touching its siblings). *)
type 'a cell = {
  cl_name : string;
  cl_collect : unit -> 'a * Counters.t;
  cl_cost : unit -> int;
  cl_att : Machine.attachment;
  mutable cl_dropped : bool;
}

type 'a live = {
  machine : Machine.t;
  cells : 'a cell list;
  started : float;
  budget_cb : int option;
}

type 'a t = {
  results : 'a list;
  counters : Counters.t list;
  machine_steps : int;
  wall_seconds : float;
  degrade_level : int;
  shed : string list;
}

let m_shed = Obs.Metrics.counter "degrade.fused_shed"

(* Degradation step: drop the most expensive member still attached (by
   {!Counters.run_cost} of its counters so far; ties keep attach order),
   but never the last one — a fused run always yields at least one
   profile. The dropped member's accumulated state survives: its final
   result is a profile from partial observation. *)
let shed_one machine cells =
  match List.filter (fun c -> not c.cl_dropped) cells with
  | [] | [ _ ] -> ()
  | first :: rest ->
    let victim, _ =
      List.fold_left
        (fun (best, best_cost) c ->
          let cost = c.cl_cost () in
          if cost > best_cost then (c, cost) else (best, best_cost))
        (first, first.cl_cost ())
        rest
    in
    victim.cl_dropped <- true;
    Machine.detach machine victim.cl_att;
    Obs.Metrics.incr m_shed;
    Obs.Trace.instant ~cat:"core" "degrade.fused_shed"

let attach machine items =
  let started = Counters.now () in
  let cells =
    List.map
      (fun (Item { profiler = (module P); config; finish }) ->
        let live, att =
          Machine.with_attachment machine (fun () -> P.attach ?config machine)
        in
        { cl_name = P.name;
          cl_collect =
            (fun () ->
              let r = P.collect live in
              (finish r, P.stats r));
          cl_cost = (fun () -> Counters.run_cost (P.stats (P.collect live)));
          cl_att = att;
          cl_dropped = false })
      items
  in
  (* Under governance, subscribe to degradation steps; the callback runs
     on this domain only (between machine steps, from Budget.poll), so
     detaching hooks here is race-free. *)
  let budget_cb =
    if Budget.armed () then
      Some (Budget.on_degrade (fun _lvl -> shed_one machine cells))
    else None
  in
  { machine; cells; started; budget_cb }

let collect live =
  (match live.budget_cb with
   | Some id -> Budget.remove_on_degrade id
   | None -> ());
  let pairs = List.map (fun c -> c.cl_collect ()) live.cells in
  let wall = Counters.now () -. live.started in
  (* every member saw the same single execution, so the shared wall clock
     replaces whatever each profiler measured for itself — reporting the
     full wall per member would count the run K times *)
  let counters =
    List.map (fun (_, c) -> { c with Counters.wall_seconds = wall }) pairs
  in
  { results = List.map fst pairs;
    counters;
    machine_steps = Machine.icount live.machine;
    wall_seconds = wall;
    degrade_level = Budget.degrade_level ();
    shed =
      List.filter_map
        (fun c -> if c.cl_dropped then Some c.cl_name else None)
        live.cells }

let m_runs = Obs.Metrics.counter "fused.runs"
let m_members = Obs.Metrics.counter "fused.members"

let run ?fuel prog items =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_members (List.length items);
  Obs.Trace.with_span ~cat:"core" "fused.run" @@ fun () ->
  let machine = Machine.create prog in
  let live = attach machine items in
  ignore (Machine.run ?fuel machine);
  collect live

let total t =
  let agg = Counters.create () in
  (* members share one execution and [collect] already stamped each with
     the shared wall clock, so sum everything and then overwrite the wall
     with the single shared measurement *)
  List.iter (fun c -> Counters.accumulate ~into:agg c) t.counters;
  agg.Counters.wall_seconds <- t.wall_seconds;
  agg
