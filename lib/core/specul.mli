(** Speculative-load conflict profiling, after Moudgill & Moreno [29].

    Their software scheme hoists a load above stores and re-checks the
    {e value} at the load's original position, paying a recovery sequence
    when it changed. The thesis (§II.A.1) proposes value profiles to pick
    which loads to hoist: "only reschedule loads with a high invariance …
    this could potentially decrease the number of mis-speculated loads."

    This profiler measures, per static load, the {e conflict rate}: the
    fraction of executions where a store modified the loaded address's
    content since this load last read that address — exactly the
    executions whose value check would fail under hoisting. E22 then
    shows the profile-guided selection the thesis proposes. *)

type load_report = {
  sl_pc : int;
  sl_executions : int;
  sl_conflicts : int;  (** executions whose value check would fail *)
  sl_conflict_rate : float;
}

type t = {
  loads : load_report array;  (** descending by executions *)
  total_executions : int;
  total_conflicts : int;
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

(** [max_tracked] bounds the per-load address maps (default [1 lsl 16]
    addresses per load; accesses beyond the cap count as conflicts, the
    conservative direction). *)
val attach : ?max_tracked:int -> Machine.t -> live

val collect : live -> t

val run : ?max_tracked:int -> ?fuel:int -> Asm.program -> t

(** Overall conflict rate of the load subset accepted by [select]
    (e.g. loads whose profiled Inv-Top clears a threshold). *)
val conflict_rate : t -> select:(load_report -> bool) -> float

type profiler_config = { max_tracked : int }

module Profiler :
  Profiler_intf.S with type result = t and type config = profiler_config
