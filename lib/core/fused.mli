(** Fusing profilers: K profilers, one machine execution.

    Because machine instrumentation is additive (see {!Machine.add_hook}),
    any number of profilers can attach to the same machine and each sees
    every event it would have seen solo. This module packages that as a
    combinator over {!Profiler_intf.S}: a heterogeneous list of packed
    profilers becomes one attach, one run, and per-profiler results —
    the workload executes once instead of K times.

    Cost attribution: each member's {!Counters.t} keeps its own event and
    TNV counts (what {e that} profiler saw and recorded), while the wall
    clock is measured once around the shared run and stamped identically
    on every member — summing member walls would count the single
    execution K times. *)

(** One member of a fused run: a profiler, an optional config, and the
    [finish] continuation mapping its typed result to the caller's
    element type (same device as {!Driver.job}). *)
type 'a item

val item :
  ?config:'c ->
  finish:('r -> 'a) ->
  (module Profiler_intf.S with type result = 'r and type config = 'c) ->
  'a item

(** The member profiler's [name]. *)
val item_name : 'a item -> string

type 'a live

type 'a t = {
  results : 'a list;  (** per member, in item order *)
  counters : Counters.t list;  (** per member, in item order *)
  machine_steps : int;  (** dynamic instructions of the ONE execution *)
  wall_seconds : float;  (** the shared attach-to-collect wall clock *)
  degrade_level : int;
      (** {!Budget} degradation level at collect time; [0] = exact. *)
  shed : string list;
      (** Members dropped by degradation steps (attach order). A shed
          member still contributes a result — a profile from partial
          observation, observed only up to its detach point. *)
}

(** Attach every member to the machine (in list order; observers at a
    shared pc fire in that order).

    Under an armed {!Budget} with [degrade = true], the fused run also
    subscribes to degradation steps: each step drops the most expensive
    member still attached (by {!Counters.run_cost} of its counters so
    far), detaching its machine hooks mid-run — but never the last
    member. Shed members are listed in the result's [shed] field. *)
val attach : Machine.t -> 'a item list -> 'a live

val collect : 'a live -> 'a t

(** Build one machine, attach all members, run once, collect all. *)
val run : ?fuel:int -> Asm.program -> 'a item list -> 'a t

(** Aggregate counters: member counts summed, wall taken once. *)
val total : 'a t -> Counters.t
