type criterion = Inv_delta | Top_stability

type config = {
  burst : int;
  initial_skip : int;
  epsilon : float;
  consecutive : int;
  backoff : float;
  max_skip : int;
  criterion : criterion;
}

let default_config =
  { burst = 50; initial_skip = 200; epsilon = 0.02; consecutive = 3;
    backoff = 4.; max_skip = 100_000; criterion = Inv_delta }

type state = {
  vs : Vstate.t;
  cfg : config;
  mutable in_burst : int; (* executions left in the current burst; 0 = skipping *)
  mutable to_skip : int;
  mutable skip : int; (* current inter-burst gap *)
  mutable prev_inv : float;
  mutable prev_top : int64 option;
  mutable streak : int;
  mutable converged : bool;
  mutable events : int;
  mutable profiled : int;
  (* Budget degradation level already folded into [skip]; the (cold)
     burst boundary applies each new level exactly once. *)
  mutable degrade_applied : int;
}

let make_state cfg vconfig =
  { vs = Vstate.create ?config:vconfig ();
    cfg;
    in_burst = cfg.burst;
    to_skip = 0;
    skip = cfg.initial_skip;
    prev_inv = -1.; (* sentinel: first burst never counts as converged *)
    prev_top = None;
    streak = 0;
    converged = false;
    events = 0;
    profiled = 0;
    degrade_applied = 0 }

(* Did this burst leave the profile where the last one did? *)
let burst_is_quiet st inv top =
  match st.cfg.criterion with
  | Inv_delta -> st.prev_inv >= 0. && abs_float (inv -. st.prev_inv) < st.cfg.epsilon
  | Top_stability ->
    (match (st.prev_top, top) with
     | Some a, Some b -> Int64.equal a b
     | Some _, None | None, Some _ | None, None -> false)

let m_bursts = Obs.Metrics.counter "sampler.bursts"
let m_backoffs = Obs.Metrics.counter "sampler.backoffs"
let m_deconverged = Obs.Metrics.counter "sampler.deconverged"
let m_degrade_widen = Obs.Metrics.counter "degrade.sampler_widened"

(* Under memory pressure the sampler sheds precision by widening the
   inter-burst gap: double [skip] per Budget degradation level not yet
   applied, clamped to [max_skip]. Cold — runs at burst boundaries only,
   and is a no-op at level 0. *)
let apply_degrade st =
  let lvl = Budget.degrade_level () in
  if lvl > st.degrade_applied then begin
    let steps = min (lvl - st.degrade_applied) 30 in
    st.degrade_applied <- lvl;
    let widened = min st.cfg.max_skip (max 1 st.skip * (1 lsl steps)) in
    if widened > st.skip then begin
      st.skip <- widened;
      Obs.Metrics.incr m_degrade_widen;
      Obs.Trace.instant ~cat:"sampler" "degrade.sampler_widened"
    end
  end

let end_of_burst st =
  apply_degrade st;
  let inv = Vstate.inv_top st.vs in
  let top = Vstate.top_value st.vs in
  Obs.Metrics.incr m_bursts;
  if burst_is_quiet st inv top then begin
    st.streak <- st.streak + 1;
    (* Back off on every quiet re-check burst, not only the one that first
       established convergence: the gap keeps widening geometrically toward
       [max_skip] while the point stays quiet. (A former [not st.converged]
       guard here froze the gap at one widening forever.) *)
    if st.streak >= st.cfg.consecutive then begin
      st.converged <- true;
      Obs.Metrics.incr m_backoffs;
      Obs.Trace.instant ~cat:"sampler" "sampler.backoff";
      let widened = int_of_float (float_of_int st.skip *. st.cfg.backoff) in
      st.skip <- min st.cfg.max_skip (max st.skip widened)
    end
  end
  else begin
    st.streak <- 0;
    (* A converged instruction that moved again is profiled eagerly anew. *)
    if st.converged then begin
      st.converged <- false;
      Obs.Metrics.incr m_deconverged;
      Obs.Trace.instant ~cat:"sampler" "sampler.deconverged";
      st.skip <- st.cfg.initial_skip
    end
  end;
  st.prev_inv <- inv;
  st.prev_top <- top;
  st.to_skip <- st.skip;
  st.in_burst <- 0

let observe st value =
  st.events <- st.events + 1;
  if st.to_skip > 0 then st.to_skip <- st.to_skip - 1
  else begin
    if st.in_burst = 0 then st.in_burst <- st.cfg.burst;
    Vstate.observe st.vs value;
    st.profiled <- st.profiled + 1;
    st.in_burst <- st.in_burst - 1;
    if st.in_burst = 0 then end_of_burst st
  end

type point = {
  s_pc : int;
  s_instr : Isa.instr;
  s_metrics : Metrics.t;
  s_events : int;
  s_profiled : int;
  s_converged : bool;
}

type t = {
  points : point array;
  total_events : int;
  profiled_events : int;
  overhead : float;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = {
  machine : Machine.t;
  states : (int * state) list;
  started : float;
}

let attach ?(config = default_config) ?vconfig machine selection =
  if config.burst <= 0 then invalid_arg "Sampler: burst must be positive";
  if config.backoff < 1. then invalid_arg "Sampler: backoff must be >= 1";
  let prog = Machine.program machine in
  let pcs = Atom.select prog selection in
  let states = List.map (fun pc -> (pc, make_state config vconfig)) pcs in
  List.iter
    (fun (pc, st) ->
      Machine.add_hook machine pc (fun value _addr -> observe st value))
    states;
  { machine; states; started = Counters.now () }

let collect live =
  let prog = Machine.program live.machine in
  let points =
    List.map
      (fun (pc, st) ->
        { s_pc = pc;
          s_instr = prog.Asm.code.(pc);
          s_metrics = Vstate.metrics st.vs;
          s_events = st.events;
          s_profiled = st.profiled;
          s_converged = st.converged })
      live.states
    |> Array.of_list
  in
  let total_events = Array.fold_left (fun a p -> a + p.s_events) 0 points in
  let profiled_events = Array.fold_left (fun a p -> a + p.s_profiled) 0 points in
  let stats = Counters.create () in
  stats.Counters.events_seen <- total_events;
  stats.Counters.events_profiled <- profiled_events;
  List.iter
    (fun (_, st) ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears st.vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements st.vs)
    live.states;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { points;
    total_events;
    profiled_events;
    overhead =
      (if total_events = 0 then 0.
       else float_of_int profiled_events /. float_of_int total_events);
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?vconfig ?(selection = `All) ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config ?vconfig machine selection in
  ignore (Machine.run ?fuel machine);
  collect live

let invariance_error sampled full =
  let errors = ref [] and weights = ref [] in
  Array.iter
    (fun sp ->
      match Profile.point_at full sp.s_pc with
      | None -> ()
      | Some fp ->
        if fp.Profile.p_metrics.Metrics.total > 0 && sp.s_metrics.Metrics.total > 0
        then begin
          errors :=
            abs_float
              (sp.s_metrics.Metrics.inv_top -. fp.Profile.p_metrics.Metrics.inv_top)
            :: !errors;
          weights := float_of_int fp.Profile.p_metrics.Metrics.total :: !weights
        end)
    sampled.points;
  (* No shared live point (disjoint selections, or nothing executed) means
     there is no evidence of error: return 0. explicitly rather than
     leaning on the downstream zero-weight convention — 0/0 here must
     never surface as NaN to the accuracy tables. *)
  if !errors = [] then 0.
  else Stats.weighted_mean (Array.of_list !errors) (Array.of_list !weights)

(* Merge sampled results point-wise by pc, in list order: metrics via
   Metrics.merge, event/profiled counts summed, a point converged only if
   every shard that observed it had converged (the conservative reading —
   one restless shard means the point was still moving somewhere). *)
let merge = function
  | [] -> invalid_arg "Sampler.merge: empty list"
  | [ one ] -> one
  | results ->
    Obs.Trace.with_span ~cat:"core" "profile.merge" @@ fun () ->
    let tbl : (int, point ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r ->
        Array.iter
          (fun p ->
            match Hashtbl.find_opt tbl p.s_pc with
            | Some acc ->
              acc :=
                { !acc with
                  s_metrics = Metrics.merge !acc.s_metrics p.s_metrics;
                  s_events = !acc.s_events + p.s_events;
                  s_profiled = !acc.s_profiled + p.s_profiled;
                  s_converged = !acc.s_converged && p.s_converged }
            | None -> Hashtbl.add tbl p.s_pc (ref p))
          r.points)
      results;
    let points =
      Hashtbl.fold (fun _ p acc -> !p :: acc) tbl []
      |> List.sort (fun p q -> compare p.s_pc q.s_pc)
      |> Array.of_list
    in
    let total_events = Array.fold_left (fun a p -> a + p.s_events) 0 points in
    let profiled_events =
      Array.fold_left (fun a p -> a + p.s_profiled) 0 points
    in
    let stats = Counters.create () in
    List.iter (fun r -> Counters.accumulate ~into:stats r.stats) results;
    { points;
      total_events;
      profiled_events;
      overhead =
        (if total_events = 0 then 0.
         else float_of_int profiled_events /. float_of_int total_events);
      dynamic_instructions =
        List.fold_left (fun a r -> a + r.dynamic_instructions) 0 results;
      stats }

type profiler_config = {
  sampler : config;
  vconfig : Vstate.config;
  selection : Atom.selection;
}

module Profiler = Profiler_intf.Make (struct
  let name = "sample"

  type config = profiler_config

  let default_config =
    { sampler = default_config;
      vconfig = Vstate.default_config;
      selection = `All }

  type result = t
  type nonrec live = live

  let attach config machine =
    attach ~config:config.sampler ~vconfig:config.vconfig machine
      config.selection

  let collect = collect
  let stats (r : result) = r.stats
end)

(* Test-only window into the per-point burst machinery, so the back-off
   behaviour can be asserted directly instead of through a whole machine
   run. Not part of the profiling API proper. *)
module Testing = struct
  type nonrec state = state

  let make_state config = make_state config None
  let observe = observe
  let current_skip st = st.skip
  let is_converged st = st.converged

  (* Feed exactly one skip-then-burst cycle of [v]s, ending right after
     [end_of_burst] ran. *)
  let run_cycle st v =
    for _ = 1 to st.to_skip + st.cfg.burst do
      observe st v
    done
end
