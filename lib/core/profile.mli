(** The value profiler: full (every-execution) instruction profiling, as in
    §III.E of the thesis — "each instruction can be profiled either before
    or after the instruction is executed; the destination register value is
    passed to the function which records the profiling information. Within
    that function, we add the register value to the TNV table."

    {!run} is the one-call entry point; {!attach}/{!collect} compose with a
    machine the caller controls (the sampling and accuracy experiments use
    the latter to co-instrument oracles). *)

type point = {
  p_pc : int;
  p_instr : Isa.instr;
  p_proc : string;  (** owning procedure name, [""] if outside any *)
  p_metrics : Metrics.t;
}

type t = {
  points : point array;  (** ascending pc *)
  instrumented : int;  (** static instrumentation points *)
  profiled_events : int;  (** dynamic analysis calls that ran *)
  dynamic_instructions : int;  (** total instructions the program executed *)
  stats : Counters.t;  (** run cost counters (all-zero on loaded profiles) *)
}

(** Profile attached to a live machine; collect after running. *)
type live

val attach : ?config:Vstate.config -> Machine.t -> Atom.selection -> live

val collect : live -> t

(** [run program] executes the program fully instrumented and returns the
    profile. [selection] defaults to [`All] value-producing instructions. *)
val run :
  ?config:Vstate.config ->
  ?selection:Atom.selection ->
  ?fuel:int ->
  Asm.program ->
  t

(** [merge profiles] combines collected profiles point-wise by pc (union
    of points, ascending; metrics via {!Metrics.merge}), summing
    [profiled_events], [dynamic_instructions] and the cost counters.
    Deterministic in the list order; left-associated, so
    [merge [a; b; c] = merge [merge [a; b]; c]]. Raises [Invalid_argument]
    on the empty list. Emits a [profile.merge] span. *)
val merge : t list -> t

(** Live profiling state of one slice (shard) of a workload execution,
    kept at the {!Vstate} level so merging shards is exact (TNV and
    distinct-set union) where merging collected {!t}s is not. *)
type shard

(** [run_shard ~window:(lo, hi) program] executes [program] in full but
    profiles only events whose 1-based dynamic index [i] satisfies
    [lo < i <= hi]. Windows partitioning [1 .. total] partition the
    profiled event stream, and the shard's accountable event count is the
    window length, so shard counts sum to the serial run's
    [dynamic_instructions]. Omitting [window] makes the shard own its
    whole run — the per-input-chunk mode, where each chunk program is the
    slice. *)
val run_shard :
  ?config:Vstate.config ->
  ?selection:Atom.selection ->
  ?window:int * int ->
  ?fuel:int ->
  Asm.program ->
  shard

(** [merge_shards program shards] merges the shards in list order into
    one profile ({!Vstate.merge} per pc, then snapshot). The result is a
    function of the shards' contents and order only — never of how they
    were scheduled across domains. [program] supplies instruction and
    procedure labels. Raises [Invalid_argument] on the empty list. Emits
    a [profile.merge] span. *)
val merge_shards : Asm.program -> shard list -> t

(** Points whose instruction has the given category. *)
val points_by_category : t -> Isa.category -> point list

(** Execution-weighted mean of a metric over a point subset. *)
val weighted : point list -> (Metrics.t -> float) -> float

(** Find the profile point at a pc. *)
val point_at : t -> int -> point option

(** The {!Profiler_intf.S} view of this profiler, for the parallel driver:
    the TNV configuration and the instruction selection packed into one
    config value. *)
type profiler_config = { vconfig : Vstate.config; selection : Atom.selection }

module Profiler :
  Profiler_intf.S with type result = t and type config = profiler_config
