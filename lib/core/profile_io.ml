let version = 2
let binary_version = 3

(* A 0x89 first byte can never start the text header, so [of_string] can
   sniff the format from the first four bytes alone. *)
let binary_magic = "\x89VP3"

let m_reads = Obs.Metrics.counter "profile_io.reads"
let m_writes = Obs.Metrics.counter "profile_io.writes"
let m_salvaged = Obs.Metrics.counter "profile_io.salvaged_lines"

let float_to_string f = Printf.sprintf "%.17g" f

let body_to_string (p : Profile.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "vprof-profile %d\n" version);
  Buffer.add_string buf
    (Printf.sprintf "meta instrumented=%d events=%d dynamic=%d\n"
       p.instrumented p.profiled_events p.dynamic_instructions);
  Array.iter
    (fun (pt : Profile.point) ->
      let m = pt.p_metrics in
      if String.contains pt.p_proc ' ' then
        invalid_arg "Profile_io: procedure names may not contain spaces";
      Buffer.add_string buf
        (Printf.sprintf
           "point pc=%d proc=%s total=%d lvp=%s invtop=%s invall=%s zero=%s \
            distinct=%d saturated=%d stridetop=%s stride=%s\n"
           pt.p_pc
           (if pt.p_proc = "" then "-" else pt.p_proc)
           m.Metrics.total
           (float_to_string m.Metrics.lvp)
           (float_to_string m.Metrics.inv_top)
           (float_to_string m.Metrics.inv_all)
           (float_to_string m.Metrics.zero)
           m.Metrics.distinct
           (if m.Metrics.distinct_saturated then 1 else 0)
           (float_to_string m.Metrics.stride_top)
           (match m.Metrics.top_stride with
            | None -> "none"
            | Some s -> Int64.to_string s));
      Array.iter
        (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "tv %Ld %d\n" v c))
        m.Metrics.top_values)
    p.points;
  Buffer.contents buf

(* v2 = the v1 body under a trailing [crc32 <hex>\n] over every preceding
   byte, so truncation and corruption are detected instead of silently
   parsing as a shorter profile. *)
let to_string p =
  let body = body_to_string p in
  body ^ Printf.sprintf "crc32 %s\n" (Crc32.to_hex (Crc32.string body))

(* --- binary v3 --- *)

(* Section tags. A v3 file is [magic · uvarint version · sections], where
   each section is framed by {!Codec.put_section} (tag, uvarint length,
   payload, payload CRC-32): one 'M', one 'S', one 'P' per point, and a
   final 'E' whose payload is the CRC-32 of every preceding file byte. *)
let tag_meta = 'M'
let tag_strtab = 'S'
let tag_point = 'P'
let tag_end = 'E'

let to_binary (p : Profile.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf binary_magic;
  Codec.put_uvarint buf binary_version;
  let meta = Buffer.create 16 in
  Codec.put_uvarint meta p.instrumented;
  Codec.put_uvarint meta p.profiled_events;
  Codec.put_uvarint meta p.dynamic_instructions;
  Codec.put_uvarint meta (Array.length p.points);
  Codec.put_section buf ~tag:tag_meta (Buffer.contents meta);
  let strtab = Codec.Strtab.create () in
  let proc_idx =
    Array.map (fun (pt : Profile.point) -> Codec.Strtab.intern strtab pt.p_proc)
      p.points
  in
  Codec.put_section buf ~tag:tag_strtab (Codec.Strtab.encode strtab);
  Array.iteri
    (fun i (pt : Profile.point) ->
      let m = pt.p_metrics in
      let pb = Buffer.create 64 in
      Codec.put_uvarint pb pt.p_pc;
      Codec.put_uvarint pb proc_idx.(i);
      Codec.put_uvarint pb m.Metrics.total;
      Codec.put_f64 pb m.Metrics.lvp;
      Codec.put_f64 pb m.Metrics.inv_top;
      Codec.put_f64 pb m.Metrics.inv_all;
      Codec.put_f64 pb m.Metrics.zero;
      Codec.put_uvarint pb m.Metrics.distinct;
      Buffer.add_char pb (if m.Metrics.distinct_saturated then '\001' else '\000');
      Codec.put_f64 pb m.Metrics.stride_top;
      (match m.Metrics.top_stride with
       | None -> Buffer.add_char pb '\000'
       | Some s ->
         Buffer.add_char pb '\001';
         Codec.put_varint64 pb s);
      Codec.put_uvarint pb (Array.length m.Metrics.top_values);
      Array.iter
        (fun (v, c) ->
          Codec.put_varint64 pb v;
          Codec.put_uvarint pb c)
        m.Metrics.top_values;
      Codec.put_section buf ~tag:tag_point (Buffer.contents pb))
    p.points;
  let body = Buffer.contents buf in
  let trailer = Buffer.create 4 in
  Codec.put_u32 trailer (Crc32.string body);
  Codec.put_section buf ~tag:tag_end (Buffer.contents trailer);
  Buffer.contents buf

let is_binary text =
  String.length text >= String.length binary_magic
  && String.sub text 0 (String.length binary_magic) = binary_magic

let fail_at off msg = failwith (Printf.sprintf "Profile_io: byte %d: %s" off msg)

(* Decode one 'P' payload, validating against [program] exactly like the
   text parser: in-range value-producing pc, non-negative counts (uvarints
   cannot be negative), no NaN metrics. *)
let decode_point ~(program : Asm.program) ~off ~(procs : string array) payload =
  let r = Codec.reader payload in
  let f64_checked key =
    let v = Codec.read_f64 r in
    if Float.is_nan v then fail_at off (Printf.sprintf "field %s is NaN" key);
    v
  in
  let pc = Codec.read_uvarint r in
  if pc < 0 || pc >= Array.length program.code then
    fail_at off (Printf.sprintf "pc %d outside the program" pc);
  let instr = program.code.(pc) in
  if Isa.dest_reg instr = None then
    fail_at off (Printf.sprintf "pc %d is not a value-producing instruction" pc);
  let proc_i = Codec.read_uvarint r in
  if proc_i >= Array.length procs then
    fail_at off (Printf.sprintf "proc index %d outside the string table" proc_i);
  let total = Codec.read_uvarint r in
  let lvp = f64_checked "lvp" in
  let inv_top = f64_checked "invtop" in
  let inv_all = f64_checked "invall" in
  let zero = f64_checked "zero" in
  let distinct = Codec.read_uvarint r in
  let distinct_saturated = Codec.read_byte r <> 0 in
  let stride_top = f64_checked "stridetop" in
  let top_stride =
    match Codec.read_byte r with
    | 0 -> None
    | 1 -> Some (Codec.read_varint64 r)
    | _ -> fail_at off "malformed stride option tag"
  in
  let ntv = Codec.read_uvarint r in
  if ntv > String.length payload then fail_at off "tv count exceeds section";
  let top_values =
    Array.init ntv (fun _ ->
        let v = Codec.read_varint64 r in
        let c = Codec.read_uvarint r in
        (v, c))
  in
  if not (Codec.at_end r) then fail_at off "trailing bytes in point section";
  { Profile.p_pc = pc;
    p_instr = instr;
    p_proc = procs.(proc_i);
    p_metrics =
      { Metrics.total; lvp; inv_top; inv_all; zero; distinct;
        distinct_saturated; top_values; stride_top; top_stride } }

exception Stop_salvage

let of_binary ?(salvage = false) ~(program : Asm.program) text =
  let r = Codec.reader ~pos:(String.length binary_magic) text in
  let meta = ref None in
  let procs = ref None in
  let points_rev = ref [] in
  let finished = ref false in
  let sections_kept = ref 0 in
  let decode_section () =
    let section_off = Codec.pos r in
    let tag, payload = Codec.read_section r in
    if tag = tag_end then begin
      (* trailer: whole-file CRC over every byte before this section *)
      let tr = Codec.reader payload in
      let crc = Codec.read_u32 tr in
      if crc <> Crc32.sub text 0 section_off then
        fail_at section_off "file checksum mismatch (truncated or corrupted)";
      if not (Codec.at_end r) then
        fail_at (Codec.pos r) "bytes after the end section";
      finished := true
    end
    else if tag = tag_meta then begin
      if !meta <> None then fail_at section_off "duplicate meta section";
      let mr = Codec.reader payload in
      let instrumented = Codec.read_uvarint mr in
      let profiled_events = Codec.read_uvarint mr in
      let dynamic_instructions = Codec.read_uvarint mr in
      let _point_count = Codec.read_uvarint mr in
      meta := Some (instrumented, profiled_events, dynamic_instructions)
    end
    else if tag = tag_strtab then begin
      if !meta = None then fail_at section_off "string table before meta";
      procs := Some (Codec.Strtab.decode (Codec.reader payload))
    end
    else if tag = tag_point then begin
      match !procs with
      | None -> fail_at section_off "point section before the string table"
      | Some procs ->
        points_rev :=
          decode_point ~program ~off:section_off ~procs payload :: !points_rev
    end
    else fail_at section_off (Printf.sprintf "unknown section tag %C" tag)
  in
  (try
     let vers = Codec.read_uvarint r in
     if vers <> binary_version then
       fail_at 0 (Printf.sprintf "unsupported binary version %d" vers);
     while (not !finished) && not (Codec.at_end r) do
       if salvage then begin
         (* keep every whole, checksum-valid section before the first bad
            one: a torn write truncates, it does not scramble what came
            before *)
         (try decode_section ()
          with Failure _ | Codec.Error _ -> raise Stop_salvage);
         incr sections_kept
       end
       else decode_section ()
     done;
     if (not salvage) && not !finished then
       fail_at (Codec.pos r) "missing end section (truncated?)"
   with
  | Stop_salvage -> Obs.Metrics.add m_salvaged !sections_kept
  | Codec.Error (off, msg) -> fail_at off msg);
  match !meta with
  | None -> failwith "Profile_io: missing meta section"
  | Some (instrumented, profiled_events, dynamic_instructions) ->
    { Profile.points = Array.of_list (List.rev !points_rev);
      instrumented;
      profiled_events;
      dynamic_instructions;
      stats = Counters.create () }

let write_file ?(format = `Binary) p path =
  Obs.Trace.with_span ~cat:"io" "profile_io.write" @@ fun () ->
  Obs.Metrics.incr m_writes;
  let s = match format with `Binary -> to_binary p | `Text -> to_string p in
  match Fault.cut ~site:"profile_io.write" with
  | Some n ->
    (* injected torn write: emulate a pre-v2 in-place writer dying
       mid-[output_string] — the destination is left truncated at byte
       [n] and the writer crashes. The atomic path below can never
       produce this; the fault exists so salvage/checksum handling is
       testable end-to-end. *)
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (String.sub s 0 (min n (String.length s))));
    raise (Fault.Injected "profile_io.write")
  | None ->
    (* temp-file + rename commit: a crash at any point leaves either the
       old file or the new one, never a torn mix *)
    let dir = Filename.dirname path in
    let tmp, oc =
      Filename.open_temp_file ~temp_dir:dir
        ~mode:[ Open_binary ]
        (Filename.basename path) ".tmp"
    in
    (try
       Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s);
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

(* --- text parsing --- *)

type parse_state = {
  mutable meta : (int * int * int) option;
  mutable points_rev : Profile.point list;
  mutable pending_tvs : (int64 * int) list; (* reversed, for current point *)
  mutable current : Profile.point option;
}

let fail line_no msg = failwith (Printf.sprintf "Profile_io: line %d: %s" line_no msg)

let field line_no line key =
  let prefix = key ^ "=" in
  let tokens = String.split_on_char ' ' line in
  match
    List.find_opt (fun t -> String.length t > String.length prefix
                            && String.sub t 0 (String.length prefix) = prefix)
      tokens
  with
  | Some t ->
    String.sub t (String.length prefix) (String.length t - String.length prefix)
  | None -> fail line_no (Printf.sprintf "missing field %s" key)

let int_field line_no line key =
  match int_of_string_opt (field line_no line key) with
  | Some v -> v
  | None -> fail line_no (Printf.sprintf "field %s is not an integer" key)

(* Counts (executions, distinct values, tv occurrence counts, meta totals)
   can never be negative; a negative one means the file is corrupt, and
   building a profile from it would poison every downstream ratio. *)
let count_field line_no line key =
  let v = int_field line_no line key in
  if v < 0 then fail line_no (Printf.sprintf "field %s is negative (%d)" key v);
  v

let float_field line_no line key =
  match float_of_string_opt (field line_no line key) with
  | Some v ->
    if Float.is_nan v then fail line_no (Printf.sprintf "field %s is NaN" key);
    v
  | None -> fail line_no (Printf.sprintf "field %s is not a float" key)

let flush_current st =
  match st.current with
  | None -> ()
  | Some pt ->
    let top_values = Array.of_list (List.rev st.pending_tvs) in
    let pt =
      { pt with Profile.p_metrics = { pt.p_metrics with Metrics.top_values } }
    in
    st.points_rev <- pt :: st.points_rev;
    st.pending_tvs <- [];
    st.current <- None

(* A well-formed v2 text ends with "crc32 <8 hex>\n" checksumming every
   byte before that line. [None] when there is no trailing crc line. *)
let split_trailer text =
  let len = String.length text in
  let line_start =
    match String.rindex_opt (String.sub text 0 (max 0 (len - 1))) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let last = String.sub text line_start (len - line_start) in
  match String.split_on_char ' ' (String.trim last) with
  | [ "crc32"; hex ] ->
    (match Crc32.of_hex hex with
     | Some crc -> Some (String.sub text 0 line_start, crc)
     | None -> None)
  | _ -> None

let of_text ?(salvage = false) ~(program : Asm.program) text =
  (* Version sniff first: v2 files must checksum-verify before any line is
     trusted (unless salvaging), v1 files have no trailer. *)
  let first_line =
    match String.index_opt text '\n' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  (match String.split_on_char ' ' first_line with
   | "vprof-profile" :: v :: _ ->
     (match int_of_string_opt v with
      | Some 1 -> ()
      | Some n when n = version ->
        if not salvage then begin
          match split_trailer text with
          | None -> fail 1 "v2 profile has no trailing crc32 line (truncated?)"
          | Some (body, crc) ->
            if Crc32.string body <> crc then
              fail 1 "crc32 mismatch (file truncated or corrupted)"
        end
      | _ -> fail 1 (Printf.sprintf "unsupported version %s" v))
   | _ -> fail 1 "missing vprof-profile header");
  let lines = String.split_on_char '\n' text in
  let st = { meta = None; points_rev = []; pending_tvs = []; current = None } in
  let kept = ref 0 in
  let parse_line i line =
    let line_no = i + 1 in
    if line = "" then ()
    else
      match String.split_on_char ' ' line with
      | "vprof-profile" :: _ -> ()
      | "crc32" :: _ -> ()
      | "meta" :: _ ->
        st.meta <-
          Some
            ( count_field line_no line "instrumented",
              count_field line_no line "events",
              count_field line_no line "dynamic" )
      | "point" :: _ ->
        flush_current st;
        let pc = int_field line_no line "pc" in
        if pc < 0 || pc >= Array.length program.code then
          fail line_no (Printf.sprintf "pc %d outside the program" pc);
        let instr = program.code.(pc) in
        if Isa.dest_reg instr = None then
          fail line_no
            (Printf.sprintf "pc %d is not a value-producing instruction" pc);
        let proc = field line_no line "proc" in
        let stride =
          match field line_no line "stride" with
          | "none" -> None
          | s ->
            (match Int64.of_string_opt s with
             | Some v -> Some v
             | None -> fail line_no "field stride is not an integer")
        in
        st.current <-
          Some
            { Profile.p_pc = pc;
              p_instr = instr;
              p_proc = (if proc = "-" then "" else proc);
              p_metrics =
                { Metrics.total = count_field line_no line "total";
                  lvp = float_field line_no line "lvp";
                  inv_top = float_field line_no line "invtop";
                  inv_all = float_field line_no line "invall";
                  zero = float_field line_no line "zero";
                  distinct = count_field line_no line "distinct";
                  distinct_saturated = int_field line_no line "saturated" <> 0;
                  top_values = [||];
                  stride_top = float_field line_no line "stridetop";
                  top_stride = stride } }
      | "tv" :: v :: c :: _ ->
        if st.current = None then fail line_no "tv line before any point";
        (match (Int64.of_string_opt v, int_of_string_opt c) with
         | Some v, Some c when c >= 0 -> st.pending_tvs <- (v, c) :: st.pending_tvs
         | Some _, Some _ -> fail line_no "tv count is negative"
         | _ -> fail line_no "malformed tv line")
      | tag :: _ -> fail line_no (Printf.sprintf "unknown line tag %S" tag)
      | [] -> ()
  in
  (try
     List.iteri
       (fun i line ->
         if salvage then begin
           (* keep everything up to the first malformed line: a torn write
              truncates, it does not scramble what came before *)
           (try parse_line i line with Failure _ -> raise Stop_salvage);
           if line <> "" then incr kept
         end
         else parse_line i line)
       lines
   with Stop_salvage -> Obs.Metrics.add m_salvaged !kept);
  flush_current st;
  match st.meta with
  | None -> failwith "Profile_io: missing meta line"
  | Some (instrumented, profiled_events, dynamic_instructions) ->
    { Profile.points = Array.of_list (List.rev st.points_rev);
      instrumented;
      profiled_events;
      dynamic_instructions;
      (* the on-disk format carries no run-cost counters; a loaded profile
         reports all-zero stats *)
      stats = Counters.create () }

let of_string ?salvage ~program text =
  Obs.Metrics.incr m_reads;
  if is_binary text then of_binary ?salvage ~program text
  else of_text ?salvage ~program text

let read_file ?salvage ~program path =
  Obs.Trace.with_span ~cat:"io" "profile_io.read" @@ fun () ->
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string ?salvage ~program (really_input_string ic n))
