let version = 1

let float_to_string f = Printf.sprintf "%.17g" f

let to_string (p : Profile.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "vprof-profile %d\n" version);
  Buffer.add_string buf
    (Printf.sprintf "meta instrumented=%d events=%d dynamic=%d\n"
       p.instrumented p.profiled_events p.dynamic_instructions);
  Array.iter
    (fun (pt : Profile.point) ->
      let m = pt.p_metrics in
      if String.contains pt.p_proc ' ' then
        invalid_arg "Profile_io: procedure names may not contain spaces";
      Buffer.add_string buf
        (Printf.sprintf
           "point pc=%d proc=%s total=%d lvp=%s invtop=%s invall=%s zero=%s \
            distinct=%d saturated=%d stridetop=%s stride=%s\n"
           pt.p_pc
           (if pt.p_proc = "" then "-" else pt.p_proc)
           m.Metrics.total
           (float_to_string m.Metrics.lvp)
           (float_to_string m.Metrics.inv_top)
           (float_to_string m.Metrics.inv_all)
           (float_to_string m.Metrics.zero)
           m.Metrics.distinct
           (if m.Metrics.distinct_saturated then 1 else 0)
           (float_to_string m.Metrics.stride_top)
           (match m.Metrics.top_stride with
            | None -> "none"
            | Some s -> Int64.to_string s));
      Array.iter
        (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "tv %Ld %d\n" v c))
        m.Metrics.top_values)
    p.points;
  Buffer.contents buf

let write_file p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

(* --- parsing --- *)

type parse_state = {
  mutable meta : (int * int * int) option;
  mutable points_rev : Profile.point list;
  mutable pending_tvs : (int64 * int) list; (* reversed, for current point *)
  mutable current : Profile.point option;
}

let fail line_no msg = failwith (Printf.sprintf "Profile_io: line %d: %s" line_no msg)

let field line_no line key =
  let prefix = key ^ "=" in
  let tokens = String.split_on_char ' ' line in
  match
    List.find_opt (fun t -> String.length t > String.length prefix
                            && String.sub t 0 (String.length prefix) = prefix)
      tokens
  with
  | Some t ->
    String.sub t (String.length prefix) (String.length t - String.length prefix)
  | None -> fail line_no (Printf.sprintf "missing field %s" key)

let int_field line_no line key =
  match int_of_string_opt (field line_no line key) with
  | Some v -> v
  | None -> fail line_no (Printf.sprintf "field %s is not an integer" key)

let float_field line_no line key =
  match float_of_string_opt (field line_no line key) with
  | Some v -> v
  | None -> fail line_no (Printf.sprintf "field %s is not a float" key)

let flush_current st =
  match st.current with
  | None -> ()
  | Some pt ->
    let top_values = Array.of_list (List.rev st.pending_tvs) in
    let pt =
      { pt with Profile.p_metrics = { pt.p_metrics with Metrics.top_values } }
    in
    st.points_rev <- pt :: st.points_rev;
    st.pending_tvs <- [];
    st.current <- None

let of_string ~(program : Asm.program) text =
  let lines = String.split_on_char '\n' text in
  let st = { meta = None; points_rev = []; pending_tvs = []; current = None } in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if line = "" then ()
      else
        match String.split_on_char ' ' line with
        | "vprof-profile" :: v :: _ ->
          if int_of_string_opt v <> Some version then
            fail line_no (Printf.sprintf "unsupported version %s" v)
        | "meta" :: _ ->
          st.meta <-
            Some
              ( int_field line_no line "instrumented",
                int_field line_no line "events",
                int_field line_no line "dynamic" )
        | "point" :: _ ->
          flush_current st;
          let pc = int_field line_no line "pc" in
          if pc < 0 || pc >= Array.length program.code then
            fail line_no (Printf.sprintf "pc %d outside the program" pc);
          let instr = program.code.(pc) in
          if Isa.dest_reg instr = None then
            fail line_no
              (Printf.sprintf "pc %d is not a value-producing instruction" pc);
          let proc = field line_no line "proc" in
          let stride =
            match field line_no line "stride" with
            | "none" -> None
            | s ->
              (match Int64.of_string_opt s with
               | Some v -> Some v
               | None -> fail line_no "field stride is not an integer")
          in
          st.current <-
            Some
              { Profile.p_pc = pc;
                p_instr = instr;
                p_proc = (if proc = "-" then "" else proc);
                p_metrics =
                  { Metrics.total = int_field line_no line "total";
                    lvp = float_field line_no line "lvp";
                    inv_top = float_field line_no line "invtop";
                    inv_all = float_field line_no line "invall";
                    zero = float_field line_no line "zero";
                    distinct = int_field line_no line "distinct";
                    distinct_saturated = int_field line_no line "saturated" <> 0;
                    top_values = [||];
                    stride_top = float_field line_no line "stridetop";
                    top_stride = stride } }
        | "tv" :: v :: c :: _ ->
          if st.current = None then fail line_no "tv line before any point";
          (match (Int64.of_string_opt v, int_of_string_opt c) with
           | Some v, Some c -> st.pending_tvs <- (v, c) :: st.pending_tvs
           | _ -> fail line_no "malformed tv line")
        | tag :: _ -> fail line_no (Printf.sprintf "unknown line tag %S" tag)
        | [] -> ())
    lines;
  flush_current st;
  match st.meta with
  | None -> failwith "Profile_io: missing meta line"
  | Some (instrumented, profiled_events, dynamic_instructions) ->
    { Profile.points = Array.of_list (List.rev st.points_rev);
      instrumented;
      profiled_events;
      dynamic_instructions;
      (* the on-disk format carries no run-cost counters; a loaded profile
         reports all-zero stats *)
      stats = Counters.create () }

let read_file ~program path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string ~program (really_input_string ic n))
