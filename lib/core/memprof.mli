(** Memory-location value profiling, Chapter VII.

    The same TNV machinery as instruction profiling, but keyed by effective
    address: every load (and/or store) contributes the transferred value to
    the TNV table of the accessed {e location}. Because a program can touch
    an unbounded number of addresses, tracking stops adding {e new}
    locations after [max_locations] (existing ones keep profiling); the
    result records how many events fell outside tracked locations. *)

type mode = Loads | Stores | Both

type config = {
  mode : mode;
  vconfig : Vstate.config;
  max_locations : int;
}

val default_config : config

type location = {
  l_addr : int64;
  l_metrics : Metrics.t;
}

type t = {
  locations : location array;  (** descending by access count *)
  tracked_events : int;
  untracked_events : int;  (** events at addresses beyond [max_locations] *)
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> Machine.t -> live

val collect : live -> t

val run : ?config:config -> ?fuel:int -> Asm.program -> t

(** Fraction of tracked locations whose Inv-Top is at least [threshold];
    [weighted] (default true) weights each location by its access count,
    matching the thesis's presentation. *)
val fraction_invariant : ?weighted:bool -> t -> threshold:float -> float

(** Execution-weighted mean of a metric over all tracked locations. *)
val mean_metric : t -> (Metrics.t -> float) -> float

(** The {!Profiler_intf.S} view of this profiler, for the parallel
    driver. *)
module Profiler :
  Profiler_intf.S with type result = t and type config = config
