(** Trivial-computation profiling, after Richardson [32] (§IV of the
    thesis's related work): how much dynamic arithmetic is {e trivial} —
    completable in one cycle because an operand makes the answer immediate
    (x*0, x*1, x+0, x/1, shifts by 0, …)?

    Operands are observed at run time through the instrumentation hooks.
    Instructions whose destination overwrites one of their own sources are
    skipped (the hook runs after execution, so the source is gone); they
    are reported as unmeasured rather than guessed. Instructions with an
    immediate operand are classified statically+dynamically like the rest
    but tallied separately, since a compiler could remove those without
    any profile. *)

type t = {
  alu_events : int;  (** dynamic arithmetic/logic/shift executions *)
  measured : int;  (** events whose operands were observable *)
  trivial_imm : int;  (** trivial thanks to an immediate operand *)
  trivial_dyn : int;  (** trivial thanks to a run-time register value *)
  by_kind : (string * int) list;  (** e.g. [("mul by 0/1", …)] — descending *)
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

(** Fraction of measured events that were trivial (either kind). *)
val trivial_fraction : t -> float

type live

val attach : Machine.t -> live

val collect : live -> t

val run : ?fuel:int -> Asm.program -> t

module Profiler :
  Profiler_intf.S with type result = t and type config = unit
