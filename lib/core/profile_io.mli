(** Profile persistence.

    Value profiles are gathered once and consumed later — by a compiler
    doing specialization, by a simulator configuring predictors — so they
    need a durable form, and a PGO pipeline is only as trustworthy as the
    profile files it consumes. This is a line-oriented text format
    (stable, diffable, greppable), version 2 of which ends in a CRC-32
    trailer over every preceding byte:

    {v
    vprof-profile 2
    meta instrumented=52 events=145011 dynamic=204852
    point pc=12 proc=compress total=3999 lvp=0.25 ... stride=none
    tv 42 1800
    tv 7 120
    crc32 9f3a1c07
    v}

    Loading re-attaches the points to a program (the same workload build),
    re-deriving each point's instruction and validating that every saved
    pc is a value-producing instruction of that program. Version-1 files
    (no trailer) still load.

    Durability properties:
    - {!write_file} commits via temp-file + [rename], so a crash leaves
      the previous file intact, never a torn one;
    - a truncated or corrupted v2 file fails its checksum on load instead
      of silently parsing as a shorter profile;
    - [~salvage:true] recovers the valid prefix of a damaged file;
    - loaded metrics are validated (no negative counts, no NaNs), each
      rejection citing its line number. *)

val to_string : Profile.t -> string

(** Atomic write (temp file in the destination directory, then [rename]).
    Carries the ["profile_io.write"] fault-injection site: arming it with
    [Fault.Truncate n] makes this call emulate a legacy in-place writer
    crashing mid-write — the destination is left truncated at byte [n]
    and [Fault.Injected] is raised. *)
val write_file : Profile.t -> string -> unit

(** Raises [Failure] with a line-numbered message on malformed input, an
    unsupported version, a checksum mismatch (v2), a negative count, a NaN
    metric, or a pc that is not a value-producing instruction of
    [program].

    [~salvage:true] instead keeps every well-formed line before the first
    malformed one and skips checksum verification — the recovery path for
    a file a crash truncated. The header and [meta] line must survive;
    everything after the tear is dropped. *)
val of_string : ?salvage:bool -> program:Asm.program -> string -> Profile.t

val read_file : ?salvage:bool -> program:Asm.program -> string -> Profile.t
