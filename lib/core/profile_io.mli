(** Profile persistence.

    Value profiles are gathered once and consumed later — by a compiler
    doing specialization, by a simulator configuring predictors — so they
    need a durable form, and a PGO pipeline is only as trustworthy as the
    profile files it consumes. Two formats coexist:

    {b v2 (text)} — line-oriented (stable, diffable, greppable), ending in
    a CRC-32 trailer over every preceding byte:

    {v
    vprof-profile 2
    meta instrumented=52 events=145011 dynamic=204852
    point pc=12 proc=compress total=3999 lvp=0.25 ... stride=none
    tv 42 1800
    tv 7 120
    crc32 9f3a1c07
    v}

    {b v3 (binary)} — compact: a magic/version header, then tagged
    sections each framed with a uvarint length and its own CRC-32
    ({!Codec.put_section}), closed by a trailer carrying the CRC-32 of the
    whole preceding file:

    {v
    89 56 50 33            magic "\x89VP3"
    03                     uvarint version
    'M' len payload crc    meta: instrumented, events, dynamic, #points
    'S' len payload crc    string table: interned procedure names
    'P' len payload crc    one per point: pc, proc idx, metrics, tv pairs
    'E' len payload crc    trailer: CRC-32 of every preceding byte
    v}

    Counts are LEB128 uvarints, profiled values zigzag varint64s, ratio
    metrics fixed 8-byte IEEE-754 bits — so v3 round-trips v2 exactly
    while being several times smaller.

    Loading re-attaches the points to a program (the same workload build),
    re-deriving each point's instruction and validating that every saved
    pc is a value-producing instruction of that program. Version-1 files
    (no trailer) still load; {!of_string} and {!read_file} sniff the
    format from the first bytes.

    Durability properties:
    - {!write_file} commits via temp-file + [rename], so a crash leaves
      the previous file intact, never a torn one;
    - a truncated or corrupted file fails its checksum on load instead
      of silently parsing as a shorter profile;
    - [~salvage:true] recovers the valid prefix of a damaged file — whole
      lines for text, whole checksum-valid sections for v3;
    - loaded metrics are validated (no negative counts, no NaNs), each
      rejection citing its line (text) or byte offset (binary).

    Telemetry: [profile_io.reads]/[writes]/[salvaged_lines] counters and
    [profile_io.read]/[write] spans in {!Obs}. *)

(** The 4-byte v3 magic ["\x89VP3"] — exposed for integrity checkers
    (the store's scrub/verify) that sniff the framing without decoding
    a whole profile. *)
val binary_magic : string

(** The v2 text serialization. *)
val to_string : Profile.t -> string

(** The v3 binary serialization. *)
val to_binary : Profile.t -> string

(** Atomic write (temp file in the destination directory, then [rename]),
    binary v3 unless [~format:`Text]. Carries the ["profile_io.write"]
    fault-injection site: arming it with [Fault.Truncate n] makes this
    call emulate a legacy in-place writer crashing mid-write — the
    destination is left truncated at byte [n] and [Fault.Injected] is
    raised. *)
val write_file : ?format:[ `Binary | `Text ] -> Profile.t -> string -> unit

(** Sniffs the format (v3 magic bytes, else text). Raises [Failure] with
    a line- or byte-offset message on malformed input, an unsupported
    version, a checksum mismatch, a negative count, a NaN metric, or a pc
    that is not a value-producing instruction of [program].

    [~salvage:true] instead keeps every well-formed line (text) or whole
    checksum-valid section (v3) before the first damaged one and skips
    whole-file checksum verification — the recovery path for a file a
    crash truncated. The header and meta must survive; everything after
    the tear is dropped. *)
val of_string : ?salvage:bool -> program:Asm.program -> string -> Profile.t

val read_file : ?salvage:bool -> program:Asm.program -> string -> Profile.t
