type config = {
  arities : (string * int) list;
  vconfig : Vstate.config;
  max_contexts : int;
}

let default_config =
  { arities = []; vconfig = Vstate.default_config; max_contexts = 1 lsl 16 }

type context_report = {
  c_proc : string;
  c_site : int;
  c_calls : int;
  c_params : Metrics.t array;
}

type t = {
  contexts : context_report array;
  untracked_calls : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type cstate = {
  name : string;
  mutable calls : int;
  params : Vstate.t array;
}

type live = {
  machine : Machine.t;
  table : (int * int, cstate) Hashtbl.t; (* (proc index, site) *)
  config : config;
  mutable untracked : int;
  started : float;
}

let arg_regs = [| Isa.a0; Isa.a1; Isa.a2; Isa.a3; Isa.a4; Isa.a5 |]

let attach ?(config = default_config) machine =
  let prog = Machine.program machine in
  let live =
    { machine; table = Hashtbl.create 256; config; untracked = 0;
      started = Counters.now () }
  in
  Atom.instrument_proc_entries machine prog (fun p m ->
      match List.assoc_opt p.pname config.arities with
      | None | Some 0 -> ()
      | Some arity ->
        let site = Option.value ~default:(-1) (Machine.caller_pc m) in
        let key = (p.pindex, site) in
        let st =
          match Hashtbl.find_opt live.table key with
          | Some st -> Some st
          | None ->
            if Hashtbl.length live.table < config.max_contexts then begin
              let st =
                { name = p.pname;
                  calls = 0;
                  params =
                    Array.init arity (fun _ ->
                        Vstate.create ~config:config.vconfig ()) }
              in
              Hashtbl.replace live.table key st;
              Some st
            end
            else begin
              live.untracked <- live.untracked + 1;
              None
            end
        in
        match st with
        | None -> ()
        | Some st ->
          st.calls <- st.calls + 1;
          Array.iteri
            (fun i vs -> Vstate.observe vs (Machine.reg m arg_regs.(i)))
            st.params);
  live

let collect live =
  let contexts =
    Hashtbl.fold
      (fun (_, site) st acc ->
        { c_proc = st.name;
          c_site = site;
          c_calls = st.calls;
          c_params = Array.map Vstate.metrics st.params }
        :: acc)
      live.table []
    |> Array.of_list
  in
  Array.sort (fun a b -> compare b.c_calls a.c_calls) contexts;
  let stats = Counters.create () in
  let tracked_calls =
    Array.fold_left (fun acc c -> acc + c.c_calls) 0 contexts
  in
  stats.Counters.events_seen <- tracked_calls + live.untracked;
  stats.Counters.events_profiled <-
    Array.fold_left
      (fun acc c ->
        Array.fold_left (fun acc m -> acc + m.Metrics.total) acc c.c_params)
      0 contexts;
  Hashtbl.iter
    (fun _ st ->
      Array.iter
        (fun vs ->
          stats.Counters.tnv_clears <-
            stats.Counters.tnv_clears + Vstate.tnv_clears vs;
          stats.Counters.tnv_replacements <-
            stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
        st.params)
    live.table;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { contexts;
    untracked_calls = live.untracked;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine in
  ignore (Machine.run ?fuel machine);
  collect live

module Profiler = Profiler_intf.Make (struct
  let name = "contexts"

  type nonrec config = config

  let default_config = default_config

  type result = t
  type nonrec live = live

  let attach config machine = attach ~config machine
  let collect = collect
  let stats (r : result) = r.stats
end)

let weighted_param_invariance t =
  let metrics =
    Array.to_list t.contexts
    |> List.concat_map (fun c -> Array.to_list c.c_params)
  in
  Metrics.weighted_mean (fun m -> m.Metrics.inv_top) metrics

let context_gain t (flat : Procprof.t) =
  let by_proc = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_proc c.c_proc)
      in
      Hashtbl.replace by_proc c.c_proc (Array.to_list c.c_params @ existing))
    t.contexts;
  Array.to_list flat.Procprof.procs
  |> List.filter_map (fun (r : Procprof.proc_report) ->
         if Array.length r.r_params = 0 || r.r_calls = 0 then None
         else
           match Hashtbl.find_opt by_proc r.r_name with
           | None -> None
           | Some ctx_metrics ->
             let flat_inv =
               Metrics.weighted_mean
                 (fun m -> m.Metrics.inv_top)
                 (Array.to_list r.r_params)
             in
             let ctx_inv =
               Metrics.weighted_mean (fun m -> m.Metrics.inv_top) ctx_metrics
             in
             Some (r.r_name, flat_inv, ctx_inv))
