type load_report = {
  sl_pc : int;
  sl_executions : int;
  sl_conflicts : int;
  sl_conflict_rate : float;
}

type t = {
  loads : load_report array;
  total_executions : int;
  total_conflicts : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type load_state = {
  pc : int;
  mutable executions : int;
  mutable conflicts : int;
  (* address -> global modification sequence seen at our previous read *)
  seen : (int64, int) Hashtbl.t;
  mutable saturated : bool;
}

type live = {
  machine : Machine.t;
  max_tracked : int;
  (* address -> sequence number of the last store that CHANGED it *)
  mod_seq : (int64, int) Hashtbl.t;
  (* address -> last content we observed there (via load or store) *)
  content : (int64, int64) Hashtbl.t;
  mutable clock : int;
  states : load_state list;
  mutable store_events : int;
  started : float;
}

let attach ?(max_tracked = 1 lsl 16) machine =
  let prog = Machine.program machine in
  let states =
    Atom.select prog `Loads
    |> List.map (fun pc ->
           { pc; executions = 0; conflicts = 0; seen = Hashtbl.create 256;
             saturated = false })
  in
  let live =
    { machine; max_tracked; mod_seq = Hashtbl.create 4096;
      content = Hashtbl.create 4096; clock = 0; states;
      store_events = 0; started = Counters.now () }
  in
  (* a store bumps its address's sequence only when it changes content —
     silent stores would pass the value check *)
  let store_pcs = Atom.select prog `Stores in
  List.iter
    (fun pc ->
      Machine.add_hook machine pc (fun value addr ->
          live.store_events <- live.store_events + 1;
          let changed =
            match Hashtbl.find_opt live.content addr with
            | Some old -> not (Int64.equal old value)
            | None ->
              (* never observed: assume changed unless it stores the
                 zero a fresh page would hold *)
              not (Int64.equal value 0L)
          in
          Hashtbl.replace live.content addr value;
          if changed then begin
            live.clock <- live.clock + 1;
            Hashtbl.replace live.mod_seq addr live.clock
          end))
    store_pcs;
  List.iter
    (fun st ->
      Machine.add_hook machine st.pc (fun value addr ->
          Hashtbl.replace live.content addr value;
          st.executions <- st.executions + 1;
          let last_mod =
            Option.value ~default:0 (Hashtbl.find_opt live.mod_seq addr)
          in
          (match Hashtbl.find_opt st.seen addr with
           | Some prev_seen -> if last_mod > prev_seen then st.conflicts <- st.conflicts + 1
           | None ->
             (* first read of this address by this load: hoisting has no
                earlier execution to conflict with *)
             ());
          if Hashtbl.length st.seen < live.max_tracked then
            Hashtbl.replace st.seen addr last_mod
          else if not (Hashtbl.mem st.seen addr) then begin
            (* capped: treat untrackable addresses conservatively *)
            st.saturated <- true;
            st.conflicts <- st.conflicts + 1
          end
          else Hashtbl.replace st.seen addr last_mod))
    live.states;
  live

let collect live =
  let loads =
    live.states
    |> List.map (fun st ->
           { sl_pc = st.pc;
             sl_executions = st.executions;
             sl_conflicts = st.conflicts;
             sl_conflict_rate =
               (if st.executions = 0 then 0.
                else float_of_int st.conflicts /. float_of_int st.executions) })
    |> Array.of_list
  in
  Array.sort (fun a b -> compare b.sl_executions a.sl_executions) loads;
  let total_executions =
    Array.fold_left (fun acc l -> acc + l.sl_executions) 0 loads
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- total_executions + live.store_events;
  stats.Counters.events_profiled <- total_executions;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { loads;
    total_executions;
    total_conflicts = Array.fold_left (fun acc l -> acc + l.sl_conflicts) 0 loads;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?max_tracked ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?max_tracked machine in
  ignore (Machine.run ?fuel machine);
  collect live

type profiler_config = { max_tracked : int }

module Profiler = Profiler_intf.Make (struct
  let name = "speculate"

  type config = profiler_config

  let default_config = { max_tracked = 1 lsl 16 }

  type result = t
  type nonrec live = live

  let attach config machine = attach ~max_tracked:config.max_tracked machine
  let collect = collect
  let stats (r : result) = r.stats
end)

let conflict_rate t ~select =
  let execs = ref 0 and conflicts = ref 0 in
  Array.iter
    (fun l ->
      if select l then begin
        execs := !execs + l.sl_executions;
        conflicts := !conflicts + l.sl_conflicts
      end)
    t.loads;
  if !execs = 0 then 0. else float_of_int !conflicts /. float_of_int !execs
