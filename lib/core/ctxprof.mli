(** Call-site-sensitive (context-sensitive) procedure value profiling.

    The thesis's future-work section suggests following Young & Smith [40]
    and splitting value profiles by path history, "especially beneficial
    for procedures called from several locations". This module implements
    the one-level version: parameter profiles keyed by (procedure, call
    site). A parameter that looks variant in the aggregate often becomes
    invariant per call site — the gain {!context_gain} quantifies. *)

type config = {
  arities : (string * int) list;
  vconfig : Vstate.config;
  max_contexts : int;  (** stop tracking new (proc, site) pairs past this *)
}

val default_config : config

type context_report = {
  c_proc : string;
  c_site : int;  (** pc of the call instruction *)
  c_calls : int;
  c_params : Metrics.t array;
}

type t = {
  contexts : context_report array;  (** descending by call count *)
  untracked_calls : int;
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> Machine.t -> live

val collect : live -> t

val run : ?config:config -> ?fuel:int -> Asm.program -> t

module Profiler :
  Profiler_intf.S with type result = t and type config = config

(** Call-weighted mean parameter Inv-Top across all contexts of all
    procedures with declared arguments. *)
val weighted_param_invariance : t -> float

(** [context_gain ctx flat] — per procedure with declared arguments:
    (name, aggregate Inv-Top from the context-insensitive profile,
    per-site Inv-Top from this profile), both call-weighted means over
    every argument. The second number can only be >= the first. *)
val context_gain : t -> Procprof.t -> (string * float * float) list
