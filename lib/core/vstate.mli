(** Per-point profiling state: the TNV table plus the counters needed for
    the metrics of {!Metrics}. One [Vstate.t] is attached to each profiled
    instruction / memory location / procedure parameter. *)

type config = {
  tnv_capacity : int;
  tnv_policy : Tnv.policy;
  clear_interval : int;
  distinct_cap : int;  (** stop tracking new distinct values past this *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

(** Record one produced value. *)
val observe : t -> int64 -> unit

val total : t -> int

(** Periodic clears performed by this point's TNV tables (value + stride),
    for the cost counters. *)
val tnv_clears : t -> int

(** Evictions performed by this point's TNV tables (value + stride). *)
val tnv_replacements : t -> int

(** Snapshot of the metrics so far. *)
val metrics : t -> Metrics.t

(** Current Inv-Top without building a full snapshot (the convergent
    sampler polls this after every burst). *)
val inv_top : t -> float

(** Current most-frequent value, without a full snapshot. *)
val top_value : t -> int64 option

(** [merge a b] is a fresh state equivalent to observing [a]'s event
    stream followed by [b]'s, up to the single seam between them. TNV
    value/stride tables are merged without truncation ({!Tnv.merge}), the
    distinct sets are set-unioned, and zero hits and totals are summed —
    all exact. The only loss is at the seam: the serial run would compare
    [b]'s first value against [a]'s last (one potential LVP hit, one
    stride observation), so [lvp] and the stride table can each be short
    by at most one event per merge. Associative, and deterministic in its
    arguments. *)
val merge : t -> t -> t

val reset : t -> unit
