(** The unified profiler contract.

    Every profiler in the repository follows the same life cycle — attach
    instrumentation to a machine, let the machine run, collect a result —
    but each grew its own entry-point shape (extra selection arguments,
    split configurations). [S] is the common signature the parallel driver
    schedules against; the concrete modules ([Profile], [Sampler],
    [Memprof], [Procprof]) each expose an adapter submodule named
    [Profiler] that satisfies it without disturbing their original APIs.

    A profiler implementation must be {e self-contained}: all mutable
    profiling state lives in the [live] value (and the machine it is
    attached to), never in module-level globals, so distinct jobs can run
    concurrently on distinct domains. *)

module type S = sig
  (** Short stable name ("profile", "sample", "memory", "procs") used in
      logs and benchmark labels. *)
  val name : string

  (** Everything that parameterizes a run, packed into one value so the
      driver can carry it without knowing its shape. *)
  type config

  val default_config : config

  (** What a finished run yields (the concrete profiler's [t]). *)
  type result

  (** Instrumentation attached to a live machine; collect after running. *)
  type live

  val attach : ?config:config -> Machine.t -> live
  val collect : live -> result

  (** Build a machine, run it fully instrumented, collect. *)
  val run : ?config:config -> ?fuel:int -> Asm.program -> result

  (** The run's cost counters (events seen/profiled, TNV maintenance,
      attach-to-collect wall clock), for `vprof --stats` and the
      benchmark baseline. *)
  val stats : result -> Counters.t
end

(** A profiler packed as a first-class module, indexed by its result type
    (the configuration type stays existential — pair the module with a
    config of the right type at pack time if you need a non-default one). *)
type 'r t = (module S with type result = 'r)
