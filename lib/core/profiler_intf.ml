(** The unified profiler contract.

    Every profiler in the repository follows the same life cycle — attach
    instrumentation to a machine, let the machine run, collect a result —
    but each grew its own entry-point shape (extra selection arguments,
    split configurations). [S] is the common signature the parallel driver
    schedules against; the concrete modules ([Profile], [Sampler],
    [Memprof], [Procprof]) each expose an adapter submodule named
    [Profiler] that satisfies it without disturbing their original APIs.

    A profiler implementation must be {e self-contained}: all mutable
    profiling state lives in the [live] value (and the machine it is
    attached to), never in module-level globals, so distinct jobs can run
    concurrently on distinct domains. *)

module type S = sig
  (** Short stable name ("profile", "sample", "memory", "procs") used in
      logs and benchmark labels. *)
  val name : string

  (** Everything that parameterizes a run, packed into one value so the
      driver can carry it without knowing its shape. *)
  type config

  val default_config : config

  (** What a finished run yields (the concrete profiler's [t]). *)
  type result

  (** Instrumentation attached to a live machine; collect after running. *)
  type live

  val attach : ?config:config -> Machine.t -> live
  val collect : live -> result

  (** Build a machine, run it fully instrumented, collect. *)
  val run : ?config:config -> ?fuel:int -> Asm.program -> result

  (** The run's cost counters (events seen/profiled, TNV maintenance,
      attach-to-collect wall clock), for `vprof --stats` and the
      benchmark baseline. *)
  val stats : result -> Counters.t
end

(** A profiler packed as a first-class module, indexed by its result type
    (the configuration type stays existential — pair the module with a
    config of the right type at pack time if you need a non-default one). *)
type 'r t = (module S with type result = 'r)

(** What a concrete profiler supplies to {!Make}: the irreducible kernel
    of {!S} — a name, a config with its default, and the
    attach/collect/stats triple with [attach] taking the config
    {e positionally} (the functor owns the optional-argument and
    machine-building conventions, so nine adapters stop restating
    them). *)
module type Spec = sig
  val name : string

  type config

  val default_config : config

  type result
  type live

  val attach : config -> Machine.t -> live
  val collect : live -> result
  val stats : result -> Counters.t
end

(** The one adapter. Beyond satisfying {!S}, [collect] publishes the
    run's cost counters into the metrics registry under
    ["profiler.<name>.*"] (see {!Obs.publish_profiler_run}), so every
    profiler feeds the same aggregation substrate without touching the
    registry itself. *)
module Make (X : Spec) :
  S with type config = X.config and type result = X.result and type live = X.live =
struct
  let name = X.name

  type config = X.config

  let default_config = X.default_config

  type result = X.result
  type live = X.live

  let attach ?(config = X.default_config) machine = X.attach config machine

  let collect live =
    let r = X.collect live in
    let c = X.stats r in
    (* stamp the governance degradation level so callers can tell exact
       from approximate profiles; 0 (the disarmed constant) when no
       budget was ever armed *)
    let lvl = Budget.degrade_level () in
    if lvl > c.Counters.degrade_level then c.Counters.degrade_level <- lvl;
    Obs.publish_profiler_run ~name:X.name c;
    r

  let run ?(config = X.default_config) ?fuel prog =
    let machine = Machine.create prog in
    let live = X.attach config machine in
    ignore (Machine.run ?fuel machine);
    collect live

  let stats = X.stats
end
