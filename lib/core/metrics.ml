type t = {
  total : int;
  lvp : float;
  inv_top : float;
  inv_all : float;
  zero : float;
  distinct : int;
  distinct_saturated : bool;
  top_values : (int64 * int) array;
  stride_top : float;
  top_stride : int64 option;
}

let empty =
  { total = 0; lvp = 0.; inv_top = 0.; inv_all = 0.; zero = 0.; distinct = 0;
    distinct_saturated = false; top_values = [||]; stride_top = 0.;
    top_stride = None }

type classification = Invariant | Semi_invariant | Variant

let classify ?(invariant_at = 0.9) ?(semi_at = 0.5) m =
  if m.inv_top >= invariant_at then Invariant
  else if m.inv_top >= semi_at then Semi_invariant
  else Variant

let string_of_classification = function
  | Invariant -> "invariant"
  | Semi_invariant -> "semi-invariant"
  | Variant -> "variant"

type predictor_class = Last_value | Strided | Unpredictable

let predictor_class ?(threshold = 0.5) m =
  (* A dominant zero stride IS last-value behaviour, so check the value
     table first; a dominant non-zero stride wants a stride predictor. *)
  if m.inv_top >= threshold || m.lvp >= threshold then Last_value
  else
    match m.top_stride with
    | Some s when (not (Int64.equal s 0L)) && m.stride_top >= threshold ->
      Strided
    | Some _ | None -> Unpredictable

let string_of_predictor_class = function
  | Last_value -> "last-value"
  | Strided -> "strided"
  | Unpredictable -> "unpredictable"

let weighted_mean field points =
  let num = ref 0. and den = ref 0. in
  List.iter
    (fun m ->
      let w = float_of_int m.total in
      num := !num +. (field m *. w);
      den := !den +. w)
    points;
  if !den = 0. then 0. else !num /. !den

(* Merging collected metrics (vs. merging live {!Vstate}s, which is
   exact): the TNV contents are carried in [top_values], so totals,
   [inv_top] and [inv_all] are recomputed exactly from the merged table;
   [lvp] and [zero] are count-weighted means (exact up to the one seam
   event, which the shards never observed in the first place). What a
   snapshot does NOT carry is the distinct set and the stride table, so
   [distinct] degrades to [max] (a lower bound on the union) and the
   stride figures to a deterministic dominant-shard approximation: keep
   whichever operand's dominant stride accounts for more weighted mass
   (ties to the smaller stride value) and rescale its fraction to the
   merged total — a lower bound on the true dominant-stride fraction. *)
let merge a b =
  if a.total = 0 then b
  else if b.total = 0 then a
  else begin
    let total = a.total + b.total in
    let ft = float_of_int total in
    let wa = float_of_int a.total and wb = float_of_int b.total in
    let wavg fa fb = ((fa *. wa) +. (fb *. wb)) /. ft in
    let top_values = Tnv.merge_entries a.top_values b.top_values in
    let covered = Array.fold_left (fun acc (_, c) -> acc + c) 0 top_values in
    let inv_top =
      if Array.length top_values = 0 then 0.
      else float_of_int (snd top_values.(0)) /. ft
    in
    let stride_top, top_stride =
      match (a.top_stride, b.top_stride) with
      | None, None -> (0., None)
      | Some s, None -> (a.stride_top *. wa /. ft, Some s)
      | None, Some s -> (b.stride_top *. wb /. ft, Some s)
      | Some sa, Some sb when Int64.equal sa sb ->
        (wavg a.stride_top b.stride_top, Some sa)
      | Some sa, Some sb ->
        let ma = a.stride_top *. wa and mb = b.stride_top *. wb in
        if ma > mb || (ma = mb && Int64.compare sa sb <= 0) then
          (ma /. ft, Some sa)
        else (mb /. ft, Some sb)
    in
    { total;
      lvp = wavg a.lvp b.lvp;
      inv_top;
      inv_all = float_of_int covered /. ft;
      zero = wavg a.zero b.zero;
      distinct = max a.distinct b.distinct;
      distinct_saturated = a.distinct_saturated || b.distinct_saturated;
      top_values;
      stride_top;
      top_stride }
  end

let to_string m =
  Printf.sprintf
    "execs %d  LVP %.1f%%  InvTop %.1f%%  InvAll %.1f%%  zero %.1f%%  diff %d%s"
    m.total (100. *. m.lvp) (100. *. m.inv_top) (100. *. m.inv_all)
    (100. *. m.zero) m.distinct
    (if m.distinct_saturated then "+" else "")
