(** Convergent ("intelligent") value profiling, Chapter VI.

    Full profiling executes an analysis call on every instruction — too
    slow for production use. The thesis's sampler profiles each instruction
    in {e bursts}: record [burst] consecutive executions, skip [skip], and
    repeat. After every burst it compares the instruction's current Inv-Top
    with the previous burst's; when the change stays below [epsilon] for
    [consecutive] bursts the instruction is declared {e converged} and its
    skip interval is multiplied by [backoff] (capped at [max_skip]), so a
    converged instruction is revisited only occasionally in case its
    behaviour shifts.

    Overhead is reported as the fraction of dynamic events actually
    profiled; accuracy as the invariance error against a full profile. *)

(** What "the profile stopped changing" means. The thesis used the change
    in invariance; the alternative tracks the identity of the top value —
    cheaper to evaluate and differently biased (it converges even while
    Inv-Top still drifts, as long as the winner is stable). Compared in
    E18. *)
type criterion =
  | Inv_delta  (** |ΔInv-Top| < epsilon across bursts (the thesis's) *)
  | Top_stability  (** the TNV's top value is identical across bursts *)

type config = {
  burst : int;  (** executions profiled per burst *)
  initial_skip : int;  (** executions skipped between bursts *)
  epsilon : float;  (** convergence threshold on |ΔInv-Top| *)
  consecutive : int;  (** quiet bursts needed to declare convergence *)
  backoff : float;  (** skip multiplier once converged (>= 1) *)
  max_skip : int;
  criterion : criterion;
}

val default_config : config

type point = {
  s_pc : int;
  s_instr : Isa.instr;
  s_metrics : Metrics.t;  (** metrics over the sampled subset *)
  s_events : int;  (** dynamic events seen (profiled + skipped) *)
  s_profiled : int;  (** events actually recorded *)
  s_converged : bool;
}

type t = {
  points : point array;
  total_events : int;
  profiled_events : int;
  overhead : float;  (** profiled / total, 0 when nothing executed *)
  dynamic_instructions : int;
  stats : Counters.t;  (** run cost counters *)
}

type live

val attach : ?config:config -> ?vconfig:Vstate.config -> Machine.t -> Atom.selection -> live

val collect : live -> t

(** Instrument, run, collect. *)
val run :
  ?config:config ->
  ?vconfig:Vstate.config ->
  ?selection:Atom.selection ->
  ?fuel:int ->
  Asm.program ->
  t

(** Mean absolute Inv-Top error of the sampled profile against a full
    profile of the same program, weighted by true execution frequency.
    Points missing from either side are ignored; when the two profiles
    share no live point at all (disjoint selections, or nothing executed)
    the error is [0.] by definition — never NaN. *)
val invariance_error : t -> Profile.t -> float

(** [merge results] combines sampled results point-wise by pc, in list
    order: metrics via {!Metrics.merge}, event and profiled counts
    summed, and a point reported converged only if every result that
    observed it had converged. Deterministic; raises [Invalid_argument]
    on the empty list. *)
val merge : t list -> t

(** The {!Profiler_intf.S} view of this profiler, for the parallel driver:
    sampling parameters, TNV configuration and instruction selection
    packed into one config value. *)
type profiler_config = {
  sampler : config;
  vconfig : Vstate.config;
  selection : Atom.selection;
}

module Profiler :
  Profiler_intf.S with type result = t and type config = profiler_config

(** Test-only access to a single point's burst/skip state machine, so the
    convergent back-off can be exercised deterministically (each quiet
    re-check burst must keep widening the gap toward [max_skip]; a noisy
    burst must reset it to [initial_skip]). *)
module Testing : sig
  type state

  val make_state : config -> state

  (** Feed one dynamic event. *)
  val observe : state -> int64 -> unit

  (** Feed exactly one skip-then-burst cycle of the given value, ending
      right after the end-of-burst convergence check. *)
  val run_cycle : state -> int64 -> unit

  (** The current inter-burst gap. *)
  val current_skip : state -> int

  val is_converged : state -> bool
end
