type config = {
  tnv_capacity : int;
  tnv_policy : Tnv.policy;
  clear_interval : int;
  distinct_cap : int;
}

let default_config =
  { tnv_capacity = 8; tnv_policy = Tnv.Lfu_clear; clear_interval = 2000;
    distinct_cap = 1024 }

(* Growable open-addressing int64 set for the distinct-value count.
   [Hashtbl] costs a [caml_hash] C call per probe, which showed up as one
   of the larger per-event costs for high-entropy points; this probes with
   the same multiplicative hash as the TNV index. [present] marks occupied
   cells so 0L is an ordinary member. Load is kept at or under 1/2. *)
module Distinct = struct
  type t = {
    mutable values : int64 array;
    mutable present : Bytes.t;
    mutable mask : int;
    mutable count : int;
  }

  let initial_size = 16

  let create () =
    { values = Array.make initial_size 0L;
      present = Bytes.make initial_size '\000';
      mask = initial_size - 1;
      count = 0 }

  let[@inline] hash t v =
    Int64.to_int (Int64.shift_right_logical (Int64.mul v 0x9E3779B97F4A7C15L) 32)
    land t.mask

  (* Cell holding [v], or the empty cell where it would go. *)
  let rec probe t v i =
    if Bytes.unsafe_get t.present i = '\000'
       || Int64.equal (Array.unsafe_get t.values i) v
    then i
    else probe t v ((i + 1) land t.mask)

  let length t = t.count

  let grow t =
    let old_values = t.values and old_present = t.present in
    let size = 2 * (t.mask + 1) in
    t.values <- Array.make size 0L;
    t.present <- Bytes.make size '\000';
    t.mask <- size - 1;
    for i = 0 to Array.length old_values - 1 do
      if Bytes.get old_present i <> '\000' then begin
        let v = old_values.(i) in
        let j = probe t v (hash t v) in
        t.values.(j) <- v;
        Bytes.set t.present j '\001'
      end
    done

  (* [true] if [v] was freshly inserted, [false] if already present. *)
  let add t v =
    let i = probe t v (hash t v) in
    if Bytes.unsafe_get t.present i <> '\000' then false
    else begin
      t.values.(i) <- v;
      Bytes.set t.present i '\001';
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t;
      true
    end

  let mem t v =
    Bytes.unsafe_get t.present (probe t v (hash t v)) <> '\000'

  let iter t f =
    for i = 0 to t.mask do
      if Bytes.get t.present i <> '\000' then f t.values.(i)
    done

  let reset t =
    if t.mask + 1 > initial_size then begin
      t.values <- Array.make initial_size 0L;
      t.present <- Bytes.make initial_size '\000';
      t.mask <- initial_size - 1
    end
    else Bytes.fill t.present 0 (t.mask + 1) '\000';
    t.count <- 0
end

type t = {
  tnv : Tnv.t;
  deltas : Tnv.t; (* TNV over value transitions: the stride profile *)
  distinct : Distinct.t;
  distinct_cap : int;
  mutable saturated : bool;
  mutable last : int64;
  mutable has_last : bool;
  mutable lvp_hits : int;
  mutable zero_hits : int;
}

let create ?(config = default_config) () =
  { tnv =
      Tnv.create ~policy:config.tnv_policy ~clear_interval:config.clear_interval
        ~capacity:config.tnv_capacity ();
    deltas =
      Tnv.create ~policy:config.tnv_policy ~clear_interval:config.clear_interval
        ~capacity:config.tnv_capacity ();
    distinct = Distinct.create ();
    distinct_cap = config.distinct_cap;
    saturated = false;
    last = 0L;
    has_last = false;
    lvp_hits = 0;
    zero_hits = 0 }

let track_distinct t v =
  if Distinct.length t.distinct < t.distinct_cap then
    ignore (Distinct.add t.distinct v)
  else if not (Distinct.mem t.distinct v) then t.saturated <- true

let observe t v =
  let hit = Tnv.add_mem t.tnv v in
  if t.has_last then begin
    let repeat = Int64.equal v t.last in
    if repeat then begin
      t.lvp_hits <- t.lvp_hits + 1;
      (* the repeat case keeps the old [last] box and the constant 0 delta
         instead of a store barrier plus a boxed [Int64.sub] *)
      Tnv.add t.deltas 0L
    end
    else begin
      Tnv.add t.deltas (Int64.sub v t.last);
      t.last <- v
    end;
    if Int64.equal v 0L then t.zero_hits <- t.zero_hits + 1;
    (* a value already resident in the TNV table (or equal to the previous
       one) went through [track_distinct] when it first appeared, and once
       the distinct set is saturated [track_distinct] is a no-op — either
       way the hit path skips the hashtable probe, the dominant cost of the
       old per-event bookkeeping *)
    if not (repeat || hit || t.saturated) then track_distinct t v
  end
  else begin
    t.last <- v;
    t.has_last <- true;
    if Int64.equal v 0L then t.zero_hits <- t.zero_hits + 1;
    track_distinct t v
  end

let total t = Tnv.total t.tnv

let tnv_clears t = Tnv.clears t.tnv + Tnv.clears t.deltas

let tnv_replacements t = Tnv.replacements t.tnv + Tnv.replacements t.deltas

let inv_top t = Tnv.inv_top t.tnv

let top_value t = Option.map fst (Tnv.top t.tnv)

let metrics t =
  let n = total t in
  if n = 0 then Metrics.empty
  else
    let fn = float_of_int n in
    { Metrics.total = n;
      lvp = float_of_int t.lvp_hits /. fn;
      inv_top = Tnv.inv_top t.tnv;
      inv_all = Tnv.inv_all t.tnv;
      zero = float_of_int t.zero_hits /. fn;
      distinct = Distinct.length t.distinct;
      distinct_saturated = t.saturated;
      top_values = Tnv.entries t.tnv;
      stride_top = Tnv.inv_top t.deltas;
      top_stride = Option.map fst (Tnv.top t.deltas) }

(* Merge two live states as if [b]'s event stream followed [a]'s.

   Exact: TNV value and stride tables (count-weighted union, no
   truncation), the distinct-value set (true set union), zero hits, and
   totals. Approximate only at the single seam between the two streams:
   the serial run would compare [b]'s first value against [a]'s last for
   one potential LVP hit and one stride observation, which the merge
   cannot reconstruct — so [lvp_hits] and the stride table may each be
   short by at most 1 per merge. *)
let merge a b =
  let distinct = Distinct.create () in
  Distinct.iter a.distinct (fun v -> ignore (Distinct.add distinct v));
  Distinct.iter b.distinct (fun v -> ignore (Distinct.add distinct v));
  let distinct_cap = max a.distinct_cap b.distinct_cap in
  { tnv = Tnv.merge a.tnv b.tnv;
    deltas = Tnv.merge a.deltas b.deltas;
    distinct;
    distinct_cap;
    saturated =
      a.saturated || b.saturated || Distinct.length distinct > distinct_cap;
    last = (if b.has_last then b.last else a.last);
    has_last = a.has_last || b.has_last;
    lvp_hits = a.lvp_hits + b.lvp_hits;
    zero_hits = a.zero_hits + b.zero_hits }

let reset t =
  Tnv.reset t.tnv;
  Tnv.reset t.deltas;
  Distinct.reset t.distinct;
  t.saturated <- false;
  t.last <- 0L;
  t.has_last <- false;
  t.lvp_hits <- 0;
  t.zero_hits <- 0
