type point = {
  p_pc : int;
  p_instr : Isa.instr;
  p_proc : string;
  p_metrics : Metrics.t;
}

type t = {
  points : point array;
  instrumented : int;
  profiled_events : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = {
  machine : Machine.t;
  states : (int * Vstate.t) list; (* ascending pc *)
  started : float; (* Counters.now at attach time *)
}

let attach ?config machine selection =
  let prog = Machine.program machine in
  let pcs = Atom.select prog selection in
  let states = List.map (fun pc -> (pc, Vstate.create ?config ())) pcs in
  List.iter
    (fun (pc, vs) ->
      Machine.add_hook machine pc (fun value _addr -> Vstate.observe vs value))
    states;
  { machine; states; started = Counters.now () }

let proc_name prog pc =
  match Asm.proc_of_pc prog pc with
  | p -> p.Asm.pname
  | exception Not_found -> ""

let collect live =
  let prog = Machine.program live.machine in
  let points =
    List.map
      (fun (pc, vs) ->
        { p_pc = pc;
          p_instr = prog.Asm.code.(pc);
          p_proc = proc_name prog pc;
          p_metrics = Vstate.metrics vs })
      live.states
    |> Array.of_list
  in
  let profiled_events =
    Array.fold_left (fun acc p -> acc + p.p_metrics.Metrics.total) 0 points
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- Machine.icount live.machine;
  stats.Counters.events_profiled <- profiled_events;
  List.iter
    (fun (_, vs) ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
    live.states;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { points;
    instrumented = Array.length points;
    profiled_events;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?(selection = `All) ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine selection in
  ignore (Machine.run ?fuel machine);
  collect live

let points_by_category t cat =
  Array.to_list t.points
  |> List.filter (fun p -> Isa.category p.p_instr = cat)

let weighted points field =
  Metrics.weighted_mean field (List.map (fun p -> p.p_metrics) points)

let point_at t pc = Array.find_opt (fun p -> p.p_pc = pc) t.points

type profiler_config = { vconfig : Vstate.config; selection : Atom.selection }

module Profiler = Profiler_intf.Make (struct
  let name = "profile"

  type config = profiler_config

  let default_config = { vconfig = Vstate.default_config; selection = `All }

  type result = t
  type nonrec live = live

  let attach config machine =
    attach ~config:config.vconfig machine config.selection

  let collect = collect
  let stats (r : result) = r.stats
end)
