type point = {
  p_pc : int;
  p_instr : Isa.instr;
  p_proc : string;
  p_metrics : Metrics.t;
}

type t = {
  points : point array;
  instrumented : int;
  profiled_events : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = {
  machine : Machine.t;
  states : (int * Vstate.t) list; (* ascending pc *)
  started : float; (* Counters.now at attach time *)
}

let attach ?config machine selection =
  let prog = Machine.program machine in
  let pcs = Atom.select prog selection in
  let states = List.map (fun pc -> (pc, Vstate.create ?config ())) pcs in
  List.iter
    (fun (pc, vs) ->
      Machine.add_hook machine pc (fun value _addr -> Vstate.observe vs value))
    states;
  { machine; states; started = Counters.now () }

let proc_name prog pc =
  match Asm.proc_of_pc prog pc with
  | p -> p.Asm.pname
  | exception Not_found -> ""

let collect live =
  let prog = Machine.program live.machine in
  let points =
    List.map
      (fun (pc, vs) ->
        { p_pc = pc;
          p_instr = prog.Asm.code.(pc);
          p_proc = proc_name prog pc;
          p_metrics = Vstate.metrics vs })
      live.states
    |> Array.of_list
  in
  let profiled_events =
    Array.fold_left (fun acc p -> acc + p.p_metrics.Metrics.total) 0 points
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- Machine.icount live.machine;
  stats.Counters.events_profiled <- profiled_events;
  List.iter
    (fun (_, vs) ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
    live.states;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { points;
    instrumented = Array.length points;
    profiled_events;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?(selection = `All) ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine selection in
  ignore (Machine.run ?fuel machine);
  collect live

(* ---- Merging and sharded collection -------------------------------- *)

let m_merges = Obs.Metrics.counter "profile.merges"

(* Point-wise merge of two collected profiles by pc (union of points,
   ascending). Exact where Metrics.merge is exact; see its doc for the
   distinct/stride approximations. *)
let merge2 a b =
  let tbl = Hashtbl.create (Array.length a.points + Array.length b.points) in
  Array.iter (fun p -> Hashtbl.replace tbl p.p_pc p) a.points;
  Array.iter
    (fun pb ->
      match Hashtbl.find_opt tbl pb.p_pc with
      | Some pa ->
        Hashtbl.replace tbl pb.p_pc
          { pa with p_metrics = Metrics.merge pa.p_metrics pb.p_metrics }
      | None -> Hashtbl.add tbl pb.p_pc pb)
    b.points;
  let points =
    Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
    |> List.sort (fun p q -> compare p.p_pc q.p_pc)
    |> Array.of_list
  in
  let profiled_events =
    Array.fold_left (fun acc p -> acc + p.p_metrics.Metrics.total) 0 points
  in
  let stats = Counters.create () in
  Counters.accumulate ~into:stats a.stats;
  Counters.accumulate ~into:stats b.stats;
  { points;
    instrumented = Array.length points;
    profiled_events;
    dynamic_instructions = a.dynamic_instructions + b.dynamic_instructions;
    stats }

let merge = function
  | [] -> invalid_arg "Profile.merge: empty list"
  | first :: rest ->
    Obs.Trace.with_span ~cat:"core" "profile.merge" @@ fun () ->
    Obs.Metrics.incr m_merges;
    List.fold_left merge2 first rest

(* A shard is the live profiling state of one slice of a workload
   execution, kept at the Vstate level so shard merging is exact (TNV
   union, distinct-set union) rather than the lossier Metrics.merge. *)
type shard = {
  sh_states : (int * Vstate.t) list; (* ascending pc *)
  sh_icount : int; (* events this shard is accountable for *)
  sh_stats : Counters.t;
}

(* [run_shard ~window:(lo, hi) prog] executes [prog] in full but profiles
   only the events whose 1-based dynamic index i satisfies lo < i <= hi
   (the machine bumps icount before firing hooks, so inside a hook
   [Machine.icount] is exactly that index). Windows that partition
   [1 .. total] therefore partition the profiled event stream, and the
   shard's accountable icount is the window length — summing to the
   serial run's dynamic_instructions. Without [window] the shard owns the
   whole run (the per-input-chunk mode, where the chunk is the slice). *)
let run_shard ?config ?(selection = `All) ?window ?fuel prog =
  let machine = Machine.create prog in
  let started = Counters.now () in
  let pcs = Atom.select prog selection in
  let states = List.map (fun pc -> (pc, Vstate.create ?config ())) pcs in
  (match window with
   | None ->
     List.iter
       (fun (pc, vs) ->
         Machine.add_hook machine pc (fun value _addr ->
             Vstate.observe vs value))
       states
   | Some (lo, hi) ->
     List.iter
       (fun (pc, vs) ->
         Machine.add_hook machine pc (fun value _addr ->
             let i = Machine.icount machine in
             if lo < i && i <= hi then Vstate.observe vs value))
       states);
  ignore (Machine.run ?fuel machine);
  let total = Machine.icount machine in
  let sh_icount =
    match window with
    | None -> total
    | Some (lo, hi) -> min hi total - min lo total
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- sh_icount;
  stats.Counters.events_profiled <-
    List.fold_left (fun acc (_, vs) -> acc + Vstate.total vs) 0 states;
  List.iter
    (fun (_, vs) ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
    states;
  stats.Counters.wall_seconds <- Counters.now () -. started;
  { sh_states = states; sh_icount; sh_stats = stats }

(* Merge shards in list (= shard) order into one profile; the result
   depends only on the shards' contents and order, never on how they were
   scheduled. [prog] supplies the instruction/procedure labels. *)
let merge_shards prog shards =
  if shards = [] then invalid_arg "Profile.merge_shards: empty list";
  Obs.Trace.with_span ~cat:"core" "profile.merge" @@ fun () ->
  Obs.Metrics.incr m_merges;
  let pcs =
    List.concat_map (fun sh -> List.map fst sh.sh_states) shards
    |> List.sort_uniq compare
  in
  let merged_states =
    List.map
      (fun pc ->
        let vss =
          List.filter_map (fun sh -> List.assoc_opt pc sh.sh_states) shards
        in
        match vss with
        | [] -> assert false
        | first :: rest -> (pc, List.fold_left Vstate.merge first rest))
      pcs
  in
  let points =
    List.map
      (fun (pc, vs) ->
        { p_pc = pc;
          p_instr = prog.Asm.code.(pc);
          p_proc = proc_name prog pc;
          p_metrics = Vstate.metrics vs })
      merged_states
    |> Array.of_list
  in
  let profiled_events =
    Array.fold_left (fun acc p -> acc + p.p_metrics.Metrics.total) 0 points
  in
  let stats = Counters.create () in
  List.iter (fun sh -> Counters.accumulate ~into:stats sh.sh_stats) shards;
  { points;
    instrumented = Array.length points;
    profiled_events;
    dynamic_instructions =
      List.fold_left (fun acc sh -> acc + sh.sh_icount) 0 shards;
    stats }

let points_by_category t cat =
  Array.to_list t.points
  |> List.filter (fun p -> Isa.category p.p_instr = cat)

let weighted points field =
  Metrics.weighted_mean field (List.map (fun p -> p.p_metrics) points)

let point_at t pc = Array.find_opt (fun p -> p.p_pc = pc) t.points

type profiler_config = { vconfig : Vstate.config; selection : Atom.selection }

module Profiler = Profiler_intf.Make (struct
  let name = "profile"

  type config = profiler_config

  let default_config = { vconfig = Vstate.default_config; selection = `All }

  type result = t
  type nonrec live = live

  let attach config machine =
    attach ~config:config.vconfig machine config.selection

  let collect = collect
  let stats (r : result) = r.stats
end)
