type mode = Loads | Stores | Both

type config = {
  mode : mode;
  vconfig : Vstate.config;
  max_locations : int;
}

let default_config =
  { mode = Both; vconfig = Vstate.default_config; max_locations = 1 lsl 18 }

type location = { l_addr : int64; l_metrics : Metrics.t }

type t = {
  locations : location array;
  tracked_events : int;
  untracked_events : int;
  dynamic_instructions : int;
  stats : Counters.t;
}

type live = {
  machine : Machine.t;
  table : (int64, Vstate.t) Hashtbl.t;
  config : config;
  mutable untracked : int;
  started : float;
}

let attach ?(config = default_config) machine =
  let live =
    { machine; table = Hashtbl.create 4096; config; untracked = 0;
      started = Counters.now () }
  in
  let observe value addr =
    match Hashtbl.find_opt live.table addr with
    | Some vs -> Vstate.observe vs value
    | None ->
      if Hashtbl.length live.table < config.max_locations then begin
        let vs = Vstate.create ~config:config.vconfig () in
        Hashtbl.replace live.table addr vs;
        Vstate.observe vs value
      end
      else live.untracked <- live.untracked + 1
  in
  let prog = Machine.program machine in
  let selections =
    match config.mode with
    | Loads -> [ `Loads ]
    | Stores -> [ `Stores ]
    | Both -> [ `Loads; `Stores ]
  in
  List.iter
    (fun sel ->
      let pcs = Atom.select prog sel in
      ignore (Atom.instrument machine pcs (fun _pc -> observe)))
    selections;
  live

let collect live =
  let locations =
    Hashtbl.fold
      (fun addr vs acc -> { l_addr = addr; l_metrics = Vstate.metrics vs } :: acc)
      live.table []
    |> Array.of_list
  in
  Array.sort
    (fun a b -> compare b.l_metrics.Metrics.total a.l_metrics.Metrics.total)
    locations;
  let tracked =
    Array.fold_left (fun acc l -> acc + l.l_metrics.Metrics.total) 0 locations
  in
  let stats = Counters.create () in
  stats.Counters.events_seen <- tracked + live.untracked;
  stats.Counters.events_profiled <- tracked;
  Hashtbl.iter
    (fun _ vs ->
      stats.Counters.tnv_clears <-
        stats.Counters.tnv_clears + Vstate.tnv_clears vs;
      stats.Counters.tnv_replacements <-
        stats.Counters.tnv_replacements + Vstate.tnv_replacements vs)
    live.table;
  stats.Counters.wall_seconds <- Counters.now () -. live.started;
  { locations;
    tracked_events = tracked;
    untracked_events = live.untracked;
    dynamic_instructions = Machine.icount live.machine;
    stats }

let run ?config ?fuel prog =
  let machine = Machine.create prog in
  let live = attach ?config machine in
  ignore (Machine.run ?fuel machine);
  collect live

let fraction_invariant ?(weighted = true) t ~threshold =
  let num = ref 0. and den = ref 0. in
  Array.iter
    (fun l ->
      let w = if weighted then float_of_int l.l_metrics.Metrics.total else 1. in
      den := !den +. w;
      if l.l_metrics.Metrics.inv_top >= threshold then num := !num +. w)
    t.locations;
  if !den = 0. then 0. else !num /. !den

let mean_metric t field =
  Metrics.weighted_mean field
    (Array.to_list t.locations |> List.map (fun l -> l.l_metrics))

module Profiler = Profiler_intf.Make (struct
  let name = "memory"

  type nonrec config = config

  let default_config = default_config

  type result = t
  type nonrec live = live

  let attach config machine = attach ~config machine
  let collect = collect
  let stats (r : result) = r.stats
end)
