type limits = {
  deadline : float option;
  max_heap_words : int option;
  max_checkpoint_bytes : int option;
  degrade : bool;
}

let no_limits =
  { deadline = None;
    max_heap_words = None;
    max_checkpoint_bytes = None;
    degrade = false }

exception Deadline_exceeded of float
exception Mem_pressure of int
exception Disk_over_budget of int

type notice =
  | Degrade_step of int
  | Deadline_trip of float
  | Mem_trip of int

let notifier : (notice -> unit) ref = ref (fun _ -> ())
let set_notifier f = notifier := f

let max_degrade_level = 4

(* The armed flag is the only thing hot paths read. [current] is written
   under [mu] and published by the subsequent [Atomic.set] of
   [armed_flag], so pollers that observe [true] see the limits — the same
   discipline as [Fault]. *)
let armed_flag = Atomic.make false
let mu = Mutex.create ()
let current : (limits * float) option ref = ref None
let level = Atomic.make 0
let disk_bytes = Atomic.make 0

type callback = {
  cb_id : int;
  cb_dom : int;
  cb_f : int -> unit;
  (* last level delivered to this callback; callbacks registered on other
     domains catch up lazily on their own polls *)
  mutable cb_applied : int;
}

let callbacks : callback list ref = ref []
let next_cb_id = Atomic.make 0

let armed () = Atomic.get armed_flag
let degrade_level () = Atomic.get level

let arm limits =
  Mutex.lock mu;
  if Atomic.get armed_flag then begin
    Mutex.unlock mu;
    invalid_arg "Budget.arm: already armed (governed sections do not nest)"
  end;
  current := Some (limits, Unix.gettimeofday ());
  Atomic.set level 0;
  Atomic.set disk_bytes 0;
  Atomic.set armed_flag true;
  Mutex.unlock mu

let disarm () =
  Mutex.lock mu;
  Atomic.set armed_flag false;
  current := None;
  Atomic.set level 0;
  Atomic.set disk_bytes 0;
  Mutex.unlock mu

let govern limits f =
  arm limits;
  Fun.protect ~finally:disarm f

let elapsed () =
  match !current with
  | Some (_, start) when Atomic.get armed_flag ->
    Unix.gettimeofday () -. start
  | _ -> 0.

let on_degrade f =
  let id = Atomic.fetch_and_add next_cb_id 1 in
  let cb =
    { cb_id = id;
      cb_dom = (Domain.self () :> int);
      cb_f = f;
      cb_applied = Atomic.get level }
  in
  Mutex.lock mu;
  callbacks := cb :: !callbacks;
  Mutex.unlock mu;
  id

let remove_on_degrade id =
  Mutex.lock mu;
  callbacks := List.filter (fun cb -> cb.cb_id <> id) !callbacks;
  Mutex.unlock mu

(* Deliver pending steps to callbacks registered by the calling domain.
   Invoked outside [mu]: the callbacks may do real work (detach machine
   hooks). Snapshot the lagging subset under the lock first. *)
let deliver_here () =
  let lvl = Atomic.get level in
  if lvl > 0 then begin
    let dom = (Domain.self () :> int) in
    Mutex.lock mu;
    let mine =
      List.filter
        (fun cb -> cb.cb_dom = dom && cb.cb_applied < lvl)
        !callbacks
    in
    Mutex.unlock mu;
    List.iter
      (fun cb ->
        cb.cb_applied <- lvl;
        cb.cb_f lvl)
      mine
  end

(* One degradation step: bump the level (saturating), tell the notifier,
   and push one major collection so shed precision can actually translate
   into freed words before the next poll. *)
let step_degrade () =
  let stepped =
    Mutex.lock mu;
    let l = Atomic.get level in
    let took = l < max_degrade_level in
    if took then Atomic.set level (l + 1);
    Mutex.unlock mu;
    took
  in
  if stepped then begin
    !notifier (Degrade_step (Atomic.get level));
    Gc.full_major ()
  end

let check (limits, start) =
  (match limits.deadline with
   | Some d when Unix.gettimeofday () -. start > d ->
     !notifier (Deadline_trip d);
     raise (Deadline_exceeded d)
   | _ -> ());
  (match limits.max_heap_words with
   | Some m ->
     let hw = (Gc.quick_stat ()).Gc.heap_words in
     if hw > m then
       if limits.degrade then step_degrade ()
       else begin
         !notifier (Mem_trip hw);
         raise (Mem_pressure hw)
       end
   | None -> ());
  deliver_here ()

let poll () =
  if Atomic.get armed_flag then
    match !current with Some c -> check c | None -> ()

let charge_disk ~bytes =
  if Atomic.get armed_flag then
    match !current with
    | Some ({ max_checkpoint_bytes = Some m; _ }, _) ->
      let total = Atomic.fetch_and_add disk_bytes bytes + bytes in
      if total > m then raise (Disk_over_budget total)
    | _ -> ()

module Testing = struct
  let set_level l = Atomic.set level (max 0 (min l max_degrade_level))

  let force_step () =
    let l = Atomic.get level in
    if l < max_degrade_level then begin
      Atomic.set level (l + 1);
      !notifier (Degrade_step (l + 1))
    end;
    deliver_here ()

  let reset () =
    disarm ();
    Mutex.lock mu;
    callbacks := [];
    Mutex.unlock mu
end
