(** Resource governance: wall-clock deadlines, heap watermarks, a
    checkpoint-disk guard, and a graceful-degradation ladder.

    The paper's premise is that value profiling must stay cheap enough to
    run inside real pipelines; a profiler that can blow its time or memory
    budget is one nobody deploys. This module is the budget: callers
    {!arm} a {!limits} record (or wrap a section in {!govern}), and the
    machine {!poll}s it on its periodic fuel boundary. Disarmed — the
    default — a poll costs one atomic load, mirroring {!Fault.enabled};
    hot loops hoist even that via {!armed}.

    Two enforcement styles:

    - {b Deadlines} always terminate: {!poll} raises {!Deadline_exceeded}
      once the wall clock passes the budget. Termination is cooperative —
      the exception unwinds through the machine's normal exception path,
      so spans close and telemetry sinks still get written.
    - {b Memory pressure} either terminates ({!Mem_pressure}, when
      [degrade = false]) or sheds precision: each breach of the heap
      watermark bumps the global {e degradation level} (saturating at
      {!max_degrade_level}) and triggers one major GC. Precision-shedding
      consumers react to the level on their own cold paths — the sampler
      widens [skip] at the next burst boundary, TNV halves its live
      candidate capacity at the next periodic clear, fused runs drop
      their most expensive member via {!on_degrade} callbacks — so a
      governed run completes with an approximate profile instead of
      dying, and results carry the level so callers can tell exact from
      approximate.

    This module lives in [vp_util] because the machine sits below every
    other layer; it cannot depend on [vp_obs], so observability is routed
    through {!set_notifier} (installed by [Obs] at program start). *)

type limits = {
  deadline : float option;
      (** Wall-clock seconds from {!arm}; [poll] raises
          {!Deadline_exceeded} past it. *)
  max_heap_words : int option;
      (** Heap watermark compared against [Gc.quick_stat ()].[heap_words]. *)
  max_checkpoint_bytes : int option;
      (** Cumulative checkpoint payload bytes; {!charge_disk} raises
          {!Disk_over_budget} past it. *)
  degrade : bool;
      (** [true]: heap pressure sheds precision (degradation steps)
          instead of raising {!Mem_pressure}. *)
}

(** Everything unlimited, degradation off. Build limits with
    [{ no_limits with deadline = Some 2.0 }]. *)
val no_limits : limits

(** Raised by {!poll} when the wall clock passes the armed deadline;
    carries the budget in seconds. *)
exception Deadline_exceeded of float

(** Raised by {!poll} on a heap-watermark breach when [degrade] is off;
    carries the observed heap words. *)
exception Mem_pressure of int

(** Raised by {!charge_disk} when cumulative checkpoint bytes exceed the
    armed budget; carries the total. *)
exception Disk_over_budget of int

(** [true] iff limits are armed. Hot loops read this once and skip their
    {!poll} entirely when it is [false]. *)
val armed : unit -> bool

(** Arm [limits] and start the deadline clock. Raises [Invalid_argument]
    if already armed (governed sections do not nest). *)
val arm : limits -> unit

(** Disarm, reset the degradation level to 0 and the disk charge to 0. *)
val disarm : unit -> unit

(** [govern limits f] runs [f] armed, disarming on the way out
    (exceptions included). *)
val govern : limits -> (unit -> 'a) -> 'a

(** The periodic check. Disarmed: one atomic load. Armed: compares the
    wall clock and [Gc.quick_stat] heap words against the limits, raising
    or stepping the degradation ladder as described above, and delivers
    any pending {!on_degrade} callbacks registered by the calling
    domain. *)
val poll : unit -> unit

(** Current degradation level, [0] (exact) to {!max_degrade_level}.
    One atomic load; precision-shedding cold paths compare it against the
    level they last applied. *)
val degrade_level : unit -> int

(** The ladder saturates here; further breaches keep the run alive
    without shedding more. *)
val max_degrade_level : int

(** Seconds since {!arm} ([0.] when disarmed) — for diagnostics. *)
val elapsed : unit -> float

(** [charge_disk ~bytes] adds [bytes] to the cumulative checkpoint charge
    and raises {!Disk_over_budget} if armed with a disk budget and the
    total exceeds it. No-op when disarmed or unlimited. *)
val charge_disk : bytes:int -> unit

(** [on_degrade f] registers [f] to be called with the new level on each
    degradation step. Delivery happens on the registering domain only —
    either directly (the step happened on a poll from that domain) or
    lazily on that domain's next {!poll} — so callbacks may safely mutate
    domain-local state such as a machine's hook tables. Returns an id for
    {!remove_on_degrade}. *)
val on_degrade : (int -> unit) -> int

(** Unregister a callback; unknown ids are ignored. *)
val remove_on_degrade : int -> unit

(** Observability hook: degradation steps and budget trips are reported
    here so [Obs] (which sits above this library) can emit trace instants
    and [degrade.*] / [budget.*] counters. Installed once at program
    start by [Obs]; the default is a no-op. *)
type notice =
  | Degrade_step of int  (** new level *)
  | Deadline_trip of float  (** budget seconds *)
  | Mem_trip of int  (** observed heap words *)

val set_notifier : (notice -> unit) -> unit

(** Test hooks: drive the ladder without real GC pressure. *)
module Testing : sig
  (** Set the level directly (no callbacks, no notices). *)
  val set_level : int -> unit

  (** Bump the level by one step (saturating), emit the notice, and
      deliver this domain's callbacks — exactly what a real watermark
      breach does, minus the GC. *)
  val force_step : unit -> unit

  (** Level to 0, callbacks cleared, disarmed. For test teardown. *)
  val reset : unit -> unit
end
