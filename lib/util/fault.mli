(** Deterministic fault injection.

    Robustness claims are only testable if faults can be produced on
    demand, at an exact, reproducible spot. This module plants named
    {e injection sites} on the paths that matter — machine stepping
    ([Fault.point ~site:"machine.step"] in {!Machine.run}'s loop), profile
    writing ([Fault.cut ~site:"profile_io.write"]), pool workers
    (["pool.worker"]) and supervised job attempts (["supervisor.job"]) —
    and lets a test (or the [VPROF_FAULT] environment variable, for CLI
    smoke runs) arm exactly one firing of any of them: "the 1000th step
    traps", "the third job dies", "the profile write tears at byte 512".

    Disarmed — the default — a site costs one atomic load; the machine's
    inner loop additionally hoists that load out of the loop via
    {!enabled}, so fault-free runs pay nothing measurable.

    Each armed site fires {e exactly once}, on its [at]-th hit, then stays
    quiet: the natural shape for crash tests ("kill job k, assert the run
    survives and the retry/resume completes").

    This module lives in [vp_util] (not the driver) because the machine
    sits below the driver in the library stack; the supervisor and pool
    are its other consumers. *)

(** What an armed site does when it fires. *)
type action =
  | Raise  (** {!point} raises {!Injected}. *)
  | Truncate of int
      (** {!cut} returns [Some bytes] — the writer must tear its output
          there and die, emulating a crash mid-write. *)

(** Raised by a firing {!point}; carries the site name. *)
exception Injected of string

(** [true] iff any site is armed. Hot loops read this once and skip their
    {!point} entirely when it is [false]. *)
val enabled : unit -> bool

(** [arm ~site ~at ()] arms [site] to fire on its [at]-th hit (1-based;
    [at <= 1] means the next hit). Re-arming a site replaces its previous
    arming. Raises [Invalid_argument] on an empty site name. *)
val arm : ?action:action -> site:string -> at:int -> unit -> unit

(** Disarm every site and reset all hit counters. *)
val disarm : unit -> unit

(** An injection site for crash-style faults: counts a hit and raises
    [Injected site] if this hit is the armed one. Cheap no-op when nothing
    is armed. *)
val point : site:string -> unit

(** An injection site for torn-write faults: counts a hit and returns
    [Some n] (the byte budget) if this hit fires a [Truncate n] arming;
    [None] otherwise. *)
val cut : site:string -> int option

(** Hits recorded against a site since it was last armed ([0] if the site
    is not armed) — for tests asserting an exact firing position. *)
val hits : site:string -> int

(** The environment variable {!load_env} reads: ["VPROF_FAULT"]. *)
val env_var : string

(** Spec grammar, comma-separated entries:
    ["SITE@AT"] arms a {!Raise} on the [AT]-th hit;
    ["SITE@AT@BYTES"] arms [Truncate BYTES] on the [AT]-th hit.
    E.g. ["supervisor.job@3,profile_io.write@1@512"].
    Raises [Invalid_argument] with the offending entry on a malformed
    spec. *)
val arm_spec : string -> unit

(** Arm from [$VPROF_FAULT] if set and non-empty (the CLI calls this once
    at startup; nothing else does, so test processes stay unaffected by a
    stray variable). Raises [Invalid_argument] on a malformed spec. *)
val load_env : unit -> unit
