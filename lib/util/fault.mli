(** Deterministic fault injection, from single shots to seeded campaigns.

    Robustness claims are only testable if faults can be produced on
    demand, at an exact, reproducible spot. This module plants named
    {e injection sites} on the paths that matter — machine stepping
    ([Fault.point ~site:"machine.step"] in {!Machine.run}'s loop), profile
    writing ([Fault.cut ~site:"profile_io.write"]), pool workers
    (["pool.worker"]), supervised job attempts (["supervisor.job"]),
    checkpoint loading (["checkpoint.load"]), shard merging
    (["shard.merge"]), pool cancellation (["pool.cancel"]), store
    commits (["store.commit"], ["store.payload.write"],
    ["checkpoint.commit"]) and write-ahead-journal appends
    (["journal.append"], a {!cut} site for torn appends) — and lets
    a test (or the [VPROF_FAULT] environment variable, for CLI smoke runs
    and the chaos harness) arm any number of them concurrently.

    Three firing modes per site:
    - {b one-shot} — fire exactly once, on the [at]-th hit (the original
      mode: "the 1000th step traps", "the third job dies");
    - {b N-shot} — fire on hits [at .. at+count-1], then stay quiet
      (exhausts a retry budget deterministically);
    - {b probabilistic} — each hit fires with probability [p], drawn from
      a per-site SplitMix64 generator seeded from the campaign seed
      ({!set_seed} / [VPROF_FAULT_SEED]) and the site name, so a chaos
      campaign replays bit-for-bit given the same seed and hit order.

    Disarmed — the default — a site costs one atomic load; the machine's
    inner loop additionally hoists that load out of the loop via
    {!enabled}, so fault-free runs pay nothing measurable.

    This module lives in [vp_util] (not the driver) because the machine
    sits below the driver in the library stack; the supervisor and pool
    are its other consumers. *)

(** What an armed site does when it fires. *)
type action =
  | Raise  (** {!point} raises {!Injected}. *)
  | Truncate of int
      (** {!cut} returns [Some bytes] — the writer must tear its output
          there and die, emulating a crash mid-write. *)
  | Kill
      (** {!point} SIGKILLs the process — a real kill -9, no handler,
          finalizer or [at_exit] hook runs. The crash-point survival
          harness arms this on ["store.commit"], ["journal.append"] and
          ["checkpoint.commit"] to prove recovery invariants against
          genuine mid-mutation death. Never arm it in-process in a test
          runner: the runner dies too — fire it only in subprocesses. *)

(** When an armed site fires. *)
type firing =
  | Shots of { at : int; count : int }
      (** Fire on hits [at .. at+count-1] (1-based), exactly once each. *)
  | Prob of float  (** Each hit fires with probability [p] in [(0, 1]]. *)

(** Raised by a firing {!point}; carries the site name. *)
exception Injected of string

(** [true] iff any site is armed. Hot loops read this once and skip their
    {!point} entirely when it is [false]. *)
val enabled : unit -> bool

(** Seed for probabilistic sites (default {!default_seed}). Each {!Prob}
    site armed afterwards draws from a generator derived from this seed
    and its site name. Set it before arming. *)
val set_seed : int64 -> unit

(** The fixed golden-ratio constant seeding probabilistic sites until
    {!set_seed} (or [VPROF_FAULT_SEED]) overrides it — exposed so tests
    can restore the default after a seeded run. *)
val default_seed : int64

(** [arm ~site ~at ()] arms [site] to fire on its [at]-th hit (1-based;
    [at <= 1] means the next hit); [?count] (default 1) extends this to
    an N-shot burst over hits [at .. at+count-1]. Re-arming a site
    replaces its previous arming; distinct sites stay armed concurrently.
    Raises [Invalid_argument] on an empty site name. *)
val arm : ?action:action -> ?count:int -> site:string -> at:int -> unit -> unit

(** [arm_prob ~site ~p ()] arms [site] to fire each hit with probability
    [p]. Raises [Invalid_argument] unless [0 < p <= 1]. *)
val arm_prob : ?action:action -> site:string -> p:float -> unit -> unit

(** [arm_firing ~site firing] is the general form of {!arm}/{!arm_prob}. *)
val arm_firing : ?action:action -> site:string -> firing -> unit

(** Disarm every site and reset all hit counters (the campaign seed is
    kept). *)
val disarm : unit -> unit

(** An injection site for crash-style faults: counts a hit and raises
    [Injected site] if this hit fires. Cheap no-op when nothing is
    armed. *)
val point : site:string -> unit

(** An injection site for torn-write faults: counts a hit and returns
    [Some n] (the byte budget) if this hit fires a [Truncate n] arming;
    [None] otherwise. *)
val cut : site:string -> int option

(** Hits recorded against a site since it was last armed ([0] if the site
    is not armed) — for tests asserting an exact firing position. *)
val hits : site:string -> int

(** The environment variable {!load_env} reads: ["VPROF_FAULT"]. *)
val env_var : string

(** The campaign-seed environment variable: ["VPROF_FAULT_SEED"]. *)
val seed_env_var : string

(** Spec grammar, comma-separated entries armed concurrently:
    ["SITE@AT"] arms a one-shot {!Raise} on the [AT]-th hit;
    ["SITE@AT#N"] arms an N-shot burst over hits [AT .. AT+N-1];
    ["SITE@~P"] arms probabilistic firing with probability [P];
    each form takes an optional trailing ["@BYTES"] turning the action
    into [Truncate BYTES], or a trailing ["@kill"] turning it into
    {!Kill} (SIGKILL the process at the firing hit).
    E.g. ["supervisor.job@3,machine.step@~0.001,profile_io.write@1@512"]
    or ["journal.append@2@kill"].
    Raises [Invalid_argument] with the offending entry on a malformed
    spec — including empty entries, which are rejected rather than
    silently ignored. *)
val arm_spec : string -> unit

(** Arm from [$VPROF_FAULT] if set and non-empty, seeding probabilistic
    sites from [$VPROF_FAULT_SEED] first when present (the CLI calls this
    once at startup; nothing else does, so test processes stay unaffected
    by a stray variable). Raises [Invalid_argument] on a malformed spec
    or seed. *)
val load_env : unit -> unit
