(** Descriptive statistics used throughout the experiment harness. *)

(** Arithmetic mean; 0. on empty input. *)
val mean : float array -> float

(** [weighted_mean values weights] with ordinary weights; 0. when the total
    weight is 0. Raises [Invalid_argument] on length mismatch. *)
val weighted_mean : float array -> float array -> float

(** Geometric mean of strictly positive entries; entries [<= 0.] raise. *)
val geomean : float array -> float

(** Population standard deviation; 0. on fewer than two samples. *)
val stddev : float array -> float

(** [percentile p xs] for [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises on empty input, [p] out of range, or any NaN
    entry (NaN is unordered and would corrupt the sort). *)
val percentile : float -> float array -> float

val min_max : float array -> float * float

(** Pearson product-moment correlation; [nan] when either side is
    constant. Raises on length mismatch or fewer than two points. *)
val pearson : float array -> float array -> float

(** Average ranks (1-based), ties sharing their mean rank. Raises
    [Invalid_argument] on NaN entries. *)
val ranks : float array -> float array

(** Spearman rank correlation (Pearson over average ranks). *)
val spearman : float array -> float array -> float

(** [mae a b] mean absolute error between paired samples. *)
val mae : float array -> float array -> float
