let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int n

let weighted_mean values weights =
  let n = Array.length values in
  if n <> Array.length weights then
    invalid_arg "Stats.weighted_mean: length mismatch";
  let num = ref 0. and den = ref 0. in
  for i = 0 to n - 1 do
    num := !num +. (values.(i) *. weights.(i));
    den := !den +. weights.(i)
  done;
  if !den = 0. then 0. else !num /. !den

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iter
      (fun x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive entry";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) ** 2.)) xs;
    sqrt (!acc /. float_of_int n)
  end

(* Polymorphic [compare] treats NaN as orderable, so a single NaN would
   silently scramble the sort feeding the experiment tables; reject it at
   the door and sort with the IEEE-aware [Float.compare]. *)
let reject_nan fname xs =
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg (fname ^ ": NaN input"))
    xs

let percentile p xs =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  reject_nan "Stats.percentile" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0))
    xs

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  let den = sqrt (!sxx *. !syy) in
  if den = 0. then nan else !sxy /. den

(* Average ranks so that ties are handled the standard way. *)
let ranks xs =
  reject_nan "Stats.ranks" xs;
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && Float.equal xs.(order.(!j + 1)) xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

let mae a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Stats.mae: length mismatch";
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. abs_float (a.(i) -. b.(i))
    done;
    !acc /. float_of_int n
  end
