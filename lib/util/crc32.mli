(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Profile files and checkpoint manifests carry a trailing checksum so a
    truncated or torn write is {e detected} instead of silently parsing as
    a shorter-but-valid file. CRC-32 is enough: the threat model is
    crashes and partial writes, not adversaries. *)

(** [string s] is the CRC-32 of all of [s], as a non-negative int in
    [\[0, 0xFFFFFFFF\]]. *)
val string : string -> int

(** [sub s pos len] checksums the substring. Raises [Invalid_argument] on
    an out-of-bounds range. *)
val sub : string -> int -> int -> int

(** Eight lowercase hex digits, zero-padded — the on-disk spelling. *)
val to_hex : int -> string

(** Parses the [to_hex] spelling (eight hex digits); [None] otherwise. *)
val of_hex : string -> int option
