type t = {
  mutable events_seen : int;
  mutable events_profiled : int;
  mutable tnv_clears : int;
  mutable tnv_replacements : int;
  mutable wall_seconds : float;
  mutable degrade_level : int;
}

let create () =
  { events_seen = 0;
    events_profiled = 0;
    tnv_clears = 0;
    tnv_replacements = 0;
    wall_seconds = 0.;
    degrade_level = 0 }

let now () = Unix.gettimeofday ()

let accumulate ~into c =
  into.events_seen <- into.events_seen + c.events_seen;
  into.events_profiled <- into.events_profiled + c.events_profiled;
  into.tnv_clears <- into.tnv_clears + c.tnv_clears;
  into.tnv_replacements <- into.tnv_replacements + c.tnv_replacements;
  into.wall_seconds <- into.wall_seconds +. c.wall_seconds;
  into.degrade_level <- max into.degrade_level c.degrade_level

(* Ranking for degradation-time shedding: recording an event (TNV work)
   costs more than merely seeing one, and each periodic clear is a full
   table scan. The absolute scale is irrelevant; only the ordering of
   fused members matters. *)
let run_cost c = c.events_seen + (2 * c.events_profiled) + (100 * c.tnv_clears)

let events_per_sec c =
  if c.wall_seconds > 0. then float_of_int c.events_seen /. c.wall_seconds
  else 0.

let profiled_fraction c =
  if c.events_seen > 0 then
    float_of_int c.events_profiled /. float_of_int c.events_seen
  else 0.

let pp ppf c =
  Format.fprintf ppf
    "events seen %d, profiled %d (%.1f%%), tnv clears %d, evictions %d, \
     wall %.3fs (%.2fM events/s)"
    c.events_seen c.events_profiled
    (100. *. profiled_fraction c)
    c.tnv_clears c.tnv_replacements c.wall_seconds
    (events_per_sec c /. 1e6);
  if c.degrade_level > 0 then
    Format.fprintf ppf ", degraded L%d" c.degrade_level

let to_string c = Format.asprintf "%a" pp c
