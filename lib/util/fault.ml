type action = Raise | Truncate of int

exception Injected of string

type site_state = {
  s_site : string;
  s_action : action;
  s_at : int;
  (* counts down from [s_at]; the hit that moves it from 1 to 0 fires.
     Atomic: sites are hit from worker domains concurrently. *)
  s_countdown : int Atomic.t;
}

(* The armed flag is the only thing hot paths read. The site list is
   written under [mu] and published by the subsequent [Atomic.set] of
   [armed_flag], so workers that observe [true] see the sites. *)
let armed_flag = Atomic.make false
let mu = Mutex.create ()
let sites : site_state list Atomic.t = Atomic.make []

let enabled () = Atomic.get armed_flag

let arm ?(action = Raise) ~site ~at () =
  if site = "" then invalid_arg "Fault.arm: empty site name";
  Mutex.lock mu;
  let others =
    List.filter (fun s -> s.s_site <> site) (Atomic.get sites)
  in
  let at = max at 1 in
  Atomic.set sites
    ({ s_site = site; s_action = action; s_at = at;
       s_countdown = Atomic.make at }
     :: others);
  Atomic.set armed_flag true;
  Mutex.unlock mu

let disarm () =
  Mutex.lock mu;
  Atomic.set sites [];
  Atomic.set armed_flag false;
  Mutex.unlock mu

let find site =
  List.find_opt (fun s -> s.s_site = site) (Atomic.get sites)

(* [fetch_and_add (-1)] returning 1 identifies the [at]-th hit exactly
   once, even under concurrent hits; later hits drive the counter
   negative and never fire again. *)
let fired st = Atomic.fetch_and_add st.s_countdown (-1) = 1

let point ~site =
  if Atomic.get armed_flag then
    match find site with
    | Some ({ s_action = Raise; _ } as st) ->
      if fired st then raise (Injected site)
    | Some _ | None -> ()

let cut ~site =
  if not (Atomic.get armed_flag) then None
  else
    match find site with
    | Some ({ s_action = Truncate n; _ } as st) ->
      if fired st then Some n else None
    | Some _ | None -> None

let hits ~site =
  match find site with
  | None -> 0
  | Some st -> st.s_at - Atomic.get st.s_countdown

let env_var = "VPROF_FAULT"

let parse_entry entry =
  let bad () =
    invalid_arg
      (Printf.sprintf
         "Fault: malformed spec entry %S (want SITE@AT or SITE@AT@BYTES)"
         entry)
  in
  match String.split_on_char '@' entry with
  | [ site; at ] when site <> "" ->
    (match int_of_string_opt at with
     | Some at -> (site, at, Raise)
     | None -> bad ())
  | [ site; at; bytes ] when site <> "" ->
    (match (int_of_string_opt at, int_of_string_opt bytes) with
     | Some at, Some b when b >= 0 -> (site, at, Truncate b)
     | _ -> bad ())
  | _ -> bad ()

let arm_spec spec =
  String.split_on_char ',' spec
  |> List.filter (fun e -> String.trim e <> "")
  |> List.iter (fun e ->
         let site, at, action = parse_entry (String.trim e) in
         arm ~action ~site ~at ())

let load_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec -> arm_spec spec
