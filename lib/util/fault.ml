type action = Raise | Truncate of int | Kill

type firing =
  | Shots of { at : int; count : int }
  | Prob of float

exception Injected of string

type site_state = {
  s_site : string;
  s_action : action;
  s_firing : firing;
  (* Shots: counts down from [at]; the hits that move it through
     [1 .. 2-count] fire. Atomic: sites are hit from worker domains
     concurrently. Unused by [Prob] sites. *)
  s_countdown : int Atomic.t;
  s_hits : int Atomic.t;
  (* Prob sites draw from a per-site generator seeded from the campaign
     seed and the site name; the generator mutates, so draws serialize
     under [s_mu]. *)
  s_rng : Rng.t option;
  s_mu : Mutex.t;
}

(* The armed flag is the only thing hot paths read. The site list is
   written under [mu] and published by the subsequent [Atomic.set] of
   [armed_flag], so workers that observe [true] see the sites. *)
let armed_flag = Atomic.make false
let mu = Mutex.create ()
let sites : site_state list Atomic.t = Atomic.make []

let default_seed = 0x9e3779b97f4a7c15L
let seed_ref = ref default_seed
let set_seed s = seed_ref := s

let enabled () = Atomic.get armed_flag

let arm_firing ?(action = Raise) ~site firing =
  if site = "" then invalid_arg "Fault.arm: empty site name";
  (match firing with
   | Shots { at; count } ->
     if at < 1 || count < 1 then
       invalid_arg "Fault.arm: at and count must be >= 1"
   | Prob p ->
     if not (p > 0. && p <= 1.) then
       invalid_arg "Fault.arm: probability must be in (0, 1]");
  let rng =
    match firing with
    | Prob _ ->
      Some (Rng.create (Int64.add !seed_ref (Int64.of_int (Hashtbl.hash site))))
    | Shots _ -> None
  in
  let countdown =
    match firing with Shots { at; _ } -> at | Prob _ -> 0
  in
  Mutex.lock mu;
  let others =
    List.filter (fun s -> s.s_site <> site) (Atomic.get sites)
  in
  Atomic.set sites
    ({ s_site = site; s_action = action; s_firing = firing;
       s_countdown = Atomic.make countdown;
       s_hits = Atomic.make 0;
       s_rng = rng; s_mu = Mutex.create () }
     :: others);
  Atomic.set armed_flag true;
  Mutex.unlock mu

let arm ?action ?(count = 1) ~site ~at () =
  arm_firing ?action ~site (Shots { at = max at 1; count = max count 1 })

let arm_prob ?action ~site ~p () = arm_firing ?action ~site (Prob p)

let disarm () =
  Mutex.lock mu;
  Atomic.set sites [];
  Atomic.set armed_flag false;
  Mutex.unlock mu

let find site =
  List.find_opt (fun s -> s.s_site = site) (Atomic.get sites)

(* [fetch_and_add (-1)] identifies the [at]-th through [at+count-1]-th
   hits exactly once each, even under concurrent hits; later hits drive
   the counter further negative and never fire again. *)
let fired st =
  Atomic.incr st.s_hits;
  match st.s_firing with
  | Shots { count; _ } ->
    let r = Atomic.fetch_and_add st.s_countdown (-1) in
    r <= 1 && r > 1 - count
  | Prob p ->
    (match st.s_rng with
     | None -> false
     | Some rng ->
       Mutex.lock st.s_mu;
       let x = Rng.float rng in
       Mutex.unlock st.s_mu;
       x < p)

(* A firing [Kill] site dies the way kill -9 would: SIGKILL to self, so
   no exception handler, [at_exit] hook or [Fun.protect] finalizer gets
   to tidy up. The crash-survival harness depends on this being a real
   crash, not a polite unwind. *)
let kill_self () =
  (try Unix.kill (Unix.getpid ()) Sys.sigkill with _ -> ());
  (* unreachable: SIGKILL is delivered before [kill] returns to the
     calling thread — but never fall through into the caller *)
  Stdlib.exit 137

let point ~site =
  if Atomic.get armed_flag then
    match find site with
    | Some ({ s_action = Raise; _ } as st) ->
      if fired st then raise (Injected site)
    | Some ({ s_action = Kill; _ } as st) -> if fired st then kill_self ()
    | Some _ | None -> ()

let cut ~site =
  if not (Atomic.get armed_flag) then None
  else
    match find site with
    | Some ({ s_action = Truncate n; _ } as st) ->
      if fired st then Some n else None
    | Some _ | None -> None

let hits ~site =
  match find site with
  | None -> 0
  | Some st -> Atomic.get st.s_hits

let env_var = "VPROF_FAULT"
let seed_env_var = "VPROF_FAULT_SEED"

let parse_entry entry =
  let bad () =
    invalid_arg
      (Printf.sprintf
         "Fault: malformed spec entry %S (want SITE@AT, SITE@AT#N, \
          SITE@~P, each optionally @BYTES or @kill)"
         entry)
  in
  let parse_firing f =
    let len = String.length f in
    if len = 0 then bad ()
    else if f.[0] = '~' then
      match float_of_string_opt (String.sub f 1 (len - 1)) with
      | Some p when p > 0. && p <= 1. -> Prob p
      | _ -> bad ()
    else
      match String.index_opt f '#' with
      | Some i ->
        let at = String.sub f 0 i in
        let n = String.sub f (i + 1) (len - i - 1) in
        (match (int_of_string_opt at, int_of_string_opt n) with
         | Some at, Some n when at >= 1 && n >= 1 ->
           Shots { at; count = n }
         | _ -> bad ())
      | None ->
        (match int_of_string_opt f with
         | Some at when at >= 1 -> Shots { at; count = 1 }
         | Some at -> Shots { at = max at 1; count = 1 }
         | None -> bad ())
  in
  match String.split_on_char '@' entry with
  | [ site; f ] when site <> "" -> (site, parse_firing f, Raise)
  | [ site; f; "kill" ] when site <> "" -> (site, parse_firing f, Kill)
  | [ site; f; bytes ] when site <> "" ->
    (match int_of_string_opt bytes with
     | Some b when b >= 0 -> (site, parse_firing f, Truncate b)
     | _ -> bad ())
  | _ -> bad ()

let arm_spec spec =
  let entries = String.split_on_char ',' spec |> List.map String.trim in
  List.iter
    (fun e ->
      if e = "" then
        invalid_arg
          (Printf.sprintf "Fault: empty entry in spec %S" spec)
      else
        let site, firing, action = parse_entry e in
        arm_firing ~action ~site firing)
    entries

let load_env () =
  (match Sys.getenv_opt seed_env_var with
   | None | Some "" -> ()
   | Some s ->
     (match Int64.of_string_opt s with
      | Some seed -> set_seed seed
      | None ->
        invalid_arg
          (Printf.sprintf "Fault: malformed %s %S (want an integer)"
             seed_env_var s)));
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec -> arm_spec spec
