(* Reflected CRC-32, polynomial 0xEDB88320. The state fits easily in an
   OCaml int (63-bit), so the whole computation is unboxed. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = sub s 0 (String.length s)

let to_hex c = Printf.sprintf "%08x" (c land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 -> Some v
    | _ -> None
