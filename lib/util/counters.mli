(** Cost counters every profiler reports alongside its result, so the
    overhead the paper argues about ("cheap enough to run everywhere") is
    observable rather than assumed: how many dynamic events the run
    produced, how many the profiler actually recorded, how much TNV
    maintenance happened, and how long the instrumented run took.

    What counts as "seen" vs "profiled" is the profiler's own notion:
    full profiling sees every dynamic instruction and profiles the hooked
    ones; the convergent sampler sees every hooked event and profiles the
    in-burst subset; the memory profiler sees every access and profiles
    the tracked locations. *)

type t = {
  mutable events_seen : int;
  mutable events_profiled : int;
  mutable tnv_clears : int;  (** periodic clears across all TNV tables *)
  mutable tnv_replacements : int;  (** LFU/LRU evictions across all tables *)
  mutable wall_seconds : float;  (** attach-to-collect wall clock *)
  mutable degrade_level : int;
      (** {!Budget} degradation level the run finished at: [0] means an
          exact profile; [> 0] means precision was shed under memory
          pressure and the result is approximate. *)
}

(** All-zero counters. *)
val create : unit -> t

(** Wall clock for stamping [wall_seconds] ([Unix.gettimeofday]). *)
val now : unit -> float

(** [accumulate ~into c] adds every field of [c] onto [into] (wall time
    included; [degrade_level] takes the max — an aggregate is as
    approximate as its most degraded part), for summing costs across
    fused profilers or runs. *)
val accumulate : into:t -> t -> unit

(** Relative cost of the run these counters describe, for ranking fused
    members when degradation must shed one: profiled events weigh double,
    TNV clears weigh 100 (each is a full table scan). *)
val run_cost : t -> int

(** [events_seen] per wall second; 0 when no time elapsed. *)
val events_per_sec : t -> float

(** [events_profiled / events_seen]; 0 when nothing ran. *)
val profiled_fraction : t -> float

val pp : Format.formatter -> t -> unit

val to_string : t -> string
