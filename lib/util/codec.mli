(** Binary codec primitives for the v3 profile format and the store.

    Everything here is deliberately boring: LEB128 varints for counts,
    zigzag varints for signed 64-bit values, fixed little-endian words for
    floats and checksums, length-prefixed strings, a first-use-interned
    string table, and tagged sections framed with a per-section CRC-32
    (reusing {!Crc32}). Writers append to a [Buffer.t]; readers consume a
    [string] through a mutable cursor and raise {!Error} with the byte
    offset of the first malformed byte, so callers can report "byte N"
    the way the text parsers report "line N". *)

(** [Error (offset, message)]: the input is malformed at [offset]. *)
exception Error of int * string

(** {1 Writers} *)

(** LEB128 unsigned varint. Raises [Invalid_argument] on a negative int. *)
val put_uvarint : Buffer.t -> int -> unit

(** Zigzag-encoded LEB128 varint covering all of [int64]. *)
val put_varint64 : Buffer.t -> int64 -> unit

(** Fixed 8-byte little-endian IEEE-754 bits. *)
val put_f64 : Buffer.t -> float -> unit

(** Fixed 4-byte little-endian word; [Invalid_argument] outside
    [\[0, 0xFFFFFFFF\]]. The on-disk shape of a CRC-32. *)
val put_u32 : Buffer.t -> int -> unit

(** Length-prefixed (uvarint) byte string. *)
val put_string : Buffer.t -> string -> unit

(** {1 Readers} *)

type reader

(** [reader ?pos s] reads [s] starting at [pos] (default 0). *)
val reader : ?pos:int -> string -> reader

(** Current cursor position (an offset into the underlying string). *)
val pos : reader -> int

(** True when the cursor has consumed every byte. *)
val at_end : reader -> bool

val read_byte : reader -> int
val read_uvarint : reader -> int
val read_varint64 : reader -> int64
val read_f64 : reader -> float
val read_u32 : reader -> int
val read_string : reader -> string

(** [read_bytes r n] consumes exactly [n] raw bytes. *)
val read_bytes : reader -> int -> string

(** {1 String table}

    Interns strings in first-use order; the encoded form is a uvarint
    count followed by length-prefixed entries, so indices assigned by
    [intern] are stable across encode/decode. *)

module Strtab : sig
  type t

  val create : unit -> t

  (** Index of [s], interning it on first use. *)
  val intern : t -> string -> int

  val encode : t -> string

  (** Decodes an [encode]d table; indices are array positions. *)
  val decode : reader -> string array
end

(** {1 Sections}

    A section is [tag byte · uvarint payload length · payload ·
    4-byte CRC-32 of the payload]. [read_section] verifies the CRC and
    raises {!Error} on a mismatch, a truncated payload, or an
    over-long length. *)

val put_section : Buffer.t -> tag:char -> string -> unit
val read_section : reader -> char * string
