exception Error of int * string

(* Writers *)

let put_uvarint buf n =
  if n < 0 then invalid_arg "Codec.put_uvarint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_varint64 buf v =
  (* Zigzag: sign bit moves to bit 0 so small magnitudes stay short. *)
  let z = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63) in
  let rec go z =
    if Int64.unsigned_compare z 0x80L < 0 then
      Buffer.add_char buf (Char.chr (Int64.to_int z))
    else begin
      Buffer.add_char buf
        (Char.chr (0x80 lor Int64.to_int (Int64.logand z 0x7fL)));
      go (Int64.shift_right_logical z 7)
    end
  in
  go z

let put_f64 buf x =
  let bits = Int64.bits_of_float x in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let put_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Codec.put_u32: out of range";
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

(* Readers *)

type reader = { src : string; mutable rpos : int }

let reader ?(pos = 0) src =
  if pos < 0 || pos > String.length src then
    invalid_arg "Codec.reader: bad position";
  { src; rpos = pos }

let pos r = r.rpos
let at_end r = r.rpos >= String.length r.src
let err r msg = raise (Error (r.rpos, msg))

let read_byte r =
  if at_end r then err r "unexpected end of input";
  let b = Char.code r.src.[r.rpos] in
  r.rpos <- r.rpos + 1;
  b

let read_uvarint r =
  let start = r.rpos in
  let rec go acc shift =
    if shift > 62 then raise (Error (start, "varint overflows int"));
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let read_varint64 r =
  let start = r.rpos in
  let rec go acc shift =
    if shift > 63 then raise (Error (start, "varint64 overflows 64 bits"));
    let b = read_byte r in
    let acc =
      Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift)
    in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  let z = go 0L 0 in
  (* Undo zigzag. *)
  Int64.logxor (Int64.shift_right_logical z 1) (Int64.neg (Int64.logand z 1L))

let read_f64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    let b = read_byte r in
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int b) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_u32 r =
  let n = ref 0 in
  for i = 0 to 3 do
    let b = read_byte r in
    n := !n lor (b lsl (8 * i))
  done;
  !n

let read_bytes r n =
  if n < 0 then err r "negative length";
  if r.rpos + n > String.length r.src then err r "unexpected end of input";
  let s = String.sub r.src r.rpos n in
  r.rpos <- r.rpos + n;
  s

let read_string r =
  let n = read_uvarint r in
  read_bytes r n

(* String table *)

module Strtab = struct
  type t = { tbl : (string, int) Hashtbl.t; mutable order : string list }

  let create () = { tbl = Hashtbl.create 16; order = [] }

  let intern t s =
    match Hashtbl.find_opt t.tbl s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length t.tbl in
      Hashtbl.add t.tbl s i;
      t.order <- s :: t.order;
      i

  let encode t =
    let buf = Buffer.create 64 in
    let strings = List.rev t.order in
    put_uvarint buf (List.length strings);
    List.iter (put_string buf) strings;
    Buffer.contents buf

  let decode r =
    let n = read_uvarint r in
    if n > String.length r.src then err r "string table count exceeds input";
    Array.init n (fun _ -> read_string r)
end

(* Sections *)

let put_section buf ~tag payload =
  Buffer.add_char buf tag;
  put_uvarint buf (String.length payload);
  Buffer.add_string buf payload;
  put_u32 buf (Crc32.string payload)

let read_section r =
  let tag = Char.chr (read_byte r) in
  let len = read_uvarint r in
  if r.rpos + len > String.length r.src then err r "truncated section payload";
  let payload_pos = r.rpos in
  let payload = read_bytes r len in
  let crc = read_u32 r in
  if crc <> Crc32.sub r.src payload_pos len then
    raise (Error (payload_pos, Printf.sprintf "section '%c' checksum mismatch" tag));
  (tag, payload)
