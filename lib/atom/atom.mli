(** ATOM-like instrumentation interface.

    ATOM [35] let a tool walk a binary's procedures, basic blocks, and
    instructions, and attach analysis calls that receive run-time values.
    This module is that interface for our virtual machine: query helpers to
    enumerate and select instrumentation points, and bulk attachment of
    per-PC analysis hooks. The value profiler ({!Vp_core}) is a client, in
    the same way the paper's profiler was an ATOM tool. *)

(** Which instructions to instrument. Only {e value-producing} instructions
    (those with a destination register) match [`All]/[`Loads]/[`Alu];
    [`Stores] selects store instructions (used by memory-location
    profiling); [`Pcs] is an explicit list. *)
type selection = [ `All | `Loads | `Alu | `Stores | `Pcs of int list ]

(** PCs matched by a selection, ascending. *)
val select : Asm.program -> selection -> int list

(** Number of dynamic events a past run would have delivered for the
    selection — [sum of exec counts] — used for overhead accounting. *)
val dynamic_events : Machine.t -> int list -> int

(** [instrument machine pcs make_hook] attaches [make_hook pc] at each
    selected pc. Attachment is additive — observers already subscribed at
    a pc keep firing. Returns the number of instrumentation points. *)
val instrument : Machine.t -> int list -> (int -> Machine.hook) -> int

(** [instrument_proc_entries machine prog f] attaches [f proc] as the entry
    hook of every procedure. *)
val instrument_proc_entries :
  Machine.t -> Asm.program -> (Asm.proc -> Machine.t -> unit) -> unit

(** Same for returns: [f proc machine return_value]. *)
val instrument_proc_returns :
  Machine.t -> Asm.program -> (Asm.proc -> Machine.t -> int64 -> unit) -> unit

(** Static summary used in listings: instruction counts per category. *)
val category_census : Asm.program -> (Isa.category * int) list
