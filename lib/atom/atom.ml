type selection = [ `All | `Loads | `Alu | `Stores | `Pcs of int list ]

let matches instr = function
  | `All -> Isa.dest_reg instr <> None
  | `Loads -> Isa.dest_reg instr <> None && Isa.category instr = Isa.Load
  | `Alu -> Isa.dest_reg instr <> None && Isa.category instr = Isa.Alu
  | `Stores -> Isa.category instr = Isa.Store
  | `Pcs _ -> false (* handled separately *)

let select (prog : Asm.program) sel =
  match sel with
  | `Pcs pcs -> List.sort_uniq compare pcs
  | (`All | `Loads | `Alu | `Stores) as sel ->
    let acc = ref [] in
    for pc = Array.length prog.code - 1 downto 0 do
      if matches prog.code.(pc) sel then acc := pc :: !acc
    done;
    !acc

let dynamic_events machine pcs =
  List.fold_left (fun acc pc -> acc + Machine.exec_count machine pc) 0 pcs

let instrument machine pcs make_hook =
  List.iter (fun pc -> Machine.add_hook machine pc (make_hook pc)) pcs;
  List.length pcs

let instrument_proc_entries machine (prog : Asm.program) f =
  Array.iter
    (fun (p : Asm.proc) -> Machine.add_proc_entry_hook machine p.pindex (f p))
    prog.procs

let instrument_proc_returns machine (prog : Asm.program) f =
  Array.iter
    (fun (p : Asm.proc) -> Machine.add_proc_return_hook machine p.pindex (f p))
    prog.procs

let category_census (prog : Asm.program) =
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      let c = Isa.category instr in
      Hashtbl.replace tally c (1 + Option.value ~default:0 (Hashtbl.find_opt tally c)))
    prog.code;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tally []
  |> List.sort compare
