(* chaos: seeded multi-fault campaign harness for the vprof binary.

   Each seed drives one campaign of five scenarios against a REAL vprof
   subprocess (no in-process shortcuts — the assertions cover the exit
   codes and on-disk artifacts users actually see):

     1. usage     — a malformed VPROF_FAULT spec must be rejected with a
                    usage error (exit 2), not silently ignored.
     2. storm     — a randomly generated multi-site fault schedule is
                    armed over a checkpointed experiment run; whatever it
                    kills, the exit code must stay in {0, 1} (never a
                    hang, never an internal error) and a fault-free
                    --resume must reproduce the fault-free reference
                    bytes exactly.
     3. deadline  — a run under an impossible --deadline must exit 3 and
                    still leave complete --trace/--metrics dumps behind.
     4. degrade   — a run under --max-heap 0 --degrade must complete
                    (exit 0) and report its degradation in the metrics.
     5. truncate  — the committed checkpoint manifest is cut at a random
                    byte; --resume must salvage the intact prefix and
                    still reproduce the reference bytes exactly.

   With --kill-loop the harness instead runs the crash-point survival
   campaign: a store is seeded with an acknowledged profile, then the
   real binary is SIGKILLed (Fault.Kill, a genuine kill -9) at every
   commit-path site and torn (Fault.Truncate) at every byte offset of
   every write-ahead-journal append; after each crash the store is
   reopened and three invariants are asserted — `store verify` exits 0,
   a warm run of the seeded workload is still served from cache (no
   acknowledged profile lost), and the reopening run itself exits
   cleanly (no partial mutation survives recovery). A checkpointed
   suite killed at checkpoint.commit must resume to byte-identical
   reference output, and a gc killed mid-journal-append must complete
   its removals on reopen.

   Every subprocess runs under coreutils `timeout` (the hard deadline):
   exit 124 means the binary hung, which fails the campaign on its own.

   Usage: chaos [--vprof PATH] [--seeds N,N,...] [--report FILE]
                [--timeout SECONDS] [--kill-loop] [--stride N]
   Exit codes: 0 all campaigns passed, 1 at least one assertion failed,
   2 usage error. *)

let usage () =
  prerr_endline
    "usage: chaos [--vprof PATH] [--seeds N,N,...] [--report FILE] \
     [--timeout SECONDS] [--kill-loop] [--stride N]";
  exit 2

type opts = {
  mutable vprof : string;
  mutable seeds : int list;
  mutable report : string option;
  mutable timeout : int;
  mutable kill_loop : bool;
  mutable stride : int;
}

let parse_args () =
  let o =
    { vprof = "_build/default/bin/vprof.exe";
      seeds = [ 101; 202; 303 ];
      report = None;
      timeout = 120;
      kill_loop = false;
      stride = 1 }
  in
  let rec go = function
    | [] -> o
    | "--vprof" :: v :: rest ->
      o.vprof <- v;
      go rest
    | "--seeds" :: v :: rest ->
      (match
         String.split_on_char ',' v |> List.map String.trim
         |> List.filter (fun s -> s <> "")
         |> List.map int_of_string
       with
       | [] -> usage ()
       | seeds -> o.seeds <- seeds
       | exception Failure _ -> usage ());
      go rest
    | "--report" :: v :: rest ->
      o.report <- Some v;
      go rest
    | "--timeout" :: v :: rest ->
      (match int_of_string_opt v with
       | Some t when t > 0 -> o.timeout <- t
       | _ -> usage ());
      go rest
    | "--kill-loop" :: rest ->
      o.kill_loop <- true;
      go rest
    | "--stride" :: v :: rest ->
      (match int_of_string_opt v with
       | Some s when s > 0 -> o.stride <- s
       | _ -> usage ());
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* --- subprocess plumbing --- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* Run vprof with [args] under the hard deadline. [fault]/[fault_seed]
   set the injection environment; both are explicitly cleared otherwise,
   so a campaign is immune to whatever the caller's shell exports. The
   exit code comes back raw: 124 is the watchdog's "it hung". *)
let run_vprof opts ?fault ?fault_seed ~out ~err args =
  let env =
    match fault with
    | None -> "env -u VPROF_FAULT -u VPROF_FAULT_SEED"
    | Some spec ->
      Printf.sprintf "env VPROF_FAULT=%s VPROF_FAULT_SEED=%s"
        (Filename.quote spec)
        (Filename.quote
           (match fault_seed with Some s -> string_of_int s | None -> "1"))
  in
  let cmd =
    Printf.sprintf "%s timeout %d %s %s > %s 2> %s" env opts.timeout
      (Filename.quote opts.vprof)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  Sys.command cmd

(* --- campaign state --- *)

type check = { c_seed : int; c_name : string; c_ok : bool; c_detail : string }

let checks : check list ref = ref []

let record ~seed ~name ok detail =
  checks := { c_seed = seed; c_name = name; c_ok = ok; c_detail = detail }
           :: !checks;
  Printf.printf "%s seed=%d %-10s %s\n%!"
    (if ok then "PASS" else "FAIL")
    seed name detail

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* --- random fault schedules (scenario 2) --- *)

(* Sites the schedule draws from, with a plausible trip-count range each:
   machine.step fires deep inside a run, the driver/supervisor sites on
   the first few crossings. The generated spec exercises the multi-site
   grammar (comma-separated, N-shot and probabilistic entries). *)
let sites =
  [| ("machine.step", 1_000, 200_000);
     ("supervisor.job", 1, 4);
     ("pool.worker", 1, 4);
     ("checkpoint.load", 1, 2);
     ("shard.merge", 1, 2);
     ("store.commit", 1, 4);
     ("checkpoint.commit", 1, 4);
     ("journal.append", 1, 8) |]

let random_schedule rng =
  let picks = 1 + Rng.int rng 3 in
  let chosen = Array.copy sites in
  Rng.shuffle rng chosen;
  List.init picks (fun i ->
      let site, lo, hi = chosen.(i) in
      if site = "machine.step" && Rng.bool rng then
        (* probabilistic arming: fires eventually, seeded so the same
           campaign seed replays the same run *)
        Printf.sprintf "%s@~%g" site 0.00001
      else begin
        let at = lo + Rng.int rng (hi - lo + 1) in
        let count = 1 + Rng.int rng 2 in
        if count = 1 then Printf.sprintf "%s@%d" site at
        else Printf.sprintf "%s@%d#%d" site at count
      end)
  |> String.concat ","

(* --- the five scenarios --- *)

let scenario_usage opts ~seed ~dir =
  let out = Filename.concat dir "usage.out"
  and err = Filename.concat dir "usage.err" in
  let code =
    run_vprof opts ~fault:"machine.step@@bogus" ~out ~err [ "list" ]
  in
  record ~seed ~name:"usage" (code = 2)
    (Printf.sprintf "malformed VPROF_FAULT -> exit %d (want 2)" code)

(* The fault-free reference bytes every salvage scenario compares
   against; collected once per campaign. *)
let reference opts ~dir =
  let ref_dir = Filename.concat dir "ref-ck" in
  let out = Filename.concat dir "ref.out"
  and err = Filename.concat dir "ref.err" in
  let code =
    run_vprof opts ~out ~err
      [ "experiments"; "--smoke"; "--checkpoint"; ref_dir ]
  in
  if code <> 0 then None
  else
    match read_file out with Some bytes -> Some bytes | None -> None

let scenario_storm opts rng ~seed ~dir ~ref_bytes =
  let ck = Filename.concat dir "storm-ck" in
  let out = Filename.concat dir "storm.out"
  and err = Filename.concat dir "storm.err" in
  let spec = random_schedule rng in
  let code =
    run_vprof opts ~fault:spec ~fault_seed:seed ~out ~err
      [ "experiments"; "--smoke"; "--checkpoint"; ck ]
  in
  let code_ok = code = 0 || code = 1 in
  record ~seed ~name:"storm" code_ok
    (Printf.sprintf "VPROF_FAULT=%S -> exit %d (want 0|1, 124 = hang)" spec
       code);
  (* whatever the storm did to the run, a clean resume must finish the
     suite and reproduce the reference bytes exactly *)
  let out2 = Filename.concat dir "storm-resume.out" in
  let code2 =
    run_vprof opts ~out:out2 ~err
      [ "experiments"; "--smoke"; "--checkpoint"; ck; "--resume" ]
  in
  let bytes = read_file out2 in
  record ~seed ~name:"storm" (code2 = 0 && bytes = Some ref_bytes)
    (Printf.sprintf "fault-free resume -> exit %d, bytes %s reference" code2
       (if bytes = Some ref_bytes then "==" else "!="))

let scenario_deadline opts ~seed ~dir =
  let trace = Filename.concat dir "deadline-trace.json"
  and metrics = Filename.concat dir "deadline-metrics.json" in
  let out = Filename.concat dir "deadline.out"
  and err = Filename.concat dir "deadline.err" in
  let code =
    run_vprof opts ~out ~err
      [ "profile"; "-w"; "go"; "--deadline"; "0.001"; "--trace"; trace;
        "--metrics"; metrics ]
  in
  let trace_ok =
    match read_file trace with
    | Some t -> String.length t > 0 && contains ~needle:"budget.deadline" t
    | None -> false
  in
  let metrics_ok =
    match read_file metrics with
    | Some m -> contains ~needle:"budget.deadline_trips" m
    | None -> false
  in
  record ~seed ~name:"deadline"
    (code = 3 && trace_ok && metrics_ok)
    (Printf.sprintf
       "--deadline 0.001 -> exit %d (want 3), trace dump %s, metrics dump %s"
       code
       (if trace_ok then "complete" else "MISSING")
       (if metrics_ok then "complete" else "MISSING"))

let scenario_degrade opts ~seed ~dir =
  let metrics = Filename.concat dir "degrade-metrics.json" in
  let out = Filename.concat dir "degrade.out"
  and err = Filename.concat dir "degrade.err" in
  let code =
    run_vprof opts ~out ~err
      [ "profile"; "-w"; "go"; "--max-heap"; "0"; "--degrade"; "--metrics";
        metrics ]
  in
  let degraded =
    match read_file metrics with
    | Some m -> contains ~needle:"degrade.steps" m
    | None -> false
  in
  record ~seed ~name:"degrade" (code = 0 && degraded)
    (Printf.sprintf
       "--max-heap 0 --degrade -> exit %d (want 0), degrade.steps %s" code
       (if degraded then "recorded" else "MISSING"))

let scenario_truncate opts rng ~seed ~dir ~ref_bytes =
  let ck = Filename.concat dir "trunc-ck" in
  let out = Filename.concat dir "trunc.out"
  and err = Filename.concat dir "trunc.err" in
  let code =
    run_vprof opts ~out ~err
      [ "experiments"; "--smoke"; "--checkpoint"; ck ]
  in
  if code <> 0 then
    record ~seed ~name:"truncate" false
      (Printf.sprintf "seeding run -> exit %d (want 0)" code)
  else begin
    let manifest = Filename.concat ck "manifest" in
    (match read_file manifest with
     | None -> record ~seed ~name:"truncate" false "no manifest written"
     | Some text ->
       let cut = Rng.int rng (String.length text + 1) in
       let oc = open_out_bin manifest in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc (String.sub text 0 cut));
       let out2 = Filename.concat dir "trunc-resume.out" in
       let code2 =
         run_vprof opts ~out:out2 ~err
           [ "experiments"; "--smoke"; "--checkpoint"; ck; "--resume" ]
       in
       let bytes = read_file out2 in
       record ~seed ~name:"truncate"
         (code2 = 0 && bytes = Some ref_bytes)
         (Printf.sprintf
            "manifest cut at byte %d/%d, resume -> exit %d, bytes %s \
             reference"
            cut (String.length text) code2
            (if bytes = Some ref_bytes then "==" else "!=")))
  end

(* --- the kill-loop campaign (--kill-loop) --- *)

let write_text path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

(* Two tiny assembly pseudo-workloads (the CLI accepts .vasm paths as
   workloads): distinct basenames and bodies, so their store fingerprints
   can never alias. Each executes in microseconds, which is what lets
   the loop afford hundreds of crash-reopen-verify iterations. *)
let seeded_program =
  ".entry main\n.proc main\n  ldi t0, #3\n  add t1, t0, t0\n  add t2, t1, t0\n\
  \  halt\n.end\n"

let victim_program =
  ".entry main\n.proc main\n  ldi t0, #5\n  add t1, t0, #2\n  add t2, t1, t1\n\
  \  halt\n.end\n"

let kill_campaign opts seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vprof-chaos-kill-%d-%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let seeded = Filename.concat dir "seeded.vasm" in
      let victim = Filename.concat dir "victim.vasm" in
      write_text seeded seeded_program;
      write_text victim victim_program;
      let st = Filename.concat dir "kill-store" in
      let out = Filename.concat dir "kill.out"
      and err = Filename.concat dir "kill.err" in
      (* seed the store with one ACKNOWLEDGED profile (exit 0 is the
         acknowledgment) — the entry every later crash must not lose *)
      let code =
        run_vprof opts ~out ~err
          [ "profile"; "-w"; seeded; "--store"; st; "--replicas"; "1" ]
      in
      if code <> 0 then
        record ~seed ~name:"kill-seed" false
          (Printf.sprintf "seeding run -> exit %d (want 0)" code)
      else begin
        record ~seed ~name:"kill-seed" true "store seeded (exit 0)";
        let iters = ref 0 and failures = ref [] in
        (* one crash-reopen-verify iteration: the victim run dies under
           [spec]; reopening must leave a store that verifies clean and
           still serves the seeded profile from cache *)
        let crash_and_check spec =
          incr iters;
          let ccode =
            run_vprof opts ~fault:spec ~fault_seed:seed ~out ~err
              [ "profile"; "-w"; victim; "--store"; st; "--replicas"; "1" ]
          in
          (* 137 = SIGKILLed at the site, 1 = injected torn write, 0 =
             the spec's hit count exceeded what this run crosses *)
          let ccode_ok = ccode = 0 || ccode = 1 || ccode = 137 in
          let vcode =
            run_vprof opts ~out ~err [ "store"; "verify"; "--store"; st ]
          in
          let warm_err = Filename.concat dir "warm.err" in
          let wcode =
            run_vprof opts ~out ~err:warm_err
              [ "profile"; "-w"; seeded; "--store"; st ]
          in
          let warm_hit =
            match read_file warm_err with
            | Some e -> contains ~needle:"store: hit" e
            | None -> false
          in
          if not (ccode_ok && vcode = 0 && wcode = 0 && warm_hit) then
            failures :=
              Printf.sprintf
                "%s: crash exit %d, verify exit %d (want 0), warm exit %d \
                 seeded entry %s"
                spec ccode vcode wcode
                (if warm_hit then "hit" else "LOST")
              :: !failures
        in
        (* whole-process kills at every commit-path site: before the
           journal intent, between the per-copy payload writes, and at
           each of the run's journal appends (generation intent/commit,
           put intent/commit) *)
        List.iter crash_and_check
          ([ "store.commit@1@kill" ]
           @ List.init 2 (fun i ->
                 Printf.sprintf "store.payload.write@%d@kill" (i + 1))
           @ List.init 4 (fun i ->
                 Printf.sprintf "journal.append@%d@kill" (i + 1)));
        (* torn journal appends: the append stops at byte B and the
           process dies. 96 comfortably exceeds the longest record this
           run appends, so the walk covers every prefix of every record
           plus the crash-after-complete-append case. *)
        let max_cut = 96 in
        for hit = 1 to 4 do
          let b = ref 0 in
          while !b <= max_cut do
            crash_and_check (Printf.sprintf "journal.append@%d@%d" hit !b);
            b := !b + opts.stride
          done
        done;
        record ~seed ~name:"kill-loop" (!failures = [])
          (match !failures with
           | [] ->
             Printf.sprintf
               "%d crash points survived (verify 0, seeded entry served)"
               !iters
           | f :: rest ->
             Printf.sprintf "%d of %d crash points failed; first: %s"
               (List.length !failures + 0) !iters
               (if rest = [] then f else f ^ " (+ more)"));
        (* a gc killed mid-intent-append must complete its removals on
           reopen (the seeded entry may legitimately be collected here,
           so this runs last and only asserts integrity) *)
        let gcode =
          run_vprof opts ~fault:"journal.append@1@kill" ~fault_seed:seed ~out
            ~err
            [ "store"; "gc"; "--store"; st; "--keep"; "1" ]
        in
        let vcode =
          run_vprof opts ~out ~err [ "store"; "verify"; "--store"; st ]
        in
        record ~seed ~name:"kill-gc"
          ((gcode = 0 || gcode = 137) && vcode = 0)
          (Printf.sprintf
             "gc under journal kill -> exit %d (want 0|137), verify exit %d \
              (want 0)"
             gcode vcode)
      end;
      (* a supervised suite killed at checkpoint.commit: the checkpoint
         rides the same journaled store, so a fault-free resume must
         reproduce the fault-free reference bytes exactly *)
      match reference opts ~dir with
      | None ->
        record ~seed ~name:"kill-ck" false
          "fault-free reference run failed; skipping checkpoint kill"
      | Some ref_bytes ->
        let ck = Filename.concat dir "kill-ck" in
        let out = Filename.concat dir "ck.out"
        and err = Filename.concat dir "ck.err" in
        let code =
          run_vprof opts ~fault:"checkpoint.commit@1@kill" ~fault_seed:seed
            ~out ~err
            [ "experiments"; "--smoke"; "--checkpoint"; ck ]
        in
        let out2 = Filename.concat dir "ck-resume.out" in
        let code2 =
          run_vprof opts ~out:out2 ~err
            [ "experiments"; "--smoke"; "--checkpoint"; ck; "--resume" ]
        in
        let bytes = read_file out2 in
        record ~seed ~name:"kill-ck"
          (code = 137 && code2 = 0 && bytes = Some ref_bytes)
          (Printf.sprintf
             "kill at checkpoint.commit -> exit %d (want 137), resume -> \
              exit %d, bytes %s reference"
             code code2
             (if bytes = Some ref_bytes then "==" else "!=")))

let campaign opts seed =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vprof-chaos-%d-%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let rng = Rng.create (Int64.of_int seed) in
      scenario_usage opts ~seed ~dir;
      match reference opts ~dir with
      | None ->
        record ~seed ~name:"reference" false
          "fault-free reference run failed; skipping salvage scenarios"
      | Some ref_bytes ->
        scenario_storm opts rng ~seed ~dir ~ref_bytes;
        scenario_deadline opts ~seed ~dir;
        scenario_degrade opts ~seed ~dir;
        scenario_truncate opts rng ~seed ~dir ~ref_bytes)

let write_report path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let all = List.rev !checks in
      let failed = List.filter (fun c -> not c.c_ok) all in
      Printf.fprintf oc "chaos campaign report\n";
      List.iter
        (fun c ->
          Printf.fprintf oc "%s seed=%d %s: %s\n"
            (if c.c_ok then "PASS" else "FAIL")
            c.c_seed c.c_name c.c_detail)
        all;
      Printf.fprintf oc "%d checks, %d failed\n" (List.length all)
        (List.length failed))

let () =
  let opts = parse_args () in
  if not (Sys.file_exists opts.vprof) then begin
    Printf.eprintf "chaos: no vprof binary at %s (build first, or pass \
                    --vprof)\n" opts.vprof;
    exit 2
  end;
  List.iter (if opts.kill_loop then kill_campaign opts else campaign opts)
    opts.seeds;
  let all = List.rev !checks in
  let failed = List.filter (fun c -> not c.c_ok) all in
  (match opts.report with Some path -> write_report path | None -> ());
  Printf.printf "chaos: %d checks across %d seeds, %d failed\n"
    (List.length all) (List.length opts.seeds) (List.length failed);
  exit (if failed = [] then 0 else 1)
