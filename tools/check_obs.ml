(* CI checker for the observability artifacts.

   Validates that a --trace file is well-formed Chrome trace_event JSON
   whose spans nest properly per thread and cover the expected layers
   (machine, driver, supervisor), and that a --metrics file is a
   well-formed registry dump. Any further arguments are span names the
   trace must contain at least once (CI uses this to pin the sharded
   pipeline: driver.shard, profile.merge). Exits 0 when both pass, 1
   with a diagnostic on the first defect, 2 on usage errors.

   Usage: check_obs TRACE.json METRICS.json [SPAN_NAME...] *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("check_obs: " ^ s); exit 1) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error e -> fail "%s" e

let parse path =
  match Obs.Json.parse (read_file path) with
  | Ok v -> v
  | Error e -> fail "%s: %s" path e

let str = function Obs.Json.Str s -> Some s | _ -> None
let num = function Obs.Json.Num n -> Some n | _ -> None

let check_trace ?(required_spans = []) path =
  let v = parse path in
  let events =
    match Obs.Json.member "traceEvents" v with
    | Some (Obs.Json.List l) -> l
    | _ -> fail "%s: missing traceEvents array" path
  in
  if events = [] then fail "%s: empty trace" path;
  let cats = Hashtbl.create 8 in
  let names = Hashtbl.create 32 in
  (* one begin/end stack per tid: every "E" must close the innermost open
     "B" of the same name on its own thread, and nothing may stay open *)
  let stacks : (float, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  List.iteri
    (fun i ev ->
      let field name conv =
        match Option.bind (Obs.Json.member name ev) conv with
        | Some x -> x
        | None -> fail "%s: event %d: missing or ill-typed %S" path i name
      in
      let name = field "name" str in
      let ph = field "ph" str in
      let tid = field "tid" num in
      ignore (field "ts" num);
      (match Obs.Json.member "cat" ev with
       | Some (Obs.Json.Str c) -> Hashtbl.replace cats c ()
       | _ -> ());
      let s = stack tid in
      match ph with
      | "B" ->
        Hashtbl.replace names name ();
        s := name :: !s
      | "E" ->
        (match !s with
         | top :: rest when top = name -> s := rest
         | top :: _ ->
           fail "%s: event %d: end of %S while %S is open" path i name top
         | [] -> fail "%s: event %d: end of %S with no open span" path i name)
      | "i" -> ()
      | other -> fail "%s: event %d: unknown phase %S" path i other)
    events;
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | top :: _ -> fail "%s: tid %.0f: span %S left open" path tid top)
    stacks;
  List.iter
    (fun layer ->
      if not (Hashtbl.mem cats layer) then
        fail "%s: no spans from the %s layer" path layer)
    [ "machine"; "driver"; "supervisor" ];
  List.iter
    (fun span ->
      if not (Hashtbl.mem names span) then
        fail "%s: required span %S never recorded" path span)
    required_spans;
  Printf.printf "%s: %d events, spans well nested, layers covered%s\n" path
    (List.length events)
    (if required_spans = [] then ""
     else Printf.sprintf ", required spans present (%s)"
         (String.concat ", " required_spans))

let check_metrics path =
  let v = parse path in
  let metrics =
    match Obs.Json.member "metrics" v with
    | Some (Obs.Json.List l) -> l
    | _ -> fail "%s: missing metrics array" path
  in
  if metrics = [] then fail "%s: empty registry dump" path;
  List.iteri
    (fun i m ->
      match
        ( Option.bind (Obs.Json.member "name" m) str,
          Option.bind (Obs.Json.member "type" m) str )
      with
      | Some _, Some _ -> ()
      | _ -> fail "%s: metric %d: missing name or type" path i)
    metrics;
  Printf.printf "%s: %d metrics\n" path (List.length metrics)

let () =
  if Array.length Sys.argv < 3 then begin
    prerr_endline "usage: check_obs TRACE.json METRICS.json [SPAN_NAME...]";
    exit 2
  end;
  let required_spans =
    Array.to_list (Array.sub Sys.argv 3 (Array.length Sys.argv - 3))
  in
  check_trace ~required_spans Sys.argv.(1);
  check_metrics Sys.argv.(2)
