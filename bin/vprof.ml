(* vprof: command-line front end for the value profiler.

   Subcommands: list, run, disasm, emit, profile, memory, procs,
   registers, contexts, phases, trivial, speculate, sample, fused,
   specialize, memoize, diff, experiment, experiments.

   Shared flags (workload/input selection, --fuel, --jobs) live in
   Cli_common; any command that needs more than one profiler run pushes
   the runs through the parallel driver (lib/driver), so -j N parallelizes
   them while keeping output byte-identical to -j 1. Experiment runs go
   through the supervisor (retry/record instead of abort) and can be made
   crash-safe with --checkpoint/--resume.

   Workload-running commands also accept --deadline / --max-heap /
   --degrade (Cli_common.governance_arg): the run executes under a
   resource budget (lib/util/budget) polled cooperatively by the
   machine. A breached budget without --degrade terminates the command
   with exit code 3 after the telemetry sinks are written; with
   --degrade, memory pressure sheds profiling precision instead.

   Exit codes: 0 success, 1 runtime failure (trap / failed experiment),
   2 usage error, 3 resource budget exceeded, 4 store integrity failure,
   125 internal error. *)

open Cmdliner
open Cli_common

(* list *)

let list_cmd =
  let run () =
    let table =
      Table.create ~title:"Workloads" [ "name"; "mimics"; "description" ]
    in
    List.iter
      (fun (w : Workload.t) ->
        Table.add_row table [ w.wname; w.wmimics; w.wdescr ])
      Workloads.all;
    Table.print table
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads.")
    Term.(const run $ const ())

(* run *)

let run_cmd =
  let run (w : Workload.t) input fuel _jobs trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let prog = w.wbuild input in
    let m = Machine.execute ?fuel prog in
    Printf.printf "%s (%s): %s dynamic instructions, v0 = %Ld\n" w.wname
      (Workload.string_of_input input)
      (Table.count (Machine.icount m))
      (Machine.reg m Isa.v0)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a workload without instrumentation.")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg $ governance_arg)

(* disasm *)

let disasm_cmd =
  let run (w : Workload.t) input =
    print_string (Asm.disassemble (w.wbuild input))
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload's program.")
    Term.(const run $ workload_arg $ input_arg)

(* emit *)

let emit_cmd =
  let run (w : Workload.t) input =
    print_string (Parser.emit (w.wbuild input))
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Emit a workload as .vasm assembly source (parseable back with \
          any command's -w FILE).")
    Term.(const run $ workload_arg $ input_arg)

(* profile *)

let tnv_size_arg =
  Arg.(
    value & opt int Vstate.default_config.tnv_capacity
    & info [ "tnv-size" ] ~docv:"N" ~doc:"TNV table capacity.")

let clear_interval_arg =
  Arg.(
    value & opt int Vstate.default_config.clear_interval
    & info [ "clear-interval" ] ~docv:"N"
        ~doc:"TNV clearing period (profiled occurrences).")

let save_arg =
  Arg.(
    value & opt (some string) None
    & info [ "save" ] ~docv:"FILE"
        ~doc:"Also write the profile to FILE (see Profile_io's format).")

let profile_cmd =
  let run (w : Workload.t) input selection top tnv_size clear_interval save
      fuel jobs shards store replicas stats trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let vconfig =
      { Vstate.default_config with
        tnv_capacity = tnv_size; clear_interval }
    in
    let compute () =
      if shards <> 1 then
        (* sharded collection: K slices of ONE execution, each on its own
           domain, merged in shard order (deterministic output) *)
        Shard.profile ~config:vconfig ~selection ?fuel
          ~jobs:(effective_jobs jobs)
          ~shards:(effective_shards shards) w input
      else
        match
          Driver.run_jobs ~jobs:(effective_jobs jobs)
            [ Driver.job
                (module Profile.Profiler)
                ~config:{ Profile.vconfig; selection }
                ?fuel ~finish:Fun.id w input ]
        with
        | [ p ] -> p
        | _ -> assert false
    in
    let profile =
      match store with
      | None -> compute ()
      | Some dir ->
        let s = open_store ~replicas dir in
        let prog = w.wbuild input in
        let sel_name =
          match selection with
          | `All -> "all"
          | `Loads -> "loads"
          | `Alu -> "alu"
          | `Stores -> "stores"
          | `Pcs _ -> "pcs"
        in
        (* the program text rides in the fingerprint so two distinct
           .vasm files sharing a basename can never alias an entry *)
        let config =
          Printf.sprintf "%s prog=%s"
            (Store.Fingerprint.profile_config vconfig ~selection:sel_name)
            (Crc32.to_hex (Crc32.string (Parser.emit prog)))
        in
        let key =
          Store.Fingerprint.(
            key
              (make ?fuel
                 ~shards:(if shards = 1 then 1 else effective_shards shards)
                 ~config ~profiler:"profile" ~workload:w.wname
                 ~input:(Workload.string_of_input input) ()))
        in
        (match Store.get_profile s ~program:prog ~key with
         | Some p ->
           Printf.eprintf "store: hit %s\n" key;
           p
         | None ->
           let p = compute () in
           Store.put_profile s ~key p;
           Printf.eprintf "store: miss %s (committed)\n" key;
           p)
    in
    (match save with
     | Some path ->
       Profile_io.write_file profile path;
       Printf.printf "profile written to %s\n" path
     | None -> ());
    let points =
      Array.to_list profile.Profile.points
      |> List.filter (fun (p : Profile.point) -> p.p_metrics.Metrics.total > 0)
      |> List.sort (fun (a : Profile.point) b ->
             compare b.p_metrics.Metrics.total a.p_metrics.Metrics.total)
    in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s (%s): %d points, %s profiled events" w.wname
             (Workload.string_of_input input)
             profile.Profile.instrumented
             (Table.count profile.Profile.profiled_events))
        [ "pc"; "proc"; "instr"; "execs"; "LVP"; "Inv-Top"; "Inv-All";
          "%zero"; "Diff"; "class"; "predictor"; "top value" ]
    in
    List.iteri
      (fun i (p : Profile.point) ->
        if i < top then begin
          let m = p.p_metrics in
          Table.add_row table
            [ string_of_int p.p_pc; p.p_proc;
              Isa.to_string p.p_instr;
              Table.count m.Metrics.total;
              Table.pct m.Metrics.lvp;
              Table.pct m.Metrics.inv_top;
              Table.pct m.Metrics.inv_all;
              Table.pct m.Metrics.zero;
              string_of_int m.Metrics.distinct
              ^ (if m.Metrics.distinct_saturated then "+" else "");
              Metrics.string_of_classification (Metrics.classify m);
              Metrics.string_of_predictor_class (Metrics.predictor_class m);
              (match m.Metrics.top_values with
               | [||] -> "-"
               | tv -> Int64.to_string (fst tv.(0))) ]
        end)
      points;
    Table.print table;
    print_stats stats "profile" (Profile.Profiler.stats profile)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Value-profile a workload (full profiling).")
    Term.(
      const run $ workload_arg $ input_arg $ selection_arg $ top_arg
      $ tnv_size_arg $ clear_interval_arg $ save_arg $ fuel_arg $ jobs_arg
      $ shards_arg $ store_arg $ replicas_arg $ stats_arg $ trace_arg
      $ metrics_arg $ governance_arg)

(* memory *)

let memory_cmd =
  let run (w : Workload.t) input top fuel jobs stats trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let r =
      match
        Driver.run_jobs ~jobs:(effective_jobs jobs)
          [ Driver.job (module Memprof.Profiler) ?fuel ~finish:Fun.id w input ]
      with
      | [ r ] -> r
      | _ -> assert false
    in
    Printf.printf
      "%s (%s): %s locations, %s events, %.1f%% of accesses >=90%% invariant\n"
      w.wname
      (Workload.string_of_input input)
      (Table.count (Array.length r.Memprof.locations))
      (Table.count r.Memprof.tracked_events)
      (100. *. Memprof.fraction_invariant r ~threshold:0.9);
    let table =
      Table.create ~title:"Hottest locations"
        [ "address"; "accesses"; "LVP"; "Inv-Top"; "Inv-All"; "top value" ]
    in
    Array.iteri
      (fun i (l : Memprof.location) ->
        if i < top then
          Table.add_row table
            [ Printf.sprintf "0x%Lx" l.l_addr;
              Table.count l.l_metrics.Metrics.total;
              Table.pct l.l_metrics.Metrics.lvp;
              Table.pct l.l_metrics.Metrics.inv_top;
              Table.pct l.l_metrics.Metrics.inv_all;
              (match l.l_metrics.Metrics.top_values with
               | [||] -> "-"
               | tv -> Int64.to_string (fst tv.(0))) ])
      r.Memprof.locations;
    Table.print table;
    print_stats stats "memory" (Memprof.Profiler.stats r)
  in
  Cmd.v
    (Cmd.info "memory" ~doc:"Profile memory locations (Chapter VII).")
    Term.(
      const run $ workload_arg $ input_arg $ top_arg $ fuel_arg $ jobs_arg
      $ stats_arg $ trace_arg $ metrics_arg $ governance_arg)

(* procs *)

let procs_cmd =
  let run (w : Workload.t) input fuel jobs stats trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let config = { Procprof.default_config with arities = w.warities } in
    let pp =
      match
        Driver.run_jobs ~jobs:(effective_jobs jobs)
          [ Driver.job (module Procprof.Profiler) ~config ?fuel ~finish:Fun.id
              w input ]
      with
      | [ pp ] -> pp
      | _ -> assert false
    in
    let table =
      Table.create
        ~title:(Printf.sprintf "%s (%s): procedure profile" w.wname
                  (Workload.string_of_input input))
        [ "procedure"; "calls"; "params Inv-Top"; "ret Inv-Top"; "memo hits" ]
    in
    Array.iter
      (fun (r : Procprof.proc_report) ->
        if r.r_calls > 0 then
          Table.add_row table
            [ r.r_name;
              Table.count r.r_calls;
              (if Array.length r.r_params = 0 then "-"
               else
                 String.concat " / "
                   (Array.to_list
                      (Array.map
                         (fun (m : Metrics.t) -> Table.pct m.inv_top)
                         r.r_params)));
              Table.pct r.r_return.Metrics.inv_top;
              string_of_int r.r_memo_hits ])
      pp.Procprof.procs;
    Table.print table;
    print_stats stats "procs" (Procprof.Profiler.stats pp)
  in
  Cmd.v
    (Cmd.info "procs" ~doc:"Profile procedure parameters and returns.")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ stats_arg
      $ trace_arg $ metrics_arg $ governance_arg)

(* registers *)

let registers_cmd =
  let run (w : Workload.t) input fuel _jobs trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let r = Regprof.run ?fuel (w.wbuild input) in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s (%s): register value profile" w.wname
             (Workload.string_of_input input))
        [ "register"; "writes"; "LVP"; "Inv-Top"; "Inv-All"; "%zero";
          "top value" ]
    in
    Array.iter
      (fun (g : Regprof.reg_report) ->
        Table.add_row table
          [ Isa.string_of_reg g.g_reg;
            Table.count g.g_writes;
            Table.pct g.g_metrics.Metrics.lvp;
            Table.pct g.g_metrics.Metrics.inv_top;
            Table.pct g.g_metrics.Metrics.inv_all;
            Table.pct g.g_metrics.Metrics.zero;
            (match g.g_metrics.Metrics.top_values with
             | [||] -> "-"
             | tv -> Int64.to_string (fst tv.(0))) ])
      r.Regprof.regs;
    Table.print table
  in
  Cmd.v
    (Cmd.info "registers"
       ~doc:"Profile values written per architectural register.")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg $ governance_arg)

(* sample *)

let sample_cmd =
  let burst =
    Arg.(value & opt int Sampler.default_config.burst
         & info [ "burst" ] ~docv:"N" ~doc:"Executions profiled per burst.")
  in
  let skip =
    Arg.(value & opt int Sampler.default_config.initial_skip
         & info [ "skip" ] ~docv:"N" ~doc:"Executions skipped between bursts.")
  in
  let epsilon =
    Arg.(value & opt float Sampler.default_config.epsilon
         & info [ "epsilon" ] ~docv:"E" ~doc:"Convergence threshold.")
  in
  let run (w : Workload.t) input burst skip epsilon fuel jobs stats trace
      metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let config =
      { Sampler.default_config with burst; initial_skip = skip; epsilon }
    in
    let sconfig = { Sampler.Profiler.default_config with Sampler.sampler = config } in
    (* two driver jobs sharing the (workload, input, fuel) key: the
       scheduler fuses them onto one machine execution *)
    match
      Driver.run_jobs ~jobs:(effective_jobs jobs)
        [ Driver.job (module Sampler.Profiler) ~config:sconfig ?fuel
            ~finish:(fun s -> `Sampled s) w input;
          Driver.job (module Profile.Profiler) ?fuel
            ~finish:(fun p -> `Full p) w input ]
    with
    | [ `Sampled sampled; `Full full ] ->
      Printf.printf
        "%s (%s): overhead %.2f%% (%s of %s events), invariance error %.2f%%\n"
        w.wname
        (Workload.string_of_input input)
        (100. *. sampled.Sampler.overhead)
        (Table.count sampled.Sampler.profiled_events)
        (Table.count sampled.Sampler.total_events)
        (100. *. Sampler.invariance_error sampled full);
      print_stats stats "sample" (Sampler.Profiler.stats sampled)
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Convergent (sampled) value profiling.")
    Term.(
      const run $ workload_arg $ input_arg $ burst $ skip $ epsilon $ fuel_arg
      $ jobs_arg $ stats_arg $ trace_arg $ metrics_arg $ governance_arg)

(* specialize *)

let specialize_cmd =
  let run (w : Workload.t) input fuel _jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let config = { Procprof.default_config with arities = w.warities } in
    let prog = w.wbuild input in
    let pp = Procprof.run ~config ?fuel prog in
    match Specialize.candidates pp ~min_calls:100 ~min_inv:0.5 with
    | [] -> print_endline "no semi-invariant parameter candidates found"
    | (proc, param, value, inv) :: _ ->
      Printf.printf "candidate: %s(%s = %Ld), Inv-Top %.1f%%\n" proc
        (Isa.string_of_reg param) value (100. *. inv);
      (match Specialize.specialize prog ~proc ~param ~value with
       | report ->
         let equal, before, after =
           Specialize.differential prog report.Specialize.sp_program
         in
         Printf.printf
           "specialized body: %d -> %d instructions (%d folded, %d branches resolved, %d dead)\n"
           report.Specialize.sp_static_before report.Specialize.sp_static_after
           report.Specialize.sp_folded report.Specialize.sp_branches_resolved
           report.Specialize.sp_dead_removed;
         Printf.printf "dynamic instructions: %s -> %s (%+.1f%%), results %s\n"
           (Table.count before) (Table.count after)
           (100. *. float_of_int (after - before) /. float_of_int before)
           (if equal then "identical" else "DIFFER")
       | exception Body.Unsupported msg ->
         Printf.printf "cannot specialize: %s\n" msg)
  in
  Cmd.v
    (Cmd.info "specialize"
       ~doc:"Specialize the best semi-invariant procedure parameter.")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

(* trivial *)

let trivial_cmd =
  let run (w : Workload.t) input fuel _jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let r = Trivprof.run ?fuel (w.wbuild input) in
    Printf.printf
      "%s (%s): %s ALU events, %s measured, %.1f%% trivial (%s via immediates, %s via run-time values)\n"
      w.wname
      (Workload.string_of_input input)
      (Table.count r.Trivprof.alu_events)
      (Table.count r.Trivprof.measured)
      (100. *. Trivprof.trivial_fraction r)
      (Table.count r.Trivprof.trivial_imm)
      (Table.count r.Trivprof.trivial_dyn);
    List.iter
      (fun (kind, n) -> Printf.printf "  %-14s %s\n" kind (Table.count n))
      r.Trivprof.by_kind
  in
  Cmd.v
    (Cmd.info "trivial"
       ~doc:"Profile trivial arithmetic operands (Richardson [32]).")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

(* speculate *)

let speculate_cmd =
  let run (w : Workload.t) input top fuel _jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prog = w.wbuild input in
    let t = Specul.run ?fuel prog in
    Printf.printf
      "%s (%s): %s load executions, %.1f%% would fail a hoisted value check\n"
      w.wname
      (Workload.string_of_input input)
      (Table.count t.Specul.total_executions)
      (100. *. Specul.conflict_rate t ~select:(fun _ -> true));
    let table =
      Table.create ~title:"Per-load conflict rates"
        [ "pc"; "instr"; "execs"; "conflicts"; "rate" ]
    in
    Array.iteri
      (fun i (l : Specul.load_report) ->
        if i < top then
          Table.add_row table
            [ string_of_int l.sl_pc;
              Isa.to_string prog.Asm.code.(l.sl_pc);
              Table.count l.sl_executions;
              Table.count l.sl_conflicts;
              Table.pct l.sl_conflict_rate ])
      t.Specul.loads;
    Table.print table
  in
  Cmd.v
    (Cmd.info "speculate"
       ~doc:
         "Profile speculative-load value-check conflicts (Moudgill & \
          Moreno [29]).")
    Term.(
      const run $ workload_arg $ input_arg $ top_arg $ fuel_arg $ jobs_arg
      $ trace_arg $ metrics_arg)

(* phases *)

let phases_cmd =
  let window_arg =
    Arg.(
      value & opt int Phaseprof.default_config.window
      & info [ "window" ] ~docv:"N" ~doc:"Executions per window.")
  in
  let run (w : Workload.t) input top window fuel _jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let config = { Phaseprof.default_config with window } in
    let t = Phaseprof.run ~config ~selection:`Loads ?fuel (w.wbuild input) in
    Printf.printf "%s (%s): mean load-invariance drift %.1f%% (window %d)\n"
      w.wname
      (Workload.string_of_input input)
      (100. *. Phaseprof.mean_drift t)
      window;
    let table =
      Table.create ~title:"Most phased points"
        [ "pc"; "instr"; "execs"; "overall InvTop"; "drift"; "windows" ]
    in
    let sorted = Array.copy t.Phaseprof.points in
    Array.sort
      (fun (a : Phaseprof.point) b -> compare b.ph_drift a.ph_drift)
      sorted;
    Array.iteri
      (fun i (p : Phaseprof.point) ->
        if i < top && p.ph_total > 0 then
          Table.add_row table
            [ string_of_int p.ph_pc;
              Isa.to_string p.ph_instr;
              Table.count p.ph_total;
              Table.pct p.ph_overall;
              Table.pct p.ph_drift;
              String.concat " "
                (Array.to_list
                   (Array.map
                      (fun wv -> Printf.sprintf "%.0f" (100. *. wv))
                      p.ph_windows)) ])
      sorted;
    Table.print table
  in
  Cmd.v
    (Cmd.info "phases"
       ~doc:"Windowed (phase) profiling of load invariance over time.")
    Term.(
      const run $ workload_arg $ input_arg $ top_arg $ window_arg $ fuel_arg
      $ jobs_arg $ trace_arg $ metrics_arg)

(* contexts *)

let contexts_cmd =
  let run (w : Workload.t) input fuel jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prog = w.wbuild input in
    let config = { Ctxprof.default_config with arities = w.warities } in
    let flat_config = { Procprof.default_config with arities = w.warities } in
    (* two independent instrumented runs of the same (immutable) program *)
    match
      Driver.map ~jobs:(effective_jobs jobs)
        (fun run -> run ())
        [ (fun () -> `Ctx (Ctxprof.run ~config ?fuel prog));
          (fun () -> `Flat (Procprof.run ~config:flat_config ?fuel prog)) ]
    with
    | [ `Ctx ctx; `Flat flat ] ->
      let table =
        Table.create
          ~title:
            (Printf.sprintf "%s (%s): parameter invariance by call site"
               w.wname
               (Workload.string_of_input input))
          [ "procedure"; "flat Inv-Top"; "per-site Inv-Top"; "gain" ]
      in
      List.iter
        (fun (name, flat_inv, ctx_inv) ->
          Table.add_row table
            [ name; Table.pct flat_inv; Table.pct ctx_inv;
              Printf.sprintf "%+.1fpp" (100. *. (ctx_inv -. flat_inv)) ])
        (Ctxprof.context_gain ctx flat);
      Table.print table
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "contexts"
       ~doc:"Call-site-sensitive parameter profiling (Young & Smith [40]).")
    Term.(
      const run $ workload_arg $ input_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

(* memoize *)

let memoize_cmd =
  let proc_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "proc" ] ~docv:"NAME"
          ~doc:
            "Procedure to memoize. Must be pure modulo read-only memory — \
             the transform cannot check this; the differential run will \
             expose violations.")
  in
  let arity_arg =
    Arg.(
      value & opt int 1
      & info [ "a"; "arity" ] ~docv:"N" ~doc:"Number of arguments (1-6).")
  in
  let run (w : Workload.t) input proc arity _jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let prog = w.wbuild input in
    match Memoize.memoize prog ~proc ~arity with
    | report ->
      let equal, before, after = Memoize.differential prog report in
      Printf.printf
        "memoized %s/%d with a %d-line cache at 0x%Lx\n"
        proc arity report.Memoize.m_entries report.Memoize.m_table_base;
      Printf.printf "dynamic instructions: %s -> %s (%+.1f%%), results %s\n"
        (Table.count before) (Table.count after)
        (100. *. float_of_int (after - before) /. float_of_int before)
        (if equal then "identical" else "DIFFER (procedure is not pure!)")
    | exception Body.Unsupported msg -> Printf.printf "cannot memoize: %s\n" msg
    | exception Not_found -> Printf.printf "no procedure named %S\n" proc
  in
  Cmd.v
    (Cmd.info "memoize"
       ~doc:"Install a memoization cache on a pure procedure (Richardson [32]).")
    Term.(
      const run $ workload_arg $ input_arg $ proc_arg $ arity_arg $ jobs_arg
      $ trace_arg $ metrics_arg)

(* diff *)

let diff_cmd =
  let run (w : Workload.t) top fuel jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let pt, ptr =
      match
        Driver.run_jobs ~jobs:(effective_jobs jobs)
          [ Driver.job (module Profile.Profiler) ?fuel ~finish:Fun.id w
              Workload.Test;
            Driver.job (module Profile.Profiler) ?fuel ~finish:Fun.id w
              Workload.Train ]
      with
      | [ pt; ptr ] -> (pt, ptr)
      | _ -> assert false
    in
    let pairs =
      Array.to_list pt.Profile.points
      |> List.filter_map (fun (a : Profile.point) ->
             if a.p_metrics.Metrics.total = 0 then None
             else
               match Profile.point_at ptr a.p_pc with
               | Some b when b.Profile.p_metrics.Metrics.total > 0 -> Some (a, b)
               | Some _ | None -> None)
    in
    (if List.length pairs >= 2 then begin
       let xs =
         Array.of_list
           (List.map (fun ((a : Profile.point), _) -> a.p_metrics.Metrics.inv_top) pairs)
       in
       let ys =
         Array.of_list
           (List.map (fun (_, (b : Profile.point)) -> b.Profile.p_metrics.Metrics.inv_top) pairs)
       in
       Printf.printf "%s: %d shared points, Inv-Top correlation %.3f (test vs train)\n"
         w.wname (List.length pairs) (Stats.pearson xs ys)
     end);
    let table =
      Table.create ~title:"Largest invariance movements between inputs"
        [ "pc"; "proc"; "instr"; "InvTop test"; "InvTop train"; "delta" ]
    in
    pairs
    |> List.sort (fun ((a1 : Profile.point), (b1 : Profile.point)) (a2, b2) ->
           compare
             (abs_float
                (a2.Profile.p_metrics.Metrics.inv_top
                 -. b2.Profile.p_metrics.Metrics.inv_top))
             (abs_float
                (a1.p_metrics.Metrics.inv_top -. b1.p_metrics.Metrics.inv_top)))
    |> List.iteri (fun i ((a : Profile.point), (b : Profile.point)) ->
           if i < top then
             Table.add_row table
               [ string_of_int a.p_pc; a.p_proc;
                 Isa.to_string a.p_instr;
                 Table.pct a.p_metrics.Metrics.inv_top;
                 Table.pct b.p_metrics.Metrics.inv_top;
                 Printf.sprintf "%+.1fpp"
                   (100.
                    *. (b.p_metrics.Metrics.inv_top
                        -. a.p_metrics.Metrics.inv_top)) ]);
    Table.print table
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare a workload's test and train profiles (Table V.5 style).")
    Term.(
      const run $ workload_arg $ top_arg $ fuel_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

(* experiment / experiments *)

let csv_arg =
  Arg.(
    value & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write each produced table to DIR as a CSV file.")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Commit each finished experiment to DIR (crash-safe manifest + \
           payload files) as the run progresses; combine with \
           $(b,--resume) to skip work a previous run already committed.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "With $(b,--checkpoint): reload the directory's committed \
           results and run only what is missing. Without it the \
           directory is restarted from scratch.")

let retries_arg =
  Arg.(
    value & opt int Supervisor.default_policy.Supervisor.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts for a failing experiment before it is recorded \
           as a failure (fuel-exhausted retries double the budget each \
           time).")

let fail_fast_arg =
  Arg.(
    value & flag
    & info [ "fail-fast" ]
        ~doc:
          "Stop scheduling new experiments as soon as one has failed all \
           its retries (the default records the failure and keeps \
           going).")

let write_csv dir (spec : Experiments.spec) tables =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i table ->
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" spec.id i) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Table.to_csv table));
      Printf.printf "wrote %s\n" path)
    tables

let print_spec_tables csv ((spec : Experiments.spec), tables) =
  Printf.printf "== %s: %s  [%s] ==\n" spec.id spec.title spec.paper_ref;
  List.iter
    (fun t ->
      Table.print t;
      print_newline ())
    tables;
  match csv with Some dir -> write_csv dir spec tables | None -> ()

(* Exit codes (see the trailer in [main]): 0 success, 1 runtime failure
   (a trap, or an experiment that failed all its retries), 2 usage
   error. *)

let report_failures failures =
  List.iter
    (fun f -> prerr_endline (Experiments.string_of_failure f))
    failures

(* The failure report lands next to the checkpoint data so CI can upload
   it as an artifact whether or not the run succeeded. *)
let write_failure_report dir (rep : string Supervisor.report) =
  let path = Filename.concat dir "failures.txt" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match Supervisor.failures rep with
      | [] ->
        Printf.fprintf oc "all %d experiments completed (%d from checkpoint)\n"
          (List.length rep.Supervisor.outcomes)
          (List.length
             (List.filter
                (fun (o : string Supervisor.outcome) ->
                  o.Supervisor.o_attempts = 0
                  && Result.is_ok o.Supervisor.o_result)
                rep.Supervisor.outcomes))
      | failures ->
        List.iter
          (fun (o : string Supervisor.outcome) ->
            match o.Supervisor.o_result with
            | Ok _ -> ()
            | Error e ->
              Printf.fprintf oc "%s: %s (after %d attempts)\n"
                o.Supervisor.o_name
                (Supervisor.string_of_error e)
                o.Supervisor.o_attempts)
          failures)

let run_experiments id csv jobs shards checkpoint resume store replicas
    retries fail_fast fuel trace metrics gov =
  let specs =
    if id = "all" then Experiments.all
    else
      match Experiments.find id with
      | spec -> [ spec ]
      | exception Not_found ->
        Printf.eprintf "unknown experiment %S; known: %s\n" id
          (String.concat ", "
             (List.map (fun (s : Experiments.spec) -> s.id) Experiments.all));
        exit 2
  in
  (* the one run_config both entry points below share — the sinks ride in
     the config, so the library (not the CLI) owns enabling/writing them *)
  let config =
    { Experiments.default_run_config with
      Experiments.rc_jobs = Some (effective_jobs jobs);
      rc_fuel = fuel;
      rc_retries = max 0 retries;
      rc_fail_fast = fail_fast;
      rc_trace = trace;
      rc_metrics = metrics;
      rc_shards = effective_shards shards }
  in
  (* governance is armed around the whole supervised run: the supervisor
     polls the budget between attempts and classifies Deadline /
     Mem_pressure trips per job, so a budgeted suite records failures
     (exit 1) rather than dying with exit 3 *)
  with_governance gov @@ fun () ->
  match (checkpoint, store) with
  | None, None ->
    let rep = Experiments.run ~config specs in
    List.iter (fun r -> print_spec_tables csv r) rep.Experiments.results;
    if rep.Experiments.failures <> [] then begin
      report_failures rep.Experiments.failures;
      exit 1
    end
  | ck_dir, store_dir ->
    (* both --checkpoint and --store route through the rendered-payload
       path: each experiment's bytes are committed as they land and
       cached units are served without running (byte-identical output
       either way, since [Experiments.render] is the payload) *)
    if csv <> None then begin
      prerr_endline
        "vprof: --csv needs the experiments' tables, which \
         --checkpoint/--store runs do not retain; use one or the other";
      exit 2
    end;
    let ck = Option.map (Checkpoint.create ~resume) ck_dir in
    let st = Option.map (open_store ~replicas) store_dir in
    let rep =
      Experiments.run_strings
        ~config:
          { config with
            Experiments.rc_checkpoint = ck;
            Experiments.rc_store = st }
        specs
    in
    List.iter
      (fun (o : string Supervisor.outcome) ->
        match o.Supervisor.o_result with
        | Ok payload -> print_string payload
        | Error _ -> ())
      rep.Supervisor.outcomes;
    (if st <> None then
       (* visible hit accounting on stderr, so stdout stays byte-identical
          between cold and warm runs *)
       let served =
         List.length
           (List.filter
              (fun (o : string Supervisor.outcome) ->
                o.Supervisor.o_attempts = 0 && Result.is_ok o.Supervisor.o_result)
              rep.Supervisor.outcomes)
       in
       Printf.eprintf "store: %d of %d experiments served from cache\n" served
         (List.length rep.Supervisor.outcomes));
    Option.iter (fun dir -> write_failure_report dir rep) ck_dir;
    (match Supervisor.failures rep with
     | [] -> ()
     | failures ->
       List.iter
         (fun (o : string Supervisor.outcome) ->
           match o.Supervisor.o_result with
           | Ok _ -> ()
           | Error e ->
             Printf.eprintf "experiment %s FAILED after %d attempts: %s\n"
               o.Supervisor.o_name o.Supervisor.o_attempts
               (Supervisor.string_of_error e))
         failures;
       (match ck_dir with
        | Some dir ->
          Printf.eprintf
            "%d of %d experiments failed; completed work is committed under \
             %s — rerun with --resume to retry only the failures\n"
            (List.length failures)
            (List.length rep.Supervisor.outcomes)
            dir
        | None ->
          Printf.eprintf "%d of %d experiments failed\n" (List.length failures)
            (List.length rep.Supervisor.outcomes));
       exit 1)

(* fused *)

(* One driver job per requested profiler, every job sharing the same
   (workload, input, fuel) key, so Driver.run_jobs coalesces them into a
   single machine execution. Each finish continuation reduces the typed
   result to (name, one-line summary, dynamic instructions, counters). *)
let fused_job (w : Workload.t) input fuel name =
  let ok j = Ok j in
  match name with
  | "profile" ->
    ok
      (Driver.job (module Profile.Profiler) ?fuel
         ~finish:(fun (p : Profile.t) ->
           ( name,
             Printf.sprintf "%d points, %s profiled events" p.instrumented
               (Table.count p.profiled_events),
             p.dynamic_instructions, Profile.Profiler.stats p ))
         w input)
  | "sample" ->
    ok
      (Driver.job (module Sampler.Profiler) ?fuel
         ~finish:(fun (s : Sampler.t) ->
           ( name,
             Printf.sprintf "overhead %.2f%% (%s of %s events)"
               (100. *. s.overhead)
               (Table.count s.profiled_events)
               (Table.count s.total_events),
             s.dynamic_instructions, Sampler.Profiler.stats s ))
         w input)
  | "memory" ->
    ok
      (Driver.job (module Memprof.Profiler) ?fuel
         ~finish:(fun (m : Memprof.t) ->
           ( name,
             Printf.sprintf "%d locations, %s tracked events"
               (Array.length m.locations)
               (Table.count m.tracked_events),
             m.dynamic_instructions, Memprof.Profiler.stats m ))
         w input)
  | "procs" ->
    let config = { Procprof.default_config with arities = w.warities } in
    ok
      (Driver.job (module Procprof.Profiler) ~config ?fuel
         ~finish:(fun (p : Procprof.t) ->
           ( name,
             Printf.sprintf "%d procedures, %s calls" (Array.length p.procs)
               (Table.count p.total_calls),
             p.dynamic_instructions, Procprof.Profiler.stats p ))
         w input)
  | "registers" ->
    ok
      (Driver.job (module Regprof.Profiler) ?fuel
         ~finish:(fun (r : Regprof.t) ->
           ( name,
             Printf.sprintf "%d registers written, %s writes"
               (Array.length r.regs)
               (Table.count r.total_writes),
             r.dynamic_instructions, Regprof.Profiler.stats r ))
         w input)
  | "contexts" ->
    let config = { Ctxprof.default_config with arities = w.warities } in
    ok
      (Driver.job (module Ctxprof.Profiler) ~config ?fuel
         ~finish:(fun (c : Ctxprof.t) ->
           ( name,
             Printf.sprintf "%d contexts, %s untracked calls"
               (Array.length c.contexts)
               (Table.count c.untracked_calls),
             c.dynamic_instructions, Ctxprof.Profiler.stats c ))
         w input)
  | "phases" ->
    ok
      (Driver.job (module Phaseprof.Profiler) ?fuel
         ~finish:(fun (p : Phaseprof.t) ->
           ( name,
             Printf.sprintf "%d points, mean drift %.2f%%"
               (Array.length p.points)
               (100. *. Phaseprof.mean_drift p),
             p.dynamic_instructions, Phaseprof.Profiler.stats p ))
         w input)
  | "trivial" ->
    ok
      (Driver.job (module Trivprof.Profiler) ?fuel
         ~finish:(fun (t : Trivprof.t) ->
           ( name,
             Printf.sprintf "%s ALU events, %.2f%% trivial"
               (Table.count t.alu_events)
               (100. *. Trivprof.trivial_fraction t),
             t.dynamic_instructions, Trivprof.Profiler.stats t ))
         w input)
  | "speculate" ->
    ok
      (Driver.job (module Specul.Profiler) ?fuel
         ~finish:(fun (s : Specul.t) ->
           ( name,
             Printf.sprintf "%d loads, %s conflicts in %s executions"
               (Array.length s.loads)
               (Table.count s.total_conflicts)
               (Table.count s.total_executions),
             s.dynamic_instructions, Specul.Profiler.stats s ))
         w input)
  | other -> Error other

let fused_cmd =
  let profilers_arg =
    Arg.(
      value
      & opt string "profile,memory,procs"
      & info [ "profilers" ] ~docv:"LIST"
          ~doc:
            "Comma-separated profilers to fuse onto one machine \
             execution: profile, sample, memory, procs, registers, \
             contexts, phases, trivial, speculate.")
  in
  let run (w : Workload.t) input profilers fuel jobs stats trace metrics gov =
    with_obs ~trace ~metrics @@ fun () ->
    with_governance gov @@ fun () ->
    let names =
      String.split_on_char ',' profilers
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if names = [] then `Error (true, "--profilers: empty list")
    else
      match
        List.fold_left
          (fun acc name ->
            match (acc, fused_job w input fuel name) with
            | Error e, _ -> Error e
            | Ok js, Ok j -> Ok (j :: js)
            | Ok _, Error other -> Error other)
          (Ok []) names
      with
      | Error other ->
        `Error (true, Printf.sprintf "--profilers: unknown profiler %S" other)
      | Ok rev_jobs ->
        let js = List.rev rev_jobs in
        Printf.printf "schedule: %s\n" (String.concat "; " (Driver.plan js));
        let results = Driver.run_jobs ~jobs:(effective_jobs jobs) js in
        (match results with
         | (_, _, dyn, _) :: _ ->
           Printf.printf
             "%s (%s): %d profilers, one machine execution, %s machine steps\n"
             w.wname
             (Workload.string_of_input input)
             (List.length results) (Table.count dyn)
         | [] -> ());
        List.iter
          (fun (name, line, _, c) ->
            Printf.printf "  %-10s %s\n" name line;
            print_stats stats name c)
          results;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fused"
       ~doc:
         "Run several profilers over ONE machine execution. Jobs sharing \
          a (workload, input, fuel) key coalesce in the driver, so the \
          workload executes once however many profilers observe it; each \
          profiler's result is identical to its solo run.")
    Term.(
      ret
        (const run $ workload_arg $ input_arg $ profilers_arg $ fuel_arg
        $ jobs_arg $ stats_arg $ trace_arg $ metrics_arg $ governance_arg))

let experiment_cmd =
  let id_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (e01..e24) or 'all'.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate the paper's tables and figures (see DESIGN.md).")
    Term.(
      const run_experiments $ id_arg $ csv_arg $ jobs_arg $ shards_arg
      $ checkpoint_arg $ resume_arg $ store_arg $ replicas_arg $ retries_arg
      $ fail_fast_arg $ fuel_arg $ trace_arg $ metrics_arg $ governance_arg)

let experiments_cmd =
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Run the whole suite (the default when no ID is given).")
  in
  let id_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (e01..e24); omit for all.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run only the quick smoke experiment (e01) — enough to \
             exercise the machine, driver and supervisor layers; CI pairs \
             it with $(b,--trace)/$(b,--metrics) to validate the \
             telemetry pipeline cheaply.")
  in
  let run all id smoke csv jobs shards checkpoint resume store replicas
      retries fail_fast fuel trace metrics gov =
    let id =
      if smoke then "e01"
      else if all then "all"
      else Option.value id ~default:"all"
    in
    run_experiments id csv jobs shards checkpoint resume store replicas
      retries fail_fast fuel trace metrics gov
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Run the experiment suite — all of it with $(b,--all) (or no ID), \
          in parallel with $(b,-j N); output is byte-identical to a serial \
          run. A failing experiment is retried, then recorded and \
          reported instead of aborting the rest; $(b,--checkpoint) makes \
          the run crash-safe and $(b,--resume) continues one.")
    Term.(
      const run $ all_arg $ id_arg $ smoke_arg $ csv_arg $ jobs_arg
      $ shards_arg $ checkpoint_arg $ resume_arg $ store_arg $ replicas_arg
      $ retries_arg $ fail_fast_arg $ fuel_arg $ trace_arg $ metrics_arg
      $ governance_arg)

(* store *)

let store_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR" ~doc:"Profile store directory.")

let store_ls_cmd =
  let run dir =
    let s = Store.open_dir dir in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "Profile store %s (generation %d)" dir
             (Store.generation s))
        [ "key"; "gen"; "bytes" ]
    in
    List.iter
      (fun (e : Store.info) ->
        Table.add_row table
          [ e.i_key; string_of_int e.i_gen; Table.count e.i_bytes ])
      (Store.entries s);
    Table.print table
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List the store's entries (key, generation, size).")
    Term.(const run $ store_dir_arg)

let store_get_cmd =
  let key_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"KEY" ~doc:"Store key (as printed by $(b,store ls)).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the payload to FILE instead of stdout.")
  in
  let workload_opt_arg =
    Arg.(
      value
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:
            "Decode the entry as a profile of this workload and emit the \
             text (v2) rendering instead of the raw stored bytes.")
  in
  let run dir key out w input =
    let s = Store.open_dir dir in
    match Store.find s key with
    | None ->
      Printf.eprintf "vprof: no store entry %s\n" key;
      exit 1
    | Some payload ->
      let bytes =
        match w with
        | None -> payload
        | Some (wl : Workload.t) ->
          (match Profile_io.of_string ~program:(wl.wbuild input) payload with
           | p -> Profile_io.to_string p
           | exception Failure msg ->
             Printf.eprintf "vprof: %s\n" msg;
             exit 1)
      in
      (match out with
       | None -> print_string bytes
       | Some path ->
         let oc = open_out_bin path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc bytes);
         Printf.printf "wrote %s (%d bytes)\n" path (String.length bytes))
  in
  Cmd.v
    (Cmd.info "get"
       ~doc:
         "Print one entry's payload — raw bytes by default, or decoded to \
          profile text with $(b,-w).")
    Term.(const run $ store_dir_arg $ key_arg $ out_arg $ workload_opt_arg
          $ input_arg)

let store_merge_cmd =
  let into_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "into" ] ~docv:"KEY"
          ~doc:"Destination key (merged with its current entry, if any).")
  in
  let keys_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"KEY" ~doc:"Source profile entries to merge.")
  in
  let run dir (w : Workload.t) input into keys =
    let s = open_store dir in
    let prog = w.wbuild input in
    let load k =
      match Store.get_profile s ~program:prog ~key:k with
      | Some p -> p
      | None ->
        Printf.eprintf
          "vprof: store entry %s is missing or not a decodable profile of %s\n"
          k w.wname;
        exit 1
    in
    let merged = Profile.merge (List.map load keys) in
    Store.merge_into s ~program:prog ~key:into merged;
    Printf.printf "merged %d profile%s into %s (%s profiled events)\n"
      (List.length keys)
      (if List.length keys = 1 then "" else "s")
      into
      (Table.count merged.Profile.profiled_events)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge stored profile entries (Profile.merge semantics: totals \
          add, TNV tables fuse) into a destination entry.")
    Term.(const run $ store_dir_arg $ workload_arg $ input_arg $ into_arg
          $ keys_arg)

let store_gc_cmd =
  let keep_arg =
    Arg.(
      value & opt int 1
      & info [ "keep" ] ~docv:"N"
          ~doc:
            "Keep entries written within the last N generations (each \
             profiling invocation against the store opens one generation).")
  in
  let run dir keep =
    let s = Store.open_dir dir in
    let removed = Store.gc s ~keep in
    Printf.printf "removed %d entr%s (generation %d, keeping %d)\n" removed
      (if removed = 1 then "y" else "ies")
      (Store.generation s) keep
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Collect entries older than the last N generations.")
    Term.(const run $ store_dir_arg $ keep_arg)

let store_stats_cmd =
  let run dir =
    let s = Store.open_dir dir in
    let st = Store.stats s in
    let table =
      Table.create ~title:(Printf.sprintf "Profile store %s" dir)
        [ "metric"; "value" ]
    in
    Table.add_row table [ "entries"; string_of_int st.Store.st_entries ];
    Table.add_row table [ "bytes"; Table.count st.Store.st_bytes ];
    Table.add_row table [ "generation"; string_of_int st.Store.st_generation ];
    Table.add_row table [ "replicas"; string_of_int st.Store.st_replicas ];
    Table.add_row table [ "lost"; string_of_int st.Store.st_lost ];
    Table.print table
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Entry count, total bytes and current generation.")
    Term.(const run $ store_dir_arg)

(* verify / scrub / repair share one report rendering; verify is the CI
   gate (exit 4 on any damage), repair exits 4 only when something was
   beyond restoring (no valid copy in any tree). *)
let print_check dir what (c : Store.check) =
  let table =
    Table.create ~title:(Printf.sprintf "Store %s %s" what dir)
      [ "metric"; "value" ]
  in
  Table.add_row table [ "entries"; string_of_int c.Store.c_entries ];
  Table.add_row table [ "copies ok"; string_of_int c.Store.c_copies_ok ];
  Table.add_row table [ "copies bad"; string_of_int c.Store.c_copies_bad ];
  Table.add_row table [ "quarantined"; string_of_int c.Store.c_quarantined ];
  Table.add_row table [ "repaired"; string_of_int c.Store.c_repaired ];
  Table.add_row table [ "lost"; string_of_int c.Store.c_lost ];
  Table.print table

let store_verify_cmd =
  let run dir =
    let s = Store.open_dir dir in
    let c = Store.verify s in
    print_check dir "verify" c;
    if not (Store.check_clean c) then exit 4
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Read-only integrity survey: every copy of every entry is \
          byte-compared against the checksummed manifest payload (v3 \
          profiles additionally get their sections walked). Exits 4 if \
          any copy is missing, corrupt, or beyond recovery.")
    Term.(const run $ store_dir_arg)

let store_scrub_cmd =
  let run dir =
    let s = Store.open_dir dir in
    print_check dir "scrub" (Store.scrub s)
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Like $(b,verify), but every corrupt payload copy is moved aside \
          to $(i,*.corrupt) — quarantined, never deleted — so poisoned \
          bytes are not re-read. Follow with $(b,repair) to restore the \
          quarantined copies from intact ones.")
    Term.(const run $ store_dir_arg)

let store_repair_cmd =
  let run dir =
    let s = Store.open_dir dir in
    let c = Store.repair s in
    print_check dir "repair" c;
    if c.Store.c_lost > 0 then exit 4
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Restore every damaged payload copy byte-identical from the \
          healthiest surviving copy (primary or replica tree). Exits 4 \
          if an entry has no valid copy left anywhere.")
    Term.(const run $ store_dir_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and manage a profile store directory (the $(b,--store) \
          cache): ls, get, merge, gc, stats, verify, scrub, repair.")
    [ store_ls_cmd; store_get_cmd; store_merge_cmd; store_gc_cmd;
      store_stats_cmd; store_verify_cmd; store_scrub_cmd; store_repair_cmd ]

let () =
  let info =
    Cmd.info "vprof" ~version:"1.0.0"
      ~doc:"Value profiling for instructions and memory locations"
  in
  let group =
    Cmd.group info
      [ list_cmd; run_cmd; disasm_cmd; emit_cmd; profile_cmd; memory_cmd;
        procs_cmd; registers_cmd; contexts_cmd; phases_cmd; trivial_cmd;
        speculate_cmd; sample_cmd; fused_cmd; specialize_cmd; memoize_cmd;
        diff_cmd; experiment_cmd; experiments_cmd; store_cmd ]
  in
  (* Exit-code contract (the README table mirrors this): 0 success; 1
     runtime failure (a machine trap, an injected fault, a failed
     experiment); 2 usage error (bad flags, unknown workload or
     experiment — cmdliner's cli_error remapped); 3 resource budget
     exceeded (--deadline / --max-heap without --degrade); 4 store
     integrity failure (store verify found damage, or store repair could
     not restore an entry); 125 internal error. A machine trap (say, an
     exhausted --fuel budget)
     is a user-level outcome, not an internal error — report it cleanly;
     the driver re-raises worker exceptions on this domain, so this also
     covers -j runs. Budget trips propagate through with_obs, so the
     trace/metrics sinks are complete when we land here. *)
  (try Fault.load_env () with Invalid_argument msg ->
    Printf.eprintf "vprof: %s\n" msg;
    exit 2);
  exit
    (match Cmd.eval ~catch:false group with
     | code when code = Cmd.Exit.cli_error -> 2
     | code -> code
     | exception Machine.Trap t ->
       Printf.eprintf "vprof: machine trap: %s\n" (Machine.string_of_trap t);
       1
     | exception Fault.Injected site ->
       Printf.eprintf "vprof: injected fault at site %S\n" site;
       1
     | exception Budget.Deadline_exceeded s ->
       Printf.eprintf "vprof: deadline exceeded (budget %gs)\n" s;
       3
     | exception Budget.Mem_pressure w ->
       Printf.eprintf
         "vprof: memory watermark exceeded (%d heap words); rerun with \
          --degrade to shed precision instead\n"
         w;
       3
     | exception Budget.Disk_over_budget b ->
       Printf.eprintf "vprof: checkpoint disk budget exceeded (%d bytes)\n" b;
       3
     | exception e ->
       Printf.eprintf "vprof: internal error: %s\n" (Printexc.to_string e);
       125)
