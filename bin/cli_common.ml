(* Cmdliner terms shared by every vprof subcommand: the workload/input
   converters and the selection / top / fuel / jobs options. Keeping them
   here means one spelling, one doc string and one default per flag across
   the whole CLI. *)

open Cmdliner

let workload_conv =
  let parse s =
    match Workloads.find s with
    | w -> Ok w
    | exception Not_found ->
      if Sys.file_exists s then
        (* assembly source files act as pseudo-workloads: same program on
           both inputs, no declared arities *)
        match Parser.parse_file s with
        | prog ->
          Ok
            { Workload.wname = Filename.basename s;
              wmimics = "(file)";
              wdescr = s;
              wbuild = (fun _ -> prog);
              wshard = None;
              warities = [] }
        | exception Parser.Parse_error (line, msg) ->
          Error (`Msg (Printf.sprintf "%s:%d: %s" s line msg))
      else
        Error
          (`Msg
             (Printf.sprintf "unknown workload %S and no such file (try: %s)" s
                (String.concat ", " Workloads.names)))
  in
  let print ppf (w : Workload.t) = Format.pp_print_string ppf w.wname in
  Arg.conv (parse, print)

let input_conv =
  let parse s =
    match Workload.input_of_string s with
    | i -> Ok i
    | exception Invalid_argument _ -> Error (`Msg "input must be test or train")
  in
  let print ppf i = Format.pp_print_string ppf (Workload.string_of_input i) in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          "Workload to operate on: a built-in name (see $(b,list)) or a \
           path to a .vasm assembly source file.")

let input_arg =
  Arg.(
    value
    & opt input_conv Workload.Test
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Data set: test or train.")

let selection_arg =
  let sel = Arg.enum [ ("all", `All); ("loads", `Loads); ("alu", `Alu) ] in
  Arg.(
    value & opt sel `All
    & info [ "s"; "select" ] ~docv:"CLASS"
        ~doc:"Instruction class to profile: all, loads, or alu.")

let top_arg =
  Arg.(
    value & opt int 20
    & info [ "t"; "top" ] ~docv:"N" ~doc:"Show the N most-executed points.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Abort (with a trap) any run that executes more than N dynamic \
           instructions. Default: the machine's built-in budget.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the profiling driver. Commands that need \
           several runs (experiments, diff, sample, contexts) execute \
           them in parallel; output is byte-identical to $(b,-j 1). 0 \
           means the machine's recommended domain count.")

(* Map the CLI value onto the driver's convention (0 = recommended). *)
let effective_jobs j = if j <= 0 then Driver.default_jobs () else j

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Split one workload execution into K shards profiled in \
           parallel (per-input-chunk programs when the workload supports \
           them, icount-window slices of the full program otherwise) and \
           merge the K profiles in shard order. $(b,--shards 1) is \
           byte-identical to unsharded profiling, and merged output is \
           identical however the shards were scheduled. 0 means the \
           machine's recommended domain count.")

let effective_shards k = if k <= 0 then Driver.default_jobs () else k

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Profile store directory for cross-invocation reuse: results \
           whose fingerprint (workload, input, fuel, profiler, shards, \
           config) is already committed are served without executing \
           anything, and fresh results are committed for the next run. \
           Inspect with $(b,vprof store).")

let replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Keep N mirror trees ($(i,DIR)/replica1..N) alongside the \
           primary store: every commit writes all copies, a corrupt \
           primary payload is served (and healed) from the first intact \
           mirror, and $(b,vprof store repair) restores damaged copies \
           byte-identical. Growing N mirrors existing entries \
           immediately; an existing store's count is never shrunk.")

(* The flag's 0 default means "whatever the store already has" — only a
   positive count is forwarded, so opening never implicitly shrinks. *)
let replicas_opt n = if n > 0 then Some n else None

(* Opening for a profiling run bumps the generation once, so [store gc
   --keep N] has invocation-granular history to collect against. *)
let open_store ?(replicas = 0) dir =
  let s = Store.open_dir ?replicas:(replicas_opt replicas) dir in
  ignore (Store.new_generation s);
  s

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Also print the run's cost counters: events seen and profiled, \
           TNV clears and evictions, and attach-to-collect wall clock.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of the command (machine runs, driver \
           units, supervisor jobs, ...) and write it to FILE as Chrome \
           trace_event JSON, loadable in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry (counters, gauges, histograms \
           accumulated during the command) to FILE as JSON on exit.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the command. The machine polls the \
           budget on a periodic boundary and a run past its deadline \
           terminates cooperatively: telemetry sinks are still written \
           and vprof exits with code 3 (supervised suites record the \
           job as failed instead).")

let max_heap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap" ] ~docv:"MEGABYTES"
        ~doc:
          "Heap watermark in megabytes (compared against the OCaml \
           major heap). Without $(b,--degrade), breaching it aborts the \
           run (exit 3); with it, each breach sheds profiling precision \
           instead — see $(b,--degrade).")

let degrade_arg =
  Arg.(
    value & flag
    & info [ "degrade" ]
        ~doc:
          "Shed precision instead of dying on memory pressure: each \
           watermark breach widens sampler gaps, halves TNV candidate \
           capacity at the next clear, and drops the most expensive \
           member of fused runs. Steps are recorded as degrade.* \
           counters and trace instants, and results report their \
           degradation level.")

(* --deadline/--max-heap/--degrade as one term, so each subcommand adds a
   single [$ governance_arg] and wraps its body in [with_governance]. *)
type governance = {
  gv_deadline : float option;
  gv_max_heap_mb : int option;
  gv_degrade : bool;
}

let governance_arg =
  Term.(
    const (fun gv_deadline gv_max_heap_mb gv_degrade ->
        { gv_deadline; gv_max_heap_mb; gv_degrade })
    $ deadline_arg $ max_heap_arg $ degrade_arg)

let words_of_mb mb = mb * (1024 * 1024 / (Sys.word_size / 8))

let with_governance gv f =
  match gv with
  | { gv_deadline = None; gv_max_heap_mb = None; gv_degrade = false } -> f ()
  | _ ->
    Budget.govern
      { Budget.no_limits with
        deadline = gv.gv_deadline;
        max_heap_words = Option.map words_of_mb gv.gv_max_heap_mb;
        degrade = gv.gv_degrade }
      f

(* Wrap a subcommand body in the observability sinks: tracing is enabled
   for exactly the wrapped call when --trace was given, and both files are
   written on the way out — exceptions included, so a failing run still
   leaves its telemetry behind. The writes are silent: subcommand stdout
   stays byte-identical with and without the flags. *)
let with_obs ~trace ~metrics f =
  (match trace with
   | Some _ ->
     Obs.Trace.reset ();
     Obs.Trace.set_enabled true
   | None -> ());
  let finish () =
    (match trace with
     | Some path ->
       Obs.Trace.set_enabled false;
       Obs.Trace.write_file path
     | None -> ());
    match metrics with
    | Some path -> Obs.Metrics.write_file path
    | None -> ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* One spelling of the --stats output across subcommands. *)
let print_stats enabled name (c : Counters.t) =
  if enabled then Printf.printf "%s stats: %s\n" name (Counters.to_string c)
