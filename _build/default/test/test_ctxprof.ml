open Isa

(* f is called from two sites, each with its own constant argument: the
   aggregate profile sees a 50/50 split, the per-site profile sees two
   invariant parameters. *)
let program n =
  let b = Asm.create () in
  Asm.proc b "f" (fun b ->
      Asm.add b ~dst:v0 a0 a0;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b s0 0L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t0 s0 (Int64.of_int n);
      Asm.br b Eq t0 "done";
      Asm.ldi b a0 111L;
      Asm.call b "f"; (* site A *)
      Asm.ldi b a0 222L;
      Asm.call b "f"; (* site B *)
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let config = { Ctxprof.default_config with arities = [ ("f", 1) ] }

let test_sites_split () =
  let t = Ctxprof.run ~config (program 40) in
  let f_contexts =
    Array.to_list t.Ctxprof.contexts
    |> List.filter (fun (c : Ctxprof.context_report) -> c.c_proc = "f")
  in
  Alcotest.(check int) "two sites" 2 (List.length f_contexts);
  List.iter
    (fun (c : Ctxprof.context_report) ->
      Alcotest.(check int) "forty calls each" 40 c.c_calls;
      Alcotest.(check (float 1e-9)) "invariant per site" 1.0
        c.c_params.(0).Metrics.inv_top)
    f_contexts

let test_sites_are_call_pcs () =
  let prog = program 5 in
  let t = Ctxprof.run ~config prog in
  Array.iter
    (fun (c : Ctxprof.context_report) ->
      match prog.Asm.code.(c.c_site) with
      | Isa.Jsr _ -> ()
      | other ->
        Alcotest.failf "site %d is %s, not a call" c.c_site
          (Isa.to_string other))
    t.Ctxprof.contexts

let test_context_gain () =
  let prog = program 40 in
  let t = Ctxprof.run ~config prog in
  let flat =
    Procprof.run
      ~config:{ Procprof.default_config with arities = [ ("f", 1) ] }
      prog
  in
  (match Ctxprof.context_gain t flat with
   | [ ("f", flat_inv, ctx_inv) ] ->
     Alcotest.(check (float 1e-9)) "aggregate 50%" 0.5 flat_inv;
     Alcotest.(check (float 1e-9)) "per-site 100%" 1.0 ctx_inv
   | other -> Alcotest.failf "unexpected gain shape (%d entries)" (List.length other))

let test_weighted_param_invariance () =
  let t = Ctxprof.run ~config (program 40) in
  Alcotest.(check (float 1e-9)) "all contexts invariant" 1.0
    (Ctxprof.weighted_param_invariance t)

let test_max_contexts_cap () =
  let cfg = { config with Ctxprof.max_contexts = 1 } in
  let t = Ctxprof.run ~config:cfg (program 40) in
  Alcotest.(check int) "one context tracked" 1 (Array.length t.Ctxprof.contexts);
  Alcotest.(check int) "other site's calls counted as untracked" 40
    t.Ctxprof.untracked_calls

let test_no_arity_no_contexts () =
  let t = Ctxprof.run (program 10) in
  Alcotest.(check int) "nothing tracked" 0 (Array.length t.Ctxprof.contexts)

let suite =
  [ Alcotest.test_case "sites split" `Quick test_sites_split;
    Alcotest.test_case "sites are call pcs" `Quick test_sites_are_call_pcs;
    Alcotest.test_case "context gain" `Quick test_context_gain;
    Alcotest.test_case "weighted invariance" `Quick
      test_weighted_param_invariance;
    Alcotest.test_case "max contexts cap" `Quick test_max_contexts_cap;
    Alcotest.test_case "no arity, no contexts" `Quick test_no_arity_no_contexts ]
