open Isa

(* t0 takes a constant in a loop; t1 takes the loop counter. *)
let program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t2 0L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t3 t2 (Int64.of_int n);
      Asm.br b Eq t3 "done";
      Asm.ldi b t0 42L;
      Asm.mov b ~dst:t1 t2;
      Asm.addi b ~dst:t2 t2 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let report t r =
  match
    Array.find_opt (fun (g : Regprof.reg_report) -> g.g_reg = r) t.Regprof.regs
  with
  | Some g -> g
  | None -> Alcotest.failf "register %s not profiled" (Isa.string_of_reg r)

let test_constant_register () =
  let t = Regprof.run (program 50) in
  let g = report t t0 in
  Alcotest.(check int) "writes" 50 g.g_writes;
  Alcotest.(check (float 1e-9)) "invariant" 1.0 g.g_metrics.Metrics.inv_top

let test_counter_register () =
  let t = Regprof.run (program 50) in
  let g = report t t1 in
  Alcotest.(check bool) "variant" true (g.g_metrics.Metrics.inv_top < 0.1);
  (* counter advances by 1: the stride profile catches it *)
  Alcotest.(check (option int64)) "stride 1" (Some 1L)
    g.g_metrics.Metrics.top_stride;
  Alcotest.(check bool) "stride dominant" true
    (g.g_metrics.Metrics.stride_top > 0.9)

let test_only_written_registers_reported () =
  let t = Regprof.run (program 5) in
  Alcotest.(check bool) "a0 never written -> absent" true
    (Array.for_all (fun (g : Regprof.reg_report) -> g.g_reg <> a0) t.Regprof.regs)

let test_totals () =
  let t = Regprof.run (program 50) in
  (* per iteration: cmplti(t3), ldi(t0), mov(t1), addi(t2); plus initial
     ldi(t2) and the final cmplti *)
  Alcotest.(check int) "total writes" (1 + (50 * 4) + 1) t.Regprof.total_writes

let test_mean_metric_bounds () =
  let t = Regprof.run (program 50) in
  let m = Regprof.mean_metric t (fun m -> m.Metrics.inv_top) in
  Alcotest.(check bool) "in [0,1]" true (m >= 0. && m <= 1.)

let suite =
  [ Alcotest.test_case "constant register" `Quick test_constant_register;
    Alcotest.test_case "counter register" `Quick test_counter_register;
    Alcotest.test_case "unwritten registers absent" `Quick
      test_only_written_registers_reported;
    Alcotest.test_case "write totals" `Quick test_totals;
    Alcotest.test_case "mean metric bounds" `Quick test_mean_metric_bounds ]
