let test_default_zero () =
  let m = Memory.create () in
  Alcotest.(check int64) "unwritten reads zero" 0L (Memory.read m 12345L)

let test_roundtrip () =
  let m = Memory.create () in
  Memory.write m 100L 42L;
  Alcotest.(check int64) "written" 42L (Memory.read m 100L);
  Memory.write m 100L (-7L);
  Alcotest.(check int64) "overwritten" (-7L) (Memory.read m 100L);
  Alcotest.(check int64) "neighbour untouched" 0L (Memory.read m 101L)

let test_page_boundary () =
  let m = Memory.create () in
  let pw = Int64.of_int Memory.page_words in
  Memory.write m (Int64.sub pw 1L) 1L;
  Memory.write m pw 2L;
  Alcotest.(check int64) "end of page" 1L (Memory.read m (Int64.sub pw 1L));
  Alcotest.(check int64) "start of next" 2L (Memory.read m pw);
  Alcotest.(check int) "two pages" 2 (Memory.pages_allocated m)

let test_reads_do_not_allocate () =
  let m = Memory.create () in
  ignore (Memory.read m 0L);
  ignore (Memory.read m 1_000_000L);
  Alcotest.(check int) "no pages" 0 (Memory.pages_allocated m)

let test_load_segment () =
  let m = Memory.create () in
  Memory.load_segment m 50L [| 1L; 2L; 3L |];
  Alcotest.(check int64) "first" 1L (Memory.read m 50L);
  Alcotest.(check int64) "last" 3L (Memory.read m 52L)

let test_negative_address () =
  let m = Memory.create () in
  Alcotest.check_raises "read" (Invalid_argument "Memory.read: negative address")
    (fun () -> ignore (Memory.read m (-1L)));
  Alcotest.check_raises "write"
    (Invalid_argument "Memory.write: negative address") (fun () ->
      Memory.write m (-1L) 0L)

let test_iter_touched () =
  let m = Memory.create () in
  Memory.write m 5L 50L;
  Memory.write m 6L 60L;
  let seen = Hashtbl.create 8 in
  Memory.iter_touched m (fun addr v ->
      if not (Int64.equal v 0L) then Hashtbl.replace seen addr v);
  Alcotest.(check int) "two non-zero words" 2 (Hashtbl.length seen);
  Alcotest.(check (option int64)) "addr 5" (Some 50L) (Hashtbl.find_opt seen 5L)

let test_clear () =
  let m = Memory.create () in
  Memory.write m 5L 50L;
  Memory.clear m;
  Alcotest.(check int64) "cleared" 0L (Memory.read m 5L);
  Alcotest.(check int) "no pages" 0 (Memory.pages_allocated m)

let qcheck_model =
  (* Random write/read sequences agree with a Hashtbl model. *)
  let addr_gen = QCheck.Gen.(map Int64.of_int (int_range 0 100_000)) in
  let ops_gen =
    QCheck.Gen.(
      list_size (int_range 1 200)
        (oneof
           [ map2 (fun a v -> `Write (a, Int64.of_int v)) addr_gen (int_range (-50) 50);
             map (fun a -> `Read a) addr_gen ]))
  in
  QCheck.Test.make ~name:"memory agrees with map model" ~count:200
    (QCheck.make ops_gen)
    (fun ops ->
      let m = Memory.create () in
      let model = Hashtbl.create 64 in
      List.for_all
        (function
          | `Write (a, v) ->
            Memory.write m a v;
            Hashtbl.replace model a v;
            true
          | `Read a ->
            let expect = Option.value ~default:0L (Hashtbl.find_opt model a) in
            Int64.equal (Memory.read m a) expect)
        ops)

let suite =
  [ Alcotest.test_case "default zero" `Quick test_default_zero;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "page boundary" `Quick test_page_boundary;
    Alcotest.test_case "reads allocate nothing" `Quick test_reads_do_not_allocate;
    Alcotest.test_case "load_segment" `Quick test_load_segment;
    Alcotest.test_case "negative address" `Quick test_negative_address;
    Alcotest.test_case "iter_touched" `Quick test_iter_touched;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest qcheck_model ]
