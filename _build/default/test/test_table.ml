let test_render_contains_cells () =
  let t = Table.create ~title:"T" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  List.iter
    (fun cell ->
      Alcotest.(check bool) (cell ^ " present") true
        (Astring_contains.contains s cell))
    [ "T"; "name"; "value"; "alpha"; "beta"; "22" ]

let test_row_length_check () =
  let t = Table.create ~title:"" [ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only one" ])

let test_aligns_check () =
  Alcotest.check_raises "aligns mismatch"
    (Invalid_argument "Table.create: aligns/headers length mismatch")
    (fun () ->
      ignore (Table.create ~aligns:[ Table.Left ] ~title:"" [ "a"; "b" ]))

let test_csv () =
  let t = Table.create ~title:"ignored" [ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  Table.add_row t [ "with \"quote\""; "2" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "header" true (Astring_contains.contains csv "a,b");
  Alcotest.(check bool) "comma escaped" true
    (Astring_contains.contains csv "\"x,y\"");
  Alcotest.(check bool) "quote escaped" true
    (Astring_contains.contains csv "\"with \"\"quote\"\"\"");
  Alcotest.(check bool) "title absent" false
    (Astring_contains.contains csv "ignored")

let test_pct () =
  Alcotest.(check string) "pct" "50.0%" (Table.pct 0.5);
  Alcotest.(check string) "pct full" "100.0%" (Table.pct 1.0)

let test_fixed () =
  Alcotest.(check string) "fixed" "3.14" (Table.fixed ~digits:2 3.14159)

let test_count () =
  Alcotest.(check string) "small" "999" (Table.count 999);
  Alcotest.(check string) "thousands" "1,234" (Table.count 1234);
  Alcotest.(check string) "millions" "12,345,678" (Table.count 12345678);
  Alcotest.(check string) "negative" "-1,000" (Table.count (-1000));
  Alcotest.(check string) "zero" "0" (Table.count 0)

let test_separator_render () =
  let t = Table.create ~title:"" [ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_sep t;
  Table.add_row t [ "2" ];
  (* renders without error and keeps both rows *)
  let s = Table.render t in
  Alcotest.(check bool) "both rows" true
    (Astring_contains.contains s "1" && Astring_contains.contains s "2")

let suite =
  [ Alcotest.test_case "render cells" `Quick test_render_contains_cells;
    Alcotest.test_case "row length" `Quick test_row_length_check;
    Alcotest.test_case "aligns length" `Quick test_aligns_check;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "pct" `Quick test_pct;
    Alcotest.test_case "fixed" `Quick test_fixed;
    Alcotest.test_case "count separators" `Quick test_count;
    Alcotest.test_case "separators" `Quick test_separator_render ]
