open Isa

let small_program () =
  let b = Asm.create () in
  let base = Asm.data b [| 10L; 20L; 30L |] in
  Asm.proc b "helper" (fun b ->
      Asm.addi b ~dst:v0 a0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 base;
      Asm.ld b ~dst:a0 ~base:a0 ~off:1;
      Asm.call b "helper";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_basic_assembly () =
  let prog = small_program () in
  Alcotest.(check int) "code length" 6 (Array.length prog.Asm.code);
  Alcotest.(check int) "two procs" 2 (Array.length prog.Asm.procs);
  Alcotest.(check int) "entry at main" 2 prog.Asm.entry;
  (match prog.Asm.code.(4) with
   | Isa.Jsr 0 -> ()
   | other -> Alcotest.failf "expected jsr @0, got %s" (Isa.to_string other))

let test_data_layout () =
  let b = Asm.create () in
  let first = Asm.data b [| 1L; 2L |] in
  let second = Asm.reserve b 5 in
  let third = Asm.data b [| 9L |] in
  Alcotest.(check int64) "first at base" 0x1_0000L first;
  Alcotest.(check int64) "second follows" 0x1_0002L second;
  Alcotest.(check int64) "third follows reserve" 0x1_0007L third

let test_duplicate_label () =
  let b = Asm.create () in
  Asm.proc b "p" (fun b -> Asm.ret b);
  Alcotest.check_raises "dup" (Failure "Asm: duplicate label \"p\"") (fun () ->
      Asm.proc b "p" (fun b -> Asm.ret b))

let test_undefined_label () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.jmp b "nowhere";
      Asm.halt b);
  Alcotest.check_raises "undef" (Failure "Asm: undefined label \"nowhere\"")
    (fun () -> ignore (Asm.assemble b ~entry:"main"))

let test_empty_proc () =
  let b = Asm.create () in
  Alcotest.check_raises "empty" (Failure "Asm: empty procedure \"e\"")
    (fun () -> Asm.proc b "e" (fun _ -> ()))

let test_emit_outside_proc () =
  let b = Asm.create () in
  Alcotest.check_raises "outside"
    (Failure "Asm: instruction emitted outside a procedure") (fun () ->
      Asm.nop b)

let test_entry_not_proc () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.nop b;
      Asm.label b "inner";
      Asm.halt b);
  Alcotest.check_raises "entry is a label, not a proc"
    (Failure "Asm: entry \"inner\" is not a procedure") (fun () ->
      ignore (Asm.assemble b ~entry:"inner"))

let test_proc_of_pc () =
  let prog = small_program () in
  Alcotest.(check string) "helper" "helper" (Asm.proc_of_pc prog 0).Asm.pname;
  Alcotest.(check string) "main" "main" (Asm.proc_of_pc prog 5).Asm.pname;
  Alcotest.check_raises "outside" Not_found (fun () ->
      ignore (Asm.proc_of_pc prog 99))

let test_find_proc () =
  let prog = small_program () in
  Alcotest.(check int) "helper entry" 0 (Asm.find_proc prog "helper").Asm.pentry;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Asm.find_proc prog "nope"))

let test_disassemble () =
  let s = Asm.disassemble (small_program ()) in
  Alcotest.(check bool) "has helper" true (Astring_contains.contains s "helper:");
  Alcotest.(check bool) "has main" true (Astring_contains.contains s "main:");
  Alcotest.(check bool) "has jsr" true (Astring_contains.contains s "jsr")

let test_code_addr_of () =
  let b = Asm.create () in
  Asm.proc b "target" (fun b -> Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.code_addr_of b ~dst:t0 "target";
      Asm.call_ind b t0;
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (match prog.Asm.code.(1) with
   | Isa.Ldi (r, v) ->
     Alcotest.(check int) "dst reg" t0 r;
     Alcotest.(check int64) "resolves to target entry" 0L v
   | other -> Alcotest.failf "expected ldi, got %s" (Isa.to_string other))

let test_label_branches () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 3L;
      Asm.label b "loop";
      Asm.subi b ~dst:t0 t0 1L;
      Asm.br b Gt t0 "loop";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (match prog.Asm.code.(2) with
   | Isa.Br (Isa.Gt, r, 1) -> Alcotest.(check int) "reg" t0 r
   | other -> Alcotest.failf "expected bgt @1, got %s" (Isa.to_string other))

let qcheck_straightline_roundtrip =
  (* Random straight-line ALU programs assemble to exactly the emitted
     instructions, in order. *)
  let gen_instr =
    QCheck.Gen.(
      oneof
        [ map3
            (fun op r imm -> `Bin (op, r, imm))
            (oneofl [ Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor ])
            (int_range 1 8)
            (map Int64.of_int (int_range 0 1000));
          map2 (fun r imm -> `Ldi (r, Int64.of_int imm)) (int_range 1 8)
            (int_range 0 1000) ])
  in
  QCheck.Test.make ~name:"assembler preserves straight-line programs"
    ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_instr))
    (fun instrs ->
      let b = Asm.create () in
      Asm.proc b "main" (fun b ->
          List.iter
            (function
              | `Bin (op, r, imm) -> Asm.bin b op ~dst:r r (Isa.Imm imm)
              | `Ldi (r, imm) -> Asm.ldi b r imm)
            instrs;
          Asm.halt b);
      let prog = Asm.assemble b ~entry:"main" in
      Array.length prog.Asm.code = List.length instrs + 1
      && List.for_all2
           (fun emitted assembled ->
             match (emitted, assembled) with
             | `Bin (op, r, imm), Isa.Op (op', ra, Isa.Imm imm', rc) ->
               op = op' && ra = r && rc = r && Int64.equal imm imm'
             | `Ldi (r, imm), Isa.Ldi (r', imm') ->
               r = r' && Int64.equal imm imm'
             | _ -> false)
           instrs
           (Array.to_list (Array.sub prog.Asm.code 0 (List.length instrs))))

let suite =
  [ Alcotest.test_case "basic assembly" `Quick test_basic_assembly;
    Alcotest.test_case "data layout" `Quick test_data_layout;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    Alcotest.test_case "empty proc" `Quick test_empty_proc;
    Alcotest.test_case "emit outside proc" `Quick test_emit_outside_proc;
    Alcotest.test_case "entry must be a proc" `Quick test_entry_not_proc;
    Alcotest.test_case "proc_of_pc" `Quick test_proc_of_pc;
    Alcotest.test_case "find_proc" `Quick test_find_proc;
    Alcotest.test_case "disassemble" `Quick test_disassemble;
    Alcotest.test_case "code_addr_of" `Quick test_code_addr_of;
    Alcotest.test_case "label branches" `Quick test_label_branches;
    QCheck_alcotest.to_alcotest qcheck_straightline_roundtrip ]
