(* Workload-suite integration tests: every workload must build, run to a
   clean halt on both inputs, be deterministic, and expose correct
   metadata. *)

let fuel = 20_000_000

let each f =
  List.iter
    (fun (w : Workload.t) ->
      List.iter (fun input -> f w input) [ Workload.Test; Workload.Train ])
    Workloads.all

let test_registry () =
  Alcotest.(check int) "twelve workloads" 12 (List.length Workloads.all);
  Alcotest.(check string) "find" "compress" (Workloads.find "compress").wname;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Workloads.find "doom"));
  Alcotest.(check int) "names" 12 (List.length Workloads.names)

let test_input_parsing () =
  Alcotest.(check string) "test" "test"
    (Workload.string_of_input (Workload.input_of_string "test"));
  Alcotest.(check string) "train" "train"
    (Workload.string_of_input (Workload.input_of_string "train"));
  Alcotest.check_raises "bad"
    (Invalid_argument "Workload.input_of_string: \"prod\"") (fun () ->
      ignore (Workload.input_of_string "prod"))

let test_all_run_to_halt () =
  each (fun w input ->
      let m = Machine.execute ~fuel (w.wbuild input) in
      let name =
        Printf.sprintf "%s/%s" w.wname (Workload.string_of_input input)
      in
      Alcotest.(check bool) (name ^ " halted") true (Machine.halted m);
      Alcotest.(check bool) (name ^ " did work") true
        (Machine.icount m > 10_000))

let test_deterministic () =
  each (fun w input ->
      let m1 = Machine.execute ~fuel (w.wbuild input) in
      let m2 = Machine.execute ~fuel (w.wbuild input) in
      let name = w.wname ^ "/" ^ Workload.string_of_input input in
      Alcotest.(check int) (name ^ " icount") (Machine.icount m1)
        (Machine.icount m2);
      Alcotest.(check int64) (name ^ " v0") (Machine.reg m1 Isa.v0)
        (Machine.reg m2 Isa.v0))

let test_train_larger_than_test () =
  List.iter
    (fun (w : Workload.t) ->
      let t = Machine.icount (Machine.execute ~fuel (w.wbuild Workload.Test)) in
      let tr = Machine.icount (Machine.execute ~fuel (w.wbuild Workload.Train)) in
      Alcotest.(check bool) (w.wname ^ ": train larger") true (tr > t))
    Workloads.all

let test_same_code_shape_across_inputs () =
  (* the cross-input experiment joins profiles on pc, which requires the
     code (not the data) to be identical in shape *)
  List.iter
    (fun (w : Workload.t) ->
      let a = w.wbuild Workload.Test and b = w.wbuild Workload.Train in
      Alcotest.(check int) (w.wname ^ ": same code size")
        (Array.length a.Asm.code) (Array.length b.Asm.code);
      Alcotest.(check int) (w.wname ^ ": same procs")
        (Array.length a.Asm.procs) (Array.length b.Asm.procs);
      Array.iteri
        (fun i (p : Asm.proc) ->
          Alcotest.(check string)
            (Printf.sprintf "%s proc %d" w.wname i)
            p.Asm.pname b.Asm.procs.(i).Asm.pname)
        a.Asm.procs)
    Workloads.all

let test_arities_name_real_procs () =
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      List.iter
        (fun (name, arity) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s exists" w.wname name)
            true
            (match Asm.find_proc prog name with
             | _ -> true
             | exception Not_found -> false);
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s arity sane" w.wname name)
            true
            (arity >= 0 && arity <= 6))
        w.warities)
    Workloads.all

let test_workloads_use_no_reserved_register () =
  (* r15 is the specializer's guard scratch *)
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      Array.iter
        (fun instr ->
          let uses_r15 =
            match instr with
            | Isa.Op (_, ra, Isa.Reg rb, rc) -> ra = 15 || rb = 15 || rc = 15
            | Isa.Op (_, ra, Isa.Imm _, rc) -> ra = 15 || rc = 15
            | Isa.Ldi (rd, _) -> rd = 15
            | Isa.Ld (rd, rb, _) -> rd = 15 || rb = 15
            | Isa.St (ra, rb, _) -> ra = 15 || rb = 15
            | Isa.Br (_, r, _) | Isa.Jsr_ind r -> r = 15
            | Isa.Jmp _ | Isa.Jsr _ | Isa.Ret | Isa.Halt | Isa.Nop -> false
          in
          Alcotest.(check bool) (w.wname ^ ": r15 unused") false uses_r15)
        prog.Asm.code)
    Workloads.all

let test_every_workload_profiles () =
  List.iter
    (fun (w : Workload.t) ->
      let p = Profile.run ~selection:`Loads (w.wbuild Workload.Test) in
      Alcotest.(check bool) (w.wname ^ ": loads profiled") true
        (p.Profile.profiled_events > 0))
    Workloads.all

let test_mimics_mentions_spec () =
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool) (w.wname ^ ": names its SPEC95 model") true
        (Astring_contains.contains w.wmimics "SPEC95"))
    Workloads.all

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "input parsing" `Quick test_input_parsing;
    Alcotest.test_case "all run to halt" `Slow test_all_run_to_halt;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "train larger than test" `Slow test_train_larger_than_test;
    Alcotest.test_case "same code shape across inputs" `Quick
      test_same_code_shape_across_inputs;
    Alcotest.test_case "arities name real procs" `Quick
      test_arities_name_real_procs;
    Alcotest.test_case "reserved register unused" `Quick
      test_workloads_use_no_reserved_register;
    Alcotest.test_case "every workload profiles" `Slow
      test_every_workload_profiles;
    Alcotest.test_case "mimics metadata" `Quick test_mimics_mentions_spec ]
