let feq = Alcotest.float 1e-9

let test_basic_counting () =
  let t = Tnv.create ~capacity:4 () in
  List.iter (Tnv.add t) [ 1L; 1L; 2L; 1L; 3L ];
  Alcotest.(check int) "total" 5 (Tnv.total t);
  Alcotest.(check int) "covered" 5 (Tnv.covered t);
  (match Tnv.top t with
   | Some (v, c) ->
     Alcotest.(check int64) "top value" 1L v;
     Alcotest.(check int) "top count" 3 c
   | None -> Alcotest.fail "expected a top entry");
  Alcotest.check feq "inv_top" 0.6 (Tnv.inv_top t);
  Alcotest.check feq "inv_all" 1.0 (Tnv.inv_all t)

let test_empty () =
  let t = Tnv.create ~capacity:4 () in
  Alcotest.(check int) "total" 0 (Tnv.total t);
  Alcotest.(check (option (pair int64 int))) "no top" None (Tnv.top t);
  Alcotest.check feq "inv_top" 0. (Tnv.inv_top t);
  Alcotest.check feq "inv_all" 0. (Tnv.inv_all t)

let test_entries_sorted () =
  let t = Tnv.create ~capacity:8 () in
  List.iter (Tnv.add t) [ 5L; 6L; 6L; 7L; 7L; 7L ];
  let e = Tnv.entries t in
  Alcotest.(check int) "three entries" 3 (Array.length e);
  Alcotest.(check int64) "first" 7L (fst e.(0));
  Alcotest.(check int64) "second" 6L (fst e.(1));
  Alcotest.(check int64) "third" 5L (fst e.(2))

let test_lfu_clear_drops_overflow () =
  (* Capacity 2, no clearing within this window: the third distinct value
     is dropped but still counted in total. *)
  let t = Tnv.create ~capacity:2 ~clear_interval:1000 () in
  List.iter (Tnv.add t) [ 1L; 2L; 3L; 3L; 3L ];
  Alcotest.(check int) "total counts drops" 5 (Tnv.total t);
  Alcotest.(check int) "covered misses drops" 2 (Tnv.covered t);
  Alcotest.(check bool) "3 not in table" true
    (Array.for_all (fun (v, _) -> not (Int64.equal v 3L)) (Tnv.entries t))

let test_lfu_clear_admits_new_hot_value () =
  (* After the periodic clear, the replacement half opens up and the new
     hot value climbs in. *)
  let t = Tnv.create ~capacity:2 ~clear_interval:10 () in
  for _ = 1 to 6 do Tnv.add t 1L done;
  for _ = 1 to 4 do Tnv.add t 2L done;
  (* table now full; 10 adds -> clearing has happened at least once *)
  for _ = 1 to 30 do Tnv.add t 9L done;
  Alcotest.(check bool) "new value present" true
    (Array.exists (fun (v, _) -> Int64.equal v 9L) (Tnv.entries t));
  (match Tnv.top t with
   | Some (v, _) -> Alcotest.(check int64) "new value dominates" 9L v
   | None -> Alcotest.fail "expected top")

let test_lfu_replaces_minimum () =
  let t = Tnv.create ~policy:Tnv.Lfu ~capacity:2 () in
  List.iter (Tnv.add t) [ 1L; 1L; 2L; 3L ];
  (* 3 replaced 2 (the least counted) *)
  let values = Array.map fst (Tnv.entries t) in
  Alcotest.(check bool) "1 kept" true (Array.mem 1L values);
  Alcotest.(check bool) "3 inserted" true (Array.mem 3L values);
  Alcotest.(check bool) "2 evicted" false (Array.mem 2L values)

let test_lru_replaces_oldest () =
  let t = Tnv.create ~policy:Tnv.Lru ~capacity:2 () in
  List.iter (Tnv.add t) [ 1L; 2L; 1L; 3L ];
  (* 2 is least recently seen; 3 replaces it even though counts tie *)
  let values = Array.map fst (Tnv.entries t) in
  Alcotest.(check bool) "1 kept" true (Array.mem 1L values);
  Alcotest.(check bool) "3 inserted" true (Array.mem 3L values);
  Alcotest.(check bool) "2 evicted" false (Array.mem 2L values)

let test_reset () =
  let t = Tnv.create ~capacity:4 () in
  List.iter (Tnv.add t) [ 1L; 2L; 3L ];
  Tnv.reset t;
  Alcotest.(check int) "total" 0 (Tnv.total t);
  Alcotest.(check int) "entries" 0 (Array.length (Tnv.entries t))

let test_create_invalid () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Tnv.create: capacity must be positive") (fun () ->
      ignore (Tnv.create ~capacity:0 ()));
  Alcotest.check_raises "interval"
    (Invalid_argument "Tnv.create: clear_interval must be positive") (fun () ->
      ignore (Tnv.create ~clear_interval:0 ~capacity:4 ()))

let test_accessors () =
  let t = Tnv.create ~policy:Tnv.Lru ~clear_interval:123 ~capacity:7 () in
  Alcotest.(check int) "capacity" 7 (Tnv.capacity t);
  Alcotest.(check int) "interval" 123 (Tnv.clear_interval t);
  Alcotest.(check bool) "policy" true (Tnv.policy t = Tnv.Lru)

let value_stream_gen =
  (* skewed streams over a small alphabet, like real value profiles *)
  QCheck.Gen.(
    list_size (int_range 1 2000)
      (map (fun i -> Int64.of_int (i * i mod 13)) (int_range 0 100)))

let qcheck_conservation =
  QCheck.Test.make ~name:"covered <= total, inv_all <= 1, inv_top <= inv_all"
    ~count:200
    (QCheck.make value_stream_gen)
    (fun stream ->
      List.for_all
        (fun policy ->
          let t = Tnv.create ~policy ~capacity:4 ~clear_interval:50 () in
          List.iter (Tnv.add t) stream;
          Tnv.covered t <= Tnv.total t
          && Tnv.inv_all t <= 1.0 +. 1e-9
          && Tnv.inv_top t <= Tnv.inv_all t +. 1e-9)
        [ Tnv.Lfu_clear; Tnv.Lfu; Tnv.Lru ])

let qcheck_entries_sorted =
  QCheck.Test.make ~name:"entries are sorted descending" ~count:200
    (QCheck.make value_stream_gen)
    (fun stream ->
      let t = Tnv.create ~capacity:8 () in
      List.iter (Tnv.add t) stream;
      let e = Tnv.entries t in
      let ok = ref true in
      for i = 0 to Array.length e - 2 do
        if snd e.(i) < snd e.(i + 1) then ok := false
      done;
      !ok)

let qcheck_finds_dominant_value =
  (* When one value accounts for >= 80% of a long stream, every policy's
     TNV identifies it as the top value. *)
  QCheck.Test.make ~name:"dominant value is identified" ~count:100
    QCheck.(pair (int_range 1 60) int64)
    (fun (noise_values, seed) ->
      let rng = Rng.create seed in
      let dominant = 424242L in
      let stream =
        List.init 2000 (fun _ ->
            if Rng.int rng 10 < 8 then dominant
            else Int64.of_int (Rng.int rng noise_values))
      in
      List.for_all
        (fun policy ->
          let t = Tnv.create ~policy ~capacity:8 ~clear_interval:100 () in
          List.iter (Tnv.add t) stream;
          match Tnv.top t with
          | Some (v, _) -> Int64.equal v dominant
          | None -> false)
        [ Tnv.Lfu_clear; Tnv.Lfu; Tnv.Lru ])

let suite =
  [ Alcotest.test_case "basic counting" `Quick test_basic_counting;
    Alcotest.test_case "empty table" `Quick test_empty;
    Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
    Alcotest.test_case "lfu-clear drops overflow" `Quick test_lfu_clear_drops_overflow;
    Alcotest.test_case "lfu-clear admits new hot value" `Quick
      test_lfu_clear_admits_new_hot_value;
    Alcotest.test_case "lfu replaces minimum" `Quick test_lfu_replaces_minimum;
    Alcotest.test_case "lru replaces oldest" `Quick test_lru_replaces_oldest;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "invalid create" `Quick test_create_invalid;
    Alcotest.test_case "accessors" `Quick test_accessors;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_entries_sorted;
    QCheck_alcotest.to_alcotest qcheck_finds_dominant_value ]
