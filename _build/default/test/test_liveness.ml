open Isa

let test_dead_def_removed () =
  let body =
    [| Body.BLdi (t0, 5L); (* dead: never read *)
       Body.BLdi (v0, 1L);
       Body.BRet |]
  in
  let cleaned, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check bool) "replaced by nop" true (cleaned.(0) = Body.BNop);
  Alcotest.(check bool) "live def kept" true (cleaned.(1) <> Body.BNop)

let test_chain_of_dead_defs () =
  (* t1 depends on t0; once t1 is dead, t0 becomes dead too — requires
     the fixpoint iteration. *)
  let body =
    [| Body.BLdi (t0, 5L);
       Body.BOp (Isa.Add, t0, Isa.Imm 1L, t1);
       Body.BLdi (v0, 9L);
       Body.BRet |]
  in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "both removed" 2 removed

let test_live_through_branch () =
  (* t0 is read on one branch path only — still live, nothing removed. *)
  let body =
    [| Body.BLdi (t0, 5L);
       Body.BBr (Isa.Gt, a0, Body.Local 3);
       Body.BOp (Isa.Add, t0, Isa.Imm 0L, v0);
       Body.BRet |]
  in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "nothing removed" 0 removed

let test_store_never_removed () =
  let body =
    [| Body.BLdi (t0, 5L);
       Body.BSt (t0, sp, 0); (* side effect: keeps t0 alive too *)
       Body.BRet |]
  in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "nothing removed" 0 removed

let test_dead_load_removed () =
  let body =
    [| Body.BLd (t0, sp, 0); (* loads have no side effect here *)
       Body.BLdi (v0, 1L);
       Body.BRet |]
  in
  let cleaned, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "load removed" 1 removed;
  Alcotest.(check bool) "nop" true (cleaned.(0) = Body.BNop)

let test_value_for_call_kept () =
  (* a0 feeds the call: live. t0 written before the call and read after
     would violate the convention, so the analysis treats it as dead. *)
  let body =
    [| Body.BLdi (a0, 5L);
       Body.BLdi (t0, 6L); (* dead across the call *)
       Body.BJsr (Body.Global 0);
       Body.BRet |]
  in
  let cleaned, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "t0 removed, a0 kept" 1 removed;
  Alcotest.(check bool) "a0 load kept" true (cleaned.(0) <> Body.BNop);
  Alcotest.(check bool) "t0 load dropped" true (cleaned.(1) = Body.BNop)

let test_saved_reg_live_through_call () =
  let body =
    [| Body.BLdi (s0, 5L);
       Body.BJsr (Body.Global 0);
       Body.BOp (Isa.Add, s0, Isa.Imm 1L, v0);
       Body.BRet |]
  in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "s0 survives the call, kept" 0 removed

let test_v0_live_at_ret () =
  let body = [| Body.BLdi (v0, 7L); Body.BRet |] in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "return value kept" 0 removed

let test_live_out_shape () =
  let body = [| Body.BLdi (v0, 7L); Body.BRet |] in
  let out = Liveness.live_out body in
  Alcotest.(check bool) "v0 live after its def" true out.(0).(v0);
  Alcotest.(check bool) "nothing live after ret" false
    (Array.exists Fun.id out.(1))

let test_loop_keeps_induction_variable () =
  let body =
    [| Body.BLdi (t0, 3L);
       Body.BOp (Isa.Sub, t0, Isa.Imm 1L, t0);
       Body.BBr (Isa.Gt, t0, Body.Local 1);
       Body.BRet |]
  in
  let _, removed = Liveness.eliminate_dead body in
  Alcotest.(check int) "loop counter kept" 0 removed

let suite =
  [ Alcotest.test_case "dead def removed" `Quick test_dead_def_removed;
    Alcotest.test_case "dead chain (fixpoint)" `Quick test_chain_of_dead_defs;
    Alcotest.test_case "live through branch" `Quick test_live_through_branch;
    Alcotest.test_case "stores never removed" `Quick test_store_never_removed;
    Alcotest.test_case "dead load removed" `Quick test_dead_load_removed;
    Alcotest.test_case "call argument kept" `Quick test_value_for_call_kept;
    Alcotest.test_case "saved reg through call" `Quick
      test_saved_reg_live_through_call;
    Alcotest.test_case "v0 live at ret" `Quick test_v0_live_at_ret;
    Alcotest.test_case "live_out shape" `Quick test_live_out_shape;
    Alcotest.test_case "loop induction kept" `Quick
      test_loop_keeps_induction_variable ]
