open Isa

let run body =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      body b;
      Asm.halt b);
  Trivprof.run (Asm.assemble b ~entry:"main")

let test_immediate_trivial () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        Asm.addi b ~dst:t1 t0 0L; (* mov idiom: trivial via immediate *)
        Asm.muli b ~dst:t2 t0 7L (* not trivial *))
  in
  Alcotest.(check int) "alu events" 2 t.Trivprof.alu_events;
  Alcotest.(check int) "one trivial via immediate" 1 t.Trivprof.trivial_imm;
  Alcotest.(check int) "none via runtime" 0 t.Trivprof.trivial_dyn

let test_runtime_trivial () =
  let t =
    run (fun b ->
        Asm.ldi b t0 0L;
        Asm.ldi b t1 9L;
        Asm.mul b ~dst:t2 t1 t0 (* x * 0: only the profile can see it *))
  in
  Alcotest.(check int) "runtime trivial" 1 t.Trivprof.trivial_dyn;
  Alcotest.(check bool) "kind recorded" true
    (List.mem_assoc "mul by 0/1" t.Trivprof.by_kind)

let test_each_kind () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        Asm.addi b ~dst:t1 t0 0L; (* add/sub 0 *)
        Asm.muli b ~dst:t1 t0 1L; (* mul by 0/1 *)
        Asm.divi b ~dst:t1 t0 1L; (* div/rem by 1 *)
        Asm.andi b ~dst:t1 t0 0L; (* and 0/-1 *)
        Asm.ori b ~dst:t1 t0 0L; (* or/xor 0 *)
        Asm.slli b ~dst:t1 t0 0L (* shift by 0 *))
  in
  Alcotest.(check int) "all six trivial" 6
    (t.Trivprof.trivial_imm + t.Trivprof.trivial_dyn);
  Alcotest.(check int) "six distinct kinds" 6 (List.length t.Trivprof.by_kind)

let test_comparisons_excluded () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        Asm.cmpeqi b ~dst:t1 t0 0L)
  in
  Alcotest.(check int) "comparisons are not arithmetic" 0 t.Trivprof.alu_events

let test_overwriting_sources_unmeasured () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        (* dst = src: operands gone when the hook runs -> unmeasured *)
        Asm.addi b ~dst:t0 t0 0L)
  in
  Alcotest.(check int) "event counted" 1 t.Trivprof.alu_events;
  Alcotest.(check int) "but not measured" 0 t.Trivprof.measured

let test_fraction () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        Asm.addi b ~dst:t1 t0 0L;
        Asm.addi b ~dst:t2 t0 3L)
  in
  Alcotest.(check (float 1e-9)) "half trivial" 0.5 (Trivprof.trivial_fraction t)

let test_nontrivial_cases () =
  let t =
    run (fun b ->
        Asm.ldi b t0 5L;
        Asm.ldi b t1 2L;
        Asm.mul b ~dst:t2 t0 t1;
        Asm.divi b ~dst:t2 t0 3L;
        Asm.srai b ~dst:t2 t0 2L;
        Asm.andi b ~dst:t2 t0 6L)
  in
  Alcotest.(check int) "nothing trivial" 0
    (t.Trivprof.trivial_imm + t.Trivprof.trivial_dyn)

let suite =
  [ Alcotest.test_case "immediate trivial" `Quick test_immediate_trivial;
    Alcotest.test_case "runtime trivial" `Quick test_runtime_trivial;
    Alcotest.test_case "each kind" `Quick test_each_kind;
    Alcotest.test_case "comparisons excluded" `Quick test_comparisons_excluded;
    Alcotest.test_case "overwritten sources unmeasured" `Quick
      test_overwriting_sources_unmeasured;
    Alcotest.test_case "fraction" `Quick test_fraction;
    Alcotest.test_case "non-trivial cases" `Quick test_nontrivial_cases ]
