open Isa

(* Writes a constant to one address repeatedly, a varying value to
   another: the first location profiles invariant, the second variant. *)
let program n =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 2000L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 (Int64.of_int n);
      Asm.br b Eq t2 "done";
      Asm.ldi b t3 42L;
      Asm.st b ~src:t3 ~base:t1 ~off:0; (* invariant location 2000 *)
      Asm.st b ~src:t0 ~base:t1 ~off:1; (* variant location 2001 *)
      Asm.ld b ~dst:t4 ~base:t1 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let location r addr =
  match
    Array.find_opt
      (fun (l : Memprof.location) -> Int64.equal l.l_addr addr)
      r.Memprof.locations
  with
  | Some l -> l
  | None -> Alcotest.failf "location %Ld not tracked" addr

let test_locations_tracked () =
  let r = Memprof.run (program 50) in
  Alcotest.(check int) "two locations" 2 (Array.length r.Memprof.locations);
  (* 50 stores + 50 stores + 50 loads *)
  Alcotest.(check int) "events" 150 r.Memprof.tracked_events

let test_invariant_location () =
  let r = Memprof.run (program 50) in
  let l = location r 2000L in
  (* location 2000: 50 stores of 42 + 50 loads of 42 = 100 events *)
  Alcotest.(check int) "events" 100 l.l_metrics.Metrics.total;
  Alcotest.(check (float 1e-9)) "fully invariant" 1.0 l.l_metrics.Metrics.inv_top

let test_variant_location () =
  let r = Memprof.run (program 50) in
  let l = location r 2001L in
  Alcotest.(check int) "events" 50 l.l_metrics.Metrics.total;
  Alcotest.(check bool) "variant" true (l.l_metrics.Metrics.inv_top < 0.1);
  Alcotest.(check int) "all distinct" 50 l.l_metrics.Metrics.distinct

let test_mode_loads_only () =
  let config = { Memprof.default_config with mode = Memprof.Loads } in
  let r = Memprof.run ~config (program 50) in
  Alcotest.(check int) "only the loaded location" 1
    (Array.length r.Memprof.locations);
  Alcotest.(check int) "load events only" 50 r.Memprof.tracked_events

let test_mode_stores_only () =
  let config = { Memprof.default_config with mode = Memprof.Stores } in
  let r = Memprof.run ~config (program 50) in
  Alcotest.(check int) "both stored locations" 2
    (Array.length r.Memprof.locations);
  Alcotest.(check int) "store events only" 100 r.Memprof.tracked_events

let test_max_locations_cap () =
  let config = { Memprof.default_config with max_locations = 1 } in
  let r = Memprof.run ~config (program 50) in
  Alcotest.(check int) "one tracked" 1 (Array.length r.Memprof.locations);
  Alcotest.(check bool) "untracked events counted" true
    (r.Memprof.untracked_events > 0);
  Alcotest.(check int) "tracked + untracked = all" 150
    (r.Memprof.tracked_events + r.Memprof.untracked_events)

let test_fraction_invariant () =
  let r = Memprof.run (program 50) in
  (* location 2000: 100 invariant events; 2001: 50 variant events *)
  Alcotest.(check (float 1e-9)) "weighted" (100. /. 150.)
    (Memprof.fraction_invariant r ~threshold:0.9);
  Alcotest.(check (float 1e-9)) "unweighted" 0.5
    (Memprof.fraction_invariant ~weighted:false r ~threshold:0.9)

let test_sorted_by_heat () =
  let r = Memprof.run (program 50) in
  Alcotest.(check int64) "hottest first" 2000L r.Memprof.locations.(0).l_addr

let suite =
  [ Alcotest.test_case "locations tracked" `Quick test_locations_tracked;
    Alcotest.test_case "invariant location" `Quick test_invariant_location;
    Alcotest.test_case "variant location" `Quick test_variant_location;
    Alcotest.test_case "loads-only mode" `Quick test_mode_loads_only;
    Alcotest.test_case "stores-only mode" `Quick test_mode_stores_only;
    Alcotest.test_case "max locations cap" `Quick test_max_locations_cap;
    Alcotest.test_case "fraction invariant" `Quick test_fraction_invariant;
    Alcotest.test_case "sorted by heat" `Quick test_sorted_by_heat ]
