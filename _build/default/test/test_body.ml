open Isa

let sample_program () =
  let b = Asm.create () in
  Asm.proc b "callee" (fun b ->
      Asm.ldi b v0 1L;
      Asm.ret b);
  Asm.proc b "p" (fun b ->
      Asm.ldi b t0 3L;
      Asm.label b "loop";
      Asm.subi b ~dst:t0 t0 1L;
      Asm.br b Gt t0 "loop";
      Asm.call b "callee";
      Asm.ret b);
  Asm.assemble b ~entry:"p"

let test_extract_localizes_targets () =
  let prog = sample_program () in
  let body = Body.extract prog (Asm.find_proc prog "p") in
  Alcotest.(check int) "length" 5 (Array.length body);
  (match body.(2) with
   | Body.BBr (Isa.Gt, r, Body.Local 1) -> Alcotest.(check int) "reg" t0 r
   | _ -> Alcotest.fail "expected local branch to offset 1");
  (match body.(3) with
   | Body.BJsr (Body.Global 0) -> ()
   | _ -> Alcotest.fail "expected global call to callee")

let test_relocate_roundtrip () =
  let prog = sample_program () in
  let p = Asm.find_proc prog "p" in
  let body = Body.extract prog p in
  let code = Body.relocate body ~base:p.Asm.pentry in
  Array.iteri
    (fun i instr ->
      Alcotest.(check string)
        (Printf.sprintf "instr %d" i)
        (Isa.to_string prog.Asm.code.(p.Asm.pentry + i))
        (Isa.to_string instr))
    code

let test_extract_rejects_escaping_branch () =
  let b = Asm.create () in
  Asm.proc b "first" (fun b ->
      Asm.label b "out";
      Asm.halt b);
  Asm.proc b "escapes" (fun b ->
      Asm.jmp b "out";
      Asm.ret b);
  let prog = Asm.assemble b ~entry:"first" in
  (match Body.extract prog (Asm.find_proc prog "escapes") with
   | exception Body.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported")

let test_recursive_call_is_local () =
  let b = Asm.create () in
  Asm.proc b "rec" (fun b ->
      Asm.call b "rec";
      Asm.ret b);
  let prog = Asm.assemble b ~entry:"rec" in
  let body = Body.extract prog (Asm.find_proc prog "rec") in
  (match body.(0) with
   | Body.BJsr (Body.Local 0) -> ()
   | _ -> Alcotest.fail "self-call should be local")

let test_uses_defines () =
  Alcotest.(check (list int)) "op rr" [ t0; t1 ]
    (Body.uses (Body.BOp (Isa.Add, t0, Isa.Reg t1, t2)));
  Alcotest.(check (list int)) "op ri" [ t0 ]
    (Body.uses (Body.BOp (Isa.Add, t0, Isa.Imm 1L, t2)));
  Alcotest.(check (list int)) "store" [ t0; t1 ]
    (Body.uses (Body.BSt (t0, t1, 0)));
  Alcotest.(check (option int)) "op defines" (Some t2)
    (Body.defines (Body.BOp (Isa.Add, t0, Isa.Imm 1L, t2)));
  Alcotest.(check (option int)) "zero dest is none" None
    (Body.defines (Body.BOp (Isa.Add, t0, Isa.Imm 1L, zero_reg)));
  Alcotest.(check bool) "ret uses v0" true
    (List.mem v0 (Body.uses Body.BRet));
  Alcotest.(check bool) "ret uses saved regs" true
    (List.mem s0 (Body.uses Body.BRet))

let test_calling_convention () =
  Alcotest.(check bool) "sp saved" true (Body.callee_saved sp);
  Alcotest.(check bool) "s3 saved" true (Body.callee_saved s3);
  Alcotest.(check bool) "t0 clobbered" false (Body.callee_saved t0);
  Alcotest.(check bool) "a0 clobbered" false (Body.callee_saved a0);
  Alcotest.(check bool) "v0 clobbered" false (Body.callee_saved v0);
  Alcotest.(check bool) "jsr is call" true (Body.is_call (Body.BJsr (Body.Global 0)));
  Alcotest.(check bool) "jsr_ind is call" true (Body.is_call (Body.BJsr_ind t0));
  Alcotest.(check bool) "add is not" false
    (Body.is_call (Body.BOp (Isa.Add, t0, Isa.Imm 1L, t1)))

let test_successors () =
  let body =
    [| Body.BOp (Isa.Add, t0, Isa.Imm 1L, t0); (* 0 *)
       Body.BBr (Isa.Gt, t0, Body.Local 0); (* 1 *)
       Body.BJmp (Body.Local 0); (* 2 *)
       Body.BRet (* 3 *) |]
  in
  Alcotest.(check (list int)) "fallthrough" [ 1 ] (Body.successors body 0);
  Alcotest.(check (list int)) "branch both" [ 0; 2 ] (Body.successors body 1);
  Alcotest.(check (list int)) "jmp one" [ 0 ] (Body.successors body 2);
  Alcotest.(check (list int)) "ret none" [] (Body.successors body 3)

let suite =
  [ Alcotest.test_case "extract localizes targets" `Quick
      test_extract_localizes_targets;
    Alcotest.test_case "relocate roundtrip" `Quick test_relocate_roundtrip;
    Alcotest.test_case "escaping branch rejected" `Quick
      test_extract_rejects_escaping_branch;
    Alcotest.test_case "recursive call local" `Quick test_recursive_call_is_local;
    Alcotest.test_case "uses/defines" `Quick test_uses_defines;
    Alcotest.test_case "calling convention" `Quick test_calling_convention;
    Alcotest.test_case "successors" `Quick test_successors ]
