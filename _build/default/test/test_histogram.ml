let feq = Alcotest.float 1e-9

let test_bucketing () =
  let h = Histogram.create ~buckets:10 ~lo:0. ~hi:1. in
  Histogram.add h 0.05 ~weight:1.;
  Histogram.add h 0.15 ~weight:2.;
  Histogram.add h 0.95 ~weight:3.;
  Alcotest.check feq "bucket 0" 1. (Histogram.weight h 0);
  Alcotest.check feq "bucket 1" 2. (Histogram.weight h 1);
  Alcotest.check feq "bucket 9" 3. (Histogram.weight h 9);
  Alcotest.check feq "total" 6. (Histogram.total_weight h)

let test_clamping () =
  let h = Histogram.create ~buckets:4 ~lo:0. ~hi:1. in
  Histogram.add h (-5.) ~weight:1.;
  Histogram.add h 7. ~weight:1.;
  Histogram.add h 1.0 ~weight:1.;
  Alcotest.check feq "low clamps" 1. (Histogram.weight h 0);
  Alcotest.check feq "high clamps" 2. (Histogram.weight h 3)

let test_bounds () =
  let h = Histogram.create ~buckets:4 ~lo:0. ~hi:2. in
  let lo, hi = Histogram.bounds h 1 in
  Alcotest.check feq "lo" 0.5 lo;
  Alcotest.check feq "hi" 1.0 hi;
  Alcotest.check_raises "out of range" (Invalid_argument "Histogram.bounds")
    (fun () -> ignore (Histogram.bounds h 4))

let test_fractions () =
  let h = Histogram.create ~buckets:2 ~lo:0. ~hi:1. in
  Alcotest.check feq "empty fraction" 0. (Histogram.fraction h 0);
  Histogram.add h 0.1 ~weight:1.;
  Histogram.add h 0.9 ~weight:3.;
  Alcotest.check feq "fraction 0" 0.25 (Histogram.fraction h 0);
  Alcotest.check feq "fraction 1" 0.75 (Histogram.fraction h 1)

let test_create_invalid () =
  Alcotest.check_raises "no buckets"
    (Invalid_argument "Histogram.create: buckets must be positive") (fun () ->
      ignore (Histogram.create ~buckets:0 ~lo:0. ~hi:1.));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Histogram.create ~buckets:2 ~lo:1. ~hi:1.))

let qcheck_fractions_sum =
  QCheck.Test.make ~name:"fractions sum to 1 when non-empty" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-2.) 3.))
    (fun samples ->
      let h = Histogram.create ~buckets:7 ~lo:0. ~hi:1. in
      List.iter (fun x -> Histogram.add h x ~weight:1.) samples;
      let sum = Array.fold_left ( +. ) 0. (Histogram.fractions h) in
      abs_float (sum -. 1.) < 1e-9)

let suite =
  [ Alcotest.test_case "bucketing" `Quick test_bucketing;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "fractions" `Quick test_fractions;
    Alcotest.test_case "invalid create" `Quick test_create_invalid;
    QCheck_alcotest.to_alcotest qcheck_fractions_sum ]
