open Isa

let test_meet_lattice () =
  let open Constfold in
  Alcotest.(check bool) "undef identity" true (meet Undef (Const 3L) = Const 3L);
  Alcotest.(check bool) "equal consts" true (meet (Const 3L) (Const 3L) = Const 3L);
  Alcotest.(check bool) "conflicting consts" true (meet (Const 3L) (Const 4L) = Nac);
  Alcotest.(check bool) "nac absorbs" true (meet Nac (Const 3L) = Nac);
  Alcotest.(check bool) "nac undef" true (meet Nac Undef = Nac)

let qcheck_meet_properties =
  let fact_gen =
    QCheck.Gen.(
      oneof
        [ return Constfold.Undef;
          return Constfold.Nac;
          map (fun i -> Constfold.Const (Int64.of_int i)) (int_range 0 3) ])
  in
  QCheck.Test.make ~name:"meet is commutative, idempotent, associative"
    ~count:500
    (QCheck.make QCheck.Gen.(triple fact_gen fact_gen fact_gen))
    (fun (a, b, c) ->
      let open Constfold in
      meet a b = meet b a
      && meet a a = a
      && meet (meet a b) c = meet a (meet b c))

let test_entry_env () =
  let env = Constfold.entry_env [ (a0, 5L) ] in
  Alcotest.(check bool) "bound param" true (env.(a0) = Constfold.Const 5L);
  Alcotest.(check bool) "zero pinned" true (env.(zero_reg) = Constfold.Const 0L);
  Alcotest.(check bool) "others nac" true (env.(t0) = Constfold.Nac);
  Alcotest.check_raises "zero not bindable"
    (Invalid_argument "Constfold: cannot bind the zero register") (fun () ->
      ignore (Constfold.entry_env [ (zero_reg, 1L) ]))

let test_fold_arithmetic () =
  let body =
    [| Body.BLdi (t0, 10L);
       Body.BOp (Isa.Add, t0, Isa.Imm 5L, t1);
       Body.BOp (Isa.Mul, t1, Isa.Reg t0, t2);
       Body.BRet |]
  in
  let folded, stats = Constfold.fold body ~entry:(Constfold.entry_env []) in
  Alcotest.(check int) "two folds" 2 stats.Constfold.folded;
  (match folded.(1) with
   | Body.BLdi (r, 15L) -> Alcotest.(check int) "t1" t1 r
   | _ -> Alcotest.fail "expected fold to 15");
  (match folded.(2) with
   | Body.BLdi (r, 150L) -> Alcotest.(check int) "t2" t2 r
   | _ -> Alcotest.fail "expected fold to 150")

let test_fold_uses_param () =
  let body =
    [| Body.BOp (Isa.Mul, a0, Isa.Imm 3L, t0);
       Body.BRet |]
  in
  let folded, stats =
    Constfold.fold body ~entry:(Constfold.entry_env [ (a0, 7L) ])
  in
  Alcotest.(check int) "folded" 1 stats.Constfold.folded;
  (match folded.(0) with
   | Body.BLdi (_, 21L) -> ()
   | _ -> Alcotest.fail "expected 21")

let test_branch_resolution_and_unreachable () =
  (* if a0 == 1 (true under entry env) skip the else-branch *)
  let body =
    [| Body.BOp (Isa.Cmpeq, a0, Isa.Imm 1L, t0); (* 0: t0 = 1 *)
       Body.BBr (Isa.Ne, t0, Body.Local 3); (* 1: taken *)
       Body.BLdi (t1, 111L); (* 2: unreachable *)
       Body.BLdi (t1, 222L); (* 3: reached *)
       Body.BRet |]
  in
  let folded, stats =
    Constfold.fold body ~entry:(Constfold.entry_env [ (a0, 1L) ])
  in
  Alcotest.(check int) "branch resolved" 1 stats.Constfold.branches_resolved;
  Alcotest.(check int) "one unreachable" 1 stats.Constfold.unreachable;
  (match folded.(1) with
   | Body.BJmp (Body.Local 3) -> ()
   | _ -> Alcotest.fail "expected resolved jump");
  Alcotest.(check bool) "unreachable is nop" true (folded.(2) = Body.BNop)

let test_untaken_branch_becomes_nop () =
  let body =
    [| Body.BOp (Isa.Cmpeq, a0, Isa.Imm 1L, t0);
       Body.BBr (Isa.Ne, t0, Body.Local 2);
       Body.BRet |]
  in
  let folded, stats =
    Constfold.fold body ~entry:(Constfold.entry_env [ (a0, 9L) ])
  in
  Alcotest.(check int) "resolved" 1 stats.Constfold.branches_resolved;
  Alcotest.(check bool) "untaken branch removed" true (folded.(1) = Body.BNop)

let test_load_produces_nac () =
  let body =
    [| Body.BLd (t0, a0, 0);
       Body.BOp (Isa.Add, t0, Isa.Imm 1L, t1);
       Body.BRet |]
  in
  let _, stats =
    Constfold.fold body ~entry:(Constfold.entry_env [ (a0, 100L) ])
  in
  Alcotest.(check int) "nothing folds through a load" 0 stats.Constfold.folded

let test_call_clobbers_temporaries_not_saved () =
  let body =
    [| Body.BLdi (t0, 5L); (* temp: dies at the call *)
       Body.BLdi (s0, 6L); (* saved: survives *)
       Body.BJsr (Body.Global 0);
       Body.BOp (Isa.Add, t0, Isa.Imm 1L, t1); (* must not fold *)
       Body.BOp (Isa.Add, s0, Isa.Imm 1L, t2); (* folds to 7 *)
       Body.BRet |]
  in
  let folded, stats = Constfold.fold body ~entry:(Constfold.entry_env []) in
  Alcotest.(check int) "only saved-reg use folds" 1 stats.Constfold.folded;
  (match folded.(4) with
   | Body.BLdi (_, 7L) -> ()
   | _ -> Alcotest.fail "expected s0+1 to fold to 7");
  (match folded.(3) with
   | Body.BOp _ -> ()
   | _ -> Alcotest.fail "t0+1 must not fold across the call")

let test_division_by_zero_not_folded () =
  let body =
    [| Body.BOp (Isa.Div, a0, Isa.Imm 0L, t0);
       Body.BRet |]
  in
  let folded, stats =
    Constfold.fold body ~entry:(Constfold.entry_env [ (a0, 5L) ])
  in
  Alcotest.(check int) "no fold" 0 stats.Constfold.folded;
  (match folded.(0) with
   | Body.BOp (Isa.Div, _, _, _) -> ()
   | _ -> Alcotest.fail "division kept so it still traps")

let test_loop_carried_value_not_constant () =
  (* t0 starts constant but changes around the loop: the merge at the loop
     head must be Nac, so nothing folds inside. *)
  let body =
    [| Body.BLdi (t0, 3L); (* 0 *)
       Body.BOp (Isa.Sub, t0, Isa.Imm 1L, t0); (* 1: loop head *)
       Body.BBr (Isa.Gt, t0, Body.Local 1); (* 2 *)
       Body.BRet |]
  in
  let folded, stats = Constfold.fold body ~entry:(Constfold.entry_env []) in
  Alcotest.(check int) "no branch resolved" 0 stats.Constfold.branches_resolved;
  (match folded.(1) with
   | Body.BOp (Isa.Sub, _, _, _) -> ()
   | _ -> Alcotest.fail "loop-carried subtraction must not fold")

let test_analyze_unreachable_none () =
  let body =
    [| Body.BJmp (Body.Local 2);
       Body.BLdi (t0, 1L); (* unreachable *)
       Body.BRet |]
  in
  let facts = Constfold.analyze body ~entry:(Constfold.entry_env []) in
  Alcotest.(check bool) "entry reached" true (facts.(0) <> None);
  Alcotest.(check bool) "dead instr unreached" true (facts.(1) = None);
  Alcotest.(check bool) "target reached" true (facts.(2) <> None)

let suite =
  [ Alcotest.test_case "meet lattice" `Quick test_meet_lattice;
    Alcotest.test_case "entry env" `Quick test_entry_env;
    Alcotest.test_case "fold arithmetic" `Quick test_fold_arithmetic;
    Alcotest.test_case "fold uses param" `Quick test_fold_uses_param;
    Alcotest.test_case "branch resolution" `Quick
      test_branch_resolution_and_unreachable;
    Alcotest.test_case "untaken branch" `Quick test_untaken_branch_becomes_nop;
    Alcotest.test_case "loads are nac" `Quick test_load_produces_nac;
    Alcotest.test_case "call clobber semantics" `Quick
      test_call_clobbers_temporaries_not_saved;
    Alcotest.test_case "div by zero kept" `Quick test_division_by_zero_not_folded;
    Alcotest.test_case "loop-carried not constant" `Quick
      test_loop_carried_value_not_constant;
    Alcotest.test_case "unreachable analysis" `Quick test_analyze_unreachable_none;
    QCheck_alcotest.to_alcotest qcheck_meet_properties ]
