(* Unit and property tests for the deterministic RNG. *)

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" false
    (Int64.equal (Rng.next a) (Rng.next b))

let test_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let rng = Rng.create 7L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create 3L in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create 11L in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_int64_range () =
  let rng = Rng.create 13L in
  for _ = 1 to 10_000 do
    let v = Rng.int64_range rng (-5L) 5L in
    Alcotest.(check bool) "in [-5,5]" true
      (Int64.compare v (-5L) >= 0 && Int64.compare v 5L <= 0)
  done

let test_int64_range_invalid () =
  let rng = Rng.create 13L in
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Rng.int64_range: lo > hi") (fun () ->
      ignore (Rng.int64_range rng 5L (-5L)))

let test_bool_both () =
  let rng = Rng.create 17L in
  let trues = ref 0 in
  for _ = 1 to 1_000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 300 && !trues < 700)

let test_choose () =
  let rng = Rng.create 19L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose rng arr) arr)
  done

let test_choose_empty () =
  let rng = Rng.create 19L in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng ([||] : int array)))

let test_shuffle_permutation () =
  let rng = Rng.create 23L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_split_independent () =
  let a = Rng.create 29L in
  let b = Rng.split a in
  Alcotest.(check bool) "streams differ" false
    (Int64.equal (Rng.next a) (Rng.next b))

let test_skewed_bounds () =
  let rng = Rng.create 31L in
  for _ = 1 to 10_000 do
    let v = Rng.skewed rng ~n:10 ~s:2.0 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_skewed_is_skewed () =
  let rng = Rng.create 37L in
  let counts = Array.make 16 0 in
  for _ = 1 to 20_000 do
    let v = Rng.skewed rng ~n:16 ~s:2.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "index 0 dominates index 15" true
    (counts.(0) > 4 * (counts.(15) + 1))

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_int64_range =
  QCheck.Test.make ~name:"rng int64_range stays in range" ~count:500
    QCheck.(triple int64 int64 int64)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.int64_range rng lo hi in
      Int64.compare v lo >= 0 && Int64.compare v hi <= 0)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int64_range bounds" `Quick test_int64_range;
    Alcotest.test_case "int64_range invalid" `Quick test_int64_range_invalid;
    Alcotest.test_case "bool fairness" `Quick test_bool_both;
    Alcotest.test_case "choose membership" `Quick test_choose;
    Alcotest.test_case "choose empty" `Quick test_choose_empty;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "skewed bounds" `Quick test_skewed_bounds;
    Alcotest.test_case "skewed distribution" `Quick test_skewed_is_skewed;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
    QCheck_alcotest.to_alcotest qcheck_int64_range ]
