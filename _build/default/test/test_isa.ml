open Isa

let test_dest_reg () =
  Alcotest.(check (option int)) "alu dest" (Some t1)
    (dest_reg (Op (Add, t0, Imm 1L, t1)));
  Alcotest.(check (option int)) "write to zero is none" None
    (dest_reg (Op (Add, t0, Imm 1L, zero_reg)));
  Alcotest.(check (option int)) "ldi" (Some t0) (dest_reg (Ldi (t0, 5L)));
  Alcotest.(check (option int)) "load" (Some t2) (dest_reg (Ld (t2, t0, 0)));
  Alcotest.(check (option int)) "store" None (dest_reg (St (t0, t1, 0)));
  Alcotest.(check (option int)) "branch" None (dest_reg (Br (Eq, t0, 3)));
  Alcotest.(check (option int)) "ret" None (dest_reg Ret)

let test_category () =
  let check name instr expect =
    Alcotest.(check bool) name true (category instr = expect)
  in
  check "op is alu" (Op (Mul, t0, Reg t1, t2)) Alu;
  check "ldi is alu" (Ldi (t0, 0L)) Alu;
  check "ld" (Ld (t0, t1, 0)) Load;
  check "st" (St (t0, t1, 0)) Store;
  check "br" (Br (Ne, t0, 0)) Branch;
  check "jmp" (Jmp 0) Branch;
  check "jsr" (Jsr 0) Call;
  check "jsr_ind" (Jsr_ind t0) Call;
  check "ret" Ret Return;
  check "halt" Halt Other;
  check "nop" Nop Other

let test_is_control () =
  Alcotest.(check bool) "br" true (is_control (Br (Eq, t0, 0)));
  Alcotest.(check bool) "halt" true (is_control Halt);
  Alcotest.(check bool) "op" false (is_control (Op (Add, t0, Imm 0L, t1)));
  Alcotest.(check bool) "st" false (is_control (St (t0, t1, 0)))

let test_targets () =
  Alcotest.(check (list int)) "br" [ 7 ] (targets (Br (Eq, t0, 7)));
  Alcotest.(check (list int)) "jmp" [ 3 ] (targets (Jmp 3));
  Alcotest.(check (list int)) "jsr" [ 9 ] (targets (Jsr 9));
  Alcotest.(check (list int)) "indirect" [] (targets (Jsr_ind t0));
  Alcotest.(check (list int)) "alu" [] (targets (Ldi (t0, 0L)))

let test_reg_names () =
  Alcotest.(check string) "zero" "zero" (string_of_reg zero_reg);
  Alcotest.(check string) "sp" "sp" (string_of_reg sp);
  Alcotest.(check string) "v0" "v0" (string_of_reg v0);
  Alcotest.(check string) "a0" "a0" (string_of_reg a0);
  Alcotest.(check string) "t3" "t3" (string_of_reg t3);
  Alcotest.(check string) "s5" "s5" (string_of_reg s5);
  Alcotest.(check string) "raw" "r15" (string_of_reg 15)

let test_pretty_printing () =
  Alcotest.(check string) "op" "add t0, #1 -> t1"
    (to_string (Op (Add, t0, Imm 1L, t1)));
  Alcotest.(check string) "ld" "ld [t0+4] -> t1" (to_string (Ld (t1, t0, 4)));
  Alcotest.(check string) "st" "st t1 -> [t0-2]" (to_string (St (t1, t0, -2)));
  Alcotest.(check string) "br" "beq t0, @9" (to_string (Br (Eq, t0, 9)));
  Alcotest.(check string) "ret" "ret" (to_string Ret)

let test_register_conventions () =
  Alcotest.(check int) "32 registers" 32 num_regs;
  Alcotest.(check int) "zero is r31" 31 zero_reg;
  Alcotest.(check bool) "args contiguous" true
    (a1 = a0 + 1 && a2 = a1 + 1 && a3 = a2 + 1 && a4 = a3 + 1 && a5 = a4 + 1);
  Alcotest.(check bool) "temps contiguous" true
    (t1 = t0 + 1 && t7 = t0 + 7);
  Alcotest.(check bool) "saved contiguous" true (s5 = s0 + 5)

let suite =
  [ Alcotest.test_case "dest_reg" `Quick test_dest_reg;
    Alcotest.test_case "category" `Quick test_category;
    Alcotest.test_case "is_control" `Quick test_is_control;
    Alcotest.test_case "targets" `Quick test_targets;
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "pretty printing" `Quick test_pretty_printing;
    Alcotest.test_case "register conventions" `Quick test_register_conventions ]
