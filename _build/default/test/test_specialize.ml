open Isa

(* A dispatcher-style procedure: compares its argument against constants
   before a little arithmetic — the shape specialization wins on. *)
let dispatcher_program () =
  let b = Asm.create () in
  let out = Asm.reserve b 4 in
  Asm.proc b "dispatch" (fun b ->
      (* dispatch(op=a0, x=a1) -> v0. The dominant op (1) is the chain's
         fall-through, so a clone specialized on op=1 skips the whole
         dispatch — the same shape as the thesis's m88ksim case study. *)
      Asm.cmpeqi b ~dst:t0 a0 2L;
      Asm.br b Ne t0 "case_two";
      Asm.cmpeqi b ~dst:t0 a0 3L;
      Asm.br b Ne t0 "case_three";
      Asm.cmpeqi b ~dst:t0 a0 4L;
      Asm.br b Ne t0 "case_four";
      Asm.addi b ~dst:v0 a1 100L;
      Asm.ret b;
      Asm.label b "case_two";
      Asm.muli b ~dst:v0 a1 2L;
      Asm.ret b;
      Asm.label b "case_three";
      Asm.subi b ~dst:v0 a1 9L;
      Asm.ret b;
      Asm.label b "case_four";
      Asm.xori b ~dst:v0 a1 255L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b s0 0L;
      Asm.ldi b s1 out;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t0 s0 300L;
      Asm.br b Eq t0 "done";
      (* mostly op 1, sometimes op 2 *)
      Asm.andi b ~dst:t1 s0 7L;
      Asm.cmpeqi b ~dst:t1 t1 7L;
      Asm.addi b ~dst:a0 t1 1L; (* 1 seven times out of eight, else 2 *)
      Asm.mov b ~dst:a1 s0;
      Asm.call b "dispatch";
      Asm.andi b ~dst:t2 s0 3L;
      Asm.add b ~dst:t2 s1 t2;
      Asm.st b ~src:v0 ~base:t2 ~off:0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_specialize_dispatcher () =
  let prog = dispatcher_program () in
  let report = Specialize.specialize prog ~proc:"dispatch" ~param:a0 ~value:1L in
  Alcotest.(check bool) "body shrinks" true
    (report.Specialize.sp_static_after < report.Specialize.sp_static_before);
  Alcotest.(check bool) "branch resolved" true
    (report.Specialize.sp_branches_resolved >= 1);
  Alcotest.(check bool) "comparison folded" true
    (report.Specialize.sp_folded >= 1);
  let equal, before, after =
    Specialize.differential prog report.Specialize.sp_program
  in
  Alcotest.(check bool) "same result" true equal;
  Alcotest.(check bool) "fewer dynamic instructions" true (after < before)

let test_guard_dispatches_both_ways () =
  (* With the guard in place, both op=1 (specialized path) and op=2
     (original path) calls must still compute correct results — the
     differential test above covers it, but check v0 directly too. *)
  let prog = dispatcher_program () in
  let report = Specialize.specialize prog ~proc:"dispatch" ~param:a0 ~value:1L in
  let run_dispatch program op x =
    let m = Machine.create program in
    (* call dispatch directly by jumping the machine there *)
    Machine.set_reg m a0 op;
    Machine.set_reg m a1 x;
    let d = Asm.find_proc program "dispatch" in
    (* build a trampoline: execute from dispatch entry until halt/ret *)
    ignore d;
    m
  in
  ignore run_dispatch;
  (* simpler: compare end-state checksums, which encode every store *)
  let equal, _, _ = Specialize.differential prog report.Specialize.sp_program in
  Alcotest.(check bool) "both paths correct" true equal

let test_new_procs_registered () =
  let prog = dispatcher_program () in
  let report = Specialize.specialize prog ~proc:"dispatch" ~param:a0 ~value:1L in
  let sp = report.Specialize.sp_program in
  Alcotest.(check bool) "guard proc" true
    (match Asm.find_proc sp "dispatch__guard" with _ -> true);
  Alcotest.(check bool) "spec proc" true
    (match Asm.find_proc sp "dispatch__spec" with _ -> true);
  (* the original entry now jumps to the guard *)
  let d = Asm.find_proc sp "dispatch" in
  (match sp.Asm.code.(d.Asm.pentry) with
   | Isa.Jmp t -> Alcotest.(check int) "to guard" report.Specialize.sp_guard_entry t
   | other -> Alcotest.failf "expected jmp, got %s" (Isa.to_string other))

let test_unsupported_entry_branch_target () =
  let b = Asm.create () in
  Asm.proc b "looper" (fun b ->
      (* first instruction is also the loop-back target *)
      Asm.subi b ~dst:a0 a0 1L;
      Asm.br b Gt a0 "looper";
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 3L;
      Asm.call b "looper";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (match Specialize.specialize prog ~proc:"looper" ~param:a0 ~value:3L with
   | exception Body.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported")

let test_too_short () =
  let b = Asm.create () in
  Asm.proc b "tiny" (fun b -> Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.call b "tiny";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (match Specialize.specialize prog ~proc:"tiny" ~param:a0 ~value:0L with
   | exception Body.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported")

let test_invalid_registers () =
  let prog = dispatcher_program () in
  Alcotest.check_raises "zero"
    (Invalid_argument "Specialize: cannot specialize on this register")
    (fun () ->
      ignore (Specialize.specialize prog ~proc:"dispatch" ~param:zero_reg ~value:0L));
  Alcotest.check_raises "guard reg"
    (Invalid_argument "Specialize: cannot specialize on this register")
    (fun () ->
      ignore (Specialize.specialize prog ~proc:"dispatch" ~param:15 ~value:0L))

let test_candidates_from_procprof () =
  let w = Workloads.find "m88ksim" in
  let config = { Procprof.default_config with arities = w.Workload.warities } in
  let pp = Procprof.run ~config (w.Workload.wbuild Workload.Test) in
  let cands = Specialize.candidates pp ~min_calls:100 ~min_inv:0.5 in
  Alcotest.(check bool) "found execute's opcode" true
    (List.exists
       (fun (proc, param, value, _) ->
         proc = "execute" && param = a0 && Int64.equal value 1L)
       cands);
  (* raising the bar empties the list *)
  Alcotest.(check (list string)) "unreachable threshold" []
    (List.map (fun (p, _, _, _) -> p)
       (Specialize.candidates pp ~min_calls:1_000_000 ~min_inv:0.99))

(* Random-program differential property: specialization must preserve
   semantics for ANY leaf procedure and ANY specialization value, whether
   or not the guard matches the calls' arguments. *)

type gen_instr =
  | GArith of Isa.binop * int * int * [ `Reg of int | `Imm of int64 ]
  | GLd of int * int (* dst, offset *)
  | GSt of int * int (* src, offset *)
  | GBr of Isa.cond * int * int (* cond, reg, forward distance *)

let scratch = [| t0; t1; t2; t3; t4; t5 |]

let gen_program_instrs =
  let open QCheck.Gen in
  let reg = map (fun i -> scratch.(i)) (int_range 0 5) in
  let src = oneof [ reg; return a0 ] in
  let instr =
    frequency
      [ (6,
         map3
           (fun op (d, s) operand -> GArith (op, d, s, operand))
           (oneofl
              [ Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor;
                Isa.Cmpeq; Isa.Cmplt ])
           (pair reg src)
           (oneof
              [ map (fun r -> `Reg r) src;
                map (fun i -> `Imm (Int64.of_int i)) (int_range (-20) 20) ]));
        (1, map2 (fun op (d, s) -> GArith (op, d, s, `Imm 3L))
             (oneofl [ Isa.Div; Isa.Rem ])
             (pair reg src));
        (1, map2 (fun d off -> GLd (d, off)) reg (int_range 0 15));
        (1, map2 (fun s off -> GSt (s, off)) src (int_range 0 15));
        (2,
         map3
           (fun c r dist -> GBr (c, r, 1 + dist))
           (oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Gt ])
           src (int_range 0 6)) ]
  in
  list_size (int_range 2 25) instr

let build_random_program instrs spec_value arg_values =
  let b = Asm.create () in
  let out = Asm.reserve b 16 in
  let n = List.length instrs in
  Asm.proc b "p" (fun b ->
      (* The calling convention requires a procedure never to read a
         caller-saved register it has not written (other than its declared
         arguments) — otherwise its behaviour depends on caller leftovers
         and any transformation altering the callee's register footprint
         would be observable. Initialize every scratch register from a0
         and constants so generated reads are always well-defined. *)
      Asm.ldi b t6 3000L;
      Asm.ldi b t0 1L;
      Asm.muli b ~dst:t1 a0 3L;
      Asm.addi b ~dst:t2 a0 7L;
      Asm.ldi b t3 (-2L);
      Asm.xori b ~dst:t4 a0 5L;
      Asm.ldi b t5 11L;
      List.iteri
        (fun i instr ->
          Asm.label b (Printf.sprintf "L%d" i);
          match instr with
          | GArith (op, d, s, `Reg r) -> Asm.bin b op ~dst:d s (Isa.Reg r)
          | GArith (op, d, s, `Imm v) -> Asm.bin b op ~dst:d s (Isa.Imm v)
          | GLd (d, off) -> Asm.ld b ~dst:d ~base:t6 ~off
          | GSt (s, off) -> Asm.st b ~src:s ~base:t6 ~off
          | GBr (c, r, dist) ->
            Asm.br b c r (Printf.sprintf "L%d" (min n (i + dist))))
        instrs;
      Asm.label b (Printf.sprintf "L%d" n);
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      List.iteri
        (fun i v ->
          Asm.ldi b a0 v;
          Asm.call b "p";
          Asm.ldi b t1 out;
          Asm.st b ~src:v0 ~base:t1 ~off:i)
        arg_values;
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (prog, spec_value)

let qcheck_specialize_preserves_semantics =
  QCheck.Test.make ~name:"specialization preserves program results"
    ~count:300
    QCheck.(
      make
        Gen.(
          triple gen_program_instrs (int_range (-5) 5)
            (list_size (int_range 1 5) (int_range (-5) 5))))
    (fun (instrs, spec_raw, args_raw) ->
      let spec_value = Int64.of_int spec_raw in
      let args = List.map Int64.of_int args_raw in
      let prog, _ = build_random_program instrs spec_value args in
      match Specialize.specialize prog ~proc:"p" ~param:a0 ~value:spec_value with
      | report ->
        let equal, _, _ =
          Specialize.differential prog report.Specialize.sp_program
        in
        equal
      | exception Body.Unsupported _ -> QCheck.assume_fail ())

let suite =
  [ Alcotest.test_case "specialize dispatcher" `Quick test_specialize_dispatcher;
    Alcotest.test_case "guard dispatches both ways" `Quick
      test_guard_dispatches_both_ways;
    Alcotest.test_case "new procs registered" `Quick test_new_procs_registered;
    Alcotest.test_case "entry branch target unsupported" `Quick
      test_unsupported_entry_branch_target;
    Alcotest.test_case "too short unsupported" `Quick test_too_short;
    Alcotest.test_case "invalid registers" `Quick test_invalid_registers;
    Alcotest.test_case "candidates from procprof" `Quick
      test_candidates_from_procprof;
    QCheck_alcotest.to_alcotest qcheck_specialize_preserves_semantics ]
