open Isa

(* Two loads in a loop: one reads a location no store modifies, the other
   reads a location rewritten with a fresh value every iteration. *)
let program n =
  let b = Asm.create () in
  let stable = Asm.data b [| 42L |] in
  let volatile = Asm.reserve b 1 in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 stable;
      Asm.ldi b t2 volatile;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t3 t0 (Int64.of_int n);
      Asm.br b Eq t3 "done";
      Asm.st b ~src:t0 ~base:t2 ~off:0; (* fresh value each iteration *)
      Asm.ld b ~dst:t4 ~base:t1 ~off:0; (* stable load *)
      Asm.ld b ~dst:t5 ~base:t2 ~off:0; (* conflicting load *)
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let load_at t pc =
  match
    Array.find_opt (fun (l : Specul.load_report) -> l.sl_pc = pc) t.Specul.loads
  with
  | Some l -> l
  | None -> Alcotest.failf "no load report for pc %d" pc

let find_load_pcs prog =
  match Atom.select prog `Loads with
  | [ a; b ] -> (a, b)
  | other -> Alcotest.failf "expected two loads, got %d" (List.length other)

let test_stable_load_never_conflicts () =
  let prog = program 50 in
  let stable_pc, _ = find_load_pcs prog in
  let t = Specul.run prog in
  let l = load_at t stable_pc in
  Alcotest.(check int) "executions" 50 l.sl_executions;
  Alcotest.(check int) "no conflicts" 0 l.sl_conflicts

let test_volatile_load_conflicts () =
  let prog = program 50 in
  let _, volatile_pc = find_load_pcs prog in
  let t = Specul.run prog in
  let l = load_at t volatile_pc in
  (* every iteration after the first sees a modifying store since its
     previous read *)
  Alcotest.(check int) "conflicts" 49 l.sl_conflicts;
  Alcotest.(check bool) "rate near 1" true (l.sl_conflict_rate > 0.9)

let test_silent_stores_do_not_conflict () =
  (* storing the same value repeatedly passes the value check *)
  let b = Asm.create () in
  let cell = Asm.data b [| 9L |] in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 cell;
      Asm.ldi b t2 9L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t3 t0 30L;
      Asm.br b Eq t3 "done";
      Asm.st b ~src:t2 ~base:t1 ~off:0; (* silent: same value *)
      Asm.ld b ~dst:t4 ~base:t1 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  let t = Specul.run (Asm.assemble b ~entry:"main") in
  Alcotest.(check int) "no conflicts from silent stores" 0
    t.Specul.total_conflicts

let test_conflict_rate_selection () =
  let prog = program 50 in
  let stable_pc, volatile_pc = find_load_pcs prog in
  let t = Specul.run prog in
  Alcotest.(check (float 1e-9)) "stable subset" 0.
    (Specul.conflict_rate t ~select:(fun l -> l.Specul.sl_pc = stable_pc));
  Alcotest.(check bool) "volatile subset high" true
    (Specul.conflict_rate t ~select:(fun l -> l.Specul.sl_pc = volatile_pc)
     > 0.9);
  Alcotest.(check (float 1e-9)) "empty subset" 0.
    (Specul.conflict_rate t ~select:(fun _ -> false))

let test_totals () =
  let t = Specul.run (program 50) in
  Alcotest.(check int) "total executions" 100 t.Specul.total_executions;
  Alcotest.(check int) "total conflicts" 49 t.Specul.total_conflicts

let test_tracking_cap_is_conservative () =
  (* with a 1-entry map, the second distinct address saturates and counts
     as a conflict rather than being silently ignored *)
  let b = Asm.create () in
  let arr = Asm.data b [| 1L; 2L; 3L; 4L |] in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 arr;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t2 t0 4L;
      Asm.br b Eq t2 "done";
      Asm.add b ~dst:t3 t1 t0;
      Asm.ld b ~dst:t4 ~base:t3 ~off:0;
      Asm.addi b ~dst:t0 t0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  let t = Specul.run ~max_tracked:1 (Asm.assemble b ~entry:"main") in
  Alcotest.(check bool) "saturation counted against speculation" true
    (t.Specul.total_conflicts > 0)

let suite =
  [ Alcotest.test_case "stable load never conflicts" `Quick
      test_stable_load_never_conflicts;
    Alcotest.test_case "volatile load conflicts" `Quick
      test_volatile_load_conflicts;
    Alcotest.test_case "silent stores pass" `Quick
      test_silent_stores_do_not_conflict;
    Alcotest.test_case "conflict rate selection" `Quick
      test_conflict_rate_selection;
    Alcotest.test_case "totals" `Quick test_totals;
    Alcotest.test_case "tracking cap conservative" `Quick
      test_tracking_cap_is_conservative ]
