(* Substring search helper for the test suite (the stdlib has none). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec at i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else at (i + 1)
    in
    at 0
  end
