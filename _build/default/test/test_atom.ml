open Isa

let program () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 100L; (* 0: alu *)
      Asm.ld b ~dst:t1 ~base:t0 ~off:0; (* 1: load *)
      Asm.st b ~src:t1 ~base:t0 ~off:1; (* 2: store *)
      Asm.add b ~dst:zero_reg t0 t1; (* 3: alu writing zero -> no dest *)
      Asm.halt b (* 4 *));
  Asm.assemble b ~entry:"main"

let test_select_all () =
  Alcotest.(check (list int)) "value producers" [ 0; 1 ]
    (Atom.select (program ()) `All)

let test_select_loads () =
  Alcotest.(check (list int)) "loads" [ 1 ] (Atom.select (program ()) `Loads)

let test_select_alu () =
  Alcotest.(check (list int)) "alu" [ 0 ] (Atom.select (program ()) `Alu)

let test_select_stores () =
  Alcotest.(check (list int)) "stores" [ 2 ] (Atom.select (program ()) `Stores)

let test_select_pcs () =
  Alcotest.(check (list int)) "explicit, deduped, sorted" [ 1; 2; 4 ]
    (Atom.select (program ()) (`Pcs [ 4; 1; 2; 1 ]))

let test_instrument_and_dynamic_events () =
  let prog = program () in
  let m = Machine.create prog in
  let hits = ref 0 in
  let n = Atom.instrument m (Atom.select prog `All) (fun _pc _v _a -> incr hits) in
  Alcotest.(check int) "two points" 2 n;
  ignore (Machine.run m);
  Alcotest.(check int) "two events" 2 !hits;
  Alcotest.(check int) "dynamic_events agrees" 2
    (Atom.dynamic_events m (Atom.select prog `All))

let test_proc_instrumentation () =
  let b = Asm.create () in
  Asm.proc b "f" (fun b ->
      Asm.ldi b v0 1L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.call b "f";
      Asm.call b "f";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let m = Machine.create prog in
  let entries = ref [] and returns = ref [] in
  Atom.instrument_proc_entries m prog (fun p _m ->
      entries := p.Asm.pname :: !entries);
  Atom.instrument_proc_returns m prog (fun p _m v ->
      returns := (p.Asm.pname, v) :: !returns);
  ignore (Machine.run m);
  Alcotest.(check (list string)) "entries" [ "f"; "f" ] !entries;
  Alcotest.(check (list (pair string int64))) "returns"
    [ ("f", 1L); ("f", 1L) ]
    !returns

let test_category_census () =
  let census = Atom.category_census (program ()) in
  let get c = Option.value ~default:0 (List.assoc_opt c census) in
  Alcotest.(check int) "alu" 2 (get Isa.Alu);
  Alcotest.(check int) "load" 1 (get Isa.Load);
  Alcotest.(check int) "store" 1 (get Isa.Store);
  Alcotest.(check int) "other" 1 (get Isa.Other)

let suite =
  [ Alcotest.test_case "select all" `Quick test_select_all;
    Alcotest.test_case "select loads" `Quick test_select_loads;
    Alcotest.test_case "select alu" `Quick test_select_alu;
    Alcotest.test_case "select stores" `Quick test_select_stores;
    Alcotest.test_case "select pcs" `Quick test_select_pcs;
    Alcotest.test_case "instrument + dynamic events" `Quick
      test_instrument_and_dynamic_events;
    Alcotest.test_case "proc instrumentation" `Quick test_proc_instrumentation;
    Alcotest.test_case "category census" `Quick test_category_census ]
