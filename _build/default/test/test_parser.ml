let sample_source =
  {|
; a small program: sum a data table
.entry main
.data table 10 20 0x2A -7
.reserve scratch 8

.proc sum
  ldi  t0, #0
  ldi  t1, @table
  ldi  t2, #0
loop:
  cmplt t3, t2, #4
  beq  t3, done
  add  t4, t1, t2
  ld   t5, [t4+0]
  add  t0, t0, t5
  add  t2, t2, #1
  jmp  loop
done:
  mov  v0, t0
  ret
.end

.proc main
  jsr  sum
  ldi  t6, @scratch
  st   v0, [t6+0]
  halt
.end
|}

let test_parse_and_run () =
  let prog = Parser.parse sample_source in
  let m = Machine.execute prog in
  (* 10 + 20 + 42 - 7 = 65 *)
  Alcotest.(check int64) "computed sum" 65L (Machine.reg m Isa.v0);
  Alcotest.(check int64) "stored to scratch" 65L
    (Memory.read (Machine.memory m) 0x1_0004L)

let test_structure () =
  let prog = Parser.parse sample_source in
  Alcotest.(check int) "two procs" 2 (Array.length prog.Asm.procs);
  Alcotest.(check string) "first proc" "sum" prog.Asm.procs.(0).Asm.pname;
  Alcotest.(check int) "entry at main" (Asm.find_proc prog "main").Asm.pentry
    prog.Asm.entry;
  Alcotest.(check int) "data blocks" 2 (List.length prog.Asm.data)

let test_indirect_call_syntax () =
  let src =
    {|
.proc target
  ldi v0, #7
  ret
.end
.proc main
  ldi t0, @target
  jsr (t0)
  halt
.end
|}
  in
  let m = Machine.execute (Parser.parse src) in
  Alcotest.(check int64) "dispatched" 7L (Machine.reg m Isa.v0)

let test_register_aliases () =
  let src =
    {|
.proc main
  ldi r1, #5
  mov a0, t0      ; r1 = t0
  add v0, a0, zero
  halt
.end
|}
  in
  let m = Machine.execute (Parser.parse src) in
  Alcotest.(check int64) "aliases agree" 5L (Machine.reg m Isa.v0)

let expect_error ?line src =
  match Parser.parse src with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error (l, _) ->
    (match line with
     | Some expected -> Alcotest.(check int) "error line" expected l
     | None -> ())

let test_errors () =
  expect_error ~line:2 ".proc main\nbogus t0, t1\nhalt\n.end";
  expect_error ~line:1 "add t0, t1, t2\n";
  expect_error ".proc main\nldi t0, #1\n" (* missing .end *);
  expect_error ~line:2 ".proc main\nldi qq, #1\nhalt\n.end";
  expect_error ~line:2 ".proc main\nld t0, t1\nhalt\n.end";
  expect_error ~line:1 ".data\n";
  expect_error ~line:2 ".data x 1\n.data x 2\n.proc main\nhalt\n.end";
  expect_error ~line:1 ".frobnicate\n.proc main\nhalt\n.end"

let test_branch_to_proc_entry () =
  (* a loop back to the procedure's first instruction round-trips through
     the proc-name label *)
  let src =
    {|
.proc main
  add t0, t0, #1
  cmplt t1, t0, #5
  bne t1, main
  halt
.end
|}
  in
  let m = Machine.execute (Parser.parse src) in
  Alcotest.(check int64) "looped to 5" 5L (Machine.reg m Isa.t0)

let structurally_equal (a : Asm.program) (b : Asm.program) =
  a.Asm.code = b.Asm.code && a.Asm.entry = b.Asm.entry
  && Array.map (fun (p : Asm.proc) -> (p.Asm.pname, p.Asm.pentry, p.Asm.plength)) a.Asm.procs
     = Array.map (fun (p : Asm.proc) -> (p.Asm.pname, p.Asm.pentry, p.Asm.plength)) b.Asm.procs
  && a.Asm.data = b.Asm.data

let test_emit_parse_roundtrip_sample () =
  let prog = Parser.parse sample_source in
  let prog' = Parser.parse (Parser.emit prog) in
  Alcotest.(check bool) "round trip" true (structurally_equal prog prog')

let test_emit_parse_roundtrip_all_workloads () =
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let prog' = Parser.parse (Parser.emit prog) in
      Alcotest.(check bool) (w.wname ^ " round trips") true
        (structurally_equal prog prog');
      (* and the reconstruction behaves identically *)
      let m = Machine.execute prog and m' = Machine.execute prog' in
      Alcotest.(check int) (w.wname ^ " same icount") (Machine.icount m)
        (Machine.icount m');
      Alcotest.(check int64) (w.wname ^ " same result")
        (Machine.reg m Isa.v0) (Machine.reg m' Isa.v0))
    Workloads.all

let qcheck_roundtrip_random_programs =
  (* random multi-proc programs with branches, calls, and data blocks
     survive emit -> parse structurally intact *)
  let open QCheck.Gen in
  let reg = int_range 1 8 in
  let instr_gen =
    frequency
      [ (5,
         map3
           (fun op (d, s) imm -> `Op (op, d, s, Int64.of_int imm))
           (oneofl [ Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor ])
           (pair reg reg) (int_range (-100) 100));
        (2, map2 (fun d v -> `Ldi (d, Int64.of_int v)) reg (int_range (-1000) 1000));
        (1, map2 (fun d off -> `Ld (d, off)) reg (int_range (-4) 15));
        (1, map2 (fun s off -> `St (s, off)) reg (int_range (-4) 15));
        (2,
         map3 (fun c r dist -> `Br (c, r, dist))
           (oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge ])
           reg (int_range 1 5)) ]
  in
  let gen =
    pair
      (list_size (int_range 1 3)
         (list_size (int_range 2 15) instr_gen))
      (list_size (int_range 0 2) (list_size (int_range 1 6) (int_range (-9) 9)))
  in
  QCheck.Test.make ~name:"emit/parse roundtrip on random programs" ~count:200
    (QCheck.make gen)
    (fun (procs, datas) ->
      let b = Asm.create () in
      List.iter
        (fun words ->
          ignore (Asm.data b (Array.of_list (List.map Int64.of_int words))))
        datas;
      List.iteri
        (fun pi instrs ->
          let n = List.length instrs in
          Asm.proc b (Printf.sprintf "p%d" pi) (fun b ->
              List.iteri
                (fun i instr ->
                  Asm.label b (Printf.sprintf "p%d_l%d" pi i);
                  match instr with
                  | `Op (op, d, s, imm) -> Asm.bin b op ~dst:d s (Isa.Imm imm)
                  | `Ldi (d, v) -> Asm.ldi b d v
                  | `Ld (d, off) -> Asm.ld b ~dst:d ~base:Isa.sp ~off
                  | `St (s, off) -> Asm.st b ~src:s ~base:Isa.sp ~off
                  | `Br (c, r, dist) ->
                    Asm.br b c r (Printf.sprintf "p%d_l%d" pi (min n (i + dist))))
                instrs;
              Asm.label b (Printf.sprintf "p%d_l%d" pi n);
              if pi = 0 then Asm.halt b else Asm.ret b))
        procs;
      let prog = Asm.assemble b ~entry:"p0" in
      structurally_equal prog (Parser.parse (Parser.emit prog)))

let test_parse_file () =
  let path = Filename.temp_file "vprof" ".vasm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc sample_source;
      close_out oc;
      let m = Machine.execute (Parser.parse_file path) in
      Alcotest.(check int64) "runs from file" 65L (Machine.reg m Isa.v0))

let suite =
  [ Alcotest.test_case "parse and run" `Quick test_parse_and_run;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "indirect call syntax" `Quick test_indirect_call_syntax;
    Alcotest.test_case "register aliases" `Quick test_register_aliases;
    Alcotest.test_case "errors report lines" `Quick test_errors;
    Alcotest.test_case "branch to proc entry" `Quick test_branch_to_proc_entry;
    Alcotest.test_case "emit/parse roundtrip (sample)" `Quick
      test_emit_parse_roundtrip_sample;
    Alcotest.test_case "emit/parse roundtrip (all workloads)" `Slow
      test_emit_parse_roundtrip_all_workloads;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random_programs;
    Alcotest.test_case "parse file" `Quick test_parse_file ]
