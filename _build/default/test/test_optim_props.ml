(* Property tests for the optimizer passes in isolation, using a small
   reference interpreter over Body.t (no machine, no calls): each pass
   must preserve the semantics the calling convention makes observable. *)

open Isa

(* --- reference interpreter --- *)

exception Stuck of string

(* Runs a call-free body; returns (registers, memory) at exit. *)
let run_body (body : Body.t) ~(regs : int64 array) =
  let regs = Array.copy regs in
  regs.(zero_reg) <- 0L;
  let mem : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  let read_mem a = Option.value ~default:0L (Hashtbl.find_opt mem a) in
  let eval op a b =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div -> if Int64.equal b 0L then raise (Stuck "div0") else Int64.div a b
    | Rem -> if Int64.equal b 0L then raise (Stuck "rem0") else Int64.rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Sll -> Int64.shift_left a (Int64.to_int b land 63)
    | Srl -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | Sra -> Int64.shift_right a (Int64.to_int b land 63)
    | Cmpeq -> if Int64.equal a b then 1L else 0L
    | Cmplt -> if Int64.compare a b < 0 then 1L else 0L
    | Cmple -> if Int64.compare a b <= 0 then 1L else 0L
    | Cmpult -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  in
  let holds c v =
    let s = Int64.compare v 0L in
    match c with
    | Eq -> s = 0
    | Ne -> s <> 0
    | Lt -> s < 0
    | Le -> s <= 0
    | Gt -> s > 0
    | Ge -> s >= 0
  in
  let set rd v = if rd <> zero_reg then regs.(rd) <- v in
  let fuel = ref 100_000 in
  let pc = ref 0 in
  let running = ref true in
  while !running && !pc < Array.length body do
    decr fuel;
    if !fuel <= 0 then raise (Stuck "fuel");
    (match body.(!pc) with
     | Body.BOp (op, ra, ob, rc) ->
       let b = match ob with Isa.Reg r -> regs.(r) | Isa.Imm v -> v in
       set rc (eval op regs.(ra) b);
       incr pc
     | Body.BLdi (rd, v) ->
       set rd v;
       incr pc
     | Body.BLd (rd, rb, off) ->
       set rd (read_mem (Int64.add regs.(rb) (Int64.of_int off)));
       incr pc
     | Body.BSt (ra, rb, off) ->
       Hashtbl.replace mem (Int64.add regs.(rb) (Int64.of_int off)) regs.(ra);
       incr pc
     | Body.BBr (c, r, Body.Local t) ->
       if holds c regs.(r) then pc := t else incr pc
     | Body.BJmp (Body.Local t) -> pc := t
     | Body.BBr (_, _, Body.Global _) | Body.BJmp (Body.Global _)
     | Body.BJsr _ | Body.BJsr_ind _ -> raise (Stuck "call in call-free body")
     | Body.BRet | Body.BHalt -> running := false
     | Body.BNop -> incr pc)
  done;
  (regs, mem)

let mem_to_sorted_list mem =
  Hashtbl.fold (fun a v acc -> if Int64.equal v 0L then acc else (a, v) :: acc)
    mem []
  |> List.sort compare

let observables (regs, mem) =
  (* what the calling convention lets a caller see *)
  ( regs.(v0),
    regs.(sp),
    Array.to_list (Array.sub regs s0 6),
    mem_to_sorted_list mem )

(* --- generator: random call-free bodies with forward branches --- *)

let scratch = [| t0; t1; t2; t3; t4; t5; s0; s1 |]

let gen_body =
  let open QCheck.Gen in
  let reg = map (fun i -> scratch.(i)) (int_range 0 7) in
  let src = oneof [ reg; return a0; return sp ] in
  let instr =
    frequency
      [ (6,
         map3
           (fun op (d, s) operand ->
             `Op (op, d, s, operand))
           (oneofl [ Add; Sub; Mul; And; Or; Xor; Cmpeq; Cmplt; Sll; Sra ])
           (pair reg src)
           (oneof
              [ map (fun r -> `R r) src;
                map (fun i -> `I (Int64.of_int i)) (int_range (-9) 9) ]));
        (1,
         map2 (fun op (d, s) -> `Op (op, d, s, `I 7L))
           (oneofl [ Div; Rem ]) (pair reg src));
        (1, map2 (fun d v -> `Ldi (d, Int64.of_int v)) reg (int_range (-50) 50));
        (1, map2 (fun d off -> `Ld (d, off)) reg (int_range 0 7));
        (1, map2 (fun s off -> `St (s, off)) src (int_range 0 7));
        (2,
         map3 (fun c r dist -> `Br (c, r, dist))
           (oneofl [ Eq; Ne; Lt; Gt ]) src (int_range 1 6)) ]
  in
  map
    (fun instrs ->
      let n = List.length instrs in
      let body =
        List.mapi
          (fun i instr ->
            match instr with
            | `Op (op, d, s, `R r) -> Body.BOp (op, s, Isa.Reg r, d)
            | `Op (op, d, s, `I v) -> Body.BOp (op, s, Isa.Imm v, d)
            | `Ldi (d, v) -> Body.BLdi (d, v)
            | `Ld (d, off) -> Body.BLd (d, sp, off)
            | `St (s, off) -> Body.BSt (s, sp, off)
            | `Br (c, r, dist) -> Body.BBr (c, r, Body.Local (min n (i + dist))))
          instrs
      in
      Array.of_list (body @ [ Body.BRet ]))
    (list_size (int_range 2 30) instr)

let gen_regs =
  QCheck.Gen.(
    map
      (fun seed ->
        let rng = Rng.create (Int64.of_int seed) in
        Array.init Isa.num_regs (fun _ -> Rng.int64_range rng (-100L) 100L))
      int)

let arg = QCheck.make QCheck.Gen.(triple gen_body gen_regs (int_range (-20) 20))

(* constant folding under [a0 = c] preserves the entire register file and
   memory, for any values of the other registers *)
let prop_constfold_preserves =
  QCheck.Test.make ~name:"constfold preserves semantics" ~count:500 arg
    (fun (body, regs, c) ->
      let regs = Array.copy regs in
      regs.(a0) <- Int64.of_int c;
      let folded, _ =
        Constfold.fold body ~entry:(Constfold.entry_env [ (a0, Int64.of_int c) ])
      in
      match (run_body body ~regs, run_body folded ~regs) with
      | (r1, m1), (r2, m2) ->
        r1 = r2 && mem_to_sorted_list m1 = mem_to_sorted_list m2
      | exception Stuck _ -> QCheck.assume_fail ())

(* dead-code elimination preserves the observables (v0, sp, callee-saved
   registers, memory) *)
let prop_dce_preserves =
  QCheck.Test.make ~name:"dce preserves observables" ~count:500 arg
    (fun (body, regs, _) ->
      let cleaned, _ = Liveness.eliminate_dead body in
      match (run_body body ~regs, run_body cleaned ~regs) with
      | s1, s2 -> observables s1 = observables s2
      | exception Stuck _ -> QCheck.assume_fail ())

(* the full pipeline (fold + dce), as the specializer composes it *)
let prop_pipeline_preserves =
  QCheck.Test.make ~name:"fold+dce pipeline preserves observables" ~count:500
    arg
    (fun (body, regs, c) ->
      let regs = Array.copy regs in
      regs.(a0) <- Int64.of_int c;
      let folded, _ =
        Constfold.fold body ~entry:(Constfold.entry_env [ (a0, Int64.of_int c) ])
      in
      let cleaned, _ = Liveness.eliminate_dead folded in
      match (run_body body ~regs, run_body cleaned ~regs) with
      | s1, s2 -> observables s1 = observables s2
      | exception Stuck _ -> QCheck.assume_fail ())

(* folding is idempotent: folding a folded body changes nothing more *)
let prop_fold_idempotent =
  QCheck.Test.make ~name:"constfold is idempotent" ~count:300 arg
    (fun (body, _, c) ->
      let entry = Constfold.entry_env [ (a0, Int64.of_int c) ] in
      let once, _ = Constfold.fold body ~entry in
      let twice, stats = Constfold.fold once ~entry in
      twice = once || stats.Constfold.folded = 0)

(* the virtual machine agrees with this reference interpreter on call-free
   bodies — a differential check of the VM's instruction semantics *)
let prop_machine_matches_reference =
  QCheck.Test.make ~name:"machine agrees with reference interpreter"
    ~count:300 arg
    (fun (body, regs, _) ->
      (* keep addresses valid for the machine: base every memory access on
         a positive sp *)
      let regs = Array.copy regs in
      regs.(sp) <- 5000L;
      match run_body body ~regs with
      | ref_regs, _ ->
        let prog =
          { Asm.code = Body.relocate body ~base:0;
            procs = [| { Asm.pname = "p"; pentry = 0;
                         plength = Array.length body; pindex = 0 } |];
            data = [];
            entry = 0 }
        in
        let m = Machine.create prog in
        for r = 0 to Isa.num_regs - 1 do
          Machine.set_reg m r regs.(r)
        done;
        (match Machine.run ~fuel:200_000 m with
         | _ ->
           let ok = ref true in
           for r = 0 to Isa.num_regs - 1 do
             if not (Int64.equal (Machine.reg m r) ref_regs.(r)) then ok := false
           done;
           !ok
         | exception Machine.Trap _ -> QCheck.assume_fail ())
      | exception Stuck _ -> QCheck.assume_fail ())

let suite =
  [ QCheck_alcotest.to_alcotest prop_machine_matches_reference;
    QCheck_alcotest.to_alcotest prop_constfold_preserves;
    QCheck_alcotest.to_alcotest prop_dce_preserves;
    QCheck_alcotest.to_alcotest prop_pipeline_preserves;
    QCheck_alcotest.to_alcotest prop_fold_idempotent ]
