open Isa

let program_with_blocks () =
  let b = Asm.create () in
  Asm.proc b "main" (fun b ->
      Asm.ldi b t0 3L; (* 0: block A *)
      Asm.label b "loop";
      Asm.subi b ~dst:t0 t0 1L; (* 1: block B (branch target) *)
      Asm.br b Gt t0 "loop"; (* 2: ends block B *)
      Asm.ldi b t1 9L; (* 3: block C *)
      Asm.halt b (* 4: ends block C *));
  Asm.assemble b ~entry:"main"

let test_block_structure () =
  let prog = program_with_blocks () in
  let blocks = Cfg.build prog in
  Alcotest.(check int) "three blocks" 3 (Array.length blocks);
  Alcotest.(check (pair int int)) "block A" (0, 0)
    (blocks.(0).Cfg.bfirst, blocks.(0).Cfg.blast);
  Alcotest.(check (pair int int)) "block B" (1, 2)
    (blocks.(1).Cfg.bfirst, blocks.(1).Cfg.blast);
  Alcotest.(check (pair int int)) "block C" (3, 4)
    (blocks.(2).Cfg.bfirst, blocks.(2).Cfg.blast)

let test_block_of_pc () =
  let prog = program_with_blocks () in
  let blocks = Cfg.build prog in
  Alcotest.(check int) "pc 2 in block B" 1 (Cfg.block_of_pc blocks 2).Cfg.bindex;
  Alcotest.(check int) "pc 4 in block C" 2 (Cfg.block_of_pc blocks 4).Cfg.bindex;
  Alcotest.check_raises "outside" Not_found (fun () ->
      ignore (Cfg.block_of_pc blocks 99))

let test_dynamic_counts () =
  let prog = program_with_blocks () in
  let m = Machine.execute prog in
  let blocks = Cfg.build prog in
  let counts = Cfg.dynamic_counts m blocks in
  Alcotest.(check (array int)) "counts" [| 1; 3; 1 |] counts

let test_proc_boundaries_split_blocks () =
  let b = Asm.create () in
  Asm.proc b "p1" (fun b ->
      Asm.nop b;
      Asm.nop b);
  Asm.proc b "p2" (fun b ->
      Asm.nop b;
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"p2" in
  let blocks = Cfg.build prog in
  Alcotest.(check int) "split at proc boundary" 2 (Array.length blocks);
  Alcotest.(check int) "p1 block proc" 0 blocks.(0).Cfg.bproc;
  Alcotest.(check int) "p2 block proc" 1 blocks.(1).Cfg.bproc

let test_call_does_not_split_target_callers_block () =
  (* A jsr ends its own block; the instruction after it starts a new one. *)
  let b = Asm.create () in
  Asm.proc b "callee" (fun b -> Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.nop b;
      Asm.call b "callee";
      Asm.nop b;
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  let blocks = Cfg.build prog in
  (* callee ret | nop+jsr | nop+halt *)
  Alcotest.(check int) "three blocks" 3 (Array.length blocks)

let test_workload_blocks_consistent () =
  List.iter
    (fun (w : Workload.t) ->
      let prog = w.wbuild Workload.Test in
      let blocks = Cfg.build prog in
      (* blocks tile the code exactly *)
      let covered = ref 0 in
      Array.iteri
        (fun i blk ->
          covered := !covered + (blk.Cfg.blast - blk.Cfg.bfirst + 1);
          if i > 0 then
            Alcotest.(check int)
              (w.wname ^ ": contiguous")
              (blocks.(i - 1).Cfg.blast + 1)
              blk.Cfg.bfirst)
        blocks;
      Alcotest.(check int) (w.wname ^ ": full tiling")
        (Array.length prog.Asm.code) !covered)
    Workloads.all

let suite =
  [ Alcotest.test_case "block structure" `Quick test_block_structure;
    Alcotest.test_case "block_of_pc" `Quick test_block_of_pc;
    Alcotest.test_case "dynamic counts" `Quick test_dynamic_counts;
    Alcotest.test_case "proc boundaries" `Quick test_proc_boundaries_split_blocks;
    Alcotest.test_case "call block splits" `Quick
      test_call_does_not_split_target_callers_block;
    Alcotest.test_case "workload blocks tile code" `Quick
      test_workload_blocks_consistent ]
