test/test_cli.ml: Alcotest Astring_contains Filename Fun List Printf Sys
