test/test_table.ml: Alcotest Astring_contains List Table
