test/test_tnv.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Rng Tnv
