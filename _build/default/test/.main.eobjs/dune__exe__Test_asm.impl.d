test/test_asm.ml: Alcotest Array Asm Astring_contains Int64 Isa List QCheck QCheck_alcotest
