test/test_profile.ml: Alcotest Array Asm Atom Int64 Isa List Machine Metrics Option Oracle Profile Vstate
