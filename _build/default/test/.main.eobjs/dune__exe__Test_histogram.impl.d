test/test_histogram.ml: Alcotest Array Gen Histogram List QCheck QCheck_alcotest
