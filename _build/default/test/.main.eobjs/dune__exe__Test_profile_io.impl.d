test/test_profile_io.ml: Alcotest Array Asm Filename Fun Int64 Isa Metrics Predictor Printf Profile Profile_io Sys
