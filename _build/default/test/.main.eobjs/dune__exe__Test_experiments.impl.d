test/test_experiments.ml: Alcotest Array Cfg E02_bb_quantile E12_specialization Experiments Harness List Memprof Metrics Predictor Printf Profile Sampler Stats String Table Workload Workloads
