test/test_regprof.ml: Alcotest Array Asm Int64 Isa Metrics Regprof
