test/test_predictor.ml: Alcotest Array Int64 Isa List Metrics Predictor Profile Workload Workloads
