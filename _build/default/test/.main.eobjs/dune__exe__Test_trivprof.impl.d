test/test_trivprof.ml: Alcotest Asm Isa List Trivprof
