test/test_procprof.ml: Alcotest Array Asm Int64 Isa Metrics Procprof
