test/main.mli:
