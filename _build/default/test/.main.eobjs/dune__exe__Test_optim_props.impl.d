test/test_optim_props.ml: Array Asm Body Constfold Hashtbl Int64 Isa List Liveness Machine Option QCheck QCheck_alcotest Rng
