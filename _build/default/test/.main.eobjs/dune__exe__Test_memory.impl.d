test/test_memory.ml: Alcotest Hashtbl Int64 List Memory Option QCheck QCheck_alcotest
