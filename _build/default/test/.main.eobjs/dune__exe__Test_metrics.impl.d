test/test_metrics.ml: Alcotest Array Astring_contains Gen Int64 List Metrics Oracle QCheck QCheck_alcotest Rng Vstate
