test/test_parser.ml: Alcotest Array Asm Filename Fun Int64 Isa List Machine Memory Parser Printf QCheck QCheck_alcotest Sys Workload Workloads
