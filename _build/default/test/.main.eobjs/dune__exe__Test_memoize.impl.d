test/test_memoize.ml: Alcotest Array Asm Body Int64 Isa List Memoize Printf QCheck QCheck_alcotest Workload Workloads
