test/test_ctxprof.ml: Alcotest Array Asm Ctxprof Int64 Isa List Metrics Procprof
