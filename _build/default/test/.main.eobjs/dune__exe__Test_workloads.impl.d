test/test_workloads.ml: Alcotest Array Asm Astring_contains Isa List Machine Printf Profile Workload Workloads
