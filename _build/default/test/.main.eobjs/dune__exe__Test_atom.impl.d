test/test_atom.ml: Alcotest Asm Atom Isa List Machine Option
