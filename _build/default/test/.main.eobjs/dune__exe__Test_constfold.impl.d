test/test_constfold.ml: Alcotest Array Body Constfold Int64 Isa QCheck QCheck_alcotest
