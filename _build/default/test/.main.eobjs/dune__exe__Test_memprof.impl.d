test/test_memprof.ml: Alcotest Array Asm Int64 Isa Memprof Metrics
