test/test_sampler.ml: Alcotest Array Asm Int64 Isa Metrics Profile Sampler
