test/test_cfg.ml: Alcotest Array Asm Cfg Isa List Machine Workload Workloads
