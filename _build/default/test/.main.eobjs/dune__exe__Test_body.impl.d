test/test_body.ml: Alcotest Array Asm Body Isa List Printf
