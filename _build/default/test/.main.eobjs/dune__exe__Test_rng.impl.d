test/test_rng.ml: Alcotest Array Fun Int64 QCheck QCheck_alcotest Rng
