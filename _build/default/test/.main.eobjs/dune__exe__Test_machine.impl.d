test/test_machine.ml: Alcotest Array Asm Int64 Isa List Machine Memory Printf Workload Workloads
