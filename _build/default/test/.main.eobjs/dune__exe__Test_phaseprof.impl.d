test/test_phaseprof.ml: Alcotest Array Asm Int64 Isa List Phaseprof
