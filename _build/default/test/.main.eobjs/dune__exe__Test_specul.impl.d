test/test_specul.ml: Alcotest Array Asm Atom Int64 Isa List Specul
