test/test_specialize.ml: Alcotest Array Asm Body Gen Int64 Isa List Machine Printf Procprof QCheck QCheck_alcotest Specialize Workload Workloads
