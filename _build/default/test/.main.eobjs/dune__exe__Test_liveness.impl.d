test/test_liveness.ml: Alcotest Array Body Fun Isa Liveness
