open Isa

(* An expensive pure procedure called with heavily repeating arguments:
   memoization must preserve results and cut dynamic instructions. *)
let program ?(calls = 200) ?(distinct = 4) () =
  let b = Asm.create () in
  let out = Asm.reserve b 1 in
  (* slow_poly(x=a0, y=a1) -> v0, pure, ~60 instructions per call *)
  Asm.proc b "slow_poly" (fun b ->
      Asm.ldi b t0 0L;
      Asm.ldi b t1 0L;
      Asm.label b "poly_loop";
      Asm.cmplti b ~dst:t2 t1 20L;
      Asm.br b Eq t2 "poly_done";
      Asm.mul b ~dst:t3 a0 t1;
      Asm.add b ~dst:t3 t3 a1;
      Asm.xor b ~dst:t0 t0 t3;
      Asm.addi b ~dst:t1 t1 1L;
      Asm.jmp b "poly_loop";
      Asm.label b "poly_done";
      Asm.mov b ~dst:v0 t0;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b s0 0L;
      Asm.ldi b s1 0L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t0 s0 (Int64.of_int calls);
      Asm.br b Eq t0 "done";
      (* arguments cycle through a few distinct tuples *)
      Asm.remi b ~dst:a0 s0 (Int64.of_int distinct);
      Asm.addi b ~dst:a1 a0 7L;
      Asm.call b "slow_poly";
      Asm.add b ~dst:s1 s1 v0;
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.ldi b t0 out;
      Asm.st b ~src:s1 ~base:t0 ~off:0;
      Asm.mov b ~dst:v0 s1;
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let test_preserves_results_and_speeds_up () =
  let prog = program () in
  let report = Memoize.memoize prog ~proc:"slow_poly" ~arity:2 in
  let equal, before, after = Memoize.differential prog report in
  Alcotest.(check bool) "same results" true equal;
  Alcotest.(check bool) "fewer dynamic instructions" true (after < before);
  (* 4 distinct tuples over 200 calls: nearly every call should hit *)
  Alcotest.(check bool) "substantial win" true
    (float_of_int after < 0.6 *. float_of_int before)

let test_all_distinct_arguments_slow_down () =
  (* every tuple fresh: the cache never hits, the wrapper is pure cost —
     the honest negative result (cf. li's arith in E23) *)
  let prog = program ~calls:100 ~distinct:100 () in
  let report = Memoize.memoize prog ~proc:"slow_poly" ~arity:2 in
  let equal, before, after = Memoize.differential prog report in
  Alcotest.(check bool) "still correct" true equal;
  Alcotest.(check bool) "overhead shows" true (after > before)

let test_wrapper_proc_registered () =
  let prog = program () in
  let report = Memoize.memoize prog ~proc:"slow_poly" ~arity:2 in
  let sp = report.Memoize.m_program in
  Alcotest.(check bool) "memo proc exists" true
    (match Asm.find_proc sp "slow_poly__memo" with _ -> true);
  (match sp.Asm.code.((Asm.find_proc sp "slow_poly").Asm.pentry) with
   | Isa.Jmp t ->
     Alcotest.(check int) "entry jumps to wrapper" report.Memoize.m_wrapper_entry t
   | other -> Alcotest.failf "expected jmp, got %s" (Isa.to_string other))

let test_cache_region_is_fresh_memory () =
  let prog = program () in
  let report = Memoize.memoize prog ~proc:"slow_poly" ~arity:2 in
  List.iter
    (fun (base, words) ->
      let past = Int64.add base (Int64.of_int (Array.length words)) in
      Alcotest.(check bool) "no overlap with existing data" true
        (Int64.compare past report.Memoize.m_table_base <= 0
         || Int64.compare base report.Memoize.m_table_base >= 0))
    prog.Asm.data

let test_invalid_arguments () =
  let prog = program () in
  Alcotest.check_raises "arity" (Invalid_argument "Memoize: arity out of range")
    (fun () -> ignore (Memoize.memoize prog ~proc:"slow_poly" ~arity:0));
  Alcotest.check_raises "entries"
    (Invalid_argument "Memoize: entries must be a power of two") (fun () ->
      ignore (Memoize.memoize ~entries:100 prog ~proc:"slow_poly" ~arity:2))

let test_unsupported_entry_branch_target () =
  let b = Asm.create () in
  Asm.proc b "looper" (fun b ->
      Asm.subi b ~dst:a0 a0 1L;
      Asm.br b Gt a0 "looper";
      Asm.mov b ~dst:v0 a0;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b a0 3L;
      Asm.call b "looper";
      Asm.halt b);
  let prog = Asm.assemble b ~entry:"main" in
  (match Memoize.memoize prog ~proc:"looper" ~arity:1 with
   | exception Body.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported")

let test_perl_hash_word_memoizes () =
  (* the bundled workload case E23 reports: hash_word is pure modulo the
     read-only vocabulary *)
  let w = Workloads.find "perl" in
  let prog = w.Workload.wbuild Workload.Test in
  let report = Memoize.memoize prog ~proc:"hash_word" ~arity:2 in
  let equal, before, after = Memoize.differential prog report in
  Alcotest.(check bool) "perl results preserved" true equal;
  Alcotest.(check bool) "perl speeds up" true (after < before)

(* Random pure procedures (register arithmetic on the arguments only, no
   loads/stores, forward branches) memoize without changing results, for
   any argument stream. *)
let qcheck_memoize_preserves_pure_procedures =
  let open QCheck.Gen in
  let scratch = [| t0; t1; t2; t3; t4; t5 |] in
  let reg = map (fun i -> scratch.(i)) (int_range 0 5) in
  let src = oneof [ reg; return a0; return a1 ] in
  let instr =
    frequency
      [ (6,
         map3
           (fun op (d, s) operand -> `Op (op, d, s, operand))
           (oneofl [ Isa.Add; Isa.Sub; Isa.Mul; Isa.And; Isa.Or; Isa.Xor;
                     Isa.Cmpeq; Isa.Cmplt ])
           (pair reg src)
           (oneof
              [ map (fun r -> `R r) src;
                map (fun i -> `I (Int64.of_int i)) (int_range (-9) 9) ]));
        (2,
         map3 (fun c r dist -> `Br (c, r, dist))
           (oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Gt ])
           src (int_range 1 5)) ]
  in
  let gen =
    pair
      (list_size (int_range 2 20) instr)
      (list_size (int_range 1 12) (pair (int_range (-3) 3) (int_range (-3) 3)))
  in
  QCheck.Test.make ~name:"memoize preserves pure procedures" ~count:200
    (QCheck.make gen)
    (fun (instrs, arg_stream) ->
      let b = Asm.create () in
      let out = Asm.reserve b 16 in
      let n = List.length instrs in
      Asm.proc b "f" (fun b ->
          (* initialize scratch from the arguments: pure by construction *)
          Asm.mov b ~dst:t0 a0;
          Asm.mov b ~dst:t1 a1;
          Asm.xor b ~dst:t2 a0 a1;
          Asm.addi b ~dst:t3 a0 5L;
          Asm.muli b ~dst:t4 a1 3L;
          Asm.ldi b t5 9L;
          List.iteri
            (fun i instr ->
              Asm.label b (Printf.sprintf "f_l%d" i);
              match instr with
              | `Op (op, d, s, `R r) -> Asm.bin b op ~dst:d s (Isa.Reg r)
              | `Op (op, d, s, `I v) -> Asm.bin b op ~dst:d s (Isa.Imm v)
              | `Br (c, r, dist) ->
                Asm.br b c r (Printf.sprintf "f_l%d" (min n (i + dist))))
            instrs;
          Asm.label b (Printf.sprintf "f_l%d" n);
          Asm.mov b ~dst:v0 t0;
          Asm.ret b);
      Asm.proc b "main" (fun b ->
          List.iteri
            (fun i (x, y) ->
              Asm.ldi b a0 (Int64.of_int x);
              Asm.ldi b a1 (Int64.of_int y);
              Asm.call b "f";
              Asm.ldi b t1 out;
              Asm.st b ~src:v0 ~base:t1 ~off:(i land 15))
            arg_stream;
          Asm.halt b);
      let prog = Asm.assemble b ~entry:"main" in
      match Memoize.memoize ~entries:8 prog ~proc:"f" ~arity:2 with
      | report ->
        let equal, _, _ = Memoize.differential prog report in
        equal
      | exception Body.Unsupported _ -> QCheck.assume_fail ())

let suite =
  [ Alcotest.test_case "preserves results, speeds up" `Quick
      test_preserves_results_and_speeds_up;
    QCheck_alcotest.to_alcotest qcheck_memoize_preserves_pure_procedures;
    Alcotest.test_case "all-distinct arguments slow down" `Quick
      test_all_distinct_arguments_slow_down;
    Alcotest.test_case "wrapper registered" `Quick test_wrapper_proc_registered;
    Alcotest.test_case "cache region fresh" `Quick
      test_cache_region_is_fresh_memory;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
    Alcotest.test_case "entry branch target unsupported" `Quick
      test_unsupported_entry_branch_target;
    Alcotest.test_case "perl hash_word" `Slow test_perl_hash_word_memoizes ]
