open Isa

(* main calls f(7, i) for i in 0..n-1 and g() once; f returns 7+i. *)
let program n =
  let b = Asm.create () in
  Asm.proc b "f" (fun b ->
      Asm.add b ~dst:v0 a0 a1;
      Asm.ret b);
  Asm.proc b "g" (fun b ->
      Asm.ldi b v0 99L;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b s0 0L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t0 s0 (Int64.of_int n);
      Asm.br b Eq t0 "done";
      Asm.ldi b a0 7L;
      Asm.mov b ~dst:a1 s0;
      Asm.call b "f";
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.call b "g";
      Asm.halt b);
  Asm.assemble b ~entry:"main"

let config = { Procprof.default_config with arities = [ ("f", 2) ] }

let report t name =
  match
    Array.find_opt (fun (r : Procprof.proc_report) -> r.r_name = name) t.Procprof.procs
  with
  | Some r -> r
  | None -> Alcotest.failf "no report for %s" name

let test_call_counts () =
  let t = Procprof.run ~config (program 20) in
  Alcotest.(check int) "f called 20x" 20 (report t "f").r_calls;
  Alcotest.(check int) "g called once" 1 (report t "g").r_calls;
  Alcotest.(check int) "main never called" 0 (report t "main").r_calls;
  Alcotest.(check int) "total" 21 t.Procprof.total_calls

let test_param_metrics () =
  let t = Procprof.run ~config (program 20) in
  let f = report t "f" in
  Alcotest.(check int) "two params" 2 (Array.length f.r_params);
  Alcotest.(check (float 1e-9)) "arg0 invariant" 1.0
    f.r_params.(0).Metrics.inv_top;
  Alcotest.(check bool) "arg1 variant" true
    (f.r_params.(1).Metrics.inv_top < 0.1);
  Alcotest.(check int64) "arg0 top value" 7L
    (fst f.r_params.(0).Metrics.top_values.(0))

let test_return_metrics () =
  let t = Procprof.run ~config (program 20) in
  let g = report t "g" in
  Alcotest.(check (float 1e-9)) "g returns a constant" 1.0
    g.r_return.Metrics.inv_top;
  let f = report t "f" in
  Alcotest.(check int) "f returns 20 distinct" 20 f.r_return.Metrics.distinct

let test_memoization () =
  let t = Procprof.run ~config (program 20) in
  (* every (7, i) tuple is fresh -> zero hits *)
  Alcotest.(check int) "no repeats" 0 (report t "f").r_memo_hits;
  Alcotest.(check (float 1e-9)) "hit rate" 0. (Procprof.memo_hit_rate t)

let test_memoization_hits () =
  (* call f(1,2) n times: all but the first are memo hits *)
  let b = Asm.create () in
  Asm.proc b "f" (fun b ->
      Asm.add b ~dst:v0 a0 a1;
      Asm.ret b);
  Asm.proc b "main" (fun b ->
      Asm.ldi b s0 0L;
      Asm.label b "loop";
      Asm.cmplti b ~dst:t0 s0 10L;
      Asm.br b Eq t0 "done";
      Asm.ldi b a0 1L;
      Asm.ldi b a1 2L;
      Asm.call b "f";
      Asm.addi b ~dst:s0 s0 1L;
      Asm.jmp b "loop";
      Asm.label b "done";
      Asm.halt b);
  let t = Procprof.run ~config (Asm.assemble b ~entry:"main") in
  Alcotest.(check int) "nine hits" 9 (report t "f").r_memo_hits;
  Alcotest.(check (float 1e-9)) "hit rate" 0.9 (Procprof.memo_hit_rate t)

let test_memo_capacity () =
  let config =
    { Procprof.default_config with arities = [ ("f", 2) ]; memo_capacity = 5 }
  in
  let t = Procprof.run ~config (program 20) in
  Alcotest.(check bool) "overflow flagged" true
    (report t "f").r_memo_capacity_exceeded

let test_no_arity_profiles_return_only () =
  let t = Procprof.run ~config:Procprof.default_config (program 20) in
  let f = report t "f" in
  Alcotest.(check int) "no params" 0 (Array.length f.r_params);
  Alcotest.(check int) "returns profiled" 20 f.r_return.Metrics.total

let test_invalid_arity () =
  Alcotest.check_raises "arity range"
    (Invalid_argument "Procprof: arity out of range") (fun () ->
      ignore
        (Procprof.run
           ~config:{ Procprof.default_config with arities = [ ("f", 7) ] }
           (program 1)))

let test_sorted_by_calls () =
  let t = Procprof.run ~config (program 20) in
  Alcotest.(check string) "hottest first" "f" t.Procprof.procs.(0).r_name

let suite =
  [ Alcotest.test_case "call counts" `Quick test_call_counts;
    Alcotest.test_case "param metrics" `Quick test_param_metrics;
    Alcotest.test_case "return metrics" `Quick test_return_metrics;
    Alcotest.test_case "memoization misses" `Quick test_memoization;
    Alcotest.test_case "memoization hits" `Quick test_memoization_hits;
    Alcotest.test_case "memo capacity" `Quick test_memo_capacity;
    Alcotest.test_case "return-only without arity" `Quick
      test_no_arity_profiles_return_only;
    Alcotest.test_case "invalid arity" `Quick test_invalid_arity;
    Alcotest.test_case "sorted by calls" `Quick test_sorted_by_calls ]
