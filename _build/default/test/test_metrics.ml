(* Vstate + Metrics + Oracle tests. *)

let feq = Alcotest.float 1e-9

let observe_all vs values = List.iter (Vstate.observe vs) values

let test_vstate_lvp () =
  let vs = Vstate.create () in
  observe_all vs [ 5L; 5L; 5L; 7L; 7L ];
  let m = Vstate.metrics vs in
  (* 4 transitions, 3 repeats: 5->5, 5->5, 7->7 *)
  Alcotest.check feq "lvp" (3. /. 5.) m.Metrics.lvp;
  Alcotest.check feq "inv_top" (3. /. 5.) m.Metrics.inv_top;
  Alcotest.check feq "inv_all" 1.0 m.Metrics.inv_all;
  Alcotest.(check int) "distinct" 2 m.Metrics.distinct

let test_vstate_zero () =
  let vs = Vstate.create () in
  observe_all vs [ 0L; 0L; 1L; 0L ];
  let m = Vstate.metrics vs in
  Alcotest.check feq "zero fraction" 0.75 m.Metrics.zero

let test_vstate_empty () =
  let vs = Vstate.create () in
  Alcotest.(check bool) "empty metrics" true (Vstate.metrics vs = Metrics.empty)

let test_distinct_cap () =
  let config = { Vstate.default_config with distinct_cap = 10 } in
  let vs = Vstate.create ~config () in
  for i = 1 to 50 do
    Vstate.observe vs (Int64.of_int i)
  done;
  let m = Vstate.metrics vs in
  Alcotest.(check int) "capped" 10 m.Metrics.distinct;
  Alcotest.(check bool) "saturated flag" true m.Metrics.distinct_saturated

let test_vstate_reset () =
  let vs = Vstate.create () in
  observe_all vs [ 1L; 2L ];
  Vstate.reset vs;
  Alcotest.(check int) "total zero" 0 (Vstate.total vs);
  (* LVP state must not leak: the first value after reset is not a hit *)
  observe_all vs [ 2L; 2L ];
  Alcotest.check feq "lvp after reset" 0.5 (Vstate.metrics vs).Metrics.lvp

let test_classify () =
  let with_inv inv = { Metrics.empty with Metrics.total = 1; inv_top = inv } in
  Alcotest.(check string) "invariant" "invariant"
    (Metrics.string_of_classification (Metrics.classify (with_inv 0.95)));
  Alcotest.(check string) "semi" "semi-invariant"
    (Metrics.string_of_classification (Metrics.classify (with_inv 0.6)));
  Alcotest.(check string) "variant" "variant"
    (Metrics.string_of_classification (Metrics.classify (with_inv 0.1)));
  Alcotest.(check string) "custom thresholds" "invariant"
    (Metrics.string_of_classification
       (Metrics.classify ~invariant_at:0.5 (with_inv 0.6)))

let test_weighted_mean () =
  let mk total inv = { Metrics.empty with Metrics.total; inv_top = inv } in
  let points = [ mk 90 1.0; mk 10 0.0 ] in
  Alcotest.check feq "weighted" 0.9
    (Metrics.weighted_mean (fun m -> m.Metrics.inv_top) points);
  Alcotest.check feq "empty" 0.
    (Metrics.weighted_mean (fun m -> m.Metrics.inv_top) [])

let test_stride_profile () =
  let vs = Vstate.create () in
  (* arithmetic sequence: delta 3 dominates transitions *)
  for i = 0 to 20 do
    Vstate.observe vs (Int64.of_int (10 + (3 * i)))
  done;
  let m = Vstate.metrics vs in
  Alcotest.(check (option int64)) "top stride" (Some 3L) m.Metrics.top_stride;
  Alcotest.check feq "all transitions strided" 1.0 m.Metrics.stride_top;
  Alcotest.(check bool) "classified strided" true
    (Metrics.predictor_class m = Metrics.Strided)

let test_predictor_class_last_value () =
  let vs = Vstate.create () in
  for _ = 1 to 20 do Vstate.observe vs 7L done;
  Alcotest.(check bool) "constant is last-value" true
    (Metrics.predictor_class (Vstate.metrics vs) = Metrics.Last_value)

let test_predictor_class_unpredictable () =
  let vs = Vstate.create () in
  (* values and deltas both scattered *)
  let rng = Rng.create 5L in
  for _ = 1 to 200 do
    Vstate.observe vs (Rng.next rng)
  done;
  Alcotest.(check bool) "random is unpredictable" true
    (Metrics.predictor_class (Vstate.metrics vs) = Metrics.Unpredictable)

let test_predictor_class_zero_stride_is_last_value () =
  (* a dominant zero delta must classify as last-value, never strided *)
  let vs = Vstate.create () in
  List.iter (Vstate.observe vs)
    (List.concat (List.init 20 (fun _ -> [ 5L; 5L; 5L; 9L ])));
  let m = Vstate.metrics vs in
  Alcotest.(check bool) "not strided" true
    (Metrics.predictor_class m <> Metrics.Strided)

let test_predictor_class_names () =
  Alcotest.(check string) "lv" "last-value"
    (Metrics.string_of_predictor_class Metrics.Last_value);
  Alcotest.(check string) "st" "strided"
    (Metrics.string_of_predictor_class Metrics.Strided);
  Alcotest.(check string) "un" "unpredictable"
    (Metrics.string_of_predictor_class Metrics.Unpredictable)

let test_metrics_to_string () =
  let vs = Vstate.create () in
  observe_all vs [ 1L; 1L ];
  let s = Metrics.to_string (Vstate.metrics vs) in
  Alcotest.(check bool) "mentions execs" true
    (Astring_contains.contains s "execs 2")

let test_oracle_counts () =
  let o = Oracle.create () in
  List.iter (Oracle.observe o) [ 1L; 2L; 2L; 3L; 3L; 3L ];
  Alcotest.(check int) "total" 6 (Oracle.total o);
  Alcotest.(check int) "distinct" 3 (Oracle.distinct o);
  Alcotest.(check (option (pair int64 int))) "top" (Some (3L, 3)) (Oracle.top o);
  Alcotest.check feq "inv_top" 0.5 (Oracle.inv_top o);
  Alcotest.check feq "inv_all 2" (5. /. 6.) (Oracle.inv_all o ~n:2);
  Alcotest.check feq "inv_all big n" 1.0 (Oracle.inv_all o ~n:10)

let test_oracle_top_n () =
  let o = Oracle.create () in
  List.iter (Oracle.observe o) [ 1L; 2L; 2L; 3L; 3L; 3L ];
  let top2 = Oracle.top_n o 2 in
  Alcotest.(check int) "two entries" 2 (Array.length top2);
  Alcotest.(check int64) "first" 3L (fst top2.(0));
  Alcotest.(check int64) "second" 2L (fst top2.(1))

let qcheck_vstate_matches_oracle_invariance =
  (* On streams with few distinct values, the TNV-backed Vstate's Inv-Top
     equals the oracle's exactly (no eviction pressure). *)
  QCheck.Test.make ~name:"vstate inv_top matches oracle on small alphabets"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 500) (int_range 0 5))
    (fun stream ->
      let vs = Vstate.create () and o = Oracle.create () in
      List.iter
        (fun i ->
          let v = Int64.of_int i in
          Vstate.observe vs v;
          Oracle.observe o v)
        stream;
      abs_float ((Vstate.metrics vs).Metrics.inv_top -. Oracle.inv_top o) < 1e-9)

let qcheck_lvp_bounds =
  QCheck.Test.make ~name:"all metric fractions in [0,1]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range (-3) 3))
    (fun stream ->
      let vs = Vstate.create () in
      List.iter (fun i -> Vstate.observe vs (Int64.of_int i)) stream;
      let m = Vstate.metrics vs in
      let in01 x = x >= 0. && x <= 1. +. 1e-9 in
      in01 m.Metrics.lvp && in01 m.Metrics.inv_top && in01 m.Metrics.inv_all
      && in01 m.Metrics.zero)

let suite =
  [ Alcotest.test_case "vstate lvp" `Quick test_vstate_lvp;
    Alcotest.test_case "vstate zero" `Quick test_vstate_zero;
    Alcotest.test_case "vstate empty" `Quick test_vstate_empty;
    Alcotest.test_case "distinct cap" `Quick test_distinct_cap;
    Alcotest.test_case "vstate reset" `Quick test_vstate_reset;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
    Alcotest.test_case "stride profile" `Quick test_stride_profile;
    Alcotest.test_case "class: last-value" `Quick test_predictor_class_last_value;
    Alcotest.test_case "class: unpredictable" `Quick
      test_predictor_class_unpredictable;
    Alcotest.test_case "class: zero stride" `Quick
      test_predictor_class_zero_stride_is_last_value;
    Alcotest.test_case "class names" `Quick test_predictor_class_names;
    Alcotest.test_case "metrics to_string" `Quick test_metrics_to_string;
    Alcotest.test_case "oracle counts" `Quick test_oracle_counts;
    Alcotest.test_case "oracle top_n" `Quick test_oracle_top_n;
    QCheck_alcotest.to_alcotest qcheck_vstate_matches_oracle_invariance;
    QCheck_alcotest.to_alcotest qcheck_lvp_bounds ]
